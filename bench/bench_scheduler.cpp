// Scaling of the parallel query scheduler on the paper's headline
// workload: the full noise-tolerance sweep (one range descent per
// correctly-classified test sample, every P2 query decided by the cascade
// portfolio engine).  The sweep is embarrassingly parallel across samples,
// so wall-clock should drop near-linearly with the worker count while the
// report stays bit-identical — both are asserted here, and the measured
// curve is recorded in BENCH_scheduler.json for PR-over-PR tracking.
//
// A second section scales a flat run_all batch (every sample x every range
// in the Fig.-4 sweep as one query list) to isolate scheduler overhead
// from descent-chain imbalance.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/casestudy.hpp"
#include "core/fannet.hpp"
#include "util/benchjson.hpp"
#include "util/stopwatch.hpp"
#include "verify/engine.hpp"
#include "verify/scheduler.hpp"

namespace {

using namespace fannet;

core::ToleranceReport run_tolerance(const core::CaseStudy& cs,
                                    std::size_t threads) {
  const core::Fannet fannet(cs.qnet);
  core::ToleranceConfig config;
  config.start_range = 50;
  config.engine = core::Engine::kCascade;
  config.threads = threads;
  return fannet.analyze_tolerance(cs.test_x, cs.test_y, config);
}

std::vector<verify::Query> fig4_batch(const core::CaseStudy& cs) {
  const core::Fannet fannet(cs.qnet);
  const auto bad = fannet.validate_p1(cs.test_x, cs.test_y);
  std::vector<verify::Query> batch;
  for (std::size_t s = 0; s < cs.test_x.rows(); ++s) {
    if (std::find(bad.begin(), bad.end(), s) != bad.end()) continue;
    for (int range = 5; range <= 50; range += 5) {
      batch.push_back(fannet.make_query(
          cs.test_x.row(s), cs.test_y[s],
          verify::NoiseBox::symmetric(cs.test_x.cols(), range), false));
    }
  }
  return batch;
}

}  // namespace

int main() {
  const core::CaseStudy cs = core::build_case_study();
  util::BenchJson json("scheduler");

  std::printf("hardware threads: %u\n\n", std::thread::hardware_concurrency());
  std::puts("=== Scheduler scaling: tolerance sweep, cascade engine ===");
  core::ToleranceReport reference;
  double serial_ms = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const util::Stopwatch watch;
    const core::ToleranceReport report = run_tolerance(cs, threads);
    const double ms = watch.millis();
    if (threads == 1) {
      reference = report;
      serial_ms = ms;
    } else if (report.noise_tolerance != reference.noise_tolerance ||
               report.queries != reference.queries) {
      std::fprintf(stderr,
                   "FAIL: report differs at %zu threads (tolerance %d vs %d, "
                   "queries %llu vs %llu)\n",
                   threads, report.noise_tolerance, reference.noise_tolerance,
                   static_cast<unsigned long long>(report.queries),
                   static_cast<unsigned long long>(reference.queries));
      return EXIT_FAILURE;
    }
    std::printf("  tolerance_sweep  threads=%zu  %8.1f ms  speedup %.2fx  "
                "(%llu queries, tolerance +/-%d%%)\n",
                threads, ms, serial_ms / ms,
                static_cast<unsigned long long>(report.queries),
                report.noise_tolerance);
    json.add("tolerance_sweep", ms, report.queries, threads);
  }

  std::puts("\n=== Scheduler scaling: flat Fig.-4 query batch, run_all ===");
  const std::vector<verify::Query> batch = fig4_batch(cs);
  const verify::Engine& engine = verify::engine("cascade");
  std::vector<verify::VerifyResult> reference_results;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const verify::Scheduler scheduler({.threads = threads});
    verify::BatchStats stats;
    const auto results = scheduler.run_all(batch, engine, &stats);
    if (threads == 1) {
      reference_results = results;
    } else {
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].verdict != reference_results[i].verdict) {
          std::fprintf(stderr, "FAIL: verdict %zu differs at %zu threads\n", i,
                       threads);
          return EXIT_FAILURE;
        }
      }
    }
    std::printf("  run_all          threads=%zu  %8.1f ms  (%zu queries, "
                "work %llu)\n",
                threads, stats.wall_ms, stats.queries,
                static_cast<unsigned long long>(stats.total_work));
    json.add("run_all_fig4", stats.wall_ms, stats.total_work, threads);
  }

  const std::string path = json.write();
  std::printf("\nwrote %s\n", path.c_str());
  return EXIT_SUCCESS;
}
