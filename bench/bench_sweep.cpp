// Resumable-sweep gate (ISSUE 5 acceptance): the weight-fault campaign on
// the small cohort is run four ways —
//
//   1. the classic in-process scan (the reference report);
//   2. the sweep path without a journal at 1/2/8 threads — must be
//      bit-identical to the reference;
//   3. a cold fully-journaled run (the warm-resume baseline wall clock);
//   4. a kill -> resume cycle per thread count: a capped partial run
//      journals ~80% of the shards, a torn line is appended (simulating a
//      crash mid-append), and the resumed run must (a) discard the torn
//      line, (b) re-execute only the un-journaled shards — the execution
//      counter proves journaled shards never re-run — and (c) reproduce
//      the reference report bit-for-bit at 1, 2 and 8 threads.
//
// The warm-resume wall gate asserts the resume saves >= 30% over the cold
// journaled run.  Unlike thread-scaling gates this is a same-machine ratio
// of two serial arms, so it holds on 1-CPU containers too.  Measurements
// land in BENCH_sweep.json (docs/bench-format.md).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/casestudy.hpp"
#include "core/faults.hpp"
#include "util/benchjson.hpp"
#include "util/stopwatch.hpp"
#include "verify/sweep.hpp"

namespace {

using namespace fannet;

constexpr int kMaxPercent = 25;
constexpr std::size_t kShardSize = 8;

core::WeightFaultConfig base_config() {
  core::WeightFaultConfig config;
  config.max_percent = kMaxPercent;
  config.step = 1;
  config.threads = 1;
  return config;
}

bool same_report(const core::WeightFaultReport& a,
                 const core::WeightFaultReport& b) {
  // WeightFault::operator== is memberwise, so a new field cannot silently
  // escape this gate.
  return a.faults == b.faults && a.robust_weights == b.robust_weights &&
         a.evaluations == b.evaluations &&
         a.layer_evaluations == b.layer_evaluations &&
         a.undecided_candidates == b.undecided_candidates &&
         a.model == b.model;
}

}  // namespace

int main() {
  const core::CaseStudy cs =
      core::build_case_study(core::small_case_study_config());
  util::BenchJson json("sweep");

  std::puts("=== Sweep gate: weight-fault campaign, small cohort ===");

  // 1. Reference: the classic in-process scan.
  const util::Stopwatch direct_watch;
  const core::WeightFaultReport reference =
      core::analyze_weight_faults(cs.qnet, cs.test_x, cs.test_y, base_config());
  const double direct_ms = direct_watch.millis();
  json.add("direct_scan", direct_ms, reference.evaluations, 1);
  std::printf("  direct scan      : %8.1f ms  (%zu parameters)\n", direct_ms,
              reference.faults.size());

  // 2. Sweep path, no journal, 1/2/8 threads: bit-identical to the
  // reference.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    core::WeightFaultConfig config = base_config();
    config.sweep = verify::SweepOptions{.shard_size = kShardSize,
                                        .threads = threads};
    const util::Stopwatch watch;
    const core::WeightFaultReport swept =
        core::analyze_weight_faults(cs.qnet, cs.test_x, cs.test_y, config);
    const double ms = watch.millis();
    json.add("sweep_inmemory", ms, swept.evaluations, threads);
    std::printf("  sweep %zu thread%s  : %8.1f ms\n", threads,
                threads == 1 ? " " : "s", ms);
    if (!swept.sweep.complete() || !same_report(reference, swept)) {
      std::fprintf(stderr,
                   "FAIL: in-memory sweep at %zu threads differs from the "
                   "direct scan\n",
                   threads);
      return EXIT_FAILURE;
    }
  }

  // 3. Cold fully-journaled run: the baseline the warm resume must beat.
  const std::string cold_path = "BENCH_sweep.cold.jsonl";
  std::filesystem::remove(cold_path);
  core::WeightFaultConfig cold_config = base_config();
  cold_config.sweep = verify::SweepOptions{.journal_path = cold_path,
                                           .shard_size = kShardSize};
  const util::Stopwatch cold_watch;
  const core::WeightFaultReport cold =
      core::analyze_weight_faults(cs.qnet, cs.test_x, cs.test_y, cold_config);
  const double cold_ms = cold_watch.millis();
  std::filesystem::remove(cold_path);
  json.add("cold_journaled_sweep", cold_ms, cold.sweep.units_executed, 1);
  std::printf("  cold journaled   : %8.1f ms  (%zu shards)\n", cold_ms,
              cold.sweep.total_shards);
  if (!same_report(reference, cold)) {
    std::fputs("FAIL: cold journaled sweep differs from the direct scan\n",
               stderr);
    return EXIT_FAILURE;
  }

  // 4. Kill -> resume per thread count.
  const std::size_t total_shards = cold.sweep.total_shards;
  const std::size_t partial_shards = (total_shards * 4) / 5;  // ~80%
  double resume_1thread_ms = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    const std::string path =
        "BENCH_sweep.resume." + std::to_string(threads) + ".jsonl";
    std::filesystem::remove(path);

    core::WeightFaultConfig partial_config = base_config();
    partial_config.sweep = verify::SweepOptions{.journal_path = path,
                                                .shard_size = kShardSize,
                                                .max_shards = partial_shards,
                                                .threads = threads};
    const util::Stopwatch partial_watch;
    const core::WeightFaultReport partial = core::analyze_weight_faults(
        cs.qnet, cs.test_x, cs.test_y, partial_config);
    json.add("partial_sweep", partial_watch.millis(),
             partial.sweep.units_executed, threads);
    if (partial.sweep.complete() ||
        partial.sweep.executed_shards != partial_shards) {
      std::fputs("FAIL: partial run did not stop at the shard cap\n", stderr);
      return EXIT_FAILURE;
    }

    // Simulate the kill landing mid-append: a torn trailing line.
    {
      std::ofstream torn(path, std::ios::app);
      torn << "{\"shard\":999,\"begin\":7992,\"end\":8000,\"bytes\":4";
    }

    core::WeightFaultConfig resume_config = base_config();
    resume_config.sweep = verify::SweepOptions{.journal_path = path,
                                               .shard_size = kShardSize,
                                               .threads = threads};
    const util::Stopwatch resume_watch;
    const core::WeightFaultReport resumed = core::analyze_weight_faults(
        cs.qnet, cs.test_x, cs.test_y, resume_config);
    const double resume_ms = resume_watch.millis();
    std::filesystem::remove(path);
    json.add("resumed_sweep", resume_ms, resumed.sweep.units_executed,
             threads);
    std::printf(
        "  kill->resume %zut  : %8.1f ms  (%zu shards resumed, %zu "
        "re-executed, %zu torn lines discarded)\n",
        threads, resume_ms, resumed.sweep.resumed_shards,
        resumed.sweep.executed_shards, resumed.sweep.journal_skipped);

    // Journaled shards must never re-execute: the resumed invocation runs
    // exactly the complement of the partial one.
    if (!resumed.sweep.complete() ||
        resumed.sweep.resumed_shards != partial_shards ||
        resumed.sweep.executed_shards != total_shards - partial_shards ||
        resumed.sweep.units_executed + partial.sweep.units_executed !=
            reference.faults.size() ||
        resumed.sweep.journal_skipped != 1) {
      std::fputs("FAIL: resume re-executed journaled shards (or missed the "
                 "torn line)\n",
                 stderr);
      return EXIT_FAILURE;
    }
    if (!same_report(reference, resumed)) {
      std::fprintf(stderr,
                   "FAIL: resumed report at %zu threads differs from the "
                   "uninterrupted run\n",
                   threads);
      return EXIT_FAILURE;
    }
    if (threads == 1) resume_1thread_ms = resume_ms;
  }

  // Warm-resume wall gate: with ~80% of the campaign journaled, the resume
  // must cut >= 30% of the cold journaled wall (same machine, both serial).
  const double saved = 100.0 * (cold_ms - resume_1thread_ms) / cold_ms;
  std::printf("  warm resume saves: %.1f%%  (gate: >= 30%%)\n", saved);
  json.add("wall_saved_percent", saved, 0, 1);
  if (saved < 30.0) {
    std::fputs("FAIL: warm resume saved less than 30% of the cold wall\n",
               stderr);
    return EXIT_FAILURE;
  }

  const std::string path = json.write();
  std::printf("\nwrote %s\n", path.c_str());
  return EXIT_SUCCESS;
}
