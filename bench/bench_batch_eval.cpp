// CI gate for the batched SoA forward evaluator (DESIGN.md §10).
//
// Three gates, all hard failures:
//   1. Oracle identity: every lane of a batch reproduces the scalar
//      eval_output/classify bit-for-bit at batch sizes 1, 7, 64 and 1000,
//      including overflow parity (scalar throw == batched lane flag).
//   2. Tolerance workload (the Fig. 4 sweep under the enumerate engine):
//      reports bit-identical at every batch size, and the auto-batched run
//      at least kMinSpeedup faster than the scalar reference path.
//   3. Weight-fault workload (incremental scan, batched suffix re-eval):
//      full report identity INCLUDING layer_evaluations — the batched scan
//      replays the serial attempt stream, so even the cost counters must
//      match — plus the same wall-clock gate.
//
// Headline numbers land in BENCH_batch_eval.json (docs/bench-format.md).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "core/casestudy.hpp"
#include "core/fannet.hpp"
#include "core/faults.hpp"
#include "la/matrix.hpp"
#include "nn/batch_eval.hpp"
#include "nn/network.hpp"
#include "nn/quantized.hpp"
#include "util/benchjson.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace fannet;
using util::i64;

/// Wall-clock floor for the auto-batched path over the scalar reference.
/// Locally the SoA kernel measures ~2x on both workloads; 1.5x leaves room
/// for CI noise while a real regression (batching no faster than scalar)
/// still fails.
constexpr double kMinSpeedup = 1.5;

/// The ISSUE's identity grid: scalar reference plus three batched shapes
/// (tiny, the auto default, and far-larger-than-any-chunk).
constexpr std::size_t kBatchSizes[] = {1, 7, 64, 1000};

// ---------------------------------------------------------------------------
// Gate 1: forward-pass oracle identity.
// ---------------------------------------------------------------------------
int run_oracle_identity_gate(util::BenchJson& json) {
  std::puts("=== Gate: batched forward pass vs scalar oracle ===");
  const nn::QuantizedNetwork q =
      nn::QuantizedNetwork::quantize(nn::Network::random({6, 24, 24, 4}, 5), 100);
  const nn::BatchEvaluator evaluator(q);
  util::Rng rng(11);

  std::uint64_t lanes_checked = 0;
  const util::Stopwatch watch;
  for (const std::size_t batch_size : kBatchSizes) {
    nn::BatchEvaluator::Batch batch = evaluator.make_batch();
    std::vector<std::vector<i64>> xs;
    std::vector<std::vector<int>> ds;
    for (std::size_t t = 0; t < batch_size; ++t) {
      std::vector<i64> x;
      std::vector<int> d;
      for (std::size_t i = 0; i < q.input_dim(); ++i) {
        x.push_back(rng.uniform_int(1, 100));
        d.push_back(static_cast<int>(rng.uniform_int(-40, 40)));
      }
      batch.push_noised(x, d, 100);
      xs.push_back(std::move(x));
      ds.push_back(std::move(d));
    }
    evaluator.run(batch);
    for (std::size_t t = 0; t < batch_size; ++t) {
      const auto X = nn::QuantizedNetwork::noised_inputs(xs[t], ds[t]);
      if (batch.overflowed(t)) {
        std::fprintf(stderr, "FAIL: unexpected overflow flag (batch %zu)\n",
                     batch_size);
        return EXIT_FAILURE;
      }
      const auto expect = q.eval_output(X);
      const auto got = batch.outputs(t);
      for (std::size_t k = 0; k < expect.size(); ++k) {
        if (got[k] != expect[k]) {
          std::fprintf(stderr,
                       "FAIL: output mismatch at batch %zu lane %zu\n",
                       batch_size, t);
          return EXIT_FAILURE;
        }
      }
      if (batch.label(t) != q.classify(X)) {
        std::fprintf(stderr, "FAIL: label mismatch at batch %zu lane %zu\n",
                     batch_size, t);
        return EXIT_FAILURE;
      }
      ++lanes_checked;
    }
  }

  // Overflow parity: a weight that overflows the exact accumulation makes
  // the scalar path throw; the batch must flag (never wrap, never guess).
  const nn::QuantizedNetwork huge =
      q.with_param(0, 0, 0, std::numeric_limits<i64>::max() / 2);
  const nn::BatchEvaluator huge_eval(huge);
  nn::BatchEvaluator::Batch batch = huge_eval.make_batch();
  const std::vector<i64> x(huge.input_dim(), 50);
  batch.push_noised(x, {}, 100);
  huge_eval.run(batch);
  bool scalar_threw = false;
  try {
    (void)huge.classify_noised(x, {});
  } catch (const ArithmeticError&) {
    scalar_threw = true;
  }
  if (!scalar_threw || !batch.overflowed(0)) {
    std::fprintf(stderr, "FAIL: overflow parity (scalar threw: %d, "
                 "lane flagged: %d)\n", scalar_threw ? 1 : 0,
                 batch.overflowed(0) ? 1 : 0);
    return EXIT_FAILURE;
  }

  std::printf("identical outputs/labels on %llu lanes at batch sizes "
              "1/7/64/1000, overflow parity holds\n\n",
              static_cast<unsigned long long>(lanes_checked));
  json.add("oracle_identity_lanes", watch.millis(), lanes_checked, 1);
  return EXIT_SUCCESS;
}

// ---------------------------------------------------------------------------
// Gate 2: the Fig. 4 tolerance sweep under the enumerate engine.
// ---------------------------------------------------------------------------
bool tolerance_reports_identical(const core::ToleranceReport& a,
                                 const core::ToleranceReport& b) {
  if (a.noise_tolerance != b.noise_tolerance || a.queries != b.queries ||
      a.per_sample.size() != b.per_sample.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.per_sample.size(); ++i) {
    const core::SampleTolerance& sa = a.per_sample[i];
    const core::SampleTolerance& sb = b.per_sample[i];
    if (sa.sample != sb.sample || sa.true_label != sb.true_label ||
        sa.correct_without_noise != sb.correct_without_noise ||
        sa.min_flip_range != sb.min_flip_range || sa.witness != sb.witness) {
      return false;
    }
  }
  return true;
}

int run_tolerance_gate(const core::CaseStudy& cs, util::BenchJson& json) {
  std::puts("=== Gate: tolerance sweep, scalar vs batched enumerate ===");
  const core::Fannet fannet(cs.qnet);
  core::ToleranceConfig config;
  config.engine = core::Engine{"enumerate"};
  config.start_range = 4;  // (2*4+1)^5 grid points per screened sample
  config.threads = 1;

  config.batch = 1;
  const util::Stopwatch scalar_watch;
  const core::ToleranceReport scalar =
      fannet.analyze_tolerance(cs.test_x, cs.test_y, config);
  const double scalar_ms = scalar_watch.millis();

  double batched_ms = 0.0;
  for (const std::size_t batch : kBatchSizes) {
    if (batch == 1) continue;
    config.batch = batch;
    const util::Stopwatch watch;
    const core::ToleranceReport batched =
        fannet.analyze_tolerance(cs.test_x, cs.test_y, config);
    if (batch == nn::BatchEvaluator::kAutoBatch) batched_ms = watch.millis();
    if (!tolerance_reports_identical(scalar, batched)) {
      std::fprintf(stderr, "FAIL: tolerance report differs at batch %zu\n",
                   batch);
      return EXIT_FAILURE;
    }
  }

  const double speedup = scalar_ms / batched_ms;
  std::printf("scalar  %8.1f ms  (batch 1)\n", scalar_ms);
  std::printf("batched %8.1f ms  (batch %zu)\n", batched_ms,
              nn::BatchEvaluator::kAutoBatch);
  std::printf("speedup %.2fx, identical reports at batch 7/64/1000\n\n",
              speedup);
  if (speedup < kMinSpeedup) {
    std::fprintf(stderr, "FAIL: tolerance speedup %.2fx below the %.2fx "
                 "gate\n", speedup, kMinSpeedup);
    return EXIT_FAILURE;
  }
  json.add("tolerance_scalar", scalar_ms, scalar.queries, 1);
  json.add("tolerance_batched", batched_ms, scalar.queries, 1);
  json.add("speedup_x100_tolerance", 100.0 * speedup, 0, 1);
  return EXIT_SUCCESS;
}

// ---------------------------------------------------------------------------
// Gate 3: the weight-fault scan's batched suffix re-evaluation.
// ---------------------------------------------------------------------------
int run_weight_fault_gate(util::BenchJson& json) {
  std::puts("=== Gate: weight-fault scan, scalar vs batched suffix ===");
  // A wider/deeper net than the case study so the suffix re-evaluation has
  // real MAC volume to vectorize.  Input-heavy on purpose — feature-rich
  // inputs are the realistic shape for this domain (the paper's case study
  // selects from 7129 gene-expression features), and they put most of the
  // parameter mass in layer 0, whose fault suffix spans both hidden
  // layers.  Every sample classifies correctly by construction (labels
  // come from the network itself).
  const nn::QuantizedNetwork q = nn::QuantizedNetwork::quantize(
      nn::Network::random({24, 32, 16, 4}, 21), 100);
  util::Rng rng(23);
  la::Matrix<i64> inputs(16, 24);
  std::vector<int> labels;
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    for (std::size_t i = 0; i < inputs.cols(); ++i) {
      inputs(s, i) = rng.uniform_int(1, 100);
    }
    labels.push_back(q.classify_noised(inputs.row(s), {}));
  }

  core::WeightFaultConfig config;
  config.max_percent = 10;
  config.step = 1;
  config.threads = 1;

  config.batch = 1;
  const util::Stopwatch scalar_watch;
  const core::WeightFaultReport scalar =
      core::analyze_weight_faults(q, inputs, labels, config);
  const double scalar_ms = scalar_watch.millis();

  double batched_ms = 0.0;
  for (const std::size_t batch : kBatchSizes) {
    if (batch == 1) continue;
    config.batch = batch;
    const util::Stopwatch watch;
    const core::WeightFaultReport batched =
        core::analyze_weight_faults(q, inputs, labels, config);
    if (batch == nn::BatchEvaluator::kAutoBatch) batched_ms = watch.millis();
    // FULL identity, layer_evaluations included: the batched scan replays
    // the serial attempt stream, so even the analytic cost charges match.
    if (batched.faults != scalar.faults ||
        batched.robust_weights != scalar.robust_weights ||
        batched.evaluations != scalar.evaluations ||
        batched.layer_evaluations != scalar.layer_evaluations ||
        batched.undecided_candidates != scalar.undecided_candidates) {
      std::fprintf(stderr, "FAIL: weight-fault report differs at batch "
                   "%zu\n", batch);
      return EXIT_FAILURE;
    }
  }

  const double speedup = scalar_ms / batched_ms;
  std::printf("scalar  %8.1f ms  (%llu evaluations)\n", scalar_ms,
              static_cast<unsigned long long>(scalar.evaluations));
  std::printf("batched %8.1f ms  (batch %zu)\n", batched_ms,
              nn::BatchEvaluator::kAutoBatch);
  std::printf("speedup %.2fx, identical reports (counters included) at "
              "batch 7/64/1000\n\n", speedup);
  if (speedup < kMinSpeedup) {
    std::fprintf(stderr, "FAIL: weight-fault speedup %.2fx below the %.2fx "
                 "gate\n", speedup, kMinSpeedup);
    return EXIT_FAILURE;
  }
  json.add("weight_faults_scalar", scalar_ms, scalar.evaluations, 1);
  json.add("weight_faults_batched", batched_ms, scalar.evaluations, 1);
  json.add("speedup_x100_weight_faults", 100.0 * speedup, 0, 1);
  return EXIT_SUCCESS;
}

// ---------------------------------------------------------------------------
// Microbenchmarks (skipped by CI's --benchmark_filter=__gates_only__).
// ---------------------------------------------------------------------------
void BM_BatchedForward(benchmark::State& state) {
  const nn::QuantizedNetwork q =
      nn::QuantizedNetwork::quantize(nn::Network::random({6, 24, 24, 4}, 5), 100);
  const nn::BatchEvaluator evaluator(q);
  const std::size_t lanes = static_cast<std::size_t>(state.range(0));
  nn::BatchEvaluator::Batch batch = evaluator.make_batch();
  util::Rng rng(7);
  std::vector<i64> x(q.input_dim());
  for (std::size_t t = 0; t < lanes; ++t) {
    for (auto& v : x) v = rng.uniform_int(1, 100);
    batch.push_noised(x, {}, 100);
  }
  for (auto _ : state) {
    evaluator.run(batch);
    benchmark::DoNotOptimize(batch.label(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lanes));
}
BENCHMARK(BM_BatchedForward)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  util::BenchJson json("batch_eval");

  if (run_oracle_identity_gate(json) != EXIT_SUCCESS) return EXIT_FAILURE;

  const core::CaseStudy small =
      core::build_case_study(core::small_case_study_config());
  if (run_tolerance_gate(small, json) != EXIT_SUCCESS) return EXIT_FAILURE;
  if (run_weight_fault_gate(json) != EXIT_SUCCESS) return EXIT_FAILURE;

  const std::string path = json.write();
  std::printf("wrote %s\n", path.c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
