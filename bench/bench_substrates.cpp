// Micro-benchmarks of the from-scratch substrates: the CDCL SAT solver,
// the BDD package, the exact fixed-point forward pass, and the
// bit-blasting/Tseitin pipeline.  These bound the cost of everything the
// higher-level harnesses do.
#include <benchmark/benchmark.h>

#include "bdd/bdd.hpp"
#include "circuit/tseitin.hpp"
#include "core/casestudy.hpp"
#include "mc/compile.hpp"
#include "core/translate.hpp"
#include "nn/quantized.hpp"
#include "sat/solver.hpp"
#include "util/benchjson.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace fannet;

// ---------------------------------------------------------------------------
// SAT
// ---------------------------------------------------------------------------
void build_php(sat::Solver& s, int pigeons, int holes) {
  std::vector<std::vector<sat::Var>> at(static_cast<std::size_t>(pigeons));
  for (auto& row : at) {
    for (int h = 0; h < holes; ++h) row.push_back(s.new_var());
  }
  for (int p = 0; p < pigeons; ++p) {
    sat::Clause c;
    for (int h = 0; h < holes; ++h) {
      c.emplace_back(at[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)], false);
    }
    s.add_clause(std::move(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_clause({sat::Lit(at[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)], true),
                      sat::Lit(at[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)], true)});
      }
    }
  }
}

void BM_SatPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    build_php(s, holes + 1, holes);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(6)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_SatRandom3Sat(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const int clauses = static_cast<int>(4.2 * vars);
  for (auto _ : state) {
    util::Rng rng(77);
    sat::Solver s;
    for (int v = 0; v < vars; ++v) s.new_var();
    for (int c = 0; c < clauses; ++c) {
      sat::Clause cl;
      for (int k = 0; k < 3; ++k) {
        cl.emplace_back(static_cast<sat::Var>(rng.uniform_int(0, vars - 1)),
                        rng.bernoulli(0.5));
      }
      s.add_clause(std::move(cl));
    }
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatRandom3Sat)->Arg(50)->Arg(100)->Arg(150)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// BDD
// ---------------------------------------------------------------------------
void BM_BddNQueensStyleConjunction(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    bdd::Manager m(n);
    // Chain of xors and ands exercising ite + unique table.
    bdd::Bdd f = m.bdd_true();
    for (unsigned i = 0; i + 1 < n; ++i) {
      f = m.land(f, m.lxor(m.var(i), m.var(i + 1)));
    }
    benchmark::DoNotOptimize(m.sat_count(f));
  }
}
BENCHMARK(BM_BddNQueensStyleConjunction)->Arg(16)->Arg(24)->Arg(64);

// ---------------------------------------------------------------------------
// Exact forward pass + translation + bit-blasting
// ---------------------------------------------------------------------------
void BM_ExactForwardPass(benchmark::State& state) {
  const core::CaseStudy cs = core::build_case_study(core::small_case_study_config());
  const auto X = nn::QuantizedNetwork::noised_inputs(cs.test_x.row(0), {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(cs.qnet.classify(X));
  }
}
BENCHMARK(BM_ExactForwardPass);

void BM_TranslateToSmv(benchmark::State& state) {
  const core::CaseStudy cs = core::build_case_study(core::small_case_study_config());
  verify::Query q;
  q.net = &cs.qnet;
  q.x.assign(cs.test_x.row(0).begin(), cs.test_x.row(0).end());
  q.true_label = cs.test_y[0];
  q.box = verify::NoiseBox::symmetric(5, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::translate_sample(q).module.defines().size());
  }
}
BENCHMARK(BM_TranslateToSmv);

void BM_BitBlastNetworkModel(benchmark::State& state) {
  const core::CaseStudy cs = core::build_case_study(core::small_case_study_config());
  verify::Query q;
  q.net = &cs.qnet;
  q.x.assign(cs.test_x.row(0).begin(), cs.test_x.row(0).end());
  q.true_label = cs.test_y[0];
  q.box = verify::NoiseBox::symmetric(5, 3);
  const core::Translation t = core::translate_sample(q);
  for (auto _ : state) {
    const mc::SmvCompiler compiler(t.module);
    circuit::Circuit c;
    const auto s0 = compiler.make_state_inputs(c);
    const auto step = compiler.step(c, s0);
    // The property cone carries the whole network (every DEFINE: scaled
    // inputs, 20 ReLU neurons, outputs, argmax) — that is what BMC pays.
    const circuit::CLit prop =
        compiler.compile_bool(c, t.module.specs().front().expr, s0);
    sat::Solver solver;
    circuit::TseitinEncoder enc(c, solver);
    enc.assert_true(step.valid);
    enc.assert_true(~prop);
    benchmark::DoNotOptimize(solver.num_clauses());
    state.counters["aig_nodes"] = static_cast<double>(c.num_nodes());
    state.counters["cnf_clauses"] = static_cast<double>(solver.num_clauses());
  }
}
BENCHMARK(BM_BitBlastNetworkModel)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Headline JSON: one hard SAT instance (the conflict-driven core is what
  // bounds the BMC engine's cost).
  util::BenchJson json("substrates");
  {
    const util::Stopwatch watch;
    sat::Solver s;
    build_php(s, 8, 7);
    const auto verdict = s.solve();
    json.add("sat_pigeonhole_7", watch.millis(), s.stats().conflicts, 1);
    benchmark::DoNotOptimize(verdict);
  }
  json.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
