// Reproduces paper Fig. 4 (noise-tolerance panels): the number of
// misclassified test inputs as the noise range grows over +/-5, +/-10, ...,
// +/-50 %, and the resulting noise tolerance (paper: no misclassification
// at +/-11% or below).
//
// Counts derive from the per-sample minimal flipping ranges, each decided
// exactly by the complete branch-and-bound engine.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/casestudy.hpp"
#include "core/fannet.hpp"
#include "core/report.hpp"
#include "util/benchjson.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace fannet;

std::uint64_t print_fig4_tolerance() {
  const core::CaseStudy cs = core::build_case_study();
  const core::Fannet fannet(cs.qnet);

  core::ToleranceConfig config;
  config.start_range = 50;
  config.engine = core::Engine::kCascade;
  const core::ToleranceReport report =
      fannet.analyze_tolerance(cs.test_x, cs.test_y, config);

  std::puts("=== Fig. 4: misclassified inputs vs noise range "
            "(paper: counts grow with the range; 0 at +/-11% and below) ===");
  core::TextTable t({"noise range", "misclassified inputs", "of correct"});
  std::size_t correct = 0;
  for (const auto& st : report.per_sample) correct += st.correct_without_noise;
  for (int range = 5; range <= 50; range += 5) {
    std::size_t flipped = 0;
    for (const auto& st : report.per_sample) {
      flipped += st.min_flip_range.has_value() && *st.min_flip_range <= range;
    }
    t.add_row({"+/-" + std::to_string(range) + "%", std::to_string(flipped),
               std::to_string(correct)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("\nNoise tolerance: +/-%d%%   (paper: +/-11%%)\n",
              report.noise_tolerance);
  std::printf("Formal P2 queries issued: %llu\n\n",
              static_cast<unsigned long long>(report.queries));
  return report.queries;
}

/// Time of one complete tolerance analysis (binary descent, B&B engine).
void BM_ToleranceAnalysis(benchmark::State& state) {
  const core::CaseStudy cs = core::build_case_study();
  const core::Fannet fannet(cs.qnet);
  core::ToleranceConfig config;
  config.start_range = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fannet.analyze_tolerance(cs.test_x, cs.test_y, config).noise_tolerance);
  }
}
BENCHMARK(BM_ToleranceAnalysis)->Arg(25)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  util::BenchJson json("fig4_tolerance");
  const util::Stopwatch watch;
  const std::uint64_t queries = print_fig4_tolerance();
  json.add("tolerance_analysis", watch.millis(), queries, 1);
  json.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
