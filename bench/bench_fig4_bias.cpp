// Reproduces paper Fig. 4 (training-bias panel): the direction of every
// noise-induced misclassification, against the class balance of the
// training set (paper: ~70% of training samples are L1 and ALL observed
// flips go L0 -> L1).
//
// Two complementary views are printed:
//  1. per-sample fragility by true label (how many samples of each label
//     can be flipped at all, per range) — cap-free and therefore exact;
//  2. the corpus direction histogram (the paper's view over obtained
//     counterexamples; capped per sample, as the paper's extraction is).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/analysis.hpp"
#include "core/casestudy.hpp"
#include "core/fannet.hpp"
#include "core/report.hpp"
#include "util/benchjson.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace fannet;

std::uint64_t print_fig4_bias() {
  const core::CaseStudy cs = core::build_case_study();
  const core::Fannet fannet(cs.qnet);

  core::ToleranceConfig config;
  config.start_range = 50;
  const core::ToleranceReport tolerance =
      fannet.analyze_tolerance(cs.test_x, cs.test_y, config);

  std::puts("=== Fig. 4: training bias ===");
  std::puts("View 1: flippable samples by true label (exact, no caps)");
  core::TextTable t({"noise range", "L0 samples flippable", "L1 samples flippable"});
  for (int range = 10; range <= 50; range += 10) {
    std::size_t l0 = 0, l1 = 0;
    for (const auto& st : tolerance.per_sample) {
      if (!st.min_flip_range.has_value() || *st.min_flip_range > range) continue;
      (st.true_label == 0 ? l0 : l1) += 1;
    }
    t.add_row({"+/-" + std::to_string(range) + "%", std::to_string(l0),
               std::to_string(l1)});
  }
  std::fputs(t.to_string().c_str(), stdout);

  const int corpus_range = std::min(50, tolerance.noise_tolerance + 10);
  const auto corpus =
      fannet.extract_corpus(cs.test_x, cs.test_y, corpus_range, 2000);
  std::printf("\nView 2: corpus direction histogram at +/-%d%% "
              "(paper: all flips L0 -> L1)\n",
              corpus_range);
  const core::BiasReport bias = core::analyze_bias(corpus, 2, cs.train_y);
  std::fputs(core::format_bias(bias).c_str(), stdout);
  std::puts("");
  return tolerance.queries + corpus.size();
}

void BM_CorpusExtraction(benchmark::State& state) {
  const core::CaseStudy cs = core::build_case_study();
  const core::Fannet fannet(cs.qnet);
  const int range = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fannet.extract_corpus(cs.test_x, cs.test_y, range, 500).size());
  }
}
BENCHMARK(BM_CorpusExtraction)->Arg(15)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  util::BenchJson json("fig4_bias");
  const util::Stopwatch watch;
  const std::uint64_t work = print_fig4_bias();
  json.add("bias_analysis", watch.millis(), work, 1);
  json.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
