// CI gate for the SAT-backed P2 engine (DESIGN.md §11).
//
// Three gates, all hard failures:
//   1. Verdict identity: on a seeded cohort of small nets the "sat" engine
//      must return exactly the enumeration oracle's verdict.
//   2. Witness bit-identity: on every vulnerable query the decoded witness
//      must equal the bnb engine's canonical lexicographically-lowest
//      counterexample, field for field.
//   3. Inprocessing must win: on hard robust instances (deep UNSAT search)
//      the full inprocessing suite must spend fewer total conflicts than
//      the bare CDCL loop.  Conflicts are deterministic, so unlike a wall
//      gate this cannot flake on a loaded CI machine; wall time is still
//      recorded in the JSON for the PR-over-PR trajectory.
//
// Headline numbers land in BENCH_sat_engine.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "mc/sat_engine.hpp"
#include "nn/network.hpp"
#include "util/benchjson.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "verify/engine.hpp"
#include "verify/enumerate.hpp"

namespace {

using namespace fannet;
using util::i64;
using verify::Query;
using verify::Verdict;
using verify::VerifyResult;

nn::QuantizedNetwork random_qnet(std::uint64_t seed, std::size_t inputs,
                                 std::size_t hidden) {
  const nn::Network net = nn::Network::random({inputs, hidden, 2}, seed);
  return nn::QuantizedNetwork::quantize(net, 100);
}

Query make_query(const nn::QuantizedNetwork& net, std::vector<i64> x,
                 int label, int range, bool bias_node = false) {
  Query q;
  q.net = &net;
  q.x = std::move(x);
  q.true_label = label;
  q.box = verify::NoiseBox::symmetric(q.x.size() + (bias_node ? 1 : 0), range);
  q.bias_node = bias_node;
  return q;
}

// ---------------------------------------------------------------------------
// Gates 1 + 2: verdict identity vs the enumeration oracle and witness
// bit-identity vs bnb on a seeded cohort of small nets.
// ---------------------------------------------------------------------------
int run_identity_gates(util::BenchJson& json) {
  std::puts("-- gate: sat verdicts == enumerate, sat witnesses == bnb --");
  double wall_ms = 0.0;
  std::uint64_t conflicts = 0;
  int vulnerable = 0, robust = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const nn::QuantizedNetwork net = random_qnet(seed, 2, 3);
    util::Rng rng(seed * 613 + 7);
    std::vector<i64> x(2);
    for (auto& v : x) v = rng.uniform_int(1, 100);
    const int actual = net.classify_noised(x, {});
    // Half the cohort asks about the wrong label (vulnerable at the zero
    // vector), half about the right one (real search).
    const int label = rng.bernoulli(0.5) ? 1 - actual : actual;
    const bool bias = rng.bernoulli(0.5);
    const Query q = make_query(net, x, label, 2, bias);

    const util::Stopwatch watch;
    const VerifyResult ours = mc::sat_verify(q, mc::SatVerifyOptions{});
    wall_ms += watch.millis();
    conflicts += ours.work;

    const VerifyResult truth = verify::enumerate_find_first(q);
    if (ours.verdict != truth.verdict || ours.resource_limited) {
      std::fprintf(stderr, "FAIL: verdict mismatch at seed %llu\n",
                   static_cast<unsigned long long>(seed));
      return EXIT_FAILURE;
    }
    if (ours.verdict == Verdict::kVulnerable) {
      ++vulnerable;
      const VerifyResult bnb = verify::engine("bnb").verify(q);
      if (!ours.counterexample.has_value() || !bnb.counterexample.has_value() ||
          !(*ours.counterexample == *bnb.counterexample)) {
        std::fprintf(stderr, "FAIL: witness differs from bnb at seed %llu\n",
                     static_cast<unsigned long long>(seed));
        return EXIT_FAILURE;
      }
    } else {
      ++robust;
    }
  }
  if (vulnerable == 0 || robust == 0) {
    std::fprintf(stderr, "FAIL: cohort did not cover both verdicts "
                 "(%d vulnerable, %d robust)\n", vulnerable, robust);
    return EXIT_FAILURE;
  }
  std::printf("identity cohort: %d vulnerable + %d robust, %.1f ms, "
              "%llu conflicts\n", vulnerable, robust, wall_ms,
              static_cast<unsigned long long>(conflicts));
  json.add("identity_cohort", wall_ms, conflicts, 1);
  return EXIT_SUCCESS;
}

// ---------------------------------------------------------------------------
// Gate 3: on hard robust instances the inprocessing suite must beat the
// bare CDCL loop on total conflicts.
// ---------------------------------------------------------------------------
int run_inprocess_gate(util::BenchJson& json) {
  std::puts("-- gate: inprocessing beats bare CDCL on hard robust UNSAT --");
  // Robust queries on wider nets: the refutation has to cover the whole
  // noise box, which is where search depth (and thus inprocessing) matters.
  std::vector<Query> instances;
  std::vector<nn::QuantizedNetwork> nets;  // keep Query::net pointers alive
  nets.reserve(32);
  for (std::uint64_t seed = 100; seed < 132 && instances.size() < 4; ++seed) {
    nets.push_back(random_qnet(seed, 2, 6));
    util::Rng rng(seed);
    std::vector<i64> x{rng.uniform_int(1, 100), rng.uniform_int(1, 100)};
    const Query q = make_query(nets.back(), x,
                               nets.back().classify_noised(x, {}), 2);
    if (verify::enumerate_find_first(q).verdict == Verdict::kRobust) {
      instances.push_back(q);
    } else {
      nets.pop_back();
    }
  }
  if (instances.size() < 4) {
    std::fputs("FAIL: could not assemble the hard robust cohort\n", stderr);
    return EXIT_FAILURE;
  }

  const auto run_suite = [&](const sat::InprocessOptions& opts, double* ms) {
    std::uint64_t conflicts = 0;
    const util::Stopwatch watch;
    for (const Query& q : instances) {
      mc::SatVerifyOptions options;
      options.inprocess = opts;
      const VerifyResult r = mc::sat_verify(q, options);
      if (r.verdict != Verdict::kRobust) return static_cast<std::uint64_t>(0);
      conflicts += r.work;
    }
    *ms = watch.millis();
    return conflicts;
  };

  double ms_off = 0.0, ms_on = 0.0;
  const std::uint64_t off = run_suite({}, &ms_off);
  const std::uint64_t on = run_suite(sat::InprocessOptions::all(), &ms_on);
  if (off == 0 || on == 0) {
    std::fputs("FAIL: a hard instance was not proven robust\n", stderr);
    return EXIT_FAILURE;
  }
  std::printf("conflicts: bare %llu (%.1f ms) vs inprocessed %llu (%.1f ms)\n",
              static_cast<unsigned long long>(off), ms_off,
              static_cast<unsigned long long>(on), ms_on);
  json.add("hard_robust_bare", ms_off, off, 1);
  json.add("hard_robust_inprocessed", ms_on, on, 1);
  if (on >= off) {
    std::fprintf(stderr, "FAIL: inprocessing did not reduce conflicts "
                 "(%llu >= %llu)\n", static_cast<unsigned long long>(on),
                 static_cast<unsigned long long>(off));
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}

// ---------------------------------------------------------------------------
// Microbenchmarks (skipped by CI's --benchmark_filter=__gates_only__).
// ---------------------------------------------------------------------------
void BM_SatEngine(benchmark::State& state) {
  const nn::QuantizedNetwork net = random_qnet(9, 2, 4);
  const std::vector<i64> x{40, 75};
  const Query q = make_query(net, x, net.classify_noised(x, {}),
                             static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc::sat_verify(q, mc::SatVerifyOptions{}).verdict);
  }
}
BENCHMARK(BM_SatEngine)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  util::BenchJson json("sat_engine");

  if (run_identity_gates(json) != EXIT_SUCCESS) return EXIT_FAILURE;
  if (run_inprocess_gate(json) != EXIT_SUCCESS) return EXIT_FAILURE;

  const std::string path = json.write();
  std::printf("wrote %s\n", path.c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
