// Extension bench (no paper counterpart — the hardware-fault twin of
// Fig. 4's input-sensitivity panel): rank the network parameters by the
// smallest exact perturbation that misclassifies a test sample, and
// contrast parameter fragility with the input-noise tolerance.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "core/casestudy.hpp"
#include "core/fannet.hpp"
#include "core/faults.hpp"
#include "util/benchjson.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace fannet;

std::uint64_t print_weight_faults() {
  const core::CaseStudy cs = core::build_case_study();

  std::puts("=== Extension: weight-fault sensitivity (accelerator-reliability view) ===");
  std::puts("Smallest exact perturbation w' = w*(100+p)/100 flipping any");
  std::puts("correctly-classified test sample, per parameter:\n");

  core::WeightFaultConfig scan;
  scan.max_percent = 200;  // up to 3x the stored value / full sign flips
  const core::WeightFaultReport report =
      core::analyze_weight_faults(cs.qnet, cs.test_x, cs.test_y, scan);
  std::fputs(core::format_weight_faults(report, 12).c_str(), stdout);

  const core::Fannet fannet(cs.qnet);
  core::ToleranceConfig config;
  config.start_range = 50;
  const auto tolerance = fannet.analyze_tolerance(cs.test_x, cs.test_y, config);
  const auto fragile = core::most_fragile_weights(report, 1);
  if (!fragile.empty()) {
    std::printf("\nComparison: input-noise tolerance +/-%d%% vs most fragile "
                "weight flipping at +/-%d%% — %s\n",
                tolerance.noise_tolerance, *fragile[0].min_flip_percent,
                *fragile[0].min_flip_percent < tolerance.noise_tolerance
                    ? "parameter storage is the weaker link"
                    : "inputs are the weaker link");
  }
  std::puts("");
  return report.evaluations;
}

void BM_WeightFaultScan(benchmark::State& state) {
  const core::CaseStudy cs = core::build_case_study();
  core::WeightFaultConfig config;
  config.max_percent = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::analyze_weight_faults(cs.qnet, cs.test_x, cs.test_y, config)
            .evaluations);
  }
}
BENCHMARK(BM_WeightFaultScan)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  util::BenchJson json("ext_weight_faults");
  const util::Stopwatch watch;
  const std::uint64_t evaluations = print_weight_faults();
  json.add("weight_fault_scan", watch.millis(), evaluations,
           std::thread::hardware_concurrency());
  json.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
