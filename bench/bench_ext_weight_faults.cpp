// Extension bench (no paper counterpart — the hardware-fault twin of
// Fig. 4's input-sensitivity panel): rank the network parameters by the
// smallest exact perturbation that misclassifies a test sample, and
// contrast parameter fragility with the input-noise tolerance.
//
// The bench is also the weight-fault engine's CI gate: the incremental
// prefix-memoized scan (DESIGN.md §8) must produce a report bit-identical
// to the naive whole-network rescan — for 1, 2 and 8 worker threads —
// while performing strictly fewer per-layer evaluations, and its wall
// speedup is gated and recorded in BENCH_weight_faults.json
// (docs/bench-format.md).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/casestudy.hpp"
#include "core/fannet.hpp"
#include "core/faults.hpp"
#include "util/benchjson.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace fannet;

/// Wall-clock gate for the incremental engine on the small cohort.  The
/// measured local speedup is ~3-8x; the floor is deliberately loose so CI
/// noise cannot trip it while a real regression (incremental no faster
/// than naive) still fails.
constexpr double kMinSpeedup = 1.15;

/// Report identity *excluding* layer_evaluations — the one field that
/// legitimately differs between the two engines (that is the point of the
/// incremental evaluator).  Faults compare through WeightFault's memberwise
/// operator==, so new fields join the gate automatically.
bool reports_identical(const core::WeightFaultReport& a,
                       const core::WeightFaultReport& b) {
  return a.faults == b.faults && a.robust_weights == b.robust_weights &&
         a.evaluations == b.evaluations &&
         a.undecided_candidates == b.undecided_candidates && a.model == b.model;
}

/// Gate: naive-vs-incremental bit-identity, strictly-fewer layer
/// evaluations, thread-count determinism, and the wall-clock speedup.
int run_identity_and_speedup_gate(const core::CaseStudy& cs,
                                  util::BenchJson& json) {
  std::puts("=== Gate: incremental vs naive scan (small cohort) ===");
  core::WeightFaultConfig config;
  config.max_percent = 50;
  config.threads = 1;

  config.scan = core::FaultScan::kNaive;
  const util::Stopwatch naive_watch;
  const core::WeightFaultReport naive =
      core::analyze_weight_faults(cs.qnet, cs.test_x, cs.test_y, config);
  const double naive_ms = naive_watch.millis();

  config.scan = core::FaultScan::kIncremental;
  const util::Stopwatch inc_watch;
  const core::WeightFaultReport incremental =
      core::analyze_weight_faults(cs.qnet, cs.test_x, cs.test_y, config);
  const double incremental_ms = inc_watch.millis();

  if (!reports_identical(naive, incremental)) {
    std::fprintf(stderr,
                 "FAIL: incremental report differs from the naive scan\n");
    return EXIT_FAILURE;
  }
  if (incremental.layer_evaluations >= naive.layer_evaluations) {
    std::fprintf(stderr,
                 "FAIL: incremental scan did not perform strictly fewer "
                 "layer evaluations (%llu vs naive %llu)\n",
                 static_cast<unsigned long long>(incremental.layer_evaluations),
                 static_cast<unsigned long long>(naive.layer_evaluations));
    return EXIT_FAILURE;
  }
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    config.threads = threads;
    const core::WeightFaultReport parallel =
        core::analyze_weight_faults(cs.qnet, cs.test_x, cs.test_y, config);
    if (!reports_identical(incremental, parallel) ||
        parallel.layer_evaluations != incremental.layer_evaluations) {
      std::fprintf(stderr, "FAIL: report differs at %zu threads\n", threads);
      return EXIT_FAILURE;
    }
  }

  const double speedup = naive_ms / incremental_ms;
  std::printf("naive       %8.1f ms  (%llu layer evaluations)\n", naive_ms,
              static_cast<unsigned long long>(naive.layer_evaluations));
  std::printf("incremental %8.1f ms  (%llu layer evaluations)\n",
              incremental_ms,
              static_cast<unsigned long long>(incremental.layer_evaluations));
  std::printf("speedup %.2fx, identical reports at 1/2/8 threads\n\n", speedup);
  if (speedup < kMinSpeedup) {
    std::fprintf(stderr, "FAIL: incremental speedup %.2fx below the %.2fx "
                 "gate\n", speedup, kMinSpeedup);
    return EXIT_FAILURE;
  }
  json.add("naive_scan", naive_ms, naive.layer_evaluations, 1);
  json.add("incremental_scan", incremental_ms, incremental.layer_evaluations,
           1);
  json.add("speedup_x100_incremental", 100.0 * speedup, 0, 1);
  return EXIT_SUCCESS;
}

/// Fault-model diversity: the same ranking under each corruption model.
void run_fault_models(const core::CaseStudy& cs, util::BenchJson& json) {
  std::puts("=== Fault-model diversity (small cohort) ===");
  for (const core::FaultModel model :
       {core::FaultModel::kPercentScale, core::FaultModel::kStuckAtZero,
        core::FaultModel::kSignFlip, core::FaultModel::kBitFlip}) {
    core::WeightFaultConfig config;
    config.model = model;
    const util::Stopwatch watch;
    const core::WeightFaultReport report =
        core::analyze_weight_faults(cs.qnet, cs.test_x, cs.test_y, config);
    const double ms = watch.millis();
    const std::size_t fragile = report.faults.size() - report.robust_weights;
    std::printf("%-14s %4zu/%zu parameters fragile  (%llu evaluations%s)\n",
                std::string(core::fault_model_name(model)).c_str(), fragile,
                report.faults.size(),
                static_cast<unsigned long long>(report.evaluations),
                report.undecided_candidates > 0 ? ", some out of exact range"
                                                : "");
    json.add("fault_model_" + std::string(core::fault_model_name(model)), ms,
             fragile, 1);
  }
  std::puts("");
}

std::uint64_t print_weight_faults() {
  const core::CaseStudy cs = core::build_case_study();

  std::puts("=== Extension: weight-fault sensitivity (accelerator-reliability view) ===");
  std::puts("Smallest exact perturbation w' = w*(100+p)/100 flipping any");
  std::puts("correctly-classified test sample, per parameter:\n");

  core::WeightFaultConfig scan;
  scan.max_percent = 200;  // up to 3x the stored value / full sign flips
  const core::WeightFaultReport report =
      core::analyze_weight_faults(cs.qnet, cs.test_x, cs.test_y, scan);
  std::fputs(core::format_weight_faults(report, 12).c_str(), stdout);

  const core::Fannet fannet(cs.qnet);
  core::ToleranceConfig config;
  config.start_range = 50;
  const auto tolerance = fannet.analyze_tolerance(cs.test_x, cs.test_y, config);
  const auto fragile = core::most_fragile_weights(report, 1);
  if (!fragile.empty()) {
    std::printf("\nComparison: input-noise tolerance +/-%d%% vs most fragile "
                "weight flipping at +/-%d%% — %s\n",
                tolerance.noise_tolerance, *fragile[0].min_flip_percent,
                *fragile[0].min_flip_percent < tolerance.noise_tolerance
                    ? "parameter storage is the weaker link"
                    : "inputs are the weaker link");
  }
  std::puts("");
  return report.evaluations;
}

void BM_WeightFaultScan(benchmark::State& state) {
  const core::CaseStudy cs = core::build_case_study();
  core::WeightFaultConfig config;
  config.max_percent = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::analyze_weight_faults(cs.qnet, cs.test_x, cs.test_y, config)
            .evaluations);
  }
}
BENCHMARK(BM_WeightFaultScan)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  util::BenchJson json("weight_faults");

  const core::CaseStudy small =
      core::build_case_study(core::small_case_study_config());
  if (run_identity_and_speedup_gate(small, json) != EXIT_SUCCESS) {
    return EXIT_FAILURE;
  }
  run_fault_models(small, json);

  const util::Stopwatch watch;
  const std::uint64_t evaluations = print_weight_faults();
  json.add("weight_fault_scan", watch.millis(), evaluations,
           std::thread::hardware_concurrency());
  const std::string path = json.write();
  std::printf("wrote %s\n", path.c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
