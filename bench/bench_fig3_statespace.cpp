// Reproduces paper Fig. 3(b)/(c): state-space size of the network FSM
// without noise (3 states / 6 transitions) and with noise (for 6 input
// nodes and range [0,1]%: 65 states / 4160 transitions), plus the
// exponential-growth sweep the paper calls out.  Counts come from the
// explicit-state engine exploring the actual SMV models, and are checked
// against the closed form 1+(delta+1)^nodes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/report.hpp"
#include "core/translate.hpp"
#include "mc/explicit.hpp"
#include "util/benchjson.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace fannet;

std::uint64_t print_fig3_tables() {
  std::uint64_t states_total = 0;
  std::puts("=== Fig. 3(b): label FSM, no noise (paper: 3 states, 6 transitions) ===");
  {
    const smv::Module m = core::make_fig3_label_fsm();
    const mc::ExplicitChecker checker(m);
    const mc::ReachabilityStats stats = checker.explore();
    core::TextTable t({"model", "states", "transitions", "paper"});
    t.add_row({"label FSM", std::to_string(stats.num_states),
               std::to_string(stats.num_transitions), "3 / 6"});
    std::fputs(t.to_string().c_str(), stdout);
  }

  std::puts("\n=== Fig. 3(c): noise FSM, 6 input nodes, range [0,1]% "
            "(paper: 65 states, 4160 transitions) ===");
  {
    const smv::Module m = core::make_fig3_noise_fsm(6, 1);
    const mc::ExplicitChecker checker(m);
    const mc::ReachabilityStats stats = checker.explore();
    core::TextTable t({"model", "states", "transitions", "paper"});
    t.add_row({"noise FSM [0,1]%", std::to_string(stats.num_states),
               std::to_string(stats.num_transitions), "65 / 4160"});
    std::fputs(t.to_string().c_str(), stdout);
  }

  std::puts("\n=== Fig. 3(c) sweep: exponential growth with the noise range ===");
  core::TextTable t({"nodes", "range [0,d]%", "states", "transitions",
                     "closed form 1+(d+1)^n"});
  for (const auto& [nodes, delta] :
       std::vector<std::pair<std::size_t, int>>{
           {6, 0}, {6, 1}, {6, 2}, {4, 1}, {4, 3}, {5, 2}}) {
    const smv::Module m = core::make_fig3_noise_fsm(nodes, delta);
    const mc::ExplicitChecker checker(m);
    const mc::ReachabilityStats stats = checker.explore();
    states_total += stats.num_states;
    std::uint64_t box = 1;
    for (std::size_t i = 0; i < nodes; ++i) {
      box *= static_cast<std::uint64_t>(delta + 1);
    }
    t.add_row({std::to_string(nodes), "[0," + std::to_string(delta) + "]",
               std::to_string(stats.num_states),
               std::to_string(stats.num_transitions),
               std::to_string(1 + box)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::puts("");
  return states_total;
}

/// Wall-clock of the Fig.-3(c) exploration itself (the 65/4160 model).
void BM_ExploreNoiseFsm(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const int delta = static_cast<int>(state.range(1));
  const smv::Module m = core::make_fig3_noise_fsm(nodes, delta);
  for (auto _ : state) {
    const mc::ExplicitChecker checker(m);
    benchmark::DoNotOptimize(checker.explore().num_states);
  }
}
BENCHMARK(BM_ExploreNoiseFsm)
    ->Args({6, 1})
    ->Args({6, 2})
    ->Args({4, 3})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  util::BenchJson json("fig3_statespace");
  const util::Stopwatch watch;
  const std::uint64_t states = print_fig3_tables();
  json.add("fig3_exploration", watch.millis(), states, 1);
  json.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
