// Ablation of the design choices DESIGN.md calls out:
//  - which P2 engine answers the query fastest — every strategy in the
//    engine registry (enumerate / interval / symbolic / bnb / cascade /
//    explicit-mc / bmc) runs the same query, registered as benchmarks
//    straight off the registry so new engines show up here automatically,
//  - symbolic vs plain-interval pruning inside the branch-and-bound,
//  - the BDD-vs-SAT model-checker trade-off the paper cites when choosing
//    an SMT-based tool (BDD blow-up on the bit-blasted network model).
//
// All engines answer the same query on the same trained network, so the
// numbers are directly comparable; correctness agreement is enforced by
// the test suite, this binary measures cost.  Headline per-engine costs
// land in BENCH_engines_ablation.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/casestudy.hpp"
#include "core/translate.hpp"
#include "mc/bddmc.hpp"
#include "util/benchjson.hpp"
#include "util/stopwatch.hpp"
#include "verify/bnb.hpp"
#include "verify/engine.hpp"

namespace {

using namespace fannet;

const core::CaseStudy& case_study() {
  static const core::CaseStudy cs = core::build_case_study();
  return cs;
}

verify::Query sample_query(int range) {
  const core::CaseStudy& cs = case_study();
  verify::Query q;
  q.net = &cs.qnet;
  q.x.assign(cs.test_x.row(3).begin(), cs.test_x.row(3).end());
  q.true_label = cs.test_y[3];
  q.box = verify::NoiseBox::symmetric(q.x.size(), range);
  return q;
}

/// Noise ranges each engine can afford in a benchmark loop (enumeration is
/// the box volume; the MC paths re-translate the model per query).
std::vector<int> ranges_for(const std::string& engine) {
  if (engine == "enumerate") return {1, 2, 3};
  if (engine == "explicit-mc" || engine == "bmc") return {1, 2};
  return {1, 3, 10, 25, 50};
}

void BM_P2_BnbIntervalOnly(benchmark::State& state) {
  const verify::Query q = sample_query(static_cast<int>(state.range(0)));
  verify::BnbOptions options;
  options.use_symbolic = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::bnb_verify(q, options).verdict);
  }
}
BENCHMARK(BM_P2_BnbIntervalOnly)
    ->Arg(1)->Arg(3)->Arg(10)
    ->Unit(benchmark::kMillisecond);

/// The BDD side of the paper's tool discussion: symbolic reachability on
/// the bit-blasted model of a *thin* network (2-3-2) — node counts explode
/// far before the 5-20-2 case-study net, which is exactly why the paper's
/// authors picked an SMT-based model checker.
void BM_P2_BddTinyNet(benchmark::State& state) {
  const nn::Network net = nn::Network::random({2, 3, 2}, 33);
  const nn::QuantizedNetwork qnet = nn::QuantizedNetwork::quantize(net, 100);
  const std::vector<util::i64> x{50, 60};
  verify::Query q;
  q.net = &qnet;
  q.x = x;
  q.true_label = qnet.classify_noised(x, {});
  q.box = verify::NoiseBox::symmetric(2, static_cast<int>(state.range(0)));
  const core::Translation t = core::translate_sample(q);
  std::size_t peak = 0;
  for (auto _ : state) {
    mc::BddOptions options;
    options.max_nodes = 30'000'000;
    const mc::BddChecker checker(t.module, options);
    const auto r = checker.check_invariant(t.module.specs().front().expr);
    peak = r.peak_nodes;
    benchmark::DoNotOptimize(r.holds);
  }
  state.counters["bdd_nodes"] = static_cast<double>(peak);
}
BENCHMARK(BM_P2_BddTinyNet)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::puts("=== Engine ablation: one P2 query answered by every registered");
  std::puts(" engine (enumerate = ground truth; bnb = complete default;");
  std::puts(" cascade = sound-screen portfolio; explicit/bmc = model-checking");
  std::puts(" paths; bdd = the PSPACE alternative the paper rejects) ===\n");

  // One benchmark per registry entry — new engines ablate automatically.
  for (const std::string& name : verify::registry().names()) {
    const verify::Engine& engine = verify::engine(name);
    auto* bench = benchmark::RegisterBenchmark(
        ("BM_P2/" + name).c_str(), [&engine](benchmark::State& state) {
          const verify::Query q = sample_query(static_cast<int>(state.range(0)));
          for (auto _ : state) {
            benchmark::DoNotOptimize(engine.verify(q).verdict);
          }
        });
    for (const int range : ranges_for(name)) bench->Arg(range);
    bench->Unit(benchmark::kMillisecond);
  }

  // Headline JSON: every engine once on the same modest query.
  util::BenchJson json("engines_ablation");
  for (const std::string& name : verify::registry().names()) {
    const verify::Query q = sample_query(2);
    const util::Stopwatch watch;
    const verify::VerifyResult r = verify::engine(name).verify(q);
    json.add("p2_range2/" + name, watch.millis(), r.work, 1);
  }
  {
    const verify::Query q = sample_query(50);
    const util::Stopwatch watch;
    const verify::VerifyResult r = verify::engine("cascade").verify(q);
    json.add("p2_range50/cascade", watch.millis(), r.work, 1);
  }
  std::printf("wrote %s\n\n", json.write().c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
