// Ablation of the design choices DESIGN.md calls out:
//  - which P2 engine answers the query fastest (exhaustive enumeration vs
//    complete branch-and-bound vs explicit-state MC vs SAT-based BMC),
//  - symbolic vs plain-interval pruning inside the branch-and-bound,
//  - the BDD-vs-SAT model-checker trade-off the paper cites when choosing
//    an SMT-based tool (BDD blow-up on the bit-blasted network model).
//
// All engines answer the same query on the same trained network, so the
// numbers are directly comparable; correctness agreement is enforced by
// the test suite, this binary measures cost.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/casestudy.hpp"
#include "core/fannet.hpp"
#include "core/translate.hpp"
#include "mc/bddmc.hpp"
#include "verify/bnb.hpp"
#include "verify/enumerate.hpp"

namespace {

using namespace fannet;

const core::CaseStudy& case_study() {
  static const core::CaseStudy cs = core::build_case_study();
  return cs;
}

verify::Query sample_query(int range) {
  const core::CaseStudy& cs = case_study();
  verify::Query q;
  q.net = &cs.qnet;
  q.x.assign(cs.test_x.row(3).begin(), cs.test_x.row(3).end());
  q.true_label = cs.test_y[3];
  q.box = verify::NoiseBox::symmetric(q.x.size(), range);
  return q;
}

void BM_P2_Enumerate(benchmark::State& state) {
  const verify::Query q = sample_query(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::enumerate_find_first(q).verdict);
  }
}
BENCHMARK(BM_P2_Enumerate)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_P2_BnbSymbolic(benchmark::State& state) {
  const verify::Query q = sample_query(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::bnb_verify(q).verdict);
  }
}
BENCHMARK(BM_P2_BnbSymbolic)
    ->Arg(1)->Arg(3)->Arg(10)->Arg(25)->Arg(50)
    ->Unit(benchmark::kMillisecond);

void BM_P2_BnbIntervalOnly(benchmark::State& state) {
  const verify::Query q = sample_query(static_cast<int>(state.range(0)));
  verify::BnbOptions options;
  options.use_symbolic = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::bnb_verify(q, options).verdict);
  }
}
BENCHMARK(BM_P2_BnbIntervalOnly)
    ->Arg(1)->Arg(3)->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_P2_ExplicitMc(benchmark::State& state) {
  const core::Fannet fannet(case_study().qnet);
  const verify::Query q = sample_query(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fannet.check_sample(q.x, q.true_label, static_cast<int>(state.range(0)),
                            core::Engine::kExplicitMc)
            .verdict);
  }
}
BENCHMARK(BM_P2_ExplicitMc)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_P2_Bmc(benchmark::State& state) {
  const core::Fannet fannet(case_study().qnet);
  const verify::Query q = sample_query(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fannet.check_sample(q.x, q.true_label, static_cast<int>(state.range(0)),
                            core::Engine::kBmc)
            .verdict);
  }
}
BENCHMARK(BM_P2_Bmc)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

/// The BDD side of the paper's tool discussion: symbolic reachability on
/// the bit-blasted model of a *thin* network (2-3-2) — node counts explode
/// far before the 5-20-2 case-study net, which is exactly why the paper's
/// authors picked an SMT-based model checker.
void BM_P2_BddTinyNet(benchmark::State& state) {
  const nn::Network net = nn::Network::random({2, 3, 2}, 33);
  const nn::QuantizedNetwork qnet = nn::QuantizedNetwork::quantize(net, 100);
  const std::vector<util::i64> x{50, 60};
  verify::Query q;
  q.net = &qnet;
  q.x = x;
  q.true_label = qnet.classify_noised(x, {});
  q.box = verify::NoiseBox::symmetric(2, static_cast<int>(state.range(0)));
  const core::Translation t = core::translate_sample(q);
  std::size_t peak = 0;
  for (auto _ : state) {
    mc::BddOptions options;
    options.max_nodes = 30'000'000;
    const mc::BddChecker checker(t.module, options);
    const auto r = checker.check_invariant(t.module.specs().front().expr);
    peak = r.peak_nodes;
    benchmark::DoNotOptimize(r.holds);
  }
  state.counters["bdd_nodes"] = static_cast<double>(peak);
}
BENCHMARK(BM_P2_BddTinyNet)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::puts("=== Engine ablation: one P2 query answered five ways ===");
  std::puts("(enumerate = ground truth; bnb = FANNet default; explicit/bmc =");
  std::puts(" model-checking paths on the translated SMV model; bdd = the");
  std::puts(" PSPACE alternative the paper rejects for full-size models)\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
