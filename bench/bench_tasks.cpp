// CI gate for the resumable engine-task substrate (DESIGN.md §12):
//
//   1. Pause/resume identity — a batch paused mid-flight by a BatchControl
//      and then resumed yields bit-identical verdicts AND witnesses to the
//      uninterrupted single-threaded run, for every native-task engine
//      (enumerate / bnb / cascade / sat) at 1, 2 and 8 worker threads.
//   2. Deadline overshoot — a 50 ms per-query deadline on a query whose
//      grid dwarfs any budget finalizes to kUnknown + resource_limited
//      with overshoot under 250 ms (bounded by a single task step).
//   3. Task-path overhead — driving a Fig.-4-style sweep through
//      make_task/step instead of the blocking verify_with path costs at
//      most 5% wall-clock.
//
// Any violation exits non-zero (the CI job fails); the measured numbers
// land in BENCH_tasks.json for PR-over-PR tracking.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "nn/network.hpp"
#include "nn/quantized.hpp"
#include "util/benchjson.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "verify/engine.hpp"
#include "verify/scheduler.hpp"
#include "verify/task.hpp"

namespace {

using namespace fannet;

nn::QuantizedNetwork& small_net() {
  static nn::QuantizedNetwork net = nn::QuantizedNetwork::quantize(
      nn::Network::random({3, 5, 2}, 91), 100);
  return net;
}

verify::Query make_query(std::uint64_t seed, int range, bool force_vulnerable) {
  const nn::QuantizedNetwork& net = small_net();
  util::Rng rng(seed);
  verify::Query q;
  q.net = &net;
  q.x = {rng.uniform_int(1, 100), rng.uniform_int(1, 100),
         rng.uniform_int(1, 100)};
  const int actual = net.classify_noised(q.x, {});
  q.true_label = force_vulnerable ? 1 - actual : actual;
  q.box = verify::NoiseBox::symmetric(3, range);
  return q;
}

/// Mixed robust/vulnerable batch spanning the Fig.-4 range ladder.
std::vector<verify::Query> identity_batch() {
  std::vector<verify::Query> batch;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (const int range : {2, 4, 6}) {
      batch.push_back(make_query(seed, range, seed % 2 == 0));
    }
  }
  return batch;
}

bool results_identical(const std::vector<verify::VerifyResult>& a,
                       const std::vector<verify::VerifyResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].verdict != b[i].verdict) return false;
    if (a[i].counterexample != b[i].counterexample) return false;
  }
  return true;
}

int run_pause_resume_gate(util::BenchJson& json) {
  std::puts("=== Pause/resume bit-identity (verdict + witness) ===");
  const std::vector<verify::Query> batch = identity_batch();
  for (const char* name : {"enumerate", "bnb", "cascade", "sat"}) {
    const verify::Engine& eng = verify::engine(name);
    const verify::Scheduler reference_scheduler({.threads = 1});
    const std::vector<verify::VerifyResult> reference =
        reference_scheduler.run_all(batch, eng);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      const verify::Scheduler scheduler(
          {.threads = threads, .step_work = 64});
      verify::BatchStats stats;
      verify::BatchControl control;
      control.pause();  // every dispatched task parks before its first step
      std::vector<verify::VerifyResult> results;
      std::atomic<bool> finished{false};
      const util::Stopwatch watch;
      std::thread runner([&] {
        results = scheduler.run_all(batch, eng, &stats, &control);
        finished.store(true, std::memory_order_release);
      });
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      const bool parked = !finished.load(std::memory_order_acquire);
      control.resume();
      runner.join();
      const double ms = watch.millis();
      if (!parked) {
        std::fprintf(stderr, "FAIL: %s batch finished while paused\n", name);
        return EXIT_FAILURE;
      }
      if (!results_identical(results, reference)) {
        std::fprintf(stderr,
                     "FAIL: %s paused-then-resumed batch differs from the "
                     "uninterrupted run at %zu threads\n",
                     name, threads);
        return EXIT_FAILURE;
      }
      if (stats.paused == 0 || stats.resumed != stats.paused ||
          stats.deadline_expired != 0) {
        std::fprintf(stderr,
                     "FAIL: %s stats inconsistent at %zu threads "
                     "(paused %llu, resumed %llu, deadline_expired %llu)\n",
                     name, threads,
                     static_cast<unsigned long long>(stats.paused),
                     static_cast<unsigned long long>(stats.resumed),
                     static_cast<unsigned long long>(stats.deadline_expired));
        return EXIT_FAILURE;
      }
      std::printf("  %-10s threads=%zu  %7.1f ms  paused=%llu resumed=%llu  "
                  "identical\n",
                  name, threads, ms,
                  static_cast<unsigned long long>(stats.paused),
                  static_cast<unsigned long long>(stats.resumed));
      json.add(std::string("pause_resume_") + name, ms, stats.paused, threads);
    }
  }
  return EXIT_SUCCESS;
}

int run_deadline_gate(util::BenchJson& json) {
  std::puts("\n=== 50 ms deadline: kUnknown with bounded overshoot ===");
  // A grid no budget can finish: 21^8 noise vectors through a real net.
  static const nn::QuantizedNetwork big_net = nn::QuantizedNetwork::quantize(
      nn::Network::random({8, 16, 16, 2}, 17), 100);
  verify::Query q;
  q.net = &big_net;
  q.x = {10, 20, 30, 40, 50, 60, 70, 80};
  q.true_label = big_net.classify_noised(q.x, {});
  q.box = verify::NoiseBox::symmetric(8, 10);

  constexpr std::uint64_t kDeadlineMs = 50;
  const verify::Scheduler scheduler(
      {.threads = 1, .deadline_ms = kDeadlineMs});
  verify::BatchStats stats;
  const util::Stopwatch watch;
  const std::vector<verify::VerifyResult> results =
      scheduler.run_all(std::span(&q, 1), verify::engine("enumerate"), &stats);
  const double wall_ms = watch.millis();
  const double overshoot_ms = wall_ms - static_cast<double>(kDeadlineMs);
  const verify::VerifyResult& r = results.front();
  if (r.verdict != verify::Verdict::kUnknown || !r.resource_limited) {
    std::fprintf(stderr, "FAIL: expired query did not finalize to kUnknown + "
                         "resource_limited\n");
    return EXIT_FAILURE;
  }
  if (stats.deadline_expired != 1 || scheduler.deadline_expired_total() != 1) {
    std::fprintf(stderr, "FAIL: deadline expiry not counted (stats %llu)\n",
                 static_cast<unsigned long long>(stats.deadline_expired));
    return EXIT_FAILURE;
  }
  if (overshoot_ms >= 250.0) {
    std::fprintf(stderr, "FAIL: overshoot %.1f ms >= 250 ms\n", overshoot_ms);
    return EXIT_FAILURE;
  }
  std::printf("  deadline=%llu ms  wall=%.1f ms  overshoot=%.1f ms  "
              "deadline_expired=%llu\n",
              static_cast<unsigned long long>(kDeadlineMs), wall_ms,
              overshoot_ms,
              static_cast<unsigned long long>(stats.deadline_expired));
  json.add("deadline_overshoot", overshoot_ms, stats.deadline_expired, 1);
  return EXIT_SUCCESS;
}

int run_overhead_gate(util::BenchJson& json) {
  std::puts("\n=== Task-path overhead vs blocking path (<= 5%) ===");
  // Fig.-4-style sweep: the range ladder over several samples, exhaustive
  // walks kept long enough that stepping overhead is measurable.
  std::vector<verify::Query> sweep;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (int range = 5; range <= 50; range += 5) {
      sweep.push_back(make_query(seed, range, false));
    }
  }
  const verify::Engine& eng = verify::engine("enumerate");
  const verify::VerifyContext ctx;

  constexpr int kReps = 3;
  double direct_ms = 1e300;
  double task_ms = 1e300;
  std::uint64_t direct_work = 0;
  std::uint64_t task_work = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    {
      std::uint64_t work = 0;
      const util::Stopwatch watch;
      for (const verify::Query& q : sweep) {
        work += eng.verify_with(q, ctx).work;
      }
      direct_ms = std::min(direct_ms, watch.millis());
      direct_work = work;
    }
    {
      std::uint64_t work = 0;
      const util::Stopwatch watch;
      for (const verify::Query& q : sweep) {
        work += verify::run_task(eng, q, ctx).work;
      }
      task_ms = std::min(task_ms, watch.millis());
      task_work = work;
    }
  }
  if (task_work != direct_work) {
    std::fprintf(stderr, "FAIL: task path work %llu != direct %llu\n",
                 static_cast<unsigned long long>(task_work),
                 static_cast<unsigned long long>(direct_work));
    return EXIT_FAILURE;
  }
  const double overhead = task_ms / direct_ms - 1.0;
  std::printf("  direct %8.1f ms   task %8.1f ms   overhead %+.2f%%  "
              "(%zu queries, %llu evals)\n",
              direct_ms, task_ms, overhead * 100.0, sweep.size(),
              static_cast<unsigned long long>(direct_work));
  json.add("overhead_direct", direct_ms, direct_work, 1);
  json.add("overhead_task", task_ms, task_work, 1);
  // 0.5 ms absolute slack keeps sub-millisecond timer jitter from failing
  // a gate the percentages clearly pass.
  if (task_ms > direct_ms * 1.05 + 0.5) {
    std::fprintf(stderr, "FAIL: task-path overhead %.2f%% exceeds 5%%\n",
                 overhead * 100.0);
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}

}  // namespace

int main() {
  util::BenchJson json("tasks");
  if (run_pause_resume_gate(json) != EXIT_SUCCESS) return EXIT_FAILURE;
  if (run_deadline_gate(json) != EXIT_SUCCESS) return EXIT_FAILURE;
  if (run_overhead_gate(json) != EXIT_SUCCESS) return EXIT_FAILURE;
  const std::string path = json.write();
  std::printf("\nwrote %s\n", path.c_str());
  return EXIT_SUCCESS;
}
