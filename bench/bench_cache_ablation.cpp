// Query-cache ablation on the paper's headline workload (ISSUE 2
// acceptance gate): the full Fig. 4 noise-tolerance sweep is run twice —
// exactly what parameter studies and repeated bench/CLI invocations do —
// once with the cache disabled and once with a process-wide
// verify::QueryCache installed.  The second cached pass answers from
// memory, so the cached pair must cut total wall clock by >= 30% while
// every verdict, flipping range, and witness stays bit-identical; both are
// asserted, and the measured curve lands in BENCH_cache_ablation.json.
//
// A third section round-trips the disk tier: a fresh cache warm-started
// from the JSON-lines file left by the run above must again reproduce the
// identical report with zero engine dispatches for the repeated queries.
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/casestudy.hpp"
#include "core/fannet.hpp"
#include "util/benchjson.hpp"
#include "util/stopwatch.hpp"
#include "verify/query_cache.hpp"

namespace {

using namespace fannet;

core::ToleranceReport run_sweep(const core::CaseStudy& cs) {
  core::ToleranceConfig config;
  config.start_range = 50;
  config.engine = core::Engine::kCascade;
  config.threads = 1;  // isolate caching from thread-scaling effects
  return core::Fannet(cs.qnet).analyze_tolerance(cs.test_x, cs.test_y, config);
}

bool same_report(const core::ToleranceReport& a,
                 const core::ToleranceReport& b) {
  if (a.noise_tolerance != b.noise_tolerance || a.queries != b.queries ||
      a.per_sample.size() != b.per_sample.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.per_sample.size(); ++i) {
    const core::SampleTolerance& x = a.per_sample[i];
    const core::SampleTolerance& y = b.per_sample[i];
    if (x.correct_without_noise != y.correct_without_noise ||
        x.min_flip_range != y.min_flip_range || x.witness != y.witness) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const core::CaseStudy cs = core::build_case_study();
  util::BenchJson json("cache_ablation");

  std::puts("=== Cache ablation: repeated Fig. 4 tolerance sweep ===");

  // Arm 1: cache off, the sweep twice (the status quo for repeated runs).
  const util::Stopwatch off_watch;
  const core::ToleranceReport off_first = run_sweep(cs);
  const core::ToleranceReport off_second = run_sweep(cs);
  const double off_ms = off_watch.millis();
  json.add("repeated_sweep_cache_off", off_ms, 2 * off_first.queries, 1);
  std::printf("  cache off : %8.1f ms  (2 x %llu queries)\n", off_ms,
              static_cast<unsigned long long>(off_first.queries));

  // Arm 2: cache on, the same two sweeps; the second is answered from
  // memory.
  verify::QueryCache cache;
  core::ToleranceReport on_first, on_second;
  double on_ms = 0.0;
  {
    const verify::ScopedQueryCache guard(&cache);
    const util::Stopwatch on_watch;
    on_first = run_sweep(cs);
    on_second = run_sweep(cs);
    on_ms = on_watch.millis();
  }
  const auto stats = cache.stats();
  json.add("repeated_sweep_cache_on", on_ms, 2 * on_first.queries, 1);
  json.add("cache_hits", 0.0, stats.hits, 1);
  json.add("cache_misses", 0.0, stats.misses, 1);
  std::printf("  cache on  : %8.1f ms  (%llu hits / %llu misses)\n", on_ms,
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));

  if (!same_report(off_first, off_second) ||
      !same_report(off_first, on_first) || !same_report(off_first, on_second)) {
    std::fputs("FAIL: cached reports differ from the cache-off reports\n",
               stderr);
    return EXIT_FAILURE;
  }

  const double reduction = 100.0 * (off_ms - on_ms) / off_ms;
  std::printf("  wall-clock reduction: %.1f%%  (gate: >= 30%%)\n", reduction);
  json.add("wall_reduction_percent", reduction, 0, 1);
  if (reduction < 30.0) {
    std::fputs("FAIL: cache saved less than 30% on the repeated sweep\n",
               stderr);
    return EXIT_FAILURE;
  }

  // Arm 3: disk-tier round trip — a cold process warm-starting from the
  // JSON-lines file must reproduce the identical report from pure hits.
  std::puts("\n=== Disk tier: cold -> warm round trip ===");
  const std::string disk_path = "BENCH_cache_ablation.cache.jsonl";
  std::filesystem::remove(disk_path);
  {
    verify::QueryCache writer({.disk_path = disk_path});
    const verify::ScopedQueryCache guard(&writer);
    (void)run_sweep(cs);
  }
  verify::QueryCache reader({.disk_path = disk_path});
  core::ToleranceReport warm;
  double warm_ms = 0.0;
  {
    const verify::ScopedQueryCache guard(&reader);
    const util::Stopwatch warm_watch;
    warm = run_sweep(cs);
    warm_ms = warm_watch.millis();
  }
  const auto warm_stats = reader.stats();
  std::printf("  warm sweep: %8.1f ms  (%llu loaded, %llu hits, %llu misses)\n",
              warm_ms, static_cast<unsigned long long>(warm_stats.disk_loaded),
              static_cast<unsigned long long>(warm_stats.hits),
              static_cast<unsigned long long>(warm_stats.misses));
  json.add("warm_start_sweep", warm_ms, warm.queries, 1);
  std::filesystem::remove(disk_path);
  if (!same_report(off_first, warm) || warm_stats.misses != 0) {
    std::fputs("FAIL: disk warm start missed or changed the report\n", stderr);
    return EXIT_FAILURE;
  }

  const std::string path = json.write();
  std::printf("\nwrote %s\n", path.c_str());
  return EXIT_SUCCESS;
}
