// Reproduces paper Fig. 4 (classification-boundary panel): inputs close to
// the decision boundary flip under small noise while others survive even
// +/-50% — the distribution of per-sample minimal flipping ranges.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/analysis.hpp"
#include "core/casestudy.hpp"
#include "core/fannet.hpp"
#include "core/report.hpp"
#include "util/benchjson.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace fannet;

std::uint64_t print_fig4_boundary() {
  const core::CaseStudy cs = core::build_case_study();
  const core::Fannet fannet(cs.qnet);

  core::ToleranceConfig config;
  config.start_range = 50;
  const auto tolerance = fannet.analyze_tolerance(cs.test_x, cs.test_y, config);

  std::puts("=== Fig. 4: classification-boundary proximity ===");
  std::puts("(per-sample minimal flipping range; 'survivors' match the");
  std::puts(" paper's inputs that withstand 50% noise)\n");
  const core::BoundaryReport report = core::analyze_boundary(tolerance, 5, 50);
  std::fputs(core::format_boundary(report).c_str(), stdout);

  std::puts("\nPer-sample detail:");
  std::fputs(core::format_tolerance(tolerance).c_str(), stdout);
  std::puts("");
  return tolerance.queries;
}

void BM_PerSampleMinFlip(benchmark::State& state) {
  const core::CaseStudy cs = core::build_case_study();
  const core::Fannet fannet(cs.qnet);
  // One representative sample decided across the whole 1..50 range.
  for (auto _ : state) {
    core::ToleranceConfig config;
    config.start_range = 50;
    la::Matrix<util::i64> one(1, cs.test_x.cols());
    for (std::size_t c = 0; c < cs.test_x.cols(); ++c) one(0, c) = cs.test_x(0, c);
    benchmark::DoNotOptimize(
        fannet.analyze_tolerance(one, {cs.test_y[0]}, config).noise_tolerance);
  }
}
BENCHMARK(BM_PerSampleMinFlip)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  util::BenchJson json("fig4_boundary");
  const util::Stopwatch watch;
  const std::uint64_t queries = print_fig4_boundary();
  json.add("boundary_analysis", watch.millis(), queries, 1);
  json.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
