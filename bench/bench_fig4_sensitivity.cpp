// Reproduces paper Fig. 4 (input-node-sensitivity panels, nodes i2/i5):
// per-node signed-noise histograms over the adversarial corpus, plus the
// sound directional-existence queries (the paper's headline: no
// counterexample carries positive noise at node i5) and the Eq.-3 per-node
// solo-noise tolerance.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "core/analysis.hpp"
#include "core/casestudy.hpp"
#include "core/fannet.hpp"
#include "core/report.hpp"
#include "util/benchjson.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace fannet;

std::uint64_t print_fig4_sensitivity() {
  const core::CaseStudy cs = core::build_case_study();
  const core::Fannet fannet(cs.qnet);

  core::ToleranceConfig config;
  config.start_range = 50;
  const auto tolerance = fannet.analyze_tolerance(cs.test_x, cs.test_y, config);
  const int range = std::min(50, tolerance.noise_tolerance + 10);
  const auto corpus = fannet.extract_corpus(cs.test_x, cs.test_y, range, 2000);

  std::printf("=== Fig. 4: input node sensitivity "
              "(corpus of %zu vectors at +/-%d%%, directional queries at +/-50%%) ===\n",
              corpus.size(), range);
  const core::NodeSensitivityReport report =
      core::analyze_sensitivity(fannet, cs.test_x, cs.test_y, 50, corpus);
  std::fputs(core::format_sensitivity(report).c_str(), stdout);

  std::puts("\nPaper analogue: a node with 'pos possible = NO' (or a one-sided");
  std::puts("histogram) is the i5 of our trained network — immune to positive");
  std::puts("noise; nodes with skewed histograms mirror the i2 panel.");
  std::puts("");
  return tolerance.queries + corpus.size();
}

void BM_SensitivityAnalysis(benchmark::State& state) {
  const core::CaseStudy cs = core::build_case_study();
  const core::Fannet fannet(cs.qnet);
  const int range = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::analyze_sensitivity(fannet, cs.test_x, cs.test_y, range, {})
            .solo_flip_range.size());
  }
}
BENCHMARK(BM_SensitivityAnalysis)->Arg(25)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  util::BenchJson json("fig4_sensitivity");
  const util::Stopwatch watch;
  const std::uint64_t work = print_fig4_sensitivity();
  json.add("sensitivity_analysis", watch.millis(), work,
           std::thread::hardware_concurrency());
  json.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
