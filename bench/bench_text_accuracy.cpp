// Reproduces the paper's Section V-A text numbers: cohort shape (72 x 7129,
// 38 train / 34 test), the ~70%-L1 training imbalance, mRMR top-5 gene
// selection, and the training outcome (paper: 100% train / 94.12% test).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "core/casestudy.hpp"
#include "core/report.hpp"
#include "util/benchjson.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace fannet;

std::uint64_t print_text_numbers() {
  const core::CaseStudy cs = core::build_case_study();

  std::puts("=== Paper §V-A: dataset and training numbers ===");
  core::TextTable t({"quantity", "ours", "paper"});
  t.add_row({"samples x genes",
             std::to_string(cs.golub.dataset.size()) + " x " +
                 std::to_string(cs.golub.dataset.num_features()),
             "72 x 7129"});
  t.add_row({"train / test",
             std::to_string(cs.train_y.size()) + " / " +
                 std::to_string(cs.test_y.size()),
             "38 / 34"});
  const auto l1 = static_cast<std::size_t>(
      std::count(cs.train_y.begin(), cs.train_y.end(), 1));
  t.add_row({"train class balance (L1)",
             std::to_string(100 * l1 / cs.train_y.size()) + "%", "~70%"});
  t.add_row({"genes selected (mRMR)", std::to_string(cs.selected_genes.size()),
             "5"});
  t.add_row({"architecture", "5-20-2 (ReLU + output maxpool)", "5-20-2"});
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f%%", 100.0 * cs.train_accuracy);
  t.add_row({"train accuracy", buf, "100%"});
  std::snprintf(buf, sizeof buf, "%.2f%%", 100.0 * cs.test_accuracy);
  t.add_row({"test accuracy", buf, "94.12%"});
  std::fputs(t.to_string().c_str(), stdout);
  std::puts("");
  return cs.golub.dataset.size() * cs.golub.dataset.num_features();
}

void BM_FullCaseStudyPipeline(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_case_study().test_accuracy);
  }
}
BENCHMARK(BM_FullCaseStudyPipeline)->Unit(benchmark::kMillisecond);

void BM_MrmrOver7129Genes(benchmark::State& state) {
  const data::GolubData golub = data::generate_golub({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        data::mrmr_select(golub.dataset, 5, data::MrmrScheme::kMID)
            .selected.size());
  }
}
BENCHMARK(BM_MrmrOver7129Genes)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  util::BenchJson json("text_accuracy");
  const util::Stopwatch watch;
  const std::uint64_t cells = print_text_numbers();
  json.add("case_study_pipeline", watch.millis(), cells, 1);
  json.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
