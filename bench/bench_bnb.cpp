// Intra-query scaling of the work-stealing parallel branch-and-bound on
// the workload that motivates it: the *hardest* Fig. 4-style P2 query in
// the case-study sweep — the high-noise query whose box tree dwarfs the
// rest of the batch, so across-queries parallelism alone leaves cores
// idle while it runs.
//
// The bench gates determinism (bit-identical verdict + counterexample for
// 1, 2 and 8 frontier workers, both box-priority policies) and *records*
// the multi-thread speedup in BENCH_bnb.json — recorded, not gated,
// because 1-CPU CI containers show a flat curve (docs/bench-format.md).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/casestudy.hpp"
#include "core/fannet.hpp"
#include "nn/network.hpp"
#include "util/benchjson.hpp"
#include "util/stopwatch.hpp"
#include "verify/bnb.hpp"

namespace {

using namespace fannet;
using util::i64;

const char* policy_name(verify::BnbOptions::Policy policy) {
  return policy == verify::BnbOptions::Policy::kDepthFirst ? "depth_first"
                                                           : "best_first";
}

/// The stress query: the case-study sweep's trees top out at a few
/// thousand boxes (the 5-20-2 net is small and the symbolic bounds are
/// tight), so the scaling arm uses a wider net at the paper's largest
/// noise — the direction fault-tolerance follow-ups (Duddu et al.) push —
/// where the serial tree runs to ~450k boxes.  Fully deterministic: the
/// net is seeded, the input fixed.
verify::Query stress_query(const nn::QuantizedNetwork& qnet) {
  std::vector<i64> x;
  for (std::size_t i = 0; i < qnet.input_dim(); ++i) {
    x.push_back(static_cast<i64>(10 + 11 * i));
  }
  verify::Query query;
  query.net = &qnet;
  query.x = std::move(x);
  query.true_label = qnet.classify_noised(query.x, {});
  query.box = verify::NoiseBox::symmetric(query.x.size(), 50);
  return query;
}

}  // namespace

int main() {
  const core::CaseStudy cs = core::build_case_study();
  const core::Fannet fannet(cs.qnet);
  util::BenchJson json("bnb");
  std::printf("hardware threads: %u\n\n", std::thread::hardware_concurrency());

  // The Fig. 4 top row: every correctly-classified test sample at the
  // paper's largest noise range (+/-50%).  The serial screen doubles as
  // the baseline and finds the hardest query (most boxes processed).
  const auto bad = fannet.validate_p1(cs.test_x, cs.test_y);
  std::vector<verify::Query> screen;
  for (std::size_t s = 0; s < cs.test_x.rows(); ++s) {
    if (std::find(bad.begin(), bad.end(), s) != bad.end()) continue;
    screen.push_back(fannet.make_query(
        cs.test_x.row(s), cs.test_y[s],
        verify::NoiseBox::symmetric(cs.test_x.cols(), 50), false));
  }

  std::puts("=== Serial screen: every correct sample at +/-50% ===");
  std::uint64_t hard_work = 0;
  std::uint64_t screen_work = 0;
  const util::Stopwatch screen_watch;
  for (const verify::Query& q : screen) {
    const verify::VerifyResult r = verify::bnb_verify(q);
    screen_work += r.work;
    hard_work = std::max(hard_work, r.work);
  }
  const double screen_ms = screen_watch.millis();
  std::printf("  %zu queries, %8.1f ms, total work %llu "
              "(hardest tree: %llu boxes)\n\n",
              screen.size(), screen_ms,
              static_cast<unsigned long long>(screen_work),
              static_cast<unsigned long long>(hard_work));
  json.add("fig4_screen_serial", screen_ms, screen_work, 1);

  // Hard high-noise stress query (see stress_query above).
  const nn::Network stress_net = nn::Network::random({8, 20, 2}, 202);
  const nn::QuantizedNetwork stress_qnet =
      nn::QuantizedNetwork::quantize(stress_net, 100);
  const verify::Query hard_query = stress_query(stress_qnet);
  const verify::VerifyResult reference = verify::bnb_verify(hard_query);

  std::puts("=== Hard-query scaling: work-stealing frontier ===");
  double depth_first_serial_ms = 0.0;
  double depth_first_8t_ms = 0.0;
  for (const auto policy : {verify::BnbOptions::Policy::kDepthFirst,
                            verify::BnbOptions::Policy::kBestFirst}) {
    double serial_ms = 0.0;
    for (const std::size_t threads : {1u, 2u, 8u}) {
      verify::BnbOptions options;
      options.threads = threads;
      options.policy = policy;
      const util::Stopwatch watch;
      const verify::VerifyResult r = verify::bnb_verify(hard_query, options);
      const double ms = watch.millis();
      if (threads == 1) serial_ms = ms;

      // Determinism gate: the verdict and the (lex-lowest) counterexample
      // must be bit-identical to the serial depth-first reference for
      // every worker count and policy.
      if (r.verdict != reference.verdict ||
          r.counterexample != reference.counterexample) {
        std::fprintf(stderr,
                     "FAIL: %s result differs at %zu threads from the serial "
                     "reference\n",
                     policy_name(policy), threads);
        return EXIT_FAILURE;
      }
      std::printf("  hard_query_%-11s threads=%zu  %8.1f ms  speedup %.2fx  "
                  "(%llu boxes)\n",
                  policy_name(policy), threads, ms, serial_ms / ms,
                  static_cast<unsigned long long>(r.work));
      json.add(std::string("hard_query_") + policy_name(policy), ms, r.work,
               threads);
      if (policy == verify::BnbOptions::Policy::kDepthFirst) {
        if (threads == 1) depth_first_serial_ms = ms;
        if (threads == 8) depth_first_8t_ms = ms;
      }
    }
  }

  // Recorded headline (see docs/bench-format.md "Counter records"): the
  // 8-worker speedup on the hard query, x100 in wall_ms.  ~100 on a 1-CPU
  // container; the scaling shows on real multi-core hardware.
  const double speedup_x100 =
      depth_first_8t_ms > 0.0
          ? 100.0 * depth_first_serial_ms / depth_first_8t_ms
          : 0.0;
  std::printf("\n8-thread speedup on the hard query: %.2fx\n",
              speedup_x100 / 100.0);
  json.add("speedup_x100_8_threads", speedup_x100, 0, 8);

  const std::string path = json.write();
  std::printf("wrote %s\n", path.c_str());
  return EXIT_SUCCESS;
}
