// fannet_serve under load: 8 concurrent clients drive the paper's Fig.-4
// verify workload (every test sample x every grid range) through a live
// in-process server, twice.  The cold pass measures end-to-end QPS and p99
// request latency with an empty cache; the warm pass replays the identical
// workload against the now-hot shared cache.
//
// This bench is a CI gate, not just a report.  It exits non-zero when:
//   - any served verdict/counterexample differs from a direct
//     verify::Scheduler execution of the same query (bit-identity), or
//   - the warm replay saves less than 30% wall time over the cold pass
//     (the shared cache is the service's reason to exist).
//
// Results land in BENCH_serve.json for PR-over-PR tracking.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "../tests/serve_harness.hpp"
#include "core/fannet.hpp"
#include "util/benchjson.hpp"
#include "util/stopwatch.hpp"
#include "verify/engine.hpp"
#include "verify/scheduler.hpp"

namespace {

using namespace fannet;
using serve::harness::ServeClient;

constexpr std::size_t kClients = 8;

struct WorkItem {
  std::string request;        // serialized verify frame
  verify::Query query;        // the same query for the direct run
  std::string served_verdict; // filled by the client threads
  std::vector<int> served_deltas;
  double latency_ms = 0.0;
};

/// One timed pass: kClients threads drain the work list through one
/// connection each.  Returns wall ms; per-item latencies/verdicts are
/// written into `items`.
double run_pass(std::uint16_t port, std::vector<WorkItem>& items) {
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  const util::Stopwatch wall;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      ServeClient client(port, 120000);
      if (!client.connected()) {
        failed.store(true);
        return;
      }
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= items.size()) return;
        const util::Stopwatch timer;
        const ServeClient::Reply reply = client.call(items[i].request);
        items[i].latency_ms = timer.millis();
        if (reply.final_type() != "result") {
          failed.store(true);
          return;
        }
        const serve::Json& body = *reply.final->find("body");
        items[i].served_verdict = body.find("verdict")->as_string();
        items[i].served_deltas.clear();
        if (const serve::Json* cex = body.find("counterexample")) {
          for (const serve::Json& d : cex->find("deltas")->as_array()) {
            items[i].served_deltas.push_back(static_cast<int>(d.as_int()));
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  if (failed.load()) {
    std::fprintf(stderr, "bench_serve: a client pass failed\n");
    std::exit(1);
  }
  return wall.millis();
}

double p99(std::vector<double> latencies) {
  std::sort(latencies.begin(), latencies.end());
  return latencies[latencies.size() * 99 / 100];
}

}  // namespace

int main() {
  const core::CaseStudy& study = serve::harness::shared_case_study();
  const core::Fannet fannet(study.qnet);

  // The Fig.-4 sweep as independent verify requests: every test sample at
  // every grid range.
  std::vector<WorkItem> items;
  std::uint64_t id = 0;
  for (std::size_t s = 0; s < study.test_x.rows(); ++s) {
    const auto row = study.test_x.row(s);
    const std::vector<util::i64> x(row.begin(), row.end());
    for (int range = 5; range <= 50; range += 5) {
      WorkItem item;
      item.request =
          serve::harness::verify_request(++id, x, study.test_y[s], range);
      item.query = fannet.make_query(
          x, study.test_y[s],
          verify::NoiseBox::symmetric(x.size(), range), false);
      items.push_back(std::move(item));
    }
  }
  std::printf("workload: %zu verify requests, %zu concurrent clients\n\n",
              items.size(), kClients);

  serve::ServeOptions options;
  options.port = 0;
  options.max_inflight = 64;  // throughput run: admission must not throttle
  verify::QueryCache cache;
  options.cache = &cache;
  serve::Server server(serve::harness::test_fleet(), options);
  server.start();

  const double cold_ms = run_pass(server.port(), items);
  std::vector<double> cold_latencies;
  for (const WorkItem& item : items) cold_latencies.push_back(item.latency_ms);
  std::vector<std::string> cold_verdicts;
  for (const WorkItem& item : items) cold_verdicts.push_back(item.served_verdict);

  const double warm_ms = run_pass(server.port(), items);
  std::vector<double> warm_latencies;
  for (const WorkItem& item : items) warm_latencies.push_back(item.latency_ms);

  const serve::ServerStats stats = server.stats();
  server.stop();

  // --- gate 1: served results are bit-identical to direct execution -------
  std::vector<verify::Query> queries;
  for (const WorkItem& item : items) queries.push_back(item.query);
  const std::vector<verify::VerifyResult> direct =
      verify::Scheduler(verify::SchedulerOptions{})
          .run_all(queries, verify::engine("cascade"));
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const char* expected =
        direct[i].verdict == verify::Verdict::kVulnerable ? "vulnerable"
        : direct[i].verdict == verify::Verdict::kRobust   ? "robust"
                                                          : "unknown";
    bool same = items[i].served_verdict == expected;
    if (same && direct[i].counterexample.has_value()) {
      same = items[i].served_deltas == direct[i].counterexample->deltas;
    }
    if (!same) {
      ++mismatches;
      std::fprintf(stderr,
                   "bit-identity MISMATCH at item %zu: served %s, direct %s\n",
                   i, items[i].served_verdict.c_str(), expected);
    }
    // The warm pass must also agree with the cold pass.
    if (items[i].served_verdict != cold_verdicts[i]) {
      ++mismatches;
      std::fprintf(stderr, "warm/cold verdict drift at item %zu\n", i);
    }
  }

  // --- gate 2: the warm replay shows the shared cache working --------------
  const double saving = 100.0 * (1.0 - warm_ms / cold_ms);

  const double cold_qps = 1000.0 * static_cast<double>(items.size()) / cold_ms;
  const double warm_qps = 1000.0 * static_cast<double>(items.size()) / warm_ms;
  std::printf("cold: %8.1f ms wall, %7.1f qps, p99 %6.2f ms\n", cold_ms,
              cold_qps, p99(cold_latencies));
  std::printf("warm: %8.1f ms wall, %7.1f qps, p99 %6.2f ms\n", warm_ms,
              warm_qps, p99(warm_latencies));
  std::printf("warm-cache wall saving: %.1f%% (gate: >= 30%%)\n", saving);
  std::printf("server cache: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses));

  util::BenchJson json("serve");
  json.add("cold_wall", cold_ms, items.size(), kClients);
  json.add("warm_wall", warm_ms, items.size(), kClients);
  json.add("cold_p99_latency", p99(cold_latencies), items.size(), kClients);
  json.add("warm_p99_latency", p99(warm_latencies), items.size(), kClients);
  json.add("warm_saving_percent", saving, items.size(), kClients);
  const std::string path = json.write(".");
  std::printf("wrote %s\n", path.c_str());

  if (mismatches != 0) {
    std::fprintf(stderr, "bench_serve: %zu bit-identity mismatches\n",
                 mismatches);
    return 1;
  }
  if (saving < 30.0) {
    std::fprintf(stderr,
                 "bench_serve: warm-cache saving %.1f%% below the 30%% gate\n",
                 saving);
    return 1;
  }
  std::puts("\nbench_serve: all gates passed");
  return 0;
}
