// The paper's Section-V case study, end to end.
//
// Reproduces every analysis of Fig. 4 on the synthetic Golub cohort:
//   - training (100% train / ~94% test accuracy targets),
//   - P1 functional validation of the translated model,
//   - noise-tolerance analysis (paper: +/-11%),
//   - adversarial-noise-vector corpus (P3),
//   - training-bias direction histogram (paper: all flips L0 -> L1),
//   - input-node sensitivity (paper: i5 insensitive to positive noise),
//   - classification-boundary proximity distribution.
//
// Runtime: a couple of seconds (dominated by mRMR over 7129 genes).
#include <algorithm>
#include <cstdio>

#include "core/analysis.hpp"
#include "core/casestudy.hpp"
#include "core/fannet.hpp"
#include "core/report.hpp"

int main() {
  using namespace fannet;

  std::puts("=== FANNet leukemia case study (paper Section V) ===\n");
  const core::CaseStudy cs = core::build_case_study();

  std::printf("cohort: %zu samples x %zu genes, train %zu (L1=%zu/L0=%zu), test %zu\n",
              cs.golub.dataset.size(), cs.golub.dataset.num_features(),
              cs.train_y.size(),
              static_cast<std::size_t>(
                  std::count(cs.train_y.begin(), cs.train_y.end(), 1)),
              static_cast<std::size_t>(
                  std::count(cs.train_y.begin(), cs.train_y.end(), 0)),
              cs.test_y.size());
  std::printf("mRMR selected genes:");
  for (const std::size_t g : cs.selected_genes) std::printf(" %zu", g);
  std::printf("\ntrain accuracy: %.2f%%   test accuracy: %.2f%%  (paper: 100%% / 94.12%%)\n\n",
              100.0 * cs.train_accuracy, 100.0 * cs.test_accuracy);

  const core::Fannet fannet(cs.qnet);

  // --- P1: functional validation (Fig. 2, Behavior Extraction) -----------
  const auto bad = fannet.validate_p1(cs.test_x, cs.test_y);
  std::printf("P1: %zu/%zu test samples misclassified without noise "
              "(excluded from the noise analysis)\n\n",
              bad.size(), cs.test_y.size());

  // --- Noise tolerance (Fig. 4, paper: +/-11%) ----------------------------
  // The cascade portfolio (sound screens + complete B&B fallback) decides
  // every P2 query; the per-sample descents fan out across all cores.
  core::ToleranceConfig config;
  config.start_range = 50;
  config.engine = core::Engine::kCascade;
  const core::ToleranceReport tolerance =
      fannet.analyze_tolerance(cs.test_x, cs.test_y, config);
  std::puts("--- Noise tolerance (P2 descent) ---");
  std::fputs(core::format_tolerance(tolerance).c_str(), stdout);
  std::puts("");

  // --- P3 corpus + training bias (Fig. 4, all flips L0 -> L1) ------------
  const int corpus_range = std::min(50, tolerance.noise_tolerance + 10);
  const std::vector<core::CorpusEntry> corpus =
      fannet.extract_corpus(cs.test_x, cs.test_y, corpus_range, 2000);
  std::printf("--- Training bias (corpus of %zu noise vectors at +/-%d%%) ---\n",
              corpus.size(), corpus_range);
  const core::BiasReport bias = core::analyze_bias(corpus, 2, cs.train_y);
  std::fputs(core::format_bias(bias).c_str(), stdout);
  std::puts("");

  // --- Input node sensitivity (Fig. 4, node i5 / i2 panels) ---------------
  std::puts("--- Input node sensitivity ---");
  const core::NodeSensitivityReport sensitivity =
      core::analyze_sensitivity(fannet, cs.test_x, cs.test_y, 50, corpus);
  std::fputs(core::format_sensitivity(sensitivity).c_str(), stdout);
  std::puts("");

  // --- Classification boundary (Fig. 4) -----------------------------------
  std::puts("--- Classification-boundary proximity ---");
  const core::BoundaryReport boundary =
      core::analyze_boundary(tolerance, 5, config.start_range);
  std::fputs(core::format_boundary(boundary).c_str(), stdout);
  return 0;
}
