// P3 demo (Fig. 2, right): extract the unique adversarial noise vectors —
// the "noise matrix e" — for one sample, the way the paper grows it one
// counterexample at a time with the blocking expression e = NV1|NV2|...
//
// Our branch-and-bound streams the same set without re-running the model
// checker per vector (disjoint boxes are blocked structurally), but the
// contract is identical: every returned vector flips the sample, and the
// enumeration is exhaustive up to the cap.
#include <cstdio>

#include "core/casestudy.hpp"
#include "core/fannet.hpp"
#include "verify/bnb.hpp"

int main() {
  using namespace fannet;

  const core::CaseStudy cs =
      core::build_case_study(core::small_case_study_config());
  const core::Fannet fannet(cs.qnet);

  // Find the most noise-fragile correctly-classified test sample.
  core::ToleranceConfig config;
  config.start_range = 50;
  const core::ToleranceReport tolerance =
      fannet.analyze_tolerance(cs.test_x, cs.test_y, config);

  std::size_t target = 0;
  int best = 1000;
  for (const auto& st : tolerance.per_sample) {
    if (st.min_flip_range.has_value() && *st.min_flip_range < best) {
      best = *st.min_flip_range;
      target = st.sample;
    }
  }
  if (best == 1000) {
    std::puts("no sample flips up to +/-50% — nothing to extract");
    return 0;
  }
  std::printf("most fragile sample: #%zu (flips at +/-%d%%)\n", target, best);

  verify::Query q;
  q.net = &cs.qnet;
  q.x.assign(cs.test_x.row(target).begin(), cs.test_x.row(target).end());
  q.true_label = cs.test_y[target];
  q.box = verify::NoiseBox::symmetric(q.x.size(), best + 1);

  const auto corpus = verify::bnb_collect(q, 25);
  std::printf("adversarial noise vectors at +/-%d%% (first %zu):\n", best + 1,
              corpus.size());
  for (const auto& cex : corpus) {
    std::printf("  NV = [");
    for (std::size_t i = 0; i < cex.deltas.size(); ++i) {
      std::printf("%s%+d%%", i ? ", " : "", cex.deltas[i]);
    }
    std::printf("]  -> L%d\n", cex.mis_label);
  }
  return 0;
}
