// Eq.-3 input-node sensitivity on its own: for each input node, how much
// noise can THAT node alone absorb before any test sample flips, and in
// which direction do adversarial perturbations exist at all?
//
// This is the analysis behind the paper's variable-precision data
// acquisition suggestion (§V-C.4): insensitive nodes can be measured
// cheaply, sensitive ones need precise acquisition.
#include <cstdio>

#include "core/analysis.hpp"
#include "core/casestudy.hpp"
#include "core/fannet.hpp"
#include "core/report.hpp"

int main() {
  using namespace fannet;

  const core::CaseStudy cs =
      core::build_case_study(core::small_case_study_config());
  const core::Fannet fannet(cs.qnet);

  std::printf("network: 5-20-2, test accuracy %.2f%%\n\n",
              100.0 * cs.test_accuracy);

  // Pure Eq.-3 analysis: empty corpus (histogram columns will be zero).
  // The directional/solo probes are sound decisions by the cascade
  // portfolio engine, fanned out over every core; the directional
  // existence batches cancel as soon as a witness is found.
  core::SensitivityConfig probes;
  probes.engine = core::Engine::kCascade;
  probes.threads = 0;  // one worker per hardware thread
  const core::NodeSensitivityReport report =
      core::analyze_sensitivity(fannet, cs.test_x, cs.test_y, 50, {}, probes);
  std::fputs(core::format_sensitivity(report).c_str(), stdout);

  std::puts("\nReading the table:");
  std::puts(" - 'pos/neg possible' = does ANY adversarial noise vector exist");
  std::puts("   whose noise at this node has that sign (others unconstrained)?");
  std::puts(" - 'solo flip at' = Eq. 3: smallest +/-a flipping some sample");
  std::puts("   when ONLY this node is noised ('never' = robust node).");
  return 0;
}
