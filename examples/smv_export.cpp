// Behavior Extraction demo: translate a trained network + one test sample
// into the SMV model the paper feeds nuXmv, print it, and model-check the
// P1/P2 properties with our own backends (explicit-state here; the bmc
// bench exercises the SAT path on the same model).
//
// The .smv text written to leukemia_sample.smv is nuXmv-compatible.
#include <algorithm>
#include <cstdio>
#include <fstream>

#include "core/casestudy.hpp"
#include "core/fannet.hpp"
#include "core/translate.hpp"
#include "mc/explicit.hpp"
#include "smv/printer.hpp"

int main() {
  using namespace fannet;

  // Small cohort keeps this example fast; same code paths as the paper-size
  // run in leukemia_case_study.
  const core::CaseStudy cs = core::build_case_study(core::small_case_study_config());
  const core::Fannet fannet(cs.qnet);

  // Pick the first correctly classified test sample.
  const auto bad = fannet.validate_p1(cs.test_x, cs.test_y);
  std::size_t sample = 0;
  while (std::find(bad.begin(), bad.end(), sample) != bad.end()) ++sample;

  verify::Query q;
  q.net = &cs.qnet;
  q.x.assign(cs.test_x.row(sample).begin(), cs.test_x.row(sample).end());
  q.true_label = cs.test_y[sample];
  q.box = verify::NoiseBox::symmetric(q.x.size(), 2);  // +/-2% noise

  // --- P1: the no-noise model must classify correctly --------------------
  const core::Translation p1 = core::translate_sample(q, /*with_noise=*/false);
  const mc::ExplicitChecker p1_checker(p1.module);
  const auto p1_result = p1_checker.check_spec(p1.module.specs().front());
  std::printf("P1 (no noise): %s\n", p1_result.holds ? "PASS" : "FAIL");

  // --- P2: the noisy model -------------------------------------------------
  const core::Translation p2 = core::translate_sample(q, /*with_noise=*/true);
  const std::string text = smv::print_module(p2.module);
  std::ofstream("leukemia_sample.smv") << text;
  std::printf("wrote leukemia_sample.smv (%zu bytes); first lines:\n", text.size());
  std::fputs(text.substr(0, 600).c_str(), stdout);
  std::puts("  ...");

  const mc::ExplicitChecker p2_checker(p2.module);
  const auto p2_result = p2_checker.check_spec(p2.module.specs().front());
  if (p2_result.holds) {
    std::printf("P2 at +/-2%%: PASS — no noise vector flips sample %zu "
                "(%llu states)\n",
                sample,
                static_cast<unsigned long long>(p2_result.states_explored));
  } else {
    const verify::Counterexample cex = core::decode_counterexample(
        p2, q, p2_result.counterexample.states.back());
    std::printf("P2 at +/-2%%: FAIL — noise vector [");
    for (std::size_t i = 0; i < cex.deltas.size(); ++i) {
      std::printf("%s%d%%", i ? ", " : "", cex.deltas[i]);
    }
    std::printf("] flips sample %zu to L%d\n", sample, cex.mis_label);
  }
  return 0;
}
