// Quickstart: the FANNet API in ~60 lines.
//
//   1. build a tiny network (or train one — see leukemia_case_study),
//   2. quantize it for exact formal analysis,
//   3. ask the P2 question at growing noise ranges,
//   4. read off the noise tolerance and a concrete adversarial noise vector.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/fannet.hpp"
#include "nn/network.hpp"
#include "nn/quantized.hpp"

int main() {
  using namespace fannet;

  // A hand-made 2-3-2 ReLU network (weights chosen so class 0 wins when
  // x1 dominates x2 and vice versa).
  nn::Layer hidden;
  hidden.weights = la::MatrixD::from_rows({{0.9, -0.4},
                                           {-0.3, 0.8},
                                           {0.5, 0.5}});
  hidden.bias = {0.05, 0.05, -0.2};
  hidden.activation = nn::Activation::kReLU;

  nn::Layer out;
  out.weights = la::MatrixD::from_rows({{1.0, -0.6, 0.3},
                                        {-0.7, 1.1, 0.3}});
  out.bias = {0.01, -0.01};
  out.activation = nn::Activation::kLinear;

  const nn::Network net({hidden, out});

  // Exact fixed-point twin (inputs are integers in [1,100], scaled by 100).
  const nn::QuantizedNetwork qnet = nn::QuantizedNetwork::quantize(net, 100);
  const core::Fannet fannet(qnet);

  // One "test sample": x = (70, 30), true label 0.
  la::Matrix<util::i64> inputs(1, 2);
  inputs(0, 0) = 70;
  inputs(0, 1) = 30;
  const std::vector<int> labels = {0};

  std::printf("P1 (no noise): classified as L%d (want L0)\n",
              qnet.classify_noised(inputs.row(0), {}));

  // Noise tolerance: the largest +/-R%% such that NO integer noise vector
  // in the box flips the label.
  core::ToleranceConfig config;
  config.start_range = 50;
  // Engines are selected by registry name: the default "cascade" screens
  // with sound bounds and falls back to complete branch-and-bound; any
  // registered strategy works, e.g. config.engine = core::Engine::kBnB or
  // config.engine = core::Engine{"enumerate"}.
  config.engine = core::Engine::kCascade;
  const core::ToleranceReport report =
      fannet.analyze_tolerance(inputs, labels, config);

  std::printf("Noise tolerance: +/-%d%%\n", report.noise_tolerance);
  const auto& sample = report.per_sample.front();
  if (sample.min_flip_range.has_value()) {
    std::printf("First flip at +/-%d%% with noise vector [", *sample.min_flip_range);
    for (std::size_t i = 0; i < sample.witness->deltas.size(); ++i) {
      std::printf("%s%d%%", i ? ", " : "", sample.witness->deltas[i]);
    }
    std::printf("] -> misclassified as L%d\n", sample.witness->mis_label);
  } else {
    std::printf("No flip up to +/-%d%%\n", config.start_range);
  }
  return 0;
}
