#!/usr/bin/env python3
"""Scripted client for fannet_serve -- the CI smoke driver.

Speaks the length-prefixed JSON protocol (docs/serve.md): every frame is a
4-byte big-endian payload length followed by that many bytes of UTF-8 JSON.
Each invocation opens one connection, runs one command, prints the server's
final frame as JSON on stdout, and exits 0 only when every --expect-* check
holds -- so a CI step is a readable sequence of assertions:

    python3 tools/serve_client.py --port "$port" ping
    python3 tools/serve_client.py --port "$port" verify --range 10 \
        --expect-cache-hit false
    python3 tools/serve_client.py --port "$port" verify --range 10 \
        --expect-cache-hit true
    python3 tools/serve_client.py --port "$port" verify --range 40 \
        --engine enumerate --deadline-ms 50 --expect-deadline-expired
    python3 tools/serve_client.py --port "$port" disconnect --range 40
    python3 tools/serve_client.py --port "$port" stats \
        --wait cancelled_disconnect 1

The verify command discovers its base point from a `models` request: the
server advertises a canonical `probe` sample (the first P1-correct one), so
the smoke test drives real P2 queries -- including the enumerate-under-
deadline case, which needs a point the engine cannot dismiss instantly --
without shipping the dataset.  Verdict bit-identity is bench_serve's gate;
this driver pins protocol behaviour (result frames, cache_hit flip,
deadline reporting, disconnect cancellation, drain).

Uses only the Python standard library.
"""

import argparse
import json
import socket
import struct
import sys
import time


class ProtocolError(Exception):
    pass


class Client:
    """One connection; send_request/recv_final implement the framing."""

    def __init__(self, port, timeout_s=30.0):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=timeout_s)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.next_id = 0

    def close(self):
        self.sock.close()

    def close_abrupt(self):
        """RST instead of FIN: the 'client process died' fault."""
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                             struct.pack("ii", 1, 0))
        self.sock.close()

    def send_request(self, request):
        self.next_id += 1
        request = dict(request, id=self.next_id)
        payload = json.dumps(request).encode()
        self.sock.sendall(struct.pack(">I", len(payload)) + payload)
        return self.next_id

    def recv_frame(self):
        prefix = self._recv_exact(4)
        (length,) = struct.unpack(">I", prefix)
        if length == 0 or length > (1 << 20):
            raise ProtocolError(f"bad frame length {length}")
        return json.loads(self._recv_exact(length).decode())

    def recv_final(self):
        """Skips progress frames; returns the result/error/pong frame."""
        while True:
            frame = self.recv_frame()
            if frame.get("type") != "progress":
                return frame

    def call(self, request):
        self.send_request(request)
        return self.recv_final()

    def _recv_exact(self, want):
        data = b""
        while len(data) < want:
            chunk = self.sock.recv(want - len(data))
            if not chunk:
                raise ProtocolError("connection closed mid-frame")
            data += chunk
        return data


def fail(message, frame=None):
    if frame is not None:
        print(json.dumps(frame), file=sys.stderr)
    print(f"serve_client: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def expect_type(frame, wanted):
    if frame.get("type") != wanted:
        fail(f"expected a {wanted} frame, got {frame.get('type')!r}", frame)


def first_model(client):
    frame = client.call({"type": "models"})
    expect_type(frame, "result")
    models = frame["body"]["models"]
    if not models:
        fail("server reports an empty model fleet", frame)
    return models[0]


def verify_request(client, args):
    model = first_model(client)
    probe = model.get("probe")
    if probe is None:
        # No P1-correct sample advertised: fall back to the origin.
        probe = {"x": [0] * model["inputs"], "label": 0}
    request = {
        "type": "verify",
        "model": model["name"],
        "x": probe["x"],
        "true_label": probe["label"],
        "box": {"range": args.range},
    }
    if args.engine:
        request["engine"] = args.engine
    if getattr(args, "deadline_ms", 0):
        request["deadline_ms"] = args.deadline_ms
    return request


def cmd_ping(client, args):
    frame = client.call({"type": "ping"})
    expect_type(frame, "pong")
    if frame.get("id") != client.next_id:
        fail(f"pong id {frame.get('id')} != request id {client.next_id}", frame)
    return frame


def cmd_models(client, args):
    frame = client.call({"type": "models"})
    expect_type(frame, "result")
    return frame


def cmd_verify(client, args):
    frame = client.call(verify_request(client, args))
    expect_type(frame, "result")
    body = frame["body"]
    if body.get("verdict") not in ("robust", "vulnerable", "unknown"):
        fail(f"unexpected verdict {body.get('verdict')!r}", frame)
    if args.expect_cache_hit is not None:
        wanted = args.expect_cache_hit == "true"
        if body.get("cache_hit") is not wanted:
            fail(f"cache_hit {body.get('cache_hit')} != expected {wanted}",
                 frame)
    if args.expect_deadline_expired:
        if not body.get("deadline_expired"):
            fail("deadline_expired not set on a deadline-cut request", frame)
        if body.get("verdict") != "unknown":
            fail("a deadline-cut verify must answer unknown", frame)
    return frame


def cmd_disconnect(client, args):
    """Sends a heavy request, then dies mid-execution (RST).  The follow-up
    `stats --wait cancelled_disconnect N` proves the server cancelled it."""
    request = verify_request(client, args)
    request["engine"] = args.engine or "enumerate"
    request.pop("deadline_ms", None)
    client.send_request(request)
    time.sleep(args.linger_s)
    client.close_abrupt()
    return {"type": "disconnect", "sent": request["type"]}


def cmd_stats(client, args):
    deadline = time.monotonic() + args.timeout_s
    while True:
        frame = client.call({"type": "stats"})
        expect_type(frame, "result")
        body = frame["body"]
        if args.wait is None:
            return frame
        key, floor = args.wait
        if body.get(key, 0) >= int(floor):
            return frame
        if time.monotonic() > deadline:
            fail(f"stats.{key} = {body.get(key)} never reached {floor}", frame)
        time.sleep(0.05)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--timeout-s", type=float, default=30.0)
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("ping")
    commands.add_parser("models")

    verify = commands.add_parser("verify")
    verify.add_argument("--range", type=int, default=10)
    verify.add_argument("--engine", default="")
    verify.add_argument("--deadline-ms", type=int, default=0)
    verify.add_argument("--expect-cache-hit", choices=["true", "false"])
    verify.add_argument("--expect-deadline-expired", action="store_true")

    disconnect = commands.add_parser("disconnect")
    disconnect.add_argument("--range", type=int, default=40)
    disconnect.add_argument("--engine", default="")
    disconnect.add_argument("--linger-s", type=float, default=0.1,
                            help="seconds to let the request run before RST")

    stats = commands.add_parser("stats")
    stats.add_argument("--wait", nargs=2, metavar=("KEY", "FLOOR"),
                       help="poll until stats.KEY >= FLOOR")
    stats.add_argument("--timeout-s", type=float, default=15.0,
                       dest="timeout_s")

    args = parser.parse_args()
    handlers = {
        "ping": cmd_ping,
        "models": cmd_models,
        "verify": cmd_verify,
        "disconnect": cmd_disconnect,
        "stats": cmd_stats,
    }
    try:
        client = Client(args.port, args.timeout_s)
    except OSError as e:
        fail(f"cannot connect to 127.0.0.1:{args.port}: {e}")
    try:
        frame = handlers[args.command](client, args)
    except (ProtocolError, socket.timeout, OSError, KeyError) as e:
        fail(f"{args.command}: {type(e).__name__}: {e}")
    print(json.dumps(frame))
    return 0


if __name__ == "__main__":
    sys.exit(main())
