// fannet_cli — one binary driving every FANNet analysis from the shell.
//
// The benches reproduce the paper's figures with fixed settings; this tool
// exposes the same five analyses (tolerance, bias, sensitivity, boundary,
// weight-faults) with the knobs scripted sweeps need — engine, thread
// count, noise grid, cohort seed — plus `--cache-dir`, which installs a
// process-wide verify::QueryCache with a disk tier so repeated invocations
// warm-start (DESIGN.md §7).  Each run writes the same BENCH_*.json schema
// the benches emit (docs/bench-format.md), under BENCH_cli_<command>.json.
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error, 3 sweep shards
// pending, 4 deadline expired on at least one query.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/casestudy.hpp"
#include "core/fannet.hpp"
#include "core/faults.hpp"
#include "core/report.hpp"
#include "util/benchjson.hpp"
#include "util/stopwatch.hpp"
#include "verify/engine.hpp"
#include "verify/query_cache.hpp"
#include "verify/scheduler.hpp"
#include "verify/sweep.hpp"

namespace {

using namespace fannet;

struct Options {
  std::string command;
  std::string engine = "cascade";
  std::size_t threads = 0;          // 0 = hardware concurrency
  std::size_t intra_threads = 0;    // 0 = leftover threads per query
  std::size_t batch = 0;            // SoA lanes; 0 = auto, 1 = scalar
  std::uint64_t deadline_ms = 0;    // per-query deadline; 0 = none
  int start_range = 50;             // tolerance / boundary / weight-faults
  int range = 20;                   // bias / sensitivity probes + corpus
  int grid_lo = 5, grid_hi = 50, grid_step = 5;
  int bucket_width = 5;
  int step = 1;                     // weight-fault scan granularity
  core::FaultModel fault_model = core::FaultModel::kPercentScale;
  std::size_t max_per_sample = 100; // corpus cap
  std::uint64_t seed = 42;          // synthetic-cohort seed
  bool small = false;               // fast small-cohort config
  std::string cache_dir;            // empty = caching disabled
  std::size_t cache_capacity = 1u << 20;
  std::string json_dir = ".";
  std::string analysis = "tolerance";  // campaign behind `sweep`
  std::string journal;              // sweep checkpoint file (empty = none)
  std::size_t shard_size = 0;       // sweep units per shard (0 = 1)
  std::size_t max_shards = 0;       // sweep shard cap per invocation (0 = all)
};

constexpr const char* kUsage = R"(usage: fannet_cli <command> [flags]

commands
  tolerance      noise-tolerance analysis + Fig. 4 misclassification table
  bias           training-bias direction histogram over the noise corpus
  sensitivity    input-node sensitivity (directional + Eq. 3 solo probes)
  boundary       classification-boundary proximity histogram
  weight-faults  weight-fault sensitivity ranking (hardware extension)
  engines        list the registered verification engines
  sweep          resumable sharded campaign (tolerance | sensitivity |
                 weight-faults) with a crash-tolerant checkpoint journal

flags
  --engine NAME        P2 decision engine (default: cascade)
  --threads N          worker threads, 0 = one per hardware thread (default 0)
  --intra-threads N    worker budget inside each P2 query (branch-and-bound
                       work-stealing frontier); 0 = grant the threads left
                       over when a batch is smaller than the pool (default 0)
  --batch N            SoA evaluation lanes per vectorized forward pass
                       (tolerance, boundary, sensitivity, weight-faults);
                       0 = auto, 1 = the scalar reference path (default 0);
                       results are bit-identical for every value
  --deadline-ms N      per-query wall-clock deadline in milliseconds
                       (tolerance, boundary, sensitivity); an expired query
                       resolves kUnknown — the run finishes, reports how
                       many probes were cut, and exits 4 (0 = none, default)
  --start-range N      initial noise range for tolerance/boundary (default 50)
  --range N            noise range for bias/sensitivity probes and corpus
                       extraction (default 20); scan limit for weight-faults
  --grid LO:HI:STEP    noise grid of the tolerance report table (default 5:50:5)
  --bucket-width N     histogram bucket for `boundary` (default 5)
  --step N             percent granularity of the weight-fault scan (default 1)
  --fault-model NAME   weight-fault corruption model: percent (default),
                       stuck-at-zero, sign-flip, or bit-flip (single-bit
                       corruption of the raw fixed-point word)
  --max-per-sample N   corpus cap per sample (default 100)
  --seed N             synthetic-cohort seed (default 42)
  --small              small fast cohort (CI/smoke runs; same code paths)
  --cache-dir DIR      enable the query cache with a disk tier in DIR
  --cache-capacity N   in-memory LRU capacity (default 1048576)
  --json-dir DIR       where BENCH_cli_<command>.json is written (default .)
  --analysis NAME      campaign behind `sweep`: tolerance (default),
                       sensitivity, or weight-faults
  --resume FILE        sweep checkpoint journal: created cold, resumed when
                       it already has entries (--journal is a synonym)
  --shard-size N       sweep work units per journaled shard (default 1)
  --max-shards N       execute at most N shards this invocation, then exit 3
                       with the rest pending (chunking across processes or
                       machines; 0 = no cap, default)
  --help               this text

exit codes: 0 success (sweep: campaign complete), 1 runtime failure,
2 usage error, 3 sweep ran fine but shards are still pending (--max-shards),
4 analysis finished but --deadline-ms expired on at least one query
)";

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "fannet_cli: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

bool parse_size(const char* text, std::size_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_int(const char* text, int& out) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = static_cast<int>(v);
  return true;
}

Options parse_args(int argc, char** argv) {
  Options opts;
  if (argc < 2) usage_error("missing command");
  if (std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0) {
    std::fputs(kUsage, stdout);
    std::exit(0);
  }
  opts.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_error("flag " + flag + " needs a value");
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else if (flag == "--engine") {
      opts.engine = value();
    } else if (flag == "--threads") {
      if (!parse_size(value(), opts.threads)) usage_error("bad --threads");
    } else if (flag == "--intra-threads") {
      if (!parse_size(value(), opts.intra_threads)) {
        usage_error("bad --intra-threads");
      }
    } else if (flag == "--batch") {
      if (!parse_size(value(), opts.batch)) usage_error("bad --batch");
    } else if (flag == "--deadline-ms") {
      std::size_t ms = 0;
      if (!parse_size(value(), ms)) usage_error("bad --deadline-ms");
      opts.deadline_ms = ms;
    } else if (flag == "--start-range") {
      if (!parse_int(value(), opts.start_range) || opts.start_range < 1) {
        usage_error("bad --start-range");
      }
    } else if (flag == "--range") {
      if (!parse_int(value(), opts.range) || opts.range < 1) {
        usage_error("bad --range");
      }
    } else if (flag == "--grid") {
      const std::string grid = value();
      if (std::sscanf(grid.c_str(), "%d:%d:%d", &opts.grid_lo, &opts.grid_hi,
                      &opts.grid_step) != 3 ||
          opts.grid_lo < 1 || opts.grid_hi < opts.grid_lo ||
          opts.grid_step < 1) {
        usage_error("bad --grid, expected LO:HI:STEP");
      }
    } else if (flag == "--bucket-width") {
      if (!parse_int(value(), opts.bucket_width) || opts.bucket_width < 1) {
        usage_error("bad --bucket-width");
      }
    } else if (flag == "--step") {
      if (!parse_int(value(), opts.step) || opts.step < 1) {
        usage_error("bad --step");
      }
    } else if (flag == "--fault-model") {
      const std::optional<core::FaultModel> model =
          core::fault_model_from_name(value());
      if (!model) {
        usage_error("bad --fault-model, expected percent | stuck-at-zero | "
                    "sign-flip | bit-flip");
      }
      opts.fault_model = *model;
    } else if (flag == "--max-per-sample") {
      if (!parse_size(value(), opts.max_per_sample)) {
        usage_error("bad --max-per-sample");
      }
    } else if (flag == "--seed") {
      std::size_t seed = 0;
      if (!parse_size(value(), seed)) usage_error("bad --seed");
      opts.seed = seed;
    } else if (flag == "--small") {
      opts.small = true;
    } else if (flag == "--analysis") {
      opts.analysis = value();
    } else if (flag == "--resume" || flag == "--journal") {
      opts.journal = value();
    } else if (flag == "--shard-size") {
      if (!parse_size(value(), opts.shard_size)) usage_error("bad --shard-size");
    } else if (flag == "--max-shards") {
      if (!parse_size(value(), opts.max_shards)) usage_error("bad --max-shards");
    } else if (flag == "--cache-dir") {
      opts.cache_dir = value();
    } else if (flag == "--cache-capacity") {
      if (!parse_size(value(), opts.cache_capacity) ||
          opts.cache_capacity == 0) {
        usage_error("bad --cache-capacity");
      }
    } else if (flag == "--json-dir") {
      opts.json_dir = value();
    } else {
      usage_error("unknown flag " + flag);
    }
  }
  return opts;
}

core::CaseStudy build_cohort(const Options& opts) {
  core::CaseStudyConfig config =
      opts.small ? core::small_case_study_config() : core::CaseStudyConfig{};
  config.golub.seed = opts.seed;
  std::printf("building %s cohort (seed %llu) ...\n",
              opts.small ? "small" : "paper-scale",
              static_cast<unsigned long long>(opts.seed));
  const core::CaseStudy cs = core::build_case_study(config);
  std::printf("train accuracy %.2f%%, test accuracy %.2f%%\n\n",
              cs.train_accuracy * 100.0, cs.test_accuracy * 100.0);
  return cs;
}

core::ToleranceReport run_tolerance(const core::CaseStudy& cs,
                                    const Options& opts) {
  core::ToleranceConfig config;
  config.start_range = opts.start_range;
  config.engine = core::Engine{opts.engine};
  config.threads = opts.threads;
  config.intra_query_threads = opts.intra_threads;
  config.batch = opts.batch;
  config.deadline_ms = opts.deadline_ms;
  return core::Fannet(cs.qnet).analyze_tolerance(cs.test_x, cs.test_y, config);
}

void print_tolerance_table(const core::ToleranceReport& report,
                           const Options& opts) {
  core::TextTable t({"noise range", "misclassified inputs", "of correct"});
  std::size_t correct = 0;
  for (const auto& st : report.per_sample) correct += st.correct_without_noise;
  for (int range = opts.grid_lo; range <= opts.grid_hi;
       range += opts.grid_step) {
    std::size_t flipped = 0;
    for (const auto& st : report.per_sample) {
      flipped += st.min_flip_range.has_value() && *st.min_flip_range <= range;
    }
    t.add_row({"+/-" + std::to_string(range) + "%", std::to_string(flipped),
               std::to_string(correct)});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("\nnoise tolerance: +/-%d%%   (%llu P2 queries)\n",
              report.noise_tolerance,
              static_cast<unsigned long long>(report.queries));
}

int run_command(const Options& opts, util::BenchJson& json) {
  if (opts.command == "engines") {
    // Capability columns mirror verify::EngineCaps: verdict class, whether
    // VerifyContext::budget resource caps are honoured, whether a deadline /
    // cancellation interrupts mid-flight, and whether the engine has a
    // native incremental task (vs the generic one-shot adapter).
    core::TextTable t({"engine", "verdicts", "budget", "deadline", "task"});
    for (const std::string& name : verify::registry().names()) {
      const verify::EngineCaps caps = verify::engine(name).caps();
      t.add_row({name, caps.complete ? "complete" : "sound-only",
                 caps.budget ? "yes" : "no", caps.deadline ? "yes" : "no",
                 caps.native_task ? "native" : "generic"});
    }
    std::fputs(t.to_string().c_str(), stdout);
    return 0;
  }
  // Validate command and engine before the (expensive) cohort build; a
  // typo'd engine fails with the known names listed.
  if (opts.command != "tolerance" && opts.command != "boundary" &&
      opts.command != "bias" && opts.command != "sensitivity" &&
      opts.command != "weight-faults" && opts.command != "sweep") {
    usage_error("unknown command " + opts.command);
  }
  if (opts.command == "sweep" && opts.analysis != "tolerance" &&
      opts.analysis != "sensitivity" && opts.analysis != "weight-faults") {
    usage_error("bad --analysis, expected tolerance | sensitivity | "
                "weight-faults");
  }
  if (opts.deadline_ms != 0 && opts.command != "tolerance" &&
      opts.command != "boundary" && opts.command != "sensitivity") {
    // sweep: journaled shard rows must be time-independent (the analyses
    // reject the combination too); bias / weight-faults never dispatch
    // through the deadline-aware scheduler path.
    usage_error("--deadline-ms is not supported by " + opts.command);
  }
  if (opts.command == "sweep" && opts.max_shards != 0 && opts.journal.empty()) {
    // Without a journal a capped run discards its results on exit, so every
    // invocation would redo the same first shards forever.
    usage_error("--max-shards needs --resume FILE (a capped run without a "
                "journal can never make progress)");
  }
  [[maybe_unused]] const verify::Engine& checked = verify::engine(opts.engine);

  const core::CaseStudy cs = build_cohort(opts);
  const core::Fannet fannet(cs.qnet);
  const util::Stopwatch watch;
  const std::size_t threads = verify::Scheduler({.threads = opts.threads})
                                  .threads();

  // Set by the deadline-aware analyses; turns exit 0 into exit 4 so
  // scripted sweeps can tell a full answer from a time-cut one.
  std::uint64_t deadline_expired = 0;

  if (opts.command == "tolerance") {
    const core::ToleranceReport report = run_tolerance(cs, opts);
    print_tolerance_table(report, opts);
    json.add("tolerance_analysis", watch.millis(), report.queries, threads);
    deadline_expired = report.deadline_expired;
  } else if (opts.command == "boundary") {
    const core::ToleranceReport report = run_tolerance(cs, opts);
    const core::BoundaryReport boundary =
        core::analyze_boundary(report, opts.bucket_width, opts.start_range);
    std::fputs(core::format_boundary(boundary).c_str(), stdout);
    json.add("boundary_analysis", watch.millis(), report.queries, threads);
    deadline_expired = report.deadline_expired;
  } else if (opts.command == "bias") {
    const auto corpus =
        fannet.extract_corpus(cs.test_x, cs.test_y, opts.range,
                              opts.max_per_sample, false, opts.threads);
    const core::BiasReport bias =
        core::analyze_bias(corpus, cs.qnet.output_dim(), cs.train_y);
    std::printf("corpus: %zu counterexamples at +/-%d%%\n\n", corpus.size(),
                opts.range);
    std::fputs(core::format_bias(bias).c_str(), stdout);
    json.add("bias_analysis", watch.millis(), corpus.size(), threads);
  } else if (opts.command == "sensitivity") {
    const auto corpus =
        fannet.extract_corpus(cs.test_x, cs.test_y, opts.range,
                              opts.max_per_sample, false, opts.threads);
    core::SensitivityConfig config;
    config.engine = core::Engine{opts.engine};
    config.threads = opts.threads;
    config.intra_query_threads = opts.intra_threads;
    config.batch = opts.batch;
    config.deadline_ms = opts.deadline_ms;
    const core::NodeSensitivityReport report = core::analyze_sensitivity(
        fannet, cs.test_x, cs.test_y, opts.range, corpus, config);
    std::fputs(core::format_sensitivity(report).c_str(), stdout);
    json.add("sensitivity_analysis", watch.millis(), corpus.size(), threads);
    deadline_expired = report.deadline_expired;
  } else if (opts.command == "weight-faults") {
    core::WeightFaultConfig config;
    config.max_percent = opts.range;
    config.step = opts.step;
    config.threads = opts.threads;
    config.model = opts.fault_model;
    config.batch = opts.batch;
    const core::WeightFaultReport report =
        core::analyze_weight_faults(cs.qnet, cs.test_x, cs.test_y, config);
    std::fputs(core::format_weight_faults(report).c_str(), stdout);
    json.add("weight_fault_analysis", watch.millis(), report.evaluations,
             threads);
  } else if (opts.command == "sweep") {
    verify::SweepOptions sweep;
    sweep.journal_path = opts.journal;
    sweep.shard_size = opts.shard_size;
    sweep.max_shards = opts.max_shards;
    sweep.threads = opts.threads;

    verify::SweepProgress progress;
    if (opts.analysis == "tolerance") {
      core::ToleranceConfig config;
      config.start_range = opts.start_range;
      config.engine = core::Engine{opts.engine};
      config.threads = opts.threads;
      config.intra_query_threads = opts.intra_threads;
      config.batch = opts.batch;
      config.sweep = sweep;
      const core::ToleranceReport report =
          fannet.analyze_tolerance(cs.test_x, cs.test_y, config);
      progress = report.sweep;
      if (progress.complete()) print_tolerance_table(report, opts);
      json.add("sweep_tolerance", watch.millis(), report.queries, threads);
    } else if (opts.analysis == "sensitivity") {
      core::SensitivityConfig config;
      config.engine = core::Engine{opts.engine};
      config.threads = opts.threads;
      config.intra_query_threads = opts.intra_threads;
      config.batch = opts.batch;
      config.sweep = sweep;
      // Only the probe fan-out is journaled; the corpus exists just for
      // the final report's histograms.  Journal-backed (possibly chunked)
      // runs therefore probe first with an empty corpus — intermediate
      // invocations skip the expensive P3 extraction entirely — and only
      // a completing run extracts the corpus and re-aggregates, with
      // every probe shard answered from the journal.
      std::size_t corpus_size = 0;
      core::NodeSensitivityReport report;
      if (opts.journal.empty()) {
        const auto corpus =
            fannet.extract_corpus(cs.test_x, cs.test_y, opts.range,
                                  opts.max_per_sample, false, opts.threads);
        corpus_size = corpus.size();
        report = core::analyze_sensitivity(fannet, cs.test_x, cs.test_y,
                                           opts.range, corpus, config);
      } else {
        report = core::analyze_sensitivity(fannet, cs.test_x, cs.test_y,
                                           opts.range, {}, config);
        // The probe pass's progress reflects this invocation's real work;
        // the re-aggregation below answers every shard from the journal.
        progress = report.sweep;
        if (progress.complete()) {
          const auto corpus =
              fannet.extract_corpus(cs.test_x, cs.test_y, opts.range,
                                    opts.max_per_sample, false, opts.threads);
          corpus_size = corpus.size();
          report = core::analyze_sensitivity(fannet, cs.test_x, cs.test_y,
                                             opts.range, corpus, config);
        }
      }
      if (opts.journal.empty()) progress = report.sweep;
      if (progress.complete()) {
        std::fputs(core::format_sensitivity(report).c_str(), stdout);
      }
      json.add("sweep_sensitivity", watch.millis(), corpus_size, threads);
    } else {  // weight-faults, validated above
      core::WeightFaultConfig config;
      config.max_percent = opts.range;
      config.step = opts.step;
      config.threads = opts.threads;
      config.model = opts.fault_model;
      config.batch = opts.batch;
      config.sweep = sweep;
      const core::WeightFaultReport report =
          core::analyze_weight_faults(cs.qnet, cs.test_x, cs.test_y, config);
      progress = report.sweep;
      if (progress.complete()) {
        std::fputs(core::format_weight_faults(report).c_str(), stdout);
      }
      json.add("sweep_weight_faults", watch.millis(), report.evaluations,
               threads);
    }

    std::printf(
        "\nsweep[%s]: %zu shards total | %zu resumed from journal | "
        "%zu executed | %zu pending (%llu units executed",
        opts.analysis.c_str(), progress.total_shards, progress.resumed_shards,
        progress.executed_shards, progress.pending_shards,
        static_cast<unsigned long long>(progress.units_executed));
    if (progress.journal_skipped > 0) {
      std::printf(", %zu torn/malformed journal lines discarded",
                  progress.journal_skipped);
    }
    std::printf(")\n");
    if (!progress.complete()) {
      std::printf("sweep incomplete: rerun with the same --resume journal to "
                  "continue (exit 3)\n");
    }
    json.add("sweep_shards_total", 0.0, progress.total_shards, 1);
    json.add("sweep_shards_resumed", 0.0, progress.resumed_shards, 1);
    json.add("sweep_shards_executed", 0.0, progress.executed_shards, 1);
    json.add("sweep_shards_pending", 0.0, progress.pending_shards, 1);
    json.add("sweep_units_executed", 0.0, progress.units_executed, 1);
    return progress.complete() ? 0 : 3;
  }
  if (opts.deadline_ms != 0) {
    json.add("deadline_expired", 0.0, deadline_expired, 1);
    if (deadline_expired > 0) {
      std::printf(
          "\ndeadline: %llu probe(s) cut at %llu ms each — the report is a "
          "time-budgeted approximation (exit 4)\n",
          static_cast<unsigned long long>(deadline_expired),
          static_cast<unsigned long long>(opts.deadline_ms));
      return 4;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_args(argc, argv);
  try {
    // `--cache-dir` installs the process-wide cache: every analysis above
    // dispatches its P2 queries through verify::Scheduler, which probes it
    // without any per-analysis wiring.
    // Create the output directory up front: failing after a paper-scale
    // analysis because the report has nowhere to go would waste the run.
    if (opts.json_dir != ".") {
      std::filesystem::create_directories(opts.json_dir);
    }

    std::unique_ptr<verify::QueryCache> cache;
    std::optional<verify::ScopedQueryCache> guard;
    if (!opts.cache_dir.empty()) {
      std::filesystem::create_directories(opts.cache_dir);
      cache = std::make_unique<verify::QueryCache>(verify::QueryCacheOptions{
          .capacity = opts.cache_capacity,
          .disk_path = opts.cache_dir + "/fannet-cache.jsonl"});
      guard.emplace(cache.get());
      const auto stats = cache->stats();
      std::printf("query cache: %zu entries warm-started from %s\n",
                  stats.entries, opts.cache_dir.c_str());
    }

    util::BenchJson json("cli_" + opts.command);
    const int status = run_command(opts, json);
    // Exit 3 (sweep ran fine, shards pending) and exit 4 (deadline cut the
    // analysis short) still report and write JSON.
    if ((status == 0 || status == 3 || status == 4) &&
        opts.command != "engines") {
      if (cache) {
        const auto stats = cache->stats();
        std::printf(
            "query cache: %llu hits, %llu misses, %zu entries "
            "(%llu loaded from disk)\n",
            static_cast<unsigned long long>(stats.hits),
            static_cast<unsigned long long>(stats.misses), stats.entries,
            static_cast<unsigned long long>(stats.disk_loaded));
        json.add("cache_hits", 0.0, stats.hits, 1);
        json.add("cache_misses", 0.0, stats.misses, 1);
      }
      const std::string path = json.write(opts.json_dir);
      std::printf("wrote %s\n", path.c_str());
    }
    return status;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fannet_cli: %s\n", error.what());
    return 1;
  }
}
