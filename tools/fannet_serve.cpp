// fannet_serve — the long-running verification service (docs/serve.md).
//
// Loads the model fleet once, binds 127.0.0.1:<port>, and answers P2
// verification queries and analysis requests over the length-prefixed JSON
// protocol (src/serve/protocol.hpp).  All connections share one
// verify::QueryCache and one worker budget; per-request deadlines, streamed
// progress frames, and cancel-on-disconnect come from the serve layer
// (src/serve/server.hpp).  SIGTERM/SIGINT trigger a graceful drain: stop
// accepting, finish and answer queued work, exit 0.
//
// Exit codes: 0 clean shutdown (drain completed), 1 runtime failure,
// 2 usage error.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "serve/server.hpp"
#include "verify/query_cache.hpp"

namespace {

using namespace fannet;

struct Options {
  std::uint16_t port = 0;            // 0 = ephemeral (printed at startup)
  std::size_t threads = 0;           // 0 = hardware concurrency
  std::size_t max_inflight = 0;      // 0 = 2x threads
  std::uint64_t deadline_ms = 0;     // default per-request deadline
  std::uint64_t stall_ms = 5000;     // mid-frame stall budget
  std::uint64_t step_work = 0;       // task-step granularity
  std::string cache_dir;             // empty = in-memory cache only
  std::size_t cache_capacity = 1u << 20;
  bool no_cache = false;
  bool full = false;                 // full 7129-gene cohort fleet
};

constexpr const char* kUsage = R"(usage: fannet_serve [flags]

Long-running FANNet verification service: loads the case-study fleet once
and serves P2 / analysis requests over a length-prefixed JSON protocol on
127.0.0.1 (docs/serve.md has the schemas).  SIGTERM or SIGINT drain
gracefully: queued requests finish and are answered before exit 0.

flags
  --port N             TCP port (default 0 = ephemeral; the bound port is
                       printed as "listening on 127.0.0.1:<port>")
  --threads N          shared worker budget, 0 = one per hardware thread
  --max-inflight N     admission-control cap on concurrent complete-engine
                       requests (default 2x threads); excess requests get a
                       structured `saturated` error with retry_after_ms
  --deadline-ms N      default per-request deadline for requests that carry
                       none (0 = unlimited, default)
  --stall-ms N         mid-frame stall budget before a slow client is cut
                       off with a `timeout` error (default 5000)
  --step-work N        engine task-step granularity; smaller = tighter
                       deadline/cancel latency (0 = engine default)
  --cache-dir DIR      persist the shared query cache's disk tier in DIR
  --cache-capacity N   in-memory LRU capacity (default 1048576)
  --no-cache           disable the shared query cache entirely
  --full               serve the full 7129-gene cohort (default: the small
                       fast cohort, same code paths)
  --help               this text

exit codes: 0 clean shutdown, 1 runtime failure, 2 usage error
)";

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "fannet_serve: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

std::uint64_t parse_u64(const char* flag, const char* value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    usage_error(std::string(flag) + " needs a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else if (arg == "--port") {
      const std::uint64_t v = parse_u64("--port", next());
      if (v > 65535) usage_error("--port out of range");
      opts.port = static_cast<std::uint16_t>(v);
    } else if (arg == "--threads") {
      opts.threads = static_cast<std::size_t>(parse_u64("--threads", next()));
    } else if (arg == "--max-inflight") {
      opts.max_inflight =
          static_cast<std::size_t>(parse_u64("--max-inflight", next()));
    } else if (arg == "--deadline-ms") {
      opts.deadline_ms = parse_u64("--deadline-ms", next());
    } else if (arg == "--stall-ms") {
      opts.stall_ms = parse_u64("--stall-ms", next());
    } else if (arg == "--step-work") {
      opts.step_work = parse_u64("--step-work", next());
    } else if (arg == "--cache-dir") {
      opts.cache_dir = next();
    } else if (arg == "--cache-capacity") {
      opts.cache_capacity =
          static_cast<std::size_t>(parse_u64("--cache-capacity", next()));
    } else if (arg == "--no-cache") {
      opts.no_cache = true;
    } else if (arg == "--full") {
      opts.full = true;
    } else {
      usage_error("unknown flag '" + arg + "'");
    }
  }
  return opts;
}

/// Async-signal-safe drain flag: the handler only sets it; the main thread
/// polls and runs the actual drain outside signal context.
volatile std::sig_atomic_t g_stop = 0;

extern "C" void handle_stop_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_options(argc, argv);
  try {
    std::unique_ptr<verify::QueryCache> cache;
    if (!opts.no_cache) {
      verify::QueryCacheOptions cache_options;
      cache_options.capacity = opts.cache_capacity;
      if (!opts.cache_dir.empty()) {
        std::filesystem::create_directories(opts.cache_dir);
        cache_options.disk_path =
            (std::filesystem::path(opts.cache_dir) / "serve_cache.jsonl")
                .string();
      }
      cache = std::make_unique<verify::QueryCache>(cache_options);
    }

    std::fputs("loading model fleet...\n", stderr);
    serve::ServeOptions serve_options;
    serve_options.port = opts.port;
    serve_options.threads = opts.threads;
    serve_options.max_inflight = opts.max_inflight;
    serve_options.default_deadline_ms = opts.deadline_ms;
    serve_options.stall_ms = opts.stall_ms;
    serve_options.step_work = opts.step_work;
    serve_options.cache = cache.get();
    serve::Server server(serve::default_fleet(opts.full), serve_options);

    std::signal(SIGTERM, handle_stop_signal);
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGPIPE, SIG_IGN);

    server.start();
    std::printf("listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::fputs("draining...\n", stderr);
    server.stop();
    const serve::ServerStats stats = server.stats();
    std::fprintf(stderr,
                 "served %llu requests (%llu results, %llu errors), "
                 "cache %llu/%llu hit/miss\n",
                 static_cast<unsigned long long>(stats.requests),
                 static_cast<unsigned long long>(stats.results),
                 static_cast<unsigned long long>(stats.errors),
                 static_cast<unsigned long long>(stats.cache_hits),
                 static_cast<unsigned long long>(stats.cache_misses));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fannet_serve: %s\n", e.what());
    return 1;
  }
}
