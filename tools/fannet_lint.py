#!/usr/bin/env python3
"""fannet-lint: project-specific invariant checker for the FANNet tree.

Machine-checks the determinism and exactness conventions that DESIGN.md
section 13 promises and that generic tooling cannot express:

  unordered-iter    no iteration over std::unordered_map / std::unordered_set
                    (hash order is implementation-defined; iterating one in
                    verdict- or report-producing code breaks bit-identical
                    output).  Lookups are fine, iteration is not.
  raw-clock         no direct clock reads (std::chrono::*_clock::now,
                    clock_gettime, gettimeofday, time(...)) outside the two
                    sanctioned wrappers: util::Stopwatch and verify::Budget.
                    Verdicts and journal rows must be time-independent.
  raw-rng           no rand()/srand()/std::random_device/std::mt19937 outside
                    util/rng.hpp: all randomness flows through util::Rng so
                    seeds are explicit and runs are reproducible.
  float-in-exact    no floating-point types or literals in exact-engine
                    translation units: the exact pipeline (enumerate,
                    interval, bnb, symbolic, SMV evaluation, circuits) is
                    integer-only by construction, which is what makes its
                    verdicts exact.
  missing-file-doc  every header must open with a Doxygen `\\file` block so
                    the generated docs cover the whole public surface.

Waivers: a finding is suppressed by a justified allow-comment on the same
line or the line directly above:

    // fannet-lint: allow(<rule-id>) <reason>

The reason text is mandatory; a bare allow() is itself reported as a
violation (unjustified-waiver).  Waivers are for boundary code whose job is
the exception (e.g. the quantize/dequantize conversions that bridge float
training data into the fixed-point world).

Usage:
    fannet_lint.py [--root DIR] [--exact] [PATH...]

With no PATH arguments, scans `src` under --root (default: the repository
root containing this script).  Exit status: 0 clean, 1 violations found,
2 usage error.  --exact forces every scanned file to be treated as an
exact-engine TU (used by the lint fixture tests).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import Iterator, NamedTuple

# --- configuration -----------------------------------------------------------

#: Files allowed to read clocks directly: the two sanctioned wrappers.
CLOCK_ALLOW = {
    "src/util/stopwatch.hpp",
    "src/verify/budget.hpp",
}

#: Files allowed to touch raw RNG primitives: the seeded-PRNG wrapper.
RNG_ALLOW = {
    "src/util/rng.hpp",
}

#: Exact-engine translation units: integer-only by construction.
EXACT_TUS = {
    "src/verify/enumerate.cpp",
    "src/verify/enumerate.hpp",
    "src/verify/interval.cpp",
    "src/verify/interval.hpp",
    "src/verify/bnb.cpp",
    "src/verify/bnb.hpp",
    "src/verify/symbolic.cpp",
    "src/verify/symbolic.hpp",
    "src/smv/eval.cpp",
    "src/smv/eval.hpp",
    "src/circuit/circuit.cpp",
    "src/circuit/tseitin.cpp",
    # The quantized NN layer is integer-only except for the two conversion
    # boundaries (quantize/dequantize), which carry justified waivers.
    "src/nn/quantized.cpp",
    "src/nn/quantized.hpp",
}

CPP_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

RULE_IDS = (
    "unordered-iter",
    "raw-clock",
    "raw-rng",
    "float-in-exact",
    "missing-file-doc",
    "unjustified-waiver",
)

# --- comment / string stripping ---------------------------------------------

_STRING_RE = re.compile(
    r'"(?:[^"\\\n]|\\.)*"'   # string literal
    r"|'(?:[^'\\\n]|\\.)*'"  # char literal
)


def strip_code(text: str) -> list[str]:
    """Returns the file's lines with comments and string/char literals
    blanked out (replaced by spaces), preserving line numbering so findings
    point at the right line."""
    # Blank string/char literals first so // inside strings survives.
    text = _STRING_RE.sub(lambda m: " " * len(m.group(0)), text)
    out: list[str] = []
    in_block = False
    for line in text.split("\n"):
        if in_block:
            end = line.find("*/")
            if end < 0:
                out.append("")
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block = False
        # Strip block comments that open (and maybe close) on this line.
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
        cut = line.find("//")
        if cut >= 0:
            line = line[:cut]
        out.append(line)
    return out


# --- waiver handling ---------------------------------------------------------

_WAIVER_RE = re.compile(r"fannet-lint:\s*allow\((?P<rule>[a-z-]+)\)(?P<reason>.*)")


class Waiver(NamedTuple):
    rule: str
    justified: bool


def waivers_by_line(raw_lines: list[str]) -> dict[int, Waiver]:
    """Maps 0-based line numbers to the waiver written on that line."""
    found: dict[int, Waiver] = {}
    for i, line in enumerate(raw_lines):
        m = _WAIVER_RE.search(line)
        if m:
            found[i] = Waiver(m.group("rule"), bool(m.group("reason").strip()))
    return found


def waived(waivers: dict[int, Waiver], line: int, rule: str) -> bool:
    """True when line (0-based) carries or follows a justified waiver for
    `rule`."""
    for at in (line, line - 1):
        w = waivers.get(at)
        if w is not None and w.rule == rule and w.justified:
            return True
    return False


# --- findings ----------------------------------------------------------------

class Finding(NamedTuple):
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --- rules -------------------------------------------------------------------

_UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s+(\w+)\s*[;={(]",
    re.DOTALL,
)
_RANGE_FOR_UNORDERED_RE = re.compile(r"for\s*\([^;()]*:\s*[^;()]*unordered_")


def check_unordered_iter(rel: str, stripped: list[str]) -> Iterator[Finding]:
    joined = "\n".join(stripped)
    names = set(_UNORDERED_DECL_RE.findall(joined))
    patterns = [
        (re.compile(rf"for\s*\([^;()]*:\s*(?:\w+\.)*{re.escape(n)}\s*\)"), n)
        for n in names
    ] + [
        # .begin()/.cbegin() flags iteration; a bare .end() does not — the
        # `it != m.end()` half of the find-lookup idiom is fine.
        (re.compile(rf"\b{re.escape(n)}\s*\.\s*c?begin\s*\("), n)
        for n in names
    ]
    for i, line in enumerate(stripped):
        if _RANGE_FOR_UNORDERED_RE.search(line):
            yield Finding(rel, i + 1, "unordered-iter",
                          "range-for over an unordered container "
                          "(hash order is not deterministic)")
            continue
        for pat, name in patterns:
            if pat.search(line):
                yield Finding(rel, i + 1, "unordered-iter",
                              f"iteration over unordered container '{name}' "
                              "(hash order is not deterministic)")
                break


_CLOCK_RE = re.compile(
    r"(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\("
    r"|\bclock_gettime\s*\(|\bgettimeofday\s*\(|\bstd::time\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"
)


def check_raw_clock(rel: str, stripped: list[str]) -> Iterator[Finding]:
    if rel in CLOCK_ALLOW:
        return
    for i, line in enumerate(stripped):
        if _CLOCK_RE.search(line):
            yield Finding(rel, i + 1, "raw-clock",
                          "direct clock read outside util::Stopwatch / "
                          "verify::Budget (verdicts must be time-independent)")


_RNG_RE = re.compile(
    r"std::random_device|std::mt19937|std::minstd_rand"
    r"|\bs?rand\s*\(|\brandom_shuffle\b"
)


def check_raw_rng(rel: str, stripped: list[str]) -> Iterator[Finding]:
    if rel in RNG_ALLOW:
        return
    for i, line in enumerate(stripped):
        if _RNG_RE.search(line):
            yield Finding(rel, i + 1, "raw-rng",
                          "raw RNG primitive outside util::Rng "
                          "(seeds must be explicit and runs reproducible)")


_FLOAT_RE = re.compile(
    r"\b(?:float|double)\b"
    r"|\b\d+\.\d*(?:[eE][+-]?\d+)?[fFlL]?\b"
    r"|\b\d+[eE][+-]?\d+[fFlL]?\b"
    r"|\b\d+\.\d*f\b"
)


def check_float_in_exact(rel: str, stripped: list[str],
                         force_exact: bool) -> Iterator[Finding]:
    if not force_exact and rel not in EXACT_TUS:
        return
    for i, line in enumerate(stripped):
        if _FLOAT_RE.search(line):
            yield Finding(rel, i + 1, "float-in-exact",
                          "floating-point type or literal in an exact-engine "
                          "TU (the exact pipeline is integer-only)")


_FILE_DOC_RE = re.compile(r"[\\@]file\b")


def check_missing_file_doc(rel: str, raw_lines: list[str]) -> Iterator[Finding]:
    if not rel.endswith((".hpp", ".hh", ".h")):
        return
    head = raw_lines[:10]
    if any(_FILE_DOC_RE.search(line) for line in head
           if line.lstrip().startswith(("///", "//!", "/**", "*"))):
        return
    yield Finding(rel, 1, "missing-file-doc",
                  "header does not open with a Doxygen \\file block")


# --- driver ------------------------------------------------------------------

def lint_file(path: pathlib.Path, rel: str, force_exact: bool) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.split("\n")
    stripped = strip_code(raw)
    waivers = waivers_by_line(raw_lines)

    findings: list[Finding] = []
    for f in (*check_unordered_iter(rel, stripped),
              *check_raw_clock(rel, stripped),
              *check_raw_rng(rel, stripped),
              *check_float_in_exact(rel, stripped, force_exact),
              *check_missing_file_doc(rel, raw_lines)):
        if not waived(waivers, f.line - 1, f.rule):
            findings.append(f)
    # A waiver without a reason is itself a violation: every suppression
    # must say why.
    for i, w in sorted(waivers.items()):
        if not w.justified:
            findings.append(Finding(rel, i + 1, "unjustified-waiver",
                                    f"allow({w.rule}) without a reason"))
        elif w.rule not in RULE_IDS:
            findings.append(Finding(rel, i + 1, "unjustified-waiver",
                                    f"allow({w.rule}) names an unknown rule"))
    return findings


def collect_files(root: pathlib.Path, paths: list[str]) -> list[pathlib.Path]:
    if not paths:
        paths = ["src"]
    files: list[pathlib.Path] = []
    for p in paths:
        candidate = pathlib.Path(p)
        if not candidate.is_absolute():
            candidate = root / candidate
        if candidate.is_dir():
            files.extend(sorted(f for f in candidate.rglob("*")
                                if f.suffix in CPP_SUFFIXES and f.is_file()))
        elif candidate.is_file():
            files.append(candidate)
        else:
            raise FileNotFoundError(str(candidate))
    return files


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="fannet_lint.py",
                                     description=__doc__.split("\n", 1)[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--exact", action="store_true",
                        help="treat every scanned file as an exact-engine TU "
                             "(fixture testing)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to scan (default: src)")
    args = parser.parse_args(argv)

    root = (pathlib.Path(args.root).resolve() if args.root
            else pathlib.Path(__file__).resolve().parent.parent)
    try:
        files = collect_files(root, args.paths)
    except FileNotFoundError as err:
        print(f"fannet_lint: no such file or directory: {err}",
              file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for path in files:
        try:
            rel = path.resolve().relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        findings.extend(lint_file(path, rel, args.exact))

    for f in findings:
        print(f)
    if findings:
        print(f"fannet_lint: {len(findings)} violation(s) in "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
