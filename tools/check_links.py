#!/usr/bin/env python3
"""Dead-link checker for the repo's Markdown files (CI docs-lint step).

Scans every tracked *.md file for inline Markdown links/images
(``[text](target)``) and fails when a *relative* target does not exist on
disk.  Anchors are validated too: a pure in-page anchor (``#section``) must
match a heading in the same file, and a relative target's ``#fragment``
must match a heading in the target Markdown file (GitHub-style slugs:
lowercase, punctuation dropped, spaces become hyphens).  External schemes
(http/https/mailto) are skipped.  Fenced code blocks are ignored so example
snippets cannot false-positive.

Usage: python3 tools/check_links.py [repo-root]   (default: repo of this file)
Exit codes: 0 all links resolve, 1 dead links found (each is listed).
"""

import os
import re
import sys

# link_fixtures holds deliberately-broken Markdown for the fixture tests;
# those runs point the checker *inside* it, so skipping it here only
# affects whole-repo scans.
SKIP_DIRS = {".git", "build", ".claude", "link_fixtures"}
# [text](target) with no nesting; target ends at the first unescaped ')'.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE = re.compile(r"^\s*(```|~~~)")
HEADING = re.compile(r"^\s{0,3}(#{1,6})\s+(.*)$")
# Explicit HTML anchors (<a id="..."> / <a name="...">) also satisfy a
# fragment.
HTML_ANCHOR = re.compile(r"<a\s+(?:id|name)=\"([^\"]+)\"")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def links_in(path):
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK.finditer(line):
                yield number, match.group(1)


def slugify(heading):
    """GitHub's heading-to-anchor rule: strip inline markup ticks, lowercase,
    drop everything but word characters/spaces/hyphens, hyphenate spaces."""
    text = heading.strip().replace("`", "")
    # Drop trailing ATX closers ("## title ##").
    text = re.sub(r"\s+#+\s*$", "", text)
    # Strip link syntax, keeping the text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_in(path, cache={}):
    """The set of valid fragment targets in a Markdown file (slugged
    headings with GitHub's -1, -2 duplicate suffixes, plus explicit HTML
    anchors)."""
    if path in cache:
        return cache[path]
    anchors = set()
    counts = {}
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in HTML_ANCHOR.finditer(line):
                anchors.add(match.group(1))
            heading = HEADING.match(line)
            if not heading:
                continue
            slug = slugify(heading.group(2))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
    cache[path] = anchors
    return anchors


def fragment_ok(fragment, md_path):
    # GitHub matches anchors case-insensitively in practice (slugs are
    # already lowercase); normalize the link side the same way.
    return fragment.lower() in anchors_in(md_path)


def main():
    root = os.path.abspath(
        sys.argv[1]
        if len(sys.argv) > 1
        else os.path.join(os.path.dirname(__file__), os.pardir)
    )
    dead = []
    checked = 0
    for path in markdown_files(root):
        for line, target in links_in(path):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            checked += 1
            if target.startswith("#"):  # in-page anchor
                if not fragment_ok(target[1:], path):
                    dead.append((os.path.relpath(path, root), line, target))
                continue
            relative, _, fragment = target.partition("#")
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), relative)
            )
            if not os.path.exists(resolved):
                dead.append((os.path.relpath(path, root), line, target))
            elif fragment and resolved.endswith(".md"):
                if not fragment_ok(fragment, resolved):
                    dead.append((os.path.relpath(path, root), line, target))
    if dead:
        for path, line, target in dead:
            print(f"dead link: {path}:{line}: ({target})")
        print(f"{len(dead)} dead link(s) out of {checked} checked")
        return 1
    print(f"all {checked} relative links and anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
