#!/usr/bin/env python3
"""Dead-link checker for the repo's Markdown files (CI docs-lint step).

Scans every tracked *.md file for inline Markdown links/images
(``[text](target)``) and fails when a *relative* target does not exist on
disk.  External schemes (http/https/mailto) and pure in-page anchors
(``#section``) are skipped; a relative target's ``#fragment`` suffix is
stripped before the existence check.  Fenced code blocks are ignored so
example snippets cannot false-positive.

Usage: python3 tools/check_links.py [repo-root]   (default: repo of this file)
Exit codes: 0 all links resolve, 1 dead links found (each is listed).
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", ".claude"}
# [text](target) with no nesting; target ends at the first unescaped ')'.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE = re.compile(r"^\s*(```|~~~)")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def links_in(path):
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK.finditer(line):
                yield number, match.group(1)


def main():
    root = os.path.abspath(
        sys.argv[1]
        if len(sys.argv) > 1
        else os.path.join(os.path.dirname(__file__), os.pardir)
    )
    dead = []
    checked = 0
    for path in markdown_files(root):
        for line, target in links_in(path):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):  # in-page anchor
                continue
            checked += 1
            relative = target.split("#", 1)[0]
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), relative)
            )
            if not os.path.exists(resolved):
                dead.append((os.path.relpath(path, root), line, target))
    if dead:
        for path, line, target in dead:
            print(f"dead link: {path}:{line}: ({target})")
        print(f"{len(dead)} dead link(s) out of {checked} checked")
        return 1
    print(f"all {checked} relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
