// End-to-end integration tests: the full paper pipeline on a small cohort,
// exercising every module together — data generation, mRMR, training,
// quantization, SMV translation, all four P2 engines, and the three
// Fig.-4 analyses.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/analysis.hpp"
#include "core/casestudy.hpp"
#include "core/fannet.hpp"
#include "core/translate.hpp"
#include "mc/bddmc.hpp"
#include "mc/bmc.hpp"
#include "mc/explicit.hpp"
#include "verify/enumerate.hpp"
#include "smv/parser.hpp"
#include "smv/printer.hpp"

namespace fannet {
namespace {

using core::CaseStudy;
using core::Engine;
using core::Fannet;
using util::i64;

const CaseStudy& shared_case_study() {
  static const CaseStudy cs =
      core::build_case_study(core::small_case_study_config());
  return cs;
}

TEST(Integration, FullToleranceAnalysisIsConsistent) {
  const CaseStudy& cs = shared_case_study();
  const Fannet fannet(cs.qnet);
  core::ToleranceConfig config;
  config.start_range = 50;
  const core::ToleranceReport report =
      fannet.analyze_tolerance(cs.test_x, cs.test_y, config);

  // The tolerance must certify: at the tolerance range, every correct
  // sample is robust (re-checked independently).
  if (report.noise_tolerance >= 1) {
    for (const auto& st : report.per_sample) {
      if (!st.correct_without_noise) continue;
      const auto r = fannet.check_sample(cs.test_x.row(st.sample),
                                         st.true_label,
                                         report.noise_tolerance, Engine::kBnB);
      EXPECT_EQ(r.verdict, verify::Verdict::kRobust) << st.sample;
    }
  }
  // And at tolerance+1 some sample flips (unless everything survives 50%).
  bool any_flip = false;
  for (const auto& st : report.per_sample) {
    any_flip |= st.min_flip_range.has_value();
  }
  if (any_flip) {
    EXPECT_LT(report.noise_tolerance, config.start_range);
    bool witnessed = false;
    for (const auto& st : report.per_sample) {
      if (st.min_flip_range == report.noise_tolerance + 1) witnessed = true;
    }
    EXPECT_TRUE(witnessed);
  }
}

TEST(Integration, FourEnginesAgreeOnRealSamples) {
  const CaseStudy& cs = shared_case_study();
  const Fannet fannet(cs.qnet);
  const auto bad = fannet.validate_p1(cs.test_x, cs.test_y);

  int checked = 0;
  for (std::size_t s = 0; s < cs.test_x.rows() && checked < 3; ++s) {
    if (std::find(bad.begin(), bad.end(), s) != bad.end()) continue;
    ++checked;
    for (const int range : {1, 2}) {
      const auto truth = fannet.check_sample(cs.test_x.row(s), cs.test_y[s],
                                             range, Engine::kEnumerate);
      // BMC bit-blasts the whole 5-20-2 net per query; keep it to range 1
      // so the suite stays fast (the per-engine tests cover it broadly).
      std::vector<Engine> engines{Engine::kBnB, Engine::kExplicitMc};
      if (range == 1) engines.push_back(Engine::kBmc);
      for (const Engine& e : engines) {
        const auto r =
            fannet.check_sample(cs.test_x.row(s), cs.test_y[s], range, e);
        EXPECT_EQ(r.verdict, truth.verdict)
            << "sample=" << s << " range=" << range << " engine=" << core::to_string(e);
      }
    }
  }
  EXPECT_EQ(checked, 3);
}

TEST(Integration, TranslatedModelRoundTripsThroughText) {
  const CaseStudy& cs = shared_case_study();
  verify::Query q;
  q.net = &cs.qnet;
  q.x.assign(cs.test_x.row(0).begin(), cs.test_x.row(0).end());
  q.true_label = cs.test_y[0];
  q.box = verify::NoiseBox::symmetric(5, 1);

  const core::Translation t = core::translate_sample(q);
  const std::string text = smv::print_module(t.module);
  const smv::Module back = smv::parse_module(text);

  // The re-parsed model must give the same explicit-MC verdict.
  const mc::ExplicitChecker c1(t.module);
  const mc::ExplicitChecker c2(back);
  EXPECT_EQ(c1.check_spec(t.module.specs().front()).holds,
            c2.check_spec(back.specs().front()).holds);
}

TEST(Integration, BddEngineHandlesTranslatedTinyNet) {
  // The BDD engine is the paper's "PSPACE" foil: it works on small widths.
  // Use a 2-input thin net so the bit-blasted model stays tractable.
  const nn::Network net = nn::Network::random({2, 3, 2}, 33);
  const nn::QuantizedNetwork qnet = nn::QuantizedNetwork::quantize(net, 100);
  const std::vector<i64> x{50, 60};
  const int label = qnet.classify_noised(x, {});

  verify::Query q;
  q.net = &qnet;
  q.x = x;
  q.true_label = label;
  q.box = verify::NoiseBox::symmetric(2, 1);

  const core::Translation t = core::translate_sample(q);
  mc::BddOptions options;
  options.max_nodes = 5'000'000;
  const mc::BddChecker bdd(t.module, options);
  const mc::ExplicitChecker expl(t.module);
  const auto spec = t.module.specs().front();
  EXPECT_EQ(bdd.check_invariant(spec.expr).holds,
            expl.check_spec(spec).holds);
}

TEST(Integration, CorpusDrivesBiasAndSensitivity) {
  const CaseStudy& cs = shared_case_study();
  const Fannet fannet(cs.qnet);
  core::ToleranceConfig config;
  config.start_range = 50;
  const auto tolerance = fannet.analyze_tolerance(cs.test_x, cs.test_y, config);
  const int range = std::min(50, tolerance.noise_tolerance + 10);
  const auto corpus = fannet.extract_corpus(cs.test_x, cs.test_y, range, 300);

  if (!corpus.empty()) {
    const auto bias = core::analyze_bias(corpus, 2, cs.train_y);
    std::uint64_t total = 0;
    for (const auto& row : bias.direction) {
      for (const auto v : row) total += v;
    }
    EXPECT_EQ(total, corpus.size());
    EXPECT_EQ(bias.train_majority_label, 1);  // ~70% L1 by construction

    const auto sens = core::analyze_sensitivity(fannet, cs.test_x, cs.test_y,
                                                range, corpus);
    // Histogram totals match the corpus size per node.
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(sens.positive[i] + sens.negative[i] + sens.zero[i],
                corpus.size());
    }
  }

  const auto boundary = core::analyze_boundary(tolerance, 5, 50);
  std::uint64_t bucketed = 0;
  for (const auto v : boundary.histogram) bucketed += v;
  EXPECT_EQ(bucketed + boundary.survivors, boundary.rows.size());
}

TEST(Integration, SensitivitySoundnessSpotCheck) {
  // If the sound analysis says "no positive-noise counterexample exists at
  // node i", then enumeration at a modest range must not find one either.
  const CaseStudy& cs = shared_case_study();
  const Fannet fannet(cs.qnet);
  const int probe_range = 6;
  const auto sens =
      core::analyze_sensitivity(fannet, cs.test_x, cs.test_y, probe_range, {});
  const auto bad = fannet.validate_p1(cs.test_x, cs.test_y);

  for (std::size_t node = 0; node < 5; ++node) {
    if (sens.positive_possible[node]) continue;
    for (std::size_t s = 0; s < cs.test_x.rows(); ++s) {
      if (std::find(bad.begin(), bad.end(), s) != bad.end()) continue;
      verify::Query q;
      q.net = &cs.qnet;
      q.x.assign(cs.test_x.row(s).begin(), cs.test_x.row(s).end());
      q.true_label = cs.test_y[s];
      q.box = verify::NoiseBox::symmetric(5, probe_range);
      q.box.lo[node] = 1;
      if (q.box.lo[node] > q.box.hi[node]) continue;
      EXPECT_EQ(verify::enumerate_find_first(q).verdict,
                verify::Verdict::kRobust)
          << "node=" << node << " sample=" << s;
    }
  }
}

}  // namespace
}  // namespace fannet
