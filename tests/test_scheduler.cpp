// Scheduler determinism tests: batch results must be bit-identical and
// identically ordered for 1 vs N worker threads, the witness search must
// return the same (lowest-index) witness a serial scan finds, and
// exceptions must propagate to the caller.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "nn/network.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "verify/engine.hpp"
#include "verify/enumerate.hpp"
#include "verify/scheduler.hpp"

namespace fannet::verify {
namespace {

using util::i64;

nn::QuantizedNetwork& shared_net() {
  static nn::QuantizedNetwork net = nn::QuantizedNetwork::quantize(
      nn::Network::random({3, 5, 2}, 77), 100);
  return net;
}

/// A batch mixing robust and vulnerable queries (wrong labels guarantee
/// vulnerability: the zero-noise vector itself flips).
std::vector<Query> mixed_batch(std::size_t count, std::uint64_t seed) {
  const nn::QuantizedNetwork& net = shared_net();
  util::Rng rng(seed);
  std::vector<Query> batch;
  for (std::size_t i = 0; i < count; ++i) {
    Query q;
    q.net = &net;
    q.x = {rng.uniform_int(1, 100), rng.uniform_int(1, 100),
           rng.uniform_int(1, 100)};
    const int actual = net.classify_noised(q.x, {});
    q.true_label = rng.bernoulli(0.4) ? 1 - actual : actual;
    q.box = NoiseBox::symmetric(3, static_cast<int>(rng.uniform_int(1, 3)));
    batch.push_back(std::move(q));
  }
  return batch;
}

bool same_result(const VerifyResult& a, const VerifyResult& b) {
  return a.verdict == b.verdict && a.work == b.work &&
         a.counterexample == b.counterexample;
}

TEST(Scheduler, RunAllIsIdenticalAndOrderedForOneVsManyThreads) {
  const std::vector<Query> batch = mixed_batch(24, 5);
  const Engine& bnb = engine("bnb");

  BatchStats serial_stats;
  const auto serial =
      Scheduler({.threads = 1}).run_all(batch, bnb, &serial_stats);
  ASSERT_EQ(serial.size(), batch.size());

  for (const std::size_t threads : {2u, 8u}) {
    BatchStats stats;
    const auto parallel =
        Scheduler({.threads = threads}).run_all(batch, bnb, &stats);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(same_result(serial[i], parallel[i])) << "index " << i;
    }
    EXPECT_EQ(stats.queries, batch.size());
    EXPECT_EQ(stats.executed, batch.size());
    EXPECT_EQ(stats.total_work, serial_stats.total_work);
    EXPECT_GE(stats.wall_ms, 0.0);
    EXPECT_GE(stats.threads, 1u);
  }
}

TEST(Scheduler, RunAllAgreesWithDirectEngineCalls) {
  const std::vector<Query> batch = mixed_batch(10, 6);
  const Engine& cascade = engine("cascade");
  const auto results = Scheduler({.threads = 4}).run_all(batch, cascade);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(same_result(results[i], cascade.verify(batch[i]))) << i;
  }
}

TEST(Scheduler, WitnessSearchFindsSerialWitnessForAnyThreadCount) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const std::vector<Query> batch = mixed_batch(30, seed);
    const Engine& bnb = engine("bnb");

    // Serial reference: the first vulnerable index.
    std::optional<std::size_t> expected;
    for (std::size_t i = 0; i < batch.size() && !expected; ++i) {
      if (bnb.verify(batch[i]).verdict == Verdict::kVulnerable) expected = i;
    }

    for (const std::size_t threads : {1u, 3u, 8u}) {
      BatchStats stats;
      const auto witness = Scheduler({.threads = threads})
                               .run_until_witness(batch, bnb, &stats);
      EXPECT_EQ(stats.queries, batch.size());
      EXPECT_LE(stats.executed, batch.size());
      if (!expected.has_value()) {
        EXPECT_FALSE(witness.has_value()) << "seed " << seed;
        EXPECT_EQ(stats.executed, batch.size());
        continue;
      }
      ASSERT_TRUE(witness.has_value()) << "seed " << seed;
      EXPECT_EQ(witness->index, *expected)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(witness->result.verdict, Verdict::kVulnerable);
      ASSERT_TRUE(witness->result.counterexample.has_value());
      std::vector<int> deltas = witness->result.counterexample->deltas;
      EXPECT_NE(classify_under_noise(batch[witness->index], deltas),
                batch[witness->index].true_label);
    }
  }
}

TEST(Scheduler, WitnessSearchCancelsTailWork) {
  // Every query is vulnerable, so a serial scan decides exactly one before
  // cancelling the rest.
  const nn::QuantizedNetwork& net = shared_net();
  std::vector<Query> batch;
  for (int i = 0; i < 20; ++i) {
    Query q;
    q.net = &net;
    q.x = {50, 60, 70};
    q.true_label = 1 - net.classify_noised(q.x, {});
    q.box = NoiseBox::symmetric(3, 1);
    batch.push_back(std::move(q));
  }
  BatchStats stats;
  const auto witness =
      Scheduler({.threads = 1}).run_until_witness(batch, engine("bnb"), &stats);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->index, 0u);
  EXPECT_EQ(stats.executed, 1u);
}

TEST(Scheduler, ParallelForCoversEveryIndexExactlyOnce) {
  const Scheduler scheduler({.threads = 8});
  std::vector<std::atomic<int>> hits(997);
  scheduler.parallel_for(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
  // Zero-count batches are a no-op.
  scheduler.parallel_for(0, [&](std::size_t) { FAIL(); });
}

TEST(Scheduler, ExceptionsPropagateToCaller) {
  for (const std::size_t threads : {1u, 4u}) {
    const Scheduler scheduler({.threads = threads});
    EXPECT_THROW(scheduler.parallel_for(100,
                                        [](std::size_t i) {
                                          if (i == 37) {
                                            throw InvalidArgument("boom");
                                          }
                                        }),
                 InvalidArgument);
  }
}

TEST(Scheduler, StatsCountEngineDispatchesAsMissesWithoutCache) {
  // With no cache configured every executed query dispatched the engine:
  // that is `executed` misses (not 0), with `cache_enabled` telling
  // "cache off" apart from "cache cold".
  const std::vector<Query> batch = mixed_batch(8, 9);
  BatchStats stats;
  (void)Scheduler({.threads = 2}).run_all(batch, engine("bnb"), &stats);
  EXPECT_FALSE(stats.cache_enabled);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, batch.size());
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.executed);

  BatchStats witness_stats;
  (void)Scheduler({.threads = 2})
      .run_until_witness(batch, engine("bnb"), &witness_stats);
  EXPECT_FALSE(witness_stats.cache_enabled);
  EXPECT_EQ(witness_stats.cache_misses, witness_stats.executed);
}

TEST(Scheduler, IntraQueryGrantsKeepVerdictsAndWitnessesIdentical) {
  // A batch smaller than the pool hands leftover threads to each query's
  // branch-and-bound frontier; verdicts and witnesses must not move.
  const std::vector<Query> batch = mixed_batch(3, 14);
  const Engine& cascade = engine("cascade");
  const auto serial = Scheduler({.threads = 1}).run_all(batch, cascade);
  for (const SchedulerOptions& opts :
       {SchedulerOptions{.threads = 8},                           // auto grant
        SchedulerOptions{.threads = 4, .intra_query_threads = 2},  // fixed
        SchedulerOptions{.threads = 2, .intra_query_threads = 8}}) {
    const auto parallel = Scheduler(opts).run_all(batch, cascade);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].verdict, serial[i].verdict) << "index " << i;
      EXPECT_EQ(parallel[i].counterexample, serial[i].counterexample)
          << "index " << i;
    }
  }
}

TEST(Scheduler, EmptyBatchesAreNoOps) {
  const Scheduler scheduler;
  BatchStats stats;
  EXPECT_TRUE(scheduler.run_all({}, engine("bnb"), &stats).empty());
  EXPECT_EQ(stats.queries, 0u);
  EXPECT_FALSE(scheduler.run_until_witness({}, engine("bnb")).has_value());
  EXPECT_GE(scheduler.threads(), 1u);
}

}  // namespace
}  // namespace fannet::verify
