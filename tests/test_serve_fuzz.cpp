// Protocol fuzz suite: seeded random malformed input against a live
// in-process server.  The invariant under attack — every byte sequence a
// client can send produces either a structured error frame or a clean
// close, never a crash, hang, or wedged accept loop — is exactly what the
// ASan/UBSan CI jobs check this binary under.  Deterministic seed, so a
// failure reproduces byte-for-byte.
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "serve_harness.hpp"
#include "util/rng.hpp"

namespace fannet::serve {
namespace {

using harness::ServeClient;
using harness::TestServer;

std::string error_code_of(const Json& frame) {
  const Json* code = frame.find("code");
  return code != nullptr && code->is_string() ? code->as_string() : "";
}

bool is_error_frame(const Json& frame) {
  const Json* type = frame.find("type");
  return type != nullptr && type->is_string() && type->as_string() == "error";
}

/// The server must still answer a fresh, well-formed connection — the
/// health probe every fuzz round ends with.
void expect_alive(TestServer& server) {
  ServeClient probe(server.port(), 10000);
  ASSERT_TRUE(probe.connected()) << "server stopped accepting";
  const ServeClient::Reply reply =
      probe.call(harness::simple_request(99, "ping"));
  ASSERT_EQ(reply.final_type(), "pong") << "server stopped answering";
}

TEST(ServeFuzz, RandomMalformedFramesAlwaysErrorOrCloseCleanly) {
  ServeOptions options = TestServer::test_options();
  options.stall_ms = 300;  // fuzz rounds that stall mid-frame resolve fast
  TestServer server(options);
  util::Rng rng(0x20260808);

  const std::string valid = harness::verify_request(
      1, harness::good_sample_x(), harness::good_sample_label(), 3);

  for (int iter = 0; iter < 160; ++iter) {
    ServeClient client(server.port(), 8000);
    ASSERT_TRUE(client.connected()) << "iter " << iter;
    const std::int64_t attack = rng.uniform_int(0, 6);
    switch (attack) {
      case 0: {  // raw garbage, no framing discipline at all
        const std::size_t n =
            static_cast<std::size_t>(rng.uniform_int(1, 64));
        std::string bytes(n, '\0');
        for (char& b : bytes) {
          b = static_cast<char>(rng.uniform_int(0, 255));
        }
        (void)client.send_raw(bytes);
        client.shutdown_write();
        // Whatever the garbage decoded to, the reply stream must terminate:
        // frames (if any) then EOF — bounded by the client deadline.
        while (client.recv_payload().has_value()) {
        }
        break;
      }
      case 1: {  // zero-length frame
        ASSERT_TRUE(client.send_prefix(0));
        const std::optional<Json> frame = client.recv_json();
        ASSERT_TRUE(frame.has_value()) << "iter " << iter;
        EXPECT_EQ(error_code_of(*frame), "bad_frame");
        EXPECT_FALSE(client.recv_payload().has_value());
        break;
      }
      case 2: {  // length prefix above the frame cap
        ASSERT_TRUE(client.send_prefix(static_cast<std::uint32_t>(
            kDefaultMaxFrameBytes +
            static_cast<std::size_t>(rng.uniform_int(1, 1 << 20)))));
        const std::optional<Json> frame = client.recv_json();
        ASSERT_TRUE(frame.has_value()) << "iter " << iter;
        EXPECT_EQ(error_code_of(*frame), "oversized");
        EXPECT_FALSE(client.recv_payload().has_value());
        break;
      }
      case 3: {  // torn frame: claim more than is ever sent, then vanish
        const std::uint32_t claimed =
            static_cast<std::uint32_t>(rng.uniform_int(1, 4096));
        ASSERT_TRUE(client.send_prefix(claimed));
        const std::size_t sent =
            static_cast<std::size_t>(rng.uniform_int(0, claimed - 1));
        (void)client.send_raw(std::string(sent, 'x'));
        if (rng.bernoulli(0.5)) {
          client.close_abrupt();
        } else {
          client.close();
        }
        break;
      }
      case 4: {  // well-framed, but the payload is not JSON
        const std::size_t n =
            static_cast<std::size_t>(rng.uniform_int(1, 128));
        std::string payload(n, '\0');
        for (char& b : payload) {
          b = static_cast<char>(rng.uniform_int(1, 255));
        }
        ASSERT_TRUE(client.send_frame(payload));
        const std::optional<Json> frame = client.recv_json();
        ASSERT_TRUE(frame.has_value()) << "iter " << iter;
        EXPECT_TRUE(is_error_frame(*frame)) << frame->dump();
        break;
      }
      case 5: {  // a valid request with random bytes corrupted
        std::string mutated = valid;
        const int flips = static_cast<int>(rng.uniform_int(1, 8));
        for (int f = 0; f < flips; ++f) {
          const std::size_t at = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
          mutated[at] = static_cast<char>(rng.uniform_int(1, 255));
        }
        ASSERT_TRUE(client.send_frame(mutated));
        // Corruption may still parse into a legal request: any single
        // frame (result or error) is acceptable; a hang is not.
        const ServeClient::Reply reply = client.collect();
        EXPECT_TRUE(reply.final.has_value()) << "iter " << iter;
        break;
      }
      case 6: {  // a valid request dribbled one byte at a time (reassembly)
        unsigned char prefix[4] = {
            static_cast<unsigned char>(valid.size() >> 24),
            static_cast<unsigned char>(valid.size() >> 16),
            static_cast<unsigned char>(valid.size() >> 8),
            static_cast<unsigned char>(valid.size())};
        std::string wire(reinterpret_cast<const char*>(prefix), 4);
        wire += valid;
        bool ok = true;
        for (const char b : wire) {
          ok = ok && client.send_raw(std::string_view(&b, 1));
        }
        ASSERT_TRUE(ok);
        const ServeClient::Reply reply = client.collect();
        ASSERT_TRUE(reply.final.has_value()) << "iter " << iter;
        EXPECT_EQ(reply.final_type(), "result");
        break;
      }
      default:
        break;
    }
    if (iter % 20 == 19) expect_alive(server);
  }
  expect_alive(server);
}

TEST(ServeFuzz, MidFrameStallIsCutOffWithTimeoutError) {
  ServeOptions options = TestServer::test_options();
  options.stall_ms = 200;
  TestServer server(options);

  ServeClient client(server.port(), 10000);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_prefix(100));
  ASSERT_TRUE(client.send_raw("stall"));  // 5 of the claimed 100 bytes, then idle
  const std::optional<Json> frame = client.recv_json();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(error_code_of(*frame), "timeout");
  EXPECT_FALSE(client.recv_payload().has_value());
  // The slowloris defense only cuts the stalled connection, never the server.
  expect_alive(server);
}

TEST(ServeFuzz, DeeplyNestedJsonIsRejectedNotStackOverflowed) {
  TestServer server;
  ServeClient client(server.port(), 10000);
  ASSERT_TRUE(client.connected());
  std::string deep = "{\"id\":1,\"type\":\"ping\",\"junk\":";
  for (int i = 0; i < 500; ++i) deep += '[';
  deep += '1';
  for (int i = 0; i < 500; ++i) deep += ']';
  deep += '}';
  ASSERT_TRUE(client.send_frame(deep));
  const std::optional<Json> frame = client.recv_json();
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(is_error_frame(*frame)) << frame->dump();
  expect_alive(server);
}

}  // namespace
}  // namespace fannet::serve
