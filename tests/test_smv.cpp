// Unit tests for the SMV-subset language: AST building, parsing, printing
// (round-trip exactness) and concrete evaluation.
#include <gtest/gtest.h>

#include "smv/ast.hpp"
#include "smv/eval.hpp"
#include "smv/parser.hpp"
#include "smv/printer.hpp"
#include "util/error.hpp"

namespace fannet::smv {
namespace {

TEST(Ast, VarDeclarationRules) {
  Module m;
  m.add_var("x", RangeType{-3, 3});
  EXPECT_THROW(m.add_var("x", BoolType{}), InvalidArgument);          // dup
  EXPECT_THROW(m.add_var("bad", RangeType{2, 1}), InvalidArgument);   // empty
  m.add_var("e", EnumType{{"red", "green"}});
  EXPECT_THROW(m.add_var("e2", EnumType{{"red"}}), InvalidArgument);  // symbol reuse
  EXPECT_EQ(m.symbol_value("green"), 1);
  EXPECT_THROW((void)m.symbol_value("blue"), InvalidArgument);
}

TEST(Ast, DomainBounds) {
  Module m;
  m.add_var("b", BoolType{});
  m.add_var("r", RangeType{-5, 9});
  m.add_var("e", EnumType{{"a1", "a2", "a3"}});
  EXPECT_EQ(m.domain_lo(0), 0);
  EXPECT_EQ(m.domain_hi(0), 1);
  EXPECT_EQ(m.domain_lo(1), -5);
  EXPECT_EQ(m.domain_hi(1), 9);
  EXPECT_EQ(m.domain_hi(2), 2);
}

TEST(Ast, DefineNameClashThrows) {
  Module m;
  m.add_var("x", BoolType{});
  EXPECT_THROW(m.add_define("x", m.e_const(1)), InvalidArgument);
  m.add_define("d", m.e_const(1));
  EXPECT_THROW(m.add_define("d", m.e_const(2)), InvalidArgument);
}

TEST(Ast, RenderValue) {
  Module m;
  m.add_var("e", EnumType{{"off", "on"}});
  m.add_var("b", BoolType{});
  m.add_var("r", RangeType{0, 5});
  EXPECT_EQ(m.render_value(0, 1), "on");
  EXPECT_EQ(m.render_value(1, 0), "FALSE");
  EXPECT_EQ(m.render_value(2, 4), "4");
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------
TEST(Eval, ArithmeticAndComparisons) {
  Module m;
  m.add_var("x", RangeType{-10, 10});
  Evaluator ev(m);
  const State s{4};
  const ExprId e1 = m.e_binary(Op::kAdd, m.e_var(0),
                               m.e_binary(Op::kMul, m.e_const(3), m.e_const(5)));
  EXPECT_EQ(ev.eval(e1, s), 19);
  EXPECT_EQ(ev.eval(m.e_unary(Op::kNeg, m.e_var(0)), s), -4);
  EXPECT_EQ(ev.eval(m.e_binary(Op::kLe, m.e_var(0), m.e_const(4)), s), 1);
  EXPECT_EQ(ev.eval(m.e_binary(Op::kNe, m.e_var(0), m.e_const(4)), s), 0);
  EXPECT_EQ(ev.eval(m.e_binary(Op::kSub, m.e_const(1), m.e_var(0)), s), -3);
}

TEST(Eval, BooleanConnectives) {
  Module m;
  m.add_var("a", BoolType{});
  m.add_var("b", BoolType{});
  Evaluator ev(m);
  const ExprId imp = m.e_binary(Op::kImplies, m.e_var(0), m.e_var(1));
  EXPECT_EQ(ev.eval(imp, {1, 0}), 0);
  EXPECT_EQ(ev.eval(imp, {0, 0}), 1);
  const ExprId iff = m.e_binary(Op::kIff, m.e_var(0), m.e_var(1));
  EXPECT_EQ(ev.eval(iff, {1, 1}), 1);
  EXPECT_EQ(ev.eval(iff, {1, 0}), 0);
  EXPECT_EQ(ev.eval(m.e_unary(Op::kNot, m.e_var(0)), {1, 0}), 0);
  EXPECT_EQ(ev.eval(m.e_binary(Op::kXor, m.e_var(0), m.e_var(1)), {1, 0}), 1);
}

TEST(Eval, CaseSelectsFirstMatch) {
  Module m;
  m.add_var("x", RangeType{0, 9});
  Evaluator ev(m);
  const ExprId c = m.e_case({
      m.e_binary(Op::kLt, m.e_var(0), m.e_const(3)), m.e_const(100),
      m.e_binary(Op::kLt, m.e_var(0), m.e_const(6)), m.e_const(200),
      m.e_bool(true), m.e_const(300),
  });
  EXPECT_EQ(ev.eval(c, {1}), 100);
  EXPECT_EQ(ev.eval(c, {4}), 200);
  EXPECT_EQ(ev.eval(c, {8}), 300);
}

TEST(Eval, CaseWithoutMatchThrows) {
  Module m;
  m.add_var("x", RangeType{0, 9});
  Evaluator ev(m);
  const ExprId c = m.e_case({m.e_bool(false), m.e_const(1)});
  EXPECT_THROW((void)ev.eval(c, {0}), InvalidArgument);
}

TEST(Eval, DefinesChainThroughEachOther) {
  Module m;
  m.add_var("x", RangeType{0, 9});
  const std::size_t d1 =
      m.add_define("double_x", m.e_binary(Op::kMul, m.e_const(2), m.e_var(0)));
  const std::size_t d2 =
      m.add_define("plus1", m.e_binary(Op::kAdd, m.e_def(d1), m.e_const(1)));
  Evaluator ev(m);
  EXPECT_EQ(ev.eval(m.e_def(d2), {7}), 15);
}

TEST(Eval, NextRefNeedsNextState) {
  Module m;
  m.add_var("x", RangeType{0, 9});
  Evaluator ev(m);
  const ExprId nx = m.e_next(0);
  const State cur{3}, nxt{5};
  EXPECT_EQ(ev.eval(nx, cur, &nxt), 5);
  EXPECT_THROW((void)ev.eval(nx, cur), InvalidArgument);
}

TEST(Eval, ChoicesSetRangeAndDedup) {
  Module m;
  m.add_var("x", RangeType{0, 9});
  Evaluator ev(m);
  const ExprId set = m.e_set({m.e_const(1), m.e_const(3), m.e_const(1)});
  EXPECT_EQ(ev.choices(set, {0}), (std::vector<i64>{1, 3}));
  const ExprId range = m.e_range(m.e_const(-2), m.e_const(1));
  EXPECT_EQ(ev.choices(range, {0}), (std::vector<i64>{-2, -1, 0, 1}));
  // A deterministic expression yields a singleton.
  EXPECT_EQ(ev.choices(m.e_var(0), {7}), (std::vector<i64>{7}));
}

TEST(Eval, SetInPlainEvalThrows) {
  Module m;
  m.add_var("x", RangeType{0, 9});
  Evaluator ev(m);
  EXPECT_THROW((void)ev.eval(m.e_set({m.e_const(1)}), {0}), InvalidArgument);
}

TEST(Eval, OverflowDetected) {
  Module m;
  m.add_var("x", RangeType{0, 9});
  Evaluator ev(m);
  const ExprId big = m.e_binary(
      Op::kMul, m.e_const(std::numeric_limits<i64>::max()), m.e_const(2));
  EXPECT_THROW((void)ev.eval(big, {0}), ArithmeticError);
}

// ---------------------------------------------------------------------------
// Parser + printer
// ---------------------------------------------------------------------------
constexpr const char* kSampleModel = R"(
MODULE main
VAR
  phase : {s_init, s_eval};
  d1 : -2..2;
  flag : boolean;
DEFINE
  doubled := 2 * d1;
  ok := (doubled >= -4) & (doubled <= 4);
ASSIGN
  init(phase) := s_init;
  next(phase) := s_eval;
  init(d1) := 0;
  next(d1) := -2..2;
  init(flag) := TRUE;
  next(flag) := {TRUE, FALSE};
INVARSPEC (phase = s_eval) -> ok
LTLSPEC G ok
)";

TEST(Parser, ParsesSections) {
  const Module m = parse_module(kSampleModel);
  EXPECT_EQ(m.name, "main");
  ASSERT_EQ(m.vars().size(), 3u);
  EXPECT_EQ(m.vars()[1].name, "d1");
  EXPECT_EQ(m.defines().size(), 2u);
  ASSERT_EQ(m.specs().size(), 2u);
  EXPECT_EQ(m.specs()[0].kind, SpecKind::kInvarSpec);
  EXPECT_EQ(m.specs()[1].kind, SpecKind::kLtlGlobally);
}

TEST(Parser, EvaluatesParsedDefines) {
  const Module m = parse_module(kSampleModel);
  Evaluator ev(m);
  // State layout: phase, d1, flag.
  const State s{1, 2, 0};
  EXPECT_EQ(ev.eval(m.defines()[0].second, s), 4);
  EXPECT_EQ(ev.eval(m.specs()[0].expr, s), 1);
}

TEST(Parser, PrecedenceMulBeforeAdd) {
  const Module m = parse_module(
      "MODULE main\nVAR x : 0..9;\nDEFINE v := 1 + 2 * x - 3;\n");
  Evaluator ev(m);
  EXPECT_EQ(ev.eval(m.defines()[0].second, {5}), 8);
}

TEST(Parser, PrecedenceBooleanLayers) {
  // a -> b | c parses as a -> (b | c); & binds tighter than |.
  const Module m = parse_module(
      "MODULE main\nVAR a : boolean; b : boolean; c : boolean;\n"
      "DEFINE v := a -> b | c; w := a | b & c;\n");
  Evaluator ev(m);
  EXPECT_EQ(ev.eval(m.defines()[0].second, {1, 0, 1}), 1);
  EXPECT_EQ(ev.eval(m.defines()[1].second, {1, 0, 0}), 1);  // a | (b&c)
  EXPECT_EQ(ev.eval(m.defines()[1].second, {0, 1, 0}), 0);
}

TEST(Parser, CaseExpression) {
  const Module m = parse_module(
      "MODULE main\nVAR x : 0..9;\n"
      "DEFINE v := case x < 3 : 0; x < 6 : 1; TRUE : 2; esac;\n");
  Evaluator ev(m);
  EXPECT_EQ(ev.eval(m.defines()[0].second, {0}), 0);
  EXPECT_EQ(ev.eval(m.defines()[0].second, {5}), 1);
  EXPECT_EQ(ev.eval(m.defines()[0].second, {9}), 2);
}

TEST(Parser, NextInTrans) {
  const Module m = parse_module(
      "MODULE main\nVAR x : 0..3;\nASSIGN init(x) := 0;\n"
      "TRANS next(x) = x + 1\n");
  ASSERT_EQ(m.trans_constraints().size(), 1u);
  Evaluator ev(m);
  const State cur{1}, good{2}, bad{3};
  EXPECT_EQ(ev.eval(m.trans_constraints()[0], cur, &good), 1);
  EXPECT_EQ(ev.eval(m.trans_constraints()[0], cur, &bad), 0);
}

TEST(Parser, CommentsIgnored) {
  const Module m = parse_module(
      "MODULE main -- trailing comment\n-- whole line\nVAR x : 0..1;\n");
  EXPECT_EQ(m.vars().size(), 1u);
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse_module("VAR x : 0..1;"), ParseError);  // missing MODULE
  EXPECT_THROW(parse_module("MODULE main\nVAR x : 5..1;\n"), InvalidArgument);
  EXPECT_THROW(parse_module("MODULE main\nDEFINE v := undefined_name;\n"),
               ParseError);
  EXPECT_THROW(parse_module("MODULE main\nVAR x : 0..1;\nDEFINE v := next(x);\n"),
               ParseError);  // next outside TRANS
  EXPECT_THROW(parse_module("MODULE main\nLTLSPEC F x\n"), ParseError);  // only G
  EXPECT_THROW(parse_module("MODULE main\nVAR x : 0..1;\nDEFINE v := (x;\n"),
               ParseError);  // unbalanced paren
}

TEST(Parser, OverLongNumberLiteralIsAParseErrorWithPosition) {
  // std::stoll overflows on the literal; that must surface as the parser's
  // own diagnostic carrying line and column, not as a std::out_of_range.
  try {
    (void)parse_module("MODULE main\nVAR x : 0..99999999999999999999;\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("column 12"), std::string::npos) << what;
  }
}

TEST(Parser, DiagnosticsCarryLineAndColumn) {
  try {
    (void)parse_module("MODULE main\nVAR x : 0..1;\n@\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("column 1"), std::string::npos) << what;
  }
}

TEST(Printer, RoundTripIsExact) {
  const Module m1 = parse_module(kSampleModel);
  const std::string p1 = print_module(m1);
  const Module m2 = parse_module(p1);
  const std::string p2 = print_module(m2);
  EXPECT_EQ(p1, p2);
}

TEST(Printer, RoundTripPreservesSemantics) {
  const Module m1 = parse_module(kSampleModel);
  const Module m2 = parse_module(print_module(m1));
  Evaluator e1(m1), e2(m2);
  for (i64 d = -2; d <= 2; ++d) {
    const State s{1, d, 1};
    EXPECT_EQ(e1.eval(m1.specs()[0].expr, s), e2.eval(m2.specs()[0].expr, s));
  }
}

TEST(Printer, EnumSymbolsPrintedByName) {
  Module m;
  m.add_var("phase", EnumType{{"s_init", "s_eval"}});
  m.set_init("phase", m.e_symbol("s_init"));
  const std::string text = print_module(m);
  EXPECT_NE(text.find("init(phase) := s_init;"), std::string::npos);
}

}  // namespace
}  // namespace fannet::smv
