// Resumable engine-task tests (DESIGN.md §12): lifecycle of the
// kUninitialized → kRunning ⇄ kPaused → kDone state machine, bit-identity
// of stepped vs blocking execution for every native task, pause / resume /
// cancel / deadline semantics, the scheduler's BatchControl drive loop,
// and the cache rule that resource-limited verdicts are never memoized.
// The TaskRace tests exercise concurrent pause-vs-step-vs-cancel and run
// under the TSan CI job (test filter `Task`).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/analysis.hpp"
#include "core/fannet.hpp"
#include "la/matrix.hpp"
#include "nn/network.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "verify/budget.hpp"
#include "verify/engine.hpp"
#include "verify/query_cache.hpp"
#include "verify/scheduler.hpp"
#include "verify/task.hpp"

namespace fannet::verify {
namespace {

using util::i64;

nn::QuantizedNetwork& shared_net() {
  static nn::QuantizedNetwork net = nn::QuantizedNetwork::quantize(
      nn::Network::random({3, 5, 2}, 91), 100);
  return net;
}

Query make_q(std::uint64_t seed, int range, bool force_vulnerable) {
  const nn::QuantizedNetwork& net = shared_net();
  util::Rng rng(seed);
  Query q;
  q.net = &net;
  q.x = {rng.uniform_int(1, 100), rng.uniform_int(1, 100),
         rng.uniform_int(1, 100)};
  const int actual = net.classify_noised(q.x, {});
  q.true_label = force_vulnerable ? 1 - actual : actual;
  q.box = NoiseBox::symmetric(3, range);
  return q;
}

/// A query whose grid volume (101^3) dwarfs any reasonable step quota, so
/// a stepped task is guaranteed to be interruptible mid-flight; the
/// correct label keeps the walk exhaustive (no early witness exit).
Query big_robust_query(std::uint64_t seed) { return make_q(seed, 50, false); }

/// Stepped-to-completion result for an engine's task.
VerifyResult drive(const Engine& eng, const Query& q,
                   const VerifyContext& ctx, std::uint64_t step_work) {
  const auto task = eng.make_task(q, ctx);
  EXPECT_EQ(task->state(), TaskState::kUninitialized);
  while (task->step(step_work) != TaskState::kDone) {
  }
  return task->result();
}

TEST(Task, LifecycleRunsToDoneAndResultIsFinal) {
  const Engine& eng = engine("enumerate");
  const Query q = make_q(3, 2, true);
  const auto task = eng.make_task(q, {});
  EXPECT_EQ(task->state(), TaskState::kUninitialized);
  EXPECT_THROW((void)task->result(), Error);  // not done yet
  ASSERT_EQ(task->run(64), TaskState::kDone);
  const VerifyResult r = task->result();
  EXPECT_EQ(r.verdict, eng.verify(q).verdict);
  // Stepping a finished task is a no-op.
  EXPECT_EQ(task->step(), TaskState::kDone);
  EXPECT_EQ(task->result().verdict, r.verdict);
}

TEST(Task, PauseParksBeforeWorkAndResumeContinues) {
  const Engine& eng = engine("bnb");
  const Query q = make_q(4, 3, false);
  const auto task = eng.make_task(q, {});
  task->pause();
  EXPECT_EQ(task->step(), TaskState::kPaused);
  EXPECT_EQ(task->step(), TaskState::kPaused);  // parked, no progress
  task->resume();
  ASSERT_EQ(task->run(), TaskState::kDone);
  EXPECT_EQ(task->result().verdict, eng.verify(q).verdict);
}

TEST(Task, StepSizeNeverChangesVerdictOrWitness) {
  // The determinism contract: any step quota (including the minimal one)
  // yields the bit-identical verdict and witness of the blocking path,
  // for every native task and the generic adapter.
  for (const char* name : {"enumerate", "bnb", "cascade", "sat", "interval"}) {
    const Engine& eng = engine(name);
    for (const bool vulnerable : {true, false}) {
      const Query q = make_q(vulnerable ? 21 : 22, 2, vulnerable);
      const VerifyResult blocking = eng.verify(q);
      for (const std::uint64_t step_work : {1ull, 7ull, 1024ull}) {
        const VerifyResult stepped = drive(eng, q, {}, step_work);
        EXPECT_EQ(stepped.verdict, blocking.verdict)
            << name << " step " << step_work;
        EXPECT_EQ(stepped.counterexample, blocking.counterexample)
            << name << " step " << step_work;
      }
    }
  }
}

TEST(Task, PauseResumeAtArbitraryBoundariesIsBitIdentical) {
  for (const char* name : {"enumerate", "bnb", "cascade", "sat"}) {
    const Engine& eng = engine(name);
    const Query q = make_q(33, 3, true);
    const VerifyResult blocking = eng.verify(q);
    const auto task = eng.make_task(q, {});
    std::uint64_t steps = 0;
    for (;;) {
      if (steps % 2 == 1) {  // pause between every other step
        task->pause();
        EXPECT_EQ(task->step(64), TaskState::kPaused) << name;
        task->resume();
      }
      ++steps;
      if (task->step(64) == TaskState::kDone) break;
    }
    EXPECT_EQ(task->result().verdict, blocking.verdict) << name;
    EXPECT_EQ(task->result().counterexample, blocking.counterexample) << name;
  }
}

TEST(Task, CancelFinalizesUnfinishedWorkToResourceLimitedUnknown) {
  const Engine& eng = engine("enumerate");
  const Query q = big_robust_query(7);
  const auto task = eng.make_task(q, {});
  ASSERT_EQ(task->step(64), TaskState::kRunning);  // 101^3 points: not done
  task->cancel();
  ASSERT_EQ(task->step(64), TaskState::kDone);
  EXPECT_EQ(task->result().verdict, Verdict::kUnknown);
  EXPECT_TRUE(task->result().resource_limited);
  EXPECT_FALSE(task->result().counterexample.has_value());
}

TEST(Task, ExpiredDeadlineFinalizesEveryNativeTask) {
  for (const char* name : {"enumerate", "bnb", "cascade", "sat"}) {
    const Engine& eng = engine(name);
    VerifyContext ctx;
    ctx.budget.deadline = std::chrono::steady_clock::now();  // already past
    const VerifyResult r = drive(eng, big_robust_query(8), ctx, 16);
    EXPECT_EQ(r.verdict, Verdict::kUnknown) << name;
    EXPECT_TRUE(r.resource_limited) << name;
  }
}

TEST(Task, CancelTokenInBudgetInterruptsTheTask) {
  CancelToken token;
  token.cancel();
  VerifyContext ctx;
  ctx.budget.cancel = &token;
  const VerifyResult r = drive(engine("bnb"), big_robust_query(9), ctx, 16);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_TRUE(r.resource_limited);
}

TEST(Task, GenericAdapterHonoursPreStepInterruptionAndMatchesBlocking) {
  // Sound-only engines without a native task get the one-step adapter: a
  // normal run equals verify_with; a pre-cancelled budget never dispatches.
  const Engine& eng = engine("interval");
  const Query q = make_q(10, 2, false);
  EXPECT_EQ(drive(eng, q, {}, 0).verdict, eng.verify(q).verdict);
  CancelToken token;
  token.cancel();
  VerifyContext ctx;
  ctx.budget.cancel = &token;
  const VerifyResult r = drive(eng, q, ctx, 0);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_TRUE(r.resource_limited);
}

TEST(TaskRace, ConcurrentPauseResumeCancelAgainstRunningSteps) {
  // pause()/resume()/cancel() are lock-free flag flips documented safe
  // from any thread at any time, including concurrently with a running
  // step.  Hammer them against a stepping driver; TSan checks the rest.
  const Engine& eng = engine("enumerate");
  const Query q = big_robust_query(11);
  const auto task = eng.make_task(q, {});
  std::atomic<bool> done{false};
  std::thread driver([&] {
    while (task->step(64) != TaskState::kDone) {
    }
    done.store(true, std::memory_order_release);
  });
  std::thread flipper([&] {
    while (!done.load(std::memory_order_acquire)) {
      task->pause();
      std::this_thread::yield();
      task->resume();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  task->cancel();  // guarantees termination whatever the flipper does
  driver.join();
  flipper.join();
  ASSERT_EQ(task->state(), TaskState::kDone);
  const VerifyResult& r = task->result();
  // Either the task decided the query (a witness found mid-walk, or the
  // walk finished) or the cancel cut it — then kUnknown must be flagged.
  EXPECT_TRUE(r.verdict != Verdict::kUnknown || r.resource_limited);
}

TEST(TaskRace, BatchControlPausesAndResumesAWholeBatch) {
  const std::vector<Query> batch = {make_q(41, 2, true), make_q(42, 2, false),
                                    make_q(43, 3, true)};
  const Engine& eng = engine("cascade");
  const auto reference = Scheduler({.threads = 1}).run_all(batch, eng);

  const Scheduler scheduler({.threads = 2, .step_work = 16});
  BatchControl control;
  control.pause();  // park every task before its first step
  BatchStats stats;
  std::vector<VerifyResult> results;
  std::atomic<bool> finished{false};
  std::thread runner([&] {
    results = scheduler.run_all(batch, eng, &stats, &control);
    finished.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // While paused the batch cannot complete, whatever the thread timing.
  EXPECT_FALSE(finished.load(std::memory_order_acquire));
  control.resume();
  runner.join();

  ASSERT_EQ(results.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(results[i].verdict, reference[i].verdict) << i;
    EXPECT_EQ(results[i].counterexample, reference[i].counterexample) << i;
  }
  EXPECT_GE(stats.paused, 1u);
  EXPECT_EQ(stats.resumed, stats.paused);  // every pause ended in a resume
  EXPECT_EQ(stats.deadline_expired, 0u);
}

TEST(TaskRace, BatchControlCancelFinalizesTheWholeBatch) {
  const std::vector<Query> batch = {big_robust_query(51), big_robust_query(52)};
  const Scheduler scheduler({.threads = 2, .step_work = 16});
  BatchControl control;
  control.cancel();
  BatchStats stats;
  const auto results =
      scheduler.run_all(batch, engine("enumerate"), &stats, &control);
  ASSERT_EQ(results.size(), batch.size());
  for (const VerifyResult& r : results) {
    EXPECT_EQ(r.verdict, Verdict::kUnknown);
    EXPECT_TRUE(r.resource_limited);
  }
  EXPECT_EQ(stats.executed, batch.size());
}

TEST(Task, SchedulerDeadlineExpiresToUnknownAndIsCounted) {
  // 101^3 grid points against a 1ms per-query deadline with a small step
  // quota: the deadline fires between steps long before the walk finishes.
  const std::vector<Query> batch = {big_robust_query(61)};
  const Scheduler scheduler({.threads = 1, .deadline_ms = 1, .step_work = 64});
  BatchStats stats;
  const auto results = scheduler.run_all(batch, engine("enumerate"), &stats);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].verdict, Verdict::kUnknown);
  EXPECT_TRUE(results[0].resource_limited);
  EXPECT_EQ(stats.deadline_expired, 1u);
  EXPECT_EQ(scheduler.deadline_expired_total(), 1u);
}

TEST(QueryCacheTask, ResourceLimitedResultsAreNeverMemoized) {
  // A budget-starved run must not poison later, better-funded ones: the
  // limited verdict is returned but not cached, and an un-budgeted re-run
  // re-executes and memoizes the real verdict.
  QueryCache cache({.capacity = 16});
  const Engine& bnb = engine("bnb");
  const Query q = make_q(71, 3, false);

  VerifyContext starved;
  starved.budget.deadline = std::chrono::steady_clock::now();  // pre-expired
  bool hit = true;
  const VerifyResult limited = cached_verify(&cache, q, bnb, starved, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(limited.verdict, Verdict::kUnknown);
  EXPECT_TRUE(limited.resource_limited);
  EXPECT_EQ(cache.size(), 0u) << "limited verdict must not be memoized";

  // Direct insertion is refused too (covers every insertion path).
  cache.insert(q, bnb, limited);
  EXPECT_EQ(cache.size(), 0u);

  // The un-budgeted run re-executes (miss), decides, and memoizes.
  const VerifyResult full = cached_verify(&cache, q, bnb, VerifyContext{}, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(full.verdict, Verdict::kUnknown);
  EXPECT_FALSE(full.resource_limited);
  EXPECT_EQ(cache.size(), 1u);

  // And the memoized entry is the full verdict, answered as a hit.
  const VerifyResult again = cached_verify(&cache, q, bnb, VerifyContext{}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(again.verdict, full.verdict);
  EXPECT_FALSE(again.resource_limited);
}

TEST(Task, AnalysesRejectDeadlineCombinedWithSweep) {
  // Journaled sweep rows must be time-independent to be resumable.
  const core::Fannet fannet(shared_net());
  la::Matrix<i64> inputs(1, 3);
  inputs(0, 0) = 10;
  inputs(0, 1) = 20;
  inputs(0, 2) = 30;
  const std::vector<int> labels = {0};
  core::ToleranceConfig config;
  config.deadline_ms = 5;
  config.sweep = SweepOptions{};
  EXPECT_THROW(
      (void)fannet.analyze_tolerance(inputs, labels, config),
      InvalidArgument);
  core::SensitivityConfig sense;
  sense.deadline_ms = 5;
  sense.sweep = SweepOptions{};
  EXPECT_THROW((void)core::analyze_sensitivity(fannet, inputs, labels, 2, {},
                                               sense),
               InvalidArgument);
}

}  // namespace
}  // namespace fannet::verify
