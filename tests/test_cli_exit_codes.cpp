// Exit-code contract suite for fannet_cli: every code the tool documents
// (docs/cli.md "Exit codes" table) is pinned by actually invoking the built
// binary and asserting the observed status.  Scripts branch on these codes
// (the sweep chunking loop in docs/cli.md does exactly that), so a drifted
// code is an API break — this suite turns it into a red test.
//
// The binary path and the source tree root arrive as compile definitions
// (FANNET_CLI_PATH, FANNET_SOURCE_DIR) wired up in CMakeLists.txt; the
// suite is skipped if the harness was built without them.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

namespace fannet {
namespace {

#if defined(FANNET_CLI_PATH) && defined(FANNET_SOURCE_DIR)

/// Runs the CLI with `args`, stdout/stderr discarded, and returns its exit
/// status (-1 when it died to a signal — always a test failure).
int run_cli(const std::string& args) {
  const std::string command =
      std::string(FANNET_CLI_PATH) + " " + args + " >/dev/null 2>&1";
  const int raw = std::system(command.c_str());
  if (raw == -1 || !WIFEXITED(raw)) return -1;
  return WEXITSTATUS(raw);
}

/// A scratch directory per test for --json-dir / --resume artifacts.
class CliExitCodes : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test *and* per process: ctest -j runs each test in its
    // own process, so a shared path would let two tests clobber each
    // other's scratch state mid-run.
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           ("fannet_cli_exit_codes_" + std::string(info->name()) + "_" +
            std::to_string(static_cast<long>(::getpid())));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string dir() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

TEST_F(CliExitCodes, DocumentedTableCoversExactlyCodesZeroThroughFour) {
  // The docs table is the contract this suite pins; if a code is added or
  // removed there, a case must be added or removed here.
  std::ifstream docs(std::string(FANNET_SOURCE_DIR) + "/docs/cli.md");
  ASSERT_TRUE(docs.is_open()) << "docs/cli.md not readable";
  std::stringstream buffer;
  buffer << docs.rdbuf();
  const std::string text = buffer.str();
  const std::size_t section = text.find("## Exit codes");
  ASSERT_NE(section, std::string::npos);
  const std::string table = text.substr(section, text.find("\n## ", section + 1) - section);
  for (const char* row : {"| `0` |", "| `1` |", "| `2` |", "| `3` |", "| `4` |"}) {
    EXPECT_NE(table.find(row), std::string::npos)
        << "docs/cli.md exit-code table lost the row " << row;
  }
  EXPECT_EQ(table.find("| `5` |"), std::string::npos)
      << "docs/cli.md documents an exit code this suite does not pin";
}

TEST_F(CliExitCodes, ZeroOnSuccess) {
  EXPECT_EQ(run_cli("engines --json-dir " + dir()), 0);
  EXPECT_EQ(run_cli("--help"), 0);
}

TEST_F(CliExitCodes, OneOnRuntimeFailure) {
  // The analysis itself succeeds; writing BENCH_*.json "into" a regular
  // file is the runtime failure (ENOTDIR fails for any euid, unlike a
  // nonexistent path, which CI sandboxes may auto-create).
  const std::string blocker = dir() + "/not-a-dir";
  std::ofstream(blocker) << "occupied";
  EXPECT_EQ(run_cli("tolerance --small --threads 2 --json-dir " + blocker),
            1);
}

TEST_F(CliExitCodes, TwoOnUsageError) {
  EXPECT_EQ(run_cli("no-such-command"), 2);
  EXPECT_EQ(run_cli("tolerance --no-such-flag"), 2);
  EXPECT_EQ(run_cli("tolerance --threads"), 2);       // flag without value
  EXPECT_EQ(run_cli("tolerance --threads hello"), 2); // non-numeric value
  EXPECT_EQ(run_cli(""), 2);                          // missing command
}

TEST_F(CliExitCodes, ThreeWhenSweepShardsStayPending) {
  // One shard per invocation over a multi-shard campaign: the first run
  // must stop with pending work (exit 3); draining the journal to
  // completion must flip to exit 0.
  const std::string journal = dir() + "/sweep.jsonl";
  const std::string base = "sweep --small --threads 2 --analysis tolerance "
                           "--resume " + journal + " --json-dir " + dir();
  EXPECT_EQ(run_cli(base + " --shard-size 1 --max-shards 1"), 3);
  EXPECT_EQ(run_cli(base + " --shard-size 1"), 0);  // no cap: finishes
}

TEST_F(CliExitCodes, FourWhenDeadlineCutsProbes) {
  // A 1 ms deadline against enumerate at the full ±50 start range cuts
  // every probe; the run still completes and reports, then exits 4.
  EXPECT_EQ(run_cli("tolerance --small --threads 2 --engine enumerate "
                    "--start-range 50 --deadline-ms 1 --json-dir " + dir()),
            4);
}

#else

TEST(CliExitCodes, DISABLED_HarnessNotConfigured) {
  GTEST_SKIP() << "FANNET_CLI_PATH / FANNET_SOURCE_DIR not defined";
}

#endif  // FANNET_CLI_PATH && FANNET_SOURCE_DIR

}  // namespace
}  // namespace fannet
