// Tests for the SAT-backed P2 engine ("sat"): registry resolution, verdict
// agreement with the enumeration oracle, witness bit-identity with the bnb
// engine's canonical lexicographically-lowest counterexample, budget-mapped
// kUnknown, cascade composition, and DRAT-certified robust verdicts across
// inprocessing configurations.
#include <gtest/gtest.h>

#include <algorithm>

#include "mc/sat_engine.hpp"
#include "nn/network.hpp"
#include "sat/drat.hpp"
#include "util/rng.hpp"
#include "verify/engine.hpp"
#include "verify/enumerate.hpp"

namespace fannet::mc {
namespace {

using util::i64;
using verify::Query;
using verify::Verdict;
using verify::VerifyResult;

Query make_query(const nn::QuantizedNetwork& net, std::vector<i64> x,
                 int label, int range, bool bias_node = false) {
  Query q;
  q.net = &net;
  q.x = std::move(x);
  q.true_label = label;
  q.box = verify::NoiseBox::symmetric(q.x.size() + (bias_node ? 1 : 0), range);
  q.bias_node = bias_node;
  return q;
}

nn::QuantizedNetwork random_qnet(std::uint64_t seed, std::size_t inputs = 2,
                                 std::size_t hidden = 3) {
  const nn::Network net = nn::Network::random({inputs, hidden, 2}, seed);
  return nn::QuantizedNetwork::quantize(net, 100);
}

TEST(SatEngine, ResolvesFromRegistryAsComplete) {
  ASSERT_TRUE(verify::registry().contains("sat"));
  const verify::Engine& e = verify::engine("sat");
  EXPECT_EQ(e.name(), "sat");
  EXPECT_TRUE(e.complete());
}

TEST(SatEngine, WitnessesAreBitIdenticalToBnb) {
  // Both engines define the canonical witness as the lexicographically
  // lowest flipping noise vector (query dimension order, bias last), so on
  // vulnerable queries the full counterexample structs must be equal.
  int vulnerable_seen = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const nn::QuantizedNetwork net = random_qnet(seed);
    util::Rng rng(seed * 977 + 3);
    std::vector<i64> x(2);
    for (auto& v : x) v = rng.uniform_int(1, 100);
    const int actual = net.classify_noised(x, {});
    const bool bias = rng.bernoulli(0.5);
    // Wrong-label queries are vulnerable at the zero vector; right-label
    // ones exercise real search.
    const int label = rng.bernoulli(0.5) ? 1 - actual : actual;
    const Query q = make_query(net, x, label, 2, bias);

    const VerifyResult ours = sat_verify(q, SatVerifyOptions{});
    const VerifyResult bnb = verify::engine("bnb").verify(q);
    ASSERT_EQ(ours.verdict, bnb.verdict) << "seed=" << seed;
    EXPECT_FALSE(ours.resource_limited);
    if (ours.verdict == Verdict::kVulnerable) {
      ++vulnerable_seen;
      ASSERT_TRUE(ours.counterexample.has_value());
      ASSERT_TRUE(bnb.counterexample.has_value());
      EXPECT_EQ(*ours.counterexample, *bnb.counterexample) << "seed=" << seed;
    }
  }
  EXPECT_GT(vulnerable_seen, 0) << "test never exercised the witness path";
}

TEST(SatEngine, AgreesWithEnumerationOracleOnBothVerdicts) {
  for (std::uint64_t seed = 20; seed <= 26; ++seed) {
    const nn::QuantizedNetwork net = random_qnet(seed);
    util::Rng rng(seed);
    std::vector<i64> x(2);
    for (auto& v : x) v = rng.uniform_int(1, 100);
    const Query q = make_query(net, x, net.classify_noised(x, {}), 1);
    const VerifyResult truth = verify::enumerate_find_first(q);
    const VerifyResult ours = verify::engine("sat").verify(q);
    EXPECT_EQ(ours.verdict, truth.verdict) << "seed=" << seed;
    if (ours.verdict == Verdict::kVulnerable) {
      std::vector<int> all = ours.counterexample->deltas;
      EXPECT_NE(verify::classify_under_noise(q, all), q.true_label);
    }
  }
}

TEST(SatEngine, BudgetExpiryMapsToUnknownWithResourceLimited) {
  const nn::QuantizedNetwork net = random_qnet(7, 2, 4);
  const std::vector<i64> x{55, 70};
  const Query q = make_query(net, x, net.classify_noised(x, {}), 2);
  SatVerifyOptions tiny;
  tiny.conflict_budget = 1;
  tiny.propagation_budget = 1;
  const VerifyResult r = sat_verify(q, tiny);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_TRUE(r.resource_limited);
  EXPECT_FALSE(r.counterexample.has_value());
}

TEST(SatEngine, VerifyWithThreadsContextBudgets) {
  // Same hard instance as BudgetExpiryMapsToUnknownWithResourceLimited:
  // small nets can be decided outright by root inprocessing, which is a
  // legitimate answer no budget should suppress.
  const nn::QuantizedNetwork net = random_qnet(7, 2, 4);
  const std::vector<i64> x{55, 70};
  const Query q = make_query(net, x, net.classify_noised(x, {}), 2);
  verify::VerifyContext ctx;
  ctx.budget.conflicts = 1;
  ctx.budget.propagations = 1;
  const VerifyResult limited = verify::engine("sat").verify_with(q, ctx);
  EXPECT_EQ(limited.verdict, Verdict::kUnknown);
  EXPECT_TRUE(limited.resource_limited);
  // Default context: engine defaults apply and the query is decided.
  const VerifyResult full = verify::engine("sat").verify_with(q, {});
  EXPECT_NE(full.verdict, Verdict::kUnknown);
}

TEST(SatEngine, CascadeCanUseSatAsCompleteStage) {
  const verify::CascadeEngine cascade({"interval", "symbolic", "sat"});
  for (std::uint64_t seed = 31; seed <= 34; ++seed) {
    const nn::QuantizedNetwork net = random_qnet(seed);
    util::Rng rng(seed * 3 + 1);
    std::vector<i64> x(2);
    for (auto& v : x) v = rng.uniform_int(1, 100);
    const int actual = net.classify_noised(x, {});
    const int label = rng.bernoulli(0.4) ? 1 - actual : actual;
    const Query q = make_query(net, x, label, 1);
    EXPECT_EQ(cascade.verify(q).verdict,
              verify::enumerate_find_first(q).verdict)
        << "seed=" << seed;
  }
}

TEST(SatEngine, RobustVerdictsCarryCheckableProofsAcrossInprocessConfigs) {
  // Find a genuinely robust query (per the enumeration oracle), then demand
  // a verified DRAT refutation from every representative inprocessing
  // configuration: none, each pass alone, and the full suite.
  Query robust;
  nn::QuantizedNetwork net;
  bool found = false;
  for (std::uint64_t seed = 40; seed <= 60 && !found; ++seed) {
    net = random_qnet(seed);
    util::Rng rng(seed);
    std::vector<i64> x{rng.uniform_int(1, 100), rng.uniform_int(1, 100)};
    const Query q = make_query(net, x, net.classify_noised(x, {}), 1);
    if (verify::enumerate_find_first(q).verdict == Verdict::kRobust) {
      robust = q;
      robust.net = &net;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no robust query in the seed range";

  const sat::InprocessOptions configs[] = {
      {},
      {.vivify = true},
      {.subsume = true},
      {.bve = true},
      {.scc = true},
      sat::InprocessOptions::all(),
  };
  for (std::size_t i = 0; i < std::size(configs); ++i) {
    SatVerifyOptions options;
    options.inprocess = configs[i];
    sat::ProofLog proof;
    const VerifyResult r = sat_verify(robust, options, &proof);
    ASSERT_EQ(r.verdict, Verdict::kRobust) << "config=" << i;
    const sat::ProofCheckResult pc = sat::check_proof(proof);
    EXPECT_TRUE(pc.verified()) << "config=" << i << ": " << pc.detail;
  }
}

TEST(SatEngine, BiasNodeWitnessOrdersBiasLast) {
  // With a bias dimension the canonical order minimizes the input deltas
  // first and the bias delta last; cross-check against bnb on a vulnerable
  // bias query.
  for (std::uint64_t seed = 70; seed <= 80; ++seed) {
    const nn::QuantizedNetwork net = random_qnet(seed);
    const std::vector<i64> x{45, 60};
    const int actual = net.classify_noised(x, {});
    const Query q = make_query(net, x, 1 - actual, 1, true);
    const VerifyResult ours = sat_verify(q, SatVerifyOptions{});
    const VerifyResult bnb = verify::engine("bnb").verify(q);
    ASSERT_EQ(ours.verdict, bnb.verdict) << "seed=" << seed;
    if (ours.verdict == Verdict::kVulnerable) {
      EXPECT_EQ(*ours.counterexample, *bnb.counterexample) << "seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace fannet::mc
