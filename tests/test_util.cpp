// Unit tests for the util substrate: checked arithmetic, fixed point,
// deterministic RNG, CSV I/O, bench-record JSON output.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/benchjson.hpp"
#include "util/checked.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/fixed.hpp"
#include "util/rng.hpp"

namespace fannet::util {
namespace {

// ---------------------------------------------------------------------------
// checked arithmetic
// ---------------------------------------------------------------------------
TEST(Checked, AddSubMulBasics) {
  EXPECT_EQ(checked_add(2, 3), 5);
  EXPECT_EQ(checked_sub(2, 5), -3);
  EXPECT_EQ(checked_mul(-4, 6), -24);
}

TEST(Checked, AddOverflowThrows) {
  EXPECT_THROW((void)checked_add(std::numeric_limits<i64>::max(), 1),
               ArithmeticError);
  EXPECT_THROW((void)checked_add(std::numeric_limits<i64>::min(), -1),
               ArithmeticError);
}

TEST(Checked, SubOverflowThrows) {
  EXPECT_THROW((void)checked_sub(std::numeric_limits<i64>::min(), 1),
               ArithmeticError);
}

TEST(Checked, MulOverflowThrows) {
  EXPECT_THROW((void)checked_mul(std::numeric_limits<i64>::max(), 2),
               ArithmeticError);
  EXPECT_THROW((void)checked_mul(std::numeric_limits<i64>::min(), -1),
               ArithmeticError);
}

TEST(Checked, NarrowI128RoundTrips) {
  EXPECT_EQ(narrow_i128(static_cast<i128>(42)), 42);
  EXPECT_EQ(narrow_i128(static_cast<i128>(std::numeric_limits<i64>::min())),
            std::numeric_limits<i64>::min());
}

TEST(Checked, NarrowI128Throws) {
  i128 big = static_cast<i128>(std::numeric_limits<i64>::max()) + 1;
  EXPECT_THROW((void)narrow_i128(big), ArithmeticError);
  EXPECT_THROW((void)narrow_i128(-big - 10), ArithmeticError);
}

TEST(Checked, FloorCeilDiv) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
}

TEST(Checked, ToStringI128) {
  EXPECT_EQ(to_string_i128(0), "0");
  EXPECT_EQ(to_string_i128(12345), "12345");
  EXPECT_EQ(to_string_i128(-987), "-987");
  // 2^100
  i128 v = 1;
  for (int i = 0; i < 100; ++i) v *= 2;
  EXPECT_EQ(to_string_i128(v), "1267650600228229401496703205376");
}

// ---------------------------------------------------------------------------
// Fixed
// ---------------------------------------------------------------------------
TEST(Fixed, FromDoubleRounds) {
  EXPECT_EQ(Fixed::from_double(1.0).raw(), 10'000);
  EXPECT_EQ(Fixed::from_double(-0.5).raw(), -5'000);
  EXPECT_EQ(Fixed::from_double(0.00004).raw(), 0);   // below half an ulp
  EXPECT_EQ(Fixed::from_double(0.00006).raw(), 1);   // rounds up
  EXPECT_EQ(Fixed::from_double(-0.00006).raw(), -1); // away from zero
}

TEST(Fixed, FromDoubleRejectsNonFinite) {
  // Regression: NaN passed both range guards (NaN >= x and NaN <= -x are
  // both false) and reached the float->int cast — undefined behavior.
  EXPECT_THROW((void)Fixed::from_double(std::numeric_limits<double>::quiet_NaN()),
               ArithmeticError);
  EXPECT_THROW((void)Fixed::from_double(std::numeric_limits<double>::infinity()),
               ArithmeticError);
  EXPECT_THROW((void)Fixed::from_double(-std::numeric_limits<double>::infinity()),
               ArithmeticError);
}

TEST(Fixed, ArithmeticExact) {
  const Fixed a = Fixed::from_double(1.25);
  const Fixed b = Fixed::from_double(0.75);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 2.0);
  EXPECT_DOUBLE_EQ((a - b).to_double(), 0.5);
  EXPECT_DOUBLE_EQ((-a).to_double(), -1.25);
  EXPECT_EQ(a.mul_int(4).raw(), 50'000);
}

TEST(Fixed, Comparisons) {
  EXPECT_LT(Fixed::from_double(1.0), Fixed::from_double(1.0001));
  EXPECT_EQ(Fixed::from_int(3), Fixed::from_double(3.0));
}

TEST(Fixed, ToStringFormatting) {
  EXPECT_EQ(Fixed::from_double(1.25).to_string(), "1.2500");
  EXPECT_EQ(Fixed::from_double(-0.5).to_string(), "-0.5000");
  EXPECT_EQ(Fixed::from_int(0).to_string(), "0.0000");
}

TEST(Fixed, OverflowDetected) {
  const Fixed big = Fixed::from_raw(std::numeric_limits<i64>::max());
  EXPECT_THROW((void)(big + Fixed::from_int(1)), ArithmeticError);
  EXPECT_THROW((void)big.mul_int(2), ArithmeticError);
  EXPECT_THROW((void)Fixed::from_double(1e18), ArithmeticError);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------
TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntExtremeBoundsStayInRange) {
  // Regression: `hi - lo` used to overflow int64 for wide ranges (UB);
  // the span is now computed in uint64.  Every draw must stay in bounds
  // even at the representable extremes.
  Rng rng(17);
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  bool saw_negative = false, saw_positive = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t wide = rng.uniform_int(-2, kMax);
    EXPECT_GE(wide, -2);
    const std::int64_t full = rng.uniform_int(kMin, kMax);
    saw_negative |= full < 0;
    saw_positive |= full > 0;
    const std::int64_t low = rng.uniform_int(kMin, kMin + 2);
    EXPECT_GE(low, kMin);
    EXPECT_LE(low, kMin + 2);
  }
  // The full-range case (span wraps to 0) must not collapse to one sign.
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
  // Degenerate single-point range.
  EXPECT_EQ(rng.uniform_int(kMax, kMax), kMax);
  EXPECT_EQ(rng.uniform_int(kMin, kMin), kMin);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::vector<int> hits(9, 0);
  for (int i = 0; i < 9'000; ++i) ++hits[static_cast<std::size_t>(rng.uniform_int(0, 8))];
  for (const int h : hits) EXPECT_GT(h, 700);  // ~1000 expected each
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(9);
  double sum = 0.0, sq = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShifted) {
  Rng rng(10);
  double sum = 0.0;
  for (int i = 0; i < 20'000; ++i) sum += rng.gaussian(3.0, 0.5);
  EXPECT_NEAR(sum / 20'000, 3.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 20'000; ++i) heads += rng.bernoulli(0.3);
  EXPECT_NEAR(heads / 20'000.0, 0.3, 0.02);
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------
TEST(Csv, ParseSimple) {
  const CsvTable t = parse_csv("a,b,c\n1,2,3\n");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], (CsvRow{"a", "b", "c"}));
  EXPECT_EQ(t[1], (CsvRow{"1", "2", "3"}));
}

TEST(Csv, ParseQuotedCells) {
  const CsvTable t = parse_csv("\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0][0], "x,y");
  EXPECT_EQ(t[0][1], "he said \"hi\"");
}

TEST(Csv, ParseCrLfAndMissingFinalNewline) {
  const CsvTable t = parse_csv("a,b\r\nc,d");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[1], (CsvRow{"c", "d"}));
}

TEST(Csv, EmptyLinesSkipped) {
  const CsvTable t = parse_csv("a\n\n\nb\n");
  ASSERT_EQ(t.size(), 2u);
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("\"abc\n"), ParseError);
}

TEST(Csv, RoundTrip) {
  const CsvTable t{{"plain", "with,comma", "with\"quote"}, {"1", "-2", "3.5"}};
  EXPECT_EQ(parse_csv(to_csv(t)), t);
}

TEST(Csv, StrayCarriageReturnIsCellData) {
  // Only a CRLF pair is a line ending; a lone '\r' inside an unquoted
  // cell used to be silently dropped.  It is data, and to_csv quotes it,
  // so the round trip is exact.
  const CsvTable parsed = parse_csv("a\rb,c\nd,e\r\n");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], (CsvRow{"a\rb", "c"}));
  EXPECT_EQ(parsed[1], (CsvRow{"d", "e"}));  // CRLF still ends the row

  const CsvTable t{{"pre\rpost", "plain"}, {"\r", "tail\r"}};
  EXPECT_EQ(parse_csv(to_csv(t)), t);
}

TEST(Csv, NumericCellParsers) {
  EXPECT_EQ(csv_to_int("-42"), -42);
  EXPECT_DOUBLE_EQ(csv_to_double("2.5"), 2.5);
  EXPECT_THROW((void)csv_to_int("12x"), ParseError);
  EXPECT_THROW((void)csv_to_int(""), ParseError);
  EXPECT_THROW((void)csv_to_double("abc"), ParseError);
}

TEST(Csv, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/fannet_csv_test.csv";
  const CsvTable t{{"h1", "h2"}, {"v1", "v2"}};
  write_csv_file(path, t);
  EXPECT_EQ(read_csv_file(path), t);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/definitely/not.csv"), ParseError);
}

// ---------------------------------------------------------------------------
// BenchJson
// ---------------------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(BenchJson, WriteIsAtomicTempPlusRename) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "fannet_benchjson_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  BenchJson first("atomicity");
  first.add("warm", 1.5, 10, 2);
  const std::string path = first.write(dir.string());
  EXPECT_EQ(slurp(path), first.to_json());
  // The staging file must never survive a successful write.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // A rewrite replaces the whole file in one rename — the result is always
  // exactly one complete document, never a mix of old and new bytes.
  BenchJson second("atomicity");
  second.add("cold", 2.0, 20, 4);
  second.add("warm", 0.5, 10, 4);
  EXPECT_EQ(second.write(dir.string()), path);
  EXPECT_EQ(slurp(path), second.to_json());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  std::filesystem::remove_all(dir);
}

TEST(BenchJson, WriteToBadDirectoryThrowsAndLeavesNothing) {
  // A regular file used as the target directory: fails with ENOTDIR for
  // any euid (a nonexistent path may be auto-created by CI sandboxes).
  const std::filesystem::path blocker =
      std::filesystem::temp_directory_path() / "fannet_benchjson_blocker";
  { std::ofstream out(blocker); out << "occupied"; }
  BenchJson json("unwritable");
  json.add("r", 1.0, 1, 1);
  EXPECT_THROW(json.write(blocker.string()), Error);
  std::filesystem::remove(blocker);
}

}  // namespace
}  // namespace fannet::util
