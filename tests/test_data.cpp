// Unit tests for the dataset substrate: the synthetic Golub generator, the
// stratified split, integer scaling, mutual information and mRMR.
#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.hpp"
#include "data/golub.hpp"
#include "data/mrmr.hpp"
#include "util/error.hpp"

namespace fannet::data {
namespace {

GolubConfig small_config() {
  GolubConfig c;
  c.num_genes = 120;
  c.num_informative = 15;
  return c;
}

TEST(Golub, ShapesMatchPaper) {
  GolubConfig c = small_config();
  const GolubData g = generate_golub(c);
  EXPECT_EQ(g.dataset.size(), 72u);
  EXPECT_EQ(g.dataset.num_features(), 120u);
  EXPECT_EQ(g.dataset.count_label(kLabelALL), 47u);
  EXPECT_EQ(g.dataset.count_label(kLabelAML), 25u);
  EXPECT_EQ(g.informative_genes.size(), 15u);
}

TEST(Golub, DefaultMatchesPaperDimensions) {
  const GolubConfig c;
  EXPECT_EQ(c.num_genes, 7129u);
  EXPECT_EQ(c.num_samples_all + c.num_samples_aml, 72u);
}

TEST(Golub, DeterministicPerSeed) {
  const GolubData a = generate_golub(small_config());
  const GolubData b = generate_golub(small_config());
  EXPECT_EQ(a.dataset.features, b.dataset.features);
  GolubConfig other = small_config();
  other.seed = 43;
  const GolubData d = generate_golub(other);
  EXPECT_NE(a.dataset.features, d.dataset.features);
}

TEST(Golub, InformativeGenesSeparateClasses) {
  const GolubData g = generate_golub(small_config());
  // For each informative gene, the class means must differ noticeably more
  // often than for random genes.
  int separated = 0;
  for (const std::size_t idx : g.informative_genes) {
    double mean_all = 0, mean_aml = 0;
    std::size_t n_all = 0, n_aml = 0;
    for (std::size_t s = 0; s < g.dataset.size(); ++s) {
      if (g.dataset.labels[s] == kLabelALL) {
        mean_all += g.dataset.features(s, idx);
        ++n_all;
      } else {
        mean_aml += g.dataset.features(s, idx);
        ++n_aml;
      }
    }
    mean_all /= static_cast<double>(n_all);
    mean_aml /= static_cast<double>(n_aml);
    separated += (std::abs(mean_all - mean_aml) > 0.5);
  }
  EXPECT_GE(separated, 12);  // most planted genes show their shift
}

TEST(Golub, BadConfigThrows) {
  GolubConfig c = small_config();
  c.num_informative = 1000;
  EXPECT_THROW(generate_golub(c), InvalidArgument);
  c = small_config();
  c.num_samples_all = 0;
  EXPECT_THROW(generate_golub(c), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Dataset / split
// ---------------------------------------------------------------------------
TEST(Dataset, SelectFeaturesAndSamples) {
  const GolubData g = generate_golub(small_config());
  const Dataset sel = g.dataset.select_features({3, 10, 7});
  EXPECT_EQ(sel.num_features(), 3u);
  EXPECT_EQ(sel.size(), 72u);
  EXPECT_DOUBLE_EQ(sel.features(5, 1), g.dataset.features(5, 10));
  EXPECT_EQ(sel.genes[2], "gene_7");

  const Dataset rows = g.dataset.select_samples({0, 50});
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows.labels[1], g.dataset.labels[50]);
}

TEST(Dataset, SelectOutOfRangeThrows) {
  const GolubData g = generate_golub(small_config());
  EXPECT_THROW(g.dataset.select_features({1000}), InvalidArgument);
  EXPECT_THROW(g.dataset.select_samples({100}), InvalidArgument);
}

TEST(Split, PaperCounts) {
  const GolubData g = generate_golub(small_config());
  // Paper: 38 train / 34 test with ~70% L1 in training (27 ALL / 11 AML).
  const Split s = stratified_split(g.dataset, {11, 27}, 7);
  EXPECT_EQ(s.train.size(), 38u);
  EXPECT_EQ(s.test.size(), 34u);
  EXPECT_EQ(s.train.count_label(kLabelALL), 27u);
  EXPECT_EQ(s.train.count_label(kLabelAML), 11u);
  EXPECT_EQ(s.test.count_label(kLabelALL), 20u);
  EXPECT_EQ(s.test.count_label(kLabelAML), 14u);
}

TEST(Split, DeterministicAndSeedSensitive) {
  const GolubData g = generate_golub(small_config());
  const Split a = stratified_split(g.dataset, {11, 27}, 7);
  const Split b = stratified_split(g.dataset, {11, 27}, 7);
  const Split c = stratified_split(g.dataset, {11, 27}, 8);
  EXPECT_EQ(a.train.features, b.train.features);
  EXPECT_NE(a.train.features, c.train.features);
}

TEST(Split, TooFewSamplesThrows) {
  const GolubData g = generate_golub(small_config());
  EXPECT_THROW(stratified_split(g.dataset, {26, 27}, 7), InvalidArgument);
}

TEST(IntScaler, MapsTrainRangeTo1To100) {
  la::MatrixD m(3, 1);
  m(0, 0) = -2.0;
  m(1, 0) = 0.0;
  m(2, 0) = 2.0;
  const IntScaler s = IntScaler::fit(m);
  const auto t = s.transform(m);
  EXPECT_EQ(t(0, 0), 1);
  EXPECT_EQ(t(1, 0), 51);  // midpoint -> 50.5 rounds to 51
  EXPECT_EQ(t(2, 0), 100);
}

TEST(IntScaler, ClampsOutOfRangeTestValues) {
  la::MatrixD train(2, 1);
  train(0, 0) = 0.0;
  train(1, 0) = 1.0;
  const IntScaler s = IntScaler::fit(train);
  la::MatrixD test(2, 1);
  test(0, 0) = -5.0;
  test(1, 0) = 9.0;
  const auto t = s.transform(test);
  EXPECT_EQ(t(0, 0), 1);
  EXPECT_EQ(t(1, 0), 100);
}

TEST(IntScaler, ConstantColumnMapsToMiddle) {
  la::MatrixD train(2, 1, 3.0);
  const IntScaler s = IntScaler::fit(train);
  const auto t = s.transform(train);
  EXPECT_GE(t(0, 0), 1);
  EXPECT_LE(t(0, 0), 100);
}

TEST(IntScaler, NormalizeDividesBy100) {
  la::Matrix<std::int64_t> m(1, 2);
  m(0, 0) = 50;
  m(0, 1) = 100;
  const la::MatrixD n = IntScaler::normalize(m);
  EXPECT_DOUBLE_EQ(n(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(n(0, 1), 1.0);
}

// ---------------------------------------------------------------------------
// Mutual information / mRMR
// ---------------------------------------------------------------------------
TEST(MutualInformation, IdenticalVectorsGiveEntropy) {
  const std::vector<int> a{0, 0, 1, 1, 2, 2};
  const double mi = mutual_information(a, a);
  EXPECT_NEAR(mi, std::log(3.0), 1e-9);  // uniform over 3 symbols
}

TEST(MutualInformation, IndependentVectorsNearZero) {
  const std::vector<int> a{0, 0, 1, 1, 0, 0, 1, 1};
  const std::vector<int> b{0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_NEAR(mutual_information(a, b), 0.0, 1e-9);
}

TEST(MutualInformation, Symmetric) {
  const std::vector<int> a{0, 1, 2, 0, 1, 2, 0, 0};
  const std::vector<int> b{1, 1, 0, 0, 1, 0, 1, 0};
  EXPECT_NEAR(mutual_information(a, b), mutual_information(b, a), 1e-12);
}

TEST(MutualInformation, SizeMismatchThrows) {
  EXPECT_THROW((void)mutual_information({0, 1}, {0}), InvalidArgument);
  EXPECT_THROW((void)mutual_information({}, {}), InvalidArgument);
}

TEST(Discretize, ThreeLevels) {
  la::MatrixD m(6, 1);
  for (int i = 0; i < 6; ++i) m(static_cast<std::size_t>(i), 0) = i;  // 0..5
  const auto lv = discretize_column(m, 0);
  EXPECT_EQ(lv.front(), 0);
  EXPECT_EQ(lv.back(), 2);
  for (const int v : lv) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 2);
  }
}

TEST(Mrmr, RecoversInformativeGenes) {
  const GolubData g = generate_golub(small_config());
  const MrmrResult r = mrmr_select(g.dataset, 5, MrmrScheme::kMID);
  ASSERT_EQ(r.selected.size(), 5u);
  // Most selections should come from the planted informative set.
  int informative = 0;
  for (const std::size_t idx : r.selected) {
    informative += std::binary_search(g.informative_genes.begin(),
                                      g.informative_genes.end(), idx);
  }
  EXPECT_GE(informative, 4);
  // Relevance is reported and the first pick has the highest relevance.
  for (double rel : r.relevance) EXPECT_GE(rel, 0.0);
  EXPECT_GE(r.relevance.front(), r.relevance.back() - 1e-12);
}

TEST(Mrmr, SchemesBothWork) {
  const GolubData g = generate_golub(small_config());
  const MrmrResult mid = mrmr_select(g.dataset, 3, MrmrScheme::kMID);
  const MrmrResult miq = mrmr_select(g.dataset, 3, MrmrScheme::kMIQ);
  EXPECT_EQ(mid.selected.size(), 3u);
  EXPECT_EQ(miq.selected.size(), 3u);
  // First pick (pure relevance) must agree between schemes.
  EXPECT_EQ(mid.selected[0], miq.selected[0]);
}

TEST(Mrmr, NoDuplicateSelections) {
  const GolubData g = generate_golub(small_config());
  const MrmrResult r = mrmr_select(g.dataset, 10, MrmrScheme::kMID);
  std::vector<std::size_t> sorted = r.selected;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Mrmr, BadKThrows) {
  const GolubData g = generate_golub(small_config());
  EXPECT_THROW(mrmr_select(g.dataset, 0), InvalidArgument);
  EXPECT_THROW(mrmr_select(g.dataset, 10'000), InvalidArgument);
}

}  // namespace
}  // namespace fannet::data
