// Tests for the weight-fault sensitivity extension (core/faults.hpp) and
// the underlying parameter-perturbation primitive.
#include <gtest/gtest.h>

#include "core/casestudy.hpp"
#include "core/faults.hpp"
#include "nn/network.hpp"
#include "util/error.hpp"

namespace fannet::core {
namespace {

using util::i64;

nn::QuantizedNetwork tiny_qnet() {
  nn::Layer hidden;
  hidden.weights = la::MatrixD::from_rows({{1.0, -1.0}, {0.5, 0.5}});
  hidden.bias = {0.0, -0.25};
  hidden.activation = nn::Activation::kReLU;
  nn::Layer out;
  out.weights = la::MatrixD::from_rows({{1.0, 0.0}, {0.0, 2.0}});
  out.bias = {0.1, 0.0};
  out.activation = nn::Activation::kLinear;
  return nn::QuantizedNetwork::quantize(nn::Network({hidden, out}), 100);
}

TEST(ScaledParam, ScalesWeightExactly) {
  const nn::QuantizedNetwork net = tiny_qnet();
  // weight (0,0,0) is 1.0 -> raw 10000; +17% -> 11700.
  const auto up = net.with_scaled_param(0, 0, 0, 17);
  EXPECT_EQ(up.layers()[0].weights(0, 0), 11'700);
  // -50% of -0.25 bias (raw -2500) -> -1250.
  const auto down = net.with_scaled_param(0, 1, 2, -50);
  EXPECT_EQ(down.layers()[0].bias[1], -1'250);
  // Rounding: raw 10000 * 1.015 / ... choose odd: 0.5 raw 5000 * (100+33)/100
  const auto odd = net.with_scaled_param(0, 1, 0, 33);
  EXPECT_EQ(odd.layers()[0].weights(1, 0), 6'650);
}

TEST(ScaledParam, LeavesOtherParamsUntouched) {
  const nn::QuantizedNetwork net = tiny_qnet();
  const auto mutated = net.with_scaled_param(1, 0, 0, 25);
  EXPECT_EQ(mutated.layers()[0].weights, net.layers()[0].weights);
  EXPECT_EQ(mutated.layers()[1].weights(0, 1), net.layers()[1].weights(0, 1));
  EXPECT_NE(mutated.layers()[1].weights(0, 0), net.layers()[1].weights(0, 0));
}

TEST(ScaledParam, IndexChecks) {
  const nn::QuantizedNetwork net = tiny_qnet();
  EXPECT_THROW(net.with_scaled_param(5, 0, 0, 10), InvalidArgument);
  EXPECT_THROW(net.with_scaled_param(0, 9, 0, 10), InvalidArgument);
  EXPECT_THROW(net.with_scaled_param(0, 0, 9, 10), InvalidArgument);
  // col == in_dim is the bias, legal:
  EXPECT_NO_THROW(net.with_scaled_param(0, 0, 2, 10));
}

TEST(WeightFaults, MinimalityOfReportedPercent) {
  const nn::QuantizedNetwork net = tiny_qnet();
  la::Matrix<i64> inputs(2, 2);
  inputs(0, 0) = 80; inputs(0, 1) = 30;
  inputs(1, 0) = 20; inputs(1, 1) = 90;
  std::vector<int> labels(2);
  for (std::size_t s = 0; s < 2; ++s) {
    labels[s] = net.classify_noised(inputs.row(s), {});
  }
  const WeightFaultReport report =
      analyze_weight_faults(net, inputs, labels, {50, 1});
  ASSERT_FALSE(report.faults.empty());
  for (const WeightFault& f : report.faults) {
    if (!f.min_flip_percent) continue;
    const std::size_t col = f.is_bias()
                                ? net.layers()[f.layer].in_dim()
                                : f.col;
    // At the reported percent the flip happens...
    const auto at = net.with_scaled_param(f.layer, f.row, col,
                                          f.flip_sign * *f.min_flip_percent);
    bool flips = false;
    for (std::size_t s = 0; s < 2; ++s) {
      flips |= at.classify_noised(inputs.row(s), {}) != labels[s];
    }
    EXPECT_TRUE(flips);
    // ...and at magnitude-1 (both signs) it does not.
    if (*f.min_flip_percent > 1) {
      for (const int sign : {+1, -1}) {
        const auto below = net.with_scaled_param(
            f.layer, f.row, col, sign * (*f.min_flip_percent - 1));
        for (std::size_t s = 0; s < 2; ++s) {
          EXPECT_EQ(below.classify_noised(inputs.row(s), {}), labels[s]);
        }
      }
    }
  }
}

TEST(WeightFaults, DeadWeightIsRobust) {
  // Output row 0 ignores hidden neuron 1 (weight 0): scaling zero stays
  // zero, so that parameter can never flip anything.
  const nn::QuantizedNetwork net = tiny_qnet();
  la::Matrix<i64> inputs(1, 2);
  inputs(0, 0) = 80; inputs(0, 1) = 30;
  const std::vector<int> labels{net.classify_noised(inputs.row(0), {})};
  const WeightFaultReport report =
      analyze_weight_faults(net, inputs, labels, {50, 1});
  for (const WeightFault& f : report.faults) {
    if (f.layer == 1 && f.row == 0 && f.col == 1) {
      EXPECT_FALSE(f.min_flip_percent.has_value());
    }
  }
}

TEST(WeightFaults, ReportShapeAndCounts) {
  const nn::QuantizedNetwork net = tiny_qnet();
  la::Matrix<i64> inputs(1, 2);
  inputs(0, 0) = 70; inputs(0, 1) = 40;
  const std::vector<int> labels{net.classify_noised(inputs.row(0), {})};
  const WeightFaultReport report =
      analyze_weight_faults(net, inputs, labels, {20, 1});
  // Parameters: layer0 2x(2+1) + layer1 2x(2+1) = 12.
  EXPECT_EQ(report.faults.size(), 12u);
  std::size_t robust = 0;
  for (const auto& f : report.faults) robust += !f.min_flip_percent;
  EXPECT_EQ(robust, report.robust_weights);
  EXPECT_GT(report.evaluations, 0u);
}

TEST(WeightFaults, MostFragileSortedAscending) {
  const CaseStudy cs = build_case_study(small_case_study_config());
  const WeightFaultReport report =
      analyze_weight_faults(cs.qnet, cs.test_x, cs.test_y, {30, 2});
  const auto top = most_fragile_weights(report, 5);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(*top[i - 1].min_flip_percent, *top[i].min_flip_percent);
  }
  if (!top.empty()) {
    const std::string text = format_weight_faults(report, 5);
    EXPECT_NE(text.find("rank"), std::string::npos);
  }
}

TEST(WeightFaults, BadConfigThrows) {
  const nn::QuantizedNetwork net = tiny_qnet();
  la::Matrix<i64> inputs(1, 2);
  EXPECT_THROW(analyze_weight_faults(net, inputs, {0, 0}, {50, 1}),
               InvalidArgument);
  la::Matrix<i64> ok(1, 2);
  ok(0, 0) = 50; ok(0, 1) = 50;
  EXPECT_THROW(analyze_weight_faults(net, ok, {0}, {0, 1}), InvalidArgument);
  EXPECT_THROW(analyze_weight_faults(net, ok, {0}, {10, 0}), InvalidArgument);
}

}  // namespace
}  // namespace fannet::core
