// Tests for the weight-fault sensitivity extension (core/faults.hpp) and
// the underlying parameter-perturbation primitive.
#include <gtest/gtest.h>

#include <limits>

#include "core/casestudy.hpp"
#include "core/faults.hpp"
#include "nn/network.hpp"
#include "util/error.hpp"

namespace fannet::core {
namespace {

using util::i64;

nn::QuantizedNetwork tiny_qnet() {
  nn::Layer hidden;
  hidden.weights = la::MatrixD::from_rows({{1.0, -1.0}, {0.5, 0.5}});
  hidden.bias = {0.0, -0.25};
  hidden.activation = nn::Activation::kReLU;
  nn::Layer out;
  out.weights = la::MatrixD::from_rows({{1.0, 0.0}, {0.0, 2.0}});
  out.bias = {0.1, 0.0};
  out.activation = nn::Activation::kLinear;
  return nn::QuantizedNetwork::quantize(nn::Network({hidden, out}), 100);
}

TEST(ScaledParam, ScalesWeightExactly) {
  const nn::QuantizedNetwork net = tiny_qnet();
  // weight (0,0,0) is 1.0 -> raw 10000; +17% -> 11700.
  const auto up = net.with_scaled_param(0, 0, 0, 17);
  EXPECT_EQ(up.layers()[0].weights(0, 0), 11'700);
  // -50% of -0.25 bias (raw -2500) -> -1250.
  const auto down = net.with_scaled_param(0, 1, 2, -50);
  EXPECT_EQ(down.layers()[0].bias[1], -1'250);
  // Rounding: raw 10000 * 1.015 / ... choose odd: 0.5 raw 5000 * (100+33)/100
  const auto odd = net.with_scaled_param(0, 1, 0, 33);
  EXPECT_EQ(odd.layers()[0].weights(1, 0), 6'650);
}

TEST(ScaledParam, LeavesOtherParamsUntouched) {
  const nn::QuantizedNetwork net = tiny_qnet();
  const auto mutated = net.with_scaled_param(1, 0, 0, 25);
  EXPECT_EQ(mutated.layers()[0].weights, net.layers()[0].weights);
  EXPECT_EQ(mutated.layers()[1].weights(0, 1), net.layers()[1].weights(0, 1));
  EXPECT_NE(mutated.layers()[1].weights(0, 0), net.layers()[1].weights(0, 0));
}

TEST(ScaledParam, IndexChecks) {
  const nn::QuantizedNetwork net = tiny_qnet();
  EXPECT_THROW(net.with_scaled_param(5, 0, 0, 10), InvalidArgument);
  EXPECT_THROW(net.with_scaled_param(0, 9, 0, 10), InvalidArgument);
  EXPECT_THROW(net.with_scaled_param(0, 0, 9, 10), InvalidArgument);
  // col == in_dim is the bias, legal:
  EXPECT_NO_THROW(net.with_scaled_param(0, 0, 2, 10));
}

TEST(WeightFaults, MinimalityOfReportedPercent) {
  const nn::QuantizedNetwork net = tiny_qnet();
  la::Matrix<i64> inputs(2, 2);
  inputs(0, 0) = 80; inputs(0, 1) = 30;
  inputs(1, 0) = 20; inputs(1, 1) = 90;
  std::vector<int> labels(2);
  for (std::size_t s = 0; s < 2; ++s) {
    labels[s] = net.classify_noised(inputs.row(s), {});
  }
  const WeightFaultReport report =
      analyze_weight_faults(net, inputs, labels, {.max_percent = 50, .step = 1});
  ASSERT_FALSE(report.faults.empty());
  for (const WeightFault& f : report.faults) {
    if (!f.min_flip_percent) continue;
    const std::size_t col = f.is_bias()
                                ? net.layers()[f.layer].in_dim()
                                : f.col;
    // At the reported percent the flip happens...
    const auto at = net.with_scaled_param(f.layer, f.row, col,
                                          f.flip_sign * *f.min_flip_percent);
    bool flips = false;
    for (std::size_t s = 0; s < 2; ++s) {
      flips |= at.classify_noised(inputs.row(s), {}) != labels[s];
    }
    EXPECT_TRUE(flips);
    // ...and at magnitude-1 (both signs) it does not.
    if (*f.min_flip_percent > 1) {
      for (const int sign : {+1, -1}) {
        const auto below = net.with_scaled_param(
            f.layer, f.row, col, sign * (*f.min_flip_percent - 1));
        for (std::size_t s = 0; s < 2; ++s) {
          EXPECT_EQ(below.classify_noised(inputs.row(s), {}), labels[s]);
        }
      }
    }
  }
}

TEST(WeightFaults, DeadWeightIsRobust) {
  // Output row 0 ignores hidden neuron 1 (weight 0): scaling zero stays
  // zero, so that parameter can never flip anything.
  const nn::QuantizedNetwork net = tiny_qnet();
  la::Matrix<i64> inputs(1, 2);
  inputs(0, 0) = 80; inputs(0, 1) = 30;
  const std::vector<int> labels{net.classify_noised(inputs.row(0), {})};
  const WeightFaultReport report =
      analyze_weight_faults(net, inputs, labels, {.max_percent = 50, .step = 1});
  for (const WeightFault& f : report.faults) {
    if (f.layer == 1 && f.row == 0 && f.col == 1) {
      EXPECT_FALSE(f.min_flip_percent.has_value());
    }
  }
}

TEST(WeightFaults, ReportShapeAndCounts) {
  const nn::QuantizedNetwork net = tiny_qnet();
  la::Matrix<i64> inputs(1, 2);
  inputs(0, 0) = 70; inputs(0, 1) = 40;
  const std::vector<int> labels{net.classify_noised(inputs.row(0), {})};
  const WeightFaultReport report =
      analyze_weight_faults(net, inputs, labels, {.max_percent = 20, .step = 1});
  // Parameters: layer0 2x(2+1) + layer1 2x(2+1) = 12.
  EXPECT_EQ(report.faults.size(), 12u);
  std::size_t robust = 0;
  for (const auto& f : report.faults) robust += !f.min_flip_percent;
  EXPECT_EQ(robust, report.robust_weights);
  EXPECT_GT(report.evaluations, 0u);
}

TEST(WeightFaults, MostFragileSortedAscending) {
  const CaseStudy cs = build_case_study(small_case_study_config());
  const WeightFaultReport report =
      analyze_weight_faults(cs.qnet, cs.test_x, cs.test_y, {.max_percent = 30, .step = 2});
  const auto top = most_fragile_weights(report, 5);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(*top[i - 1].min_flip_percent, *top[i].min_flip_percent);
  }
  if (!top.empty()) {
    const std::string text = format_weight_faults(report, 5);
    EXPECT_NE(text.find("rank"), std::string::npos);
  }
}

// Field-by-field identity of two reports; layer_evaluations is compared
// only when `include_layer_evals` (it legitimately differs between the
// naive and incremental engines — that difference is the point).
void expect_reports_identical(const WeightFaultReport& a,
                              const WeightFaultReport& b,
                              bool include_layer_evals) {
  EXPECT_EQ(a.robust_weights, b.robust_weights);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.undecided_candidates, b.undecided_candidates);
  EXPECT_EQ(a.model, b.model);
  if (include_layer_evals) {
    EXPECT_EQ(a.layer_evaluations, b.layer_evaluations);
  }
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    const WeightFault& fa = a.faults[i];
    const WeightFault& fb = b.faults[i];
    EXPECT_EQ(fa.layer, fb.layer);
    EXPECT_EQ(fa.row, fb.row);
    EXPECT_EQ(fa.col, fb.col);
    EXPECT_EQ(fa.min_flip_percent, fb.min_flip_percent) << "fault " << i;
    EXPECT_EQ(fa.flip_sign, fb.flip_sign) << "fault " << i;
    EXPECT_EQ(fa.flipped_sample, fb.flipped_sample) << "fault " << i;
    EXPECT_EQ(fa.flipped_raw, fb.flipped_raw) << "fault " << i;
  }
  // Memberwise operator== backstop: fields added to WeightFault later are
  // compared even before this helper learns to print them.
  EXPECT_TRUE(a.faults == b.faults);
}

TEST(WeightFaults, IncrementalMatchesNaiveOnTrainedNet) {
  const CaseStudy cs = build_case_study(small_case_study_config());
  WeightFaultConfig config;
  config.max_percent = 30;
  config.step = 2;
  config.threads = 1;

  config.scan = FaultScan::kNaive;
  const WeightFaultReport naive =
      analyze_weight_faults(cs.qnet, cs.test_x, cs.test_y, config);

  config.scan = FaultScan::kIncremental;
  const WeightFaultReport incremental =
      analyze_weight_faults(cs.qnet, cs.test_x, cs.test_y, config);
  expect_reports_identical(naive, incremental, false);
  // The incremental engine never re-evaluates the unchanged prefix, so its
  // per-layer evaluation count is strictly lower.
  EXPECT_LT(incremental.layer_evaluations, naive.layer_evaluations);
  EXPECT_GT(incremental.layer_evaluations, 0u);

  // Bit-identical (including the cost counters) for every thread count.
  for (const std::size_t threads : {2, 8}) {
    config.threads = threads;
    const WeightFaultReport parallel =
        analyze_weight_faults(cs.qnet, cs.test_x, cs.test_y, config);
    expect_reports_identical(incremental, parallel, true);
    config.scan = FaultScan::kNaive;
    const WeightFaultReport naive_parallel =
        analyze_weight_faults(cs.qnet, cs.test_x, cs.test_y, config);
    expect_reports_identical(naive, naive_parallel, true);
    config.scan = FaultScan::kIncremental;
  }
}

TEST(WeightFaults, StepLargerThanMaxPercentScansNothing) {
  const nn::QuantizedNetwork net = tiny_qnet();
  la::Matrix<i64> inputs(1, 2);
  inputs(0, 0) = 80; inputs(0, 1) = 30;
  const std::vector<int> labels{net.classify_noised(inputs.row(0), {})};
  WeightFaultConfig config;
  config.max_percent = 5;
  config.step = 7;  // first candidate magnitude already beyond the range
  for (const FaultScan scan : {FaultScan::kIncremental, FaultScan::kNaive}) {
    config.scan = scan;
    const WeightFaultReport report =
        analyze_weight_faults(net, inputs, labels, config);
    EXPECT_EQ(report.robust_weights, report.faults.size());
    EXPECT_EQ(report.evaluations, 0u);
    EXPECT_EQ(report.layer_evaluations, 0u);
  }
}

TEST(WeightFaults, OnlyBiasFragileNetwork) {
  // All-zero weights: the classification is decided by the biases alone.
  // Scaling a zero weight keeps it zero, so every weight is robust and
  // only bias faults can flip — including for the incremental engine's
  // output-layer shortcut (this net is single-layer).
  nn::Layer only;
  only.weights = la::MatrixD::from_rows({{0.0, 0.0}, {0.0, 0.0}});
  only.bias = {0.5, 0.4999};
  only.activation = nn::Activation::kLinear;
  const nn::QuantizedNetwork net =
      nn::QuantizedNetwork::quantize(nn::Network({only}), 100);

  la::Matrix<i64> inputs(1, 2);
  inputs(0, 0) = 10; inputs(0, 1) = 90;
  const std::vector<int> labels{net.classify_noised(inputs.row(0), {})};
  ASSERT_EQ(labels[0], 0);

  WeightFaultConfig config;
  config.max_percent = 10;
  config.scan = FaultScan::kNaive;
  const WeightFaultReport naive =
      analyze_weight_faults(net, inputs, labels, config);
  config.scan = FaultScan::kIncremental;
  const WeightFaultReport incremental =
      analyze_weight_faults(net, inputs, labels, config);
  expect_reports_identical(naive, incremental, false);

  std::size_t fragile_biases = 0;
  for (const WeightFault& f : incremental.faults) {
    if (!f.is_bias()) {
      EXPECT_FALSE(f.min_flip_percent.has_value());
    } else if (f.min_flip_percent) {
      ++fragile_biases;
    }
  }
  EXPECT_GT(fragile_biases, 0u);
}

TEST(WeightFaults, StuckAtZeroAndSignFlipMatchManualInjection) {
  const nn::QuantizedNetwork net = tiny_qnet();
  la::Matrix<i64> inputs(2, 2);
  inputs(0, 0) = 80; inputs(0, 1) = 30;
  inputs(1, 0) = 20; inputs(1, 1) = 90;
  std::vector<int> labels(2);
  for (std::size_t s = 0; s < 2; ++s) {
    labels[s] = net.classify_noised(inputs.row(s), {});
  }

  for (const FaultModel model :
       {FaultModel::kStuckAtZero, FaultModel::kSignFlip}) {
    WeightFaultConfig config;
    config.model = model;
    config.scan = FaultScan::kNaive;
    const WeightFaultReport naive =
        analyze_weight_faults(net, inputs, labels, config);
    config.scan = FaultScan::kIncremental;
    const WeightFaultReport report =
        analyze_weight_faults(net, inputs, labels, config);
    expect_reports_identical(naive, report, false);
    EXPECT_EQ(report.model, model);

    for (const WeightFault& f : report.faults) {
      const std::size_t col = f.is_bias() ? net.layers()[f.layer].in_dim()
                                          : f.col;
      const i64 original = net.param_raw(f.layer, f.row, col);
      const i64 faulted = (model == FaultModel::kStuckAtZero) ? 0 : -original;
      const auto mutated = net.with_param(f.layer, f.row, col, faulted);
      bool flips = false;
      for (std::size_t s = 0; s < 2; ++s) {
        flips |= mutated.classify_noised(inputs.row(s), {}) != labels[s];
      }
      // The report must claim a flip exactly when injecting the fault by
      // hand flips a sample.
      EXPECT_EQ(f.min_flip_percent.has_value(), flips);
      if (f.min_flip_percent) {
        EXPECT_EQ(*f.min_flip_percent, 0);
        EXPECT_EQ(f.flipped_raw, faulted);
      }
    }
  }
}

TEST(WeightFaults, BitFlipIdentityOnTrainedTinyNet) {
  const nn::QuantizedNetwork net = tiny_qnet();
  la::Matrix<i64> inputs(2, 2);
  inputs(0, 0) = 80; inputs(0, 1) = 30;
  inputs(1, 0) = 20; inputs(1, 1) = 90;
  std::vector<int> labels(2);
  for (std::size_t s = 0; s < 2; ++s) {
    labels[s] = net.classify_noised(inputs.row(s), {});
  }

  WeightFaultConfig config;
  config.model = FaultModel::kBitFlip;
  config.scan = FaultScan::kNaive;
  const WeightFaultReport naive =
      analyze_weight_faults(net, inputs, labels, config);
  config.scan = FaultScan::kIncremental;
  const WeightFaultReport incremental =
      analyze_weight_faults(net, inputs, labels, config);
  expect_reports_identical(naive, incremental, false);
  EXPECT_LT(incremental.layer_evaluations, naive.layer_evaluations);
}

TEST(WeightFaults, BitFlipUndecidedCandidatesCountedIdentically) {
  // out0 = 1.0*x + 0.5, out1 = 0.0*x - 3.0: the margin is so wide that no
  // decidable bit flip of w00 or b0 can flip the argmax — but high-order
  // flips push the exact accumulation out of int64, so both engines must
  // skip (and count) the same candidates instead of guessing.
  nn::Layer only;
  only.weights = la::MatrixD::from_rows({{1.0}, {0.0}});
  only.bias = {0.5, -3.0};
  only.activation = nn::Activation::kLinear;
  const nn::QuantizedNetwork net =
      nn::QuantizedNetwork::quantize(nn::Network({only}), 100);

  la::Matrix<i64> inputs(1, 1);
  inputs(0, 0) = 10;
  const std::vector<int> labels{net.classify_noised(inputs.row(0), {})};
  ASSERT_EQ(labels[0], 0);

  WeightFaultConfig config;
  config.model = FaultModel::kBitFlip;
  config.scan = FaultScan::kNaive;
  const WeightFaultReport naive =
      analyze_weight_faults(net, inputs, labels, config);
  config.scan = FaultScan::kIncremental;
  const WeightFaultReport incremental =
      analyze_weight_faults(net, inputs, labels, config);
  expect_reports_identical(naive, incremental, false);
  EXPECT_GT(incremental.undecided_candidates, 0u);
  // w10 = 0 still flips at a moderate bit (out1 grows past out0), so the
  // model surfaces fragility and undecidability side by side.
  bool some_flip = false;
  for (const WeightFault& f : incremental.faults) {
    some_flip |= f.min_flip_percent.has_value();
  }
  EXPECT_TRUE(some_flip);

  for (const std::size_t threads : {2, 8}) {
    config.threads = threads;
    const WeightFaultReport parallel =
        analyze_weight_faults(net, inputs, labels, config);
    expect_reports_identical(incremental, parallel, true);
  }
}

TEST(WeightFaults, OverflowingCandidateGenerationIsCountedNotFatal) {
  // Parameter (0,0,0) holds INT64_MIN but multiplies a dead input (x0 = 0),
  // so the base forward pass is exact — yet *computing* its sign-flipped or
  // percent-scaled value overflows int64.  The scan must count such
  // candidates as undecided, not abort the whole analysis.
  const nn::QuantizedNetwork net =
      tiny_qnet().with_param(0, 0, 0, std::numeric_limits<i64>::min());
  la::Matrix<i64> inputs(1, 2);
  inputs(0, 0) = 0; inputs(0, 1) = 30;
  const std::vector<int> labels{net.classify_noised(inputs.row(0), {})};

  for (const FaultModel model :
       {FaultModel::kSignFlip, FaultModel::kPercentScale}) {
    WeightFaultConfig config;
    config.model = model;
    config.max_percent = 10;
    config.scan = FaultScan::kNaive;
    const WeightFaultReport naive =
        analyze_weight_faults(net, inputs, labels, config);
    config.scan = FaultScan::kIncremental;
    const WeightFaultReport incremental =
        analyze_weight_faults(net, inputs, labels, config);
    expect_reports_identical(naive, incremental, false);
    EXPECT_GT(incremental.undecided_candidates, 0u)
        << fault_model_name(model);
  }
}

TEST(WeightFaults, FaultModelNamesRoundTrip) {
  for (const FaultModel model :
       {FaultModel::kPercentScale, FaultModel::kStuckAtZero,
        FaultModel::kSignFlip, FaultModel::kBitFlip}) {
    const auto back = fault_model_from_name(fault_model_name(model));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, model);
  }
  EXPECT_FALSE(fault_model_from_name("rowhammer").has_value());
}

TEST(WeightFaults, BiasColSentinelIsConsistent) {
  WeightFault f;
  f.col = kBiasCol;
  EXPECT_TRUE(f.is_bias());
  f.col = 0;
  EXPECT_FALSE(f.is_bias());
  // The scan emits kBiasCol (never in_dim) for bias entries.
  const nn::QuantizedNetwork net = tiny_qnet();
  la::Matrix<i64> inputs(1, 2);
  inputs(0, 0) = 70; inputs(0, 1) = 40;
  const std::vector<int> labels{net.classify_noised(inputs.row(0), {})};
  const WeightFaultReport report =
      analyze_weight_faults(net, inputs, labels, {.max_percent = 20, .step = 1});
  for (const WeightFault& fault : report.faults) {
    EXPECT_TRUE(fault.col == kBiasCol ||
                fault.col < net.layers()[fault.layer].in_dim());
  }
}

TEST(WeightFaults, BadConfigThrows) {
  const nn::QuantizedNetwork net = tiny_qnet();
  la::Matrix<i64> inputs(1, 2);
  EXPECT_THROW(analyze_weight_faults(net, inputs, {0, 0}, {.max_percent = 50, .step = 1}),
               InvalidArgument);
  la::Matrix<i64> ok(1, 2);
  ok(0, 0) = 50; ok(0, 1) = 50;
  EXPECT_THROW(analyze_weight_faults(net, ok, {0}, {.max_percent = 0, .step = 1}), InvalidArgument);
  EXPECT_THROW(analyze_weight_faults(net, ok, {0}, {.max_percent = 10, .step = 0}), InvalidArgument);
}

}  // namespace
}  // namespace fannet::core
