// Differential fuzz oracle for the CDCL solver (ISSUE: every inprocessing
// combination must agree with brute force on random small CNFs).
//
// For each seeded random instance and each of the 16 on/off combinations of
// the inprocessing passes:
//   - the verdict must equal the brute-force enumerator's,
//   - a kSat answer's model must satisfy every clause (model reconstruction
//     included),
//   - a kUnsat answer must carry a DRAT transcript that the bounded checker
//     verifies — plain, and under random frozen assumptions,
//   - conflict_assumptions() must be a negated subset of the assumptions
//     that is itself sufficient for UNSAT.
// On any mismatch a greedy shrinker minimizes the instance (drop clauses,
// then literals, while the failure reproduces) and prints it as DIMACS so
// the failure is immediately replayable.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "sat/dimacs.hpp"
#include "sat/drat.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace fannet::sat {
namespace {

InprocessOptions combo(unsigned mask) {
  InprocessOptions o;
  o.vivify = (mask & 1u) != 0;
  o.subsume = (mask & 2u) != 0;
  o.bve = (mask & 4u) != 0;
  o.scc = (mask & 8u) != 0;
  return o;
}

/// Brute-force satisfiability of `cnf` with `forced` literals pinned true.
bool brute_sat(const Cnf& cnf, const std::vector<Lit>& forced = {}) {
  const int n = cnf.num_vars;
  for (std::uint32_t m = 0; m < (1u << n); ++m) {
    const auto lit_true = [m](Lit l) {
      return (((m >> l.var()) & 1u) != 0) != l.negated();
    };
    bool all = std::all_of(forced.begin(), forced.end(), lit_true);
    for (const Clause& cl : cnf.clauses) {
      if (!all) break;
      all = std::any_of(cl.begin(), cl.end(), lit_true);
    }
    if (all) return true;
  }
  return false;
}

/// Random CNF with mixed clause lengths (units through 4-literal clauses).
Cnf random_cnf(std::uint64_t seed) {
  util::Rng rng(seed);
  Cnf cnf;
  cnf.num_vars = static_cast<int>(rng.uniform_int(4, 11));
  const int clauses =
      static_cast<int>(rng.uniform_int(2, 5) * static_cast<std::uint64_t>(cnf.num_vars));
  for (int c = 0; c < clauses; ++c) {
    Clause cl;
    const int len = static_cast<int>(rng.uniform_int(1, 4));
    for (int k = 0; k < len; ++k) {
      cl.emplace_back(static_cast<Var>(rng.uniform_int(0, cnf.num_vars - 1)),
                      rng.bernoulli(0.5));
    }
    cnf.clauses.push_back(std::move(cl));
  }
  return cnf;
}

/// Runs one solver configuration against the oracle.  Returns an empty
/// string on agreement, else a description of the failure.
std::string check_once(const Cnf& cnf, unsigned mask,
                       const std::vector<Lit>& assumptions) {
  const bool expect_sat = brute_sat(cnf, assumptions);
  Solver s;
  ProofLog proof;
  s.set_proof(&proof);
  s.set_inprocess(combo(mask));
  (void)load_cnf(s, cnf);
  // Inprocessing only runs inside solve(), so freezing after loading (but
  // before the first solve) is early enough.
  for (const Lit a : assumptions) s.set_frozen(a.var());
  const SolveResult r = s.solve(assumptions);
  if (r == SolveResult::kUnknown) return "unexpected kUnknown (no budget set)";
  if ((r == SolveResult::kSat) != expect_sat) {
    return std::string("verdict mismatch: solver says ") +
           (r == SolveResult::kSat ? "SAT" : "UNSAT") + ", brute force says " +
           (expect_sat ? "SAT" : "UNSAT");
  }
  if (r == SolveResult::kSat) {
    for (const Lit a : assumptions) {
      if (!s.model_value(a)) return "model violates assumption " + a.to_string();
    }
    for (std::size_t i = 0; i < cnf.clauses.size(); ++i) {
      bool sat = false;
      for (const Lit l : cnf.clauses[i]) sat = sat || s.model_value(l);
      if (!sat) return "model violates clause " + std::to_string(i);
    }
    return {};
  }
  // kUnsat: the DRAT transcript must check under the solve's assumptions...
  const ProofCheckResult pc = check_proof(proof, assumptions);
  if (!pc.verified()) return "UNSAT proof rejected: " + pc.detail;
  // ...and the failed-assumption core must be a negated subset that is
  // itself sufficient.
  std::vector<Lit> failed;
  for (const Lit l : s.conflict_assumptions()) {
    if (std::find(assumptions.begin(), assumptions.end(), ~l) ==
        assumptions.end()) {
      return "conflict literal " + l.to_string() + " is not a negated assumption";
    }
    failed.push_back(~l);
  }
  if (s.solve(failed) != SolveResult::kUnsat) {
    return "failed-assumption core is not itself UNSAT";
  }
  return {};
}

/// Greedy minimization: drop whole clauses, then single literals, as long
/// as the failure keeps reproducing.
Cnf shrink(Cnf cnf, unsigned mask, const std::vector<Lit>& assumptions) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < cnf.clauses.size(); ++i) {
      Cnf smaller = cnf;
      smaller.clauses.erase(smaller.clauses.begin() +
                            static_cast<std::ptrdiff_t>(i));
      if (!check_once(smaller, mask, assumptions).empty()) {
        cnf = std::move(smaller);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    for (std::size_t i = 0; i < cnf.clauses.size() && !progress; ++i) {
      for (std::size_t k = 0; k < cnf.clauses[i].size(); ++k) {
        Cnf smaller = cnf;
        smaller.clauses[i].erase(smaller.clauses[i].begin() +
                                 static_cast<std::ptrdiff_t>(k));
        if (!check_once(smaller, mask, assumptions).empty()) {
          cnf = std::move(smaller);
          progress = true;
          break;
        }
      }
    }
  }
  return cnf;
}

void run_fuzz_case(const Cnf& cnf, unsigned mask,
                   const std::vector<Lit>& assumptions) {
  const std::string failure = check_once(cnf, mask, assumptions);
  if (failure.empty()) return;
  const Cnf minimal = shrink(cnf, mask, assumptions);
  std::string assume_text;
  for (const Lit a : assumptions) assume_text += a.to_string() + " ";
  ADD_FAILURE() << failure << "\ninprocess mask: " << mask
                << "\nassumptions: " << (assume_text.empty() ? "(none)" : assume_text)
                << "\nminimized instance:\n"
                << to_dimacs(minimal);
}

class SatFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SatFuzz, AllInprocessCombinationsAgreeWithBruteForce) {
  const Cnf cnf = random_cnf(GetParam() * 7919 + 17);
  for (unsigned mask = 0; mask < 16; ++mask) {
    run_fuzz_case(cnf, mask, {});
  }
}

TEST_P(SatFuzz, FrozenAssumptionsAgreeWithBruteForce) {
  const std::uint64_t seed = GetParam() * 104729 + 5;
  const Cnf cnf = random_cnf(seed);
  util::Rng rng(seed ^ 0x5eedu);
  std::vector<Lit> assumptions;
  const int count = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < count; ++i) {
    const Var v = static_cast<Var>(rng.uniform_int(0, cnf.num_vars - 1));
    const Lit a(v, rng.bernoulli(0.5));
    if (std::find_if(assumptions.begin(), assumptions.end(), [v](Lit l) {
          return l.var() == v;
        }) == assumptions.end()) {
      assumptions.push_back(a);
    }
  }
  // The plain core and the full suite bracket the combination space; the
  // no-assumption sweep above covers every mask.
  for (const unsigned mask : {0u, 15u}) {
    run_fuzz_case(cnf, mask, assumptions);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatFuzz, testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace fannet::sat
