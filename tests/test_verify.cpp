// Unit + property tests for the NN verification engines.  The central
// property: on the integer noise grid, enumeration (ground truth), B&B
// (complete) and the sound bounding engines must be mutually consistent:
//   - bnb verdict == enumerate verdict (exactly),
//   - interval/symbolic "robust" implies enumerate "robust" (soundness),
//   - symbolic bounds sandwich every exact evaluation (bound correctness),
//   - bnb_collect set == enumerate_collect set (complete extraction).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "nn/network.hpp"
#include "util/rng.hpp"
#include "verify/bnb.hpp"
#include "verify/enumerate.hpp"
#include "verify/interval.hpp"
#include "verify/query.hpp"
#include "verify/symbolic.hpp"

namespace fannet::verify {
namespace {

using util::i128;
using util::i64;

Query make_query(const nn::QuantizedNetwork& net, std::vector<i64> x,
                 int label, int range, bool bias_node = false) {
  Query q;
  q.net = &net;
  q.x = std::move(x);
  q.true_label = label;
  q.box = NoiseBox::symmetric(q.x.size() + (bias_node ? 1 : 0), range);
  q.bias_node = bias_node;
  return q;
}

nn::QuantizedNetwork random_qnet(std::uint64_t seed, std::size_t inputs = 3,
                                 std::size_t hidden = 6) {
  const nn::Network net = nn::Network::random({inputs, hidden, 2}, seed);
  return nn::QuantizedNetwork::quantize(net, 100);
}

TEST(NoiseBox, SymmetricAndVolume) {
  const NoiseBox b = NoiseBox::symmetric(3, 5);
  EXPECT_EQ(b.dims(), 3u);
  EXPECT_DOUBLE_EQ(b.volume(), 11.0 * 11.0 * 11.0);
  EXPECT_FALSE(b.is_singleton());
  NoiseBox s;
  s.lo = {1, -2};
  s.hi = {1, -2};
  EXPECT_TRUE(s.is_singleton());
  EXPECT_DOUBLE_EQ(s.volume(), 1.0);
}

TEST(NoiseBox, VolumeSaturatesInsteadOfLosingPrecision) {
  // Exact up to 2^53 grid points; saturates to +inf beyond instead of
  // silently returning a rounded (wrong) count.
  NoiseBox exact;
  exact.lo.assign(53, 0);
  exact.hi.assign(53, 1);  // exactly 2^53 points
  EXPECT_DOUBLE_EQ(exact.volume(), 9007199254740992.0);

  NoiseBox beyond = exact;
  beyond.hi[0] = 2;  // 1.5 * 2^53: no longer exactly representable
  EXPECT_TRUE(std::isinf(beyond.volume()));

  // The paper-scale worst case: a ±100% box over dozens of input nodes.
  const NoiseBox huge = NoiseBox::symmetric(64, 100);
  EXPECT_TRUE(std::isinf(huge.volume()));
}

TEST(Query, ValidationCatchesMistakes) {
  const nn::QuantizedNetwork net = random_qnet(1);
  Query q = make_query(net, {50, 50, 50}, 0, 5);
  EXPECT_NO_THROW(q.validate());
  q.true_label = 7;
  EXPECT_THROW(q.validate(), InvalidArgument);
  q = make_query(net, {50, 50}, 0, 5);  // wrong input count
  EXPECT_THROW(q.validate(), InvalidArgument);
  q = make_query(net, {50, 50, 50}, 0, 5);
  q.box.lo[0] = 10;
  q.box.hi[0] = 5;  // empty dimension
  EXPECT_THROW(q.validate(), InvalidArgument);
  q = make_query(net, {50, 50, 50}, 0, 120);  // below -100%
  EXPECT_THROW(q.validate(), InvalidArgument);
}

TEST(Enumerate, VisitsWholeBox) {
  const nn::QuantizedNetwork net = random_qnet(2);
  const Query q = make_query(net, {30, 60, 90}, net.classify_noised({{30, 60, 90}}, {}), 2);
  const std::uint64_t visited =
      enumerate_stream(q, [](const Counterexample&) { return true; });
  EXPECT_EQ(visited, 5u * 5u * 5u);
}

TEST(Enumerate, FindFirstStopsEarlyOnVulnerable) {
  // Construct a query guaranteed vulnerable: true_label set to the wrong
  // class, so the zero-noise vector itself is a "counterexample".
  const nn::QuantizedNetwork net = random_qnet(3);
  const std::vector<i64> x{20, 40, 80};
  const int actual = net.classify_noised(x, {});
  const Query q = make_query(net, x, 1 - actual, 1);
  const VerifyResult r = enumerate_find_first(q);
  EXPECT_EQ(r.verdict, Verdict::kVulnerable);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_EQ(r.counterexample->mis_label, actual);
}

TEST(Interval, BoundsContainPointEvaluations) {
  const nn::QuantizedNetwork net = random_qnet(4);
  const std::vector<i64> x{25, 50, 75};
  const Query q = make_query(net, x, 0, 10);
  const IntervalBounds bounds = interval_bounds(q);
  util::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int> d(3);
    for (auto& v : d) v = static_cast<int>(rng.uniform_int(-10, 10));
    const auto X = nn::QuantizedNetwork::noised_inputs(x, d);
    const auto all = net.eval_all(X);
    for (std::size_t li = 0; li < all.size(); ++li) {
      for (std::size_t j = 0; j < all[li].size(); ++j) {
        EXPECT_LE(bounds.lo[li][j], static_cast<i128>(all[li][j]));
        EXPECT_GE(bounds.hi[li][j], static_cast<i128>(all[li][j]));
      }
    }
  }
}

TEST(Symbolic, OutputBoundsContainPointEvaluations) {
  const nn::QuantizedNetwork net = random_qnet(5);
  const std::vector<i64> x{10, 90, 40};
  const Query q = make_query(net, x, 0, 8);
  const SymbolicBounds sb = symbolic_bounds(q);
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int> d(3);
    for (auto& v : d) v = static_cast<int>(rng.uniform_int(-8, 8));
    const auto X = nn::QuantizedNetwork::noised_inputs(x, d);
    const auto out = net.eval_output(X);
    for (std::size_t k = 0; k < out.size(); ++k) {
      // Evaluate the affine forms at this concrete delta.
      i128 lo = sb.out_lo[k].c0, hi = sb.out_hi[k].c0;
      for (std::size_t dim = 0; dim < 3; ++dim) {
        lo += sb.out_lo[k].coeff[dim] * d[dim];
        hi += sb.out_hi[k].coeff[dim] * d[dim];
      }
      EXPECT_LE(lo, static_cast<i128>(out[k]));
      EXPECT_GE(hi, static_cast<i128>(out[k]));
    }
  }
}

TEST(Symbolic, FirstLayerIsExact) {
  // With a single-layer network the symbolic forms must be exact: lower
  // and upper coincide, and evaluating the form reproduces eval_output.
  nn::Layer only;
  only.weights = la::MatrixD::from_rows({{0.5, -1.5}, {2.0, 0.25}});
  only.bias = {0.1, -0.2};
  only.activation = nn::Activation::kLinear;
  const nn::Network net({only});
  const nn::QuantizedNetwork q = nn::QuantizedNetwork::quantize(net, 100);
  const Query query = make_query(q, {40, 70}, 0, 6);
  const SymbolicBounds sb = symbolic_bounds(query);
  EXPECT_EQ(sb.unstable_relus, 0u);
  for (int d0 = -6; d0 <= 6; d0 += 3) {
    for (int d1 = -6; d1 <= 6; d1 += 3) {
      const auto X = nn::QuantizedNetwork::noised_inputs(
          query.x, std::vector<int>{d0, d1});
      const auto out = q.eval_output(X);
      for (std::size_t k = 0; k < 2; ++k) {
        const i128 form = sb.out_lo[k].c0 + sb.out_lo[k].coeff[0] * d0 +
                          sb.out_lo[k].coeff[1] * d1;
        EXPECT_EQ(form, static_cast<i128>(out[k]));
        EXPECT_EQ(sb.out_lo[k].c0, sb.out_hi[k].c0);
      }
    }
  }
}

TEST(Verifiers, SoundnessOnRobustCertificates) {
  // Whenever interval/symbolic says kRobust, enumeration must find nothing.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const nn::QuantizedNetwork net = random_qnet(seed);
    const std::vector<i64> x{33, 66, 99};
    const int label = net.classify_noised(x, {});
    for (const int range : {1, 2, 4}) {
      const Query q = make_query(net, x, label, range);
      const bool truth =
          enumerate_find_first(q).verdict == Verdict::kVulnerable;
      if (interval_verify(q).verdict == Verdict::kRobust) {
        EXPECT_FALSE(truth) << "IBP unsound! seed=" << seed;
      }
      if (symbolic_verify(q).verdict == Verdict::kRobust) {
        EXPECT_FALSE(truth) << "symbolic unsound! seed=" << seed;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The oracle property: B&B is exactly the enumeration decision.
// ---------------------------------------------------------------------------
class EngineAgreement : public testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineAgreement, BnbEqualsEnumeration) {
  const std::uint64_t seed = GetParam();
  const nn::QuantizedNetwork net = random_qnet(seed);
  util::Rng rng(seed * 31 + 7);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<i64> x(3);
    for (auto& v : x) v = rng.uniform_int(1, 100);
    const int label = net.classify_noised(x, {});
    const int range = static_cast<int>(rng.uniform_int(1, 6));
    const bool bias = rng.bernoulli(0.3);
    const Query q = make_query(net, x, label, range, bias);

    const VerifyResult truth = enumerate_find_first(q);
    const VerifyResult fast = bnb_verify(q);
    EXPECT_EQ(truth.verdict, fast.verdict)
        << "seed=" << seed << " trial=" << trial << " range=" << range;
    if (fast.verdict == Verdict::kVulnerable) {
      // The witness must actually flip the sample.
      std::vector<int> all = fast.counterexample->deltas;
      if (bias) all.push_back(fast.counterexample->bias_delta);
      EXPECT_NE(classify_under_noise(q, all), q.true_label);
    }
  }
}

TEST_P(EngineAgreement, BnbCollectMatchesEnumerationSet) {
  const std::uint64_t seed = GetParam();
  const nn::QuantizedNetwork net = random_qnet(seed, 2, 5);
  util::Rng rng(seed * 17 + 3);
  std::vector<i64> x{static_cast<i64>(rng.uniform_int(1, 100)),
                     static_cast<i64>(rng.uniform_int(1, 100))};
  // Deliberately wrong label guarantees a rich counterexample set.
  const int label = 1 - net.classify_noised(x, {});
  const Query q = make_query(net, x, label, 3);

  const auto to_set = [](const std::vector<Counterexample>& v) {
    std::set<std::vector<int>> s;
    for (const auto& cex : v) s.insert(cex.deltas);
    return s;
  };
  const auto slow = to_set(enumerate_collect(q, 100'000));
  const auto fast = to_set(bnb_collect(q, 100'000));
  EXPECT_EQ(slow, fast) << "seed=" << seed;
  EXPECT_FALSE(slow.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreement,
                         testing::Range<std::uint64_t>(1, 13));

TEST(Bnb, IbpFallbackAgreesToo) {
  const nn::QuantizedNetwork net = random_qnet(42);
  const std::vector<i64> x{10, 50, 90};
  const int label = net.classify_noised(x, {});
  const Query q = make_query(net, x, label, 4);
  BnbOptions opt;
  opt.use_symbolic = false;
  EXPECT_EQ(bnb_verify(q, opt).verdict, enumerate_find_first(q).verdict);
}

TEST(Bnb, DirectionalBoxes) {
  // Restricting the box must never invent counterexamples: if the full box
  // is robust, every sub-box is robust.
  const nn::QuantizedNetwork net = random_qnet(8);
  const std::vector<i64> x{45, 55, 65};
  const int label = net.classify_noised(x, {});
  Query q = make_query(net, x, label, 5);
  if (bnb_verify(q).verdict == Verdict::kRobust) {
    q.box.lo[0] = 1;  // positive-only noise on node 0
    EXPECT_EQ(bnb_verify(q).verdict, Verdict::kRobust);
  }
}

TEST(Bnb, BoxBudgetDegradesToUnknownAtVerifyBoundary) {
  // Budget exhaustion must not abort a whole scheduler batch: bnb_verify
  // surfaces kUnknown (with the boxes processed recorded as work) instead
  // of throwing.  The streaming APIs keep the ResourceLimit contract.
  const nn::QuantizedNetwork net = random_qnet(9);
  const std::vector<i64> x{50, 50, 50};
  const Query q = make_query(net, x, net.classify_noised(x, {}), 50);
  BnbOptions opt;
  opt.max_boxes = 3;
  opt.use_symbolic = false;  // weak pruning forces splitting
  const VerifyResult r = bnb_verify(q, opt);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_FALSE(r.counterexample.has_value());
  EXPECT_GE(r.work, opt.max_boxes);
  EXPECT_THROW(bnb_stream(q, [](const Counterexample&) { return true; }, opt),
               ResourceLimit);
  EXPECT_THROW(bnb_collect(q, 10, opt), ResourceLimit);
}

TEST(Collect, ZeroCapReturnsNothing) {
  // A max_count of 0 means "no counterexamples", not "one": the cap is
  // checked before the push.  Use a certainly-vulnerable query.
  const nn::QuantizedNetwork net = random_qnet(11);
  const std::vector<i64> x{30, 60, 90};
  const Query q = make_query(net, x, 1 - net.classify_noised(x, {}), 2);
  ASSERT_EQ(enumerate_find_first(q).verdict, Verdict::kVulnerable);
  EXPECT_TRUE(enumerate_collect(q, 0).empty());
  EXPECT_TRUE(bnb_collect(q, 0).empty());
  EXPECT_EQ(enumerate_collect(q, 1).size(), 1u);
  EXPECT_EQ(bnb_collect(q, 1).size(), 1u);
}

TEST(Bnb, WorkIsFarBelowEnumeration) {
  // The whole point of B&B: decide a +/-40% box without visiting 81^3 points.
  const nn::QuantizedNetwork net = random_qnet(10);
  const std::vector<i64> x{20, 50, 80};
  const int label = net.classify_noised(x, {});
  const Query q = make_query(net, x, label, 40);
  const VerifyResult r = bnb_verify(q);
  EXPECT_LT(r.work, 81u * 81u * 81u / 10u);
}

}  // namespace
}  // namespace fannet::verify
