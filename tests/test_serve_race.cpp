// Concurrency suite for the serve layer, aimed at the TSan CI job (the
// workflow filter includes every Serve* suite): N clients hammer one server
// with a mix of cache-hitting, cache-missing, and deadline-expiring
// requests.  The properties under test: the shared cache answers across
// racing connections with identical verdicts, a deadline expires only the
// request that carried it, concurrent mid-execution disconnects cancel
// cleanly, and teardown joins every session thread.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "serve_harness.hpp"
#include "util/stopwatch.hpp"

namespace fannet::serve {
namespace {

using harness::ServeClient;
using harness::TestServer;

std::string body_verdict(const Json& frame) {
  const Json* body = frame.find("body");
  if (body == nullptr) return "";
  const Json* verdict = body->find("verdict");
  return verdict != nullptr && verdict->is_string() ? verdict->as_string()
                                                    : "";
}

bool body_flag(const Json& frame, std::string_view key) {
  const Json* body = frame.find("body");
  if (body == nullptr) return false;
  const Json* value = body->find(key);
  return value != nullptr && value->is_bool() && value->as_bool();
}

TEST(ServeRace, ConcurrentClientsShareCacheAndIsolateDeadlines) {
  // Saturation is covered by ServeAdmission; here the cap is lifted so the
  // cache/deadline interleavings run unthrottled (a client's next request
  // can race the release of its previous heavy slot).
  ServeOptions options = TestServer::test_options();
  options.max_inflight = 64;
  TestServer server(options);
  const std::vector<util::i64> x = harness::good_sample_x();
  const int label = harness::good_sample_label();
  const std::string shared = harness::verify_request(1, x, label, 9);

  constexpr int kClients = 8;
  constexpr int kRepeats = 4;
  std::atomic<int> failures{0};
  // Only the sharing cohort (clients 0..3) writes here.
  std::vector<std::string> shared_verdicts(4 * kRepeats);
  std::vector<std::thread> clients;

  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ServeClient client(server.port(), 30000);
      if (!client.connected()) {
        failures.fetch_add(1);
        return;
      }
      for (int r = 0; r < kRepeats; ++r) {
        if (c < 4) {
          // Cache-sharing cohort: everyone sends the identical query.
          const ServeClient::Reply reply = client.call(shared);
          if (reply.final_type() != "result" ||
              body_flag(*reply.final, "resource_limited")) {
            failures.fetch_add(1);
            return;
          }
          shared_verdicts[c * kRepeats + r] = body_verdict(*reply.final);
        } else if (c < 6) {
          // Cache-missing cohort: a distinct range per (client, repeat).
          const int range = 2 + (c - 4) * kRepeats + r;
          const ServeClient::Reply reply = client.call(
              harness::verify_request(10 + r, x, label, range));
          if (reply.final_type() != "result") {
            failures.fetch_add(1);
            return;
          }
        } else {
          // Deadline cohort: enumerate over an astronomically large box
          // with a tiny budget — must come back unknown/resource_limited
          // without slowing anyone else down.
          const ServeClient::Reply reply = client.call(harness::verify_request(
              20 + r, x, label, 40, "enumerate", 30));
          if (reply.final_type() != "result" ||
              body_verdict(*reply.final) != "unknown" ||
              !body_flag(*reply.final, "resource_limited")) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The shared query's verdict is one verdict, everywhere.
  for (const std::string& verdict : shared_verdicts) {
    EXPECT_EQ(verdict, shared_verdicts.front());
    EXPECT_FALSE(verdict.empty());
  }

  const ServerStats stats = server.stats();
  // Each sharing client's 2nd..4th repeats are guaranteed warm (its own
  // first completed on the same connection before they were sent); the
  // cross-client first round may race the fill either way.
  EXPECT_GE(stats.cache_hits, 4u * (kRepeats - 1));
  EXPECT_GE(stats.cache_misses, 1u);
  EXPECT_GE(stats.deadline_expired, 2u * kRepeats);
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kClients * kRepeats));
  EXPECT_EQ(stats.results, static_cast<std::uint64_t>(kClients * kRepeats));
  EXPECT_EQ(stats.errors, 0u);
}

TEST(ServeRace, ConcurrentAbruptDisconnectsCancelWithoutWedging) {
  TestServer server;
  const std::vector<util::i64> x = harness::good_sample_x();
  const int label = harness::good_sample_label();

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      ServeClient client(server.port(), 30000);
      if (!client.connected()) return;
      // Unbounded-without-cancellation work, then vanish mid-execution.
      (void)client.send_frame(
          harness::verify_request(1, x, label, 40, "enumerate"));
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      client.close_abrupt();
    });
  }
  for (std::thread& t : clients) t.join();

  const util::Stopwatch watch;
  while (server.stats().cancelled_disconnect < kClients &&
         watch.millis() < 15000.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.stats().cancelled_disconnect,
            static_cast<std::uint64_t>(kClients));

  // Server is still healthy and stops without hanging on cancelled work.
  ServeClient probe(server.port(), 10000);
  ASSERT_TRUE(probe.connected());
  EXPECT_EQ(probe.call(harness::simple_request(9, "ping")).final_type(),
            "pong");
  server.stop();
}

}  // namespace
}  // namespace fannet::serve
