// Unit + property tests for the exact quantized evaluator — the arithmetic
// core every formal engine shares (DESIGN.md §4.1).
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "nn/network.hpp"
#include "nn/quantized.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fannet::nn {
namespace {

using util::i128;
using util::i64;

Network tiny_net() {
  Layer hidden;
  hidden.weights = la::MatrixD::from_rows({{1.0, -1.0}, {0.5, 0.5}});
  hidden.bias = {0.0, -0.25};
  hidden.activation = Activation::kReLU;
  Layer out;
  out.weights = la::MatrixD::from_rows({{1.0, 0.0}, {0.0, 2.0}});
  out.bias = {0.1, 0.0};
  out.activation = Activation::kLinear;
  return Network({hidden, out});
}

TEST(Quantized, ScalesAreExact) {
  const QuantizedNetwork q = QuantizedNetwork::quantize(tiny_net(), 100);
  EXPECT_EQ(q.scale_at(0), static_cast<i128>(100) * 100);
  EXPECT_EQ(q.scale_at(1), static_cast<i128>(100) * 100 * 10'000);
  EXPECT_EQ(q.scale_at(2),
            static_cast<i128>(100) * 100 * 10'000 * 10'000);
  EXPECT_THROW((void)q.scale_at(3), InvalidArgument);
}

TEST(Quantized, NoisedInputsFormula) {
  const std::vector<i64> x{50, 80};
  const std::vector<int> d{10, -25};
  const auto X = QuantizedNetwork::noised_inputs(x, d);
  EXPECT_EQ(X[0], 50 * 110);
  EXPECT_EQ(X[1], 80 * 75);
  const auto clean = QuantizedNetwork::noised_inputs(x, {});
  EXPECT_EQ(clean[0], 5000);
  EXPECT_EQ(clean[1], 8000);
}

TEST(Quantized, NoisedInputsSizeMismatchThrows) {
  const std::vector<i64> x{1, 2};
  const std::vector<int> d{1};
  EXPECT_THROW(QuantizedNetwork::noised_inputs(x, d), InvalidArgument);
}

TEST(Quantized, NoisedInputsMismatchNamesBothSizes) {
  // The message must name which field is wrong and both sizes — a bare
  // "size mismatch" loses the 30 seconds it takes to find out which span
  // was mis-built.
  const std::vector<i64> x{1, 2, 3};
  const std::vector<int> d{1, 2, 3, 4, 5};
  try {
    (void)QuantizedNetwork::noised_inputs(x, d);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("deltas size 5"), std::string::npos) << message;
    EXPECT_NE(message.find("inputs size 3"), std::string::npos) << message;
  }
}

TEST(Quantized, MatchesHandComputedValues) {
  // x = (100, 50) so u = (1.0, 0.5): hidden pre = (0.5, 0.5),
  // out = (0.6, 1.0).  Scaled by 1e8 and 1e12 respectively.
  const QuantizedNetwork q = QuantizedNetwork::quantize(tiny_net(), 100);
  const auto X = QuantizedNetwork::noised_inputs({{100, 50}}, {});
  const auto all = q.eval_all(X);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0][0], 50'000'000);        // 0.5 * 1e8
  EXPECT_EQ(all[0][1], 50'000'000);
  EXPECT_EQ(all[1][0], 600'000'000'000);   // 0.6 * 1e12
  EXPECT_EQ(all[1][1], 1'000'000'000'000); // 1.0 * 1e12
  EXPECT_EQ(q.classify(X), 1);
}

TEST(Quantized, ReLUZeroesNegativePreActivations) {
  const QuantizedNetwork q = QuantizedNetwork::quantize(tiny_net(), 100);
  // x = (0? -> inputs are >= 1 in the pipeline, but eval works anyway)
  const auto X = QuantizedNetwork::noised_inputs({{1, 100}}, {});
  // hidden pre: (0.01-1, 0.005+0.5-0.25) = (-0.99, 0.255) -> relu zeroes [0].
  const auto out = q.eval_output(X);
  // out0 = 0*1 + 0.1 = 0.1 scaled; out1 = 2*0.255 = 0.51 scaled.
  EXPECT_EQ(out[0], 100'000'000'000);
  EXPECT_EQ(out[1], 510'000'000'000);
}

TEST(Quantized, BiasNodeFactorScalesFirstLayerBiasOnly) {
  const QuantizedNetwork q = QuantizedNetwork::quantize(tiny_net(), 100);
  const auto X = QuantizedNetwork::noised_inputs({{100, 50}}, {});
  // +100% noise on the bias node doubles the first-layer bias term.
  const auto noisy = q.eval_all(X, /*bias_factor=*/200);
  const auto clean = q.eval_all(X, /*bias_factor=*/100);
  // hidden bias was (0, -0.25): neuron 0 unchanged, neuron 1 shifted.
  EXPECT_EQ(noisy[0][0], clean[0][0]);
  EXPECT_EQ(noisy[0][1], clean[0][1] - 25'000'000);  // extra -0.25 * 1e8
}

TEST(Quantized, ClassifyNoisedAgreesWithManualPath) {
  const QuantizedNetwork q = QuantizedNetwork::quantize(tiny_net(), 100);
  const std::vector<i64> x{100, 50};
  const std::vector<int> d{-10, 20};
  const auto X = QuantizedNetwork::noised_inputs(x, d);
  EXPECT_EQ(q.classify_noised(x, d), q.classify(X));
}

TEST(Quantized, TieResolvesToLowerIndex) {
  EXPECT_EQ(argmax_tie_low_i64(std::vector<i64>{5, 5}), 0);
  EXPECT_EQ(argmax_tie_low_i64(std::vector<i64>{1, 7, 7}), 1);
  EXPECT_THROW((void)argmax_tie_low_i64(std::vector<i64>{}), InvalidArgument);
}

TEST(Quantized, DequantizeApproximatesOriginal) {
  const Network net = Network::random({3, 6, 2}, 17);
  const QuantizedNetwork q = QuantizedNetwork::quantize(net, 100);
  const Network back = q.dequantize();
  for (std::size_t li = 0; li < net.depth(); ++li) {
    for (std::size_t r = 0; r < net.layers()[li].out_dim(); ++r) {
      for (std::size_t c = 0; c < net.layers()[li].in_dim(); ++c) {
        EXPECT_NEAR(back.layers()[li].weights(r, c),
                    net.layers()[li].weights(r, c), 1.0 / util::Fixed::kScale);
      }
    }
  }
}

TEST(Quantized, BadInputSizesThrow) {
  const QuantizedNetwork q = QuantizedNetwork::quantize(tiny_net(), 100);
  const std::vector<i64> wrong{1, 2, 3};
  EXPECT_THROW(q.eval_output(wrong), InvalidArgument);
  EXPECT_THROW(QuantizedNetwork::quantize(tiny_net(), 0), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Edge cases: the oracle suite the batched SoA kernel (nn/batch_eval.hpp)
// is checked against — degenerate shapes, extreme bias factors, and argmax
// ties at every output position must be pinned down here first.
// ---------------------------------------------------------------------------
TEST(QuantizedEdge, ZeroLayerNetworkThrowsEverywhere) {
  const QuantizedNetwork empty;
  const std::vector<i64> X{100};
  EXPECT_THROW((void)empty.input_dim(), InvalidArgument);
  EXPECT_THROW((void)empty.output_dim(), InvalidArgument);
  EXPECT_THROW((void)empty.eval_output(X), InvalidArgument);
  EXPECT_THROW((void)empty.eval_all(X), InvalidArgument);
  EXPECT_THROW((void)empty.classify(X), InvalidArgument);
}

TEST(QuantizedEdge, SingleNeuronLayersEvaluateExactly) {
  // 1 -> 1 -> 1: hidden = relu(2u), out = 1 - hidden.
  Layer hidden;
  hidden.weights = la::MatrixD::from_rows({{2.0}});
  hidden.bias = {0.0};
  hidden.activation = Activation::kReLU;
  Layer out;
  out.weights = la::MatrixD::from_rows({{-1.0}});
  out.bias = {1.0};
  out.activation = Activation::kLinear;
  const QuantizedNetwork q =
      QuantizedNetwork::quantize(Network({hidden, out}), 100);

  const auto X = QuantizedNetwork::noised_inputs({{50}}, {});  // u = 0.5
  const auto all = q.eval_all(X);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0][0], 100'000'000);  // 1.0 * 1e8
  EXPECT_EQ(all[1][0], 0);            // (1 - 1.0) * 1e12
  EXPECT_EQ(q.classify(X), 0);        // single class: always 0

  // Negative pre-activation: relu zeroes it, out = 1.0 exactly.
  const auto Xneg = QuantizedNetwork::noised_inputs({{50}}, {{-200}});
  EXPECT_EQ(q.eval_output(Xneg)[0], 1'000'000'000'000);
}

TEST(QuantizedEdge, ExtremeBiasFactorScalesExactlyOrThrows) {
  const QuantizedNetwork q = QuantizedNetwork::quantize(tiny_net(), 100);
  const auto X = QuantizedNetwork::noised_inputs({{100, 50}}, {});
  const auto clean = q.eval_all(X, /*bias_factor=*/100);

  // Layer-0 bias contribution is linear in the factor: each +100 adds one
  // more copy of the quantized bias (-0.25 on hidden neuron 1).
  const auto big = q.eval_all(X, /*bias_factor=*/10'000);
  EXPECT_EQ(big[0][0], clean[0][0]);
  EXPECT_EQ(big[0][1], clean[0][1] - 25'000'000 * i64{99});

  // A factor that overflows input_norm * bias_factor must throw, never
  // silently wrap.
  EXPECT_THROW((void)q.eval_all(X, std::numeric_limits<i64>::max()),
               ArithmeticError);
  EXPECT_THROW((void)q.classify(X, std::numeric_limits<i64>::max()),
               ArithmeticError);
}

TEST(QuantizedEdge, ArgmaxTieResolvesLowAtEveryOutputPosition) {
  // Identity single-layer net: outputs are the (scaled) inputs, so ties can
  // be staged at any pair of positions.
  constexpr std::size_t kOut = 4;
  Layer out;
  std::vector<std::vector<double>> rows(kOut, std::vector<double>(kOut, 0.0));
  for (std::size_t i = 0; i < kOut; ++i) rows[i][i] = 1.0;
  out.weights = la::MatrixD::from_rows(rows);
  out.bias = std::vector<double>(kOut, 0.0);
  out.activation = Activation::kLinear;
  const QuantizedNetwork q = QuantizedNetwork::quantize(Network({out}), 100);

  // All-equal: the tie cascade resolves to index 0.
  EXPECT_EQ(q.classify(QuantizedNetwork::noised_inputs(
                std::vector<i64>(kOut, 70), {})),
            0);
  // Every pair (i, j): a two-way tie for the max resolves to i.
  for (std::size_t i = 0; i < kOut; ++i) {
    for (std::size_t j = i + 1; j < kOut; ++j) {
      std::vector<i64> x(kOut, 10);
      x[i] = 90;
      x[j] = 90;
      EXPECT_EQ(q.classify(QuantizedNetwork::noised_inputs(x, {})),
                static_cast<int>(i))
          << "tie at " << i << "," << j;
    }
  }
  // A strict max at each position wins outright.
  for (std::size_t k = 0; k < kOut; ++k) {
    std::vector<i64> x(kOut, 10);
    x[k] = 90;
    EXPECT_EQ(q.classify(QuantizedNetwork::noised_inputs(x, {})),
              static_cast<int>(k));
  }
}

// ---------------------------------------------------------------------------
// Fingerprint memoization: repeated probes hit the cache; every mutation
// path (with_param, ScopedParamPatch) invalidates it, and copies carry the
// cache without aliasing it.
// ---------------------------------------------------------------------------
TEST(Quantized, FingerprintMemoizedAndInvalidated) {
  QuantizedNetwork q = QuantizedNetwork::quantize(tiny_net(), 100);
  const i64 original = q.param_raw(0, 0, 0);
  const std::uint64_t fp = q.fingerprint();
  EXPECT_EQ(q.fingerprint(), fp);  // memoized probe, same value

  const QuantizedNetwork copy = q;  // cache travels with the copy
  EXPECT_EQ(copy.fingerprint(), fp);

  // with_param invalidates on the mutated copy — and the cache is not
  // stale: patching the original value back restores the fingerprint.
  const QuantizedNetwork patched = q.with_param(0, 0, 0, 123);
  EXPECT_NE(patched.fingerprint(), fp);
  EXPECT_EQ(patched.with_param(0, 0, 0, original).fingerprint(), fp);

  {
    const ScopedParamPatch patch(q, 0, 0, 0, 777);
    EXPECT_NE(q.fingerprint(), fp);  // cache invalidated by the patch
  }
  EXPECT_EQ(q.fingerprint(), fp);  // ...and by its restore
}

// ---------------------------------------------------------------------------
// Single-parameter access and patching (the weight-fault substrate)
// ---------------------------------------------------------------------------
TEST(ParamAccess, ParamRawAndWithParam) {
  const QuantizedNetwork q = QuantizedNetwork::quantize(tiny_net(), 100);
  EXPECT_EQ(q.param_raw(0, 0, 0), 10'000);        // weight 1.0
  EXPECT_EQ(q.param_raw(0, 1, 2), -2'500);        // bias -0.25 (col == in_dim)
  const QuantizedNetwork patched = q.with_param(1, 0, 1, 777);
  EXPECT_EQ(patched.param_raw(1, 0, 1), 777);
  EXPECT_EQ(q.param_raw(1, 0, 1), 0);             // original untouched
  EXPECT_THROW((void)q.param_raw(9, 0, 0), InvalidArgument);
  EXPECT_THROW((void)q.with_param(0, 9, 0, 1), InvalidArgument);
  EXPECT_THROW((void)q.with_param(0, 0, 9, 1), InvalidArgument);
}

TEST(ParamAccess, ScaledParamRawMatchesWithScaledParam) {
  EXPECT_EQ(scaled_param_raw(10'000, 17), 11'700);
  EXPECT_EQ(scaled_param_raw(-2'500, -50), -1'250);
  EXPECT_EQ(scaled_param_raw(5'000, 33), 6'650);  // round half away from zero
  const QuantizedNetwork q = QuantizedNetwork::quantize(tiny_net(), 100);
  const QuantizedNetwork scaled = q.with_scaled_param(0, 0, 0, 17);
  EXPECT_EQ(scaled.param_raw(0, 0, 0), scaled_param_raw(q.param_raw(0, 0, 0), 17));
}

TEST(ParamAccess, ScopedParamPatchRestoresOnDestruction) {
  QuantizedNetwork q = QuantizedNetwork::quantize(tiny_net(), 100);
  const std::uint64_t before = q.fingerprint();
  {
    const ScopedParamPatch patch(q, 0, 0, 0, 123);
    EXPECT_EQ(patch.original(), 10'000);
    EXPECT_EQ(q.param_raw(0, 0, 0), 123);
    EXPECT_NE(q.fingerprint(), before);
  }
  EXPECT_EQ(q.param_raw(0, 0, 0), 10'000);
  EXPECT_EQ(q.fingerprint(), before);
  EXPECT_THROW(ScopedParamPatch(q, 5, 0, 0, 1), InvalidArgument);
}

// ---------------------------------------------------------------------------
// PrefixEvaluator: the incremental patched-classification path must be
// bit-identical to mutating the network and evaluating from scratch, for
// every parameter position (weights and biases, every layer) and a spread
// of patched values.
// ---------------------------------------------------------------------------
TEST(PrefixEvaluator, MatchesFullEvaluationForEveryParam) {
  const QuantizedNetwork q = QuantizedNetwork::quantize(tiny_net(), 100);
  la::Matrix<i64> inputs(3, 2);
  inputs(0, 0) = 80; inputs(0, 1) = 30;
  inputs(1, 0) = 20; inputs(1, 1) = 90;
  inputs(2, 0) = 55; inputs(2, 1) = 55;

  const PrefixEvaluator prefix(q, inputs);
  ASSERT_EQ(prefix.samples(), 3u);
  PrefixEvaluator::Scratch scratch;

  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    EXPECT_EQ(prefix.base_class(s), q.classify_noised(inputs.row(s), {}));
  }
  for (std::size_t li = 0; li < q.depth(); ++li) {
    const QLayer& layer = q.layers()[li];
    for (std::size_t row = 0; row < layer.out_dim(); ++row) {
      for (std::size_t col = 0; col <= layer.in_dim(); ++col) {
        const i64 original = q.param_raw(li, row, col);
        for (const i64 raw :
             {i64{0}, original, -original, original * 2 + 1, original - 12'345}) {
          const QuantizedNetwork mutated = q.with_param(li, row, col, raw);
          for (std::size_t s = 0; s < inputs.rows(); ++s) {
            EXPECT_EQ(
                prefix.classify_patched(s, li, row, col, raw, scratch),
                mutated.classify_noised(inputs.row(s), {}))
                << "layer " << li << " row " << row << " col " << col
                << " raw " << raw << " sample " << s;
          }
        }
      }
    }
  }
  EXPECT_GT(scratch.layer_evaluations, 0u);
}

TEST(PrefixEvaluator, CountsOnlySuffixLayers) {
  const QuantizedNetwork q = QuantizedNetwork::quantize(tiny_net(), 100);
  la::Matrix<i64> inputs(1, 2);
  inputs(0, 0) = 80; inputs(0, 1) = 30;
  const PrefixEvaluator prefix(q, inputs);

  PrefixEvaluator::Scratch scratch;
  (void)prefix.classify_patched(0, 0, 0, 0, 42, scratch);
  EXPECT_EQ(scratch.layer_evaluations, 2u);  // delta at layer 0 + layer 1
  (void)prefix.classify_patched(0, 1, 0, 0, 42, scratch);
  EXPECT_EQ(scratch.layer_evaluations, 3u);  // output-layer fault: +1 only
}

TEST(PrefixEvaluator, OverflowBehaviorMatchesFullEvaluation) {
  const QuantizedNetwork q = QuantizedNetwork::quantize(tiny_net(), 100);
  la::Matrix<i64> inputs(1, 2);
  inputs(0, 0) = 80; inputs(0, 1) = 30;
  const PrefixEvaluator prefix(q, inputs);
  PrefixEvaluator::Scratch scratch;

  // A near-int64-max weight overflows the exact accumulation in both paths.
  const i64 huge = std::numeric_limits<i64>::max() / 2;
  EXPECT_THROW((void)q.with_param(0, 0, 0, huge).classify_noised(
                   inputs.row(0), {}),
               ArithmeticError);
  EXPECT_THROW((void)prefix.classify_patched(0, 0, 0, 0, huge, scratch),
               ArithmeticError);
  EXPECT_THROW((void)prefix.classify_patched(0, 9, 0, 0, 1, scratch),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Property sweep: the quantized integer path must agree with double-precision
// evaluation of the dequantized network wherever the margin is not razor-thin
// (exact ties are decided by the integer path; doubles cannot represent them).
// ---------------------------------------------------------------------------
class QuantizedAgreement : public testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantizedAgreement, IntegerAndDoublePathsAgree) {
  util::Rng rng(GetParam());
  const Network net = Network::random({4, 10, 3}, GetParam() * 7 + 1);
  const QuantizedNetwork q = QuantizedNetwork::quantize(net, 100);
  const Network deq = q.dequantize();

  for (int trial = 0; trial < 50; ++trial) {
    std::vector<i64> x(4);
    std::vector<double> u(4);
    for (std::size_t i = 0; i < 4; ++i) {
      x[i] = rng.uniform_int(1, 100);
      u[i] = static_cast<double>(x[i]) / 100.0;
    }
    const auto X = QuantizedNetwork::noised_inputs(x, {});
    const auto exact_out = q.eval_output(X);
    const auto dbl_out = deq.forward(u);
    // Compare classifications only when the double margin is meaningful.
    double best = -1e300, second = -1e300;
    for (const double v : dbl_out) {
      if (v > best) { second = best; best = v; }
      else if (v > second) { second = v; }
    }
    if (best - second > 1e-9) {
      EXPECT_EQ(q.classify(X), deq.classify(u))
          << "seed=" << GetParam() << " trial=" << trial;
    }
    // The scaled integers must match the doubles to float precision.
    const double scale = static_cast<double>(q.scale_at(2));
    for (std::size_t k = 0; k < exact_out.size(); ++k) {
      EXPECT_NEAR(static_cast<double>(exact_out[k]) / scale, dbl_out[k], 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantizedAgreement,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace fannet::nn
