// Fixture: floating-point arithmetic in an exact TU — violates
// float-in-exact when scanned with --exact.
double midpoint(double lo, double hi) { return (lo + hi) * 0.5; }
