/// \file
/// \brief Fixture: header with a Doxygen \file block — clean.
#pragma once

inline int identity(int x) { return x; }
