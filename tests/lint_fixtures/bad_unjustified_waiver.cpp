// Fixture: a waiver without a reason — violates unjustified-waiver.
#include <chrono>

long now_ticks() {
  // fannet-lint: allow(raw-clock)
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}
