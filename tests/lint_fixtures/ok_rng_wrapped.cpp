// Fixture: randomness through a seeded PRNG wrapper — clean.
struct Rng {
  explicit Rng(unsigned long seed) : state_(seed) {}
  unsigned long next() { return state_ = state_ * 6364136223846793005UL + 1; }
  unsigned long state_;
};

unsigned long draw() {
  Rng rng(42);
  return rng.next();
}
