// Fixture: iterating an unordered container — violates unordered-iter.
#include <unordered_map>

int sum_values() {
  std::unordered_map<int, int> scores;
  scores.emplace(1, 10);
  int total = 0;
  for (const auto& [key, value] : scores) total += value;
  int first = scores.begin()->second;
  return total + first;
}
