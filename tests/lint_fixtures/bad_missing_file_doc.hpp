// Fixture: header without a Doxygen file block — violates missing-file-doc.
#pragma once

inline int identity(int x) { return x; }
