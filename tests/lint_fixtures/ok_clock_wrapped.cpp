// Fixture: timing goes through the sanctioned wrapper — clean.
// (The wrapper include is faked; the linter only reads this TU.)
struct Stopwatch {
  double millis() const { return 0; }
};

double elapsed() {
  const Stopwatch watch;
  return watch.millis();
}
