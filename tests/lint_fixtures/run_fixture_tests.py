#!/usr/bin/env python3
"""Fixture tests for tools/fannet_lint.py.

Runs the linter on each fixture in this directory and asserts the exact set
of rule IDs it reports (and its exit status).  The `ok_*` fixtures must come
back clean; each `bad_*` fixture must trip exactly its rule — no more, no
less — so both false negatives and false positives fail the suite.

Usage: run_fixture_tests.py [--lint PATH]  (default: ../../tools/fannet_lint.py)
"""

from __future__ import annotations

import argparse
import pathlib
import re
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent

#: fixture file -> (extra linter args, expected set of rule IDs)
CASES: dict[str, tuple[list[str], set[str]]] = {
    "ok_unordered_lookup.cpp": ([], set()),
    "bad_unordered_iter.cpp": ([], {"unordered-iter"}),
    "ok_clock_wrapped.cpp": ([], set()),
    "bad_raw_clock.cpp": ([], {"raw-clock"}),
    "ok_rng_wrapped.cpp": ([], set()),
    "bad_raw_rng.cpp": ([], {"raw-rng"}),
    "ok_float_waived.cpp": (["--exact"], set()),
    "bad_float_exact.cpp": (["--exact"], {"float-in-exact"}),
    "ok_file_doc.hpp": ([], set()),
    "bad_missing_file_doc.hpp": ([], {"missing-file-doc"}),
    "bad_unjustified_waiver.cpp": ([], {"unjustified-waiver", "raw-clock"}),
}

_RULE_RE = re.compile(r"\[([a-z-]+)\]")


def run_case(lint: pathlib.Path, fixture: str, extra: list[str],
             expected: set[str]) -> list[str]:
    """Returns a list of failure descriptions (empty = pass)."""
    proc = subprocess.run(
        [sys.executable, str(lint), "--root", str(HERE), *extra, fixture],
        cwd=HERE, capture_output=True, text=True, check=False)
    reported = set(_RULE_RE.findall(proc.stdout))
    failures = []
    if reported != expected:
        failures.append(f"{fixture}: expected rules {sorted(expected) or '{}'}"
                        f", linter reported {sorted(reported) or '{}'}")
    want_exit = 1 if expected else 0
    if proc.returncode != want_exit:
        failures.append(f"{fixture}: expected exit {want_exit}, "
                        f"got {proc.returncode}\nstderr: {proc.stderr}")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--lint",
                        default=str(HERE.parent.parent / "tools" /
                                    "fannet_lint.py"))
    args = parser.parse_args()
    lint = pathlib.Path(args.lint).resolve()
    if not lint.is_file():
        print(f"linter not found: {lint}", file=sys.stderr)
        return 2

    missing = sorted(set(CASES) - {p.name for p in HERE.iterdir()})
    if missing:
        print(f"fixtures missing on disk: {missing}", file=sys.stderr)
        return 2

    failures: list[str] = []
    for fixture, (extra, expected) in sorted(CASES.items()):
        failures.extend(run_case(lint, fixture, extra, expected))

    for f in failures:
        print("FAIL:", f)
    if failures:
        return 1
    print(f"OK: {len(CASES)} lint fixtures behaved as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
