// Fixture: direct clock reads — violates raw-clock.
#include <chrono>
#include <ctime>

long now_ticks() {
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

long wall_seconds() { return static_cast<long>(std::time(nullptr)); }
