// Fixture: unordered containers used for lookup only — clean.
#include <string>
#include <unordered_map>

int lookup(const std::unordered_map<int, int>& table, int key) {
  if (const auto it = table.find(key); it != table.end()) return it->second;
  return -1;
}

int local_lookup(int key) {
  std::unordered_map<int, int> memo;
  memo.emplace(key, key * 2);
  const auto it = memo.find(key);
  return it == memo.end() ? -1 : it->second;
}
