// Fixture: float at a conversion boundary with a justified waiver — clean
// even when scanned with --exact.
long long quantize(long long scale_raw) {
  // fannet-lint: allow(float-in-exact) conversion boundary in the fixture
  const double scaled = static_cast<double>(scale_raw) / 65536.0;
  return static_cast<long long>(scaled);
}

int integer_only(int a, int b) { return a * b + (a ^ b); }
