// Fixture: raw RNG primitives — violates raw-rng.
#include <cstdlib>
#include <random>

int roll() {
  std::random_device dev;
  std::mt19937 gen(dev());
  return static_cast<int>(gen() % 6) + rand() % 6;
}
