// Engine registry + cascade portfolio tests.  The central property: EVERY
// registered engine — including the cascade and the SMV-translation MC
// adapters — must be consistent with the enumeration oracle on randomized
// small networks and boxes:
//   - complete engines reproduce the oracle verdict exactly,
//   - sound-only engines may answer kUnknown but a kRobust certificate
//     implies the oracle found nothing,
//   - every returned witness actually flips the sample.
#include <gtest/gtest.h>

#include <algorithm>

#include "nn/network.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "verify/engine.hpp"
#include "verify/enumerate.hpp"

namespace fannet::verify {
namespace {

using util::i64;

Query make_query(const nn::QuantizedNetwork& net, std::vector<i64> x,
                 int label, int range, bool bias_node = false) {
  Query q;
  q.net = &net;
  q.x = std::move(x);
  q.true_label = label;
  q.box = NoiseBox::symmetric(q.x.size() + (bias_node ? 1 : 0), range);
  q.bias_node = bias_node;
  return q;
}

nn::QuantizedNetwork random_qnet(std::uint64_t seed, std::size_t inputs = 2,
                                 std::size_t hidden = 3) {
  const nn::Network net = nn::Network::random({inputs, hidden, 2}, seed);
  return nn::QuantizedNetwork::quantize(net, 100);
}

TEST(EngineRegistry, SeedsEveryBuiltinStrategy) {
  const std::vector<std::string> names = registry().names();
  for (const char* expected :
       {"bmc", "bnb", "cascade", "enumerate", "explicit-mc", "interval",
        "sat", "symbolic"}) {
    EXPECT_TRUE(registry().contains(expected)) << expected;
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end());
    EXPECT_EQ(registry().get(expected).name(), expected);
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));

  // Completeness flags drive the cascade's fallback logic.
  EXPECT_TRUE(engine("enumerate").complete());
  EXPECT_TRUE(engine("bnb").complete());
  EXPECT_TRUE(engine("cascade").complete());
  EXPECT_TRUE(engine("sat").complete());
  EXPECT_FALSE(engine("interval").complete());
  EXPECT_FALSE(engine("symbolic").complete());
}

TEST(EngineRegistry, UnknownNameThrowsWithKnownNames) {
  try {
    (void)registry().get("gpu-batch");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("gpu-batch"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bnb"), std::string::npos);
  }
}

TEST(EngineRegistry, RejectsDuplicatesAndNull) {
  EngineRegistry local;
  local.add(std::make_unique<CascadeEngine>());
  EXPECT_THROW(local.add(std::make_unique<CascadeEngine>()), InvalidArgument);
  EXPECT_THROW(local.add(nullptr), InvalidArgument);
}

TEST(Cascade, RequiresAtLeastOneStage) {
  EXPECT_THROW(CascadeEngine(std::vector<std::string>{}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// The oracle property over the whole registry.
// ---------------------------------------------------------------------------
class RegistryAgreement : public testing::TestWithParam<std::uint64_t> {};

TEST_P(RegistryAgreement, AllEnginesConsistentWithEnumerationOracle) {
  const std::uint64_t seed = GetParam();
  const nn::QuantizedNetwork net = random_qnet(seed);
  util::Rng rng(seed * 131 + 9);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<i64> x(2);
    for (auto& v : x) v = rng.uniform_int(1, 100);
    const int actual = net.classify_noised(x, {});
    // Mix in wrong-label queries so both verdicts appear.
    const int label = rng.bernoulli(0.3) ? 1 - actual : actual;
    const int range = static_cast<int>(rng.uniform_int(1, 2));
    const bool bias = rng.bernoulli(0.25);
    const Query q = make_query(net, x, label, range, bias);

    const VerifyResult truth = enumerate_find_first(q);
    for (const std::string& name : registry().names()) {
      const Engine& e = engine(name);
      const VerifyResult r = e.verify(q);
      if (e.complete()) {
        EXPECT_EQ(r.verdict, truth.verdict)
            << name << " seed=" << seed << " trial=" << trial;
      } else if (r.verdict == Verdict::kRobust) {
        EXPECT_EQ(truth.verdict, Verdict::kRobust)
            << name << " unsound! seed=" << seed << " trial=" << trial;
      }
      if (r.verdict == Verdict::kVulnerable) {
        ASSERT_TRUE(r.counterexample.has_value()) << name;
        std::vector<int> all = r.counterexample->deltas;
        if (bias) all.push_back(r.counterexample->bias_delta);
        EXPECT_NE(classify_under_noise(q, all), q.true_label)
            << name << " returned a witness that does not flip";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegistryAgreement,
                         testing::Range<std::uint64_t>(1, 9));

TEST(Cascade, AccumulatesWorkAcrossStages) {
  // A wrong-label query defeats the sound screens (the zero vector already
  // "flips"), so the cascade must fall through to B&B and report the
  // summed work of all stages that ran.
  const nn::QuantizedNetwork net = random_qnet(21);
  const std::vector<i64> x{40, 80};
  const int actual = net.classify_noised(x, {});
  const Query q = make_query(net, x, 1 - actual, 2);

  const VerifyResult cascade = engine("cascade").verify(q);
  EXPECT_EQ(cascade.verdict, Verdict::kVulnerable);

  const VerifyResult interval_only = engine("interval").verify(q);
  EXPECT_EQ(interval_only.verdict, Verdict::kUnknown);
  EXPECT_GE(cascade.work, interval_only.work);
}

TEST(Cascade, CustomStageListWorks) {
  const CascadeEngine skip_symbolic({"interval", "bnb"});
  ASSERT_EQ(skip_symbolic.stages().size(), 2u);
  const nn::QuantizedNetwork net = random_qnet(22);
  const std::vector<i64> x{25, 75};
  const int label = net.classify_noised(x, {});
  const Query q = make_query(net, x, label, 2);
  EXPECT_EQ(skip_symbolic.verify(q).verdict,
            enumerate_find_first(q).verdict);
}

}  // namespace
}  // namespace fannet::verify
