// In-process client harness for the fannet_serve integration tests and
// bench_serve: a TestServer that binds an ephemeral loopback port with a
// test-tuned configuration, a ServeClient speaking the length-prefixed JSON
// protocol with a hard receive deadline (a wedged server fails a test, it
// never hangs the suite), and fault-injection entry points — torn frames,
// partial prefix writes, abrupt RST closes — so the fuzz and race suites
// attack the same code path production clients use.
//
// The model fleet is built once per test binary (the case-study pipeline
// trains a network; doing that per test would dominate suite wall time) and
// copied into each TestServer.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/casestudy.hpp"
#include "core/fannet.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/stopwatch.hpp"
#include "verify/query_cache.hpp"

namespace fannet::serve::harness {

/// The small-cohort case study, built once per test binary.
inline const core::CaseStudy& shared_case_study() {
  static const core::CaseStudy study =
      core::build_case_study(core::small_case_study_config());
  return study;
}

/// A fresh copy of the one-model test fleet (name "casestudy", same key the
/// daemon registers), backed by the shared case study.
inline std::vector<ServeModel> test_fleet() {
  const core::CaseStudy& study = shared_case_study();
  std::vector<ServeModel> fleet;
  fleet.push_back(ServeModel{.name = "casestudy",
                             .net = study.qnet,
                             .inputs = study.test_x,
                             .labels = study.test_y});
  return fleet;
}

/// A correctly-classified test sample (P2 queries against it are meaningful
/// for every range) — index into shared_case_study().test_x.
inline std::size_t good_sample_index() {
  static const std::size_t index = [] {
    const core::CaseStudy& study = shared_case_study();
    const core::Fannet fannet(study.qnet);
    const auto bad = fannet.validate_p1(study.test_x, study.test_y);
    for (std::size_t s = 0; s < study.test_x.rows(); ++s) {
      bool is_bad = false;
      for (const std::size_t b : bad) is_bad = is_bad || (b == s);
      if (!is_bad) return s;
    }
    return std::size_t{0};
  }();
  return index;
}

/// An in-process server on an ephemeral port with test-tuned defaults:
/// small worker pool, tight task-step granularity (fast cancel/deadline
/// latency), its own QueryCache.  Construction starts the server; the
/// destructor drains it, so a test that throws still joins every thread.
class TestServer {
 public:
  explicit TestServer(ServeOptions options = test_options())
      : cache_(options.cache == nullptr
                   ? std::make_unique<verify::QueryCache>()
                   : nullptr) {
    if (options.cache == nullptr) options.cache = cache_.get();
    server_ = std::make_unique<Server>(test_fleet(), options);
    server_->start();
  }

  /// The defaults every suite shares; tweak fields before passing to the
  /// constructor for saturation / deadline / no-cache scenarios.
  static ServeOptions test_options() {
    ServeOptions options;
    options.port = 0;        // ephemeral
    options.threads = 4;
    options.step_work = 1024;  // tight cancel/deadline latency
    options.stall_ms = 2000;
    return options;
  }

  [[nodiscard]] std::uint16_t port() const { return server_->port(); }
  [[nodiscard]] Server& server() { return *server_; }
  [[nodiscard]] ServerStats stats() const { return server_->stats(); }
  void stop() { server_->stop(); }

 private:
  std::unique_ptr<verify::QueryCache> cache_;
  std::unique_ptr<Server> server_;
};

/// One client connection to a loopback port.  Every receive is bounded by
/// `recv_timeout_ms`; a server that stops responding turns into a test
/// failure (std::nullopt), never a hung suite.
class ServeClient {
 public:
  explicit ServeClient(std::uint16_t port,
                       std::uint64_t recv_timeout_ms = 30000)
      : timeout_ms_(recv_timeout_ms) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    // Short kernel timeout so recv_exact can poll its overall deadline.
    timeval tv{};
    tv.tv_usec = 100 * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~ServeClient() { close(); }

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ServeClient(ServeClient&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)), timeout_ms_(other.timeout_ms_) {}

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  // --- send side ------------------------------------------------------------

  /// One well-formed frame (4-byte big-endian length + payload).
  [[nodiscard]] bool send_frame(std::string_view payload) {
    return fd_ >= 0 && write_frame(fd_, payload);
  }

  /// Raw bytes, no framing — the fault-injection primitive.
  [[nodiscard]] bool send_raw(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// A bare length prefix claiming `claimed` payload bytes (send fewer — or
  /// none — afterwards to tear the frame).
  [[nodiscard]] bool send_prefix(std::uint32_t claimed) {
    unsigned char prefix[4] = {
        static_cast<unsigned char>(claimed >> 24),
        static_cast<unsigned char>(claimed >> 16),
        static_cast<unsigned char>(claimed >> 8),
        static_cast<unsigned char>(claimed)};
    return send_raw(std::string_view(reinterpret_cast<const char*>(prefix), 4));
  }

  /// Half-close: no more requests, but responses still flow back.
  void shutdown_write() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
  }

  /// Graceful close (FIN).
  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  /// Abrupt close (RST via zero-linger) — the "client process died" fault.
  void close_abrupt() {
    if (fd_ >= 0) {
      linger lg{};
      lg.l_onoff = 1;
      lg.l_linger = 0;
      ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
      ::close(fd_);
      fd_ = -1;
    }
  }

  // --- receive side ---------------------------------------------------------

  /// One frame payload, or nullopt on EOF / connection error / overall
  /// deadline (`recv_timeout_ms`).
  [[nodiscard]] std::optional<std::string> recv_payload() {
    util::Stopwatch watch;
    unsigned char prefix[4];
    if (!recv_exact(prefix, 4, watch)) return std::nullopt;
    const std::uint32_t length = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                                 (static_cast<std::uint32_t>(prefix[1]) << 16) |
                                 (static_cast<std::uint32_t>(prefix[2]) << 8) |
                                 static_cast<std::uint32_t>(prefix[3]);
    if (length == 0 || length > kDefaultMaxFrameBytes) return std::nullopt;
    std::string payload(length, '\0');
    if (!recv_exact(payload.data(), length, watch)) return std::nullopt;
    return payload;
  }

  /// One frame parsed as JSON; nullopt on close/timeout/non-JSON.
  [[nodiscard]] std::optional<Json> recv_json() {
    const std::optional<std::string> payload = recv_payload();
    if (!payload) return std::nullopt;
    try {
      return parse_json(*payload);
    } catch (...) {
      return std::nullopt;
    }
  }

  /// All frames the server emits for one request: any number of `progress`
  /// frames, then the final `result` / `error` / `pong` frame.
  struct Reply {
    std::vector<Json> progress;
    std::optional<Json> final;  ///< nullopt: closed/timed out mid-request

    [[nodiscard]] std::string final_type() const {
      if (!final) return "";
      const Json* type = final->find("type");
      return type != nullptr && type->is_string() ? type->as_string() : "";
    }
    [[nodiscard]] std::string error_code() const {
      if (!final) return "";
      const Json* code = final->find("code");
      return code != nullptr && code->is_string() ? code->as_string() : "";
    }
  };

  /// Sends one request frame and collects its reply.
  [[nodiscard]] Reply call(std::string_view request) {
    Reply reply;
    if (!send_frame(request)) return reply;
    return collect();
  }

  /// Collects frames for an already-sent request.
  [[nodiscard]] Reply collect() {
    Reply reply;
    for (;;) {
      std::optional<Json> frame = recv_json();
      if (!frame) return reply;
      const Json* type = frame->find("type");
      if (type != nullptr && type->is_string() &&
          type->as_string() == "progress") {
        reply.progress.push_back(*std::move(frame));
        continue;
      }
      reply.final = *std::move(frame);
      return reply;
    }
  }

 private:
  [[nodiscard]] bool recv_exact(void* buffer, std::size_t want,
                                const util::Stopwatch& watch) {
    std::size_t got = 0;
    while (got < want) {
      const ssize_t n = ::recv(fd_, static_cast<char*>(buffer) + got,
                               want - got, 0);
      if (n > 0) {
        got += static_cast<std::size_t>(n);
        continue;
      }
      if (n == 0) return false;  // EOF
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (watch.millis() > static_cast<double>(timeout_ms_)) return false;
        continue;
      }
      return false;
    }
    return true;
  }

  int fd_ = -1;
  std::uint64_t timeout_ms_;
};

// --- request builders -------------------------------------------------------

inline Json int_array(const std::vector<util::i64>& values) {
  Json array = Json::array();
  for (const util::i64 v : values) array.push_back(Json::integer(v));
  return array;
}

/// Skeleton all builders share: {"id":id,"type":type,"model":"casestudy"}.
inline Json request_base(std::uint64_t id, std::string_view type) {
  Json request = Json::object();
  request.set("id", Json::integer(static_cast<std::int64_t>(id)));
  request.set("type", Json::string(std::string(type)));
  request.set("model", Json::string("casestudy"));
  return request;
}

inline Json box_json(int range) {
  Json box = Json::object();
  box.set("range", Json::integer(range));
  return box;
}

inline std::string verify_request(std::uint64_t id,
                                  const std::vector<util::i64>& x, int label,
                                  int range, std::string_view engine = "",
                                  std::uint64_t deadline_ms = 0) {
  Json request = request_base(id, "verify");
  request.set("x", int_array(x));
  request.set("true_label", Json::integer(label));
  request.set("box", box_json(range));
  if (!engine.empty()) request.set("engine", Json::string(std::string(engine)));
  if (deadline_ms != 0) {
    request.set("deadline_ms",
                Json::integer(static_cast<std::int64_t>(deadline_ms)));
  }
  return request.dump();
}

inline std::string batch_request(std::uint64_t id,
                                 const std::vector<util::i64>& x, int label,
                                 const std::vector<int>& ranges,
                                 std::size_t progress_every = 0,
                                 std::string_view engine = "",
                                 std::uint64_t deadline_ms = 0) {
  Json request = request_base(id, "batch");
  request.set("x", int_array(x));
  request.set("true_label", Json::integer(label));
  Json items = Json::array();
  for (const int range : ranges) items.push_back(box_json(range));
  request.set("items", std::move(items));
  if (progress_every != 0) {
    request.set("progress_every",
                Json::integer(static_cast<std::int64_t>(progress_every)));
  }
  if (!engine.empty()) request.set("engine", Json::string(std::string(engine)));
  if (deadline_ms != 0) {
    request.set("deadline_ms",
                Json::integer(static_cast<std::int64_t>(deadline_ms)));
  }
  return request.dump();
}

inline std::string simple_request(std::uint64_t id, std::string_view type) {
  Json request = Json::object();
  request.set("id", Json::integer(static_cast<std::int64_t>(id)));
  request.set("type", Json::string(std::string(type)));
  return request.dump();
}

/// The base input of the canonical correctly-classified sample.
inline std::vector<util::i64> good_sample_x() {
  const core::CaseStudy& study = shared_case_study();
  const auto row = study.test_x.row(good_sample_index());
  return {row.begin(), row.end()};
}

inline int good_sample_label() {
  return shared_case_study().test_y[good_sample_index()];
}

}  // namespace fannet::serve::harness
