// Unit + cross-engine tests for the FANNet core: Behavior Extraction (the
// SMV translation), the four P2 engines' agreement, tolerance analysis,
// corpus extraction, and the bias/sensitivity/boundary analyses.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/analysis.hpp"
#include "core/casestudy.hpp"
#include "core/fannet.hpp"
#include "core/report.hpp"
#include "core/translate.hpp"
#include "mc/explicit.hpp"
#include "smv/parser.hpp"
#include "smv/printer.hpp"
#include "util/rng.hpp"

namespace fannet::core {
namespace {

using util::i64;
using verify::NoiseBox;
using verify::Verdict;

nn::QuantizedNetwork random_qnet(std::uint64_t seed, std::size_t inputs = 3,
                                 std::size_t hidden = 5) {
  const nn::Network net = nn::Network::random({inputs, hidden, 2}, seed);
  return nn::QuantizedNetwork::quantize(net, 100);
}

verify::Query make_query(const nn::QuantizedNetwork& net, std::vector<i64> x,
                         int label, int range, bool bias_node = false) {
  verify::Query q;
  q.net = &net;
  q.x = std::move(x);
  q.true_label = label;
  q.box = NoiseBox::symmetric(q.x.size() + (bias_node ? 1 : 0), range);
  q.bias_node = bias_node;
  return q;
}

// ---------------------------------------------------------------------------
// Behavior extraction / translation
// ---------------------------------------------------------------------------
TEST(Translate, P1HoldsIffClassificationCorrect) {
  const nn::QuantizedNetwork net = random_qnet(11);
  const std::vector<i64> x{40, 60, 80};
  const int actual = net.classify_noised(x, {});

  for (const int claimed : {actual, 1 - actual}) {
    const verify::Query q = make_query(net, x, claimed, 1);
    const Translation t = translate_sample(q, /*with_noise=*/false);
    const mc::ExplicitChecker checker(t.module);
    const auto r = checker.check_spec(t.module.specs().front());
    EXPECT_EQ(r.holds, claimed == actual);
  }
}

TEST(Translate, SmvDefinesMatchExactEvaluation) {
  // The translated DEFINE chain evaluated by the SMV evaluator must equal
  // the quantized network's integer pre-activations, for several noise
  // vectors — translation is exact, not approximate.
  const nn::QuantizedNetwork net = random_qnet(12);
  const std::vector<i64> x{15, 45, 95};
  const verify::Query q = make_query(net, x, 0, 3);
  const Translation t = translate_sample(q);
  const smv::Evaluator ev(t.module);
  util::Rng rng(5);

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> d(3);
    for (auto& v : d) v = static_cast<int>(rng.uniform_int(-3, 3));
    smv::State state{/*phase=*/1, d[0], d[1], d[2]};
    const auto X = nn::QuantizedNetwork::noised_inputs(x, d);
    const auto outs = net.eval_output(X);
    // Output defines are named o1, o2.
    for (std::size_t k = 0; k < outs.size(); ++k) {
      const std::string name = "o" + std::to_string(k + 1);
      bool found = false;
      for (std::size_t di = 0; di < t.module.defines().size(); ++di) {
        if (t.module.defines()[di].first == name) {
          EXPECT_EQ(ev.eval(t.module.defines()[di].second, state), outs[k]);
          found = true;
        }
      }
      EXPECT_TRUE(found) << name;
    }
  }
}

TEST(Translate, PrintedModelParsesBack) {
  const nn::QuantizedNetwork net = random_qnet(13);
  const verify::Query q = make_query(net, {10, 20, 30}, 0, 2);
  const Translation t = translate_sample(q);
  const std::string text = smv::print_module(t.module);
  const smv::Module back = smv::parse_module(text);
  EXPECT_EQ(back.vars().size(), t.module.vars().size());
  EXPECT_EQ(back.defines().size(), t.module.defines().size());
  // Spec-name comments are not part of the AST, so compare the print
  // fixpoint: print(parse(print(parse(text)))) == print(parse(text)).
  const std::string second = smv::print_module(back);
  EXPECT_EQ(smv::print_module(smv::parse_module(second)), second);
}

TEST(Translate, BiasNodeAddsNoiseDimension) {
  const nn::QuantizedNetwork net = random_qnet(14);
  const verify::Query q = make_query(net, {10, 20, 30}, 0, 2, /*bias=*/true);
  const Translation t = translate_sample(q);
  EXPECT_EQ(t.layout.delta_vars.size(), 4u);
  EXPECT_EQ(t.module.vars()[t.layout.delta_vars[3]].name, "d_bias");
}

TEST(Translate, DecodeCounterexampleFlipsLabel) {
  const nn::QuantizedNetwork net = random_qnet(15);
  const std::vector<i64> x{30, 60, 90};
  // Wrong label on purpose: the zero-noise state is already a violation.
  const verify::Query q = make_query(net, x, 1 - net.classify_noised(x, {}), 2);
  const Translation t = translate_sample(q);
  const mc::ExplicitChecker checker(t.module);
  const auto r = checker.check_spec(t.module.specs().front());
  ASSERT_FALSE(r.holds);
  const verify::Counterexample cex =
      decode_counterexample(t, q, r.counterexample.states.back());
  EXPECT_NE(cex.mis_label, q.true_label);
}

// ---------------------------------------------------------------------------
// Engine agreement (the paper's pipeline answered four ways)
// ---------------------------------------------------------------------------
class AllEngines : public testing::TestWithParam<std::uint64_t> {};

TEST_P(AllEngines, SameVerdictOnP2) {
  const std::uint64_t seed = GetParam();
  const nn::QuantizedNetwork net = random_qnet(seed, 2, 4);
  const Fannet fannet(net);
  util::Rng rng(seed * 1001);
  for (int trial = 0; trial < 3; ++trial) {
    const std::vector<i64> x{rng.uniform_int(1, 100), rng.uniform_int(1, 100)};
    const int label = net.classify_noised(x, {});
    const int range = static_cast<int>(rng.uniform_int(1, 3));
    const auto truth =
        fannet.check_sample(x, label, range, Engine::kEnumerate).verdict;
    EXPECT_EQ(fannet.check_sample(x, label, range, Engine::kBnB).verdict, truth);
    EXPECT_EQ(fannet.check_sample(x, label, range, Engine::kCascade).verdict,
              truth);
    EXPECT_EQ(fannet.check_sample(x, label, range, Engine::kExplicitMc).verdict,
              truth);
    EXPECT_EQ(fannet.check_sample(x, label, range, Engine::kBmc).verdict, truth)
        << "seed=" << seed << " trial=" << trial << " range=" << range;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllEngines, testing::Range<std::uint64_t>(1, 9));

TEST(Engines, CounterexamplesAreValidWitnesses) {
  const nn::QuantizedNetwork net = random_qnet(20, 2, 4);
  const Fannet fannet(net);
  const std::vector<i64> x{35, 70};
  const int wrong = 1 - net.classify_noised(x, {});
  for (const Engine& engine : {Engine::kEnumerate, Engine::kBnB,
                               Engine::kCascade, Engine::kExplicitMc,
                               Engine::kBmc}) {
    const auto r = fannet.check_sample(x, wrong, 2, engine);
    ASSERT_EQ(r.verdict, Verdict::kVulnerable) << to_string(engine);
    ASSERT_TRUE(r.counterexample.has_value());
    EXPECT_NE(net.classify_noised(x, r.counterexample->deltas,
                                  r.counterexample->bias_delta),
              wrong)
        << to_string(engine);
  }
}

// ---------------------------------------------------------------------------
// Tolerance analysis
// ---------------------------------------------------------------------------
TEST(Tolerance, BinaryAndLinearDescentAgree) {
  const nn::QuantizedNetwork net = random_qnet(21, 2, 4);
  const Fannet fannet(net);
  la::Matrix<i64> inputs(3, 2);
  inputs(0, 0) = 20; inputs(0, 1) = 80;
  inputs(1, 0) = 55; inputs(1, 1) = 45;
  inputs(2, 0) = 90; inputs(2, 1) = 10;
  std::vector<int> labels(3);
  for (std::size_t s = 0; s < 3; ++s) {
    labels[s] = net.classify_noised(inputs.row(s), {});
  }
  ToleranceConfig binary;
  binary.start_range = 30;
  ToleranceConfig linear = binary;
  linear.descent = ToleranceConfig::Descent::kLinear;

  const ToleranceReport rb = fannet.analyze_tolerance(inputs, labels, binary);
  const ToleranceReport rl = fannet.analyze_tolerance(inputs, labels, linear);
  EXPECT_EQ(rb.noise_tolerance, rl.noise_tolerance);
  ASSERT_EQ(rb.per_sample.size(), rl.per_sample.size());
  for (std::size_t s = 0; s < rb.per_sample.size(); ++s) {
    EXPECT_EQ(rb.per_sample[s].min_flip_range, rl.per_sample[s].min_flip_range);
  }
}

TEST(Tolerance, ParallelReportMatchesSerial) {
  // The scheduler fan-out must not change anything: tolerance, per-sample
  // ranges, witnesses and the query count are bit-identical for 1 vs N
  // worker threads.
  const nn::QuantizedNetwork net = random_qnet(31, 3, 5);
  const Fannet fannet(net);
  la::Matrix<i64> inputs(4, 3);
  util::Rng rng(404);
  std::vector<int> labels(4);
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::size_t c = 0; c < 3; ++c) {
      inputs(s, c) = rng.uniform_int(1, 100);
    }
    labels[s] = net.classify_noised(inputs.row(s), {});
  }
  ToleranceConfig serial;
  serial.start_range = 30;
  serial.threads = 1;
  ToleranceConfig parallel = serial;
  parallel.threads = 8;

  const ToleranceReport a = fannet.analyze_tolerance(inputs, labels, serial);
  const ToleranceReport b = fannet.analyze_tolerance(inputs, labels, parallel);
  EXPECT_EQ(a.noise_tolerance, b.noise_tolerance);
  EXPECT_EQ(a.queries, b.queries);
  ASSERT_EQ(a.per_sample.size(), b.per_sample.size());
  for (std::size_t s = 0; s < a.per_sample.size(); ++s) {
    EXPECT_EQ(a.per_sample[s].min_flip_range, b.per_sample[s].min_flip_range);
    EXPECT_EQ(a.per_sample[s].witness, b.per_sample[s].witness) << s;
  }
}

TEST(Sensitivity, ParallelReportMatchesSerial) {
  const nn::QuantizedNetwork net = random_qnet(32, 3, 5);
  const Fannet fannet(net);
  la::Matrix<i64> inputs(3, 3);
  util::Rng rng(505);
  std::vector<int> labels(3);
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t c = 0; c < 3; ++c) {
      inputs(s, c) = rng.uniform_int(1, 100);
    }
    labels[s] = net.classify_noised(inputs.row(s), {});
  }
  SensitivityConfig serial;
  serial.threads = 1;
  SensitivityConfig parallel;
  parallel.threads = 8;
  const auto a = analyze_sensitivity(fannet, inputs, labels, 8, {}, serial);
  const auto b = analyze_sensitivity(fannet, inputs, labels, 8, {}, parallel);
  EXPECT_EQ(a.positive_possible, b.positive_possible);
  EXPECT_EQ(a.negative_possible, b.negative_possible);
  EXPECT_EQ(a.solo_flip_range, b.solo_flip_range);
}

TEST(Tolerance, MinFlipRangeIsTight) {
  // At min_flip_range there IS a counterexample; at min_flip_range-1 there
  // is none — the definition of the paper's (delta x)_min.
  const nn::QuantizedNetwork net = random_qnet(22, 2, 4);
  const Fannet fannet(net);
  la::Matrix<i64> inputs(1, 2);
  inputs(0, 0) = 48; inputs(0, 1) = 52;
  const std::vector<int> labels{net.classify_noised(inputs.row(0), {})};
  ToleranceConfig config;
  config.start_range = 50;
  const ToleranceReport r = fannet.analyze_tolerance(inputs, labels, config);
  const auto& st = r.per_sample.front();
  if (st.min_flip_range.has_value()) {
    const int mfr = *st.min_flip_range;
    EXPECT_EQ(fannet.check_sample(inputs.row(0), labels[0], mfr, Engine::kBnB)
                  .verdict,
              Verdict::kVulnerable);
    if (mfr > 1) {
      EXPECT_EQ(
          fannet.check_sample(inputs.row(0), labels[0], mfr - 1, Engine::kBnB)
              .verdict,
          Verdict::kRobust);
    }
  }
}

TEST(Tolerance, MisclassifiedSamplesExcluded) {
  const nn::QuantizedNetwork net = random_qnet(23, 2, 4);
  const Fannet fannet(net);
  la::Matrix<i64> inputs(1, 2);
  inputs(0, 0) = 50; inputs(0, 1) = 50;
  const int actual = net.classify_noised(inputs.row(0), {});
  const std::vector<int> labels{1 - actual};  // wrong on purpose
  const ToleranceReport r = fannet.analyze_tolerance(inputs, labels, {});
  EXPECT_FALSE(r.per_sample.front().correct_without_noise);
  EXPECT_FALSE(r.per_sample.front().min_flip_range.has_value());
  EXPECT_EQ(fannet.validate_p1(inputs, labels).size(), 1u);
}

// ---------------------------------------------------------------------------
// Corpus extraction (P3)
// ---------------------------------------------------------------------------
TEST(Corpus, EntriesFlipAndAreUnique) {
  const nn::QuantizedNetwork net = random_qnet(24, 2, 4);
  const Fannet fannet(net);
  la::Matrix<i64> inputs(2, 2);
  inputs(0, 0) = 49; inputs(0, 1) = 51;
  inputs(1, 0) = 10; inputs(1, 1) = 95;
  std::vector<int> labels(2);
  for (std::size_t s = 0; s < 2; ++s) {
    labels[s] = net.classify_noised(inputs.row(s), {});
  }
  const auto corpus = fannet.extract_corpus(inputs, labels, 15, 500);
  std::set<std::pair<std::size_t, std::vector<int>>> seen;
  for (const CorpusEntry& e : corpus) {
    EXPECT_NE(net.classify_noised(inputs.row(e.sample), e.cex.deltas),
              e.true_label);
    EXPECT_TRUE(seen.insert({e.sample, e.cex.deltas}).second)
        << "duplicate noise vector in corpus";
  }
}

// ---------------------------------------------------------------------------
// Bias / sensitivity / boundary analyses
// ---------------------------------------------------------------------------
TEST(Bias, DirectionHistogramAndMajority) {
  std::vector<CorpusEntry> corpus;
  verify::Counterexample to1;
  to1.mis_label = 1;
  verify::Counterexample to0;
  to0.mis_label = 0;
  for (int i = 0; i < 7; ++i) corpus.push_back({0, 0, to1});
  for (int i = 0; i < 3; ++i) corpus.push_back({1, 1, to0});
  const std::vector<int> train{1, 1, 1, 0};
  const BiasReport r = analyze_bias(corpus, 2, train);
  EXPECT_EQ(r.direction[0][1], 7u);
  EXPECT_EQ(r.direction[1][0], 3u);
  EXPECT_EQ(r.bias_toward, 1);
  EXPECT_NEAR(r.bias_fraction, 0.7, 1e-12);
  EXPECT_EQ(r.train_majority_label, 1);
  EXPECT_NEAR(r.train_majority_fraction, 0.75, 1e-12);
}

TEST(Bias, BadLabelsThrow) {
  std::vector<CorpusEntry> corpus;
  verify::Counterexample cex;
  cex.mis_label = 5;
  corpus.push_back({0, 0, cex});
  EXPECT_THROW(analyze_bias(corpus, 2, {0, 1}), InvalidArgument);
  EXPECT_THROW(analyze_bias({}, 2, {0, 7}), InvalidArgument);
}

TEST(Sensitivity, DeadInputNodeIsInsensitive) {
  // Node 1's weights are zero everywhere: noise on it can never flip, so
  // positive/negative existence must be false and solo range empty.
  nn::Layer hidden;
  hidden.weights = la::MatrixD::from_rows({{1.0, 0.0}, {-0.5, 0.0}});
  hidden.bias = {0.1, 0.2};
  hidden.activation = nn::Activation::kReLU;
  nn::Layer out;
  out.weights = la::MatrixD::from_rows({{1.0, -1.0}, {-1.0, 1.0}});
  out.bias = {0.0, 0.05};
  out.activation = nn::Activation::kLinear;
  const nn::QuantizedNetwork net =
      nn::QuantizedNetwork::quantize(nn::Network({hidden, out}), 100);
  const Fannet fannet(net);

  la::Matrix<i64> inputs(1, 2);
  inputs(0, 0) = 60; inputs(0, 1) = 40;
  const std::vector<int> labels{net.classify_noised(inputs.row(0), {})};
  const NodeSensitivityReport r =
      analyze_sensitivity(fannet, inputs, labels, 40, {});
  EXPECT_FALSE(r.solo_flip_range[1].has_value());
  // Node 0 drives everything; if any direction flips it must be node 0.
  if (r.positive_possible[1]) {
    ADD_FAILURE() << "dead node reported as sensitive";
  }
}

TEST(Sensitivity, CorpusHistogramsCount) {
  std::vector<CorpusEntry> corpus;
  verify::Counterexample a;
  a.deltas = {3, -2};
  a.mis_label = 1;
  verify::Counterexample b;
  b.deltas = {0, -5};
  b.mis_label = 1;
  corpus.push_back({0, 0, a});
  corpus.push_back({0, 0, b});

  const nn::QuantizedNetwork net = random_qnet(25, 2, 4);
  const Fannet fannet(net);
  la::Matrix<i64> inputs(0, 2);  // no samples: only histograms computed
  const NodeSensitivityReport r =
      analyze_sensitivity(fannet, inputs, {}, 10, corpus);
  EXPECT_EQ(r.positive[0], 1u);
  EXPECT_EQ(r.zero[0], 1u);
  EXPECT_EQ(r.negative[1], 2u);
  EXPECT_EQ(r.min_delta[1], -5);
  EXPECT_EQ(r.max_delta[0], 3);
}

TEST(Boundary, HistogramBucketsAndSurvivors) {
  ToleranceReport tr;
  SampleTolerance a;
  a.sample = 0; a.correct_without_noise = true; a.min_flip_range = 3;
  SampleTolerance b;
  b.sample = 1; b.correct_without_noise = true; b.min_flip_range = 12;
  SampleTolerance c;
  c.sample = 2; c.correct_without_noise = true;  // survivor
  SampleTolerance d;
  d.sample = 3; d.correct_without_noise = false;  // excluded entirely
  tr.per_sample = {a, b, c, d};
  const BoundaryReport r = analyze_boundary(tr, 5, 50);
  EXPECT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.histogram[0], 1u);   // 1..5
  EXPECT_EQ(r.histogram[2], 1u);   // 11..15
  EXPECT_EQ(r.survivors, 1u);
}

// ---------------------------------------------------------------------------
// Report formatting smoke checks
// ---------------------------------------------------------------------------
TEST(Report, TextTableAlignsAndValidates) {
  TextTable t({"a", "long-header"});
  t.add_row({"1", "2"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_EQ(t.to_csv().size(), 2u);
}

TEST(Report, FormattersMentionKeyNumbers) {
  ToleranceReport tr;
  tr.noise_tolerance = 11;
  SampleTolerance st;
  st.sample = 0;
  st.correct_without_noise = true;
  st.min_flip_range = 12;
  tr.per_sample.push_back(st);
  EXPECT_NE(format_tolerance(tr).find("+/-11%"), std::string::npos);

  const BiasReport br = analyze_bias({}, 2, {1, 1, 1, 0});
  EXPECT_NE(format_bias(br).find("75%"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Case study (small cohort: full pipeline through training)
// ---------------------------------------------------------------------------
TEST(CaseStudy, SmallPipelineProducesUsableModel) {
  const CaseStudy cs = build_case_study(small_case_study_config());
  EXPECT_EQ(cs.train_y.size(), 38u);
  EXPECT_EQ(cs.test_y.size(), 34u);
  EXPECT_EQ(cs.selected_genes.size(), 5u);
  EXPECT_EQ(cs.network.input_dim(), 5u);
  EXPECT_EQ(cs.qnet.output_dim(), 2u);
  EXPECT_GE(cs.train_accuracy, 0.9);
  EXPECT_GE(cs.test_accuracy, 0.75);
  // Integer inputs live on the [1,100] grid.
  for (std::size_t s = 0; s < cs.train_x.rows(); ++s) {
    for (std::size_t c = 0; c < cs.train_x.cols(); ++c) {
      EXPECT_GE(cs.train_x(s, c), 1);
      EXPECT_LE(cs.train_x(s, c), 100);
    }
  }
  // ~70% of training samples are L1 (the paper's bias source).
  const auto l1 = static_cast<double>(
      std::count(cs.train_y.begin(), cs.train_y.end(), 1));
  EXPECT_NEAR(l1 / static_cast<double>(cs.train_y.size()), 0.71, 0.02);
}

TEST(CaseStudy, DeterministicForFixedConfig) {
  const CaseStudy a = build_case_study(small_case_study_config());
  const CaseStudy b = build_case_study(small_case_study_config());
  EXPECT_EQ(a.selected_genes, b.selected_genes);
  EXPECT_EQ(a.network.to_text(), b.network.to_text());
}

}  // namespace
}  // namespace fannet::core
