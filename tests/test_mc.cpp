// Unit + cross-engine tests for the model-checking backends: explicit-state
// reachability (the Fig.-3 counters), SAT-based BMC / k-induction, and
// BDD-based symbolic reachability.  A family of small SMV models is checked
// by all three engines, which must agree.
#include <gtest/gtest.h>

#include "core/translate.hpp"
#include "mc/bddmc.hpp"
#include "mc/bmc.hpp"
#include "mc/explicit.hpp"
#include "smv/parser.hpp"
#include "util/error.hpp"

namespace fannet::mc {
namespace {

using smv::Module;
using smv::parse_module;

/// Simple bounded counter: x counts 0..7 and wraps.
Module counter_module() {
  return parse_module(R"(
MODULE main
VAR x : 0..7;
ASSIGN
  init(x) := 0;
  next(x) := case x < 7 : x + 1; TRUE : 0; esac;
INVARSPEC x <= 7
INVARSPEC x < 5
)");
}

TEST(Explicit, CounterReachability) {
  const Module m = counter_module();
  const ExplicitChecker checker(m);
  const ReachabilityStats stats = checker.explore();
  EXPECT_EQ(stats.num_states, 8u);
  EXPECT_EQ(stats.num_transitions, 8u);  // deterministic ring
  EXPECT_EQ(stats.num_initial, 1u);
}

TEST(Explicit, InvariantHoldsAndFails) {
  const Module m = counter_module();
  const ExplicitChecker checker(m);
  EXPECT_TRUE(checker.check_spec(m.specs()[0]).holds);
  const InvariantResult r = checker.check_spec(m.specs()[1]);
  EXPECT_FALSE(r.holds);
  // BFS produces the shortest counterexample: 0,1,2,3,4,5.
  ASSERT_EQ(r.counterexample.states.size(), 6u);
  EXPECT_EQ(r.counterexample.states.front()[0], 0);
  EXPECT_EQ(r.counterexample.states.back()[0], 5);
}

TEST(Explicit, NondeterministicChoices) {
  const Module m = parse_module(R"(
MODULE main
VAR x : 0..3;
ASSIGN
  init(x) := {0, 1};
  next(x) := {x, 0};
)");
  const ExplicitChecker checker(m);
  EXPECT_EQ(checker.initial_states().size(), 2u);
  const auto succ = checker.successors({3});
  EXPECT_EQ(succ.size(), 2u);  // {3, 0}
  const auto self = checker.successors({0});
  EXPECT_EQ(self.size(), 1u);  // {0} deduplicated
}

TEST(Explicit, TransConstraintFiltersEdges) {
  const Module m = parse_module(R"(
MODULE main
VAR x : 0..3;
ASSIGN init(x) := 0;
TRANS next(x) = x + 1
)");
  // No ASSIGN next: the domain is filtered by TRANS to a single successor.
  const ExplicitChecker checker(m);
  const auto succ = checker.successors({1});
  ASSERT_EQ(succ.size(), 1u);
  EXPECT_EQ(succ[0][0], 2);
  // From 3, x+1 = 4 is outside the domain: no successors at all.
  EXPECT_TRUE(checker.successors({3}).empty());
}

TEST(Explicit, InvarConstraintPrunesStates) {
  const Module m = parse_module(R"(
MODULE main
VAR x : 0..9;
ASSIGN init(x) := {0,1,2,3,4,5,6,7,8,9};
INVAR x < 4
)");
  const ExplicitChecker checker(m);
  EXPECT_EQ(checker.initial_states().size(), 4u);
}

TEST(Explicit, DomainViolationThrows) {
  const Module m = parse_module(R"(
MODULE main
VAR x : 0..3;
ASSIGN init(x) := 0; next(x) := x + 1;
)");
  const ExplicitChecker checker(m);
  EXPECT_THROW(checker.successors({3}), InvalidArgument);
}

TEST(Explicit, StateCapEnforced) {
  const Module m = parse_module(R"(
MODULE main
VAR x : 0..1000;
ASSIGN init(x) := 0; next(x) := 0..1000;
)");
  ExplicitOptions options;
  options.max_states = 10;
  const ExplicitChecker checker(m, options);
  EXPECT_THROW((void)checker.explore(), ResourceLimit);
}

// ---------------------------------------------------------------------------
// Fig. 3: the paper's state/transition counts.
// ---------------------------------------------------------------------------
TEST(Fig3, LabelFsmHas3States6Transitions) {
  const Module m = core::make_fig3_label_fsm();
  const ExplicitChecker checker(m);
  const ReachabilityStats stats = checker.explore();
  EXPECT_EQ(stats.num_states, 3u);
  EXPECT_EQ(stats.num_transitions, 6u);
}

TEST(Fig3, NoiseFsmMatchesPaperAt1Percent) {
  // 6 input nodes (5 genes + bias), noise range [0,1]%: 65 states, 4160
  // transitions — the exact numbers in Fig. 3(c).
  const Module m = core::make_fig3_noise_fsm(6, 1);
  const ExplicitChecker checker(m);
  const ReachabilityStats stats = checker.explore();
  EXPECT_EQ(stats.num_states, 65u);
  EXPECT_EQ(stats.num_transitions, 4160u);
}

TEST(Fig3, NoiseFsmFollowsClosedForm) {
  for (const auto& [nodes, delta] :
       std::vector<std::pair<std::size_t, int>>{{2, 1}, {3, 1}, {2, 3}, {4, 2}}) {
    const Module m = core::make_fig3_noise_fsm(nodes, delta);
    const ExplicitChecker checker(m);
    const ReachabilityStats stats = checker.explore();
    std::uint64_t box = 1;
    for (std::size_t i = 0; i < nodes; ++i) {
      box *= static_cast<std::uint64_t>(delta + 1);
    }
    EXPECT_EQ(stats.num_states, 1 + box);
    EXPECT_EQ(stats.num_transitions, box + box * box);
  }
}

// ---------------------------------------------------------------------------
// BMC
// ---------------------------------------------------------------------------
TEST(Bmc, FindsShortestViolation) {
  const Module m = counter_module();
  BmcChecker checker(m);
  const BmcResult r = checker.check_invariant(m.specs()[1].expr, 10);
  EXPECT_EQ(r.verdict, sat::SolveResult::kSat);
  EXPECT_EQ(r.depth, 5);  // x reaches 5 after 5 steps
  ASSERT_EQ(r.counterexample.states.size(), 6u);
  EXPECT_EQ(r.counterexample.states.back()[0], 5);
  // The decoded trace must be a real path: consecutive +1 steps from 0.
  for (std::size_t i = 0; i < r.counterexample.states.size(); ++i) {
    EXPECT_EQ(r.counterexample.states[i][0], static_cast<smv::i64>(i));
  }
}

TEST(Bmc, BoundedHoldReportsUnsat) {
  const Module m = counter_module();
  BmcChecker checker(m);
  const BmcResult r = checker.check_invariant(m.specs()[1].expr, 3);
  EXPECT_EQ(r.verdict, sat::SolveResult::kUnsat);  // violation needs depth 5
}

TEST(Bmc, TrueInvariantStaysUnsat) {
  const Module m = counter_module();
  BmcChecker checker(m);
  const BmcResult r = checker.check_invariant(m.specs()[0].expr, 12);
  EXPECT_EQ(r.verdict, sat::SolveResult::kUnsat);
}

TEST(Bmc, KInductionProvesRangeInvariant) {
  const Module m = counter_module();
  BmcChecker checker(m);
  const InductionResult r = checker.prove_invariant(m.specs()[0].expr, 4);
  EXPECT_TRUE(r.proved);
  EXPECT_FALSE(r.violated);
}

TEST(Bmc, KInductionFindsViolation) {
  const Module m = counter_module();
  BmcChecker checker(m);
  const InductionResult r = checker.prove_invariant(m.specs()[1].expr, 8);
  EXPECT_TRUE(r.violated);
  EXPECT_FALSE(r.proved);
  EXPECT_EQ(r.counterexample.states.back()[0], 5);
}

TEST(Bmc, NondeterministicChoiceExplored) {
  const Module m = parse_module(R"(
MODULE main
VAR x : 0..7;
ASSIGN init(x) := 0; next(x) := {x, x + 1};
INVARSPEC x != 3
)");
  BmcChecker checker(m);
  const BmcResult r = checker.check_invariant(m.specs()[0].expr, 10);
  EXPECT_EQ(r.verdict, sat::SolveResult::kSat);
  EXPECT_EQ(r.depth, 3);
  EXPECT_EQ(r.counterexample.states.back()[0], 3);
}

// ---------------------------------------------------------------------------
// BDD engine + cross-engine agreement
// ---------------------------------------------------------------------------
TEST(BddMc, CounterReachableCountMatchesExplicit) {
  const Module m = counter_module();
  const BddChecker checker(m);
  const BddCheckResult r = checker.reachable_states();
  EXPECT_DOUBLE_EQ(r.reachable_states, 8.0);
}

TEST(BddMc, InvariantVerdictsMatchExplicit) {
  const Module m = counter_module();
  const BddChecker bddc(m);
  const ExplicitChecker expl(m);
  EXPECT_EQ(bddc.check_invariant(m.specs()[0].expr).holds,
            expl.check_spec(m.specs()[0]).holds);
  const BddCheckResult bad = bddc.check_invariant(m.specs()[1].expr);
  EXPECT_FALSE(bad.holds);
  ASSERT_TRUE(bad.violating_state.has_value());
  EXPECT_GE((*bad.violating_state)[0], 5);
}

TEST(BddMc, NodeLimitEnforced) {
  const Module m = core::make_fig3_noise_fsm(4, 3);
  BddOptions options;
  options.max_nodes = 50;
  const BddChecker checker(m, options);
  EXPECT_THROW(checker.reachable_states(), ResourceLimit);
}

/// Three engines on one nondeterministic model with INVAR + TRANS mix.
TEST(CrossEngine, AgreeOnMixedModel) {
  const Module m = parse_module(R"(
MODULE main
VAR x : 0..15; y : boolean;
ASSIGN
  init(x) := 0; init(y) := FALSE;
  next(x) := {x, x + 2};
INVAR x != 6
TRANS next(y) = (next(x) > x)
INVARSPEC !(x = 10 & y)
INVARSPEC x != 6
)");
  const ExplicitChecker expl(m);
  BmcChecker bmc(m);
  const BddChecker bdd(m);
  for (const auto& spec : m.specs()) {
    const bool expl_holds = expl.check_spec(spec).holds;
    const BmcResult b = bmc.check_invariant(spec.expr, 12);
    const bool bmc_holds = (b.verdict == sat::SolveResult::kUnsat);
    const bool bdd_holds = bdd.check_invariant(spec.expr).holds;
    EXPECT_EQ(expl_holds, bmc_holds);
    EXPECT_EQ(expl_holds, bdd_holds);
  }
}

TEST(CrossEngine, Fig3CountsViaBddSatCount) {
  // The BDD engine independently reproduces the Fig.-3(c) state count.
  const Module m = core::make_fig3_noise_fsm(6, 1);
  const BddChecker checker(m);
  const BddCheckResult r = checker.reachable_states();
  EXPECT_DOUBLE_EQ(r.reachable_states, 65.0);
}

}  // namespace
}  // namespace fannet::mc
