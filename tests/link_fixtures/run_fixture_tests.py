#!/usr/bin/env python3
"""Fixture tests for tools/check_links.py.

The `clean/` tree must pass; the `broken/` tree must fail reporting exactly
its three dead links — the missing file, the dead in-page anchor, and the
dead cross-file anchor.  The last two are regression coverage for the bug
where ``#fragment`` anchors were never validated at all.

Usage: run_fixture_tests.py [--checker PATH]
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent

EXPECTED_DEAD = {
    "index.md:3: (missing.md)",
    "index.md:4: (#no-such-heading)",
    "index.md:5: (other.md#no-such-section)",
}


def run(checker: pathlib.Path, tree: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(checker), str(HERE / tree)],
                          capture_output=True, text=True, check=False)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--checker",
                        default=str(HERE.parent.parent / "tools" /
                                    "check_links.py"))
    args = parser.parse_args()
    checker = pathlib.Path(args.checker).resolve()
    if not checker.is_file():
        print(f"checker not found: {checker}", file=sys.stderr)
        return 2

    failures = []

    clean = run(checker, "clean")
    if clean.returncode != 0:
        failures.append(f"clean tree should pass, exit {clean.returncode}:\n"
                        f"{clean.stdout}")

    broken = run(checker, "broken")
    if broken.returncode != 1:
        failures.append(f"broken tree should exit 1, got {broken.returncode}")
    reported = {line.removeprefix("dead link: ")
                for line in broken.stdout.splitlines()
                if line.startswith("dead link: ")}
    if reported != EXPECTED_DEAD:
        failures.append("broken tree: expected dead links "
                        f"{sorted(EXPECTED_DEAD)}, got {sorted(reported)}")

    for f in failures:
        print("FAIL:", f)
    if failures:
        return 1
    print("OK: link-checker fixtures behaved as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
