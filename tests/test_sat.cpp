// Unit + property tests for the CDCL solver.  The load-bearing test is the
// parameterized sweep cross-checking the solver against brute force on
// random 3-SAT instances around the phase transition.
#include <gtest/gtest.h>

#include "sat/dimacs.hpp"
#include "sat/drat.hpp"
#include "sat/solver.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fannet::sat {
namespace {

TEST(Lit, EncodingRoundTrip) {
  const Lit a(3, false);
  EXPECT_EQ(a.var(), 3);
  EXPECT_FALSE(a.negated());
  EXPECT_TRUE((~a).negated());
  EXPECT_EQ(~~a, a);
  EXPECT_EQ(a.to_string(), "4");
  EXPECT_EQ((~a).to_string(), "-4");
}

TEST(Solver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(Solver, SingleUnit) {
  Solver s;
  const Var v = s.new_var();
  EXPECT_TRUE(s.add_clause({Lit(v, false)}));
  EXPECT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(v));
}

TEST(Solver, ContradictoryUnitsUnsat) {
  Solver s;
  const Var v = s.new_var();
  EXPECT_TRUE(s.add_clause({Lit(v, false)}));
  EXPECT_FALSE(s.add_clause({Lit(v, true)}));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Solver, EmptyClauseUnsat) {
  Solver s;
  EXPECT_FALSE(s.add_clause(Clause{}));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Solver, TautologyIgnored) {
  Solver s;
  const Var v = s.new_var();
  EXPECT_TRUE(s.add_clause({Lit(v, false), Lit(v, true)}));
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(Solver, PropagationChain) {
  // (a) & (!a | b) & (!b | c) => c must be true.
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_clause({Lit(a, false)});
  s.add_clause({Lit(a, true), Lit(b, false)});
  s.add_clause({Lit(b, true), Lit(c, false)});
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  EXPECT_TRUE(s.model_value(c));
}

TEST(Solver, XorChainRequiresSearch) {
  // x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 is UNSAT (parity).
  Solver s;
  const Var x1 = s.new_var(), x2 = s.new_var(), x3 = s.new_var();
  const auto add_xor1 = [&](Var u, Var v) {
    s.add_clause({Lit(u, false), Lit(v, false)});
    s.add_clause({Lit(u, true), Lit(v, true)});
  };
  add_xor1(x1, x2);
  add_xor1(x2, x3);
  add_xor1(x1, x3);
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

/// Pigeonhole principle PHP(n+1, n): always UNSAT, exponential for
/// resolution — a classic stress test for clause learning.
void build_php(Solver& s, int pigeons, int holes) {
  std::vector<std::vector<Var>> at(static_cast<std::size_t>(pigeons));
  for (auto& row : at) {
    for (int h = 0; h < holes; ++h) row.push_back(s.new_var());
  }
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) {
      c.emplace_back(at[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)], false);
    }
    s.add_clause(std::move(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_clause({Lit(at[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)], true),
                      Lit(at[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)], true)});
      }
    }
  }
}

TEST(Solver, PigeonholeUnsat) {
  for (int holes = 3; holes <= 5; ++holes) {
    Solver s;
    build_php(s, holes + 1, holes);
    EXPECT_EQ(s.solve(), SolveResult::kUnsat) << "holes=" << holes;
    EXPECT_GT(s.stats().conflicts, 0u);
  }
}

TEST(Solver, AssumptionsDoNotPersist) {
  Solver s;
  const Var v = s.new_var();
  const Lit l(v, false);
  EXPECT_EQ(s.solve(std::array{~l}), SolveResult::kSat);
  EXPECT_FALSE(s.model_value(v));
  EXPECT_EQ(s.solve(std::array{l}), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(v));
}

TEST(Solver, FailedAssumptionsReported) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause({Lit(a, true), Lit(b, true)});  // !a | !b
  const std::array assumptions{Lit(a, false), Lit(b, false)};
  EXPECT_EQ(s.solve(assumptions), SolveResult::kUnsat);
  EXPECT_FALSE(s.conflict_assumptions().empty());
  // Adding nothing: still satisfiable without assumptions.
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(Solver, IncrementalSolvingAccumulatesClauses) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  EXPECT_EQ(s.solve(), SolveResult::kSat);
  s.add_clause({Lit(a, false)});
  EXPECT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(a));
  s.add_clause({Lit(b, false)});
  s.add_clause({Lit(a, true), Lit(b, true)});
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Solver, ConflictLimitReturnsUnknown) {
  Solver s;
  build_php(s, 8, 7);  // hard enough to exceed a tiny budget
  s.set_conflict_limit(10);
  EXPECT_EQ(s.solve(), SolveResult::kUnknown);
}

// ---------------------------------------------------------------------------
// Random 3-SAT cross-validation against brute force (the solver oracle test).
// ---------------------------------------------------------------------------
struct RandomCnf {
  Cnf cnf;
  bool brute_sat = false;
};

RandomCnf random_3sat(int vars, int clauses, std::uint64_t seed) {
  util::Rng rng(seed);
  RandomCnf out;
  out.cnf.num_vars = vars;
  for (int c = 0; c < clauses; ++c) {
    Clause cl;
    for (int k = 0; k < 3; ++k) {
      cl.emplace_back(static_cast<Var>(rng.uniform_int(0, vars - 1)),
                      rng.bernoulli(0.5));
    }
    out.cnf.clauses.push_back(std::move(cl));
  }
  // Brute force.
  for (std::uint32_t m = 0; m < (1u << vars); ++m) {
    bool all = true;
    for (const Clause& cl : out.cnf.clauses) {
      bool sat = false;
      for (const Lit l : cl) {
        const bool value = (m >> l.var()) & 1;
        if (value != l.negated()) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) {
      out.brute_sat = true;
      break;
    }
  }
  return out;
}

class Random3Sat : public testing::TestWithParam<std::uint64_t> {};

TEST_P(Random3Sat, AgreesWithBruteForce) {
  // Around the m/n ~ 4.26 phase transition where instances are hardest.
  for (const int clauses : {30, 43, 55}) {
    const RandomCnf rc = random_3sat(10, clauses, GetParam() * 1000 + clauses);
    Solver s;
    EXPECT_TRUE(load_cnf(s, rc.cnf) || !rc.brute_sat);
    const SolveResult r = s.solve();
    EXPECT_EQ(r == SolveResult::kSat, rc.brute_sat)
        << "seed=" << GetParam() << " clauses=" << clauses;
    if (r == SolveResult::kSat) {
      // The reported model must satisfy every clause.
      for (const Clause& cl : rc.cnf.clauses) {
        bool sat = false;
        for (const Lit l : cl) sat = sat || s.model_value(l);
        EXPECT_TRUE(sat);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Random3Sat,
                         testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// DIMACS
// ---------------------------------------------------------------------------
TEST(Dimacs, ParsePrintRoundTrip) {
  const std::string text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
  const Cnf cnf = parse_dimacs(text);
  EXPECT_EQ(cnf.num_vars, 3);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0][1], Lit(1, true));
  const Cnf again = parse_dimacs(to_dimacs(cnf));
  EXPECT_EQ(again.clauses, cnf.clauses);
}

TEST(Dimacs, Errors) {
  EXPECT_THROW(parse_dimacs("1 2 0\n"), ParseError);          // before header
  EXPECT_THROW(parse_dimacs("p cnf 2 1\n3 0\n"), ParseError); // var too big
  EXPECT_THROW(parse_dimacs("p cnf 2 1\n1 2\n"), ParseError); // missing 0
  EXPECT_THROW(parse_dimacs("p dnf 2 1\n"), ParseError);      // wrong format
}

TEST(Dimacs, LoadIntoSolver) {
  const Cnf cnf = parse_dimacs("p cnf 2 2\n1 0\n-1 2 0\n");
  Solver s;
  EXPECT_TRUE(load_cnf(s, cnf));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(0));
  EXPECT_TRUE(s.model_value(1));
}

TEST(Dimacs, ClauseCountMismatchRejected) {
  // Regression: the header's clause count used to be read and ignored, so a
  // truncated file parsed as a (weaker) formula without any error.
  EXPECT_THROW(parse_dimacs("p cnf 3 2\n1 0\n"), ParseError);
  EXPECT_THROW(parse_dimacs("p cnf 3 1\n1 0\n2 0\n"), ParseError);
  EXPECT_NO_THROW(parse_dimacs("p cnf 3 2\n1 0\n2 0\n"));
}

TEST(Dimacs, NegativeHeaderCountsRejected) {
  // Regression: "p cnf -3 1" used to garble num_vars (and a negative clause
  // count wrapped through an unsigned read) instead of failing.
  EXPECT_THROW(parse_dimacs("p cnf -3 1\n1 0\n"), ParseError);
  EXPECT_THROW(parse_dimacs("p cnf 3 -1\n1 0\n"), ParseError);
  EXPECT_THROW(parse_dimacs("p cnf -3 -1\n"), ParseError);
}

// ---------------------------------------------------------------------------
// Property tests: assumptions, budgets, determinism across solver state.
// ---------------------------------------------------------------------------
TEST(Solver, ConflictAssumptionsAreSubsetAndSufficient) {
  // !a | !b plus an irrelevant assumption c: the final conflict must be a
  // subset of the assumptions, and re-solving under that subset alone must
  // still be UNSAT (it is a genuine unsatisfiable core over assumptions).
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_clause({Lit(a, true), Lit(b, true)});
  const std::array assumptions{Lit(c, false), Lit(a, false), Lit(b, false)};
  ASSERT_EQ(s.solve(assumptions), SolveResult::kUnsat);
  // The final conflict holds the *negations* of the failed assumptions
  // ("these cannot all hold"), MiniSat-style.
  const std::vector<Lit> core = s.conflict_assumptions();
  ASSERT_FALSE(core.empty());
  std::vector<Lit> failed;
  for (const Lit l : core) {
    EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), ~l),
              assumptions.end())
        << "conflict literal " << l.to_string()
        << " is not a negated assumption";
    failed.push_back(~l);
  }
  EXPECT_EQ(s.solve(failed), SolveResult::kUnsat);
  // Without assumptions the formula itself is still satisfiable.
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(Solver, VerdictsStableAcrossRepeatedSolves) {
  // Phase saving and restart state persist between solve() calls; neither
  // may ever change a verdict, only the path to it.
  for (const std::uint64_t seed : {3u, 7u, 11u}) {
    const RandomCnf rc = random_3sat(10, 43, seed);
    Solver s;
    (void)load_cnf(s, rc.cnf);
    const SolveResult first = s.solve();
    for (int round = 0; round < 4; ++round) {
      EXPECT_EQ(s.solve(), first) << "seed=" << seed << " round=" << round;
    }
    EXPECT_EQ(first == SolveResult::kSat, rc.brute_sat);
  }
}

TEST(Solver, ConflictBudgetExpiryPopulatesStats) {
  Solver s;
  build_php(s, 8, 7);
  s.set_conflict_limit(10);
  EXPECT_EQ(s.solve(), SolveResult::kUnknown);
  EXPECT_GE(s.stats().conflicts, 10u);
  EXPECT_GT(s.stats().propagations, 0u);
  EXPECT_GT(s.stats().decisions, 0u);
  // Raising the budget lets the same solver finish the job.
  s.set_conflict_limit(0);
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Solver, PropagationBudgetExpiryReturnsUnknown) {
  Solver s;
  build_php(s, 8, 7);
  s.set_propagation_limit(200);
  EXPECT_EQ(s.solve(), SolveResult::kUnknown);
  EXPECT_GE(s.stats().propagations, 200u);
  s.set_propagation_limit(0);
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

// ---------------------------------------------------------------------------
// Inprocessing
// ---------------------------------------------------------------------------

/// All 16 on/off combinations of the four passes.
InprocessOptions combo(unsigned mask) {
  InprocessOptions o;
  o.vivify = (mask & 1u) != 0;
  o.subsume = (mask & 2u) != 0;
  o.bve = (mask & 4u) != 0;
  o.scc = (mask & 8u) != 0;
  return o;
}

TEST(Inprocess, VerdictsAndModelsAgreeAcrossAllCombinations) {
  for (const std::uint64_t seed : {2u, 5u, 13u}) {
    const RandomCnf rc = random_3sat(10, 43, seed);
    for (unsigned mask = 0; mask < 16; ++mask) {
      Solver s;
      s.set_inprocess(combo(mask));
      (void)load_cnf(s, rc.cnf);
      const SolveResult r = s.solve();
      EXPECT_EQ(r == SolveResult::kSat, rc.brute_sat)
          << "seed=" << seed << " mask=" << mask;
      if (r == SolveResult::kSat) {
        for (const Clause& cl : rc.cnf.clauses) {
          bool sat = false;
          for (const Lit l : cl) sat = sat || s.model_value(l);
          EXPECT_TRUE(sat) << "seed=" << seed << " mask=" << mask
                           << ": model violates a clause after reconstruction";
        }
      }
    }
  }
}

TEST(Inprocess, BveEliminatesAndReconstructs) {
  // x appears in two clauses only: (x | a) & (!x | b).  BVE eliminates x
  // (single resolvent a | b); the model must still satisfy both originals.
  Solver s;
  s.set_inprocess({.vivify = false, .subsume = false, .bve = true, .scc = false});
  const Var x = s.new_var(), a = s.new_var(), b = s.new_var();
  s.add_clause({Lit(x, false), Lit(a, false)});
  s.add_clause({Lit(x, true), Lit(b, false)});
  // Force a and b so x's reconstructed value is what decides the originals.
  s.add_clause({Lit(a, true), Lit(b, true)});
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.is_removed(x));
  EXPECT_GE(s.inprocess_stats().eliminated_vars, 1u);
  EXPECT_TRUE(s.model_value(Lit(x, false)) || s.model_value(Lit(a, false)));
  EXPECT_TRUE(s.model_value(Lit(x, true)) || s.model_value(Lit(b, false)));
}

TEST(Inprocess, RemovedVariablesRejectNewClausesAndAssumptions) {
  Solver s;
  s.set_inprocess(InprocessOptions::all());
  const Var x = s.new_var(), a = s.new_var(), b = s.new_var();
  s.add_clause({Lit(x, false), Lit(a, false)});
  s.add_clause({Lit(x, true), Lit(b, false)});
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  ASSERT_TRUE(s.is_removed(x));
  EXPECT_THROW((void)s.add_clause({Lit(x, false)}), InvalidArgument);
  EXPECT_THROW((void)s.solve(std::array{Lit(x, false)}), InvalidArgument);
  EXPECT_THROW(s.set_frozen(x), InvalidArgument);
}

TEST(Inprocess, FrozenVariablesSurviveForAssumptions) {
  Solver s;
  s.set_inprocess(InprocessOptions::all());
  const Var x = s.new_var(), a = s.new_var(), b = s.new_var();
  s.set_frozen(x);
  s.add_clause({Lit(x, false), Lit(a, false)});
  s.add_clause({Lit(x, true), Lit(b, false)});
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_FALSE(s.is_removed(x));
  ASSERT_EQ(s.solve(std::array{Lit(x, false)}), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(x));
  ASSERT_EQ(s.solve(std::array{Lit(x, true)}), SolveResult::kSat);
  EXPECT_FALSE(s.model_value(x));
}

TEST(Inprocess, SccSubstitutesEquivalentLiterals) {
  // a <-> b via the two binaries; (a | c) keeps the instance nontrivial
  // without forcing anything at the root.  One of a/b is substituted; the
  // model must keep them equal.
  Solver s;
  s.set_inprocess({.vivify = false, .subsume = false, .bve = false, .scc = true});
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_clause({Lit(a, true), Lit(b, false)});   // a -> b
  s.add_clause({Lit(b, true), Lit(a, false)});   // b -> a
  s.add_clause({Lit(a, false), Lit(c, false)});
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_GE(s.inprocess_stats().substituted_vars, 1u);
  EXPECT_EQ(s.model_value(a), s.model_value(b));
}

TEST(Inprocess, SccDetectsContradictoryCycle) {
  // p <-> q and p <-> !q puts p and !p in one strongly connected component,
  // so the instance is UNSAT purely from the binary implication graph — and
  // the derivation (two units plus the empty clause) must check as a proof.
  Solver s;
  s.set_inprocess({.vivify = false, .subsume = false, .bve = false, .scc = true});
  ProofLog proof;
  s.set_proof(&proof);
  const Var p = s.new_var(), q = s.new_var();
  s.add_clause({Lit(p, true), Lit(q, false)});
  s.add_clause({Lit(q, true), Lit(p, false)});
  s.add_clause({Lit(p, true), Lit(q, true)});
  s.add_clause({Lit(q, false), Lit(p, false)});
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
  EXPECT_TRUE(check_proof(proof).verified());
}

TEST(Inprocess, SubsumptionDropsAndStrengthens) {
  Solver s;
  s.set_inprocess({.vivify = false, .subsume = true, .bve = false, .scc = false});
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_clause({Lit(a, false), Lit(b, false)});
  s.add_clause({Lit(a, false), Lit(b, false), Lit(c, false)});  // subsumed
  s.add_clause({Lit(a, true), Lit(b, false), Lit(c, false)});   // self-subsumed
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  const InprocessStats& st = s.inprocess_stats();
  EXPECT_GE(st.subsumed, 1u);
  EXPECT_GE(st.self_subsumed, 1u);
}

TEST(Inprocess, StatsAccumulateOnHardInstance) {
  Solver s;
  s.set_inprocess(InprocessOptions::all());
  build_php(s, 6, 5);
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
  EXPECT_GE(s.inprocess_stats().rounds, 1u);
}

// ---------------------------------------------------------------------------
// DRAT proof logging
// ---------------------------------------------------------------------------
TEST(Drat, PigeonholeProofChecksAcrossAllInprocessCombinations) {
  for (unsigned mask = 0; mask < 16; ++mask) {
    Solver s;
    ProofLog proof;
    s.set_proof(&proof);
    s.set_inprocess(combo(mask));
    build_php(s, 5, 4);
    ASSERT_EQ(s.solve(), SolveResult::kUnsat) << "mask=" << mask;
    EXPECT_GT(proof.derivations(), 0u) << "mask=" << mask;
    const ProofCheckResult r = check_proof(proof);
    EXPECT_TRUE(r.verified()) << "mask=" << mask << ": " << r.detail;
  }
}

TEST(Drat, AssumptionUnsatCarriesCheckableProof) {
  Solver s;
  ProofLog proof;
  s.set_proof(&proof);
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause({Lit(a, true), Lit(b, true)});
  const std::array assumptions{Lit(a, false), Lit(b, false)};
  ASSERT_EQ(s.solve(assumptions), SolveResult::kUnsat);
  EXPECT_TRUE(check_proof(proof, assumptions).verified());
  // The failed-assumption subset (conflict_assumptions holds its negation)
  // is itself a sufficient context.
  std::vector<Lit> failed;
  for (const Lit l : s.conflict_assumptions()) failed.push_back(~l);
  EXPECT_TRUE(check_proof(proof, failed).verified());
  // Without the assumptions the formula is satisfiable, so the same log
  // must NOT check as a plain refutation.
  EXPECT_FALSE(check_proof(proof).verified());
}

TEST(Drat, AddClauseConflictLogsEmptyClause) {
  Solver s;
  ProofLog proof;
  s.set_proof(&proof);
  const Var v = s.new_var();
  s.add_clause({Lit(v, false)});
  EXPECT_FALSE(s.add_clause({Lit(v, true)}));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
  EXPECT_TRUE(check_proof(proof).verified());
}

TEST(Drat, CheckerRejectsBogusDerivation) {
  ProofLog proof;
  const Lit a(0, false), b(1, false);
  proof.add_input(std::array{a, b});
  proof.add_derived(std::array{a});  // not RUP: asserting !a does not conflict
  const ProofCheckResult r = check_proof(proof);
  EXPECT_FALSE(r.verified());
  EXPECT_NE(r.detail.find("not RUP"), std::string::npos) << r.detail;
}

TEST(Drat, CheckerBudgetReturnsHonestAnswer) {
  Solver s;
  ProofLog proof;
  s.set_proof(&proof);
  build_php(s, 6, 5);
  ASSERT_EQ(s.solve(), SolveResult::kUnsat);
  const ProofCheckResult r = check_proof(proof, {}, 10);
  EXPECT_EQ(r.status, ProofCheckResult::Status::kBudget);
  EXPECT_FALSE(r.verified());
}

TEST(Drat, TextualDratExportMentionsDeletions) {
  Solver s;
  ProofLog proof;
  s.set_proof(&proof);
  build_php(s, 5, 4);
  ASSERT_EQ(s.solve(), SolveResult::kUnsat);
  const std::string text = proof.to_drat();
  EXPECT_NE(text.find("0\n"), std::string::npos);
  EXPECT_EQ(proof.formula().num_vars, 20);
}

}  // namespace
}  // namespace fannet::sat
