// Unit + property tests for the CDCL solver.  The load-bearing test is the
// parameterized sweep cross-checking the solver against brute force on
// random 3-SAT instances around the phase transition.
#include <gtest/gtest.h>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fannet::sat {
namespace {

TEST(Lit, EncodingRoundTrip) {
  const Lit a(3, false);
  EXPECT_EQ(a.var(), 3);
  EXPECT_FALSE(a.negated());
  EXPECT_TRUE((~a).negated());
  EXPECT_EQ(~~a, a);
  EXPECT_EQ(a.to_string(), "4");
  EXPECT_EQ((~a).to_string(), "-4");
}

TEST(Solver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(Solver, SingleUnit) {
  Solver s;
  const Var v = s.new_var();
  EXPECT_TRUE(s.add_clause({Lit(v, false)}));
  EXPECT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(v));
}

TEST(Solver, ContradictoryUnitsUnsat) {
  Solver s;
  const Var v = s.new_var();
  EXPECT_TRUE(s.add_clause({Lit(v, false)}));
  EXPECT_FALSE(s.add_clause({Lit(v, true)}));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Solver, EmptyClauseUnsat) {
  Solver s;
  EXPECT_FALSE(s.add_clause(Clause{}));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Solver, TautologyIgnored) {
  Solver s;
  const Var v = s.new_var();
  EXPECT_TRUE(s.add_clause({Lit(v, false), Lit(v, true)}));
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(Solver, PropagationChain) {
  // (a) & (!a | b) & (!b | c) => c must be true.
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_clause({Lit(a, false)});
  s.add_clause({Lit(a, true), Lit(b, false)});
  s.add_clause({Lit(b, true), Lit(c, false)});
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  EXPECT_TRUE(s.model_value(c));
}

TEST(Solver, XorChainRequiresSearch) {
  // x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 is UNSAT (parity).
  Solver s;
  const Var x1 = s.new_var(), x2 = s.new_var(), x3 = s.new_var();
  const auto add_xor1 = [&](Var u, Var v) {
    s.add_clause({Lit(u, false), Lit(v, false)});
    s.add_clause({Lit(u, true), Lit(v, true)});
  };
  add_xor1(x1, x2);
  add_xor1(x2, x3);
  add_xor1(x1, x3);
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

/// Pigeonhole principle PHP(n+1, n): always UNSAT, exponential for
/// resolution — a classic stress test for clause learning.
void build_php(Solver& s, int pigeons, int holes) {
  std::vector<std::vector<Var>> at(static_cast<std::size_t>(pigeons));
  for (auto& row : at) {
    for (int h = 0; h < holes; ++h) row.push_back(s.new_var());
  }
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) {
      c.emplace_back(at[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)], false);
    }
    s.add_clause(std::move(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_clause({Lit(at[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)], true),
                      Lit(at[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)], true)});
      }
    }
  }
}

TEST(Solver, PigeonholeUnsat) {
  for (int holes = 3; holes <= 5; ++holes) {
    Solver s;
    build_php(s, holes + 1, holes);
    EXPECT_EQ(s.solve(), SolveResult::kUnsat) << "holes=" << holes;
    EXPECT_GT(s.stats().conflicts, 0u);
  }
}

TEST(Solver, AssumptionsDoNotPersist) {
  Solver s;
  const Var v = s.new_var();
  const Lit l(v, false);
  EXPECT_EQ(s.solve(std::array{~l}), SolveResult::kSat);
  EXPECT_FALSE(s.model_value(v));
  EXPECT_EQ(s.solve(std::array{l}), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(v));
}

TEST(Solver, FailedAssumptionsReported) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause({Lit(a, true), Lit(b, true)});  // !a | !b
  const std::array assumptions{Lit(a, false), Lit(b, false)};
  EXPECT_EQ(s.solve(assumptions), SolveResult::kUnsat);
  EXPECT_FALSE(s.conflict_assumptions().empty());
  // Adding nothing: still satisfiable without assumptions.
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(Solver, IncrementalSolvingAccumulatesClauses) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  EXPECT_EQ(s.solve(), SolveResult::kSat);
  s.add_clause({Lit(a, false)});
  EXPECT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(a));
  s.add_clause({Lit(b, false)});
  s.add_clause({Lit(a, true), Lit(b, true)});
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Solver, ConflictLimitReturnsUnknown) {
  Solver s;
  build_php(s, 8, 7);  // hard enough to exceed a tiny budget
  s.set_conflict_limit(10);
  EXPECT_EQ(s.solve(), SolveResult::kUnknown);
}

// ---------------------------------------------------------------------------
// Random 3-SAT cross-validation against brute force (the solver oracle test).
// ---------------------------------------------------------------------------
struct RandomCnf {
  Cnf cnf;
  bool brute_sat = false;
};

RandomCnf random_3sat(int vars, int clauses, std::uint64_t seed) {
  util::Rng rng(seed);
  RandomCnf out;
  out.cnf.num_vars = vars;
  for (int c = 0; c < clauses; ++c) {
    Clause cl;
    for (int k = 0; k < 3; ++k) {
      cl.emplace_back(static_cast<Var>(rng.uniform_int(0, vars - 1)),
                      rng.bernoulli(0.5));
    }
    out.cnf.clauses.push_back(std::move(cl));
  }
  // Brute force.
  for (std::uint32_t m = 0; m < (1u << vars); ++m) {
    bool all = true;
    for (const Clause& cl : out.cnf.clauses) {
      bool sat = false;
      for (const Lit l : cl) {
        const bool value = (m >> l.var()) & 1;
        if (value != l.negated()) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) {
      out.brute_sat = true;
      break;
    }
  }
  return out;
}

class Random3Sat : public testing::TestWithParam<std::uint64_t> {};

TEST_P(Random3Sat, AgreesWithBruteForce) {
  // Around the m/n ~ 4.26 phase transition where instances are hardest.
  for (const int clauses : {30, 43, 55}) {
    const RandomCnf rc = random_3sat(10, clauses, GetParam() * 1000 + clauses);
    Solver s;
    EXPECT_TRUE(load_cnf(s, rc.cnf) || !rc.brute_sat);
    const SolveResult r = s.solve();
    EXPECT_EQ(r == SolveResult::kSat, rc.brute_sat)
        << "seed=" << GetParam() << " clauses=" << clauses;
    if (r == SolveResult::kSat) {
      // The reported model must satisfy every clause.
      for (const Clause& cl : rc.cnf.clauses) {
        bool sat = false;
        for (const Lit l : cl) sat = sat || s.model_value(l);
        EXPECT_TRUE(sat);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Random3Sat,
                         testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// DIMACS
// ---------------------------------------------------------------------------
TEST(Dimacs, ParsePrintRoundTrip) {
  const std::string text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
  const Cnf cnf = parse_dimacs(text);
  EXPECT_EQ(cnf.num_vars, 3);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0][1], Lit(1, true));
  const Cnf again = parse_dimacs(to_dimacs(cnf));
  EXPECT_EQ(again.clauses, cnf.clauses);
}

TEST(Dimacs, Errors) {
  EXPECT_THROW(parse_dimacs("1 2 0\n"), ParseError);          // before header
  EXPECT_THROW(parse_dimacs("p cnf 2 1\n3 0\n"), ParseError); // var too big
  EXPECT_THROW(parse_dimacs("p cnf 2 1\n1 2\n"), ParseError); // missing 0
  EXPECT_THROW(parse_dimacs("p dnf 2 1\n"), ParseError);      // wrong format
}

TEST(Dimacs, LoadIntoSolver) {
  const Cnf cnf = parse_dimacs("p cnf 2 2\n1 0\n-1 2 0\n");
  Solver s;
  EXPECT_TRUE(load_cnf(s, cnf));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(0));
  EXPECT_TRUE(s.model_value(1));
}

}  // namespace
}  // namespace fannet::sat
