// Unit + property tests for the AIG/word circuit builder, the Tseitin CNF
// encoder and the circuit->BDD lowering.  Word operations are validated
// against native integer arithmetic on random operands.
#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "circuit/to_bdd.hpp"
#include "circuit/tseitin.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace fannet::circuit {
namespace {

using util::i64;

TEST(Circuit, ConstantsAndInputs) {
  Circuit c;
  EXPECT_EQ(c.land(kTrue, kTrue), kTrue);
  EXPECT_EQ(c.land(kTrue, kFalse), kFalse);
  const CLit a = c.add_input();
  EXPECT_EQ(c.land(a, kTrue), a);
  EXPECT_EQ(c.land(a, kFalse), kFalse);
  EXPECT_EQ(c.land(a, a), a);
  EXPECT_EQ(c.land(a, ~a), kFalse);
  EXPECT_EQ(c.num_inputs(), 1u);
}

TEST(Circuit, StructuralHashing) {
  Circuit c;
  const CLit a = c.add_input(), b = c.add_input();
  const CLit g1 = c.land(a, b);
  const CLit g2 = c.land(b, a);  // commuted: must hash to the same node
  EXPECT_EQ(g1, g2);
  const std::size_t nodes = c.num_nodes();
  (void)c.land(a, b);
  EXPECT_EQ(c.num_nodes(), nodes);
}

TEST(Circuit, GateEval) {
  Circuit c;
  const CLit a = c.add_input(), b = c.add_input();
  const CLit x = c.lxor(a, b);
  EXPECT_FALSE(c.eval(x, {false, false}));
  EXPECT_TRUE(c.eval(x, {true, false}));
  EXPECT_FALSE(c.eval(x, {true, true}));
  const CLit mx = c.mux(a, b, ~b);  // a ? b : !b == iff(a,b)... truth check
  EXPECT_TRUE(c.eval(mx, {true, true}));
  EXPECT_FALSE(c.eval(mx, {true, false}));
  EXPECT_TRUE(c.eval(mx, {false, false}));
}

TEST(Circuit, MinWidth) {
  EXPECT_EQ(Circuit::min_width(0), 1u);
  EXPECT_EQ(Circuit::min_width(-1), 1u);
  EXPECT_EQ(Circuit::min_width(1), 2u);
  EXPECT_EQ(Circuit::min_width(-2), 2u);
  EXPECT_EQ(Circuit::min_width(127), 8u);
  EXPECT_EQ(Circuit::min_width(-128), 8u);
  EXPECT_EQ(Circuit::min_width(128), 9u);
}

TEST(Circuit, WordConstDecode) {
  Circuit c;
  for (const i64 v : {0LL, 1LL, -1LL, 100LL, -100LL, 32767LL, -32768LL}) {
    const Word w = Circuit::word_const(v, Circuit::min_width(v));
    EXPECT_EQ(c.eval_word(w, {}), v) << v;
  }
  EXPECT_THROW(Circuit::word_const(100, 3), InvalidArgument);
}

TEST(Circuit, SextPreservesValue) {
  Circuit c;
  const Word w = Circuit::word_const(-5, 4);
  EXPECT_EQ(c.eval_word(c.sext(w, 12), {}), -5);
  const Word p = Circuit::word_const(5, 4);
  EXPECT_EQ(c.eval_word(c.sext(p, 12), {}), 5);
}

TEST(Circuit, ReluWord) {
  Circuit c;
  EXPECT_EQ(c.eval_word(c.relu(Circuit::word_const(-7, 5)), {}), 0);
  EXPECT_EQ(c.eval_word(c.relu(Circuit::word_const(9, 5)), {}), 9);
  EXPECT_EQ(c.eval_word(c.relu(Circuit::word_const(0, 5)), {}), 0);
}

// ---------------------------------------------------------------------------
// Property sweep: word ops vs native arithmetic on random operand pairs.
// ---------------------------------------------------------------------------
class WordOps : public testing::TestWithParam<std::uint64_t> {};

TEST_P(WordOps, MatchNativeArithmetic) {
  util::Rng rng(GetParam());
  Circuit c;
  // Two symbolic 12-bit inputs driven through eval with random values.
  const Word a = c.add_input_word(12);
  const Word b = c.add_input_word(12);
  const Word sum = c.add(a, b);
  const Word diff = c.sub(a, b);
  const Word na = c.neg(a);
  const CLit lt = c.less_signed(a, b);
  const CLit le = c.leq_signed(a, b);
  const CLit equal = c.eq(a, b);
  const Word rel = c.relu(a);
  const i64 k = rng.uniform_int(-300, 300);
  const Word mk = c.mul_const(a, k);

  for (int trial = 0; trial < 60; ++trial) {
    const i64 va = rng.uniform_int(-2048, 2047);
    const i64 vb = rng.uniform_int(-2048, 2047);
    std::vector<bool> in(24);
    for (int bit = 0; bit < 12; ++bit) {
      in[static_cast<std::size_t>(bit)] = (va >> bit) & 1;
      in[static_cast<std::size_t>(12 + bit)] = (vb >> bit) & 1;
    }
    EXPECT_EQ(c.eval_word(sum, in), va + vb);
    EXPECT_EQ(c.eval_word(diff, in), va - vb);
    EXPECT_EQ(c.eval_word(na, in), -va);
    EXPECT_EQ(c.eval(lt, in), va < vb);
    EXPECT_EQ(c.eval(le, in), va <= vb);
    EXPECT_EQ(c.eval(equal, in), va == vb);
    EXPECT_EQ(c.eval_word(rel, in), std::max<i64>(0, va));
    EXPECT_EQ(c.eval_word(mk, in), va * k) << "k=" << k << " va=" << va;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WordOps, testing::Range<std::uint64_t>(1, 13));

TEST(Circuit, MuxWordSelects) {
  Circuit c;
  const CLit sel = c.add_input();
  const Word t = Circuit::word_const(42, 8);
  const Word e = Circuit::word_const(-17, 8);
  const Word m = c.mux_word(sel, t, e);
  EXPECT_EQ(c.eval_word(m, {true}), 42);
  EXPECT_EQ(c.eval_word(m, {false}), -17);
}

// ---------------------------------------------------------------------------
// Tseitin: the CNF encoding must be equisatisfiable and model-consistent.
// ---------------------------------------------------------------------------
TEST(Tseitin, SimpleConstraintSolvable) {
  Circuit c;
  const Word a = c.add_input_word(8);
  const CLit wants = c.eq(c.mul_const(a, 3), Circuit::word_const(51, 10));
  sat::Solver solver;
  TseitinEncoder enc(c, solver);
  // Pre-encode a's bits so the model can be decoded.
  (void)enc.lits(a);
  enc.assert_true(wants);
  ASSERT_EQ(solver.solve(), sat::SolveResult::kSat);
  EXPECT_EQ(enc.decode_word(a), 17);  // 3 * 17 = 51
}

TEST(Tseitin, UnsatisfiableConstraint) {
  Circuit c;
  const Word a = c.add_input_word(6);
  // a + a == 7 has no solution (even number).
  const CLit wants = c.eq(c.add(a, a), Circuit::word_const(7, 6));
  sat::Solver solver;
  TseitinEncoder enc(c, solver);
  enc.assert_true(wants);
  EXPECT_EQ(solver.solve(), sat::SolveResult::kUnsat);
}

TEST(Tseitin, RangeConstraintEnumerable) {
  Circuit c;
  const Word a = c.add_input_word(6);
  const CLit in_range =
      c.land(c.leq_signed(Circuit::word_const(-2, 3), a),
             c.leq_signed(a, Circuit::word_const(2, 3)));
  sat::Solver solver;
  TseitinEncoder enc(c, solver);
  (void)enc.lits(a);
  enc.assert_true(in_range);
  // Enumerate all models by blocking; must be exactly {-2,-1,0,1,2}.
  std::vector<i64> values;
  while (solver.solve() == sat::SolveResult::kSat) {
    const i64 v = enc.decode_word(a);
    values.push_back(v);
    sat::Clause block;
    for (const CLit bit : a) {
      const sat::Lit l = enc.lit_if_encoded(bit);
      block.push_back(solver.model_value(l) ? ~l : l);
    }
    solver.add_clause(std::move(block));
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<i64>{-2, -1, 0, 1, 2}));
}

// ---------------------------------------------------------------------------
// BDD lowering: circuit and BDD must compute the same function.
// ---------------------------------------------------------------------------
TEST(ToBdd, MatchesCircuitEval) {
  Circuit c;
  const Word a = c.add_input_word(4);
  const Word b = c.add_input_word(4);
  const CLit f = c.less_signed(c.add(a, b), Circuit::word_const(3, 4));

  bdd::Manager m(8);
  std::vector<bdd::Bdd> inputs;
  for (unsigned v = 0; v < 8; ++v) inputs.push_back(m.var(v));
  BddConverter conv(c, m, inputs);
  const bdd::Bdd fb = conv.convert(f);

  for (unsigned assignment = 0; assignment < 256; ++assignment) {
    std::vector<bool> env(8);
    for (unsigned bit = 0; bit < 8; ++bit) env[bit] = (assignment >> bit) & 1;
    EXPECT_EQ(m.eval(fb, env), c.eval(f, env)) << assignment;
  }
}

TEST(ToBdd, InputCountMismatchThrows) {
  Circuit c;
  (void)c.add_input();
  bdd::Manager m(2);
  EXPECT_THROW(BddConverter(c, m, {}), InvalidArgument);
}

}  // namespace
}  // namespace fannet::circuit
