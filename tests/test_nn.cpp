// Unit tests for the network substrate: forward semantics, the output
// max-pool (argmax) rule, serialization, and training convergence with the
// paper's learning-rate schedule.
#include <gtest/gtest.h>

#include "nn/network.hpp"
#include "nn/train.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fannet::nn {
namespace {

Network tiny_net() {
  Layer hidden;
  hidden.weights = la::MatrixD::from_rows({{1.0, -1.0}, {0.5, 0.5}});
  hidden.bias = {0.0, -0.25};
  hidden.activation = Activation::kReLU;
  Layer out;
  out.weights = la::MatrixD::from_rows({{1.0, 0.0}, {0.0, 2.0}});
  out.bias = {0.1, 0.0};
  out.activation = Activation::kLinear;
  return Network({hidden, out});
}

TEST(Network, ForwardKnownValues) {
  const Network net = tiny_net();
  // x = (1, 0.5): hidden pre = (0.5, 0.5), post = same (positive).
  const std::vector<double> x{1.0, 0.5};
  const auto out = net.forward(x);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 0.6);   // 0.5 + 0.1
  EXPECT_DOUBLE_EQ(out[1], 1.0);   // 2*0.5
}

TEST(Network, ReLUClampsNegative) {
  const Network net = tiny_net();
  // x = (0, 1): hidden pre = (-1, 0.25) -> post = (0, 0.25).
  const std::vector<double> x{0.0, 1.0};
  const auto out = net.forward(x);
  EXPECT_DOUBLE_EQ(out[0], 0.1);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
}

TEST(Network, ForwardTraceShapes) {
  const Network net = tiny_net();
  const std::vector<double> x{1.0, 1.0};
  const auto trace = net.forward_trace(x);
  ASSERT_EQ(trace.pre.size(), 2u);
  ASSERT_EQ(trace.post.size(), 2u);
  EXPECT_EQ(trace.pre[0].size(), 2u);
  // Last post equals forward output.
  EXPECT_EQ(trace.post.back(), net.forward(x));
}

TEST(Network, ClassifyUsesArgmax) {
  const Network net = tiny_net();
  const std::vector<double> x{1.0, 0.5};
  EXPECT_EQ(net.classify(x), 1);  // 1.0 > 0.6
}

TEST(ArgmaxTieLow, TiesResolveToLowerIndex) {
  const std::vector<double> v{1.0, 1.0, 0.5};
  EXPECT_EQ(argmax_tie_low(v), 0);
  const std::vector<double> w{0.2, 0.9, 0.9};
  EXPECT_EQ(argmax_tie_low(w), 1);
}

TEST(ArgmaxTieLow, EmptyThrows) {
  EXPECT_THROW((void)argmax_tie_low(std::vector<double>{}), InvalidArgument);
}

TEST(Network, ValidatesLayerShapes) {
  Layer a;
  a.weights = la::MatrixD(3, 2);
  a.bias = {0, 0};  // wrong: 3 outputs need 3 biases
  EXPECT_THROW(Network({a}), InvalidArgument);
}

TEST(Network, ValidatesLayerChaining) {
  Layer a;
  a.weights = la::MatrixD(3, 2);
  a.bias = {0, 0, 0};
  Layer b;
  b.weights = la::MatrixD(2, 4);  // expects 4 inputs, previous has 3 outputs
  b.bias = {0, 0};
  EXPECT_THROW(Network({a, b}), InvalidArgument);
}

TEST(Network, RandomDeterministicPerSeed) {
  const Network a = Network::random({4, 8, 2}, 99);
  const Network b = Network::random({4, 8, 2}, 99);
  const Network c = Network::random({4, 8, 2}, 100);
  EXPECT_EQ(a.to_text(), b.to_text());
  EXPECT_NE(a.to_text(), c.to_text());
}

TEST(Network, RandomShapesAndActivations) {
  const Network net = Network::random({5, 20, 2}, 1);
  EXPECT_EQ(net.input_dim(), 5u);
  EXPECT_EQ(net.output_dim(), 2u);
  EXPECT_EQ(net.depth(), 2u);
  EXPECT_EQ(net.layers()[0].activation, Activation::kReLU);
  EXPECT_EQ(net.layers()[1].activation, Activation::kLinear);
}

TEST(Network, SerializationRoundTrip) {
  const Network net = Network::random({3, 7, 2}, 5);
  const Network back = Network::from_text(net.to_text());
  EXPECT_EQ(net.to_text(), back.to_text());
  // Behavioral equality on a probe input.
  const std::vector<double> x{0.3, -0.8, 0.5};
  EXPECT_EQ(net.forward(x), back.forward(x));
}

TEST(Network, FromTextRejectsGarbage) {
  EXPECT_THROW(Network::from_text("not-a-network"), ParseError);
  EXPECT_THROW(Network::from_text("fannet-network 2\n1\n"), ParseError);
  EXPECT_THROW(Network::from_text("fannet-network 1\n1\n2 2 relu\n1 2 3 4\n"),
               ParseError);  // missing bias values
}

// ---------------------------------------------------------------------------
// Training
// ---------------------------------------------------------------------------

/// Linearly separable 2-D blobs.
struct Blobs {
  la::MatrixD x;
  std::vector<int> y;
};

Blobs make_blobs(std::size_t per_class, std::uint64_t seed) {
  util::Rng rng(seed);
  Blobs b;
  b.x = la::MatrixD(2 * per_class, 2);
  for (std::size_t i = 0; i < 2 * per_class; ++i) {
    const bool cls = i >= per_class;
    b.x(i, 0) = rng.gaussian(cls ? 0.7 : 0.3, 0.07);
    b.x(i, 1) = rng.gaussian(cls ? 0.3 : 0.7, 0.07);
    b.y.push_back(cls ? 1 : 0);
  }
  return b;
}

TEST(Train, ConvergesOnSeparableBlobs) {
  const Blobs b = make_blobs(20, 4);
  Network net = Network::random({2, 8, 2}, 21);
  const TrainResult r = train(net, b.x, b.y, {});
  EXPECT_DOUBLE_EQ(r.train_accuracy, 1.0);
  EXPECT_LT(r.epoch_loss.back(), r.epoch_loss.front());
}

TEST(Train, LossDecreasesMonotonishly) {
  const Blobs b = make_blobs(20, 8);
  Network net = Network::random({2, 8, 2}, 3);
  const TrainResult r = train(net, b.x, b.y, {});
  // Full-batch GD on this easy problem: the loss at the end is far below
  // the start, and at least 90% of steps do not increase it.
  std::size_t non_increasing = 0;
  for (std::size_t e = 1; e < r.epoch_loss.size(); ++e) {
    non_increasing += (r.epoch_loss[e] <= r.epoch_loss[e - 1] + 1e-12);
  }
  EXPECT_GE(non_increasing * 10, (r.epoch_loss.size() - 1) * 9);
  EXPECT_LT(r.epoch_loss.back(), 0.2 * r.epoch_loss.front());
}

TEST(Train, PaperScheduleShape) {
  const TrainConfig config;
  ASSERT_EQ(config.schedule.size(), 2u);
  EXPECT_DOUBLE_EQ(config.schedule[0].learning_rate, 0.5);
  EXPECT_EQ(config.schedule[0].epochs, 40);
  EXPECT_DOUBLE_EQ(config.schedule[1].learning_rate, 0.2);
  EXPECT_EQ(config.schedule[1].epochs, 40);
  const Blobs b = make_blobs(10, 2);
  Network net = Network::random({2, 4, 2}, 7);
  const TrainResult r = train(net, b.x, b.y, config);
  EXPECT_EQ(r.epoch_loss.size(), 80u);
}

TEST(Train, MismatchedLabelsThrow) {
  Network net = Network::random({2, 4, 2}, 7);
  la::MatrixD x(3, 2);
  EXPECT_THROW(train(net, x, {0, 1}, {}), InvalidArgument);
  EXPECT_THROW((void)accuracy(net, x, {0, 1}), InvalidArgument);
}

TEST(Train, InputDimMismatchThrows) {
  Network net = Network::random({3, 4, 2}, 7);
  la::MatrixD x(2, 2);
  EXPECT_THROW(train(net, x, {0, 1}, {}), InvalidArgument);
}

TEST(Accuracy, CountsCorrectly) {
  const Network net = tiny_net();
  la::MatrixD x(2, 2);
  x(0, 0) = 1.0; x(0, 1) = 0.5;   // classifies 1
  x(1, 0) = 1.0; x(1, 1) = 0.0;   // out = (1.1, 1.0) -> 0
  EXPECT_DOUBLE_EQ(accuracy(net, x, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(net, x, {0, 0}), 0.5);
}

}  // namespace
}  // namespace fannet::nn
