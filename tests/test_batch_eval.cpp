// Bit-identity tests for the batched SoA evaluator (DESIGN.md §10): every
// lane of a batch must reproduce the scalar oracle exactly — outputs,
// argmax ties, and overflow behavior (scalar throw == batched lane flag) —
// at every batch size, and every consumer of the kernel (enumerate,
// PrefixEvaluator suffix re-eval, the weight-fault scan) must produce
// reports bit-identical to its scalar path.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "core/faults.hpp"
#include "la/matrix.hpp"
#include "nn/batch_eval.hpp"
#include "nn/network.hpp"
#include "nn/quantized.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "verify/enumerate.hpp"
#include "verify/query.hpp"

namespace fannet::nn {
namespace {

using util::i64;

QuantizedNetwork random_qnet(std::uint64_t seed, std::size_t inputs = 4,
                             std::size_t hidden = 10, std::size_t out = 3) {
  return QuantizedNetwork::quantize(Network::random({inputs, hidden, out}, seed),
                                    100);
}

/// One random lane: inputs in [1,100], deltas in [-30,30], bias factor in
/// [70,130].
struct Lane {
  std::vector<i64> x;
  std::vector<int> deltas;
  i64 bias_factor = 100;
};

Lane random_lane(util::Rng& rng, std::size_t dims) {
  Lane lane;
  for (std::size_t i = 0; i < dims; ++i) {
    lane.x.push_back(rng.uniform_int(1, 100));
    lane.deltas.push_back(static_cast<int>(rng.uniform_int(-30, 30)));
  }
  lane.bias_factor = rng.uniform_int(70, 130);
  return lane;
}

// ---------------------------------------------------------------------------
// Forward-pass identity at the ISSUE's gate batch sizes.
// ---------------------------------------------------------------------------
TEST(BatchEval, MatchesScalarOracleAtEveryBatchSize) {
  const QuantizedNetwork q = random_qnet(11);
  const BatchEvaluator evaluator(q);
  util::Rng rng(99);

  for (const std::size_t batch_size : {1u, 7u, 64u, 1000u}) {
    BatchEvaluator::Batch batch = evaluator.make_batch();
    std::vector<Lane> staged;
    for (std::size_t t = 0; t < batch_size; ++t) {
      staged.push_back(random_lane(rng, q.input_dim()));
      batch.push_noised(staged.back().x, staged.back().deltas,
                        staged.back().bias_factor);
    }
    ASSERT_EQ(batch.lanes(), batch_size);
    evaluator.run(batch);

    for (std::size_t t = 0; t < batch_size; ++t) {
      const auto X =
          QuantizedNetwork::noised_inputs(staged[t].x, staged[t].deltas);
      ASSERT_FALSE(batch.overflowed(t));
      const auto expect = q.eval_output(X, staged[t].bias_factor);
      const auto got = batch.outputs(t);
      ASSERT_EQ(got.size(), expect.size());
      for (std::size_t k = 0; k < expect.size(); ++k) {
        EXPECT_EQ(got[k], expect[k]) << "batch " << batch_size << " lane "
                                     << t << " output " << k;
      }
      EXPECT_EQ(batch.label(t), q.classify(X, staged[t].bias_factor));
    }
    // clear() keeps buffers but drops lanes; the batch is reusable.
    batch.clear();
    EXPECT_EQ(batch.lanes(), 0u);
  }
}

TEST(BatchEval, PushScaledMatchesEvalOutput) {
  const QuantizedNetwork q = random_qnet(5);
  const BatchEvaluator evaluator(q);
  BatchEvaluator::Batch batch = evaluator.make_batch();
  util::Rng rng(7);

  std::vector<std::vector<i64>> staged;
  for (std::size_t t = 0; t < 9; ++t) {
    const Lane lane = random_lane(rng, q.input_dim());
    staged.push_back(QuantizedNetwork::noised_inputs(lane.x, lane.deltas));
    batch.push_scaled(staged.back(), kNoiseDen);
  }
  evaluator.run(batch);
  for (std::size_t t = 0; t < staged.size(); ++t) {
    const auto expect = q.eval_output(staged[t]);
    const auto got = batch.outputs(t);
    for (std::size_t k = 0; k < expect.size(); ++k) {
      EXPECT_EQ(got[k], expect[k]);
    }
  }
}

TEST(BatchEval, ArgmaxTiesResolveLowPerLane) {
  // Identity net (outputs == scaled inputs): stage deliberate ties and
  // check each lane against the scalar tie rule.
  constexpr std::size_t kOut = 3;
  Layer out;
  std::vector<std::vector<double>> rows(kOut, std::vector<double>(kOut, 0.0));
  for (std::size_t i = 0; i < kOut; ++i) rows[i][i] = 1.0;
  out.weights = la::MatrixD::from_rows(rows);
  out.bias = std::vector<double>(kOut, 0.0);
  out.activation = Activation::kLinear;
  const QuantizedNetwork q = QuantizedNetwork::quantize(Network({out}), 100);
  const BatchEvaluator evaluator(q);
  BatchEvaluator::Batch batch = evaluator.make_batch();

  const std::vector<std::vector<i64>> cases = {
      {70, 70, 70}, {90, 90, 10}, {90, 10, 90}, {10, 90, 90}, {10, 20, 90}};
  for (const auto& x : cases) {
    batch.push_noised(x, {}, kNoiseDen);
  }
  evaluator.run(batch);
  for (std::size_t t = 0; t < cases.size(); ++t) {
    EXPECT_EQ(batch.label(t),
              q.classify(QuantizedNetwork::noised_inputs(cases[t], {})));
  }
}

// ---------------------------------------------------------------------------
// Overflow parity: a flagged lane is exactly a lane whose scalar
// evaluation throws ArithmeticError, and flagged lanes never disturb their
// neighbours.
// ---------------------------------------------------------------------------
TEST(BatchEval, OverflowLaneFlagsExactlyWhereScalarThrows) {
  const QuantizedNetwork q = random_qnet(3);
  // A near-int64-max weight overflows the exact accumulation for every
  // input (the scalar path throws; the batch flags).
  const QuantizedNetwork huge =
      q.with_param(0, 0, 0, std::numeric_limits<i64>::max() / 2);
  const BatchEvaluator evaluator(huge);
  BatchEvaluator::Batch batch = evaluator.make_batch();
  util::Rng rng(17);
  std::vector<Lane> staged;
  for (std::size_t t = 0; t < 6; ++t) {
    staged.push_back(random_lane(rng, huge.input_dim()));
    batch.push_noised(staged[t].x, staged[t].deltas, staged[t].bias_factor);
  }
  evaluator.run(batch);
  for (std::size_t t = 0; t < staged.size(); ++t) {
    EXPECT_THROW(
        (void)huge.classify(
            QuantizedNetwork::noised_inputs(staged[t].x, staged[t].deltas),
            staged[t].bias_factor),
        ArithmeticError);
    EXPECT_TRUE(batch.overflowed(t));
  }
}

TEST(BatchEval, MixedOverflowLanesStayInert) {
  // Per-lane bias factors: extreme lanes flag (scalar throws on the
  // input_norm * bias_factor product), normal lanes still match scalar —
  // a flagged neighbour must not perturb them.
  const QuantizedNetwork q = QuantizedNetwork::quantize(
      Network::random({3, 6, 2}, 23), 100);
  const BatchEvaluator evaluator(q);
  BatchEvaluator::Batch batch = evaluator.make_batch();
  util::Rng rng(29);

  std::vector<Lane> staged;
  for (std::size_t t = 0; t < 10; ++t) {
    staged.push_back(random_lane(rng, q.input_dim()));
    if (t % 3 == 1) staged[t].bias_factor = std::numeric_limits<i64>::max();
    batch.push_noised(staged[t].x, staged[t].deltas, staged[t].bias_factor);
  }
  evaluator.run(batch);
  for (std::size_t t = 0; t < staged.size(); ++t) {
    const auto X =
        QuantizedNetwork::noised_inputs(staged[t].x, staged[t].deltas);
    if (t % 3 == 1) {
      EXPECT_THROW((void)q.classify(X, staged[t].bias_factor),
                   ArithmeticError);
      EXPECT_TRUE(batch.overflowed(t));
    } else {
      ASSERT_FALSE(batch.overflowed(t));
      EXPECT_EQ(batch.label(t), q.classify(X, staged[t].bias_factor));
      const auto expect = q.eval_output(X, staged[t].bias_factor);
      const auto got = batch.outputs(t);
      for (std::size_t k = 0; k < expect.size(); ++k) {
        EXPECT_EQ(got[k], expect[k]);
      }
    }
  }
}

TEST(BatchEval, ScaleChainOverflowFlagsEveryLane) {
  // Five layers push the running activation scale past int64: the scalar
  // evaluator throws for EVERY input of such a net, so the batch flags
  // every lane (and the evaluator constructor still must not throw).
  const Network deep = Network::random({2, 2, 2, 2, 2, 2}, 31);
  const QuantizedNetwork q = QuantizedNetwork::quantize(deep, 100);
  const std::vector<i64> x{50, 50};
  EXPECT_THROW((void)q.classify_noised(x, {}), ArithmeticError);

  const BatchEvaluator evaluator(q);
  BatchEvaluator::Batch batch = evaluator.make_batch();
  batch.push_noised(x, {}, kNoiseDen);
  batch.push_noised(x, {}, kNoiseDen);
  evaluator.run(batch);
  EXPECT_TRUE(batch.overflowed(0));
  EXPECT_TRUE(batch.overflowed(1));
}

TEST(BatchEval, PushNoisedValidatesSpanSizes) {
  const QuantizedNetwork q = random_qnet(41);
  const BatchEvaluator evaluator(q);
  BatchEvaluator::Batch batch = evaluator.make_batch();
  const std::vector<i64> wrong{1, 2};          // net wants 4 inputs
  const std::vector<i64> right{1, 2, 3, 4};
  const std::vector<int> bad_deltas{5};
  EXPECT_THROW(batch.push_noised(wrong, {}, 100), InvalidArgument);
  EXPECT_THROW(batch.push_noised(right, bad_deltas, 100), InvalidArgument);
  EXPECT_THROW((void)BatchEvaluator(QuantizedNetwork()).make_batch(),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Batched suffix re-evaluation: classify_patched_batch lane t ==
// classify_patched(lane t) for every parameter position and value,
// including values whose scalar evaluation throws.
// ---------------------------------------------------------------------------
TEST(BatchEval, ClassifyPatchedBatchMatchesScalarEverywhere) {
  const QuantizedNetwork q = random_qnet(53, 3, 5, 2);
  la::Matrix<i64> inputs(4, 3);
  util::Rng rng(59);
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    for (std::size_t i = 0; i < inputs.cols(); ++i) {
      inputs(s, i) = rng.uniform_int(1, 100);
    }
  }
  const PrefixEvaluator prefix(q, inputs);
  const BatchEvaluator evaluator(q);
  PrefixEvaluator::Scratch scalar_scratch;
  PrefixEvaluator::BatchScratch scratch;

  for (std::size_t li = 0; li < q.depth(); ++li) {
    const QLayer& layer = q.layers()[li];
    for (std::size_t row = 0; row < layer.out_dim(); ++row) {
      for (std::size_t col = 0; col <= layer.in_dim(); ++col) {
        const i64 original = q.param_raw(li, row, col);
        for (const i64 raw : {i64{0}, -original, original * 3 + 7,
                              std::numeric_limits<i64>::max() / 2}) {
          // One lane per sample, all sharing (layer, row, col, raw).
          std::vector<PrefixEvaluator::PatchLane> lanes;
          for (std::size_t s = 0; s < inputs.rows(); ++s) {
            lanes.push_back({s, row, col, raw});
          }
          prefix.classify_patched_batch(evaluator, li, lanes, scratch);
          for (std::size_t t = 0; t < lanes.size(); ++t) {
            int expect = -1;
            bool threw = false;
            try {
              expect = prefix.classify_patched(t, li, row, col, raw,
                                               scalar_scratch);
            } catch (const ArithmeticError&) {
              threw = true;
            }
            if (threw) {
              EXPECT_TRUE(scratch.overflow[t] != 0)
                  << "layer " << li << " row " << row << " col " << col;
            } else {
              ASSERT_TRUE(scratch.overflow[t] == 0)
                  << "layer " << li << " row " << row << " col " << col
                  << " raw " << raw;
              EXPECT_EQ(scratch.labels[t], expect)
                  << "layer " << li << " row " << row << " col " << col
                  << " raw " << raw << " lane " << t;
            }
          }
        }
      }
    }
  }
}

TEST(BatchEval, ClassifyPatchedBatchMixedLanes) {
  // Lanes with different rows/cols/raws in ONE batch (what the fault scan
  // actually stages) — only the faulted layer must be shared.
  const QuantizedNetwork q = random_qnet(61, 3, 5, 2);
  la::Matrix<i64> inputs(3, 3);
  util::Rng rng(67);
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    for (std::size_t i = 0; i < inputs.cols(); ++i) {
      inputs(s, i) = rng.uniform_int(1, 100);
    }
  }
  const PrefixEvaluator prefix(q, inputs);
  const BatchEvaluator evaluator(q);
  PrefixEvaluator::Scratch scalar_scratch;
  PrefixEvaluator::BatchScratch scratch;

  for (std::size_t li = 0; li < q.depth(); ++li) {
    const QLayer& layer = q.layers()[li];
    std::vector<PrefixEvaluator::PatchLane> lanes;
    for (std::size_t row = 0; row < layer.out_dim(); ++row) {
      for (std::size_t s = 0; s < inputs.rows(); ++s) {
        const std::size_t col = (row + s) % (layer.in_dim() + 1);
        const i64 raw = q.param_raw(li, row, col) * 2 - 31;
        lanes.push_back({s, row, col, raw});
      }
    }
    prefix.classify_patched_batch(evaluator, li, lanes, scratch);
    for (std::size_t t = 0; t < lanes.size(); ++t) {
      ASSERT_TRUE(scratch.overflow[t] == 0);
      EXPECT_EQ(scratch.labels[t],
                prefix.classify_patched(lanes[t].sample, li, lanes[t].row,
                                        lanes[t].col, lanes[t].raw,
                                        scalar_scratch))
          << "layer " << li << " lane " << t;
    }
  }
}

TEST(BatchEval, ClassifyPatchedBatchValidatesArguments) {
  const QuantizedNetwork q = random_qnet(71, 3, 5, 2);
  const QuantizedNetwork other = random_qnet(72, 3, 5, 2);
  la::Matrix<i64> inputs(1, 3);
  inputs(0, 0) = 50; inputs(0, 1) = 60; inputs(0, 2) = 70;
  const PrefixEvaluator prefix(q, inputs);
  const BatchEvaluator evaluator(q);
  const BatchEvaluator wrong_net(other);
  PrefixEvaluator::BatchScratch scratch;
  const std::vector<PrefixEvaluator::PatchLane> lanes = {{0, 0, 0, 42}};

  EXPECT_THROW(prefix.classify_patched_batch(wrong_net, 0, lanes, scratch),
               InvalidArgument);
  EXPECT_THROW(prefix.classify_patched_batch(evaluator, 9, lanes, scratch),
               InvalidArgument);
  const std::vector<PrefixEvaluator::PatchLane> bad_row = {{0, 99, 0, 42}};
  EXPECT_THROW(prefix.classify_patched_batch(evaluator, 0, bad_row, scratch),
               InvalidArgument);
  const std::vector<PrefixEvaluator::PatchLane> bad_sample = {{9, 0, 0, 42}};
  EXPECT_THROW(prefix.classify_patched_batch(evaluator, 0, bad_sample,
                                             scratch),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Enumerate identity: batched (and parallel) grid walks return exactly the
// scalar results — verdict, witness, work count, collected sets.
// ---------------------------------------------------------------------------
verify::Query make_query(const QuantizedNetwork& net, std::vector<i64> x,
                         int label, int range, bool bias_node = false) {
  verify::Query q;
  q.net = &net;
  q.x = std::move(x);
  q.true_label = label;
  q.box = verify::NoiseBox::symmetric(q.x.size() + (bias_node ? 1 : 0), range);
  q.bias_node = bias_node;
  return q;
}

TEST(BatchEval, EnumerateBatchedMatchesScalar) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const QuantizedNetwork q = QuantizedNetwork::quantize(
        Network::random({3, 6, 2}, seed), 100);
    const std::vector<i64> x{60, 40, 80};
    const int label = q.classify_noised(x, {});
    for (const bool bias_node : {false, true}) {
      const verify::Query query = make_query(q, x, label, 4, bias_node);

      const verify::VerifyResult scalar =
          verify::enumerate_find_first(query, {.batch = 1});
      for (const std::size_t batch : {0u, 5u, 64u}) {
        const verify::VerifyResult batched =
            verify::enumerate_find_first(query, {.batch = batch});
        EXPECT_EQ(batched.verdict, scalar.verdict) << "seed " << seed;
        EXPECT_EQ(batched.work, scalar.work) << "seed " << seed;
        ASSERT_EQ(batched.counterexample.has_value(),
                  scalar.counterexample.has_value());
        if (scalar.counterexample) {
          EXPECT_EQ(batched.counterexample->deltas,
                    scalar.counterexample->deltas);
          EXPECT_EQ(batched.counterexample->bias_delta,
                    scalar.counterexample->bias_delta);
          EXPECT_EQ(batched.counterexample->mis_label,
                    scalar.counterexample->mis_label);
        }
        // Parallel find_first: same verdict/witness/work for any threads.
        const verify::VerifyResult parallel = verify::enumerate_find_first(
            query, {.batch = batch, .threads = 4});
        EXPECT_EQ(parallel.verdict, scalar.verdict);
        EXPECT_EQ(parallel.work, scalar.work);
        if (scalar.counterexample) {
          EXPECT_EQ(parallel.counterexample->deltas,
                    scalar.counterexample->deltas);
        }
      }

      const auto scalar_set = verify::enumerate_collect(query, 1000,
                                                        {.batch = 1});
      const auto batched_set = verify::enumerate_collect(query, 1000, {});
      ASSERT_EQ(batched_set.size(), scalar_set.size());
      for (std::size_t k = 0; k < scalar_set.size(); ++k) {
        EXPECT_EQ(batched_set[k].deltas, scalar_set[k].deltas);
        EXPECT_EQ(batched_set[k].bias_delta, scalar_set[k].bias_delta);
        EXPECT_EQ(batched_set[k].mis_label, scalar_set[k].mis_label);
      }
    }
  }
}

TEST(BatchEval, EnumerateStreamEarlyStopCountsLikeScalar) {
  const QuantizedNetwork q = QuantizedNetwork::quantize(
      Network::random({3, 6, 2}, 2), 100);
  const std::vector<i64> x{60, 40, 80};
  const verify::Query query = make_query(q, x, q.classify_noised(x, {}), 6);

  // Stop after the 3rd counterexample: visited counts must agree exactly
  // (lanes staged past the stop are uncounted by design).
  const auto count_until = [&](std::size_t batch) {
    std::size_t hits = 0;
    return verify::enumerate_stream(
        query,
        [&](const verify::Counterexample&) { return ++hits < 3; },
        {.batch = batch});
  };
  const std::uint64_t scalar = count_until(1);
  EXPECT_EQ(count_until(0), scalar);
  EXPECT_EQ(count_until(7), scalar);
}

// ---------------------------------------------------------------------------
// Weight-fault scan identity: the batched incremental engine reproduces
// the scalar incremental report bit-for-bit — including the cost counters
// and the undecided accounting on overflow-heavy bit-flip scans.
// ---------------------------------------------------------------------------
TEST(BatchEval, WeightFaultScanBatchedMatchesScalar) {
  const QuantizedNetwork q = random_qnet(83, 3, 5, 2);
  la::Matrix<i64> inputs(5, 3);
  std::vector<int> labels;
  util::Rng rng(89);
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    for (std::size_t i = 0; i < inputs.cols(); ++i) {
      inputs(s, i) = rng.uniform_int(1, 100);
    }
    labels.push_back(static_cast<int>(s % 2));
  }

  for (const core::FaultModel model :
       {core::FaultModel::kPercentScale, core::FaultModel::kBitFlip}) {
    core::WeightFaultConfig scalar_config;
    scalar_config.model = model;
    scalar_config.max_percent = 30;
    scalar_config.step = 3;
    scalar_config.threads = 1;
    scalar_config.batch = 1;  // scalar reference path
    const core::WeightFaultReport scalar =
        core::analyze_weight_faults(q, inputs, labels, scalar_config);

    for (const std::size_t batch : {0u, 3u, 64u}) {
      core::WeightFaultConfig config = scalar_config;
      config.batch = batch;
      config.threads = (batch == 3) ? 4 : 1;  // also cross with threading
      const core::WeightFaultReport batched =
          core::analyze_weight_faults(q, inputs, labels, config);
      EXPECT_EQ(batched.faults, scalar.faults) << "batch " << batch;
      EXPECT_EQ(batched.robust_weights, scalar.robust_weights);
      EXPECT_EQ(batched.evaluations, scalar.evaluations) << "batch " << batch;
      EXPECT_EQ(batched.layer_evaluations, scalar.layer_evaluations)
          << "batch " << batch;
      EXPECT_EQ(batched.undecided_candidates, scalar.undecided_candidates)
          << "model " << static_cast<int>(model) << " batch " << batch;
    }
  }
}

}  // namespace
}  // namespace fannet::nn
