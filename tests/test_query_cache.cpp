// Query-cache correctness: canonical keys must separate every distinct
// region (no collisions), capability classes must group exactly the
// engines whose verdicts are interchangeable, scheduler results must be
// bit-identical with the cache on/off and across a cold -> warm disk-tier
// round trip, and the LRU tier must evict deterministically.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "core/fannet.hpp"
#include "nn/network.hpp"
#include "util/rng.hpp"
#include "verify/engine.hpp"
#include "verify/query_cache.hpp"
#include "verify/scheduler.hpp"

namespace fannet::verify {
namespace {

using util::i64;

nn::QuantizedNetwork& shared_net() {
  static nn::QuantizedNetwork net = nn::QuantizedNetwork::quantize(
      nn::Network::random({3, 5, 2}, 77), 100);
  return net;
}

Query make_query(const nn::QuantizedNetwork& net, std::vector<i64> x,
                 int true_label, NoiseBox box, bool bias_node = false) {
  Query q;
  q.net = &net;
  q.x = std::move(x);
  q.true_label = true_label;
  q.box = std::move(box);
  q.bias_node = bias_node;
  return q;
}

std::vector<Query> mixed_batch(std::size_t count, std::uint64_t seed) {
  const nn::QuantizedNetwork& net = shared_net();
  util::Rng rng(seed);
  std::vector<Query> batch;
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<i64> x = {rng.uniform_int(1, 100), rng.uniform_int(1, 100),
                          rng.uniform_int(1, 100)};
    const int actual = net.classify_noised(x, {});
    const int label = rng.bernoulli(0.4) ? 1 - actual : actual;
    batch.push_back(make_query(
        net, std::move(x), label,
        NoiseBox::symmetric(3, static_cast<int>(rng.uniform_int(1, 3)))));
  }
  return batch;
}

bool same_result(const VerifyResult& a, const VerifyResult& b) {
  return a.verdict == b.verdict && a.work == b.work &&
         a.counterexample == b.counterexample;
}

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const char* tag) {
    path = std::filesystem::temp_directory_path() /
           (std::string("fannet_cache_test_") + tag);
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  [[nodiscard]] std::string file(const char* name) const {
    return (path / name).string();
  }
};

// ---------------------------------------------------------------------------
// Canonical keys
// ---------------------------------------------------------------------------

TEST(CanonicalKey, EqualQueriesShareAKeyAcrossObjectIdentity) {
  const nn::QuantizedNetwork& net = shared_net();
  const Query a = make_query(net, {10, 20, 30}, 1, NoiseBox::symmetric(3, 5));
  const Query b = make_query(net, {10, 20, 30}, 1, NoiseBox::symmetric(3, 5));
  EXPECT_EQ(canonical_key(a, "complete"), canonical_key(b, "complete"));

  // A content-identical copy of the network (different address) must map to
  // the same key: the fingerprint is over content, not identity.
  const nn::QuantizedNetwork copy = net;
  Query c = a;
  c.net = &copy;
  EXPECT_EQ(canonical_key(a, "complete"), canonical_key(c, "complete"));
}

TEST(CanonicalKey, DistinctRegionsNeverCollide) {
  const nn::QuantizedNetwork& net = shared_net();
  const Query base =
      make_query(net, {10, 20, 30}, 1, NoiseBox::symmetric(3, 5));

  std::set<std::string> keys;
  keys.insert(canonical_key(base, "complete"));

  // Every single-field mutation must change the key.
  Query q = base;
  q.x[1] = 21;
  EXPECT_TRUE(keys.insert(canonical_key(q, "complete")).second) << "x";

  q = base;
  q.true_label = 0;
  EXPECT_TRUE(keys.insert(canonical_key(q, "complete")).second) << "label";

  q = base;
  q.box.lo[2] = -4;
  EXPECT_TRUE(keys.insert(canonical_key(q, "complete")).second) << "box.lo";

  q = base;
  q.box.hi[0] = 4;
  EXPECT_TRUE(keys.insert(canonical_key(q, "complete")).second) << "box.hi";

  q = base;
  q.bias_node = true;
  q.box = NoiseBox::symmetric(4, 5);
  EXPECT_TRUE(keys.insert(canonical_key(q, "complete")).second) << "bias";

  // Different capability class.
  EXPECT_TRUE(keys.insert(canonical_key(base, "sound-only:interval")).second);

  // Different network content.
  const nn::QuantizedNetwork other = nn::QuantizedNetwork::quantize(
      nn::Network::random({3, 5, 2}, 78), 100);
  q = base;
  q.net = &other;
  EXPECT_TRUE(keys.insert(canonical_key(q, "complete")).second) << "net";

  // Asymmetric regions that happen to share every per-dimension width must
  // still separate (lo/hi are serialized independently, not as widths).
  Query shifted = base;
  shifted.box.lo = {-4, -5, -5};
  shifted.box.hi = {6, 5, 5};
  Query centered = base;
  centered.box.lo = {-5, -5, -5};
  centered.box.hi = {5, 5, 5};
  EXPECT_NE(canonical_key(shifted, "complete"),
            canonical_key(centered, "complete"));
}

TEST(CanonicalKey, CapabilityClassGroupsCompleteEnginesOnly) {
  EXPECT_EQ(capability_class(engine("bnb")), "complete");
  EXPECT_EQ(capability_class(engine("cascade")), "complete");
  EXPECT_EQ(capability_class(engine("enumerate")), "complete");
  EXPECT_EQ(capability_class(engine("interval")), "sound-only:interval");
  EXPECT_EQ(capability_class(engine("symbolic")), "sound-only:symbolic");
  EXPECT_NE(capability_class(engine("interval")),
            capability_class(engine("symbolic")));
}

// ---------------------------------------------------------------------------
// LRU tier
// ---------------------------------------------------------------------------

TEST(QueryCache, MemoizesAndCountsHits) {
  QueryCache cache;
  const Engine& bnb = engine("bnb");
  const std::vector<Query> batch = mixed_batch(4, 21);

  for (const Query& q : batch) {
    EXPECT_FALSE(cache.lookup(q, bnb).has_value());
    cache.insert(q, bnb, bnb.verify(q));
  }
  for (const Query& q : batch) {
    const auto cached = cache.lookup(q, bnb);
    ASSERT_TRUE(cached.has_value());
    EXPECT_TRUE(same_result(*cached, bnb.verify(q)));
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, batch.size());
  EXPECT_EQ(stats.misses, batch.size());
  EXPECT_EQ(stats.insertions, batch.size());
  EXPECT_EQ(stats.entries, batch.size());

  // A complete-class entry answers any complete engine, but never a
  // sound-only one (distinct capability class).
  EXPECT_TRUE(cache.lookup(batch[0], engine("cascade")).has_value());
  EXPECT_FALSE(cache.lookup(batch[0], engine("interval")).has_value());
}

TEST(QueryCache, EvictsLeastRecentlyUsedAtCapacity) {
  QueryCache cache({.capacity = 2});
  const Engine& bnb = engine("bnb");
  const std::vector<Query> batch = mixed_batch(3, 22);

  cache.insert(batch[0], bnb, bnb.verify(batch[0]));
  cache.insert(batch[1], bnb, bnb.verify(batch[1]));
  // Touch [0] so [1] is the LRU victim when [2] arrives.
  EXPECT_TRUE(cache.lookup(batch[0], bnb).has_value());
  cache.insert(batch[2], bnb, bnb.verify(batch[2]));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(batch[0], bnb).has_value());
  EXPECT_FALSE(cache.lookup(batch[1], bnb).has_value());
  EXPECT_TRUE(cache.lookup(batch[2], bnb).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

// ---------------------------------------------------------------------------
// Scheduler integration: bit-identity cache on/off
// ---------------------------------------------------------------------------

TEST(QueryCache, SchedulerResultsAreBitIdenticalCacheOnVsOff) {
  const std::vector<Query> batch = mixed_batch(24, 31);
  const Engine& cascade = engine("cascade");

  const auto baseline = Scheduler({.threads = 2}).run_all(batch, cascade);

  QueryCache cache;
  const Scheduler cached({.threads = 2, .cache = &cache});
  for (int pass = 0; pass < 2; ++pass) {
    BatchStats stats;
    const auto results = cached.run_all(batch, cascade, &stats);
    ASSERT_EQ(results.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_TRUE(same_result(baseline[i], results[i]))
          << "pass " << pass << " index " << i;
    }
    if (pass == 1) {
      EXPECT_EQ(stats.cache_hits, batch.size());
      EXPECT_EQ(stats.cache_misses, 0u);
    }
    EXPECT_EQ(stats.cache_hits + stats.cache_misses, batch.size());
  }
}

TEST(QueryCache, WitnessSearchIsIdenticalCacheOnVsOff) {
  for (const std::uint64_t seed : {41u, 42u}) {
    const std::vector<Query> batch = mixed_batch(16, seed);
    const Engine& bnb = engine("bnb");
    const auto baseline = Scheduler({.threads = 1}).run_until_witness(batch, bnb);

    QueryCache cache;
    const Scheduler cached({.threads = 1, .cache = &cache});
    for (int pass = 0; pass < 2; ++pass) {
      BatchStats stats;
      const auto witness = cached.run_until_witness(batch, bnb, &stats);
      ASSERT_EQ(witness.has_value(), baseline.has_value()) << "seed " << seed;
      if (baseline.has_value()) {
        EXPECT_EQ(witness->index, baseline->index);
        EXPECT_TRUE(same_result(witness->result, baseline->result));
      }
      if (pass == 1) {
        EXPECT_EQ(stats.cache_misses, 0u);
      }
    }
  }
}

TEST(QueryCache, ToleranceAnalysisIsBitIdenticalWithGlobalCache) {
  const nn::QuantizedNetwork& net = shared_net();
  const core::Fannet fannet(net);
  la::Matrix<i64> inputs(6, 3);
  std::vector<int> labels;
  util::Rng rng(55);
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    for (std::size_t c = 0; c < inputs.cols(); ++c) {
      inputs(s, c) = rng.uniform_int(1, 100);
    }
    labels.push_back(net.classify_noised(inputs.row(s), {}));
  }
  core::ToleranceConfig config;
  config.start_range = 8;
  config.threads = 1;

  const auto baseline = fannet.analyze_tolerance(inputs, labels, config);

  QueryCache cache;
  const ScopedQueryCache guard(&cache);
  for (int pass = 0; pass < 2; ++pass) {
    const auto cached = fannet.analyze_tolerance(inputs, labels, config);
    EXPECT_EQ(cached.noise_tolerance, baseline.noise_tolerance) << pass;
    EXPECT_EQ(cached.queries, baseline.queries) << pass;
    ASSERT_EQ(cached.per_sample.size(), baseline.per_sample.size());
    for (std::size_t i = 0; i < baseline.per_sample.size(); ++i) {
      EXPECT_EQ(cached.per_sample[i].min_flip_range,
                baseline.per_sample[i].min_flip_range);
      EXPECT_EQ(cached.per_sample[i].witness, baseline.per_sample[i].witness);
    }
  }
  // The second analysis repeated the first one's queries exactly.
  EXPECT_GT(cache.stats().hits, 0u);
}

// ---------------------------------------------------------------------------
// Disk tier
// ---------------------------------------------------------------------------

TEST(QueryCache, DiskTierRoundTripsColdToWarm) {
  const TempDir dir("roundtrip");
  const std::string path = dir.file("cache.jsonl");
  const std::vector<Query> batch = mixed_batch(12, 61);
  const Engine& bnb = engine("bnb");

  std::vector<VerifyResult> cold;
  {
    QueryCache writer({.disk_path = path});
    const Scheduler scheduler({.threads = 2, .cache = &writer});
    cold = scheduler.run_all(batch, bnb);
    EXPECT_EQ(writer.stats().insertions, writer.size());
  }

  QueryCache reader({.disk_path = path});
  EXPECT_EQ(reader.stats().disk_loaded, reader.size());
  EXPECT_GT(reader.size(), 0u);

  BatchStats stats;
  const Scheduler scheduler({.threads = 2, .cache = &reader});
  const auto warm = scheduler.run_all(batch, bnb, &stats);
  EXPECT_EQ(stats.cache_misses, 0u);
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_TRUE(same_result(cold[i], warm[i])) << i;
  }
}

TEST(QueryCache, DiskTierSkipsMalformedLines) {
  const TempDir dir("malformed");
  const std::string path = dir.file("cache.jsonl");
  const std::vector<Query> batch = mixed_batch(3, 62);
  const Engine& bnb = engine("bnb");
  {
    QueryCache writer({.disk_path = path});
    for (const Query& q : batch) writer.insert(q, bnb, bnb.verify(q));
  }
  {
    // Simulate an interrupted run: a garbage line, a syntactically valid
    // line whose key does not encode a real query region, a line whose
    // number would overflow int64, and a truncated tail.
    std::ofstream append(path, std::ios::app);
    append << "not json at all\n";
    append << "{\"key\":\"01020304\",\"verdict\":\"robust\",\"work\":1}\n";
    append << "{\"key\":\"01020304\",\"verdict\":\"robust\","
              "\"work\":99999999999999999999999}\n";
    append << "{\"key\":\"0102\",\"verd";  // no newline, cut mid-field
  }
  QueryCache reader({.disk_path = path});
  EXPECT_EQ(reader.stats().disk_loaded, batch.size());
  EXPECT_EQ(reader.stats().disk_skipped, 4u);
  for (const Query& q : batch) {
    EXPECT_TRUE(reader.lookup(q, bnb).has_value());
  }
}

TEST(QueryCache, CachedVerifyFallsBackWithoutACache) {
  const std::vector<Query> batch = mixed_batch(2, 63);
  const Engine& bnb = engine("bnb");
  bool hit = true;
  const VerifyResult direct = cached_verify(nullptr, batch[0], bnb, &hit);
  EXPECT_FALSE(hit);
  EXPECT_TRUE(same_result(direct, bnb.verify(batch[0])));
}

}  // namespace
}  // namespace fannet::verify
