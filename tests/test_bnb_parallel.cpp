// Determinism of the work-stealing parallel branch-and-bound: for any
// thread count and either box-priority policy,
//   - bnb_verify returns the *lexicographically lowest* counterexample in
//     the box (checked against exhaustive enumeration),
//   - bnb_collect returns the max_count lex-smallest counterexamples in
//     ascending order,
//   - bnb_stream delivers exactly the full counterexample set,
// and box-budget exhaustion degrades to kUnknown through the cascade and
// the scheduler instead of aborting the batch.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "nn/network.hpp"
#include "util/rng.hpp"
#include "verify/bnb.hpp"
#include "verify/engine.hpp"
#include "verify/enumerate.hpp"
#include "verify/query_cache.hpp"
#include "verify/scheduler.hpp"

namespace fannet::verify {
namespace {

using util::i64;

Query make_query(const nn::QuantizedNetwork& net, std::vector<i64> x,
                 int label, int range, bool bias_node = false) {
  Query q;
  q.net = &net;
  q.x = std::move(x);
  q.true_label = label;
  q.box = NoiseBox::symmetric(q.x.size() + (bias_node ? 1 : 0), range);
  q.bias_node = bias_node;
  return q;
}

nn::QuantizedNetwork random_qnet(std::uint64_t seed, std::size_t inputs = 3,
                                 std::size_t hidden = 6) {
  const nn::Network net = nn::Network::random({inputs, hidden, 2}, seed);
  return nn::QuantizedNetwork::quantize(net, 100);
}

/// Full noise vector of a counterexample (input deltas then bias delta),
/// the order the lexicographic guarantee is defined over.
std::vector<int> full_vector(const Counterexample& cex, bool bias_node) {
  std::vector<int> v = cex.deltas;
  if (bias_node) v.push_back(cex.bias_delta);
  return v;
}

/// Ground truth: every counterexample in the box, lex-sorted.
std::vector<std::vector<int>> lex_sorted_truth(const Query& q) {
  std::vector<std::vector<int>> all;
  enumerate_stream(q, [&](const Counterexample& cex) {
    all.push_back(full_vector(cex, q.bias_node));
    return true;
  });
  std::sort(all.begin(), all.end());
  return all;
}

class ParallelBnb : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelBnb, VerifyIsLexLowestAndThreadCountInvariant) {
  const std::uint64_t seed = GetParam();
  const nn::QuantizedNetwork net = random_qnet(seed);
  util::Rng rng(seed * 101 + 13);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<i64> x(3);
    for (auto& v : x) v = rng.uniform_int(1, 100);
    const int actual = net.classify_noised(x, {});
    // Mix robust-ish and certainly-vulnerable queries.
    const int label = rng.bernoulli(0.5) ? actual : 1 - actual;
    const int range = static_cast<int>(rng.uniform_int(1, 5));
    const bool bias = rng.bernoulli(0.3);
    const Query q = make_query(net, x, label, range, bias);
    const std::vector<std::vector<int>> truth = lex_sorted_truth(q);

    for (const auto policy :
         {BnbOptions::Policy::kDepthFirst, BnbOptions::Policy::kBestFirst}) {
      for (const std::size_t threads : {1u, 2u, 8u}) {
        BnbOptions opt;
        opt.threads = threads;
        opt.policy = policy;
        const VerifyResult r = bnb_verify(q, opt);
        if (truth.empty()) {
          EXPECT_EQ(r.verdict, Verdict::kRobust)
              << "seed=" << seed << " trial=" << trial
              << " threads=" << threads;
        } else {
          ASSERT_EQ(r.verdict, Verdict::kVulnerable)
              << "seed=" << seed << " trial=" << trial
              << " threads=" << threads;
          ASSERT_TRUE(r.counterexample.has_value());
          // The witness is the lex-lowest counterexample — bit-identical
          // for every thread count and policy, and truly misclassifying.
          EXPECT_EQ(full_vector(*r.counterexample, bias), truth.front())
              << "seed=" << seed << " trial=" << trial
              << " threads=" << threads;
          EXPECT_NE(classify_under_noise(q, full_vector(*r.counterexample,
                                                        q.bias_node)),
                    q.true_label);
        }
      }
    }
  }
}

TEST_P(ParallelBnb, CollectReturnsAscendingLexSmallestK) {
  const std::uint64_t seed = GetParam();
  const nn::QuantizedNetwork net = random_qnet(seed, 2, 5);
  util::Rng rng(seed * 7 + 1);
  std::vector<i64> x{rng.uniform_int(1, 100), rng.uniform_int(1, 100)};
  // Deliberately wrong label guarantees a rich counterexample set.
  const Query q = make_query(net, x, 1 - net.classify_noised(x, {}), 3);
  const std::vector<std::vector<int>> truth = lex_sorted_truth(q);
  ASSERT_FALSE(truth.empty());

  for (const std::size_t cap : {std::size_t{3}, truth.size(), truth.size() + 7}) {
    const std::size_t expect = std::min(cap, truth.size());
    for (const std::size_t threads : {1u, 2u, 8u}) {
      BnbOptions opt;
      opt.threads = threads;
      const std::vector<Counterexample> got = bnb_collect(q, cap, opt);
      ASSERT_EQ(got.size(), expect) << "cap=" << cap << " threads=" << threads;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(full_vector(got[i], false), truth[i])
            << "cap=" << cap << " threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST_P(ParallelBnb, StreamDeliversTheFullSetOnAnyThreadCount) {
  const std::uint64_t seed = GetParam();
  const nn::QuantizedNetwork net = random_qnet(seed, 2, 5);
  std::vector<i64> x{40, 70};
  const Query q = make_query(net, x, 1 - net.classify_noised(x, {}), 3);
  const std::vector<std::vector<int>> truth = lex_sorted_truth(q);

  for (const std::size_t threads : {1u, 4u}) {
    BnbOptions opt;
    opt.threads = threads;
    std::set<std::vector<int>> seen;
    bnb_stream(
        q,
        [&](const Counterexample& cex) {
          // Sink calls are serialized, so no locking needed here.
          EXPECT_TRUE(seen.insert(full_vector(cex, false)).second)
              << "duplicate delivery";
          return true;
        },
        opt);
    EXPECT_EQ(seen.size(), truth.size()) << "threads=" << threads;
    EXPECT_TRUE(std::equal(seen.begin(), seen.end(), truth.begin()))
        << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelBnb,
                         testing::Range<std::uint64_t>(1, 7));

TEST(ParallelBnb, EarlyStopSinkCancelsAllWorkers) {
  const nn::QuantizedNetwork net = random_qnet(21, 2, 5);
  std::vector<i64> x{30, 80};
  const Query q = make_query(net, x, 1 - net.classify_noised(x, {}), 4);
  for (const std::size_t threads : {1u, 8u}) {
    BnbOptions opt;
    opt.threads = threads;
    int delivered = 0;
    bnb_stream(
        q,
        [&](const Counterexample&) { return ++delivered < 5; },
        opt);
    EXPECT_EQ(delivered, 5) << "threads=" << threads;
  }
}

TEST(ParallelBnb, HardQueryAgreesAcrossThreadCounts) {
  // A wider, deeper box than the unit queries: exercises real stealing
  // (and is the shape the ThreadSanitizer CI job race-checks).
  const nn::QuantizedNetwork net = random_qnet(33, 4, 10);
  std::vector<i64> x{15, 45, 75, 95};
  const Query q = make_query(net, x, net.classify_noised(x, {}), 25);
  BnbOptions serial;
  const VerifyResult reference = bnb_verify(q, serial);
  for (const std::size_t threads : {2u, 8u}) {
    for (const auto policy :
         {BnbOptions::Policy::kDepthFirst, BnbOptions::Policy::kBestFirst}) {
      BnbOptions opt;
      opt.threads = threads;
      opt.policy = policy;
      const VerifyResult r = bnb_verify(q, opt);
      EXPECT_EQ(r.verdict, reference.verdict) << "threads=" << threads;
      EXPECT_EQ(r.counterexample, reference.counterexample)
          << "threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Budget exhaustion degrades gracefully through the engine stack.
// ---------------------------------------------------------------------------

/// A bnb engine with a tiny box budget, so exhaustion is guaranteed.
/// Deliberately NOT registered: the process-wide registry is shared by
/// every test in the binary (the agreement properties iterate it), so a
/// crippled engine must stay local — run_all takes any `const Engine&`,
/// and the cascade test injects it via the pointer-stage constructor.
class TinyBudgetBnb final : public Engine {
 public:
  explicit TinyBudgetBnb(std::uint64_t max_boxes = 2)
      : max_boxes_(max_boxes) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "bnb-tiny-budget";
  }
  [[nodiscard]] bool complete() const noexcept override { return true; }
  [[nodiscard]] VerifyResult verify(const Query& query) const override {
    BnbOptions opt;
    opt.max_boxes = max_boxes_;
    opt.use_symbolic = false;  // weak pruning forces splitting
    return bnb_verify(query, opt);
  }

 private:
  std::uint64_t max_boxes_;
};

std::vector<Query> exhausting_batch(const nn::QuantizedNetwork& net) {
  std::vector<Query> batch;
  for (const i64 base : {20, 50, 80}) {
    batch.push_back(make_query(net, {base, base, base},
                               net.classify_noised({{base, base, base}}, {}),
                               40));
  }
  return batch;
}

TEST(ParallelBnb, BudgetUnknownFlowsThroughSchedulerRunAll) {
  const nn::QuantizedNetwork net = random_qnet(55);
  const std::vector<Query> batch = exhausting_batch(net);
  const TinyBudgetBnb tiny;
  BatchStats stats;
  std::vector<VerifyResult> results;
  ASSERT_NO_THROW(
      results = Scheduler({.threads = 2}).run_all(batch, tiny, &stats));
  ASSERT_EQ(results.size(), batch.size());
  for (const VerifyResult& r : results) {
    EXPECT_EQ(r.verdict, Verdict::kUnknown);
    EXPECT_TRUE(r.resource_limited);
    EXPECT_GE(r.work, 2u);  // the boxes it did process are recorded
  }
  EXPECT_EQ(stats.executed, batch.size());
}

TEST(ParallelBnb, BudgetUnknownFlowsThroughCascade) {
  // A cascade whose complete stage runs out of budget answers kUnknown
  // (accumulating work across stages) instead of aborting the batch.  The
  // crippled stage is injected by pointer, keeping the registry clean.
  const nn::QuantizedNetwork net = random_qnet(56);
  const TinyBudgetBnb tiny;
  const auto cascade = CascadeEngine::with_stages(
      {&engine("interval"), &engine("symbolic"), &tiny});
  for (const Query& q : exhausting_batch(net)) {
    VerifyResult r;
    ASSERT_NO_THROW(r = cascade->verify(q));
    if (r.verdict == Verdict::kUnknown) {
      EXPECT_FALSE(r.counterexample.has_value());
      EXPECT_TRUE(r.resource_limited);
      EXPECT_GE(r.work, 2u);
    }
  }
}

TEST(ParallelBnb, ResourceLimitedResultsAreNeverMemoized) {
  // A starved run's result is sound but not canonical (its witness need
  // not be the lex-lowest): caching it would poison future runs with
  // bigger budgets.  Neither the kUnknown nor the witness-in-hand
  // kVulnerable form may enter the cache.
  const nn::QuantizedNetwork net = random_qnet(57);
  const Query q = exhausting_batch(net).front();
  QueryCache cache;
  bool hit = true;
  const TinyBudgetBnb tiny;
  const VerifyResult starved = cached_verify(&cache, q, tiny, &hit);
  EXPECT_EQ(starved.verdict, Verdict::kUnknown);
  EXPECT_TRUE(starved.resource_limited);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 0u);

  // Exhaustion *after* a witness landed: kVulnerable + resource_limited
  // must also stay out of the cache.  (Wrong label makes witnesses
  // plentiful; whether a given budget trips mid-continuation depends on
  // the tree shape, so assert on whichever deterministic outcome this
  // query produces: a limited result caches nothing, a completed one
  // caches exactly one canonical entry.)
  Query vulnerable = q;
  vulnerable.true_label = 1 - vulnerable.true_label;
  const TinyBudgetBnb small_budget(60);
  const VerifyResult partial =
      cached_verify(&cache, vulnerable, small_budget, &hit);
  const std::size_t after_partial = partial.resource_limited ? 0u : 1u;
  EXPECT_EQ(cache.size(), after_partial);

  // The full-budget engine re-decides and its verdict does get cached.
  const VerifyResult decided = cached_verify(&cache, q, engine("bnb"), &hit);
  EXPECT_NE(decided.verdict, Verdict::kUnknown);
  EXPECT_FALSE(decided.resource_limited);
  EXPECT_EQ(cache.size(), after_partial + 1);
}

}  // namespace
}  // namespace fannet::verify
