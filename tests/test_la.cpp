// Unit tests for the small linear-algebra layer.
#include <gtest/gtest.h>

#include "la/matrix.hpp"
#include "util/error.hpp"

namespace fannet::la {
namespace {

TEST(Matrix, ConstructionAndFill) {
  const MatrixD m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
}

TEST(Matrix, FromRows) {
  const auto m = MatrixD::from_rows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6);
}

TEST(Matrix, FromRowsRaggedThrows) {
  EXPECT_THROW(MatrixD::from_rows({{1, 2}, {3}}), InvalidArgument);
}

TEST(Matrix, OutOfBoundsThrows) {
  MatrixD m(2, 2);
  EXPECT_THROW((void)m(2, 0), InvalidArgument);
  EXPECT_THROW((void)m(0, 2), InvalidArgument);
}

TEST(Matrix, RowView) {
  auto m = MatrixD::from_rows({{1, 2, 3}, {4, 5, 6}});
  const auto row = m.row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0], 4);
  m.row(1)[0] = 9;
  EXPECT_DOUBLE_EQ(m(1, 0), 9);
}

TEST(Matrix, MatVec) {
  const auto m = MatrixD::from_rows({{1, 2}, {3, 4}});
  const std::vector<double> x{1, -1};
  const auto y = matvec(m, std::span<const double>(x));
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -1);
  EXPECT_DOUBLE_EQ(y[1], -1);
}

TEST(Matrix, MatVecDimensionMismatchThrows) {
  const MatrixD m(2, 3);
  const std::vector<double> x{1, 2};
  EXPECT_THROW(matvec(m, std::span<const double>(x)), InvalidArgument);
}

TEST(Matrix, Transpose) {
  const auto m = MatrixD::from_rows({{1, 2, 3}, {4, 5, 6}});
  const auto t = transpose(m);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
  EXPECT_EQ(transpose(t), m);
}

TEST(Matrix, IntegerInstantiation) {
  Matrix<std::int64_t> m(2, 2, -7);
  EXPECT_EQ(m(0, 0), -7);
  m(0, 0) = 42;
  EXPECT_EQ(m(0, 0), 42);
}

TEST(Matrix, Equality) {
  const auto a = MatrixD::from_rows({{1, 2}});
  auto b = MatrixD::from_rows({{1, 2}});
  EXPECT_EQ(a, b);
  b(0, 1) = 3;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace fannet::la
