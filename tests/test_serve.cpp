// fannet_serve integration tests, run against a live in-process server via
// the harness (tests/serve_harness.hpp).  The load-bearing properties:
// responses are bit-identical to direct library calls (verdicts,
// counterexamples, tolerance descents, sensitivity probes), the shared
// cache answers across connections, deadlines expire per-request, protocol
// violations produce structured errors (never a crash), disconnects cancel
// in-flight work, and a drain finishes queued work before exiting.
//
// Every suite name starts with "Serve" so the TSan CI job's filter picks
// the whole layer up.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/analysis.hpp"
#include "core/fannet.hpp"
#include "serve_harness.hpp"
#include "util/stopwatch.hpp"
#include "verify/engine.hpp"
#include "verify/scheduler.hpp"

namespace fannet::serve {
namespace {

using harness::ServeClient;
using harness::TestServer;

/// Polls `predicate` (on the stats snapshot) until true or ~10s elapse.
bool poll_stats(TestServer& server, bool (*predicate)(const ServerStats&)) {
  const util::Stopwatch watch;
  while (watch.millis() < 10000.0) {
    if (predicate(server.stats())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate(server.stats());
}

const Json& field(const Json& object, std::string_view key) {
  const Json* value = object.find(key);
  EXPECT_NE(value, nullptr) << "missing field '" << key << "'";
  static const Json null_json;
  return value != nullptr ? *value : null_json;
}

TEST(ServeIntrospection, PingEchoesId) {
  TestServer server;
  ServeClient client(server.port());
  ASSERT_TRUE(client.connected());
  const ServeClient::Reply reply = client.call(harness::simple_request(7, "ping"));
  ASSERT_TRUE(reply.final.has_value());
  EXPECT_EQ(reply.final_type(), "pong");
  EXPECT_EQ(field(*reply.final, "id").as_int(), 7);
}

TEST(ServeIntrospection, ModelsReportTheFleetFingerprint) {
  TestServer server;
  ServeClient client(server.port());
  const ServeClient::Reply reply =
      client.call(harness::simple_request(1, "models"));
  ASSERT_EQ(reply.final_type(), "result");
  const Json& models = field(field(*reply.final, "body"), "models");
  ASSERT_EQ(models.as_array().size(), 1u);
  const Json& entry = models.as_array().front();
  EXPECT_EQ(field(entry, "name").as_string(), "casestudy");
  const core::CaseStudy& study = harness::shared_case_study();
  EXPECT_EQ(field(entry, "inputs").as_int(),
            static_cast<std::int64_t>(study.qnet.layers().front().in_dim()));
  EXPECT_EQ(field(entry, "outputs").as_int(),
            static_cast<std::int64_t>(study.qnet.layers().back().out_dim()));
  EXPECT_EQ(field(entry, "samples").as_int(),
            static_cast<std::int64_t>(study.test_y.size()));
  // The fingerprint must identify the exact loaded network, not just its
  // shape: recompute from the shared study.
  char expected[17];
  std::snprintf(expected, sizeof(expected), "%016llx",
                static_cast<unsigned long long>(study.qnet.fingerprint()));
  EXPECT_EQ(field(entry, "fingerprint").as_string(), expected);
  // The advertised probe point is the harness's canonical good sample:
  // the first P1-correct one.  Wire clients (tools/serve_client.py) rely
  // on it to issue meaningful P2 queries without the dataset.
  const Json& probe = field(entry, "probe");
  EXPECT_EQ(field(probe, "label").as_int(), harness::good_sample_label());
  const std::vector<util::i64> good_x = harness::good_sample_x();
  const auto& probe_x = field(probe, "x").as_array();
  ASSERT_EQ(probe_x.size(), good_x.size());
  for (std::size_t i = 0; i < good_x.size(); ++i) {
    EXPECT_EQ(probe_x[i].as_int(), good_x[i]);
  }
}

TEST(ServeIntrospection, EnginesMirrorTheRegistryCaps) {
  TestServer server;
  ServeClient client(server.port());
  const ServeClient::Reply reply =
      client.call(harness::simple_request(2, "engines"));
  ASSERT_EQ(reply.final_type(), "result");
  const Json& engines = field(field(*reply.final, "body"), "engines");
  const auto names = verify::registry().names();
  ASSERT_EQ(engines.as_array().size(), names.size());
  for (const Json& entry : engines.as_array()) {
    const std::string& name = field(entry, "name").as_string();
    const verify::EngineCaps caps = verify::engine(name).caps();
    EXPECT_EQ(field(entry, "complete").as_bool(), caps.complete) << name;
    EXPECT_EQ(field(entry, "deadline").as_bool(), caps.deadline) << name;
  }
}

TEST(ServeIntrospection, StatsCountRequests) {
  TestServer server;
  ServeClient client(server.port());
  (void)client.call(harness::simple_request(1, "ping"));
  const ServeClient::Reply reply =
      client.call(harness::simple_request(2, "stats"));
  ASSERT_EQ(reply.final_type(), "result");
  const Json& body = field(*reply.final, "body");
  EXPECT_GE(field(body, "requests").as_int(), 2);
  EXPECT_GE(field(body, "connections_accepted").as_int(), 1);
  EXPECT_EQ(field(body, "connections_active").as_int(), 1);
}

// --- bit-identity against direct library calls ------------------------------

TEST(ServeVerify, BitIdenticalToDirectSchedulerExecution) {
  TestServer server;
  ServeClient client(server.port());
  const std::vector<util::i64> x = harness::good_sample_x();
  const int label = harness::good_sample_label();
  const core::Fannet fannet(harness::shared_case_study().qnet);

  for (const int range : {3, 9, 15}) {
    const ServeClient::Reply reply = client.call(
        harness::verify_request(static_cast<std::uint64_t>(range), x, label,
                                range, "cascade"));
    ASSERT_EQ(reply.final_type(), "result") << "range " << range;
    const Json& body = field(*reply.final, "body");

    const verify::Query query = fannet.make_query(
        x, label, verify::NoiseBox::symmetric(x.size(), range), false);
    const verify::VerifyResult direct =
        verify::Scheduler({.threads = 1})
            .verify_one(query, verify::engine("cascade"));

    const char* expected = direct.verdict == verify::Verdict::kVulnerable
                               ? "vulnerable"
                               : (direct.verdict == verify::Verdict::kRobust
                                      ? "robust"
                                      : "unknown");
    EXPECT_EQ(field(body, "verdict").as_string(), expected) << "range " << range;
    const Json* cex = body.find("counterexample");
    if (direct.counterexample.has_value()) {
      ASSERT_NE(cex, nullptr) << "range " << range;
      const Json& deltas = field(*cex, "deltas");
      ASSERT_EQ(deltas.as_array().size(), direct.counterexample->deltas.size());
      for (std::size_t i = 0; i < direct.counterexample->deltas.size(); ++i) {
        EXPECT_EQ(deltas.as_array()[i].as_int(),
                  direct.counterexample->deltas[i]);
      }
      EXPECT_EQ(field(*cex, "mis_label").as_int(),
                direct.counterexample->mis_label);
    } else {
      EXPECT_EQ(cex, nullptr) << "range " << range;
    }
  }
}

TEST(ServeVerify, SharedCacheAnswersAcrossConnections) {
  TestServer server;
  const std::vector<util::i64> x = harness::good_sample_x();
  const int label = harness::good_sample_label();
  const std::string request = harness::verify_request(1, x, label, 9);

  ServeClient first(server.port());
  const ServeClient::Reply cold = first.call(request);
  ASSERT_EQ(cold.final_type(), "result");
  EXPECT_FALSE(field(field(*cold.final, "body"), "cache_hit").as_bool());

  ServeClient second(server.port());
  const ServeClient::Reply warm = second.call(request);
  ASSERT_EQ(warm.final_type(), "result");
  EXPECT_TRUE(field(field(*warm.final, "body"), "cache_hit").as_bool());
  // Cached and executed answers must agree.
  EXPECT_EQ(field(field(*warm.final, "body"), "verdict").as_string(),
            field(field(*cold.final, "body"), "verdict").as_string());

  const ServerStats stats = server.stats();
  EXPECT_GE(stats.cache_hits, 1u);
  EXPECT_GE(stats.cache_misses, 1u);
}

TEST(ServeBatch, StreamsProgressAndMatchesDirectVerdicts) {
  TestServer server;
  ServeClient client(server.port());
  const std::vector<util::i64> x = harness::good_sample_x();
  const int label = harness::good_sample_label();
  std::vector<int> ranges;
  for (int r = 1; r <= 12; ++r) ranges.push_back(r);

  const ServeClient::Reply reply =
      client.call(harness::batch_request(5, x, label, ranges, 4));
  ASSERT_EQ(reply.final_type(), "result");
  // 12 items, progress every 4, no frame after the last chunk: done=4, done=8.
  ASSERT_EQ(reply.progress.size(), 2u);
  EXPECT_EQ(field(reply.progress[0], "done").as_int(), 4);
  EXPECT_EQ(field(reply.progress[1], "done").as_int(), 8);
  EXPECT_EQ(field(reply.progress[0], "total").as_int(), 12);

  const Json& body = field(*reply.final, "body");
  const Json& items = field(body, "items");
  ASSERT_EQ(items.as_array().size(), ranges.size());

  const core::Fannet fannet(harness::shared_case_study().qnet);
  const verify::Scheduler direct({.threads = 1});
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const verify::VerifyResult r = direct.verify_one(
        fannet.make_query(x, label,
                          verify::NoiseBox::symmetric(x.size(), ranges[i]),
                          false),
        verify::engine("cascade"));
    const char* expected =
        r.verdict == verify::Verdict::kVulnerable ? "vulnerable" : "robust";
    EXPECT_EQ(field(items.as_array()[i], "verdict").as_string(), expected)
        << "range " << ranges[i];
  }
  EXPECT_EQ(field(field(body, "stats"), "queries").as_int(), 12);
  EXPECT_GE(server.stats().progress_frames, 2u);
}

TEST(ServeTolerance, MatchesCoreAnalyzeTolerance) {
  TestServer server;
  ServeClient client(server.port());
  const core::CaseStudy& study = harness::shared_case_study();
  const std::vector<util::i64> x = harness::good_sample_x();
  const int label = harness::good_sample_label();

  Json request = harness::request_base(9, "tolerance");
  request.set("x", harness::int_array(x));
  request.set("true_label", Json::integer(label));
  request.set("start_range", Json::integer(50));
  const ServeClient::Reply reply = client.call(request.dump());
  ASSERT_EQ(reply.final_type(), "result");
  const Json& body = field(*reply.final, "body");
  EXPECT_TRUE(field(body, "correct_without_noise").as_bool());

  // Direct library run on a one-row matrix of the same sample.
  la::Matrix<util::i64> inputs(1, x.size());
  for (std::size_t c = 0; c < x.size(); ++c) inputs(0, c) = x[c];
  core::ToleranceConfig config;
  config.start_range = 50;
  config.threads = 1;
  const core::ToleranceReport report =
      core::Fannet(study.qnet).analyze_tolerance(inputs, {label}, config);
  ASSERT_EQ(report.per_sample.size(), 1u);
  const core::SampleTolerance& direct = report.per_sample[0];

  const Json& min_flip = field(body, "min_flip_range");
  if (direct.min_flip_range.has_value()) {
    ASSERT_TRUE(min_flip.is_int());
    EXPECT_EQ(min_flip.as_int(), *direct.min_flip_range);
    ASSERT_TRUE(direct.witness.has_value());
    const Json& witness = field(body, "witness");
    const Json& deltas = field(witness, "deltas");
    ASSERT_EQ(deltas.as_array().size(), direct.witness->deltas.size());
    for (std::size_t i = 0; i < direct.witness->deltas.size(); ++i) {
      EXPECT_EQ(deltas.as_array()[i].as_int(), direct.witness->deltas[i]);
    }
    EXPECT_EQ(field(witness, "mis_label").as_int(), direct.witness->mis_label);
  } else {
    EXPECT_TRUE(min_flip.is_null());
  }
}

TEST(ServeSensitivity, MatchesCoreAnalyzeSensitivity) {
  TestServer server;
  ServeClient client(server.port());
  const core::CaseStudy& study = harness::shared_case_study();
  const std::vector<util::i64> x = harness::good_sample_x();
  const int label = harness::good_sample_label();
  const int range = 20;

  la::Matrix<util::i64> inputs(1, x.size());
  for (std::size_t c = 0; c < x.size(); ++c) inputs(0, c) = x[c];
  core::SensitivityConfig config;
  config.threads = 1;
  const core::NodeSensitivityReport report = core::analyze_sensitivity(
      core::Fannet(study.qnet), inputs, {label}, range, {}, config);

  std::uint64_t id = 100;
  for (const std::size_t node : {std::size_t{0}, std::size_t{2},
                                 std::size_t{4}}) {
    for (const int direction : {1, -1}) {
      Json request = harness::request_base(++id, "sensitivity");
      request.set("x", harness::int_array(x));
      request.set("true_label", Json::integer(label));
      request.set("box", harness::box_json(range));
      request.set("node", Json::integer(static_cast<std::int64_t>(node)));
      request.set("direction", Json::integer(direction));
      const ServeClient::Reply reply = client.call(request.dump());
      ASSERT_EQ(reply.final_type(), "result") << "node " << node;
      const bool expected = direction > 0 ? report.positive_possible[node]
                                          : report.negative_possible[node];
      EXPECT_EQ(field(field(*reply.final, "body"), "possible").as_bool(),
                expected)
          << "node " << node << " direction " << direction;
    }

    Json solo = harness::request_base(++id, "sensitivity");
    solo.set("x", harness::int_array(x));
    solo.set("true_label", Json::integer(label));
    solo.set("box", harness::box_json(range));
    solo.set("node", Json::integer(static_cast<std::int64_t>(node)));
    solo.set("direction", Json::integer(0));
    const ServeClient::Reply reply = client.call(solo.dump());
    ASSERT_EQ(reply.final_type(), "result") << "node " << node;
    const Json& min_flip = field(field(*reply.final, "body"), "min_flip");
    if (report.solo_flip_range[node].has_value()) {
      ASSERT_TRUE(min_flip.is_int()) << "node " << node;
      EXPECT_EQ(min_flip.as_int(), *report.solo_flip_range[node])
          << "node " << node;
    } else {
      EXPECT_TRUE(min_flip.is_null()) << "node " << node;
    }
  }
}

// --- deadlines, errors, framing, disconnect, admission, drain ---------------

TEST(ServeDeadline, ExpiresPerRequestWithoutPoisoningTheConnection) {
  TestServer server;
  ServeClient client(server.port());
  const std::vector<util::i64> x = harness::good_sample_x();
  const int label = harness::good_sample_label();

  // Enumerate over ±40 on 5 dims is astronomically large; the 50ms deadline
  // must cut it off with a structured unknown, not a hang.
  const ServeClient::Reply expired = client.call(
      harness::verify_request(1, x, label, 40, "enumerate", 50));
  ASSERT_EQ(expired.final_type(), "result");
  const Json& body = field(*expired.final, "body");
  EXPECT_EQ(field(body, "verdict").as_string(), "unknown");
  EXPECT_TRUE(field(body, "resource_limited").as_bool());
  EXPECT_TRUE(field(body, "deadline_expired").as_bool());
  EXPECT_GE(server.stats().deadline_expired, 1u);

  // The connection (and the server) keep answering normally afterwards.
  const ServeClient::Reply next =
      client.call(harness::verify_request(2, x, label, 5, "cascade"));
  ASSERT_EQ(next.final_type(), "result");
  EXPECT_FALSE(field(field(*next.final, "body"), "resource_limited").as_bool());
}

TEST(ServeErrors, StructuredErrorsKeepTheConnectionUsable) {
  TestServer server;
  ServeClient client(server.port());
  const std::vector<util::i64> x = harness::good_sample_x();

  struct Case {
    std::string payload;
    const char* code;
  };
  // Built without request_base: Json::set appends, and a duplicate "model"
  // key would shadow the bad one (find returns the first).
  Json bad_model = Json::object();
  bad_model.set("id", Json::integer(1));
  bad_model.set("type", Json::string("verify"));
  bad_model.set("model", Json::string("no-such-model"));
  bad_model.set("x", harness::int_array(x));
  bad_model.set("true_label", Json::integer(0));
  bad_model.set("box", harness::box_json(5));
  Json bad_engine = harness::request_base(2, "verify");
  bad_engine.set("x", harness::int_array(x));
  bad_engine.set("true_label", Json::integer(0));
  bad_engine.set("box", harness::box_json(5));
  bad_engine.set("engine", Json::string("no-such-engine"));
  Json no_box = harness::request_base(4, "verify");
  no_box.set("x", harness::int_array(x));
  no_box.set("true_label", Json::integer(0));

  const std::vector<Case> cases = {
      {bad_model.dump(), "unknown_model"},
      {bad_engine.dump(), "unknown_engine"},
      {harness::simple_request(3, "no-such-type"), "bad_request"},
      {no_box.dump(), "bad_request"},
      {"{\"id\": 5, \"type\":", "bad_json"},
      {"[1, 2, 3]", "bad_request"},
  };
  for (const Case& c : cases) {
    const ServeClient::Reply reply = client.call(c.payload);
    ASSERT_EQ(reply.final_type(), "error") << c.payload;
    EXPECT_EQ(reply.error_code(), c.code) << c.payload;
  }
  // Request-level errors never poison the connection.
  EXPECT_EQ(client.call(harness::simple_request(9, "ping")).final_type(),
            "pong");
  EXPECT_EQ(server.stats().errors, cases.size());
}

TEST(ServeFraming, ZeroLengthFrameAnswersBadFrameThenCloses) {
  TestServer server;
  ServeClient client(server.port());
  ASSERT_TRUE(client.send_prefix(0));
  std::optional<Json> frame = client.recv_json();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(field(*frame, "type").as_string(), "error");
  EXPECT_EQ(field(*frame, "code").as_string(), "bad_frame");
  // Stream is unusable afterwards; the server closes.
  EXPECT_FALSE(client.recv_payload().has_value());
}

TEST(ServeFraming, OversizedPrefixAnswersOversizedThenCloses) {
  TestServer server;
  ServeClient client(server.port());
  ASSERT_TRUE(client.send_prefix(static_cast<std::uint32_t>(
      kDefaultMaxFrameBytes + 1)));
  std::optional<Json> frame = client.recv_json();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(field(*frame, "code").as_string(), "oversized");
  EXPECT_FALSE(client.recv_payload().has_value());
}

TEST(ServeFraming, TornFrameIsTreatedAsDisconnect) {
  TestServer server;
  {
    ServeClient client(server.port());
    ASSERT_TRUE(client.send_prefix(100));
    ASSERT_TRUE(client.send_raw("only ten b"));  // 10 of the claimed 100
    client.close();
  }
  // The session must wind down cleanly (no crash, no stuck thread): the
  // server still answers fresh connections.
  ServeClient probe(server.port());
  EXPECT_EQ(probe.call(harness::simple_request(1, "ping")).final_type(),
            "pong");
}

TEST(ServeDisconnect, AbruptCloseCancelsActiveWork) {
  TestServer server;
  const std::vector<util::i64> x = harness::good_sample_x();
  const int label = harness::good_sample_label();
  {
    ServeClient client(server.port());
    // Enumerate over ±40: effectively unbounded without cancellation.
    ASSERT_TRUE(client.send_frame(
        harness::verify_request(1, x, label, 40, "enumerate")));
    // Let the worker pick it up, then vanish mid-execution.
    (void)poll_stats(server, [](const ServerStats& s) {
      return s.requests >= 1;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    client.close_abrupt();
  }
  EXPECT_TRUE(poll_stats(server, [](const ServerStats& s) {
    return s.cancelled_disconnect >= 1;
  })) << "disconnect did not cancel the in-flight request";
  server.stop();  // must not hang on the cancelled work
}

TEST(ServeAdmission, SaturatesAboveMaxInflightWithRetryHint) {
  ServeOptions options = TestServer::test_options();
  options.max_inflight = 1;
  TestServer server(options);
  const std::vector<util::i64> x = harness::good_sample_x();
  const int label = harness::good_sample_label();

  ServeClient hog(server.port());
  ASSERT_TRUE(hog.send_frame(
      harness::verify_request(1, x, label, 40, "enumerate")));
  ASSERT_TRUE(poll_stats(server, [](const ServerStats& s) {
    return s.requests >= 1;
  }));

  ServeClient rejected(server.port());
  const ServeClient::Reply reply = rejected.call(
      harness::verify_request(2, x, label, 5, "cascade"));
  ASSERT_EQ(reply.final_type(), "error");
  EXPECT_EQ(reply.error_code(), "saturated");
  EXPECT_GT(field(*reply.final, "retry_after_ms").as_int(), 0);
  // Introspection is exempt from admission control.
  EXPECT_EQ(rejected.call(harness::simple_request(3, "ping")).final_type(),
            "pong");
  EXPECT_GE(server.stats().rejected_saturated, 1u);

  hog.close_abrupt();
  ASSERT_TRUE(poll_stats(server, [](const ServerStats& s) {
    return s.cancelled_disconnect >= 1;
  }));
}

TEST(ServeDrain, FinishesQueuedWorkBeforeExit) {
  TestServer server;
  ServeClient client(server.port());
  const std::vector<util::i64> x = harness::good_sample_x();
  const int label = harness::good_sample_label();
  std::vector<int> ranges;
  for (int r = 1; r <= 8; ++r) ranges.push_back(r);

  ASSERT_TRUE(client.send_frame(
      harness::batch_request(1, x, label, ranges, 2)));
  // Wait until execution demonstrably started, then drain mid-request.
  std::optional<Json> first = client.recv_json();
  ASSERT_TRUE(first.has_value());
  server.server().request_drain();

  // The in-flight batch finishes and its remaining frames arrive.
  std::optional<Json> final_frame;
  for (std::optional<Json> frame = std::move(first); frame.has_value();
       frame = client.recv_json()) {
    if (field(*frame, "type").as_string() != "progress") {
      final_frame = std::move(frame);
      break;
    }
  }
  ASSERT_TRUE(final_frame.has_value());
  EXPECT_EQ(field(*final_frame, "type").as_string(), "result");
  ASSERT_EQ(field(field(*final_frame, "body"), "items").as_array().size(),
            ranges.size());

  // New connections are refused once draining.
  ServeClient late(server.port());
  EXPECT_TRUE(!late.connected() ||
              !late.call(harness::simple_request(9, "ping")).final.has_value());
  server.server().wait();
}

}  // namespace
}  // namespace fannet::serve
