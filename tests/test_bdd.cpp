// Unit + property tests for the ROBDD package: canonicity, boolean algebra,
// quantification, renaming, counting — cross-validated against brute-force
// truth-table evaluation on random expressions.
#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fannet::bdd {
namespace {

TEST(Bdd, TerminalsAndVars) {
  Manager m(3);
  EXPECT_TRUE(m.is_true(m.bdd_true()));
  EXPECT_TRUE(m.is_false(m.bdd_false()));
  EXPECT_FALSE(m.is_const(m.var(0)));
  EXPECT_EQ(m.lnot(m.var(1)), m.nvar(1));
  EXPECT_THROW((void)m.var(3), InvalidArgument);
}

TEST(Bdd, CanonicityIdenticalFunctionsShareNodes) {
  Manager m(3);
  // (a & b) | c built two different ways must be the same node.
  const Bdd f1 = m.lor(m.land(m.var(0), m.var(1)), m.var(2));
  const Bdd f2 = m.lnot(m.land(m.lnot(m.land(m.var(0), m.var(1))),
                               m.lnot(m.var(2))));
  EXPECT_EQ(f1, f2);
}

TEST(Bdd, BasicAlgebra) {
  Manager m(2);
  const Bdd a = m.var(0), b = m.var(1);
  EXPECT_EQ(m.land(a, m.bdd_true()), a);
  EXPECT_EQ(m.land(a, m.bdd_false()), m.bdd_false());
  EXPECT_EQ(m.lor(a, m.lnot(a)), m.bdd_true());
  EXPECT_EQ(m.land(a, m.lnot(a)), m.bdd_false());
  EXPECT_EQ(m.lxor(a, a), m.bdd_false());
  EXPECT_EQ(m.iff(a, b), m.lnot(m.lxor(a, b)));
  EXPECT_EQ(m.implies(a, b), m.lor(m.lnot(a), b));
}

TEST(Bdd, EvalTruthTable) {
  Manager m(2);
  const Bdd f = m.lxor(m.var(0), m.var(1));
  EXPECT_FALSE(m.eval(f, {false, false}));
  EXPECT_TRUE(m.eval(f, {true, false}));
  EXPECT_TRUE(m.eval(f, {false, true}));
  EXPECT_FALSE(m.eval(f, {true, true}));
  EXPECT_THROW((void)m.eval(f, {true}), InvalidArgument);
}

TEST(Bdd, RestrictCofactors) {
  Manager m(2);
  const Bdd f = m.land(m.var(0), m.var(1));
  EXPECT_EQ(m.restrict_var(f, 0, true), m.var(1));
  EXPECT_EQ(m.restrict_var(f, 0, false), m.bdd_false());
}

TEST(Bdd, Quantification) {
  Manager m(2);
  const Bdd f = m.land(m.var(0), m.var(1));
  EXPECT_EQ(m.exists(f, 0u), m.var(1));
  EXPECT_EQ(m.forall(f, 0u), m.bdd_false());
  const Bdd g = m.lor(m.var(0), m.var(1));
  EXPECT_EQ(m.forall(g, 0u), m.var(1));
  EXPECT_EQ(m.exists(g, std::vector<unsigned>{0, 1}), m.bdd_true());
}

TEST(Bdd, RenameSwapsVariables) {
  Manager m(4);
  // f = x0 & !x1 ; rename 0->2, 1->3.
  const Bdd f = m.land(m.var(0), m.lnot(m.var(1)));
  const Bdd g = m.rename(f, {2, 3, 2, 3});
  EXPECT_EQ(g, m.land(m.var(2), m.lnot(m.var(3))));
}

TEST(Bdd, SatCount) {
  Manager m(3);
  EXPECT_DOUBLE_EQ(m.sat_count(m.bdd_true()), 8.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.bdd_false()), 0.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.var(0)), 4.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.land(m.var(0), m.var(2))), 2.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.lxor(m.var(0), m.var(1))), 4.0);
}

TEST(Bdd, AnySatReturnsSatisfyingAssignment) {
  Manager m(3);
  const Bdd f = m.land(m.land(m.var(0), m.lnot(m.var(1))), m.var(2));
  const auto assignment = m.any_sat(f);
  EXPECT_TRUE(m.eval(f, assignment));
  EXPECT_THROW(m.any_sat(m.bdd_false()), InvalidArgument);
}

TEST(Bdd, DagSizeGrowsWithStructure) {
  Manager m(4);
  Bdd f = m.bdd_false();
  for (unsigned i = 0; i < 4; ++i) f = m.lor(f, m.var(i));
  EXPECT_GE(m.dag_size(f), 4u);
  EXPECT_LE(m.dag_size(m.bdd_true()), 2u);
}

TEST(Bdd, ToDotMentionsVariables) {
  Manager m(2);
  const std::string dot = m.to_dot(m.land(m.var(0), m.var(1)), "f");
  EXPECT_NE(dot.find("x0"), std::string::npos);
  EXPECT_NE(dot.find("x1"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Property sweep: random expression DAGs vs brute-force truth tables.
// ---------------------------------------------------------------------------
class RandomExpr : public testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomExpr, MatchesTruthTable) {
  constexpr unsigned kVars = 5;
  util::Rng rng(GetParam());
  Manager m(kVars);

  // Build a random DAG of ops over the variables; mirror it as a lambda
  // evaluator tree for brute-force comparison.
  struct Node {
    int op;  // 0..2 = and/or/xor, 3 = not, 4 = var
    std::size_t a = 0, b = 0;
    unsigned var = 0;
  };
  std::vector<Node> nodes;
  std::vector<Bdd> bdds;
  for (unsigned v = 0; v < kVars; ++v) {
    nodes.push_back({4, 0, 0, v});
    bdds.push_back(m.var(v));
  }
  for (int step = 0; step < 25; ++step) {
    Node n;
    n.op = static_cast<int>(rng.uniform_int(0, 3));
    n.a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1));
    n.b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1));
    nodes.push_back(n);
    switch (n.op) {
      case 0: bdds.push_back(m.land(bdds[n.a], bdds[n.b])); break;
      case 1: bdds.push_back(m.lor(bdds[n.a], bdds[n.b])); break;
      case 2: bdds.push_back(m.lxor(bdds[n.a], bdds[n.b])); break;
      default: bdds.push_back(m.lnot(bdds[n.a])); break;
    }
  }

  const auto brute = [&](std::size_t idx, const std::vector<bool>& env,
                         const auto& self) -> bool {
    const Node& n = nodes[idx];
    switch (n.op) {
      case 4: return env[n.var];
      case 3: return !self(n.a, env, self);
      case 0: return self(n.a, env, self) && self(n.b, env, self);
      case 1: return self(n.a, env, self) || self(n.b, env, self);
      default: return self(n.a, env, self) != self(n.b, env, self);
    }
  };

  const Bdd root = bdds.back();
  std::size_t true_count = 0;
  for (unsigned assignment = 0; assignment < (1u << kVars); ++assignment) {
    std::vector<bool> env(kVars);
    for (unsigned v = 0; v < kVars; ++v) env[v] = (assignment >> v) & 1;
    const bool expected = brute(nodes.size() - 1, env, brute);
    EXPECT_EQ(m.eval(root, env), expected) << "assignment=" << assignment;
    true_count += expected;
  }
  EXPECT_DOUBLE_EQ(m.sat_count(root), static_cast<double>(true_count));
  if (true_count > 0) {
    EXPECT_TRUE(m.eval(root, m.any_sat(root)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExpr,
                         testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace fannet::bdd
