// Tests for the resumable sharded sweep orchestrator (verify/sweep.hpp,
// DESIGN.md §9): runner mechanics on a toy campaign (resume skips
// journaled shards, torn final lines are discarded, duplicates resolve
// last-wins, mismatched journals are rejected) plus end-to-end identity of
// the sweep path against the in-process analyses.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/fannet.hpp"
#include "core/faults.hpp"
#include "nn/network.hpp"
#include "util/error.hpp"
#include "verify/sweep.hpp"

namespace fannet {
namespace {

using core::ToleranceConfig;
using core::ToleranceReport;
using core::WeightFaultConfig;
using core::WeightFaultReport;
using util::i64;
using verify::SweepCampaign;
using verify::SweepOptions;
using verify::SweepProgress;
using verify::SweepRows;
using verify::SweepRunner;

/// Unique journal path under the system temp dir, removed on destruction.
struct TempJournal {
  explicit TempJournal(const std::string& tag) {
    static std::atomic<unsigned> counter{0};
    path = (std::filesystem::temp_directory_path() /
            ("fannet_sweep_" + tag + "_" + std::to_string(counter++) +
             ".jsonl"))
               .string();
    std::filesystem::remove(path);
  }
  ~TempJournal() { std::filesystem::remove(path); }
  std::string path;
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void write_lines(const std::string& path,
                 const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::trunc);
  for (const std::string& line : lines) out << line << '\n';
}

/// Toy campaign: unit u yields the row [u, (u+1)^2 * salt_factor]; the
/// aggregate is the sum of the second column.  Counts executed units so
/// tests can prove journaled shards are never re-executed.
class SquareCampaign final : public SweepCampaign {
 public:
  explicit SquareCampaign(std::size_t units, std::int64_t factor = 1)
      : units_(units), factor_(factor) {}

  [[nodiscard]] std::string_view name() const override { return "square"; }
  [[nodiscard]] std::uint64_t fingerprint() const override {
    verify::SweepFingerprint fp;
    fp.mix_bytes("square");
    fp.mix_u64(units_);
    fp.mix_i64(factor_);
    return fp.value();
  }
  [[nodiscard]] std::size_t units() const override { return units_; }

  [[nodiscard]] SweepRows run_units(std::size_t begin,
                                    std::size_t end) const override {
    SweepRows rows;
    for (std::size_t u = begin; u < end; ++u) {
      const auto v = static_cast<std::int64_t>(u + 1);
      rows.push_back({static_cast<std::int64_t>(u), v * v * factor_});
      executed_units.fetch_add(1);
    }
    return rows;
  }

  void absorb(std::size_t begin, std::size_t end,
              const SweepRows& rows) override {
    ASSERT_EQ(rows.size(), end - begin);
    for (std::size_t u = begin; u < end; ++u) {
      const auto& row = rows[u - begin];
      ASSERT_EQ(row.size(), 2u);
      ASSERT_EQ(row[0], static_cast<std::int64_t>(u));
      sum += row[1];
      ++absorbed_units;
    }
  }

  std::int64_t sum = 0;
  std::size_t absorbed_units = 0;
  mutable std::atomic<std::uint64_t> executed_units{0};

 private:
  std::size_t units_;
  std::int64_t factor_;
};

std::int64_t square_sum(std::size_t units) {
  std::int64_t sum = 0;
  for (std::size_t u = 0; u < units; ++u) {
    const auto v = static_cast<std::int64_t>(u + 1);
    sum += v * v;
  }
  return sum;
}

TEST(SweepRunner, InMemoryRunIsCompleteForAnyShardSizeAndThreads) {
  for (const std::size_t shard_size : {std::size_t{1}, std::size_t{3},
                                       std::size_t{7}, std::size_t{100}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      SquareCampaign campaign(10);
      const SweepProgress progress =
          SweepRunner({.shard_size = shard_size, .threads = threads})
              .run(campaign);
      EXPECT_TRUE(progress.complete());
      EXPECT_EQ(progress.total_shards, (10 + shard_size - 1) / shard_size);
      EXPECT_EQ(progress.executed_shards, progress.total_shards);
      EXPECT_EQ(progress.resumed_shards, 0u);
      EXPECT_EQ(progress.units_executed, 10u);
      EXPECT_EQ(campaign.sum, square_sum(10));
      EXPECT_EQ(campaign.absorbed_units, 10u);
    }
  }
}

TEST(SweepRunner, ZeroUnitCampaignIsTriviallyComplete) {
  SquareCampaign campaign(0);
  const SweepProgress progress = SweepRunner({.shard_size = 4}).run(campaign);
  EXPECT_TRUE(progress.complete());
  EXPECT_EQ(progress.total_shards, 0u);
  EXPECT_EQ(campaign.sum, 0);
}

TEST(SweepRunner, EmptyJournalResumeEqualsColdRun) {
  TempJournal journal("empty");
  {  // an existing but empty file is a cold start, not an error
    std::ofstream touch(journal.path);
  }
  SquareCampaign campaign(9);
  const SweepProgress progress =
      SweepRunner({.journal_path = journal.path, .shard_size = 2})
          .run(campaign);
  EXPECT_TRUE(progress.complete());
  EXPECT_EQ(progress.resumed_shards, 0u);
  EXPECT_EQ(progress.executed_shards, 5u);
  EXPECT_EQ(progress.journal_skipped, 0u);
  EXPECT_EQ(campaign.sum, square_sum(9));
  // The journal now holds a header plus one line per shard.
  EXPECT_EQ(read_lines(journal.path).size(), 6u);
}

TEST(SweepRunner, ResumeSkipsJournaledShardsAndMatchesColdRun) {
  TempJournal journal("resume");
  SquareCampaign partial(12);
  const SweepProgress first =
      SweepRunner(
          {.journal_path = journal.path, .shard_size = 3, .max_shards = 2})
          .run(partial);
  EXPECT_FALSE(first.complete());
  EXPECT_EQ(first.executed_shards, 2u);
  EXPECT_EQ(first.pending_shards, 2u);
  EXPECT_EQ(partial.executed_units.load(), 6u);
  EXPECT_EQ(partial.absorbed_units, 6u);  // partial aggregate: 2 shards

  SquareCampaign resumed(12);
  const SweepProgress second =
      SweepRunner({.journal_path = journal.path, .shard_size = 3})
          .run(resumed);
  EXPECT_TRUE(second.complete());
  EXPECT_EQ(second.resumed_shards, 2u);
  EXPECT_EQ(second.executed_shards, 2u);
  // The journaled shards were never re-executed...
  EXPECT_EQ(resumed.executed_units.load(), 6u);
  // ...yet the aggregate matches an uninterrupted run exactly.
  EXPECT_EQ(resumed.sum, square_sum(12));
  EXPECT_EQ(resumed.absorbed_units, 12u);
}

TEST(SweepRunner, TornFinalLineIsDiscardedAndReExecuted) {
  TempJournal journal("torn");
  SquareCampaign cold(8);
  (void)SweepRunner({.journal_path = journal.path, .shard_size = 2})
      .run(cold);

  // Simulate a crash mid-append: cut the final line in half.
  std::vector<std::string> lines = read_lines(journal.path);
  ASSERT_EQ(lines.size(), 5u);
  lines.back() = lines.back().substr(0, lines.back().size() / 2);
  write_lines(journal.path, lines);

  SquareCampaign resumed(8);
  const SweepProgress progress =
      SweepRunner({.journal_path = journal.path, .shard_size = 2})
          .run(resumed);
  EXPECT_TRUE(progress.complete());
  EXPECT_EQ(progress.journal_skipped, 1u);  // the torn line
  EXPECT_EQ(progress.resumed_shards, 3u);
  EXPECT_EQ(progress.executed_shards, 1u);  // only the torn shard re-runs
  EXPECT_EQ(resumed.executed_units.load(), 2u);
  EXPECT_EQ(resumed.sum, square_sum(8));
}

TEST(SweepRunner, TornLineWithoutNewlineDoesNotGlueTheNextAppend) {
  TempJournal journal("glue");
  SquareCampaign cold(8);
  const SweepProgress first =
      SweepRunner(
          {.journal_path = journal.path, .shard_size = 2, .max_shards = 3})
          .run(cold);
  EXPECT_FALSE(first.complete());

  // Crash mid-append: torn trailing bytes with NO newline.  The resume
  // must start its own records on a fresh line, or the next completed
  // shard's checkpoint is glued onto the torn bytes and lost.
  {
    std::ofstream torn(journal.path, std::ios::app);
    torn << "{\"shard\":3,\"begin\":6,\"end\":8,\"bytes\":1";
  }

  SquareCampaign resumed(8);
  const SweepProgress second =
      SweepRunner({.journal_path = journal.path, .shard_size = 2})
          .run(resumed);
  EXPECT_TRUE(second.complete());
  EXPECT_EQ(second.journal_skipped, 1u);
  EXPECT_EQ(resumed.sum, square_sum(8));

  // Proof the re-executed shard journaled cleanly despite the torn tail: a
  // third run answers everything from the journal.
  SquareCampaign warm(8);
  const SweepProgress third =
      SweepRunner({.journal_path = journal.path, .shard_size = 2})
          .run(warm);
  EXPECT_TRUE(third.complete());
  EXPECT_EQ(third.executed_shards, 0u);
  EXPECT_EQ(warm.executed_units.load(), 0u);
  EXPECT_EQ(warm.sum, square_sum(8));
}

TEST(SweepRunner, DuplicateShardEntriesResolveLastWins) {
  TempJournal journal("dup");
  SquareCampaign cold(3);
  (void)SweepRunner({.journal_path = journal.path, .shard_size = 1})
      .run(cold);

  // Insert a bogus shard-0 entry right after the header: the genuine line
  // appended later in the file must win.
  std::vector<std::string> lines = read_lines(journal.path);
  ASSERT_EQ(lines.size(), 4u);
  lines.insert(lines.begin() + 1,
               "{\"shard\":0,\"begin\":0,\"end\":1,\"bytes\":9,"
               "\"rows\":[[0,999]],\"done\":true}");
  write_lines(journal.path, lines);

  SquareCampaign resumed(3);
  const SweepProgress progress =
      SweepRunner({.journal_path = journal.path, .shard_size = 1})
          .run(resumed);
  EXPECT_TRUE(progress.complete());
  EXPECT_EQ(progress.executed_shards, 0u);
  EXPECT_EQ(resumed.executed_units.load(), 0u);
  EXPECT_EQ(resumed.sum, square_sum(3));  // 999 lost to the later entry
}

TEST(SweepRunner, MismatchedJournalsAreRejectedWithClearErrors) {
  TempJournal journal("mismatch");
  SquareCampaign cold(6);
  (void)SweepRunner({.journal_path = journal.path, .shard_size = 2})
      .run(cold);

  // Different campaign content (fingerprint mismatch).
  SquareCampaign other_factor(6, 2);
  try {
    (void)SweepRunner({.journal_path = journal.path, .shard_size = 2})
        .run(other_factor);
    FAIL() << "fingerprint mismatch was not rejected";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("fingerprint"),
              std::string::npos);
  }

  // Same campaign, different shard size: boundaries no longer line up.
  SquareCampaign other_shards(6);
  try {
    (void)SweepRunner({.journal_path = journal.path, .shard_size = 3})
        .run(other_shards);
    FAIL() << "shard-size mismatch was not rejected";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("--shard-size"),
              std::string::npos);
  }
}

TEST(SweepRunner, ShardEntriesWithoutHeaderAreRejected) {
  TempJournal journal("headerless");
  write_lines(journal.path,
              {"{\"shard\":0,\"begin\":0,\"end\":1,\"bytes\":9,"
               "\"rows\":[[0,999]],\"done\":true}"});
  SquareCampaign campaign(3);
  EXPECT_THROW(
      (void)SweepRunner({.journal_path = journal.path, .shard_size = 1})
          .run(campaign),
      Error);
}

TEST(SweepRunner, MaxShardsChunksDriveTheCampaignToCompletion) {
  TempJournal journal("chunks");
  std::size_t invocations = 0;
  for (;;) {
    SquareCampaign campaign(10);
    const SweepProgress progress =
        SweepRunner({.journal_path = journal.path,
                     .shard_size = 2,
                     .max_shards = 1})
            .run(campaign);
    ++invocations;
    EXPECT_LE(campaign.executed_units.load(), 2u);
    if (progress.complete()) {
      EXPECT_EQ(campaign.sum, square_sum(10));
      break;
    }
  }
  EXPECT_EQ(invocations, 5u);  // one shard per invocation
}

// ---------------------------------------------------------------------------
// End-to-end identity of the sweep path against the in-process analyses.
// ---------------------------------------------------------------------------

nn::QuantizedNetwork tiny_qnet() {
  nn::Layer hidden;
  hidden.weights = la::MatrixD::from_rows({{1.0, -1.0}, {0.5, 0.5}});
  hidden.bias = {0.0, -0.25};
  hidden.activation = nn::Activation::kReLU;
  nn::Layer out;
  out.weights = la::MatrixD::from_rows({{1.0, 0.0}, {0.0, 2.0}});
  out.bias = {0.1, 0.0};
  out.activation = nn::Activation::kLinear;
  return nn::QuantizedNetwork::quantize(nn::Network({hidden, out}), 100);
}

la::Matrix<i64> tiny_inputs() {
  la::Matrix<i64> inputs(3, 2);
  inputs(0, 0) = 80; inputs(0, 1) = 30;
  inputs(1, 0) = 20; inputs(1, 1) = 90;
  inputs(2, 0) = 55; inputs(2, 1) = 45;
  return inputs;
}

std::vector<int> labels_for(const nn::QuantizedNetwork& net,
                            const la::Matrix<i64>& inputs) {
  std::vector<int> labels;
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    labels.push_back(net.classify_noised(inputs.row(s), {}));
  }
  return labels;
}

void expect_same_tolerance(const ToleranceReport& a, const ToleranceReport& b) {
  EXPECT_EQ(a.noise_tolerance, b.noise_tolerance);
  EXPECT_EQ(a.queries, b.queries);
  ASSERT_EQ(a.per_sample.size(), b.per_sample.size());
  for (std::size_t i = 0; i < a.per_sample.size(); ++i) {
    EXPECT_EQ(a.per_sample[i].correct_without_noise,
              b.per_sample[i].correct_without_noise);
    EXPECT_EQ(a.per_sample[i].min_flip_range, b.per_sample[i].min_flip_range);
    EXPECT_EQ(a.per_sample[i].witness, b.per_sample[i].witness);
  }
}

TEST(SweepAnalyses, ToleranceSweepMatchesBatchPathAndResumes) {
  const nn::QuantizedNetwork net = tiny_qnet();
  const core::Fannet fannet(net);
  const la::Matrix<i64> inputs = tiny_inputs();
  const std::vector<int> labels = labels_for(net, inputs);

  ToleranceConfig direct_config;
  direct_config.start_range = 30;
  direct_config.threads = 1;
  const ToleranceReport direct =
      fannet.analyze_tolerance(inputs, labels, direct_config);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    ToleranceConfig config = direct_config;
    config.sweep = SweepOptions{.shard_size = 2, .threads = threads};
    const ToleranceReport swept =
        fannet.analyze_tolerance(inputs, labels, config);
    EXPECT_TRUE(swept.sweep.complete());
    expect_same_tolerance(direct, swept);
  }

  // Kill/resume cycle through the journal.
  TempJournal journal("tolerance");
  ToleranceConfig partial = direct_config;
  partial.sweep = SweepOptions{.journal_path = journal.path, .max_shards = 1};
  const ToleranceReport first =
      fannet.analyze_tolerance(inputs, labels, partial);
  EXPECT_FALSE(first.sweep.complete());

  ToleranceConfig rest = direct_config;
  rest.sweep = SweepOptions{.journal_path = journal.path};
  const ToleranceReport resumed =
      fannet.analyze_tolerance(inputs, labels, rest);
  EXPECT_TRUE(resumed.sweep.complete());
  EXPECT_EQ(resumed.sweep.resumed_shards, 1u);
  expect_same_tolerance(direct, resumed);
}

TEST(SweepAnalyses, SensitivitySweepMatchesBatchPath) {
  const nn::QuantizedNetwork net = tiny_qnet();
  const core::Fannet fannet(net);
  const la::Matrix<i64> inputs = tiny_inputs();
  const std::vector<int> labels = labels_for(net, inputs);

  core::SensitivityConfig direct_config;
  direct_config.threads = 1;
  const core::NodeSensitivityReport direct =
      core::analyze_sensitivity(fannet, inputs, labels, 20, {}, direct_config);

  core::SensitivityConfig config = direct_config;
  config.sweep = SweepOptions{.shard_size = 3, .threads = 2};
  const core::NodeSensitivityReport swept =
      core::analyze_sensitivity(fannet, inputs, labels, 20, {}, config);

  EXPECT_TRUE(swept.sweep.complete());
  EXPECT_EQ(direct.positive_possible, swept.positive_possible);
  EXPECT_EQ(direct.negative_possible, swept.negative_possible);
  EXPECT_EQ(direct.solo_flip_range, swept.solo_flip_range);
  EXPECT_EQ(direct.positive, swept.positive);
  EXPECT_EQ(direct.negative, swept.negative);
  EXPECT_EQ(direct.zero, swept.zero);
}

void expect_same_weight_faults(const WeightFaultReport& a,
                               const WeightFaultReport& b) {
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.robust_weights, b.robust_weights);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.layer_evaluations, b.layer_evaluations);
  EXPECT_EQ(a.undecided_candidates, b.undecided_candidates);
  EXPECT_EQ(a.model, b.model);
}

TEST(SweepAnalyses, WeightFaultSweepMatchesDirectScanAndResumes) {
  const nn::QuantizedNetwork net = tiny_qnet();
  const la::Matrix<i64> inputs = tiny_inputs();
  const std::vector<int> labels = labels_for(net, inputs);

  WeightFaultConfig direct_config{.max_percent = 40, .step = 1, .threads = 1};
  const WeightFaultReport direct =
      core::analyze_weight_faults(net, inputs, labels, direct_config);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    WeightFaultConfig config = direct_config;
    config.sweep = SweepOptions{.shard_size = 5, .threads = threads};
    const WeightFaultReport swept =
        core::analyze_weight_faults(net, inputs, labels, config);
    EXPECT_TRUE(swept.sweep.complete());
    expect_same_weight_faults(direct, swept);
  }

  TempJournal journal("faults");
  WeightFaultConfig partial = direct_config;
  partial.sweep = SweepOptions{.journal_path = journal.path,
                               .shard_size = 4,
                               .max_shards = 2};
  const WeightFaultReport first =
      core::analyze_weight_faults(net, inputs, labels, partial);
  EXPECT_FALSE(first.sweep.complete());
  EXPECT_EQ(first.sweep.units_executed, 8u);

  WeightFaultConfig rest = direct_config;
  rest.sweep = SweepOptions{.journal_path = journal.path, .shard_size = 4};
  const WeightFaultReport resumed =
      core::analyze_weight_faults(net, inputs, labels, rest);
  EXPECT_TRUE(resumed.sweep.complete());
  EXPECT_EQ(resumed.sweep.resumed_shards, 2u);
  EXPECT_EQ(resumed.sweep.units_executed, direct.faults.size() - 8u);
  expect_same_weight_faults(direct, resumed);
}

TEST(SweepAnalyses, JournalFromDifferentGridOrNetworkIsRejected) {
  const nn::QuantizedNetwork net = tiny_qnet();
  const la::Matrix<i64> inputs = tiny_inputs();
  const std::vector<int> labels = labels_for(net, inputs);

  TempJournal journal("grid");
  WeightFaultConfig config{.max_percent = 20, .step = 1, .threads = 1};
  config.sweep = SweepOptions{.journal_path = journal.path};
  (void)core::analyze_weight_faults(net, inputs, labels, config);

  // Same journal, different scan grid: rejected, not silently mixed.
  WeightFaultConfig wider = config;
  wider.max_percent = 30;
  try {
    (void)core::analyze_weight_faults(net, inputs, labels, wider);
    FAIL() << "grid mismatch was not rejected";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("fingerprint"),
              std::string::npos);
  }

  // Same journal, different network: rejected too.
  nn::Layer hidden;
  hidden.weights = la::MatrixD::from_rows({{1.0, -1.0}, {0.5, 0.75}});
  hidden.bias = {0.0, -0.25};
  hidden.activation = nn::Activation::kReLU;
  nn::Layer out;
  out.weights = la::MatrixD::from_rows({{1.0, 0.0}, {0.0, 2.0}});
  out.bias = {0.1, 0.0};
  out.activation = nn::Activation::kLinear;
  const nn::QuantizedNetwork other =
      nn::QuantizedNetwork::quantize(nn::Network({hidden, out}), 100);
  EXPECT_THROW(
      (void)core::analyze_weight_faults(other, inputs, labels_for(other, inputs),
                                        config),
      Error);
}

}  // namespace
}  // namespace fannet
