/// \file
/// \brief Pretty-printer emitting nuXmv-compatible SMV text.
///
/// This is the artifact FANNet's Behavior Extraction hands to the model
/// checker in the paper (Fig. 2, "Translation of Network ... in SMV
/// Language"); examples/smv_export writes it to disk.  Expressions are fully
/// parenthesized so print -> parse round-trips reproduce the AST exactly.
#pragma once

#include <string>

#include "smv/ast.hpp"

namespace fannet::smv {

/// Renders one expression.
[[nodiscard]] std::string print_expr(const Module& module, ExprId id);

/// Renders the whole module in SMV concrete syntax.
[[nodiscard]] std::string print_module(const Module& module);

}  // namespace fannet::smv
