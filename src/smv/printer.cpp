#include "smv/printer.hpp"

#include <sstream>

#include "util/error.hpp"

namespace fannet::smv {

namespace {

const char* op_token(Op op) {
  switch (op) {
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
    case Op::kEq: return "=";
    case Op::kNe: return "!=";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kGt: return ">";
    case Op::kGe: return ">=";
    case Op::kAnd: return "&";
    case Op::kOr: return "|";
    case Op::kXor: return "xor";
    case Op::kImplies: return "->";
    case Op::kIff: return "<->";
    default: return "?";
  }
}

void print_rec(const Module& m, ExprId id, std::ostringstream& out) {
  const Expr& e = m.expr(id);
  switch (e.op) {
    case Op::kConst:
      if (!e.name.empty()) {
        out << e.name;  // enum symbol
      } else {
        out << e.value;
      }
      return;
    case Op::kName:
      out << e.name;
      return;
    case Op::kVarRef:
      out << m.vars().at(static_cast<std::size_t>(e.value)).name;
      return;
    case Op::kDefRef:
      out << m.defines().at(static_cast<std::size_t>(e.value)).first;
      return;
    case Op::kNextRef:
      out << "next("
          << (e.name.empty()
                  ? m.vars().at(static_cast<std::size_t>(e.value)).name
                  : e.name)
          << ")";
      return;
    case Op::kNeg:
      out << "-";
      print_rec(m, e.kids[0], out);
      return;
    case Op::kNot:
      out << "!";
      print_rec(m, e.kids[0], out);
      return;
    case Op::kCase:
      out << "case ";
      for (std::size_t i = 0; i + 1 < e.kids.size(); i += 2) {
        print_rec(m, e.kids[i], out);
        out << " : ";
        print_rec(m, e.kids[i + 1], out);
        out << "; ";
      }
      out << "esac";
      return;
    case Op::kSet:
      out << "{";
      for (std::size_t i = 0; i < e.kids.size(); ++i) {
        if (i != 0) out << ", ";
        print_rec(m, e.kids[i], out);
      }
      out << "}";
      return;
    case Op::kRange:
      print_rec(m, e.kids[0], out);
      out << "..";
      print_rec(m, e.kids[1], out);
      return;
    default:
      out << "(";
      print_rec(m, e.kids[0], out);
      out << " " << op_token(e.op) << " ";
      print_rec(m, e.kids[1], out);
      out << ")";
      return;
  }
}

std::string type_text(const VarType& t) {
  if (std::holds_alternative<BoolType>(t)) return "boolean";
  if (const auto* r = std::get_if<RangeType>(&t)) {
    return std::to_string(r->lo) + ".." + std::to_string(r->hi);
  }
  const auto& e = std::get<EnumType>(t);
  std::string s = "{";
  for (std::size_t i = 0; i < e.symbols.size(); ++i) {
    if (i != 0) s += ", ";
    s += e.symbols[i];
  }
  return s + "}";
}

}  // namespace

std::string print_expr(const Module& module, ExprId id) {
  std::ostringstream out;
  print_rec(module, id, out);
  return out.str();
}

std::string print_module(const Module& m) {
  std::ostringstream out;
  out << "MODULE " << m.name << "\n";
  if (!m.vars().empty()) {
    out << "VAR\n";
    for (const VarDecl& v : m.vars()) {
      out << "  " << v.name << " : " << type_text(v.type) << ";\n";
    }
  }
  if (!m.defines().empty()) {
    out << "DEFINE\n";
    for (const auto& [name, body] : m.defines()) {
      out << "  " << name << " := " << print_expr(m, body) << ";\n";
    }
  }
  bool any_assign = false;
  for (std::size_t v = 0; v < m.vars().size(); ++v) {
    any_assign |= (m.init_of(v) != kNoExpr) || (m.next_of(v) != kNoExpr);
  }
  if (any_assign) {
    out << "ASSIGN\n";
    for (std::size_t v = 0; v < m.vars().size(); ++v) {
      if (m.init_of(v) != kNoExpr) {
        out << "  init(" << m.vars()[v].name
            << ") := " << print_expr(m, m.init_of(v)) << ";\n";
      }
    }
    for (std::size_t v = 0; v < m.vars().size(); ++v) {
      if (m.next_of(v) != kNoExpr) {
        out << "  next(" << m.vars()[v].name
            << ") := " << print_expr(m, m.next_of(v)) << ";\n";
      }
    }
  }
  for (const ExprId e : m.init_constraints()) {
    out << "INIT " << print_expr(m, e) << "\n";
  }
  for (const ExprId e : m.invar_constraints()) {
    out << "INVAR " << print_expr(m, e) << "\n";
  }
  for (const ExprId e : m.trans_constraints()) {
    out << "TRANS " << print_expr(m, e) << "\n";
  }
  for (const Spec& s : m.specs()) {
    if (!s.name.empty()) out << "-- " << s.name << "\n";
    if (s.kind == SpecKind::kInvarSpec) {
      out << "INVARSPEC " << print_expr(m, s.expr) << "\n";
    } else {
      out << "LTLSPEC G " << print_expr(m, s.expr) << "\n";
    }
  }
  return out.str();
}

}  // namespace fannet::smv
