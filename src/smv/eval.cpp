#include "smv/eval.hpp"

#include "util/error.hpp"

namespace fannet::smv {

i64 Evaluator::eval(ExprId id, const State& state, const State* next) const {
  const Expr& e = module_.expr(id);
  const auto ev = [&](ExprId k) { return eval(k, state, next); };
  switch (e.op) {
    case Op::kConst:
      return e.value;
    case Op::kVarRef:
      return state.at(static_cast<std::size_t>(e.value));
    case Op::kDefRef:
      return eval(module_.defines().at(static_cast<std::size_t>(e.value)).second,
                  state, next);
    case Op::kNextRef:
      if (next == nullptr) {
        throw InvalidArgument("Evaluator::eval: next(...) without next state");
      }
      return next->at(static_cast<std::size_t>(e.value));
    case Op::kNeg:
      return util::checked_sub(0, ev(e.kids[0]));
    case Op::kNot:
      return ev(e.kids[0]) == 0 ? 1 : 0;
    case Op::kAdd:
      return util::checked_add(ev(e.kids[0]), ev(e.kids[1]));
    case Op::kSub:
      return util::checked_sub(ev(e.kids[0]), ev(e.kids[1]));
    case Op::kMul:
      return util::checked_mul(ev(e.kids[0]), ev(e.kids[1]));
    case Op::kEq:
      return ev(e.kids[0]) == ev(e.kids[1]) ? 1 : 0;
    case Op::kNe:
      return ev(e.kids[0]) != ev(e.kids[1]) ? 1 : 0;
    case Op::kLt:
      return ev(e.kids[0]) < ev(e.kids[1]) ? 1 : 0;
    case Op::kLe:
      return ev(e.kids[0]) <= ev(e.kids[1]) ? 1 : 0;
    case Op::kGt:
      return ev(e.kids[0]) > ev(e.kids[1]) ? 1 : 0;
    case Op::kGe:
      return ev(e.kids[0]) >= ev(e.kids[1]) ? 1 : 0;
    case Op::kAnd:
      return (ev(e.kids[0]) != 0 && ev(e.kids[1]) != 0) ? 1 : 0;
    case Op::kOr:
      return (ev(e.kids[0]) != 0 || ev(e.kids[1]) != 0) ? 1 : 0;
    case Op::kXor:
      return ((ev(e.kids[0]) != 0) != (ev(e.kids[1]) != 0)) ? 1 : 0;
    case Op::kImplies:
      return (ev(e.kids[0]) == 0 || ev(e.kids[1]) != 0) ? 1 : 0;
    case Op::kIff:
      return ((ev(e.kids[0]) != 0) == (ev(e.kids[1]) != 0)) ? 1 : 0;
    case Op::kCase:
      for (std::size_t i = 0; i + 1 < e.kids.size(); i += 2) {
        if (ev(e.kids[i]) != 0) return ev(e.kids[i + 1]);
      }
      throw InvalidArgument("Evaluator::eval: no case arm matched "
                            "(add a TRUE : ... default)");
    case Op::kName:
      throw InvalidArgument("Evaluator::eval: unresolved name '" + e.name +
                            "' (call Module::resolve())");
    case Op::kSet:
    case Op::kRange:
      throw InvalidArgument(
          "Evaluator::eval: set/range only valid in init()/next() "
          "right-hand sides (use choices())");
  }
  throw InvalidArgument("Evaluator::eval: corrupt expression node");
}

std::vector<i64> Evaluator::choices(ExprId id, const State& state) const {
  const Expr& e = module_.expr(id);
  switch (e.op) {
    case Op::kSet: {
      std::vector<i64> out;
      for (const ExprId kid : e.kids) {
        const std::vector<i64> sub = choices(kid, state);
        out.insert(out.end(), sub.begin(), sub.end());
      }
      // Dedup while keeping first-occurrence order.
      std::vector<i64> dedup;
      for (const i64 v : out) {
        bool found = false;
        for (const i64 u : dedup) {
          if (u == v) {
            found = true;
            break;
          }
        }
        if (!found) dedup.push_back(v);
      }
      return dedup;
    }
    case Op::kRange: {
      const i64 lo = eval(e.kids[0], state);
      const i64 hi = eval(e.kids[1], state);
      if (lo > hi) {
        throw InvalidArgument("Evaluator::choices: empty range lo..hi");
      }
      if (hi - lo > 1'000'000) {
        throw ResourceLimit("Evaluator::choices: range too large to enumerate");
      }
      std::vector<i64> out;
      out.reserve(static_cast<std::size_t>(hi - lo + 1));
      for (i64 v = lo; v <= hi; ++v) out.push_back(v);
      return out;
    }
    case Op::kCase: {
      for (std::size_t i = 0; i + 1 < e.kids.size(); i += 2) {
        if (eval(e.kids[i], state) != 0) return choices(e.kids[i + 1], state);
      }
      throw InvalidArgument("Evaluator::choices: no case arm matched");
    }
    default:
      return {eval(id, state)};
  }
}

std::vector<i64> Evaluator::domain(std::size_t var) const {
  const i64 lo = module_.domain_lo(var);
  const i64 hi = module_.domain_hi(var);
  std::vector<i64> out;
  out.reserve(static_cast<std::size_t>(hi - lo + 1));
  for (i64 v = lo; v <= hi; ++v) out.push_back(v);
  return out;
}

bool Evaluator::in_domain(std::size_t var, i64 value) const {
  return value >= module_.domain_lo(var) && value <= module_.domain_hi(var);
}

}  // namespace fannet::smv
