/// \file
/// \brief Concrete-state evaluation of SMV expressions (explicit model checking).
///
/// A State assigns one i64 to every declared variable (booleans as 0/1,
/// enums as symbol indices).  eval() computes expressions over a state (and
/// optionally a next-state for TRANS constraints); choices() enumerates the
/// nondeterministic alternatives of an init()/next() right-hand side.
#pragma once

#include <optional>
#include <vector>

#include "smv/ast.hpp"

namespace fannet::smv {

using State = std::vector<i64>;

class Evaluator {
 public:
  explicit Evaluator(const Module& module) : module_(module) {}

  /// Evaluates a (deterministic) expression.  `next` must be provided when
  /// the expression contains next(...) references.
  [[nodiscard]] i64 eval(ExprId id, const State& state,
                         const State* next = nullptr) const;

  [[nodiscard]] bool eval_bool(ExprId id, const State& state,
                               const State* next = nullptr) const {
    return eval(id, state, next) != 0;
  }

  /// Enumerates the values an init()/next() right-hand side can take in
  /// `state` (singleton unless the RHS contains {...} or lo..hi).
  [[nodiscard]] std::vector<i64> choices(ExprId id, const State& state) const;

  /// The full domain of a variable (used when no ASSIGN constrains it).
  [[nodiscard]] std::vector<i64> domain(std::size_t var) const;

  /// True iff `value` lies inside the variable's declared type.
  [[nodiscard]] bool in_domain(std::size_t var, i64 value) const;

 private:
  const Module& module_;
};

}  // namespace fannet::smv
