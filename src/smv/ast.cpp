#include "smv/ast.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fannet::smv {

bool returns_bool(Op op) {
  switch (op) {
    case Op::kNot:
    case Op::kEq: case Op::kNe:
    case Op::kLt: case Op::kLe: case Op::kGt: case Op::kGe:
    case Op::kAnd: case Op::kOr: case Op::kXor:
    case Op::kImplies: case Op::kIff:
      return true;
    default:
      return false;
  }
}

std::size_t Module::add_var(const std::string& var_name, VarType type) {
  if (has_var(var_name)) {
    throw InvalidArgument("Module::add_var: duplicate variable '" + var_name + "'");
  }
  for (const auto& [def_name, unused] : defines_) {
    if (def_name == var_name) {
      throw InvalidArgument("Module::add_var: name clashes with DEFINE '" +
                            var_name + "'");
    }
  }
  if (const auto* e = std::get_if<EnumType>(&type)) {
    for (const auto& sym : e->symbols) {
      if (has_symbol(sym)) {
        throw InvalidArgument("Module::add_var: enum symbol '" + sym +
                              "' already used (symbols must be module-unique)");
      }
    }
    if (e->symbols.empty()) {
      throw InvalidArgument("Module::add_var: empty enum");
    }
  }
  if (const auto* r = std::get_if<RangeType>(&type)) {
    if (r->lo > r->hi) {
      throw InvalidArgument("Module::add_var: empty range for '" + var_name + "'");
    }
  }
  vars_.push_back({var_name, std::move(type)});
  init_.push_back(kNoExpr);
  next_.push_back(kNoExpr);
  return vars_.size() - 1;
}

std::size_t Module::add_define(const std::string& def_name, ExprId body) {
  if (has_var(def_name)) {
    throw InvalidArgument("Module::add_define: name clashes with VAR '" +
                          def_name + "'");
  }
  for (const auto& [existing, unused] : defines_) {
    if (existing == def_name) {
      throw InvalidArgument("Module::add_define: duplicate '" + def_name + "'");
    }
  }
  defines_.emplace_back(def_name, body);
  return defines_.size() - 1;
}

void Module::set_init(const std::string& var_name, ExprId rhs) {
  init_[var_index(var_name)] = rhs;
}

void Module::set_next(const std::string& var_name, ExprId rhs) {
  next_[var_index(var_name)] = rhs;
}

ExprId Module::push(Expr e) {
  arena_.push_back(std::move(e));
  return static_cast<ExprId>(arena_.size() - 1);
}

ExprId Module::e_const(i64 v) { return push({Op::kConst, v, {}, {}}); }
ExprId Module::e_name(std::string ident) {
  return push({Op::kName, 0, std::move(ident), {}});
}
ExprId Module::e_var(std::size_t var_idx) {
  if (var_idx >= vars_.size()) {
    throw InvalidArgument("Module::e_var: index out of range");
  }
  return push({Op::kVarRef, static_cast<i64>(var_idx), {}, {}});
}
ExprId Module::e_def(std::size_t def_idx) {
  if (def_idx >= defines_.size()) {
    throw InvalidArgument("Module::e_def: index out of range");
  }
  return push({Op::kDefRef, static_cast<i64>(def_idx), {}, {}});
}
ExprId Module::e_next(std::size_t var_idx) {
  if (var_idx >= vars_.size()) {
    throw InvalidArgument("Module::e_next: index out of range");
  }
  return push({Op::kNextRef, static_cast<i64>(var_idx), {}, {}});
}
ExprId Module::e_unary(Op op, ExprId a) {
  if (op != Op::kNeg && op != Op::kNot) {
    throw InvalidArgument("Module::e_unary: not a unary op");
  }
  return push({op, 0, {}, {a}});
}
ExprId Module::e_binary(Op op, ExprId a, ExprId b) {
  switch (op) {
    case Op::kAdd: case Op::kSub: case Op::kMul:
    case Op::kEq: case Op::kNe: case Op::kLt: case Op::kLe:
    case Op::kGt: case Op::kGe: case Op::kAnd: case Op::kOr:
    case Op::kXor: case Op::kImplies: case Op::kIff:
      break;
    default:
      throw InvalidArgument("Module::e_binary: not a binary op");
  }
  return push({op, 0, {}, {a, b}});
}
ExprId Module::e_case(std::vector<ExprId> cond_value_pairs) {
  if (cond_value_pairs.empty() || cond_value_pairs.size() % 2 != 0) {
    throw InvalidArgument("Module::e_case: need non-empty cond/value pairs");
  }
  return push({Op::kCase, 0, {}, std::move(cond_value_pairs)});
}
ExprId Module::e_set(std::vector<ExprId> alternatives) {
  if (alternatives.empty()) {
    throw InvalidArgument("Module::e_set: empty set");
  }
  return push({Op::kSet, 0, {}, std::move(alternatives)});
}
ExprId Module::e_range(ExprId lo, ExprId hi) {
  return push({Op::kRange, 0, {}, {lo, hi}});
}
ExprId Module::e_symbol(const std::string& symbol) {
  // Keep the symbol text so the printer can render it back faithfully.
  return push({Op::kConst, symbol_value(symbol), symbol, {}});
}

const Expr& Module::expr(ExprId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= arena_.size()) {
    throw InvalidArgument("Module::expr: bad id");
  }
  return arena_[static_cast<std::size_t>(id)];
}

std::size_t Module::var_index(const std::string& var_name) const {
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].name == var_name) return i;
  }
  throw InvalidArgument("Module: unknown variable '" + var_name + "'");
}

bool Module::has_var(const std::string& var_name) const {
  return std::any_of(vars_.begin(), vars_.end(),
                     [&](const VarDecl& v) { return v.name == var_name; });
}

i64 Module::domain_lo(std::size_t var) const {
  const VarType& t = vars_.at(var).type;
  if (std::holds_alternative<BoolType>(t)) return 0;
  if (const auto* r = std::get_if<RangeType>(&t)) return r->lo;
  return 0;
}

i64 Module::domain_hi(std::size_t var) const {
  const VarType& t = vars_.at(var).type;
  if (std::holds_alternative<BoolType>(t)) return 1;
  if (const auto* r = std::get_if<RangeType>(&t)) return r->hi;
  return static_cast<i64>(std::get<EnumType>(t).symbols.size()) - 1;
}

i64 Module::symbol_value(const std::string& symbol) const {
  for (const VarDecl& v : vars_) {
    if (const auto* e = std::get_if<EnumType>(&v.type)) {
      for (std::size_t i = 0; i < e->symbols.size(); ++i) {
        if (e->symbols[i] == symbol) return static_cast<i64>(i);
      }
    }
  }
  throw InvalidArgument("Module: unknown enum symbol '" + symbol + "'");
}

bool Module::has_symbol(const std::string& symbol) const {
  for (const VarDecl& v : vars_) {
    if (const auto* e = std::get_if<EnumType>(&v.type)) {
      for (const auto& s : e->symbols) {
        if (s == symbol) return true;
      }
    }
  }
  return false;
}

std::string Module::render_value(std::size_t var, i64 value) const {
  const VarType& t = vars_.at(var).type;
  if (const auto* e = std::get_if<EnumType>(&t)) {
    if (value >= 0 && value < static_cast<i64>(e->symbols.size())) {
      return e->symbols[static_cast<std::size_t>(value)];
    }
  }
  if (std::holds_alternative<BoolType>(t)) return value ? "TRUE" : "FALSE";
  return std::to_string(value);
}

void Module::resolve_expr(ExprId id, bool allow_next) {
  Expr& e = arena_.at(static_cast<std::size_t>(id));
  if (e.op == Op::kName) {
    // Priority: variable, define, enum symbol, TRUE/FALSE handled by lexer.
    for (std::size_t i = 0; i < vars_.size(); ++i) {
      if (vars_[i].name == e.name) {
        e.op = Op::kVarRef;
        e.value = static_cast<i64>(i);
        return;
      }
    }
    for (std::size_t i = 0; i < defines_.size(); ++i) {
      if (defines_[i].first == e.name) {
        e.op = Op::kDefRef;
        e.value = static_cast<i64>(i);
        return;
      }
    }
    if (has_symbol(e.name)) {
      e.value = symbol_value(e.name);
      e.op = Op::kConst;
      return;
    }
    throw ParseError("SMV: unresolved identifier '" + e.name + "'");
  }
  if (e.op == Op::kNextRef) {
    if (!allow_next) {
      throw ParseError("SMV: next(...) only allowed in TRANS constraints");
    }
    if (!e.name.empty()) {  // parser leaves the variable name unresolved
      e.value = static_cast<i64>(var_index(e.name));
    }
    return;
  }
  for (const ExprId kid : e.kids) resolve_expr(kid, allow_next);
}

void Module::mutate_to_next_ref(ExprId id) {
  Expr& e = arena_.at(static_cast<std::size_t>(id));
  if (e.op != Op::kName) {
    throw InvalidArgument("mutate_to_next_ref: node is not a kName");
  }
  e.op = Op::kNextRef;
}

void Module::resolve() {
  for (auto& [unused, body] : defines_) resolve_expr(body, false);
  for (std::size_t v = 0; v < vars_.size(); ++v) {
    if (init_[v] != kNoExpr) resolve_expr(init_[v], false);
    if (next_[v] != kNoExpr) resolve_expr(next_[v], false);
  }
  for (const ExprId e : init_constraints_) resolve_expr(e, false);
  for (const ExprId e : trans_constraints_) resolve_expr(e, true);
  for (const ExprId e : invar_constraints_) resolve_expr(e, false);
  for (const Spec& s : specs_) resolve_expr(s.expr, false);
}

}  // namespace fannet::smv
