/// \file
/// \brief SMV-subset abstract syntax (the nuXmv-frontend substitute).
///
/// The subset covers exactly what FANNet's Behavior Extraction emits and what
/// the paper's Fig.-2/Fig.-3 models need:
///
///   MODULE main
///   VAR      x : -5..5;   b : boolean;   phase : {init, eval};
///   DEFINE   n1 := 3*x + 7; ...
///   ASSIGN   init(x) := 0;   next(x) := {-5..5};      -- nondeterministic
///   INIT / TRANS / INVAR  <boolean constraints>       -- optional
///   INVARSPEC <boolean property>
///   LTLSPEC G <boolean property>                      -- G-only fragment
///
/// Expressions form an arena of nodes inside the Module (indices, no
/// pointers), which keeps the printer, evaluator and bit-blasting compiler
/// simple and cache-friendly.  Enum symbols are required to be unique across
/// the module so they resolve without type inference (nuXmv shares this
/// behaviour for the models we emit).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/checked.hpp"

namespace fannet::smv {

using util::i64;

using ExprId = std::int32_t;
inline constexpr ExprId kNoExpr = -1;

enum class Op : std::uint8_t {
  kConst,     // value
  kName,      // unresolved identifier (parser output only)
  kVarRef,    // value = variable index
  kDefRef,    // value = define index
  kNextRef,   // value = variable index, inside TRANS
  kNeg,       // -a
  kNot,       // !a
  kAdd, kSub, kMul,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kXor, kImplies, kIff,
  kCase,      // kids = cond0, val0, cond1, val1, ...
  kSet,       // kids = alternatives (choice context only)
  kRange,     // kids = lo, hi (choice context only; bounds constant)
};

struct Expr {
  Op op = Op::kConst;
  i64 value = 0;      // kConst payload, or resolved index for refs
  std::string name;   // kName payload (kept for printing)
  std::vector<ExprId> kids;
};

struct BoolType {};
struct RangeType {
  i64 lo = 0;
  i64 hi = 0;
};
struct EnumType {
  std::vector<std::string> symbols;  // value of symbols[i] is i
};
using VarType = std::variant<BoolType, RangeType, EnumType>;

struct VarDecl {
  std::string name;
  VarType type;
};

enum class SpecKind : std::uint8_t {
  kInvarSpec,  // INVARSPEC p  — p holds in every reachable state
  kLtlGlobally,  // LTLSPEC G p — same check, LTL surface syntax
};

struct Spec {
  SpecKind kind = SpecKind::kInvarSpec;
  ExprId expr = kNoExpr;
  std::string name;  // optional label for reports
};

class Module {
 public:
  std::string name = "main";

  // ---- declarations -------------------------------------------------------
  /// Declares a variable; returns its index.  Throws on duplicates.
  std::size_t add_var(const std::string& var_name, VarType type);
  /// Declares a DEFINE; returns its index.  Throws on duplicates.
  std::size_t add_define(const std::string& def_name, ExprId body);

  void set_init(const std::string& var_name, ExprId rhs);
  void set_next(const std::string& var_name, ExprId rhs);
  void add_init_constraint(ExprId e) { init_constraints_.push_back(e); }
  void add_trans_constraint(ExprId e) { trans_constraints_.push_back(e); }
  void add_invar_constraint(ExprId e) { invar_constraints_.push_back(e); }
  void add_spec(Spec s) { specs_.push_back(std::move(s)); }

  // ---- expression factory ---------------------------------------------------
  ExprId e_const(i64 v);
  ExprId e_bool(bool v) { return e_const(v ? 1 : 0); }
  ExprId e_name(std::string ident);      // resolved later by resolve()
  ExprId e_var(std::size_t var_index);
  ExprId e_def(std::size_t def_index);
  ExprId e_next(std::size_t var_index);
  ExprId e_unary(Op op, ExprId a);
  ExprId e_binary(Op op, ExprId a, ExprId b);
  ExprId e_case(std::vector<ExprId> cond_value_pairs);
  ExprId e_set(std::vector<ExprId> alternatives);
  ExprId e_range(ExprId lo, ExprId hi);
  /// Enum literal by symbol (resolves immediately; symbol must exist).
  ExprId e_symbol(const std::string& symbol);

  // ---- lookups ---------------------------------------------------------------
  [[nodiscard]] const Expr& expr(ExprId id) const;
  [[nodiscard]] std::size_t num_exprs() const noexcept { return arena_.size(); }
  [[nodiscard]] const std::vector<VarDecl>& vars() const noexcept { return vars_; }
  [[nodiscard]] std::size_t var_index(const std::string& var_name) const;
  [[nodiscard]] bool has_var(const std::string& var_name) const;
  [[nodiscard]] const std::vector<std::pair<std::string, ExprId>>& defines()
      const noexcept {
    return defines_;
  }
  [[nodiscard]] ExprId init_of(std::size_t var) const { return init_[var]; }
  [[nodiscard]] ExprId next_of(std::size_t var) const { return next_[var]; }
  [[nodiscard]] const std::vector<ExprId>& init_constraints() const noexcept {
    return init_constraints_;
  }
  [[nodiscard]] const std::vector<ExprId>& trans_constraints() const noexcept {
    return trans_constraints_;
  }
  [[nodiscard]] const std::vector<ExprId>& invar_constraints() const noexcept {
    return invar_constraints_;
  }
  [[nodiscard]] const std::vector<Spec>& specs() const noexcept { return specs_; }

  /// Domain size / values of a variable's type.
  [[nodiscard]] i64 domain_lo(std::size_t var) const;
  [[nodiscard]] i64 domain_hi(std::size_t var) const;

  /// Resolves enum symbol -> value; throws if unknown.
  [[nodiscard]] i64 symbol_value(const std::string& symbol) const;
  [[nodiscard]] bool has_symbol(const std::string& symbol) const;

  /// Renders an enum-typed variable's value back to its symbol (or the
  /// number for int/bool types).
  [[nodiscard]] std::string render_value(std::size_t var, i64 value) const;

  /// Resolves every kName node to kVarRef / kDefRef / enum constant and
  /// performs basic well-formedness checks.  Called by the parser; builder
  /// users emit resolved nodes directly and need not call it.
  void resolve();

  /// Parser hook: rewrites a freshly created kName node into a by-name
  /// next(...) reference (resolved later by resolve()).
  void mutate_to_next_ref(ExprId id);

 private:
  ExprId push(Expr e);
  void resolve_expr(ExprId id, bool allow_next);

  std::vector<Expr> arena_;
  std::vector<VarDecl> vars_;
  std::vector<std::pair<std::string, ExprId>> defines_;
  std::vector<ExprId> init_;  // per var, kNoExpr if absent
  std::vector<ExprId> next_;
  std::vector<ExprId> init_constraints_;
  std::vector<ExprId> trans_constraints_;
  std::vector<ExprId> invar_constraints_;
  std::vector<Spec> specs_;
};

/// True if the op is a boolean connective / comparison (result 0/1).
[[nodiscard]] bool returns_bool(Op op);

}  // namespace fannet::smv
