#include "smv/parser.hpp"

#include <cctype>

#include "util/error.hpp"

namespace fannet::smv {

namespace {

enum class Tok : std::uint8_t {
  kEof, kIdent, kNumber,
  kLParen, kRParen, kLBrace, kRBrace,
  kSemi, kColon, kComma, kAssign /* := */, kDots /* .. */,
  kArrow, kDArrow, kLe, kGe, kNe, kEq, kLt, kGt,
  kPlus, kMinus, kStar, kAmp, kPipe, kBang,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;
  i64 number = 0;
  int line = 0;
  int column = 0;  ///< 1-based column of the token's first character
};

/// "line L, column C" — the position suffix every lexer/parser diagnostic
/// carries.
std::string at_position(const Token& t) {
  return "at line " + std::to_string(t.line) + ", column " +
         std::to_string(t.column);
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { advance(); }

  [[nodiscard]] const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    skip_space_and_comments();
    current_ = Token{};
    current_.line = line_;
    current_.column = static_cast<int>(pos_ - line_start_) + 1;
    if (pos_ >= text_.size()) {
      current_.kind = Tok::kEof;
      return;
    }
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      // identifiers: [A-Za-z_][A-Za-z0-9_]*
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = Tok::kIdent;
      current_.text = text_.substr(start, pos_ - start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      current_.kind = Tok::kNumber;
      current_.text = text_.substr(start, pos_ - start);
      try {
        current_.number = std::stoll(current_.text);
      } catch (const std::out_of_range&) {
        // An over-long literal must surface as the parser's own diagnostic
        // (with its position), not as a leaked std::out_of_range.
        throw ParseError("SMV lexer: number '" + current_.text +
                         "' out of range " + at_position(current_));
      }
      return;
    }
    const auto two = [&](char a, char b) {
      return c == a && pos_ + 1 < text_.size() && text_[pos_ + 1] == b;
    };
    if (two(':', '=')) { current_.kind = Tok::kAssign; pos_ += 2; return; }
    if (two('.', '.')) { current_.kind = Tok::kDots; pos_ += 2; return; }
    if (two('-', '>')) { current_.kind = Tok::kArrow; pos_ += 2; return; }
    if (two('<', '-')) {
      if (pos_ + 2 < text_.size() && text_[pos_ + 2] == '>') {
        current_.kind = Tok::kDArrow;
        pos_ += 3;
        return;
      }
    }
    if (two('<', '=')) { current_.kind = Tok::kLe; pos_ += 2; return; }
    if (two('>', '=')) { current_.kind = Tok::kGe; pos_ += 2; return; }
    if (two('!', '=')) { current_.kind = Tok::kNe; pos_ += 2; return; }
    ++pos_;
    switch (c) {
      case '(': current_.kind = Tok::kLParen; return;
      case ')': current_.kind = Tok::kRParen; return;
      case '{': current_.kind = Tok::kLBrace; return;
      case '}': current_.kind = Tok::kRBrace; return;
      case ';': current_.kind = Tok::kSemi; return;
      case ':': current_.kind = Tok::kColon; return;
      case ',': current_.kind = Tok::kComma; return;
      case '=': current_.kind = Tok::kEq; return;
      case '<': current_.kind = Tok::kLt; return;
      case '>': current_.kind = Tok::kGt; return;
      case '+': current_.kind = Tok::kPlus; return;
      case '-': current_.kind = Tok::kMinus; return;
      case '*': current_.kind = Tok::kStar; return;
      case '&': current_.kind = Tok::kAmp; return;
      case '|': current_.kind = Tok::kPipe; return;
      case '!': current_.kind = Tok::kBang; return;
      default:
        throw ParseError("SMV lexer: unexpected character '" +
                         std::string(1, c) + "' " + at_position(current_));
    }
  }

  void skip_space_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        line_start_ = pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_start_ = 0;  ///< offset of the current line's first char
  int line_ = 1;
  Token current_;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lex_(text) {}

  Module parse() {
    expect_keyword("MODULE");
    module_.name = expect(Tok::kIdent).text;
    while (lex_.peek().kind != Tok::kEof) {
      const Token t = lex_.peek();
      if (t.kind != Tok::kIdent) {
        fail("expected a section keyword", t);
      }
      if (t.text == "VAR") {
        lex_.take();
        parse_var_section();
      } else if (t.text == "ASSIGN") {
        lex_.take();
        parse_assign_section();
      } else if (t.text == "DEFINE") {
        lex_.take();
        parse_define_section();
      } else if (t.text == "INIT") {
        lex_.take();
        module_.add_init_constraint(parse_expr());
        eat_optional_semi();
      } else if (t.text == "TRANS") {
        lex_.take();
        module_.add_trans_constraint(parse_expr());
        eat_optional_semi();
      } else if (t.text == "INVAR") {
        lex_.take();
        module_.add_invar_constraint(parse_expr());
        eat_optional_semi();
      } else if (t.text == "INVARSPEC") {
        lex_.take();
        module_.add_spec({SpecKind::kInvarSpec, parse_expr(), ""});
        eat_optional_semi();
      } else if (t.text == "LTLSPEC") {
        lex_.take();
        const Token g = expect(Tok::kIdent);
        if (g.text != "G") {
          fail("only the G-fragment of LTL is supported", g);
        }
        module_.add_spec({SpecKind::kLtlGlobally, parse_expr(), ""});
        eat_optional_semi();
      } else {
        fail("unknown section '" + t.text + "'", t);
      }
    }
    module_.resolve();
    return std::move(module_);
  }

 private:
  [[noreturn]] void fail(const std::string& message, const Token& at) {
    throw ParseError("SMV parser: " + message + " " + at_position(at));
  }

  Token expect(Tok kind) {
    const Token t = lex_.take();
    if (t.kind != kind) fail("unexpected token '" + t.text + "'", t);
    return t;
  }

  void expect_keyword(const std::string& kw) {
    const Token t = lex_.take();
    if (t.kind != Tok::kIdent || t.text != kw) fail("expected " + kw, t);
  }

  void eat_optional_semi() {
    if (lex_.peek().kind == Tok::kSemi) lex_.take();
  }

  [[nodiscard]] bool peek_is_ident(const char* text) const {
    return lex_.peek().kind == Tok::kIdent && lex_.peek().text == text;
  }

  // ---- sections -----------------------------------------------------------
  void parse_var_section() {
    while (lex_.peek().kind == Tok::kIdent && !is_section_keyword(lex_.peek().text)) {
      const std::string name = lex_.take().text;
      expect(Tok::kColon);
      module_.add_var(name, parse_type());
      expect(Tok::kSemi);
    }
  }

  VarType parse_type() {
    const Token t = lex_.peek();
    if (t.kind == Tok::kIdent && t.text == "boolean") {
      lex_.take();
      return BoolType{};
    }
    if (t.kind == Tok::kLBrace) {
      lex_.take();
      EnumType e;
      e.symbols.push_back(expect(Tok::kIdent).text);
      while (lex_.peek().kind == Tok::kComma) {
        lex_.take();
        e.symbols.push_back(expect(Tok::kIdent).text);
      }
      expect(Tok::kRBrace);
      return e;
    }
    // signed integer range: [-]num .. [-]num
    const i64 lo = parse_signed_number();
    expect(Tok::kDots);
    const i64 hi = parse_signed_number();
    return RangeType{lo, hi};
  }

  i64 parse_signed_number() {
    bool negative = false;
    if (lex_.peek().kind == Tok::kMinus) {
      lex_.take();
      negative = true;
    }
    const Token t = expect(Tok::kNumber);
    return negative ? -t.number : t.number;
  }

  void parse_assign_section() {
    while (peek_is_ident("init") || peek_is_ident("next")) {
      const std::string which = lex_.take().text;
      expect(Tok::kLParen);
      const std::string var = expect(Tok::kIdent).text;
      expect(Tok::kRParen);
      expect(Tok::kAssign);
      const ExprId rhs = parse_choice_expr();
      expect(Tok::kSemi);
      if (which == "init") {
        module_.set_init(var, rhs);
      } else {
        module_.set_next(var, rhs);
      }
    }
  }

  void parse_define_section() {
    while (lex_.peek().kind == Tok::kIdent &&
           !is_section_keyword(lex_.peek().text) &&
           !peek_is_ident("init") && !peek_is_ident("next")) {
      const std::string name = lex_.take().text;
      expect(Tok::kAssign);
      const ExprId body = parse_expr();
      expect(Tok::kSemi);
      module_.add_define(name, body);
    }
  }

  [[nodiscard]] static bool is_section_keyword(const std::string& s) {
    return s == "VAR" || s == "ASSIGN" || s == "DEFINE" || s == "INIT" ||
           s == "TRANS" || s == "INVAR" || s == "INVARSPEC" || s == "LTLSPEC" ||
           s == "MODULE";
  }

  // ---- expressions ----------------------------------------------------------
  ExprId parse_choice_expr() {
    if (lex_.peek().kind == Tok::kLBrace) {
      lex_.take();
      std::vector<ExprId> items;
      items.push_back(parse_choice_item());
      while (lex_.peek().kind == Tok::kComma) {
        lex_.take();
        items.push_back(parse_choice_item());
      }
      expect(Tok::kRBrace);
      return module_.e_set(std::move(items));
    }
    return parse_choice_item();
  }

  ExprId parse_choice_item() {
    const ExprId first = parse_expr();
    if (lex_.peek().kind == Tok::kDots) {
      lex_.take();
      return module_.e_range(first, parse_expr());
    }
    return first;
  }

  ExprId parse_expr() { return parse_implies(); }

  ExprId parse_implies() {  // right-associative, lowest precedence
    const ExprId lhs = parse_iff();
    if (lex_.peek().kind == Tok::kArrow) {
      lex_.take();
      return module_.e_binary(Op::kImplies, lhs, parse_implies());
    }
    return lhs;
  }

  ExprId parse_iff() {
    ExprId lhs = parse_or();
    while (lex_.peek().kind == Tok::kDArrow) {
      lex_.take();
      lhs = module_.e_binary(Op::kIff, lhs, parse_or());
    }
    return lhs;
  }

  ExprId parse_or() {
    ExprId lhs = parse_and();
    while (lex_.peek().kind == Tok::kPipe || peek_is_ident("xor")) {
      const bool is_xor = lex_.take().kind == Tok::kIdent;
      lhs = module_.e_binary(is_xor ? Op::kXor : Op::kOr, lhs, parse_and());
    }
    return lhs;
  }

  ExprId parse_and() {
    ExprId lhs = parse_comparison();
    while (lex_.peek().kind == Tok::kAmp) {
      lex_.take();
      lhs = module_.e_binary(Op::kAnd, lhs, parse_comparison());
    }
    return lhs;
  }

  ExprId parse_comparison() {
    ExprId lhs = parse_additive();
    while (true) {
      Op op;
      switch (lex_.peek().kind) {
        case Tok::kEq: op = Op::kEq; break;
        case Tok::kNe: op = Op::kNe; break;
        case Tok::kLt: op = Op::kLt; break;
        case Tok::kLe: op = Op::kLe; break;
        case Tok::kGt: op = Op::kGt; break;
        case Tok::kGe: op = Op::kGe; break;
        default: return lhs;
      }
      lex_.take();
      lhs = module_.e_binary(op, lhs, parse_additive());
    }
  }

  ExprId parse_additive() {
    ExprId lhs = parse_multiplicative();
    while (lex_.peek().kind == Tok::kPlus || lex_.peek().kind == Tok::kMinus) {
      const bool plus = lex_.take().kind == Tok::kPlus;
      lhs = module_.e_binary(plus ? Op::kAdd : Op::kSub, lhs,
                             parse_multiplicative());
    }
    return lhs;
  }

  ExprId parse_multiplicative() {
    ExprId lhs = parse_unary();
    while (lex_.peek().kind == Tok::kStar) {
      lex_.take();
      lhs = module_.e_binary(Op::kMul, lhs, parse_unary());
    }
    return lhs;
  }

  ExprId parse_unary() {
    if (lex_.peek().kind == Tok::kBang) {
      lex_.take();
      return module_.e_unary(Op::kNot, parse_unary());
    }
    if (lex_.peek().kind == Tok::kMinus) {
      lex_.take();
      return module_.e_unary(Op::kNeg, parse_unary());
    }
    return parse_primary();
  }

  ExprId parse_primary() {
    const Token t = lex_.take();
    switch (t.kind) {
      case Tok::kNumber:
        return module_.e_const(t.number);
      case Tok::kLParen: {
        const ExprId e = parse_expr();
        expect(Tok::kRParen);
        return e;
      }
      case Tok::kIdent: {
        if (t.text == "TRUE") return module_.e_const(1);
        if (t.text == "FALSE") return module_.e_const(0);
        if (t.text == "case") return parse_case();
        if (t.text == "next") {
          expect(Tok::kLParen);
          const Token var = expect(Tok::kIdent);
          expect(Tok::kRParen);
          Expr e;
          e.op = Op::kNextRef;
          e.name = var.text;  // resolved by Module::resolve()
          return push_raw(std::move(e));
        }
        return module_.e_name(t.text);
      }
      default:
        fail("unexpected token in expression", t);
    }
  }

  ExprId parse_case() {
    std::vector<ExprId> pairs;
    while (!peek_is_ident("esac")) {
      pairs.push_back(parse_expr());
      expect(Tok::kColon);
      pairs.push_back(parse_expr());
      expect(Tok::kSemi);
    }
    lex_.take();  // esac
    return module_.e_case(std::move(pairs));
  }

  /// Creates a by-name next(...) reference; Module::resolve() binds the
  /// variable index later.
  ExprId push_raw(Expr e) {
    const ExprId id = module_.e_name(e.name);
    module_.mutate_to_next_ref(id);
    return id;
  }

  Lexer lex_;
  Module module_;
};

}  // namespace

Module parse_module(const std::string& text) { return Parser(text).parse(); }

}  // namespace fannet::smv
