/// \file
/// \brief Recursive-descent parser for the SMV subset (see ast.hpp for the grammar).
///
/// Operator precedence follows the NuSMV manual for the operators we accept
/// (highest to lowest): unary !/-  >  *  >  +/-  >  comparisons  >  &  >
/// |/xor  >  <->  >  ->.  The printer fully parenthesizes, so print/parse
/// round-trips are exact.
#pragma once

#include <string>

#include "smv/ast.hpp"

namespace fannet::smv {

/// Parses one MODULE.  Throws ParseError (with a line number) on malformed
/// input; the returned module is fully resolved (Module::resolve() run).
[[nodiscard]] Module parse_module(const std::string& text);

}  // namespace fannet::smv
