/// \file
/// \brief Clang Thread Safety Analysis macro shim (DESIGN.md §13).
///
/// FANNet's determinism contract rests on a small set of locking
/// disciplines (which fields a mutex guards, which functions require it
/// held).  These macros expose Clang's thread-safety attributes so that
/// discipline is *machine-checked* at compile time under
/// `clang++ -Wthread-safety -Werror` (the CI `static-analysis` job), and
/// expand to nothing under GCC and other compilers — zero runtime and zero
/// ABI cost either way.
///
/// Use the annotated wrappers in util/sync.hpp (`util::Mutex`,
/// `util::MutexLock`) instead of raw `std::mutex`/`std::scoped_lock`:
/// libstdc++'s standard types carry no attributes, so the analysis only
/// sees acquisitions that go through the annotated wrappers.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define FANNET_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FANNET_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex"); required before
/// ACQUIRE/RELEASE/GUARDED_BY can reference instances of it.
#define FANNET_CAPABILITY(x) FANNET_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (util::MutexLock).
#define FANNET_SCOPED_CAPABILITY FANNET_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define FANNET_GUARDED_BY(x) FANNET_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given mutex.
#define FANNET_PT_GUARDED_BY(x) FANNET_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that acquires the capability (and does not release it).
#define FANNET_ACQUIRE(...) \
  FANNET_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the capability.
#define FANNET_RELEASE(...) \
  FANNET_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that may acquire the capability; the boolean is the success
/// return value.
#define FANNET_TRY_ACQUIRE(...) \
  FANNET_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function callable only while holding the listed capabilities.
#define FANNET_REQUIRES(...) \
  FANNET_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function callable only while *not* holding the listed capabilities
/// (deadlock guard for self-recursive acquisition).
#define FANNET_EXCLUDES(...) FANNET_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the given capability.
#define FANNET_RETURN_CAPABILITY(x) FANNET_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function.  Every use must
/// carry a comment justifying why the access is race-free anyway (e.g. a
/// release/acquire publication protocol the lock-based analysis cannot
/// model); fannet-lint does not police this, reviewers do.
#define FANNET_NO_THREAD_SAFETY_ANALYSIS \
  FANNET_THREAD_ANNOTATION(no_thread_safety_analysis)
