/// \file
/// \brief Exact fixed-point numbers used to quantize network weights.
///
/// A Fixed stores value = raw / kScale with raw an int64 and kScale a
/// compile-time power of ten.  Addition/subtraction/comparison are exact;
/// multiplication by an *integer* is exact; conversion from double rounds once
/// at quantization time and is the only inexact operation in the formal path
/// (DESIGN.md §4.1).  Fixed*Fixed is intentionally absent: the formal encoding
/// never multiplies two quantized weights together.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <string>

#include "util/checked.hpp"

namespace fannet::util {

class Fixed {
 public:
  /// Denominator shared by all Fixed values (10^4 keeps the Leukemia
  /// network's worst-case accumulations comfortably inside int64/int128).
  static constexpr i64 kScale = 10'000;

  constexpr Fixed() noexcept = default;

  /// Quantizes a double with round-half-away-from-zero.  NaN and ±inf are
  /// rejected explicitly: both range comparisons below are false for NaN,
  /// which would otherwise reach the float→int cast — undefined behavior.
  [[nodiscard]] static Fixed from_double(double v) {
    if (!std::isfinite(v)) {
      throw ArithmeticError("Fixed::from_double: non-finite value");
    }
    const double scaled = v * static_cast<double>(kScale);
    const double rounded = (scaled >= 0.0) ? (scaled + 0.5) : (scaled - 0.5);
    if (rounded >= 9.2e18 || rounded <= -9.2e18) {
      throw ArithmeticError("Fixed::from_double: value out of range");
    }
    return from_raw(static_cast<i64>(rounded));
  }

  /// Wraps an already-scaled raw integer (value = raw / kScale).
  [[nodiscard]] static constexpr Fixed from_raw(i64 raw) noexcept {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  /// Exact integer -> Fixed conversion.
  [[nodiscard]] static Fixed from_int(i64 v) {
    return from_raw(checked_mul(v, kScale));
  }

  [[nodiscard]] constexpr i64 raw() const noexcept { return raw_; }
  [[nodiscard]] double to_double() const noexcept {
    return static_cast<double>(raw_) / static_cast<double>(kScale);
  }

  [[nodiscard]] Fixed operator+(Fixed o) const {
    return from_raw(checked_add(raw_, o.raw_));
  }
  [[nodiscard]] Fixed operator-(Fixed o) const {
    return from_raw(checked_sub(raw_, o.raw_));
  }
  [[nodiscard]] Fixed operator-() const { return from_raw(checked_sub(0, raw_)); }

  /// Exact multiplication by an integer (weight * integer input).
  [[nodiscard]] Fixed mul_int(i64 k) const {
    return from_raw(checked_mul(raw_, k));
  }

  [[nodiscard]] constexpr auto operator<=>(const Fixed&) const noexcept = default;

  /// Decimal rendering, e.g. "-1.2500".
  [[nodiscard]] std::string to_string() const {
    const i64 whole = raw_ / kScale;
    i64 frac = raw_ % kScale;
    if (frac < 0) frac = -frac;
    std::string s = (raw_ < 0 && whole == 0) ? "-0" : std::to_string(whole);
    std::string f = std::to_string(frac);
    s.push_back('.');
    s.append(4 - f.size(), '0');
    s += f;
    return s;
  }

 private:
  i64 raw_ = 0;
};

}  // namespace fannet::util
