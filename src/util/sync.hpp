/// \file
/// \brief Annotated synchronization primitives (DESIGN.md §13).
///
/// Thin zero-cost wrappers over the standard primitives that carry Clang
/// Thread Safety attributes (util/thread_annotations.hpp), so `clang++
/// -Wthread-safety -Werror` can prove the repo's locking discipline at
/// compile time.  Libstdc++'s `std::mutex`/`std::scoped_lock` are not
/// annotated, which is the only reason these exist — behavior is identical,
/// and off-Clang every attribute expands to nothing.
///
///   - `Mutex`      annotated `std::mutex` (a "mutex" capability);
///   - `MutexLock`  annotated scoped lock (the `std::scoped_lock` shape);
///   - `CondVar`    condition variable over `Mutex` (wait requires the
///                  mutex held, exactly like the standard contract);
///   - `FirstError` first-exception-wins capture slot shared by every
///                  worker-pool join point (scheduler, bnb, enumerate).
#pragma once

#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace fannet::util {

/// `std::mutex` as an annotated capability.  Prefer `MutexLock` over
/// calling lock()/unlock() directly.
class FANNET_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FANNET_ACQUIRE() { mutex_.lock(); }
  void unlock() FANNET_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() FANNET_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  std::mutex mutex_;
};

/// Scoped lock over one `Mutex` (the `std::scoped_lock` idiom, annotated).
class FANNET_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) FANNET_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() FANNET_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with `Mutex`.  The wait entry points require
/// the mutex held (they release it while blocked and re-acquire before
/// returning, per the standard contract — the analysis sees "held
/// throughout", which is the caller-visible truth).
class CondVar {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  template <typename Predicate>
  void wait(Mutex& mutex, Predicate ready) FANNET_REQUIRES(mutex) {
    cv_.wait(mutex, ready);
  }

  /// Returns false when `deadline` passed with `ready()` still false.
  template <typename Clock, typename Duration, typename Predicate>
  bool wait_until(Mutex& mutex,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Predicate ready) FANNET_REQUIRES(mutex) {
    return cv_.wait_until(mutex, deadline, ready);
  }

 private:
  std::condition_variable_any cv_;
};

/// First-exception-wins capture slot for fork-join worker pools: every
/// worker funnels its catch-all through `capture`, the join point rethrows
/// via `rethrow_if_set`.  Replaces the per-call-site mutex + exception_ptr
/// pairs so the discipline is written (and machine-checked) once.
class FirstError {
 public:
  /// Records the current in-flight exception if none is held yet.
  /// Call from inside a catch block.
  void capture() {
    const MutexLock lock(mutex_);
    if (!error_) error_ = std::current_exception();
  }

  /// True once an exception has been captured (workers poll this to drain
  /// early; a stale false just delays the drain one iteration).
  [[nodiscard]] bool set() const {
    const MutexLock lock(mutex_);
    return error_ != nullptr;
  }

  /// Rethrows the captured exception, if any.  Call after the pool joined.
  void rethrow_if_set() const {
    std::exception_ptr error;
    {
      const MutexLock lock(mutex_);
      error = error_;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  mutable Mutex mutex_;
  std::exception_ptr error_ FANNET_GUARDED_BY(mutex_);
};

}  // namespace fannet::util
