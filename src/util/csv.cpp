#include "util/csv.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace fannet::util {

CsvTable parse_csv(const std::string& text) {
  CsvTable table;
  CsvRow row;
  std::string cell;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
  };
  auto end_row = [&] {
    if (row_has_content || !row.empty() || !cell.empty()) {
      end_cell();
      table.push_back(std::move(row));
      row.clear();
    }
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_cell();
        row_has_content = true;
        break;
      case '\r':
        // Only a CRLF pair is a line ending (the '\n' ends the row); a
        // stray '\r' inside an unquoted cell is data and must survive a
        // to_csv/parse_csv round trip.
        if (i + 1 < text.size() && text[i + 1] == '\n') break;
        cell.push_back('\r');
        row_has_content = true;
        break;
      case '\n':
        end_row();
        break;
      default:
        cell.push_back(c);
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) throw ParseError("parse_csv: unterminated quoted cell");
  end_row();  // final record without trailing newline
  return table;
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("read_csv_file: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_csv(buf.str());
}

std::string to_csv(const CsvTable& table) {
  std::string out;
  for (const auto& row : table) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out.push_back(',');
      const std::string& cell = row[i];
      const bool needs_quotes =
          cell.find_first_of(",\"\n\r") != std::string::npos;
      if (!needs_quotes) {
        out += cell;
      } else {
        out.push_back('"');
        for (char c : cell) {
          if (c == '"') out += "\"\"";
          else out.push_back(c);
        }
        out.push_back('"');
      }
    }
    out.push_back('\n');
  }
  return out;
}

void write_csv_file(const std::string& path, const CsvTable& table) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ParseError("write_csv_file: cannot open '" + path + "'");
  out << to_csv(table);
}

long long csv_to_int(const std::string& cell) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(cell.c_str(), &end, 10);
  if (errno != 0 || end == cell.c_str() || *end != '\0') {
    throw ParseError("csv_to_int: bad integer '" + cell + "'");
  }
  return v;
}

double csv_to_double(const std::string& cell) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (errno != 0 || end == cell.c_str() || *end != '\0') {
    throw ParseError("csv_to_double: bad number '" + cell + "'");
  }
  return v;
}

}  // namespace fannet::util
