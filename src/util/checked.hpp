/// \file
/// \brief Overflow-checked 64/128-bit integer arithmetic.
///
/// The formal-analysis path of FANNet is exact by construction: every network
/// quantity is an integer (see DESIGN.md §4.1).  Exactness is only meaningful
/// if overflow is impossible or detected, so all arithmetic in that path goes
/// through these helpers.  They throw ArithmeticError instead of silently
/// wrapping.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "util/error.hpp"

namespace fannet::util {

using i64 = std::int64_t;
using u64 = std::uint64_t;
using i128 = __int128;

/// Checked i64 addition; throws ArithmeticError on overflow.
[[nodiscard]] inline i64 checked_add(i64 a, i64 b) {
  i64 r = 0;
  if (__builtin_add_overflow(a, b, &r)) {
    throw ArithmeticError("checked_add: int64 overflow");
  }
  return r;
}

/// Checked i64 subtraction; throws ArithmeticError on overflow.
[[nodiscard]] inline i64 checked_sub(i64 a, i64 b) {
  i64 r = 0;
  if (__builtin_sub_overflow(a, b, &r)) {
    throw ArithmeticError("checked_sub: int64 overflow");
  }
  return r;
}

/// Checked i64 multiplication; throws ArithmeticError on overflow.
[[nodiscard]] inline i64 checked_mul(i64 a, i64 b) {
  i64 r = 0;
  if (__builtin_mul_overflow(a, b, &r)) {
    throw ArithmeticError("checked_mul: int64 overflow");
  }
  return r;
}

/// Narrows a 128-bit value back to i64; throws ArithmeticError if it does
/// not fit.  This is the single funnel through which wide accumulations
/// re-enter the 64-bit world.
[[nodiscard]] inline i64 narrow_i128(i128 v) {
  if (v > static_cast<i128>(std::numeric_limits<i64>::max()) ||
      v < static_cast<i128>(std::numeric_limits<i64>::min())) {
    throw ArithmeticError("narrow_i128: value does not fit in int64");
  }
  return static_cast<i64>(v);
}

/// Floor division for signed integers (C++ '/' truncates toward zero).
[[nodiscard]] constexpr i64 floor_div(i64 a, i64 b) noexcept {
  const i64 q = a / b;
  const i64 r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

/// Ceiling division for signed integers.
[[nodiscard]] constexpr i64 ceil_div(i64 a, i64 b) noexcept {
  const i64 q = a / b;
  const i64 r = a % b;
  return (r != 0 && ((r < 0) == (b < 0))) ? q + 1 : q;
}

/// Renders an i128 as decimal text (the standard library cannot print it).
[[nodiscard]] inline std::string to_string_i128(i128 v) {
  if (v == 0) return "0";
  const bool neg = v < 0;
  // Negate digit-by-digit to avoid overflow on the minimum value.
  std::string digits;
  while (v != 0) {
    int d = static_cast<int>(v % 10);
    v /= 10;
    if (d < 0) d = -d;
    digits.push_back(static_cast<char>('0' + d));
  }
  if (neg) digits.push_back('-');
  return {digits.rbegin(), digits.rend()};
}

}  // namespace fannet::util
