/// \file
/// \brief Minimal CSV reading/writing for datasets and experiment reports.
///
/// The dialect is deliberately small (comma separator, optional quoting with
/// "" escapes, \n or \r\n record ends) — enough for the Golub-style matrices
/// and the bench output files, with malformed input reported as ParseError.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fannet::util {

using CsvRow = std::vector<std::string>;
using CsvTable = std::vector<CsvRow>;

/// Parses CSV text into rows of cells.  Empty lines are skipped.
/// Throws ParseError on unterminated quotes.
[[nodiscard]] CsvTable parse_csv(const std::string& text);

/// Reads and parses a CSV file.  Throws ParseError if unreadable.
[[nodiscard]] CsvTable read_csv_file(const std::string& path);

/// Serializes rows as CSV, quoting cells that contain separators/quotes.
[[nodiscard]] std::string to_csv(const CsvTable& table);

/// Writes rows to a file.  Throws ParseError if the file cannot be opened.
void write_csv_file(const std::string& path, const CsvTable& table);

/// Parses a cell as i64 / double; throws ParseError with context on failure.
[[nodiscard]] long long csv_to_int(const std::string& cell);
[[nodiscard]] double csv_to_double(const std::string& cell);

}  // namespace fannet::util
