/// \file
/// \brief Deterministic pseudo-random number generation (xoshiro256**).
///
/// Every stochastic component of the reproduction (synthetic dataset, weight
/// initialization, property-test case generation) draws from this generator so
/// that a seed pins the whole experiment.  xoshiro256** is small, fast and has
/// well-studied statistical quality; seeding goes through splitmix64 as its
/// authors recommend.
#pragma once

#include <cmath>
#include <cstdint>

namespace fannet::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
    have_gauss_ = false;
  }

  /// Raw 64 uniform bits.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive (lo <= hi required).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    // The span is computed in uint64: `hi - lo` as signed would overflow
    // for wide ranges (e.g. lo = -2, hi = INT64_MAX); unsigned wraparound
    // is exact, with the full-range case landing on span == 0.
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    // Debiased modulo (Lemire-style rejection kept simple).
    std::uint64_t x = next_u64();
    if (span != 0) {
      const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
      while (x >= limit) x = next_u64();
      x %= span;
    }
    // lo + x in uint64 so the intermediate never overflows; the final
    // value is in [lo, hi] and converts back exactly (two's complement).
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + x);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal via Marsaglia's polar method (caches the spare value).
  double gaussian() noexcept {
    if (have_gauss_) {
      have_gauss_ = false;
      return gauss_spare_;
    }
    double u = 0.0, v = 0.0, s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    gauss_spare_ = v * m;
    have_gauss_ = true;
    return u * m;
  }

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double gauss_spare_ = 0.0;
  bool have_gauss_ = false;
};

}  // namespace fannet::util
