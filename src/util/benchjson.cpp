#include "util/benchjson.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace fannet::util {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

BenchJson::BenchJson(std::string bench_name) : bench_(std::move(bench_name)) {
  if (bench_.empty()) throw InvalidArgument("BenchJson: empty bench name");
}

void BenchJson::add(const std::string& name, double wall_ms,
                    std::uint64_t work, std::size_t threads) {
  records_.push_back({name, wall_ms, work, threads});
}

std::string BenchJson::to_json() const {
  std::ostringstream out;
  out << "{\"bench\":\"" << escape(bench_) << "\",\"records\":[";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    if (i > 0) out << ',';
    out << "{\"name\":\"" << escape(r.name) << "\",\"wall_ms\":" << r.wall_ms
        << ",\"work\":" << r.work << ",\"threads\":" << r.threads << '}';
  }
  out << "]}\n";
  return out.str();
}

std::string BenchJson::write(const std::string& directory) const {
  // Write-temp-then-rename: a bench killed mid-write (CI timeout, ^C) must
  // never leave a torn BENCH_*.json behind for the comparison tooling to
  // choke on.  rename(2) within one directory is atomic, so readers see
  // either the old complete file or the new complete file.
  const std::string path = directory + "/BENCH_" + bench_ + ".json";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw Error("BenchJson::write: cannot open " + tmp);
    out << to_json();
    out.flush();
    if (!out) {
      out.close();
      (void)std::remove(tmp.c_str());
      throw Error("BenchJson::write: short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    (void)std::remove(tmp.c_str());
    throw Error("BenchJson::write: rename to " + path + " failed: " +
                ec.message());
  }
  return path;
}

}  // namespace fannet::util
