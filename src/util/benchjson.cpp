#include "util/benchjson.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace fannet::util {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

BenchJson::BenchJson(std::string bench_name) : bench_(std::move(bench_name)) {
  if (bench_.empty()) throw InvalidArgument("BenchJson: empty bench name");
}

void BenchJson::add(const std::string& name, double wall_ms,
                    std::uint64_t work, std::size_t threads) {
  records_.push_back({name, wall_ms, work, threads});
}

std::string BenchJson::to_json() const {
  std::ostringstream out;
  out << "{\"bench\":\"" << escape(bench_) << "\",\"records\":[";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    if (i > 0) out << ',';
    out << "{\"name\":\"" << escape(r.name) << "\",\"wall_ms\":" << r.wall_ms
        << ",\"work\":" << r.work << ",\"threads\":" << r.threads << '}';
  }
  out << "]}\n";
  return out.str();
}

std::string BenchJson::write(const std::string& directory) const {
  const std::string path = directory + "/BENCH_" + bench_ + ".json";
  std::ofstream out(path);
  if (!out) throw Error("BenchJson::write: cannot open " + path);
  out << to_json();
  if (!out) throw Error("BenchJson::write: short write to " + path);
  return path;
}

}  // namespace fannet::util
