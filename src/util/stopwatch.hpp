/// \file
/// \brief Monotonic wall-clock stopwatch used by the benchmark harnesses.
#pragma once

#include <chrono>

namespace fannet::util {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fannet::util
