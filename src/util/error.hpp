/// \file
/// \brief Error types shared across the FANNet library.
///
/// Per the C++ Core Guidelines (E.2/E.14) we signal errors that callers cannot
/// reasonably ignore with exceptions derived from std::runtime_error, using a
/// distinct type per failure domain so call sites can discriminate.
#pragma once

#include <stdexcept>
#include <string>

namespace fannet {

/// Base class of every exception thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Arithmetic left the representable domain (overflow / bad narrowing).
class ArithmeticError : public Error {
 public:
  explicit ArithmeticError(const std::string& what) : Error(what) {}
};

/// Malformed external input (CSV, SMV text, serialized network, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A semantic precondition of an API was violated by the caller.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A resource limit (state-space cap, conflict budget, ...) was exceeded.
class ResourceLimit : public Error {
 public:
  explicit ResourceLimit(const std::string& what) : Error(what) {}
};

}  // namespace fannet
