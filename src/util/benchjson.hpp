/// \file
/// \brief Machine-readable benchmark output (DESIGN.md §6).
///
/// Every bench binary appends its headline measurements to a BenchJson and
/// writes BENCH_<bench>.json next to its working directory, so the perf
/// trajectory is diffable PR-over-PR without scraping stdout.  Schema:
///
///   { "bench": "<bench>",
///     "records": [ { "name": "...", "wall_ms": 12.3,
///                    "work": 4567, "threads": 8 }, ... ] }
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fannet::util {

class BenchJson {
 public:
  explicit BenchJson(std::string bench_name);

  /// One measurement row: wall-clock milliseconds, engine work units
  /// (evals / boxes / states — whatever the workload counts), and the
  /// worker-thread count that produced it.
  void add(const std::string& name, double wall_ms, std::uint64_t work,
           std::size_t threads);

  [[nodiscard]] std::string to_json() const;

  /// Writes BENCH_<bench>.json into `directory`; returns the path written.
  /// Throws util::Error on I/O failure.
  std::string write(const std::string& directory = ".") const;

 private:
  struct Record {
    std::string name;
    double wall_ms = 0.0;
    std::uint64_t work = 0;
    std::size_t threads = 1;
  };
  std::string bench_;
  std::vector<Record> records_;
};

}  // namespace fannet::util
