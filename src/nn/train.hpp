/// \file
/// \brief Full-batch gradient-descent training (the MATLAB substitute).
///
/// The paper's network is trained with plain gradient descent, MSE loss on
/// one-hot targets, learning rate 0.5 for the first 40 epochs and 0.2 for the
/// remaining 40 (paper §V-A, footnote 1).  That schedule is the default here.
#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"
#include "nn/network.hpp"

namespace fannet::nn {

/// One constant-learning-rate segment of the schedule.
struct TrainPhase {
  double learning_rate = 0.1;
  int epochs = 0;
};

struct TrainConfig {
  /// The paper's schedule: lr 0.5 x 40 epochs, then lr 0.2 x 40 epochs.
  std::vector<TrainPhase> schedule{{0.5, 40}, {0.2, 40}};
  std::uint64_t seed = 1;  ///< weight-initialization seed
};

struct TrainResult {
  std::vector<double> epoch_loss;  ///< mean MSE after each epoch
  double train_accuracy = 0.0;     ///< fraction correct on the training set
};

/// Trains `net` in place on rows of `inputs` (one sample per row, values
/// already normalized) against integer labels in [0, output_dim).
/// Loss is 0.5 * ||out - onehot||^2 averaged over the batch.
TrainResult train(Network& net, const la::MatrixD& inputs,
                  const std::vector<int>& labels, const TrainConfig& config);

/// Fraction of rows classified correctly.
[[nodiscard]] double accuracy(const Network& net, const la::MatrixD& inputs,
                              const std::vector<int>& labels);

}  // namespace fannet::nn
