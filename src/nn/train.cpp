#include "nn/train.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fannet::nn {

namespace {

/// Gradient accumulator matching the network's parameter shapes.
struct Grads {
  std::vector<la::MatrixD> w;
  std::vector<std::vector<double>> b;

  explicit Grads(const Network& net) {
    for (const Layer& l : net.layers()) {
      w.emplace_back(l.out_dim(), l.in_dim());
      b.emplace_back(l.out_dim(), 0.0);
    }
  }

  void zero() {
    for (auto& m : w) std::fill(m.data().begin(), m.data().end(), 0.0);
    for (auto& v : b) std::fill(v.begin(), v.end(), 0.0);
  }
};

/// Backpropagates one sample's MSE gradient into `g`; returns sample loss.
double backprop_sample(const Network& net, std::span<const double> x,
                       int label, Grads& g) {
  const Network::Trace trace = net.forward_trace(x);
  const auto& layers = net.layers();
  const std::size_t depth = layers.size();
  const std::vector<double>& out = trace.post.back();

  // delta = dLoss/dPre for the current layer, starting at the output.
  std::vector<double> delta(out.size());
  double loss = 0.0;
  for (std::size_t k = 0; k < out.size(); ++k) {
    const double target = (static_cast<int>(k) == label) ? 1.0 : 0.0;
    const double diff = out[k] - target;
    loss += 0.5 * diff * diff;
    delta[k] = diff;  // output layer is linear
  }

  for (std::size_t li = depth; li-- > 0;) {
    const Layer& l = layers[li];
    if (l.activation == Activation::kReLU) {
      for (std::size_t j = 0; j < delta.size(); ++j) {
        if (trace.pre[li][j] <= 0.0) delta[j] = 0.0;
      }
    }
    const std::vector<double>& input =
        (li == 0) ? std::vector<double>(x.begin(), x.end()) : trace.post[li - 1];
    for (std::size_t j = 0; j < l.out_dim(); ++j) {
      for (std::size_t i = 0; i < l.in_dim(); ++i) {
        g.w[li](j, i) += delta[j] * input[i];
      }
      g.b[li][j] += delta[j];
    }
    if (li > 0) {
      std::vector<double> prev(l.in_dim(), 0.0);
      for (std::size_t i = 0; i < l.in_dim(); ++i) {
        for (std::size_t j = 0; j < l.out_dim(); ++j) {
          prev[i] += l.weights(j, i) * delta[j];
        }
      }
      delta = std::move(prev);
    }
  }
  return loss;
}

}  // namespace

TrainResult train(Network& net, const la::MatrixD& inputs,
                  const std::vector<int>& labels, const TrainConfig& config) {
  if (inputs.rows() != labels.size()) {
    throw InvalidArgument("train: inputs/labels size mismatch");
  }
  if (inputs.rows() == 0) throw InvalidArgument("train: empty training set");
  if (inputs.cols() != net.input_dim()) {
    throw InvalidArgument("train: input dim mismatch");
  }

  const double n = static_cast<double>(inputs.rows());
  TrainResult result;
  Grads grads(net);

  for (const TrainPhase& phase : config.schedule) {
    for (int epoch = 0; epoch < phase.epochs; ++epoch) {
      grads.zero();
      double loss = 0.0;
      for (std::size_t s = 0; s < inputs.rows(); ++s) {
        loss += backprop_sample(net, inputs.row(s), labels[s], grads);
      }
      const double step = phase.learning_rate / n;
      auto& layers = net.layers();
      for (std::size_t li = 0; li < layers.size(); ++li) {
        auto dst = layers[li].weights.data();
        auto src = grads.w[li].data();
        for (std::size_t i = 0; i < dst.size(); ++i) dst[i] -= step * src[i];
        for (std::size_t j = 0; j < layers[li].bias.size(); ++j) {
          layers[li].bias[j] -= step * grads.b[li][j];
        }
      }
      result.epoch_loss.push_back(loss / n);
    }
  }
  result.train_accuracy = accuracy(net, inputs, labels);
  return result;
}

double accuracy(const Network& net, const la::MatrixD& inputs,
                const std::vector<int>& labels) {
  if (inputs.rows() != labels.size()) {
    throw InvalidArgument("accuracy: inputs/labels size mismatch");
  }
  if (inputs.rows() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    if (net.classify(inputs.row(s)) == labels[s]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(inputs.rows());
}

}  // namespace fannet::nn
