/// \file
/// \brief Feed-forward fully-connected networks (the paper's Fig. 3a architecture).
///
/// A Network is a stack of affine layers, each optionally followed by ReLU.
/// The paper's "max-pool" output stage is the classification argmax over the
/// final layer (see DESIGN.md §4.5); classify() implements it with the shared
/// tie-breaking rule (ties resolve to the lower label index).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "la/matrix.hpp"

namespace fannet::nn {

enum class Activation : std::uint8_t {
  kReLU,    ///< max(0, x), used on hidden layers
  kLinear,  ///< identity, used on the output layer
};

[[nodiscard]] std::string to_string(Activation a);

/// One fully-connected layer: y = act(W x + b).
struct Layer {
  la::MatrixD weights;        ///< rows = out_dim, cols = in_dim
  std::vector<double> bias;   ///< size = out_dim
  Activation activation = Activation::kReLU;

  [[nodiscard]] std::size_t in_dim() const noexcept { return weights.cols(); }
  [[nodiscard]] std::size_t out_dim() const noexcept { return weights.rows(); }
};

class Network {
 public:
  Network() = default;
  explicit Network(std::vector<Layer> layers);

  /// Randomly initialized network with the given layer widths, ReLU on the
  /// hidden layers and a linear output layer.  Weights are He-style uniform
  /// in [-1/sqrt(fan_in), 1/sqrt(fan_in)].
  static Network random(const std::vector<std::size_t>& widths,
                        std::uint64_t seed);

  [[nodiscard]] std::size_t input_dim() const;
  [[nodiscard]] std::size_t output_dim() const;
  [[nodiscard]] std::size_t depth() const noexcept { return layers_.size(); }
  [[nodiscard]] const std::vector<Layer>& layers() const noexcept {
    return layers_;
  }
  [[nodiscard]] std::vector<Layer>& layers() noexcept { return layers_; }

  /// Output activations for one input vector.
  [[nodiscard]] std::vector<double> forward(std::span<const double> x) const;

  /// Pre-activations and activations of every layer (index 0 = first layer).
  struct Trace {
    std::vector<std::vector<double>> pre;   ///< W a + b per layer
    std::vector<std::vector<double>> post;  ///< act(pre) per layer
  };
  [[nodiscard]] Trace forward_trace(std::span<const double> x) const;

  /// The paper's output max-pool: argmax over the outputs, ties to the
  /// lower index.
  [[nodiscard]] int classify(std::span<const double> x) const;

  /// Text (de)serialization of the full parameter set (round-trip exact for
  /// the decimal digits written; 17 significant digits are used).
  [[nodiscard]] std::string to_text() const;
  static Network from_text(const std::string& text);

 private:
  void validate() const;

  std::vector<Layer> layers_;
};

/// Shared argmax rule: lowest index wins ties.
[[nodiscard]] int argmax_tie_low(std::span<const double> v);

}  // namespace fannet::nn
