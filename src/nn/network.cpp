#include "nn/network.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fannet::nn {

std::string to_string(Activation a) {
  switch (a) {
    case Activation::kReLU: return "relu";
    case Activation::kLinear: return "linear";
  }
  throw InvalidArgument("to_string(Activation): bad enum value");
}

Network::Network(std::vector<Layer> layers) : layers_(std::move(layers)) {
  validate();
}

void Network::validate() const {
  if (layers_.empty()) throw InvalidArgument("Network: no layers");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Layer& l = layers_[i];
    if (l.bias.size() != l.out_dim()) {
      throw InvalidArgument("Network: layer " + std::to_string(i) +
                            " bias/weight shape mismatch");
    }
    if (i > 0 && l.in_dim() != layers_[i - 1].out_dim()) {
      throw InvalidArgument("Network: layer " + std::to_string(i) +
                            " input dim does not match previous output dim");
    }
  }
}

Network Network::random(const std::vector<std::size_t>& widths,
                        std::uint64_t seed) {
  if (widths.size() < 2) {
    throw InvalidArgument("Network::random: need at least input+output width");
  }
  util::Rng rng(seed);
  std::vector<Layer> layers;
  layers.reserve(widths.size() - 1);
  for (std::size_t i = 0; i + 1 < widths.size(); ++i) {
    Layer l;
    l.weights = la::MatrixD(widths[i + 1], widths[i]);
    l.bias.assign(widths[i + 1], 0.0);
    const double r = 1.0 / std::sqrt(static_cast<double>(widths[i]));
    for (auto& w : l.weights.data()) w = rng.uniform(-r, r);
    l.activation = (i + 2 == widths.size()) ? Activation::kLinear
                                            : Activation::kReLU;
    layers.push_back(std::move(l));
  }
  return Network(std::move(layers));
}

std::size_t Network::input_dim() const {
  if (layers_.empty()) throw InvalidArgument("Network::input_dim: empty");
  return layers_.front().in_dim();
}

std::size_t Network::output_dim() const {
  if (layers_.empty()) throw InvalidArgument("Network::output_dim: empty");
  return layers_.back().out_dim();
}

std::vector<double> Network::forward(std::span<const double> x) const {
  std::vector<double> a(x.begin(), x.end());
  for (const Layer& l : layers_) {
    std::vector<double> z = la::matvec(l.weights, std::span<const double>(a));
    for (std::size_t j = 0; j < z.size(); ++j) z[j] += l.bias[j];
    if (l.activation == Activation::kReLU) {
      for (auto& v : z) v = std::max(0.0, v);
    }
    a = std::move(z);
  }
  return a;
}

Network::Trace Network::forward_trace(std::span<const double> x) const {
  Trace t;
  t.pre.reserve(layers_.size());
  t.post.reserve(layers_.size());
  std::vector<double> a(x.begin(), x.end());
  for (const Layer& l : layers_) {
    std::vector<double> z = la::matvec(l.weights, std::span<const double>(a));
    for (std::size_t j = 0; j < z.size(); ++j) z[j] += l.bias[j];
    t.pre.push_back(z);
    if (l.activation == Activation::kReLU) {
      for (auto& v : z) v = std::max(0.0, v);
    }
    t.post.push_back(z);
    a = std::move(z);
  }
  return t;
}

int Network::classify(std::span<const double> x) const {
  const std::vector<double> out = forward(x);
  return argmax_tie_low(out);
}

int argmax_tie_low(std::span<const double> v) {
  if (v.empty()) throw InvalidArgument("argmax_tie_low: empty vector");
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;  // strict: ties keep the lower index
  }
  return static_cast<int>(best);
}

std::string Network::to_text() const {
  std::ostringstream out;
  out.precision(17);
  out << "fannet-network 1\n" << layers_.size() << "\n";
  for (const Layer& l : layers_) {
    out << l.out_dim() << " " << l.in_dim() << " " << to_string(l.activation)
        << "\n";
    for (std::size_t r = 0; r < l.out_dim(); ++r) {
      for (std::size_t c = 0; c < l.in_dim(); ++c) {
        out << l.weights(r, c) << (c + 1 == l.in_dim() ? "" : " ");
      }
      out << "\n";
    }
    for (std::size_t r = 0; r < l.out_dim(); ++r) {
      out << l.bias[r] << (r + 1 == l.out_dim() ? "" : " ");
    }
    out << "\n";
  }
  return out.str();
}

Network Network::from_text(const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "fannet-network" || version != 1) {
    throw ParseError("Network::from_text: bad header");
  }
  std::size_t n_layers = 0;
  if (!(in >> n_layers) || n_layers == 0) {
    throw ParseError("Network::from_text: bad layer count");
  }
  std::vector<Layer> layers;
  layers.reserve(n_layers);
  for (std::size_t i = 0; i < n_layers; ++i) {
    std::size_t out_dim = 0, in_dim = 0;
    std::string act;
    if (!(in >> out_dim >> in_dim >> act)) {
      throw ParseError("Network::from_text: bad layer header");
    }
    Layer l;
    if (act == "relu") l.activation = Activation::kReLU;
    else if (act == "linear") l.activation = Activation::kLinear;
    else throw ParseError("Network::from_text: unknown activation '" + act + "'");
    l.weights = la::MatrixD(out_dim, in_dim);
    for (auto& w : l.weights.data()) {
      if (!(in >> w)) throw ParseError("Network::from_text: missing weight");
    }
    l.bias.assign(out_dim, 0.0);
    for (auto& b : l.bias) {
      if (!(in >> b)) throw ParseError("Network::from_text: missing bias");
    }
    layers.push_back(std::move(l));
  }
  return Network(std::move(layers));
}

}  // namespace fannet::nn
