/// \file
/// \brief Batched structure-of-arrays forward evaluation (DESIGN.md §10).
///
/// Every FANNet analysis bottoms out in thousands of independent forward
/// passes over ONE set of weights (enumerate screens, tolerance descents,
/// sensitivity probes, weight-fault candidate scans).  `BatchEvaluator`
/// evaluates N samples simultaneously with activations stored
/// [neuron][sample]: the inner int64 multiply-accumulate runs over the
/// sample lanes with stride 1, so plain -O2/-O3 auto-vectorizes it (no
/// intrinsics; the FANNET_VERIFY_VECTORIZE CMake knob makes CI prove the
/// loop still vectorizes).
///
/// Results are bit-identical to the scalar path (quantized.hpp's
/// `eval_output`/`classify`, the reference oracle), including overflow
/// behavior and lower-index argmax ties:
///
///   - Fast path: before each layer the evaluator bounds every neuron's
///     accumulation as |b_j|*bias_mult_max + (Σ_i |w_ji|)*max|act| in
///     saturating 128-bit arithmetic.  When every bound fits int64 the layer
///     runs as a wrap-free uint64 MAC kernel: two's-complement wraparound
///     arithmetic equals the true __int128 sum mod 2^64, which is exact
///     whenever the true sum fits int64 — and the bound just proved it does.
///   - Exact path: when some bound does not fit, the layer falls back to the
///     scalar algebra (__int128 accumulation per lane) and lanes whose
///     narrowing would throw are flagged `overflowed` instead.  A flagged
///     lane means "the scalar evaluation of this sample throws
///     ArithmeticError"; callers that must reproduce the exact exception
///     re-run the scalar path for that one lane (rare by construction).
///
/// The evaluator is immutable after construction and safe to share across
/// threads; each thread stages lanes into its own `Batch`.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/quantized.hpp"

namespace fannet::nn {

class BatchEvaluator {
 public:
  /// Lane count used when a caller passes batch hint 0 ("auto"): big
  /// enough to amortize per-layer dispatch and fill vector registers,
  /// small enough that early-exit scans waste little work.
  static constexpr std::size_t kAutoBatch = 64;

  /// Resolves a user-facing batch knob (0 = auto) to a concrete lane count.
  [[nodiscard]] static constexpr std::size_t resolve_batch(
      std::size_t batch) noexcept {
    return batch == 0 ? kAutoBatch : batch;
  }

  /// A staged set of evaluation lanes plus the reusable SoA buffers.
  /// Stage lanes with push_noised/push_scaled, call
  /// `BatchEvaluator::run(batch)`, then read label()/outputs()/overflowed()
  /// per lane.  clear() keeps the buffers for the next chunk.
  class Batch {
   public:
    [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }
    void clear() noexcept { lanes_ = 0; }

    /// Stages one lane from raw inputs plus integer-percent noise — the
    /// `noised_inputs` algebra.  `bias_factor` = 100 + bias-node delta.
    /// Scaling overflow marks the lane overflowed instead of throwing.
    void push_noised(std::span<const util::i64> x, std::span<const int> deltas,
                     util::i64 bias_factor);

    /// Stages one lane of already-scaled inputs X (`eval_output`'s
    /// contract).
    void push_scaled(std::span<const util::i64> X, util::i64 bias_factor);

    /// True iff the scalar evaluation of this lane would throw
    /// ArithmeticError; the lane's outputs/label are unspecified.  Valid
    /// after run() (staging-time overflows are visible immediately).
    [[nodiscard]] bool overflowed(std::size_t lane) const {
      return overflow_[lane] != 0;
    }

    /// Scaled output vector N^L of one lane (valid after run()).
    [[nodiscard]] std::span<const util::i64> outputs(std::size_t lane) const {
      return {outputs_.data() + lane * out_dim_, out_dim_};
    }

    /// argmax tie-to-lower-index of one lane (valid after run()).
    [[nodiscard]] int label(std::size_t lane) const { return labels_[lane]; }

   private:
    friend class BatchEvaluator;
    std::size_t in_dim_ = 0;
    std::size_t out_dim_ = 0;
    std::size_t lanes_ = 0;
    std::vector<util::i64> x_;            // lane-major staging [lane][input]
    std::vector<util::i64> bias_factor_;  // per lane
    std::vector<std::uint8_t> overflow_;  // per lane
    // Working buffers owned here so one Batch serves many run() calls.
    std::vector<util::u64> act_;
    std::vector<util::u64> next_;
    std::vector<util::i64> bm0_;      // per-lane layer-0 bias multiplier
    std::vector<util::i64> outputs_;  // lane-major [lane][output]
    std::vector<int> labels_;
    std::vector<util::i64> best_;  // argmax scratch
  };

  /// Precomputes per-layer bias multipliers and absolute row sums (the
  /// overflow-precheck bounds).  Never throws for nets the scalar path can
  /// evaluate; nets whose running scale overflows int64 mark every lane
  /// overflowed at run() time instead (the scalar path throws for every
  /// input of such a net).  `net` must outlive the evaluator.
  explicit BatchEvaluator(const QuantizedNetwork& net);

  [[nodiscard]] const QuantizedNetwork& net() const noexcept { return *net_; }

  /// A batch bound to this network's input/output dimensions.
  [[nodiscard]] Batch make_batch() const;

  /// Evaluates every staged lane; fills outputs, labels and overflow
  /// flags.  Bit-identical per lane to the scalar
  /// `classify(X, bias_factor)` — lanes where the scalar path would throw
  /// ArithmeticError come back flagged instead (see file comment).
  void run(Batch& batch) const;

 private:
  friend class PrefixEvaluator;  // batched suffix re-eval shares the kernel

  const QuantizedNetwork* net_;
  /// Running bias multiplier per layer (layer 0's is per-lane at run time;
  /// entry 0 holds input_norm * 100 for reference).  Empty tail when the
  /// scale chain overflows int64 — see scale_chain_overflow_.
  std::vector<util::i64> bias_mult_;
  /// Σ_i |w_ji| per layer per neuron, saturated to uint64 (saturation just
  /// forces the exact path, keeping the precheck conservative).
  std::vector<std::vector<util::u64>> abs_rowsum_;
  /// True when the scalar act_scale chain (input_norm*100, then *10^4 per
  /// layer, checked after EVERY layer including the last) overflows int64:
  /// the scalar path throws for every input, so run() flags every lane.
  bool scale_chain_overflow_ = false;
};

}  // namespace fannet::nn
