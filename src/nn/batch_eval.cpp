#include "nn/batch_eval.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "util/checked.hpp"
#include "util/error.hpp"

namespace fannet::nn {

using util::i128;
using util::i64;
using util::u64;
using u128 = unsigned __int128;

// x86 has no vector 64-bit multiply below AVX-512DQ, so at the baseline ISA
// the auto-vectorized u64 MAC barely beats the scalar i128 chain (GCC
// synthesizes each 64x64 product from 32-bit multiplies).  Multi-version
// the SoA kernels: the binary stays baseline-portable, and the dynamic
// loader picks the AVX2 / AVX-512 clone on hardware that has it (~2x MAC
// throughput measured).  Clones change scheduling only, never values —
// results stay bit-identical.  Disabled under sanitizers (ifunc resolvers
// run before their runtimes initialize).
#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && \
    !defined(__clang__) && !defined(__SANITIZE_ADDRESS__) &&        \
    !defined(__SANITIZE_THREAD__)
#define FANNET_TARGET_CLONES \
  __attribute__((target_clones("default", "arch=x86-64-v3", "arch=x86-64-v4")))
#else
#define FANNET_TARGET_CLONES
#endif

namespace {

constexpr i128 kI64Max = std::numeric_limits<i64>::max();
constexpr i128 kI64Min = std::numeric_limits<i64>::min();
constexpr u128 kU128Max = ~static_cast<u128>(0);

[[nodiscard]] u64 abs_u64(i64 v) noexcept {
  // Two's-complement magnitude; correct for INT64_MIN where -v overflows.
  return v < 0 ? static_cast<u64>(0) - static_cast<u64>(v)
               : static_cast<u64>(v);
}

[[nodiscard]] u128 sat_add_u128(u128 a, u128 b) noexcept {
  return (kU128Max - a < b) ? kU128Max : a + b;
}

/// Largest |i64 interpretation| over an SoA buffer (flagged lanes hold 0,
/// so they never loosen the bound for the live lanes).
[[nodiscard]] u64 max_abs_i64(const u64* values, std::size_t count) noexcept {
  u64 best = 0;
  for (std::size_t k = 0; k < count; ++k) {
    best = std::max(best, abs_u64(static_cast<i64>(values[k])));
  }
  return best;
}

/// Zeroes every flagged lane across all `out` neuron rows, so a flagged
/// lane stays inert: it contributes nothing to later layers' overflow
/// prechecks and can never be re-flagged for a different reason.
void scrub_flagged(u64* next, std::size_t out, std::size_t lanes,
                   const std::uint8_t* overflow) {
  for (std::size_t t = 0; t < lanes; ++t) {
    if (!overflow[t]) continue;
    for (std::size_t j = 0; j < out; ++j) next[j * lanes + t] = 0;
  }
}

/// One SoA layer step: next[j][t] = b_j * bm_t + Σ_i w_ji * act[i][t].
///
/// The conservative bound |b_j|*max|bm| + (Σ_i |w_ji|)*max|act| is checked
/// per neuron first (saturating u128, so it can only over-estimate).  When
/// every bound fits int64 the whole layer runs as the wrap-free uint64
/// kernel — modular arithmetic equals the true i128 sum mod 2^64, exact
/// because the bound proved the true sum fits.  Otherwise the layer falls
/// back to the scalar i128 algebra per lane and flags lanes whose
/// narrowing would make the scalar path throw.
///
/// `bm_lanes` non-null = per-lane bias multiplier (layer 0); else
/// `bm_scalar` applies to every lane.
///
/// `act_max_hint` non-null skips the O(in * lanes) activation scan; the
/// caller guarantees the hint is >= the true max |act|.  The hint feeds
/// only the conservative bound, so an over-estimate can at worst divert
/// the layer to the exact i128 path — which is bit-identical anyway.
FANNET_TARGET_CLONES
void soa_layer_forward(const QLayer& l, std::size_t lanes, const u64* act,
                       u64* next, const i64* bm_lanes, i64 bm_scalar,
                       std::span<const u64> abs_rowsum,
                       const u64* act_max_hint, std::uint8_t* overflow,
                       bool& any_flagged) {
  const std::size_t out = l.out_dim();
  const std::size_t in = l.in_dim();

  u64 bm_max = 0;
  if (bm_lanes != nullptr) {
    for (std::size_t t = 0; t < lanes; ++t) {
      bm_max = std::max(bm_max, abs_u64(bm_lanes[t]));
    }
  } else {
    bm_max = abs_u64(bm_scalar);
  }
  const u64 act_max =
      act_max_hint != nullptr ? *act_max_hint : max_abs_i64(act, in * lanes);

  bool fast = true;
  for (std::size_t j = 0; j < out; ++j) {
    const u128 bound =
        sat_add_u128(static_cast<u128>(abs_u64(l.bias[j])) * bm_max,
                     static_cast<u128>(abs_rowsum[j]) * act_max);
    if (bound > static_cast<u128>(kI64Max)) {
      fast = false;
      break;
    }
  }

  if (fast) {
    for (std::size_t j = 0; j < out; ++j) {
      u64* __restrict nx = next + j * lanes;
      if (bm_lanes != nullptr) {
        const u64 b = static_cast<u64>(l.bias[j]);
        for (std::size_t t = 0; t < lanes; ++t) {
          nx[t] = b * static_cast<u64>(bm_lanes[t]);
        }
      } else {
        const u64 base =
            static_cast<u64>(l.bias[j]) * static_cast<u64>(bm_scalar);
        for (std::size_t t = 0; t < lanes; ++t) nx[t] = base;
      }
      const auto wrow = l.weights.row(j);
      for (std::size_t i = 0; i < in; ++i) {
        const u64 w = static_cast<u64>(wrow[i]);
        const u64* __restrict a = act + i * lanes;
        // The batched MAC: stride-1 over the sample lanes, the loop the
        // FANNET_VERIFY_VECTORIZE CI gate proves auto-vectorizes.
        for (std::size_t t = 0; t < lanes; ++t) nx[t] += w * a[t];
      }
    }
  } else {
    for (std::size_t j = 0; j < out; ++j) {
      u64* nx = next + j * lanes;
      const auto wrow = l.weights.row(j);
      for (std::size_t t = 0; t < lanes; ++t) {
        if (overflow[t]) {
          nx[t] = 0;
          continue;
        }
        const i64 bm = (bm_lanes != nullptr) ? bm_lanes[t] : bm_scalar;
        i128 acc = static_cast<i128>(l.bias[j]) * bm;
        for (std::size_t i = 0; i < in; ++i) {
          acc += static_cast<i128>(wrow[i]) *
                 static_cast<i64>(act[i * lanes + t]);
        }
        if (acc > kI64Max || acc < kI64Min) {
          overflow[t] = 1;
          any_flagged = true;
          nx[t] = 0;
        } else {
          nx[t] = static_cast<u64>(static_cast<i64>(acc));
        }
      }
    }
  }

  if (any_flagged) scrub_flagged(next, out, lanes, overflow);
}

/// ReLU over an SoA buffer, on the int64 interpretation of the lanes.
FANNET_TARGET_CLONES
void soa_relu(u64* values, std::size_t count) {
  for (std::size_t k = 0; k < count; ++k) {
    if (static_cast<i64>(values[k]) < 0) values[k] = 0;
  }
}

/// Per-lane argmax with ties to the lower index — the argmax_tie_low_i64
/// rule applied across an SoA output block.
FANNET_TARGET_CLONES
void soa_argmax(const u64* outputs, std::size_t out, std::size_t lanes,
                std::vector<i64>& best, std::vector<int>& labels) {
  best.resize(lanes);
  labels.assign(lanes, 0);
  for (std::size_t t = 0; t < lanes; ++t) {
    best[t] = static_cast<i64>(outputs[t]);
  }
  for (std::size_t j = 1; j < out; ++j) {
    const u64* row = outputs + j * lanes;
    for (std::size_t t = 0; t < lanes; ++t) {
      const i64 v = static_cast<i64>(row[t]);
      if (v > best[t]) {
        best[t] = v;
        labels[t] = static_cast<int>(j);
      }
    }
  }
}

}  // namespace

BatchEvaluator::BatchEvaluator(const QuantizedNetwork& net) : net_(&net) {
  const std::size_t depth = net.depth();
  bias_mult_.reserve(depth);
  abs_rowsum_.reserve(depth);

  // Mirror the scalar act_scale chain: input_norm * 100, then * 10^4
  // checked after every layer INCLUDING the last (eval_all updates the
  // scale even when no further layer consumes it).  Any overflow means the
  // scalar path throws for every input; record it instead of throwing.
  i128 scale = static_cast<i128>(net.input_norm()) * kNoiseDen;
  if (scale > kI64Max) scale_chain_overflow_ = true;
  for (std::size_t li = 0; li < depth && !scale_chain_overflow_; ++li) {
    bias_mult_.push_back(static_cast<i64>(scale));
    scale *= util::Fixed::kScale;
    if (scale > kI64Max) scale_chain_overflow_ = true;
  }

  for (const QLayer& l : net.layers()) {
    std::vector<u64> rowsum(l.out_dim());
    for (std::size_t j = 0; j < l.out_dim(); ++j) {
      const auto wrow = l.weights.row(j);
      u128 sum = 0;
      for (std::size_t i = 0; i < l.in_dim(); ++i) {
        sum = sat_add_u128(sum, abs_u64(wrow[i]));
      }
      rowsum[j] = (sum > static_cast<u128>(~static_cast<u64>(0)))
                      ? ~static_cast<u64>(0)
                      : static_cast<u64>(sum);
    }
    abs_rowsum_.push_back(std::move(rowsum));
  }
}

BatchEvaluator::Batch BatchEvaluator::make_batch() const {
  Batch b;
  b.in_dim_ = net_->input_dim();    // throws InvalidArgument for empty nets,
  b.out_dim_ = net_->output_dim();  // like every scalar evaluation would
  return b;
}

void BatchEvaluator::Batch::push_noised(std::span<const i64> x,
                                        std::span<const int> deltas,
                                        i64 bias_factor) {
  if (x.size() != in_dim_) {
    throw InvalidArgument("BatchEvaluator: input dim mismatch");
  }
  if (!deltas.empty() && deltas.size() != x.size()) {
    throw InvalidArgument("BatchEvaluator: deltas size " +
                          std::to_string(deltas.size()) +
                          " does not match inputs size " +
                          std::to_string(x.size()));
  }
  const std::size_t t = lanes_++;
  x_.resize(lanes_ * in_dim_);
  bias_factor_.resize(lanes_);
  overflow_.resize(lanes_);
  i64* lane = x_.data() + t * in_dim_;
  bias_factor_[t] = bias_factor;
  overflow_[t] = 0;
  for (std::size_t i = 0; i < in_dim_; ++i) {
    const i64 factor = kNoiseDen + (deltas.empty() ? 0 : deltas[i]);
    const i128 scaled = static_cast<i128>(x[i]) * factor;
    if (scaled > kI64Max || scaled < kI64Min) {
      // The scalar noised_inputs would throw here; flag the lane and zero
      // it so it stays inert through every layer.
      overflow_[t] = 1;
      std::fill(lane, lane + in_dim_, 0);
      return;
    }
    lane[i] = static_cast<i64>(scaled);
  }
}

void BatchEvaluator::Batch::push_scaled(std::span<const i64> X,
                                        i64 bias_factor) {
  if (X.size() != in_dim_) {
    throw InvalidArgument("BatchEvaluator: input dim mismatch");
  }
  const std::size_t t = lanes_++;
  x_.resize(lanes_ * in_dim_);
  bias_factor_.resize(lanes_);
  overflow_.resize(lanes_);
  std::copy(X.begin(), X.end(), x_.data() + t * in_dim_);
  bias_factor_[t] = bias_factor;
  overflow_[t] = 0;
}

void BatchEvaluator::run(Batch& batch) const {
  const std::size_t lanes = batch.lanes_;
  const std::size_t in = batch.in_dim_;
  const std::size_t out = batch.out_dim_;
  batch.outputs_.assign(lanes * out, 0);
  batch.labels_.assign(lanes, 0);
  if (lanes == 0) return;

  if (scale_chain_overflow_) {
    std::fill(batch.overflow_.begin(), batch.overflow_.end(), 1);
    return;
  }

  // Per-lane layer-0 bias multiplier: input_norm * bias_factor, with the
  // scalar checked_mul's overflow mapped to the lane flag.
  batch.bm0_.assign(lanes, 0);
  bool any_flagged = false;
  for (std::size_t t = 0; t < lanes; ++t) {
    if (batch.overflow_[t]) {
      any_flagged = true;
      continue;
    }
    const i128 bm = static_cast<i128>(net_->input_norm()) *
                    batch.bias_factor_[t];
    if (bm > kI64Max || bm < kI64Min) {
      batch.overflow_[t] = 1;
      any_flagged = true;
      std::fill_n(batch.x_.data() + t * in, in, 0);
    } else {
      batch.bm0_[t] = static_cast<i64>(bm);
    }
  }

  // Transpose the lane-major staging into the SoA activation buffer.
  batch.act_.resize(in * lanes);
  for (std::size_t t = 0; t < lanes; ++t) {
    const i64* lane = batch.x_.data() + t * in;
    for (std::size_t i = 0; i < in; ++i) {
      batch.act_[i * lanes + t] = static_cast<u64>(lane[i]);
    }
  }

  const auto& layers = net_->layers();
  for (std::size_t li = 0; li < layers.size(); ++li) {
    const QLayer& l = layers[li];
    batch.next_.resize(l.out_dim() * lanes);
    soa_layer_forward(l, lanes, batch.act_.data(), batch.next_.data(),
                      li == 0 ? batch.bm0_.data() : nullptr,
                      li == 0 ? 0 : bias_mult_[li], abs_rowsum_[li], nullptr,
                      batch.overflow_.data(), any_flagged);
    if (li + 1 < layers.size() && l.relu) {
      soa_relu(batch.next_.data(), l.out_dim() * lanes);
    }
    std::swap(batch.act_, batch.next_);
  }

  for (std::size_t t = 0; t < lanes; ++t) {
    for (std::size_t j = 0; j < out; ++j) {
      batch.outputs_[t * out + j] = static_cast<i64>(batch.act_[j * lanes + t]);
    }
  }
  soa_argmax(batch.act_.data(), out, lanes, batch.best_, batch.labels_);
}

void PrefixEvaluator::classify_patched_batch(const BatchEvaluator& evaluator,
                                             std::size_t layer,
                                             std::span<const PatchLane> lanes,
                                             BatchScratch& scratch) const {
  if (evaluator.net_ != net_) {
    throw InvalidArgument(
        "classify_patched_batch: evaluator bound to a different network");
  }
  const std::size_t depth = net_->depth();
  if (layer >= depth) {
    throw InvalidArgument("PrefixEvaluator: layer out of range");
  }
  const QLayer& fl = net_->layers()[layer];
  const std::size_t count = lanes.size();
  scratch.patched_pre.assign(count, 0);
  scratch.overflow.assign(count, 0);
  scratch.labels.assign(count, 0);
  if (count == 0) return;

  bool any_flagged = false;
  for (std::size_t t = 0; t < count; ++t) {
    const PatchLane& lane = lanes[t];
    if (lane.sample >= pres_.size()) {
      throw InvalidArgument("PrefixEvaluator: sample out of range");
    }
    if (lane.row >= fl.out_dim() || lane.col > fl.in_dim()) {
      throw InvalidArgument("PrefixEvaluator: parameter index out of range");
    }
    // Same single-entry delta update as the scalar classify_patched: the
    // patched accumulation is the memoized one plus (raw' - raw) times the
    // input the parameter multiplies.
    const i64 old_raw = (lane.col == fl.in_dim()) ? fl.bias[lane.row]
                                                  : fl.weights(lane.row,
                                                               lane.col);
    i64 input_value = 0;
    if (lane.col == fl.in_dim()) {
      input_value = bias_mult_[layer];
    } else if (layer == 0) {
      input_value = inputs_[lane.sample][lane.col];
    } else {
      input_value = pres_[lane.sample][layer - 1][lane.col];
      if (net_->layers()[layer - 1].relu) {
        input_value = std::max<i64>(0, input_value);
      }
    }
    const i128 patched_acc =
        static_cast<i128>(pres_[lane.sample][layer][lane.row]) +
        (static_cast<i128>(lane.raw) - old_raw) *
            static_cast<i128>(input_value);
    if (patched_acc > kI64Max || patched_acc < kI64Min) {
      scratch.overflow[t] = 1;
      any_flagged = true;
    } else {
      scratch.patched_pre[t] = static_cast<i64>(patched_acc);
    }
  }

  if (layer + 1 == depth) {
    // Output-layer fault: per-lane argmax over the memoized outputs with
    // one entry substituted — no suffix evaluation at all.
    for (std::size_t t = 0; t < count; ++t) {
      if (scratch.overflow[t]) continue;
      const PatchLane& lane = lanes[t];
      const std::vector<i64>& out = pres_[lane.sample][layer];
      std::size_t best = 0;
      i64 best_value = (lane.row == 0) ? scratch.patched_pre[t] : out[0];
      for (std::size_t i = 1; i < out.size(); ++i) {
        const i64 v = (i == lane.row) ? scratch.patched_pre[t] : out[i];
        if (v > best_value) {
          best = i;
          best_value = v;
        }
      }
      scratch.labels[t] = static_cast<int>(best);
    }
    return;
  }

  // SoA activations entering layer+1: per lane, ReLU of the memoized
  // pre-activations with the patched entry substituted.  Flagged lanes are
  // zeroed so they stay inert (the scalar path already threw for them).
  // Every (i, t) slot is written exactly once, so the buffer is resized
  // without a redundant zero-fill, and the running `act_max` replaces the
  // first suffix layer's activation scan.  The max also counts the memo
  // value the patch overwrites, which can only over-estimate — safe for
  // the bound (see soa_layer_forward's act_max_hint contract).
  const std::size_t suffix_in = fl.out_dim();
  scratch.act.resize(suffix_in * count);
  u64 act_max = 0;
  for (std::size_t t = 0; t < count; ++t) {
    if (scratch.overflow[t]) {
      for (std::size_t i = 0; i < suffix_in; ++i) {
        scratch.act[i * count + t] = 0;
      }
      continue;
    }
    const PatchLane& lane = lanes[t];
    const i64* memo = pres_[lane.sample][layer].data();
    if (fl.relu) {
      for (std::size_t i = 0; i < suffix_in; ++i) {
        const u64 v = static_cast<u64>(std::max<i64>(0, memo[i]));
        scratch.act[i * count + t] = v;
        act_max = std::max(act_max, v);  // post-ReLU, so |v| == v
      }
      const u64 p = static_cast<u64>(std::max<i64>(0, scratch.patched_pre[t]));
      scratch.act[lane.row * count + t] = p;
      act_max = std::max(act_max, p);
    } else {
      for (std::size_t i = 0; i < suffix_in; ++i) {
        scratch.act[i * count + t] = static_cast<u64>(memo[i]);
        act_max = std::max(act_max, abs_u64(memo[i]));
      }
      scratch.act[lane.row * count + t] =
          static_cast<u64>(scratch.patched_pre[t]);
      act_max = std::max(act_max, abs_u64(scratch.patched_pre[t]));
    }
  }

  for (std::size_t li = layer + 1; li < depth; ++li) {
    const QLayer& l = net_->layers()[li];
    scratch.next.resize(l.out_dim() * count);
    soa_layer_forward(l, count, scratch.act.data(), scratch.next.data(),
                      nullptr, bias_mult_[li], evaluator.abs_rowsum_[li],
                      li == layer + 1 ? &act_max : nullptr,
                      scratch.overflow.data(), any_flagged);
    if (li + 1 < depth && l.relu) {
      soa_relu(scratch.next.data(), l.out_dim() * count);
    }
    std::swap(scratch.act, scratch.next);
  }

  soa_argmax(scratch.act.data(), net_->layers().back().out_dim(), count,
             scratch.best, scratch.labels);
}

}  // namespace fannet::nn
