/// \file
/// \brief Exact integer evaluation of a quantized network (DESIGN.md §4.1).
///
/// The formal engines never touch floating point.  Weights are quantized to
/// Fixed (scale S = 10^4); inputs are integers x_i; noise is an integer
/// percent delta_i.  Everything is then evaluated over plain integers:
///
///   scaled input      X_i  = x_i * (100 + delta_i)            (scale R0)
///   first layer       N^1  = Wq^1 X + Bq^1 * input_norm * bias_factor
///   deeper layers     N^l  = Wq^l A^{l-1} + Bq^l * R_{l-1}
///   running scale     R_0  = input_norm * 100,   R_l = S * R_{l-1}
///   ReLU              A^l  = max(0, N^l)
///
/// where N^l equals the real pre-activation of the quantized-weight network
/// multiplied by R_l, `input_norm` is the training-time normalizer (inputs
/// were divided by it before training) and `bias_factor` = 100 + delta_bias
/// carries noise on the paper's bias *input node* (Fig. 3a; DESIGN.md §4.3).
/// Because scales are positive, argmax over N^L equals argmax over the real
/// outputs — classification is exact.  All accumulation is __int128 with a
/// checked narrowing back to int64.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "la/matrix.hpp"
#include "nn/network.hpp"
#include "util/fixed.hpp"

namespace fannet::nn {

class BatchEvaluator;  // batched SoA forward evaluation (batch_eval.hpp)

/// Percent denominator for relative noise: x' = x * (100 + delta) / 100.
inline constexpr util::i64 kNoiseDen = 100;

/// One quantized layer; `W`/`b` hold Fixed raw values (value * 10^4).
struct QLayer {
  la::Matrix<util::i64> weights;
  std::vector<util::i64> bias;
  bool relu = false;

  [[nodiscard]] std::size_t in_dim() const noexcept { return weights.cols(); }
  [[nodiscard]] std::size_t out_dim() const noexcept { return weights.rows(); }
};

class QuantizedNetwork {
 public:
  QuantizedNetwork() = default;
  // Hand-written only because the fingerprint cache members are atomics
  // (non-copyable); parameter data copies/moves verbatim either way.
  QuantizedNetwork(const QuantizedNetwork& other);
  QuantizedNetwork& operator=(const QuantizedNetwork& other);
  QuantizedNetwork(QuantizedNetwork&& other) noexcept;
  QuantizedNetwork& operator=(QuantizedNetwork&& other) noexcept;
  ~QuantizedNetwork() = default;

  /// Quantizes every weight/bias of `net` to Fixed.  `input_norm` is the
  /// factor the raw integer inputs were divided by for training (the
  /// leukemia pipeline uses 100, mapping x in [1,100] to (0,1]).
  static QuantizedNetwork quantize(const Network& net, util::i64 input_norm);

  [[nodiscard]] std::size_t input_dim() const;
  [[nodiscard]] std::size_t output_dim() const;
  [[nodiscard]] std::size_t depth() const noexcept { return layers_.size(); }
  [[nodiscard]] const std::vector<QLayer>& layers() const noexcept {
    return layers_;
  }
  [[nodiscard]] util::i64 input_norm() const noexcept { return input_norm_; }

  /// Scale R_l of layer l's pre-activations (R_0 = input scale; see header
  /// comment).  Index 0 is the *input* scale; index l+1 corresponds to
  /// layer l.  Values can exceed int64 for deep nets, hence i128.
  [[nodiscard]] util::i128 scale_at(std::size_t index) const;

  /// Applies integer-percent noise: X_i = x_i * (100 + delta_i).
  /// `deltas` must be empty (no noise) or have exactly one entry per
  /// input; any other size throws InvalidArgument naming both sizes.
  [[nodiscard]] static std::vector<util::i64> noised_inputs(
      std::span<const util::i64> x, std::span<const int> deltas);

  /// Exact scaled outputs N^L for scaled inputs X (see header comment).
  /// `bias_factor` = 100 + delta on the bias input node (100 = no noise).
  [[nodiscard]] std::vector<util::i64> eval_output(
      std::span<const util::i64> X, util::i64 bias_factor = kNoiseDen) const;

  /// Exact scaled pre-activations of every layer (last entry == eval_output).
  [[nodiscard]] std::vector<std::vector<util::i64>> eval_all(
      std::span<const util::i64> X, util::i64 bias_factor = kNoiseDen) const;

  /// argmax over eval_output with ties to the lower index (DESIGN.md §4.5).
  [[nodiscard]] int classify(std::span<const util::i64> X,
                             util::i64 bias_factor = kNoiseDen) const;

  /// Convenience: classify raw integer inputs under an integer-percent
  /// noise vector (empty = no noise).
  [[nodiscard]] int classify_noised(std::span<const util::i64> x,
                                    std::span<const int> deltas,
                                    int bias_delta = 0) const;

  /// De-quantized copy (for comparing against the double-precision path).
  [[nodiscard]] Network dequantize() const;

  /// Stable content fingerprint (FNV-1a over input_norm, layer shapes,
  /// activation flags, and every raw weight/bias value).  Two networks have
  /// equal fingerprints iff they compute the same function parameter-for-
  /// parameter (up to 64-bit hashing), independent of object identity —
  /// the verify-layer query cache keys on it (DESIGN.md §7).
  ///
  /// Memoized: the hash is computed once and cached until a mutation
  /// funnels through `param_slot` (with_param, ScopedParamPatch) — sweep
  /// cache probes no longer re-hash every weight.  The cache is a pair of
  /// atomics (value published before the valid flag with release/acquire),
  /// so concurrent probes of a stable network are race-free; a probe that
  /// loses the race just recomputes the same deterministic hash.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  /// Raw fixed-point value of one parameter.  `col` selects a weight;
  /// `col == in_dim(layer)` selects the bias entry (the convention shared
  /// by every parameter-addressed API on this class).
  [[nodiscard]] util::i64 param_raw(std::size_t layer, std::size_t row,
                                    std::size_t col) const;

  /// Copy with parameter (layer, row, col) set to raw value `raw`.  The
  /// generic single-parameter mutation used by the weight-fault analysis
  /// (core/faults.hpp) for its non-percent fault models.
  [[nodiscard]] QuantizedNetwork with_param(std::size_t layer, std::size_t row,
                                            std::size_t col,
                                            util::i64 raw) const;

  /// Copy with one parameter scaled by (100+percent)/100 (round half away
  /// from zero on the raw fixed-point value; see scaled_param_raw).  Used
  /// by the weight-fault sensitivity extension (core/faults.hpp).
  [[nodiscard]] QuantizedNetwork with_scaled_param(std::size_t layer,
                                                   std::size_t row,
                                                   std::size_t col,
                                                   util::i64 percent) const;

 private:
  friend class ScopedParamPatch;

  /// Throws InvalidArgument unless (layer, row, col) addresses a parameter;
  /// returns the addressed raw slot.  Every mutation goes through here, so
  /// it also invalidates the memoized fingerprint.
  [[nodiscard]] util::i64& param_slot(std::size_t layer, std::size_t row,
                                      std::size_t col);

  /// Drops the memoized fingerprint (next call recomputes).
  void invalidate_fingerprint() const noexcept {
    fp_valid_.store(false, std::memory_order_release);
  }

  /// Adopts `other`'s memoized fingerprint flag-first (see the .cpp note
  /// on why the read order matters).
  void copy_fingerprint_from(const QuantizedNetwork& other) noexcept;

  std::vector<QLayer> layers_;
  util::i64 input_norm_ = 100;
  /// Memoized fingerprint: `fp_value_` is published before `fp_valid_`
  /// (release) and read after it (acquire), so readers never see the flag
  /// without the value.
  mutable std::atomic<std::uint64_t> fp_value_{0};
  mutable std::atomic<bool> fp_valid_{false};
};

/// The raw fixed-point value of `raw` scaled by (100+percent)/100 with
/// round-half-away-from-zero — the arithmetic behind `with_scaled_param`,
/// exposed so the incremental fault scan can compute candidate values
/// without materializing a network copy.
[[nodiscard]] util::i64 scaled_param_raw(util::i64 raw, util::i64 percent);

/// RAII in-place single-parameter patch: sets (layer, row, col) of `net`
/// to `raw` on construction and restores the original value on
/// destruction — no whole-network copy.  The owner must not share `net`
/// across threads (or fingerprint/cache it) while a patch is live; the
/// weight-fault scan gives each worker task its own working copy.
class ScopedParamPatch {
 public:
  ScopedParamPatch(QuantizedNetwork& net, std::size_t layer, std::size_t row,
                   std::size_t col, util::i64 raw);
  ~ScopedParamPatch() {
    *slot_ = original_;
    // The restore bypasses param_slot, so drop the memoized fingerprint
    // explicitly (a fingerprint taken while patched must not survive).
    net_->invalidate_fingerprint();
  }

  ScopedParamPatch(const ScopedParamPatch&) = delete;
  ScopedParamPatch& operator=(const ScopedParamPatch&) = delete;

  /// The pre-patch raw value (restored on destruction).
  [[nodiscard]] util::i64 original() const noexcept { return original_; }

 private:
  QuantizedNetwork* net_;
  util::i64* slot_;
  util::i64 original_;
};

/// Memoized prefix evaluation for single-parameter perturbation scans
/// (DESIGN.md §8).  Construction runs ONE noise-free forward pass per input
/// row and records, per layer, the activations entering it and its
/// pre-activations.  `classify_patched` then answers "what does sample s
/// classify as when parameter (layer, row, col) is patched to raw value v?"
/// starting at the faulted layer: a single-entry delta update rebuilds the
/// one affected pre-activation from its memoized value, and only the layers
/// *after* the fault are re-evaluated in full — the unchanged prefix is
/// never recomputed.  Exact, not approximate: the delta update computes the
/// identical i128 accumulation a from-scratch pass would, minus the terms
/// the patch cannot change (see DESIGN.md §8 for the argument).
///
/// The evaluator holds a pointer to `net`; the network and the input matrix
/// must outlive it.  All methods are const and safe to call concurrently;
/// each thread brings its own `Scratch`.
class PrefixEvaluator {
 public:
  /// Per-thread scratch buffers plus a diagnostic counter of the layers
  /// this scratch actually produced (one per layer, whether by delta
  /// update or full re-evaluation; a layer aborted by an overflow throw is
  /// not counted).  Note the weight-fault report's `layer_evaluations` is
  /// NOT this counter: the scan charges a deterministic analytic count
  /// (depth minus faulted layer, per attempted evaluation) so the report
  /// is bit-identical across thread counts even when candidates abort.
  struct Scratch {
    std::vector<util::i64> act;
    std::vector<util::i64> next;
    std::uint64_t layer_evaluations = 0;
  };

  /// Memoizes the noise-free forward pass of every row of `inputs`.
  PrefixEvaluator(const QuantizedNetwork& net,
                  const la::Matrix<util::i64>& inputs);

  [[nodiscard]] std::size_t samples() const noexcept { return pres_.size(); }

  /// Memoized noise-free classification of row `sample` (== classify_noised
  /// with no deltas).
  [[nodiscard]] int base_class(std::size_t sample) const;

  /// Exact classification of row `sample` with parameter (layer, row, col)
  /// patched to raw value `raw` (`col == in_dim(layer)` selects the bias).
  /// Bit-identical — including ArithmeticError overflow behavior — to
  /// `net.with_param(layer, row, col, raw).classify_noised(inputs.row(sample), {})`.
  [[nodiscard]] int classify_patched(std::size_t sample, std::size_t layer,
                                     std::size_t row, std::size_t col,
                                     util::i64 raw, Scratch& scratch) const;

  /// One lane of a batched suffix re-evaluation: sample `sample` with the
  /// parameter (shared `layer`, `row`, `col`) patched to raw value `raw`.
  struct PatchLane {
    std::size_t sample = 0;
    std::size_t row = 0;
    std::size_t col = 0;  ///< in_dim(layer) selects the bias, as everywhere
    util::i64 raw = 0;
  };

  /// Reusable buffers for classify_patched_batch; `labels`/`overflow` are
  /// its per-lane results.
  struct BatchScratch {
    std::vector<util::u64> act;
    std::vector<util::u64> next;
    std::vector<util::i64> patched_pre;
    std::vector<util::i64> best;
    std::vector<std::uint8_t> overflow;  ///< scalar path would throw here
    std::vector<int> labels;
  };

  /// Batched classify_patched over lanes that share a faulted layer: the
  /// per-lane delta updates run scalar, then ONE SoA pass (batch_eval.hpp's
  /// kernel, via `evaluator`'s precomputed bounds) re-evaluates the suffix
  /// layers for every lane at once — the weight-fault scan's per-layer
  /// dispatch amortized across candidates.  `scratch.labels[t]` equals
  /// classify_patched(lane t); lanes where the scalar call would throw
  /// ArithmeticError come back with `scratch.overflow[t]` set instead
  /// (their labels are unspecified; re-run the scalar path to reproduce
  /// the exception).  `evaluator` must be bound to the same network.
  void classify_patched_batch(const BatchEvaluator& evaluator,
                              std::size_t layer,
                              std::span<const PatchLane> lanes,
                              BatchScratch& scratch) const;

 private:
  const QuantizedNetwork* net_;
  /// inputs_[s] = scaled noise-free inputs X; pres_[s][l] = layer l
  /// pre-activations (N^l); bias_mult_[l] = the factor layer l's raw bias
  /// is multiplied by (input_norm * 100 for layer 0, else the running
  /// activation scale R_{l-1}).  Activations entering layer l are derived
  /// on demand — X for l == 0, else ReLU?(pres_[l-1]) — rather than
  /// memoized a second time.
  std::vector<std::vector<util::i64>> inputs_;
  std::vector<std::vector<std::vector<util::i64>>> pres_;
  std::vector<util::i64> bias_mult_;
  std::vector<int> base_class_;
};

/// Shared integer argmax rule: lowest index wins ties.
[[nodiscard]] int argmax_tie_low_i64(std::span<const util::i64> v);

}  // namespace fannet::nn
