// Exact integer evaluation of a quantized network (DESIGN.md §4.1).
//
// The formal engines never touch floating point.  Weights are quantized to
// Fixed (scale S = 10^4); inputs are integers x_i; noise is an integer
// percent delta_i.  Everything is then evaluated over plain integers:
//
//   scaled input      X_i  = x_i * (100 + delta_i)            (scale R0)
//   first layer       N^1  = Wq^1 X + Bq^1 * input_norm * bias_factor
//   deeper layers     N^l  = Wq^l A^{l-1} + Bq^l * R_{l-1}
//   running scale     R_0  = input_norm * 100,   R_l = S * R_{l-1}
//   ReLU              A^l  = max(0, N^l)
//
// where N^l equals the real pre-activation of the quantized-weight network
// multiplied by R_l, `input_norm` is the training-time normalizer (inputs
// were divided by it before training) and `bias_factor` = 100 + delta_bias
// carries noise on the paper's bias *input node* (Fig. 3a; DESIGN.md §4.3).
// Because scales are positive, argmax over N^L equals argmax over the real
// outputs — classification is exact.  All accumulation is __int128 with a
// checked narrowing back to int64.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "la/matrix.hpp"
#include "nn/network.hpp"
#include "util/fixed.hpp"

namespace fannet::nn {

/// Percent denominator for relative noise: x' = x * (100 + delta) / 100.
inline constexpr util::i64 kNoiseDen = 100;

/// One quantized layer; `W`/`b` hold Fixed raw values (value * 10^4).
struct QLayer {
  la::Matrix<util::i64> weights;
  std::vector<util::i64> bias;
  bool relu = false;

  [[nodiscard]] std::size_t in_dim() const noexcept { return weights.cols(); }
  [[nodiscard]] std::size_t out_dim() const noexcept { return weights.rows(); }
};

class QuantizedNetwork {
 public:
  QuantizedNetwork() = default;

  /// Quantizes every weight/bias of `net` to Fixed.  `input_norm` is the
  /// factor the raw integer inputs were divided by for training (the
  /// leukemia pipeline uses 100, mapping x in [1,100] to (0,1]).
  static QuantizedNetwork quantize(const Network& net, util::i64 input_norm);

  [[nodiscard]] std::size_t input_dim() const;
  [[nodiscard]] std::size_t output_dim() const;
  [[nodiscard]] std::size_t depth() const noexcept { return layers_.size(); }
  [[nodiscard]] const std::vector<QLayer>& layers() const noexcept {
    return layers_;
  }
  [[nodiscard]] util::i64 input_norm() const noexcept { return input_norm_; }

  /// Scale R_l of layer l's pre-activations (R_0 = input scale; see header
  /// comment).  Index 0 is the *input* scale; index l+1 corresponds to
  /// layer l.  Values can exceed int64 for deep nets, hence i128.
  [[nodiscard]] util::i128 scale_at(std::size_t index) const;

  /// Applies integer-percent noise: X_i = x_i * (100 + delta_i).
  /// `deltas` may be empty (no noise) or one entry per input.
  [[nodiscard]] static std::vector<util::i64> noised_inputs(
      std::span<const util::i64> x, std::span<const int> deltas);

  /// Exact scaled outputs N^L for scaled inputs X (see header comment).
  /// `bias_factor` = 100 + delta on the bias input node (100 = no noise).
  [[nodiscard]] std::vector<util::i64> eval_output(
      std::span<const util::i64> X, util::i64 bias_factor = kNoiseDen) const;

  /// Exact scaled pre-activations of every layer (last entry == eval_output).
  [[nodiscard]] std::vector<std::vector<util::i64>> eval_all(
      std::span<const util::i64> X, util::i64 bias_factor = kNoiseDen) const;

  /// argmax over eval_output with ties to the lower index (DESIGN.md §4.5).
  [[nodiscard]] int classify(std::span<const util::i64> X,
                             util::i64 bias_factor = kNoiseDen) const;

  /// Convenience: classify raw integer inputs under an integer-percent
  /// noise vector (empty = no noise).
  [[nodiscard]] int classify_noised(std::span<const util::i64> x,
                                    std::span<const int> deltas,
                                    int bias_delta = 0) const;

  /// De-quantized copy (for comparing against the double-precision path).
  [[nodiscard]] Network dequantize() const;

  /// Stable content fingerprint (FNV-1a over input_norm, layer shapes,
  /// activation flags, and every raw weight/bias value).  Two networks have
  /// equal fingerprints iff they compute the same function parameter-for-
  /// parameter (up to 64-bit hashing), independent of object identity —
  /// the verify-layer query cache keys on it (DESIGN.md §7).
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  /// Copy with one parameter scaled by (100+percent)/100 (round half away
  /// from zero on the raw fixed-point value).  `col` selects a weight;
  /// `col == in_dim(layer)` selects the bias entry.  Used by the
  /// weight-fault sensitivity extension (core/faults.hpp).
  [[nodiscard]] QuantizedNetwork with_scaled_param(std::size_t layer,
                                                   std::size_t row,
                                                   std::size_t col,
                                                   util::i64 percent) const;

 private:
  std::vector<QLayer> layers_;
  util::i64 input_norm_ = 100;
};

/// Shared integer argmax rule: lowest index wins ties.
[[nodiscard]] int argmax_tie_low_i64(std::span<const util::i64> v);

}  // namespace fannet::nn
