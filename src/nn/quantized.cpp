#include "nn/quantized.hpp"

#include <string>

#include "util/checked.hpp"
#include "util/error.hpp"

namespace fannet::nn {

using util::i128;
using util::i64;

void QuantizedNetwork::copy_fingerprint_from(
    const QuantizedNetwork& other) noexcept {
  // Read the flag FIRST (acquire): only a flag observed true guarantees the
  // paired value store is visible.  Reading the value first could pair a
  // stale value with a flag published by a concurrent fingerprint() call.
  if (other.fp_valid_.load(std::memory_order_acquire)) {
    fp_value_.store(other.fp_value_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    fp_valid_.store(true, std::memory_order_release);
  } else {
    fp_valid_.store(false, std::memory_order_release);
  }
}

QuantizedNetwork::QuantizedNetwork(const QuantizedNetwork& other)
    : layers_(other.layers_), input_norm_(other.input_norm_) {
  copy_fingerprint_from(other);
}

QuantizedNetwork& QuantizedNetwork::operator=(const QuantizedNetwork& other) {
  if (this != &other) {
    layers_ = other.layers_;
    input_norm_ = other.input_norm_;
    copy_fingerprint_from(other);
  }
  return *this;
}

QuantizedNetwork::QuantizedNetwork(QuantizedNetwork&& other) noexcept
    : layers_(std::move(other.layers_)), input_norm_(other.input_norm_) {
  copy_fingerprint_from(other);
}

QuantizedNetwork& QuantizedNetwork::operator=(
    QuantizedNetwork&& other) noexcept {
  if (this != &other) {
    layers_ = std::move(other.layers_);
    input_norm_ = other.input_norm_;
    copy_fingerprint_from(other);
  }
  return *this;
}

QuantizedNetwork QuantizedNetwork::quantize(const Network& net,
                                            i64 input_norm) {
  if (input_norm <= 0) {
    throw InvalidArgument("QuantizedNetwork::quantize: input_norm must be > 0");
  }
  QuantizedNetwork q;
  q.input_norm_ = input_norm;
  q.layers_.reserve(net.depth());
  for (const Layer& l : net.layers()) {
    QLayer ql;
    ql.relu = (l.activation == Activation::kReLU);
    ql.weights = la::Matrix<i64>(l.out_dim(), l.in_dim());
    for (std::size_t r = 0; r < l.out_dim(); ++r) {
      for (std::size_t c = 0; c < l.in_dim(); ++c) {
        ql.weights(r, c) = util::Fixed::from_double(l.weights(r, c)).raw();
      }
    }
    ql.bias.reserve(l.out_dim());
    // fannet-lint: allow(float-in-exact) quantize() is the float->fixed boundary
    for (double b : l.bias) {
      ql.bias.push_back(util::Fixed::from_double(b).raw());
    }
    q.layers_.push_back(std::move(ql));
  }
  return q;
}

std::size_t QuantizedNetwork::input_dim() const {
  if (layers_.empty()) throw InvalidArgument("QuantizedNetwork: empty");
  return layers_.front().in_dim();
}

std::size_t QuantizedNetwork::output_dim() const {
  if (layers_.empty()) throw InvalidArgument("QuantizedNetwork: empty");
  return layers_.back().out_dim();
}

i128 QuantizedNetwork::scale_at(std::size_t index) const {
  if (index > layers_.size()) {
    throw InvalidArgument("QuantizedNetwork::scale_at: index out of range");
  }
  i128 scale = static_cast<i128>(input_norm_) * kNoiseDen;
  for (std::size_t i = 0; i < index; ++i) scale *= util::Fixed::kScale;
  return scale;
}

std::vector<i64> QuantizedNetwork::noised_inputs(std::span<const i64> x,
                                                 std::span<const int> deltas) {
  if (!deltas.empty() && deltas.size() != x.size()) {
    throw InvalidArgument("noised_inputs: deltas size " +
                          std::to_string(deltas.size()) +
                          " does not match inputs size " +
                          std::to_string(x.size()) +
                          " (deltas must be empty or one entry per input)");
  }
  std::vector<i64> X(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const i64 factor = kNoiseDen + (deltas.empty() ? 0 : deltas[i]);
    X[i] = util::checked_mul(x[i], factor);
  }
  return X;
}

std::vector<std::vector<i64>> QuantizedNetwork::eval_all(
    std::span<const i64> X, i64 bias_factor) const {
  if (layers_.empty()) throw InvalidArgument("QuantizedNetwork: empty");
  if (X.size() != input_dim()) {
    throw InvalidArgument("QuantizedNetwork::eval_all: input dim mismatch");
  }
  std::vector<std::vector<i64>> pre;
  pre.reserve(layers_.size());

  std::vector<i64> act(X.begin(), X.end());
  // Scale of the *activations* entering the current layer, as an i64-safe
  // value.  R_0 = input_norm * 100; each layer multiplies it by S.
  i64 act_scale = util::checked_mul(input_norm_, kNoiseDen);

  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const QLayer& l = layers_[li];
    std::vector<i64> z(l.out_dim());
    // Bias contribution at this layer's scale.  For the first layer the
    // bias input node may carry noise: term = Bq * input_norm * bias_factor.
    const i64 bias_mult =
        (li == 0) ? util::checked_mul(input_norm_, bias_factor) : act_scale;
    for (std::size_t j = 0; j < l.out_dim(); ++j) {
      i128 acc = static_cast<i128>(l.bias[j]) * bias_mult;
      const auto row = l.weights.row(j);
      for (std::size_t i = 0; i < l.in_dim(); ++i) {
        acc += static_cast<i128>(row[i]) * act[i];
      }
      z[j] = util::narrow_i128(acc);
    }
    pre.push_back(z);
    if (l.relu) {
      for (auto& v : z) v = std::max<i64>(0, v);
    }
    act = std::move(z);
    act_scale = util::checked_mul(act_scale, util::Fixed::kScale);
  }
  return pre;
}

std::vector<i64> QuantizedNetwork::eval_output(std::span<const i64> X,
                                               i64 bias_factor) const {
  return eval_all(X, bias_factor).back();
}

int QuantizedNetwork::classify(std::span<const i64> X,
                               i64 bias_factor) const {
  const std::vector<i64> out = eval_output(X, bias_factor);
  return argmax_tie_low_i64(out);
}

int QuantizedNetwork::classify_noised(std::span<const i64> x,
                                      std::span<const int> deltas,
                                      int bias_delta) const {
  const std::vector<i64> X = noised_inputs(x, deltas);
  return classify(X, kNoiseDen + bias_delta);
}

Network QuantizedNetwork::dequantize() const {
  std::vector<Layer> layers;
  layers.reserve(layers_.size());
  // fannet-lint: allow(float-in-exact) dequantize() is the fixed->float boundary
  const double s = static_cast<double>(util::Fixed::kScale);
  for (const QLayer& ql : layers_) {
    Layer l;
    l.activation = ql.relu ? Activation::kReLU : Activation::kLinear;
    l.weights = la::MatrixD(ql.out_dim(), ql.in_dim());
    for (std::size_t r = 0; r < ql.out_dim(); ++r) {
      for (std::size_t c = 0; c < ql.in_dim(); ++c) {
        // fannet-lint: allow(float-in-exact) boundary conversion, not math
        l.weights(r, c) = static_cast<double>(ql.weights(r, c)) / s;
      }
    }
    l.bias.reserve(ql.out_dim());
    // fannet-lint: allow(float-in-exact) boundary conversion, not math
    for (i64 b : ql.bias) l.bias.push_back(static_cast<double>(b) / s);
    layers.push_back(std::move(l));
  }
  return Network(std::move(layers));
}

i64& QuantizedNetwork::param_slot(std::size_t layer, std::size_t row,
                                  std::size_t col) {
  if (layer >= layers_.size()) {
    throw InvalidArgument("QuantizedNetwork: layer out of range");
  }
  QLayer& l = layers_[layer];
  if (row >= l.out_dim() || col > l.in_dim()) {
    throw InvalidArgument("QuantizedNetwork: parameter index out of range");
  }
  // The caller writes through the returned slot, so the memoized
  // fingerprint is stale the moment this hands out mutable access.
  invalidate_fingerprint();
  return (col == l.in_dim()) ? l.bias[row] : l.weights(row, col);
}

i64 QuantizedNetwork::param_raw(std::size_t layer, std::size_t row,
                                std::size_t col) const {
  return const_cast<QuantizedNetwork*>(this)->param_slot(layer, row, col);
}

QuantizedNetwork QuantizedNetwork::with_param(std::size_t layer,
                                              std::size_t row, std::size_t col,
                                              i64 raw) const {
  QuantizedNetwork copy = *this;
  copy.param_slot(layer, row, col) = raw;
  return copy;
}

i64 scaled_param_raw(i64 raw, i64 percent) {
  const i128 scaled = static_cast<i128>(raw) * (100 + percent);
  // Round half away from zero back onto the fixed-point grid.
  const i128 adjust = (scaled >= 0) ? 50 : -50;
  return util::narrow_i128((scaled + adjust) / 100);
}

QuantizedNetwork QuantizedNetwork::with_scaled_param(std::size_t layer,
                                                     std::size_t row,
                                                     std::size_t col,
                                                     i64 percent) const {
  return with_param(layer, row, col,
                    scaled_param_raw(param_raw(layer, row, col), percent));
}

ScopedParamPatch::ScopedParamPatch(QuantizedNetwork& net, std::size_t layer,
                                   std::size_t row, std::size_t col, i64 raw)
    : net_(&net),
      slot_(&net.param_slot(layer, row, col)),
      original_(*slot_) {
  *slot_ = raw;
}

PrefixEvaluator::PrefixEvaluator(const QuantizedNetwork& net,
                                 const la::Matrix<i64>& inputs)
    : net_(&net) {
  const std::size_t depth = net.depth();
  bias_mult_.reserve(depth);
  i64 act_scale = util::checked_mul(net.input_norm(), kNoiseDen);
  for (std::size_t li = 0; li < depth; ++li) {
    bias_mult_.push_back(act_scale);
    act_scale = util::checked_mul(act_scale, util::Fixed::kScale);
  }

  inputs_.reserve(inputs.rows());
  pres_.reserve(inputs.rows());
  base_class_.reserve(inputs.rows());
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    std::vector<i64> X = QuantizedNetwork::noised_inputs(inputs.row(s), {});
    std::vector<std::vector<i64>> pre = net.eval_all(X);
    base_class_.push_back(argmax_tie_low_i64(pre.back()));
    inputs_.push_back(std::move(X));
    pres_.push_back(std::move(pre));
  }
}

int PrefixEvaluator::base_class(std::size_t sample) const {
  if (sample >= base_class_.size()) {
    throw InvalidArgument("PrefixEvaluator: sample out of range");
  }
  return base_class_[sample];
}

int PrefixEvaluator::classify_patched(std::size_t sample, std::size_t layer,
                                      std::size_t row, std::size_t col,
                                      i64 raw, Scratch& scratch) const {
  if (sample >= pres_.size()) {
    throw InvalidArgument("PrefixEvaluator: sample out of range");
  }
  const std::size_t depth = net_->depth();
  if (layer >= depth) {
    throw InvalidArgument("PrefixEvaluator: layer out of range");
  }
  const QLayer& fl = net_->layers()[layer];
  if (row >= fl.out_dim() || col > fl.in_dim()) {
    throw InvalidArgument("PrefixEvaluator: parameter index out of range");
  }

  // Delta update of the one affected pre-activation: the patched row's
  // accumulation equals the memoized one plus (raw' - raw) times the input
  // the parameter multiplies — identical i128 algebra to re-summing the
  // row, so overflow (narrow_i128) behaves exactly like a full rescan.
  // The activation a weight multiplies is derived from the memoized
  // pre-activations (X for layer 0, else ReLU of the previous layer's N).
  const i64 old_raw = (col == fl.in_dim()) ? fl.bias[row] : fl.weights(row, col);
  i64 input_value = 0;
  if (col == fl.in_dim()) {
    input_value = bias_mult_[layer];
  } else if (layer == 0) {
    input_value = inputs_[sample][col];
  } else {
    input_value = pres_[sample][layer - 1][col];
    if (net_->layers()[layer - 1].relu) {
      input_value = std::max<i64>(0, input_value);
    }
  }
  const i128 patched_acc =
      static_cast<i128>(pres_[sample][layer][row]) +
      (static_cast<i128>(raw) - old_raw) * static_cast<i128>(input_value);
  const i64 patched_pre = util::narrow_i128(patched_acc);
  ++scratch.layer_evaluations;

  if (layer + 1 == depth) {
    // Output-layer fault: argmax over the memoized outputs with one entry
    // substituted — no copies, no further layers.
    const std::vector<i64>& out = pres_[sample][layer];
    std::size_t best = 0;
    i64 best_value = (row == 0) ? patched_pre : out[0];
    for (std::size_t i = 1; i < out.size(); ++i) {
      const i64 v = (i == row) ? patched_pre : out[i];
      if (v > best_value) {
        best = i;
        best_value = v;
      }
    }
    return static_cast<int>(best);
  }

  // Activations entering layer+1 (ReLU of the memoized pre-activations)
  // with entry `row` patched, then a full evaluation of the suffix layers.
  const std::vector<i64>& memo_pre = pres_[sample][layer];
  scratch.act.assign(memo_pre.begin(), memo_pre.end());
  if (fl.relu) {
    for (i64& v : scratch.act) v = std::max<i64>(0, v);
  }
  scratch.act[row] = fl.relu ? std::max<i64>(0, patched_pre) : patched_pre;

  for (std::size_t li = layer + 1; li < depth; ++li) {
    const QLayer& l = net_->layers()[li];
    scratch.next.resize(l.out_dim());
    for (std::size_t j = 0; j < l.out_dim(); ++j) {
      i128 acc = static_cast<i128>(l.bias[j]) * bias_mult_[li];
      const auto wrow = l.weights.row(j);
      for (std::size_t i = 0; i < l.in_dim(); ++i) {
        acc += static_cast<i128>(wrow[i]) * scratch.act[i];
      }
      scratch.next[j] = util::narrow_i128(acc);
    }
    ++scratch.layer_evaluations;
    if (li + 1 < depth) {
      if (l.relu) {
        for (i64& v : scratch.next) v = std::max<i64>(0, v);
      }
      std::swap(scratch.act, scratch.next);
    }
  }
  return argmax_tie_low_i64(scratch.next);
}

std::uint64_t QuantizedNetwork::fingerprint() const noexcept {
  if (fp_valid_.load(std::memory_order_acquire)) {
    return fp_value_.load(std::memory_order_relaxed);
  }
  // FNV-1a, folding every parameter as little-endian 64-bit words.  The
  // byte order is fixed (not memcpy of host ints) so the hash — and with it
  // the query cache's disk tier — is stable across platforms.
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffU;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<std::uint64_t>(input_norm_));
  mix(layers_.size());
  for (const QLayer& l : layers_) {
    mix(l.out_dim());
    mix(l.in_dim());
    mix(l.relu ? 1 : 0);
    for (std::size_t r = 0; r < l.out_dim(); ++r) {
      for (std::size_t c = 0; c < l.in_dim(); ++c) {
        mix(static_cast<std::uint64_t>(l.weights(r, c)));
      }
    }
    for (const i64 b : l.bias) mix(static_cast<std::uint64_t>(b));
  }
  // Value before flag (release): a reader that sees the flag sees the hash.
  fp_value_.store(h, std::memory_order_relaxed);
  fp_valid_.store(true, std::memory_order_release);
  return h;
}

int argmax_tie_low_i64(std::span<const i64> v) {
  if (v.empty()) throw InvalidArgument("argmax_tie_low_i64: empty vector");
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return static_cast<int>(best);
}

}  // namespace fannet::nn
