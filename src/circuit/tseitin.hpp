/// \file
/// \brief Tseitin encoding of circuit cones into the CDCL solver.
///
/// Each AND node gets a solver variable constrained by the three standard
/// clauses; encoding is lazy and cone-restricted, so only logic reachable
/// from asserted/queried literals enters the CNF.  Complemented edges map to
/// negated solver literals for free.
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "sat/solver.hpp"

namespace fannet::circuit {

class TseitinEncoder {
 public:
  /// Both referees must outlive the encoder.
  TseitinEncoder(const Circuit& circuit, sat::Solver& solver);

  /// Solver literal equisatisfiable with circuit literal `l` (encodes the
  /// cone on first use).
  [[nodiscard]] sat::Lit lit(CLit l);

  /// Adds the unit clause making `l` true.
  void assert_true(CLit l);

  /// Solver literals for every bit of a word.
  [[nodiscard]] std::vector<sat::Lit> lits(const Word& w);

  /// Decodes a word from the solver's current model (call after kSat;
  /// encodes any not-yet-encoded bits first — so call before solve).
  [[nodiscard]] util::i64 decode_word(const Word& w) const;

  /// Solver variable of an already-encoded literal (throws if not encoded).
  [[nodiscard]] sat::Lit lit_if_encoded(CLit l) const;

 private:
  [[nodiscard]] sat::Var var_of_node(std::uint32_t node);

  const Circuit& circuit_;
  sat::Solver& solver_;
  std::vector<sat::Var> var_of_;  // per circuit node; kUndefVar = unencoded
};

}  // namespace fannet::circuit
