/// \file
/// \brief Word-level boolean circuit builder (AIG) — the bit-blasting layer.
///
/// The SMV compiler lowers bounded-integer models onto this netlist
/// representation: an And-Inverter Graph with structural hashing and constant
/// folding, plus two's-complement word operations (add, negate, multiply by
/// constant via shift-add, signed comparison, mux).  The netlist then exports
/// to CNF (Tseitin encoding, consumed by the CDCL solver for BMC) or to BDDs
/// (consumed by the symbolic reachability engine) — the two backends the
/// paper weighs against each other when picking nuXmv.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/checked.hpp"

namespace fannet::circuit {

/// Literal: AIG node index * 2 + (complemented ? 1 : 0).
/// Node 0 is the constant-false node, so lit 0 = false and lit 1 = true.
class CLit {
 public:
  constexpr CLit() noexcept = default;

  [[nodiscard]] static constexpr CLit from_code(std::uint32_t code) noexcept {
    CLit l;
    l.code_ = code;
    return l;
  }
  [[nodiscard]] static constexpr CLit constant(bool v) noexcept {
    return from_code(v ? 1 : 0);
  }

  [[nodiscard]] constexpr std::uint32_t code() const noexcept { return code_; }
  [[nodiscard]] constexpr std::uint32_t node() const noexcept {
    return code_ >> 1;
  }
  [[nodiscard]] constexpr bool complemented() const noexcept {
    return code_ & 1;
  }
  [[nodiscard]] constexpr CLit operator~() const noexcept {
    return from_code(code_ ^ 1);
  }
  [[nodiscard]] constexpr bool operator==(const CLit&) const noexcept = default;

 private:
  std::uint32_t code_ = 0;
};

inline constexpr CLit kFalse = CLit::constant(false);
inline constexpr CLit kTrue = CLit::constant(true);

/// Little-endian two's-complement bitvector of circuit literals.
using Word = std::vector<CLit>;

class Circuit {
 public:
  Circuit();

  /// Fresh primary input (boolean).
  [[nodiscard]] CLit add_input();
  /// Fresh primary input word of the given width.
  [[nodiscard]] Word add_input_word(std::size_t width);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t num_inputs() const noexcept {
    return input_nodes_.size();
  }
  [[nodiscard]] bool is_input(std::uint32_t node) const {
    return node < input_ordinal_.size() && input_ordinal_[node] >= 0;
  }
  /// Creation-order ordinal of an input node (precondition: is_input).
  [[nodiscard]] std::size_t input_ordinal(std::uint32_t node) const;

  /// Fanins of an AND node (precondition: not an input/constant).
  [[nodiscard]] std::pair<CLit, CLit> fanins(std::uint32_t node) const;

  // ---- gate constructors (fold constants, hash structurally) -------------
  [[nodiscard]] CLit land(CLit a, CLit b);
  [[nodiscard]] CLit lor(CLit a, CLit b) { return ~land(~a, ~b); }
  [[nodiscard]] CLit lxor(CLit a, CLit b);
  [[nodiscard]] CLit iff(CLit a, CLit b) { return ~lxor(a, b); }
  [[nodiscard]] CLit implies(CLit a, CLit b) { return lor(~a, b); }
  [[nodiscard]] CLit mux(CLit sel, CLit t, CLit e);

  // ---- word operations ----------------------------------------------------
  /// Constant word; width must hold `value` in two's complement.
  [[nodiscard]] static Word word_const(util::i64 value, std::size_t width);
  /// Minimal width that represents `value` in two's complement.
  [[nodiscard]] static std::size_t min_width(util::i64 value);

  /// Sign-extends (or truncates — caller must know it is safe) to `width`.
  [[nodiscard]] Word sext(const Word& a, std::size_t width) const;

  /// a + b, result width max(|a|,|b|)+1: overflow cannot occur.
  [[nodiscard]] Word add(const Word& a, const Word& b);
  /// a - b, result width max(|a|,|b|)+1.
  [[nodiscard]] Word sub(const Word& a, const Word& b);
  /// -a, width |a|+1.
  [[nodiscard]] Word neg(const Word& a);
  /// a * k (k compile-time constant) via shift-add; exact width.
  [[nodiscard]] Word mul_const(const Word& a, util::i64 k);
  /// max(0, a) — the ReLU word (sign bit selects zero).
  [[nodiscard]] Word relu(const Word& a);
  /// if sel then t else e, width max(|t|,|e|).
  [[nodiscard]] Word mux_word(CLit sel, const Word& t, const Word& e);

  // ---- predicates ----------------------------------------------------------
  [[nodiscard]] CLit eq(const Word& a, const Word& b);
  [[nodiscard]] CLit less_signed(const Word& a, const Word& b);   // a < b
  [[nodiscard]] CLit leq_signed(const Word& a, const Word& b) {
    return ~less_signed(b, a);
  }

  /// Evaluates a literal under a full input assignment (index = input node
  /// order of creation, i.e. inputs[0] is the first add_input()).
  [[nodiscard]] bool eval(CLit root, const std::vector<bool>& inputs) const;
  [[nodiscard]] util::i64 eval_word(const Word& w,
                                    const std::vector<bool>& inputs) const;

  /// Decodes a word under a bit assignment callback already evaluated.
  [[nodiscard]] static util::i64 decode(const Word& w,
                                        const std::vector<bool>& bits);

 private:
  struct Node {
    CLit a, b;  // fanins; inputs/constants have a == b == kFalse
  };
  struct AndKey {
    std::uint32_t a, b;
    bool operator==(const AndKey&) const = default;
  };
  struct AndKeyHash {
    std::size_t operator()(const AndKey& k) const noexcept {
      return (static_cast<std::uint64_t>(k.a) << 32 | k.b) * 0x9e3779b97f4a7c15ULL >> 16;
    }
  };

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> input_nodes_;   // node id per input ordinal
  std::vector<std::int32_t> input_ordinal_;  // per node; -1 = gate/constant
  std::unordered_map<AndKey, std::uint32_t, AndKeyHash> strash_;
};

}  // namespace fannet::circuit
