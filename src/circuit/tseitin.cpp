#include "circuit/tseitin.hpp"

#include "util/error.hpp"

namespace fannet::circuit {

TseitinEncoder::TseitinEncoder(const Circuit& circuit, sat::Solver& solver)
    : circuit_(circuit), solver_(solver) {
  var_of_.assign(circuit.num_nodes(), sat::kUndefVar);
}

sat::Var TseitinEncoder::var_of_node(std::uint32_t root) {
  if (root >= var_of_.size()) {
    // The circuit may have grown since construction; track it.
    var_of_.resize(circuit_.num_nodes(), sat::kUndefVar);
  }
  if (var_of_[root] != sat::kUndefVar) return var_of_[root];

  // Iterative post-order over the unencoded cone (adder chains are deep
  // enough to overflow the call stack on large models).
  std::vector<std::uint32_t> stack{root};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    if (var_of_[n] != sat::kUndefVar) {
      stack.pop_back();
      continue;
    }
    if (n == 0) {
      // Constant-false node: a variable pinned to false.
      const sat::Var v = solver_.new_var();
      solver_.add_clause({sat::Lit(v, true)});
      var_of_[n] = v;
      stack.pop_back();
      continue;
    }
    if (circuit_.is_input(n)) {
      var_of_[n] = solver_.new_var();
      stack.pop_back();
      continue;
    }
    const auto [a, b] = circuit_.fanins(n);
    const bool need_a = var_of_[a.node()] == sat::kUndefVar;
    const bool need_b = var_of_[b.node()] == sat::kUndefVar;
    if (need_a) stack.push_back(a.node());
    if (need_b) stack.push_back(b.node());
    if (need_a || need_b) continue;

    const sat::Var v = solver_.new_var();
    const sat::Lit n_lit(v, false);
    const sat::Lit a_lit(var_of_[a.node()], a.complemented());
    const sat::Lit b_lit(var_of_[b.node()], b.complemented());
    // n <-> a & b
    solver_.add_clause({~n_lit, a_lit});
    solver_.add_clause({~n_lit, b_lit});
    solver_.add_clause({n_lit, ~a_lit, ~b_lit});
    var_of_[n] = v;
    stack.pop_back();
  }
  return var_of_[root];
}

sat::Lit TseitinEncoder::lit(CLit l) {
  const sat::Var v = var_of_node(l.node());
  return sat::Lit(v, l.complemented());
}

void TseitinEncoder::assert_true(CLit l) { solver_.add_clause({lit(l)}); }

std::vector<sat::Lit> TseitinEncoder::lits(const Word& w) {
  std::vector<sat::Lit> out;
  out.reserve(w.size());
  for (const CLit b : w) out.push_back(lit(b));
  return out;
}

sat::Lit TseitinEncoder::lit_if_encoded(CLit l) const {
  if (l.node() >= var_of_.size() || var_of_[l.node()] == sat::kUndefVar) {
    throw InvalidArgument("TseitinEncoder: literal not encoded");
  }
  return sat::Lit(var_of_[l.node()], l.complemented());
}

util::i64 TseitinEncoder::decode_word(const Word& w) const {
  std::vector<bool> bits(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    const sat::Lit l = lit_if_encoded(w[i]);
    bits[i] = solver_.model_value(l);
  }
  return Circuit::decode(w, bits);
}

}  // namespace fannet::circuit
