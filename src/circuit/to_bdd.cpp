#include "circuit/to_bdd.hpp"

#include "util/error.hpp"

namespace fannet::circuit {

BddConverter::BddConverter(const Circuit& circuit, bdd::Manager& manager,
                           std::vector<bdd::Bdd> input_functions)
    : circuit_(circuit), manager_(manager), inputs_(std::move(input_functions)) {
  if (inputs_.size() != circuit.num_inputs()) {
    throw InvalidArgument("BddConverter: one BDD per circuit input required");
  }
  memo_.resize(circuit.num_nodes());
  memo_valid_.assign(circuit.num_nodes(), 0);
}

bdd::Bdd BddConverter::convert(CLit l) {
  if (circuit_.num_nodes() > memo_.size()) {
    memo_.resize(circuit_.num_nodes());
    memo_valid_.resize(circuit_.num_nodes(), 0);
  }
  std::vector<std::uint32_t> stack{l.node()};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    if (memo_valid_[n]) {
      stack.pop_back();
      continue;
    }
    if (n == 0) {
      memo_[n] = manager_.bdd_false();
      memo_valid_[n] = 1;
      stack.pop_back();
      continue;
    }
    if (circuit_.is_input(n)) {
      memo_[n] = inputs_[circuit_.input_ordinal(n)];
      memo_valid_[n] = 1;
      stack.pop_back();
      continue;
    }
    const auto [a, b] = circuit_.fanins(n);
    const bool need_a = !memo_valid_[a.node()];
    const bool need_b = !memo_valid_[b.node()];
    if (need_a) stack.push_back(a.node());
    if (need_b) stack.push_back(b.node());
    if (need_a || need_b) continue;

    const bdd::Bdd fa =
        a.complemented() ? manager_.lnot(memo_[a.node()]) : memo_[a.node()];
    const bdd::Bdd fb =
        b.complemented() ? manager_.lnot(memo_[b.node()]) : memo_[b.node()];
    memo_[n] = manager_.land(fa, fb);
    memo_valid_[n] = 1;
    stack.pop_back();
  }
  const bdd::Bdd f = memo_[l.node()];
  return l.complemented() ? manager_.lnot(f) : f;
}

std::vector<bdd::Bdd> BddConverter::convert_word(const Word& w) {
  std::vector<bdd::Bdd> out;
  out.reserve(w.size());
  for (const CLit b : w) out.push_back(convert(b));
  return out;
}

}  // namespace fannet::circuit
