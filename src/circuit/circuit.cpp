#include "circuit/circuit.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fannet::circuit {

using util::i64;

Circuit::Circuit() {
  nodes_.push_back({kFalse, kFalse});  // node 0: constant false
  input_ordinal_.push_back(-1);
}

CLit Circuit::add_input() {
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back({kFalse, kFalse});
  input_ordinal_.push_back(static_cast<std::int32_t>(input_nodes_.size()));
  input_nodes_.push_back(id);
  return CLit::from_code(id << 1);
}

Word Circuit::add_input_word(std::size_t width) {
  Word w(width);
  for (auto& bit : w) bit = add_input();
  return w;
}

std::size_t Circuit::input_ordinal(std::uint32_t node) const {
  if (!is_input(node)) {
    throw InvalidArgument("Circuit::input_ordinal: node is not an input");
  }
  return static_cast<std::size_t>(input_ordinal_[node]);
}

std::pair<CLit, CLit> Circuit::fanins(std::uint32_t node) const {
  if (node >= nodes_.size() || node == 0 || is_input(node)) {
    throw InvalidArgument("Circuit::fanins: not an AND node");
  }
  return {nodes_[node].a, nodes_[node].b};
}

CLit Circuit::land(CLit a, CLit b) {
  // Constant folding and trivial cases.
  if (a == kFalse || b == kFalse) return kFalse;
  if (a == kTrue) return b;
  if (b == kTrue) return a;
  if (a == b) return a;
  if (a == ~b) return kFalse;
  // Canonical operand order for structural hashing.
  if (a.code() > b.code()) std::swap(a, b);
  const AndKey key{a.code(), b.code()};
  if (const auto it = strash_.find(key); it != strash_.end()) {
    return CLit::from_code(it->second << 1);
  }
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back({a, b});
  input_ordinal_.push_back(-1);
  strash_.emplace(key, id);
  return CLit::from_code(id << 1);
}

CLit Circuit::lxor(CLit a, CLit b) {
  // a ^ b = (a | b) & ~(a & b)
  return land(lor(a, b), ~land(a, b));
}

CLit Circuit::mux(CLit sel, CLit t, CLit e) {
  if (t == e) return t;
  return lor(land(sel, t), land(~sel, e));
}

Word Circuit::word_const(i64 value, std::size_t width) {
  if (width < min_width(value)) {
    throw InvalidArgument("word_const: width too small for value");
  }
  Word w(width);
  for (std::size_t i = 0; i < width; ++i) {
    w[i] = CLit::constant((value >> std::min<std::size_t>(i, 63)) & 1);
  }
  return w;
}

std::size_t Circuit::min_width(i64 value) {
  // Smallest w with -(2^{w-1}) <= value <= 2^{w-1} - 1.
  std::size_t w = 1;
  while (true) {
    if (w >= 64) return 64;
    const i64 lo = -(i64{1} << (w - 1));
    const i64 hi = (i64{1} << (w - 1)) - 1;
    if (value >= lo && value <= hi) return w;
    ++w;
  }
}

Word Circuit::sext(const Word& a, std::size_t width) const {
  if (a.empty()) throw InvalidArgument("sext: empty word");
  Word w(a);
  if (width <= w.size()) {
    w.resize(width);
    return w;
  }
  const CLit sign = a.back();
  while (w.size() < width) w.push_back(sign);
  return w;
}

Word Circuit::add(const Word& a, const Word& b) {
  const std::size_t width = std::max(a.size(), b.size()) + 1;
  const Word x = sext(a, width);
  const Word y = sext(b, width);
  Word sum(width);
  CLit carry = kFalse;
  for (std::size_t i = 0; i < width; ++i) {
    const CLit axb = lxor(x[i], y[i]);
    sum[i] = lxor(axb, carry);
    carry = lor(land(x[i], y[i]), land(axb, carry));
  }
  return sum;
}

Word Circuit::sub(const Word& a, const Word& b) { return add(a, neg(b)); }

Word Circuit::neg(const Word& a) {
  // -a = ~a + 1, widened so the most negative value cannot overflow.
  const std::size_t width = a.size() + 1;
  const Word x = sext(a, width);
  Word inv(width);
  for (std::size_t i = 0; i < width; ++i) inv[i] = ~x[i];
  Word result(width);
  CLit carry = kTrue;
  for (std::size_t i = 0; i < width; ++i) {
    result[i] = lxor(inv[i], carry);
    carry = land(inv[i], carry);
  }
  return result;
}

Word Circuit::mul_const(const Word& a, i64 k) {
  if (k == 0) return word_const(0, 1);
  const bool negative = k < 0;
  // Guard: |k| fits in u64 even for INT64_MIN.
  const std::uint64_t mag =
      negative ? ~static_cast<std::uint64_t>(k) + 1 : static_cast<std::uint64_t>(k);
  // Shift-add over the set bits of |k|.
  const std::size_t out_width = a.size() + static_cast<std::size_t>(64 - __builtin_clzll(mag)) + 1;
  Word acc = word_const(0, 1);
  for (std::size_t bit = 0; bit < 64; ++bit) {
    if (!((mag >> bit) & 1)) continue;
    // a << bit
    Word shifted(bit, kFalse);
    shifted.insert(shifted.end(), a.begin(), a.end());
    acc = add(acc, shifted);
  }
  acc = sext(acc, std::max(acc.size(), out_width));
  if (negative) acc = neg(acc);
  return acc;
}

Word Circuit::relu(const Word& a) {
  const CLit is_negative = a.back();  // sign bit
  Word zero = word_const(0, a.size());
  return mux_word(is_negative, zero, a);
}

Word Circuit::mux_word(CLit sel, const Word& t, const Word& e) {
  const std::size_t width = std::max(t.size(), e.size());
  const Word x = sext(t, width);
  const Word y = sext(e, width);
  Word r(width);
  for (std::size_t i = 0; i < width; ++i) r[i] = mux(sel, x[i], y[i]);
  return r;
}

CLit Circuit::eq(const Word& a, const Word& b) {
  const std::size_t width = std::max(a.size(), b.size());
  const Word x = sext(a, width);
  const Word y = sext(b, width);
  CLit r = kTrue;
  for (std::size_t i = 0; i < width; ++i) r = land(r, iff(x[i], y[i]));
  return r;
}

CLit Circuit::less_signed(const Word& a, const Word& b) {
  const std::size_t width = std::max(a.size(), b.size());
  const Word x = sext(a, width);
  const Word y = sext(b, width);
  // Unsigned less-than over the low width-1 bits, then adjust for signs.
  CLit ult = kFalse;
  for (std::size_t i = 0; i + 1 < width; ++i) {
    ult = mux(iff(x[i], y[i]), ult, land(~x[i], y[i]));
  }
  const CLit sa = x.back();
  const CLit sb = y.back();
  // a<b iff (sa & !sb) | (sa==sb & ult)
  return lor(land(sa, ~sb), land(iff(sa, sb), ult));
}

bool Circuit::eval(CLit root, const std::vector<bool>& inputs) const {
  if (inputs.size() != input_nodes_.size()) {
    throw InvalidArgument("Circuit::eval: input count mismatch");
  }
  std::vector<char> value(nodes_.size(), 0);
  value[0] = 0;
  for (std::uint32_t n = 1; n < nodes_.size(); ++n) {
    if (is_input(n)) {
      value[n] = inputs[static_cast<std::size_t>(input_ordinal_[n])] ? 1 : 0;
    } else {
      const Node& node = nodes_[n];
      const auto litval = [&](CLit l) {
        return static_cast<bool>(value[l.node()]) != l.complemented();
      };
      value[n] = (litval(node.a) && litval(node.b)) ? 1 : 0;
    }
  }
  return static_cast<bool>(value[root.node()]) != root.complemented();
}

i64 Circuit::eval_word(const Word& w, const std::vector<bool>& inputs) const {
  std::vector<bool> bits(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) bits[i] = eval(w[i], inputs);
  return decode(w, bits);
}

i64 Circuit::decode(const Word& w, const std::vector<bool>& bits) {
  if (bits.size() != w.size()) {
    throw InvalidArgument("Circuit::decode: size mismatch");
  }
  if (w.empty()) return 0;
  if (w.size() > 64) throw InvalidArgument("Circuit::decode: word too wide");
  i64 v = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (bits[i]) v |= (i64{1} << i);
  }
  // Sign-extend from the top bit.
  if (bits.back() && w.size() < 64) {
    v -= (i64{1} << w.size());
  }
  return v;
}

}  // namespace fannet::circuit
