/// \file
/// \brief Lowers a circuit cone to BDDs (the symbolic model-checking path).
#pragma once

#include <vector>

#include "bdd/bdd.hpp"
#include "circuit/circuit.hpp"

namespace fannet::circuit {

/// Converts circuit literals to BDDs under a fixed mapping from circuit
/// input ordinals to BDD functions (usually manager variables).  Conversion
/// is memoized per instance, so share one converter per (circuit, mapping).
class BddConverter {
 public:
  BddConverter(const Circuit& circuit, bdd::Manager& manager,
               std::vector<bdd::Bdd> input_functions);

  [[nodiscard]] bdd::Bdd convert(CLit l);
  [[nodiscard]] std::vector<bdd::Bdd> convert_word(const Word& w);

 private:
  const Circuit& circuit_;
  bdd::Manager& manager_;
  std::vector<bdd::Bdd> inputs_;
  std::vector<bdd::Bdd> memo_;       // per node
  std::vector<char> memo_valid_;     // per node
};

}  // namespace fannet::circuit
