/// \file
/// \brief Dataset container and train/test splitting for the leukemia case study.
///
/// Label convention (fixed across the whole repository, matching the paper's
/// Fig. 3/4):  L0 = AML (minority), L1 = ALL (majority).  The training-bias
/// analysis depends on this orientation: the paper's training set is ~70% L1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "la/matrix.hpp"

namespace fannet::data {

inline constexpr int kLabelAML = 0;  ///< L0
inline constexpr int kLabelALL = 1;  ///< L1

struct Dataset {
  la::MatrixD features;            ///< rows = samples, cols = genes
  std::vector<int> labels;         ///< one label per row (0 or 1)
  std::vector<std::string> genes;  ///< column names (may be empty)

  [[nodiscard]] std::size_t size() const noexcept { return labels.size(); }
  [[nodiscard]] std::size_t num_features() const noexcept {
    return features.cols();
  }

  /// Number of samples carrying the given label.
  [[nodiscard]] std::size_t count_label(int label) const;

  /// New dataset keeping only the listed feature columns, in order.
  [[nodiscard]] Dataset select_features(
      const std::vector<std::size_t>& columns) const;

  /// New dataset keeping only the listed sample rows, in order.
  [[nodiscard]] Dataset select_samples(
      const std::vector<std::size_t>& rows) const;
};

struct Split {
  Dataset train;
  Dataset test;
};

/// Stratified split drawing exactly `train_per_label[c]` samples of each
/// label c into the training set (shuffled by `seed`); everything else goes
/// to the test set.  Throws InvalidArgument if a label has too few samples.
[[nodiscard]] Split stratified_split(const Dataset& full,
                                     const std::vector<std::size_t>& train_per_label,
                                     std::uint64_t seed);

/// Per-feature affine mapping of real values onto the integer grid
/// [1, 100], fitted on the training set with min-max (test values are
/// clamped).  The formal analysis runs on these integers (paper: i in Z).
class IntScaler {
 public:
  static constexpr std::int64_t kLo = 1;
  static constexpr std::int64_t kHi = 100;

  /// Fits column-wise min/max on `train`.
  static IntScaler fit(const la::MatrixD& train);

  /// Maps one real matrix onto the integer grid.
  [[nodiscard]] la::Matrix<std::int64_t> transform(const la::MatrixD& m) const;

  /// Maps integers back to the normalized (0,1] range used for training:
  /// u = x / 100 as doubles.
  [[nodiscard]] static la::MatrixD normalize(const la::Matrix<std::int64_t>& m);

  [[nodiscard]] std::size_t num_features() const noexcept {
    return mins_.size();
  }

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

}  // namespace fannet::data
