/// \file
/// \brief Synthetic Golub leukemia microarray generator.
///
/// The paper trains on the classic Golub et al. dataset (leukemia_big.csv:
/// 72 samples x 7129 genes, 47 ALL / 25 AML).  That file is not
/// redistributable here, so this generator produces a statistically matched
/// stand-in (DESIGN.md §1): log-scale baseline expression per gene, a planted
/// subset of differentially expressed ("informative") genes with
/// class-conditional mean shifts, and per-sample measurement noise.  All
/// downstream code paths — mRMR over 7129 genes, integer scaling, the ~70%-L1
/// training split that produces the paper's training-bias finding — behave as
/// with the real data.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace fannet::data {

struct GolubConfig {
  std::size_t num_samples_all = 47;  ///< L1 majority class (paper: 47 ALL)
  std::size_t num_samples_aml = 25;  ///< L0 minority class (paper: 25 AML)
  std::size_t num_genes = 7129;      ///< paper: 7129 genetic attributes
  std::size_t num_informative = 60;  ///< planted differentially expressed genes

  double baseline_mean = 6.0;    ///< log-expression baseline mean
  double baseline_sd = 1.5;      ///< spread of per-gene baselines
  double effect_mean = 2.0;      ///< mean class-shift of informative genes
  double effect_sd = 0.5;        ///< spread of class-shifts
  /// Per-measurement noise.  Calibrated so the default pipeline lands on
  /// the paper's numbers: 100% train / 94.12% (32/34) test accuracy and a
  /// noise tolerance of ±10% (paper: ±11%).
  double sample_noise_sd = 1.4;

  std::uint64_t seed = 42;
};

struct GolubData {
  Dataset dataset;
  /// Column indices of the planted informative genes (ground truth for
  /// validating mRMR; not consumed by the pipeline itself).
  std::vector<std::size_t> informative_genes;
};

/// Generates the synthetic cohort.  Samples are ordered ALL-first, then AML;
/// stratified_split shuffles them, so the order carries no information.
[[nodiscard]] GolubData generate_golub(const GolubConfig& config);

}  // namespace fannet::data
