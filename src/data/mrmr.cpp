#include "data/mrmr.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"

namespace fannet::data {

std::vector<int> discretize_column(const la::MatrixD& m, std::size_t column) {
  if (m.rows() == 0) throw InvalidArgument("discretize_column: empty matrix");
  if (column >= m.cols()) {
    throw InvalidArgument("discretize_column: column out of range");
  }
  double mean = 0.0;
  for (std::size_t r = 0; r < m.rows(); ++r) mean += m(r, column);
  mean /= static_cast<double>(m.rows());
  double var = 0.0;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double d = m(r, column) - mean;
    var += d * d;
  }
  var /= static_cast<double>(m.rows());
  const double sigma = std::sqrt(var);
  const double lo = mean - 0.5 * sigma;
  const double hi = mean + 0.5 * sigma;

  std::vector<int> levels(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double v = m(r, column);
    levels[r] = (v < lo) ? 0 : (v > hi) ? 2 : 1;
  }
  return levels;
}

double mutual_information(const std::vector<int>& a, const std::vector<int>& b) {
  if (a.size() != b.size() || a.empty()) {
    throw InvalidArgument("mutual_information: size mismatch or empty");
  }
  const double n = static_cast<double>(a.size());
  std::map<int, double> pa, pb;
  std::map<std::pair<int, int>, double> pab;
  for (std::size_t i = 0; i < a.size(); ++i) {
    pa[a[i]] += 1.0;
    pb[b[i]] += 1.0;
    pab[{a[i], b[i]}] += 1.0;
  }
  double mi = 0.0;
  for (const auto& [key, count] : pab) {
    const double pxy = count / n;
    const double px = pa[key.first] / n;
    const double py = pb[key.second] / n;
    mi += pxy * std::log(pxy / (px * py));
  }
  return std::max(0.0, mi);  // clamp tiny negative rounding residue
}

MrmrResult mrmr_select(const Dataset& data, std::size_t k, MrmrScheme scheme) {
  if (k == 0 || k > data.num_features()) {
    throw InvalidArgument("mrmr_select: bad k");
  }
  const std::size_t g = data.num_features();

  // Pre-discretize all columns once; 7129 x 72 ints is tiny.
  std::vector<std::vector<int>> disc(g);
  for (std::size_t c = 0; c < g; ++c) disc[c] = discretize_column(data.features, c);

  std::vector<double> relevance(g);
  for (std::size_t c = 0; c < g; ++c) {
    relevance[c] = mutual_information(disc[c], data.labels);
  }

  MrmrResult result;
  std::vector<bool> picked(g, false);
  // Redundancy accumulator: sum over selected genes of I(c; s).
  std::vector<double> redundancy_sum(g, 0.0);

  for (std::size_t step = 0; step < k; ++step) {
    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best = g;
    for (std::size_t c = 0; c < g; ++c) {
      if (picked[c]) continue;
      double score = 0.0;
      if (step == 0) {
        score = relevance[c];
      } else {
        const double red = redundancy_sum[c] / static_cast<double>(step);
        score = (scheme == MrmrScheme::kMID) ? relevance[c] - red
                                             : relevance[c] / (red + 1e-12);
      }
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    picked[best] = true;
    result.selected.push_back(best);
    result.relevance.push_back(relevance[best]);
    for (std::size_t c = 0; c < g; ++c) {
      if (!picked[c]) {
        redundancy_sum[c] += mutual_information(disc[c], disc[best]);
      }
    }
  }
  return result;
}

}  // namespace fannet::data
