#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fannet::data {

std::size_t Dataset::count_label(int label) const {
  return static_cast<std::size_t>(
      std::count(labels.begin(), labels.end(), label));
}

Dataset Dataset::select_features(const std::vector<std::size_t>& columns) const {
  Dataset out;
  out.labels = labels;
  out.features = la::MatrixD(size(), columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (columns[c] >= num_features()) {
      throw InvalidArgument("select_features: column out of range");
    }
    for (std::size_t r = 0; r < size(); ++r) {
      out.features(r, c) = features(r, columns[c]);
    }
    if (!genes.empty()) out.genes.push_back(genes[columns[c]]);
  }
  return out;
}

Dataset Dataset::select_samples(const std::vector<std::size_t>& rows) const {
  Dataset out;
  out.genes = genes;
  out.features = la::MatrixD(rows.size(), num_features());
  out.labels.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] >= size()) {
      throw InvalidArgument("select_samples: row out of range");
    }
    for (std::size_t c = 0; c < num_features(); ++c) {
      out.features(i, c) = features(rows[i], c);
    }
    out.labels.push_back(labels[rows[i]]);
  }
  return out;
}

Split stratified_split(const Dataset& full,
                       const std::vector<std::size_t>& train_per_label,
                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::size_t> train_rows;
  std::vector<std::size_t> test_rows;

  for (std::size_t label = 0; label < train_per_label.size(); ++label) {
    std::vector<std::size_t> rows;
    for (std::size_t r = 0; r < full.size(); ++r) {
      if (full.labels[r] == static_cast<int>(label)) rows.push_back(r);
    }
    if (rows.size() < train_per_label[label]) {
      throw InvalidArgument("stratified_split: label " + std::to_string(label) +
                            " has only " + std::to_string(rows.size()) +
                            " samples");
    }
    // Fisher-Yates shuffle with the deterministic RNG.
    for (std::size_t i = rows.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(rows[i - 1], rows[j]);
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
      (i < train_per_label[label] ? train_rows : test_rows).push_back(rows[i]);
    }
  }
  // Any label beyond the config's vector goes entirely to test.
  for (std::size_t r = 0; r < full.size(); ++r) {
    if (full.labels[r] >= static_cast<int>(train_per_label.size())) {
      test_rows.push_back(r);
    }
  }
  std::sort(train_rows.begin(), train_rows.end());
  std::sort(test_rows.begin(), test_rows.end());
  return {full.select_samples(train_rows), full.select_samples(test_rows)};
}

IntScaler IntScaler::fit(const la::MatrixD& train) {
  if (train.rows() == 0) throw InvalidArgument("IntScaler::fit: empty matrix");
  IntScaler s;
  s.mins_.assign(train.cols(), 0.0);
  s.maxs_.assign(train.cols(), 0.0);
  for (std::size_t c = 0; c < train.cols(); ++c) {
    double lo = train(0, c), hi = train(0, c);
    for (std::size_t r = 1; r < train.rows(); ++r) {
      lo = std::min(lo, train(r, c));
      hi = std::max(hi, train(r, c));
    }
    s.mins_[c] = lo;
    s.maxs_[c] = hi;
  }
  return s;
}

la::Matrix<std::int64_t> IntScaler::transform(const la::MatrixD& m) const {
  if (m.cols() != mins_.size()) {
    throw InvalidArgument("IntScaler::transform: feature count mismatch");
  }
  la::Matrix<std::int64_t> out(m.rows(), m.cols());
  for (std::size_t c = 0; c < m.cols(); ++c) {
    const double lo = mins_[c];
    const double span = maxs_[c] - lo;
    for (std::size_t r = 0; r < m.rows(); ++r) {
      double t = (span > 0.0) ? (m(r, c) - lo) / span : 0.5;
      t = std::clamp(t, 0.0, 1.0);
      const double v = static_cast<double>(kLo) +
                       t * static_cast<double>(kHi - kLo);
      out(r, c) = static_cast<std::int64_t>(std::lround(v));
    }
  }
  return out;
}

la::MatrixD IntScaler::normalize(const la::Matrix<std::int64_t>& m) {
  la::MatrixD out(m.rows(), m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      out(r, c) = static_cast<double>(m(r, c)) / static_cast<double>(kHi);
    }
  }
  return out;
}

}  // namespace fannet::data
