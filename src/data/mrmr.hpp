/// \file
/// \brief Minimum-Redundancy Maximum-Relevance (mRMR) feature selection.
///
/// The paper selects the "top five most significant genes" of the 7129 with
/// mRMR (Peng et al.).  This is the textbook algorithm: greedy selection
/// maximizing relevance I(gene; class) minus (MID) or divided by (MIQ) the
/// mean redundancy I(gene; selected gene), with mutual information estimated
/// on the standard 3-level discretization (mean +/- 0.5 sigma thresholds).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace fannet::data {

enum class MrmrScheme : std::uint8_t {
  kMID,  ///< mutual-information difference: relevance - redundancy
  kMIQ,  ///< mutual-information quotient:   relevance / redundancy
};

struct MrmrResult {
  std::vector<std::size_t> selected;   ///< chosen columns, in pick order
  std::vector<double> relevance;      ///< I(gene; class) of each pick
};

/// Discretizes one feature column into levels {0,1,2} using
/// thresholds mean - 0.5*sigma and mean + 0.5*sigma (classic mRMR binning).
[[nodiscard]] std::vector<int> discretize_column(const la::MatrixD& m,
                                                 std::size_t column);

/// Plug-in mutual information (nats) between two discrete vectors.
[[nodiscard]] double mutual_information(const std::vector<int>& a,
                                        const std::vector<int>& b);

/// Greedy mRMR over `data`, picking `k` features.
[[nodiscard]] MrmrResult mrmr_select(const Dataset& data, std::size_t k,
                                     MrmrScheme scheme = MrmrScheme::kMID);

}  // namespace fannet::data
