#include "data/golub.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fannet::data {

GolubData generate_golub(const GolubConfig& config) {
  if (config.num_genes == 0 || config.num_samples_all == 0 ||
      config.num_samples_aml == 0) {
    throw InvalidArgument("generate_golub: empty cohort");
  }
  if (config.num_informative > config.num_genes) {
    throw InvalidArgument("generate_golub: more informative genes than genes");
  }
  util::Rng rng(config.seed);

  const std::size_t n = config.num_samples_all + config.num_samples_aml;
  GolubData out;
  out.dataset.features = la::MatrixD(n, config.num_genes);
  out.dataset.labels.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    out.dataset.labels.push_back(s < config.num_samples_all ? kLabelALL
                                                            : kLabelAML);
  }

  // Choose the informative gene columns by reservoir-free partial shuffle.
  std::vector<std::size_t> genes(config.num_genes);
  for (std::size_t g = 0; g < genes.size(); ++g) genes[g] = g;
  for (std::size_t i = 0; i < config.num_informative; ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(i),
        static_cast<std::int64_t>(genes.size()) - 1));
    std::swap(genes[i], genes[j]);
  }
  out.informative_genes.assign(genes.begin(),
                               genes.begin() +
                                   static_cast<std::ptrdiff_t>(
                                       config.num_informative));
  std::sort(out.informative_genes.begin(), out.informative_genes.end());

  // Per-gene baseline and (for informative genes) signed class shift.
  std::vector<double> baseline(config.num_genes);
  std::vector<double> shift(config.num_genes, 0.0);  // added for ALL samples
  for (std::size_t g = 0; g < config.num_genes; ++g) {
    baseline[g] = rng.gaussian(config.baseline_mean, config.baseline_sd);
  }
  for (std::size_t idx : out.informative_genes) {
    const double magnitude =
        std::max(0.25, rng.gaussian(config.effect_mean, config.effect_sd));
    shift[idx] = rng.bernoulli(0.5) ? magnitude : -magnitude;
  }

  for (std::size_t s = 0; s < n; ++s) {
    const bool is_all = out.dataset.labels[s] == kLabelALL;
    for (std::size_t g = 0; g < config.num_genes; ++g) {
      double v = baseline[g] + rng.gaussian(0.0, config.sample_noise_sd);
      if (is_all) v += shift[g];
      out.dataset.features(s, g) = v;
    }
  }

  out.dataset.genes.reserve(config.num_genes);
  for (std::size_t g = 0; g < config.num_genes; ++g) {
    out.dataset.genes.push_back("gene_" + std::to_string(g));
  }
  return out;
}

}  // namespace fannet::data
