#include "serve/protocol.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace fannet::serve {

namespace {

[[noreturn]] void bad(const std::string& what) { throw ParseError(what); }

std::uint64_t get_u64(const Json& obj, std::string_view key,
                      std::uint64_t fallback, bool required = false) {
  const Json* v = obj.find(key);
  if (v == nullptr) {
    if (required) bad("request: missing field '" + std::string(key) + "'");
    return fallback;
  }
  if (!v->is_int() || v->as_int() < 0) {
    bad("request: field '" + std::string(key) +
        "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v->as_int());
}

int get_int(const Json& obj, std::string_view key, int fallback,
            bool required = false) {
  const Json* v = obj.find(key);
  if (v == nullptr) {
    if (required) bad("request: missing field '" + std::string(key) + "'");
    return fallback;
  }
  if (!v->is_int() || v->as_int() < INT32_MIN || v->as_int() > INT32_MAX) {
    bad("request: field '" + std::string(key) + "' must be an integer");
  }
  return static_cast<int>(v->as_int());
}

std::string get_string(const Json& obj, std::string_view key,
                       std::string fallback, bool required = false) {
  const Json* v = obj.find(key);
  if (v == nullptr) {
    if (required) bad("request: missing field '" + std::string(key) + "'");
    return fallback;
  }
  if (!v->is_string()) {
    bad("request: field '" + std::string(key) + "' must be a string");
  }
  return v->as_string();
}

bool get_bool(const Json& obj, std::string_view key, bool fallback) {
  const Json* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) {
    bad("request: field '" + std::string(key) + "' must be a boolean");
  }
  return v->as_bool();
}

std::vector<int> get_int_array(const Json& v, std::string_view key) {
  if (!v.is_array()) {
    bad("request: field '" + std::string(key) + "' must be an array");
  }
  std::vector<int> out;
  out.reserve(v.as_array().size());
  for (const Json& e : v.as_array()) {
    if (!e.is_int() || e.as_int() < INT32_MIN || e.as_int() > INT32_MAX) {
      bad("request: field '" + std::string(key) +
          "' must hold exact integers");
    }
    out.push_back(static_cast<int>(e.as_int()));
  }
  return out;
}

RequestBox parse_box(const Json& obj, std::size_t max_dims) {
  RequestBox box;
  const Json* lo = obj.find("lo");
  const Json* hi = obj.find("hi");
  if (lo != nullptr || hi != nullptr) {
    if (lo == nullptr || hi == nullptr) {
      bad("request: box needs both 'lo' and 'hi' (or just 'range')");
    }
    box.lo = get_int_array(*lo, "lo");
    box.hi = get_int_array(*hi, "hi");
    if (box.lo.size() != box.hi.size()) {
      bad("request: 'lo' and 'hi' must have equal length");
    }
    if (box.lo.size() > max_dims) bad("request: box has too many dimensions");
    for (std::size_t d = 0; d < box.lo.size(); ++d) {
      if (box.lo[d] > box.hi[d]) {
        bad("request: box dimension " + std::to_string(d) +
            " has lo > hi");
      }
    }
    return box;
  }
  box.range = get_int(obj, "range", 0, /*required=*/true);
  if (box.range < 0) bad("request: 'range' must be >= 0");
  return box;
}

}  // namespace

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadFrame: return "bad_frame";
    case ErrorCode::kOversized: return "oversized";
    case ErrorCode::kBadJson: return "bad_json";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownModel: return "unknown_model";
    case ErrorCode::kUnknownEngine: return "unknown_engine";
    case ErrorCode::kSaturated: return "saturated";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

Request parse_request(std::string_view payload, std::size_t max_items) {
  const Json doc = parse_json(payload);
  if (!doc.is_object()) bad("request: payload must be a JSON object");

  Request req;
  req.id = get_u64(doc, "id", 0, /*required=*/true);
  req.type = get_string(doc, "type", {}, /*required=*/true);
  req.model = get_string(doc, "model", {});
  req.engine = get_string(doc, "engine", "cascade");
  req.true_label = get_int(doc, "true_label", 0);
  req.bias_node = get_bool(doc, "bias_node", false);
  req.deadline_ms = get_u64(doc, "deadline_ms", 0);
  req.progress_every =
      static_cast<std::size_t>(get_u64(doc, "progress_every", 0));
  req.start_range = get_int(doc, "start_range", 50);
  req.node = static_cast<std::size_t>(get_u64(doc, "node", 0));
  req.direction = get_int(doc, "direction", 0);
  req.max_percent = get_int(doc, "max_percent", 10);
  req.step = get_int(doc, "step", 1);
  req.fault_model = get_string(doc, "fault_model", "percent");

  if (const Json* x = doc.find("x"); x != nullptr) {
    if (!x->is_array()) bad("request: field 'x' must be an array");
    if (x->as_array().size() > max_items) {
      bad("request: field 'x' has too many entries");
    }
    req.x.reserve(x->as_array().size());
    for (const Json& e : x->as_array()) {
      if (!e.is_int()) bad("request: field 'x' must hold exact integers");
      req.x.push_back(e.as_int());
    }
  }

  const bool needs_query = req.type == "verify" || req.type == "tolerance" ||
                           req.type == "sensitivity" || req.type == "batch";
  if (needs_query) {
    if (req.model.empty()) bad("request: missing field 'model'");
    if (req.x.empty()) bad("request: missing or empty field 'x'");
  }
  if (req.type == "weight_faults" && req.model.empty()) {
    bad("request: missing field 'model'");
  }

  if (req.type == "verify" || req.type == "sensitivity") {
    const Json* box = doc.find("box");
    if (box == nullptr || !box->is_object()) {
      bad("request: missing 'box' object");
    }
    // Dims bound uses x-size (+1 for a bias node); Query::validate does the
    // exact shape check against the network later.
    req.box = parse_box(*box, req.x.size() + 1);
  }
  if (req.type == "batch") {
    const Json* items = doc.find("items");
    if (items == nullptr || !items->is_array() || items->as_array().empty()) {
      bad("request: batch needs a non-empty 'items' array");
    }
    if (items->as_array().size() > max_items) {
      bad("request: batch has too many items (max " +
          std::to_string(max_items) + ")");
    }
    req.items.reserve(items->as_array().size());
    for (const Json& item : items->as_array()) {
      if (!item.is_object()) bad("request: batch items must be objects");
      req.items.push_back(parse_box(item, req.x.size() + 1));
    }
  }
  if (req.type == "tolerance" && req.start_range < 1) {
    bad("request: 'start_range' must be >= 1");
  }
  if (req.type == "sensitivity") {
    if (req.direction != -1 && req.direction != 0 && req.direction != 1) {
      bad("request: 'direction' must be -1, 0 (solo) or 1");
    }
    if (req.node >= req.x.size()) {
      bad("request: 'node' out of range for 'x'");
    }
  }
  if (req.type == "weight_faults") {
    if (req.max_percent < 1) bad("request: 'max_percent' must be >= 1");
    if (req.step < 1) bad("request: 'step' must be >= 1");
  }
  return req;
}

std::string make_pong(std::uint64_t id) {
  Json obj = Json::object();
  obj.set("id", Json::integer(static_cast<std::int64_t>(id)));
  obj.set("type", Json::string("pong"));
  return obj.dump();
}

std::string make_error(std::uint64_t id, ErrorCode code,
                       std::string_view message, std::uint64_t retry_after_ms) {
  Json obj = Json::object();
  obj.set("id", Json::integer(static_cast<std::int64_t>(id)));
  obj.set("type", Json::string("error"));
  obj.set("code", Json::string(std::string(error_code_name(code))));
  obj.set("message", Json::string(std::string(message)));
  if (retry_after_ms > 0) {
    obj.set("retry_after_ms",
            Json::integer(static_cast<std::int64_t>(retry_after_ms)));
  }
  return obj.dump();
}

std::string make_progress(std::uint64_t id, std::size_t done,
                          std::size_t total) {
  Json obj = Json::object();
  obj.set("id", Json::integer(static_cast<std::int64_t>(id)));
  obj.set("type", Json::string("progress"));
  obj.set("done", Json::integer(static_cast<std::int64_t>(done)));
  obj.set("total", Json::integer(static_cast<std::int64_t>(total)));
  return obj.dump();
}

Json verify_result_json(const verify::VerifyResult& result,
                        std::optional<bool> cache_hit) {
  Json obj = Json::object();
  const char* verdict = "unknown";
  if (result.verdict == verify::Verdict::kRobust) verdict = "robust";
  if (result.verdict == verify::Verdict::kVulnerable) verdict = "vulnerable";
  obj.set("verdict", Json::string(verdict));
  obj.set("work", Json::integer(static_cast<std::int64_t>(result.work)));
  if (cache_hit.has_value()) obj.set("cache_hit", Json::boolean(*cache_hit));
  obj.set("resource_limited", Json::boolean(result.resource_limited));
  if (result.counterexample.has_value()) {
    Json cex = Json::object();
    Json deltas = Json::array();
    for (const int d : result.counterexample->deltas) {
      deltas.push_back(Json::integer(d));
    }
    cex.set("deltas", std::move(deltas));
    cex.set("bias_delta", Json::integer(result.counterexample->bias_delta));
    cex.set("mis_label", Json::integer(result.counterexample->mis_label));
    obj.set("counterexample", std::move(cex));
  }
  return obj;
}

std::string make_result(std::uint64_t id, Json body) {
  Json obj = Json::object();
  obj.set("id", Json::integer(static_cast<std::int64_t>(id)));
  obj.set("type", Json::string("result"));
  obj.set("body", std::move(body));
  return obj.dump();
}

FrameStatus read_frame(int fd, std::size_t max_bytes, std::uint64_t stall_ms,
                       std::string& payload) {
  payload.clear();
  unsigned char header[4];
  std::size_t got = 0;
  // Stall budget: armed by the first byte of a frame.  Idle waits between
  // frames are unlimited — persistent connections are expected to sit
  // quiet — but a started frame must finish within stall_ms.
  std::optional<util::Stopwatch> stall;
  const auto stalled = [&]() {
    return stall_ms != 0 && stall.has_value() &&
           stall->millis() > static_cast<double>(stall_ms);
  };

  const auto recv_some = [&](void* buf, std::size_t want) -> long {
    for (;;) {
      const long n = ::recv(fd, buf, want, 0);
      if (n >= 0) return n;
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO tick: keep waiting unless the frame is mid-flight
        // and has blown its stall budget.
        if (stalled()) return -2;
        continue;
      }
      return -1;
    }
  };

  while (got < sizeof header) {
    const long n = recv_some(header + got, sizeof header - got);
    if (n == -2) return FrameStatus::kTimeout;
    if (n < 0) return got == 0 ? FrameStatus::kClosed : FrameStatus::kTorn;
    if (n == 0) return got == 0 ? FrameStatus::kClosed : FrameStatus::kTorn;
    if (got == 0 && !stall.has_value()) stall.emplace();
    got += static_cast<std::size_t>(n);
  }

  const std::size_t length = (static_cast<std::size_t>(header[0]) << 24) |
                             (static_cast<std::size_t>(header[1]) << 16) |
                             (static_cast<std::size_t>(header[2]) << 8) |
                             static_cast<std::size_t>(header[3]);
  if (length == 0) return FrameStatus::kBadLength;
  if (length > max_bytes) return FrameStatus::kOversized;

  payload.resize(length);
  std::size_t have = 0;
  while (have < length) {
    const long n = recv_some(payload.data() + have, length - have);
    if (n == -2) return FrameStatus::kTimeout;
    if (n <= 0) return FrameStatus::kTorn;
    have += static_cast<std::size_t>(n);
  }
  return FrameStatus::kOk;
}

bool write_frame(int fd, std::string_view payload) {
  const std::size_t length = payload.size();
  unsigned char header[4] = {
      static_cast<unsigned char>((length >> 24) & 0xFF),
      static_cast<unsigned char>((length >> 16) & 0xFF),
      static_cast<unsigned char>((length >> 8) & 0xFF),
      static_cast<unsigned char>(length & 0xFF),
  };
  const auto send_all = [fd](const void* data, std::size_t n) {
    const char* p = static_cast<const char*>(data);
    std::size_t sent = 0;
    while (sent < n) {
      const long w = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;  // EPIPE / ECONNRESET: peer is gone
      }
      sent += static_cast<std::size_t>(w);
    }
    return true;
  };
  return send_all(header, sizeof header) && send_all(payload.data(), length);
}

}  // namespace fannet::serve
