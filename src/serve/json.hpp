/// \file
/// \brief Minimal JSON value type for the serving protocol (DESIGN.md §14).
///
/// `fannet_serve` speaks length-prefixed JSON frames (serve/protocol.hpp),
/// so the serve layer needs to *parse* untrusted JSON — every other JSON
/// surface in the repo (BENCH_*.json, the cache/journal JSON-lines tiers)
/// only writes it, or reads back its own narrow fixed schema.  This is a
/// deliberately small recursive-descent parser with the properties a
/// network-facing decoder must have:
///
///   - hard nesting-depth and input-size discipline (the caller bounds the
///     input via the frame-size cap; the parser bounds recursion), so a
///     fuzzer cannot stack-overflow it;
///   - integers are kept exact: a number without fraction/exponent that
///     fits int64 stays an int64 (query inputs are exact integers — going
///     through double would silently corrupt values above 2^53);
///   - objects preserve insertion order in a flat vector (lookup is linear
///     — protocol objects are tiny), so nothing here iterates an unordered
///     container and serialization round-trips byte-stably;
///   - malformed input throws util::ParseError with a byte offset, and the
///     server maps that to a structured error frame, never a crash.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fannet::serve {

/// One parsed JSON value (null / bool / int64 / double / string / array /
/// object).  Value-semantic tree; cheap to move, deep to copy.
class Json {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kInt,     ///< number with no fraction/exponent, exactly representable
    kDouble,  ///< any other number
    kString,
    kArray,
    kObject,
  };

  /// Ordered key/value storage: preserves input order, deterministic to
  /// re-serialize, and never iterates in hash order.
  using Object = std::vector<std::pair<std::string, Json>>;
  using Array = std::vector<Json>;

  Json() = default;  // null
  static Json null() { return Json(); }
  static Json boolean(bool v);
  static Json integer(std::int64_t v);
  static Json number(double v);
  static Json string(std::string v);
  static Json array(Array v = {});
  static Json object(Object v = {});

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_int() const noexcept { return type_ == Type::kInt; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  /// Typed accessors; each throws util::ParseError on a type mismatch so
  /// schema validation reads as straight-line code in the protocol layer.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;  ///< kInt only (exactness)
  [[nodiscard]] double as_double() const;     ///< any number
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object field lookup (linear scan — protocol objects are tiny);
  /// nullptr when absent or when this value is not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;

  /// Serializes back to compact JSON (no whitespace).  Doubles use
  /// round-trippable formatting; strings are escaped per RFC 8259.
  [[nodiscard]] std::string dump() const;

  /// Appends a field to an object / element to an array (builder surface
  /// for the response writers).  Throws util::ParseError on wrong type.
  void set(std::string key, Json value);
  void push_back(Json value);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one complete JSON document; trailing non-whitespace is an error.
/// Throws util::ParseError (with a byte offset) on malformed input, on
/// nesting deeper than `max_depth`, and on numbers outside the grammar.
[[nodiscard]] Json parse_json(std::string_view text, std::size_t max_depth = 64);

/// RFC 8259 string escaping (shared with the hand-built response writers).
[[nodiscard]] std::string escape_json(std::string_view s);

}  // namespace fannet::serve
