/// \file
/// \brief `fannet_serve` — the long-running verification service
///   (DESIGN.md §14, docs/serve.md).
///
/// A `Server` owns a fleet of quantized networks loaded once at startup and
/// answers P2 verification queries and analysis requests (tolerance
/// descents, sensitivity probes, weight-fault scans) over a TCP socket
/// speaking the length-prefixed JSON protocol (serve/protocol.hpp).  The
/// pieces that make it a *service* rather than a CLI in a loop:
///
///   - one process-wide `QueryCache` shared by every connection, so a
///     verdict decided for one client answers the next client's identical
///     query from memory;
///   - one process-wide `ThreadBudget`: each in-flight request constructs
///     its own (cheap, fork-join) `verify::Scheduler` but draws its worker
///     grant from the shared budget, so N concurrent clients share the
///     machine instead of oversubscribing it N-fold;
///   - per-request deadlines (`deadline_ms`, falling back to the server
///     default) armed through `SchedulerOptions::deadline_ms` — one slow
///     request expires alone, it never stalls its neighbours;
///   - cancel-on-disconnect: each connection runs a reader thread and a
///     worker thread; when the reader sees EOF it cancels the worker's
///     active `BatchControl`, so a vanished client's batch stops at the
///     next task-step boundary instead of running to completion;
///   - capability-based admission control: requests that will dispatch a
///     *complete* engine (Engine::caps().complete) are rejected with a
///     structured `saturated` error (and a retry_after_ms hint) once the
///     across-session heavy-request count reaches `max_inflight`;
///     introspection is always admitted;
///   - graceful drain: `request_drain()` stops accepting connections and
///     new requests, lets queued work finish, and `wait()` joins every
///     thread — the SIGTERM path of tools/fannet_serve.cpp.
///
/// Everything here is transport-thin: request execution delegates to the
/// same scheduler/engine/analysis substrate the CLI uses, and the analysis
/// request handlers mirror the core algorithms probe-for-probe so responses
/// are bit-identical to direct library calls (the serve integration tests
/// and bench_serve gate exactly that).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/casestudy.hpp"
#include "la/matrix.hpp"
#include "nn/quantized.hpp"
#include "serve/protocol.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "verify/query_cache.hpp"
#include "verify/scheduler.hpp"

namespace fannet::serve {

/// One served network plus the sample set its set-level analyses
/// (weight_faults) run against.
struct ServeModel {
  std::string name;
  nn::QuantizedNetwork net;
  la::Matrix<util::i64> inputs;  ///< test inputs (weight-fault scans)
  std::vector<int> labels;       ///< test labels, one per input row
};

/// The default fleet: the paper's §V case study under its small-cohort
/// test configuration, registered as "casestudy".  `full` loads the full
/// 7129-gene cohort instead (slower; the daemon's production default).
[[nodiscard]] std::vector<ServeModel> default_fleet(bool full = false);

/// Server construction-time configuration.
struct ServeOptions {
  /// TCP port to bind on 127.0.0.1; 0 = ephemeral (query via
  /// Server::port() — how the in-process test harness connects).
  std::uint16_t port = 0;
  /// Process-wide worker budget shared by all in-flight requests;
  /// 0 = one per hardware thread.
  std::size_t threads = 0;
  /// Admission-control ceiling on concurrently queued-or-executing
  /// complete-engine requests across all connections; 0 = 2x threads.
  std::size_t max_inflight = 0;
  /// Deadline applied to requests that carry no `deadline_ms` of their
  /// own; 0 = none.
  std::uint64_t default_deadline_ms = 0;
  /// Per-frame payload cap; clamped to kDefaultMaxFrameBytes.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Hint returned with `saturated` rejections.
  std::uint64_t retry_after_ms = 100;
  /// Mid-frame stall budget (slowloris defense); 0 disables.
  std::uint64_t stall_ms = 5000;
  /// Upper bound on `batch` request items (and array fields generally).
  std::size_t max_batch_items = 4096;
  /// Shared verdict cache; null runs uncached.  Caller retains ownership.
  verify::QueryCache* cache = nullptr;
  /// Task-step granularity forwarded to every scheduler (0 = default).
  /// Smaller steps tighten deadline overshoot and cancel latency.
  std::uint64_t step_work = 0;
};

/// Monotone counters, snapshotted by Server::stats() (and served to
/// clients by the `stats` request).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t requests = 0;           ///< well-formed requests admitted
  std::uint64_t results = 0;            ///< `result` frames written
  std::uint64_t errors = 0;             ///< `error` frames written
  std::uint64_t rejected_saturated = 0; ///< admission-control rejections
  std::uint64_t cancelled_disconnect = 0;  ///< batches cancelled by EOF
  std::uint64_t deadline_expired = 0;   ///< queries expired across requests
  std::uint64_t cache_hits = 0;         ///< scheduler-reported, all requests
  std::uint64_t cache_misses = 0;
  std::uint64_t progress_frames = 0;
};

/// Counting semaphore over the server's worker pool: every in-flight
/// request acquires a grant (blocking until at least one worker frees up)
/// and sizes its scheduler to the grant, so concurrent requests divide the
/// machine instead of each assuming it is alone.
class ThreadBudget {
 public:
  explicit ThreadBudget(std::size_t total) : total_(total), free_(total) {}

  /// Blocks until at least one worker is free, then takes
  /// min(want, free, total) workers and returns the grant (>= 1).
  [[nodiscard]] std::size_t acquire(std::size_t want);
  /// Returns `grant` workers to the pool.
  void release(std::size_t grant);

  [[nodiscard]] std::size_t total() const noexcept { return total_; }

 private:
  const std::size_t total_;
  util::Mutex mutex_;
  util::CondVar cv_;
  std::size_t free_ FANNET_GUARDED_BY(mutex_);
};

/// The service.  Construct with a fleet, `start()`, then `wait()` (blocks
/// until a drain completes).  Thread-safe: `request_drain()` and `stats()`
/// may be called from any thread (including a signal-watcher thread).
class Server {
 public:
  Server(std::vector<ServeModel> fleet, ServeOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:port, listens, and spawns the accept loop.  Throws
  /// util::Error when the socket cannot be bound.
  void start();

  /// The bound port (valid after start(); resolves port 0 to the actual
  /// ephemeral port).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Begins a graceful drain: stop accepting connections, answer new
  /// requests on existing connections with `shutting_down`, cancel nothing
  /// already queued — queued work finishes and its responses are written.
  /// Idempotent, safe from any thread.
  void request_drain();

  /// Blocks until the drain completes and every session thread is joined.
  void wait();

  /// request_drain() + wait().  Also runs from the destructor, so a Server
  /// going out of scope never leaks a thread.
  void stop();

  [[nodiscard]] ServerStats stats() const;

 private:
  struct Session;
  /// RAII registration of a request's BatchControl on its session, so the
  /// reader thread can cancel it on disconnect (defined in server.cpp with
  /// the Session layout).
  class ActiveControl;

  void accept_loop();
  void reader_loop(Session& session);
  void worker_loop(Session& session);

  /// Executes one admitted request and writes its frames.  Never throws:
  /// engine exceptions become `internal` error frames.
  void execute(Session& session, const Request& request);

  /// Request handlers (each returns the `result` body or throws — the
  /// caller maps exceptions onto error frames).
  [[nodiscard]] Json handle_verify(Session& session, const Request& request);
  [[nodiscard]] Json handle_batch(Session& session, const Request& request);
  [[nodiscard]] Json handle_tolerance(Session& session,
                                      const Request& request);
  [[nodiscard]] Json handle_sensitivity(Session& session,
                                        const Request& request);
  [[nodiscard]] Json handle_weight_faults(const Request& request);
  [[nodiscard]] Json handle_models() const;
  [[nodiscard]] Json handle_engines() const;
  [[nodiscard]] Json handle_stats() const;

  [[nodiscard]] const ServeModel& model_or_throw(const std::string& name) const;

  /// Builds the per-request scheduler options: grant-sized workers, the
  /// shared cache, the request's (or default) deadline.
  [[nodiscard]] verify::SchedulerOptions scheduler_options(
      std::size_t grant, const Request& request) const;

  /// Takes a worker grant from the shared budget, sized to divide the pool
  /// across the currently in-flight heavy requests (blocks while all
  /// workers are taken).  Pair with budget_->release(grant).
  [[nodiscard]] std::size_t acquire_grant();

  /// True when the request's engine dispatch is subject to admission
  /// control (complete engines saturate the queue; sound-only screens and
  /// introspection always pass).
  [[nodiscard]] bool needs_admission(const Request& request) const;

  void reap_finished_sessions();

  std::vector<ServeModel> fleet_;
  ServeOptions options_;
  std::size_t worker_total_ = 1;
  std::unique_ptr<ThreadBudget> budget_;
  std::uint16_t port_ = 0;
  /// Atomic: request_drain() (any thread) shuts it down while the accept
  /// loop reads it; the actual close() waits for the accept thread to
  /// join so the descriptor can never be reused under a racing accept().
  std::atomic<int> listen_fd_{-1};
  std::thread accept_thread_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> joined_{false};

  mutable util::Mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_
      FANNET_GUARDED_BY(sessions_mutex_);

  /// Heavy (complete-engine) requests queued or executing, fleet-wide.
  std::atomic<std::size_t> heavy_inflight_{0};

  // stats counters (relaxed; snapshotted by stats())
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_active_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> results_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> rejected_saturated_{0};
  std::atomic<std::uint64_t> cancelled_disconnect_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> progress_frames_{0};
};

}  // namespace fannet::serve
