/// \file
/// \brief `fannet_serve` wire protocol: length-prefixed JSON frames
///   (DESIGN.md §14, docs/serve.md).
///
/// Every message in either direction is one *frame*: a 4-byte big-endian
/// unsigned payload length followed by exactly that many bytes of UTF-8
/// JSON.  Length 0 and lengths above the server's frame cap are protocol
/// errors (the server answers with a structured `error` frame, then closes).
/// Frames are self-delimiting, so one connection carries any number of
/// requests and interleaved responses/progress frames.
///
/// Requests carry a client-chosen `id` echoed on every frame the server
/// emits for them, so a pipelining client can match responses.  The request
/// surface (docs/serve.md has the full schemas):
///
///   ping | models | engines | stats      introspection, always admitted
///   verify                               one P2 query -> one result frame
///   batch                                many P2 boxes -> progress frames +
///                                        one result frame with all verdicts
///   tolerance                            per-sample min-flip-range descent
///   sensitivity                          directional / solo node probe
///   weight_faults                        parameter-fault scan summary
///
/// Server -> client frame types: `result`, `progress`, `error`, `pong`.
/// `error` frames carry a stable `code` (docs/serve.md lists them) and,
/// for admission-control rejections, a `retry_after_ms` hint.
///
/// This header is transport-free: framing works over any file descriptor
/// (the server's accepted sockets, the test harness's client sockets), and
/// parse/serialize work on strings — which is what lets the protocol fuzz
/// suite attack the decoder without a network in the loop.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/json.hpp"
#include "verify/query.hpp"

namespace fannet::serve {

/// Hard ceiling a frame length prefix may claim by default (1 MiB).  The
/// server's per-instance cap (`ServeOptions::max_frame_bytes`) may lower it
/// but never raise it above this sanity bound.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

/// Stable error codes carried in `error` frames.  String-typed on the wire;
/// the enum exists so server and tests never drift on spelling.
enum class ErrorCode : std::uint8_t {
  kBadFrame,      ///< zero-length or malformed frame prefix
  kOversized,     ///< length prefix above the server's frame cap
  kBadJson,       ///< payload is not valid JSON
  kBadRequest,    ///< JSON is valid but violates the request schema
  kUnknownModel,  ///< `model` names nothing in the fleet
  kUnknownEngine, ///< `engine` names nothing in the registry
  kSaturated,     ///< admission control rejected (complete-engine queue full)
  kShuttingDown,  ///< server is draining; no new work accepted
  kTimeout,       ///< client stalled mid-frame (slowloris defense)
  kInternal,      ///< engine exception; message carries what()
};

[[nodiscard]] std::string_view error_code_name(ErrorCode code);

/// One P2 box in a request: either a symmetric `range` or explicit
/// per-dimension bounds.  `lo`/`hi` empty means "symmetric(range)".
struct RequestBox {
  int range = 0;
  std::vector<int> lo, hi;
};

/// A parsed, schema-validated client request.  Exactly the fields the
/// session manager needs; unknown JSON fields are ignored (forward
/// compatibility), missing/ill-typed required fields throw ParseError.
struct Request {
  std::uint64_t id = 0;
  std::string type;
  std::string model;             ///< fleet key (verify/batch/analyses)
  std::string engine = "cascade";
  std::vector<util::i64> x;      ///< base input (verify/tolerance/sensitivity)
  int true_label = 0;
  bool bias_node = false;
  RequestBox box;                ///< verify / sensitivity range
  std::vector<RequestBox> items; ///< batch: one box per item (same x/label)
  std::uint64_t deadline_ms = 0; ///< per-request deadline; 0 = server default
  std::size_t progress_every = 0;  ///< batch/tolerance progress cadence
  int start_range = 50;          ///< tolerance descent start
  std::size_t node = 0;          ///< sensitivity probe node
  int direction = 0;             ///< sensitivity: +1 / -1 directional, 0 solo
  int max_percent = 10;          ///< weight_faults scan limit
  int step = 1;                  ///< weight_faults percent granularity
  std::string fault_model = "percent";
};

/// Parses and validates one request payload.  Throws util::ParseError with
/// a human-readable message (field names included) on any schema violation;
/// the server maps that to a `bad_request` error frame.
[[nodiscard]] Request parse_request(std::string_view payload,
                                    std::size_t max_items = 4096);

// --- response builders (all return complete JSON payloads) -----------------

[[nodiscard]] std::string make_pong(std::uint64_t id);
[[nodiscard]] std::string make_error(std::uint64_t id, ErrorCode code,
                                     std::string_view message,
                                     std::uint64_t retry_after_ms = 0);
[[nodiscard]] std::string make_progress(std::uint64_t id, std::size_t done,
                                        std::size_t total);

/// One VerifyResult as a JSON object value (shared by `result` frames for
/// verify / batch / sensitivity).  `cache_hit` is emitted only when known
/// (single-query requests report it; batch items carry only the batch
/// aggregate).
[[nodiscard]] Json verify_result_json(
    const verify::VerifyResult& result,
    std::optional<bool> cache_hit = std::nullopt);
[[nodiscard]] std::string make_result(std::uint64_t id, Json body);

// --- framing over a file descriptor ----------------------------------------

/// Outcome of read_frame: distinguishes "clean close between frames" from
/// every flavour of torn/oversized/stalled input so the session layer can
/// answer each one correctly.
enum class FrameStatus : std::uint8_t {
  kOk,         ///< payload holds one complete frame
  kClosed,     ///< EOF on a frame boundary (clean close)
  kTorn,       ///< EOF / error mid-frame (torn length prefix or payload)
  kOversized,  ///< length prefix exceeded the cap (stream now unusable)
  kBadLength,  ///< zero-length frame
  kTimeout,    ///< stalled mid-frame past the stall budget (slowloris)
};

/// Reads one frame from `fd`.  Blocks between frames indefinitely (idle
/// persistent connections are legal); once the first byte of a frame
/// arrives, the remainder must land within `stall_ms` milliseconds total
/// (0 = no stall budget).  Requires the fd to have an O(100ms) SO_RCVTIMEO
/// so the stall budget is actually polled; read_frame arranges nothing
/// itself.  On kOk, `payload` holds the frame body.
[[nodiscard]] FrameStatus read_frame(int fd, std::size_t max_bytes,
                                     std::uint64_t stall_ms,
                                     std::string& payload);

/// Writes one frame (4-byte big-endian length + payload) to `fd`.
/// Returns false when the peer is gone (EPIPE/ECONNRESET — the caller
/// treats it as a disconnect, never a crash; SIGPIPE is suppressed).
[[nodiscard]] bool write_frame(int fd, std::string_view payload);

}  // namespace fannet::serve
