#include "serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace fannet::serve {

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  throw ParseError("json: " + what + " at byte " + std::to_string(offset));
}

/// Recursive-descent parser over a bounded string_view.  The depth budget
/// decrements on every container; the frame-size cap bounds everything
/// else.
class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Json parse_document() {
    Json v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(std::size_t depth) {
    if (depth > max_depth_) fail(pos_, "nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Json::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail(pos_, "bad literal");
        return Json::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail(pos_, "bad literal");
        return Json::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail(pos_, "bad literal");
        return Json::null();
      default:
        return parse_number();
    }
  }

  Json parse_object(std::size_t depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return obj;
      }
      fail(pos_, "expected ',' or '}'");
    }
  }

  Json parse_array(std::size_t depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return arr;
      }
      fail(pos_, "expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          const std::uint32_t cp = parse_hex4();
          // Protocol payloads are ASCII in practice; encode the code point
          // as UTF-8 (surrogate pairs collapse to U+FFFD — the serving
          // schema never carries them, and replacing beats rejecting).
          encode_utf8(cp, out);
          break;
        }
        default:
          fail(pos_ - 1, "bad escape");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail(pos_ - 1, "bad \\u escape digit");
      }
    }
    return v;
  }

  static void encode_utf8(std::uint32_t cp, std::string& out) {
    if (cp >= 0xD800 && cp <= 0xDFFF) cp = 0xFFFD;
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool has_digits = false;
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      has_digits = true;
    }
    if (!has_digits) fail(start, "bad number");
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      bool frac = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        frac = true;
      }
      if (!frac) fail(pos_, "bad number fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      bool exp = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        exp = true;
      }
      if (!exp) fail(pos_, "bad number exponent");
    }
    const std::string_view lexeme = text_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t v = 0;
      const auto [ptr, ec] =
          std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), v);
      if (ec == std::errc() && ptr == lexeme.data() + lexeme.size()) {
        return Json::integer(v);
      }
      // Integral but outside int64: fall through to double (lossy but
      // in-grammar; the typed accessors reject it where exactness matters).
    }
    double d = 0.0;
    const auto [ptr, ec] =
        std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), d);
    if (ec != std::errc() || ptr != lexeme.data() + lexeme.size() ||
        !std::isfinite(d)) {
      fail(start, "unrepresentable number");
    }
    return Json::number(d);
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::boolean(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::integer(std::int64_t v) {
  Json j;
  j.type_ = Type::kInt;
  j.int_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kDouble;
  j.double_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::array(Array v) {
  Json j;
  j.type_ = Type::kArray;
  j.array_ = std::move(v);
  return j;
}

Json Json::object(Object v) {
  Json j;
  j.type_ = Type::kObject;
  j.object_ = std::move(v);
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw ParseError("json: not a bool");
  return bool_;
}

std::int64_t Json::as_int() const {
  if (type_ != Type::kInt) throw ParseError("json: not an exact integer");
  return int_;
}

double Json::as_double() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  if (type_ != Type::kDouble) throw ParseError("json: not a number");
  return double_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw ParseError("json: not a string");
  return string_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) throw ParseError("json: not an array");
  return array_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) throw ParseError("json: not an object");
  return object_;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::set(std::string key, Json value) {
  if (type_ != Type::kObject) throw ParseError("json: set() on non-object");
  object_.emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) {
  if (type_ != Type::kArray) throw ParseError("json: push_back on non-array");
  array_.push_back(std::move(value));
}

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string Json::dump() const {
  switch (type_) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return bool_ ? "true" : "false";
    case Type::kInt:
      return std::to_string(int_);
    case Type::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", double_);
      return buf;
    }
    case Type::kString:
      return '"' + escape_json(string_) + '"';
    case Type::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        out += array_[i].dump();
      }
      out += ']';
      return out;
    }
    case Type::kObject: {
      std::string out = "{";
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        out += '"' + escape_json(object_[i].first) + "\":";
        out += object_[i].second.dump();
      }
      out += '}';
      return out;
    }
  }
  return "null";  // unreachable
}

Json parse_json(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).parse_document();
}

}  // namespace fannet::serve
