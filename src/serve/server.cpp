#include "serve/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <utility>

#include "core/fannet.hpp"
#include "core/faults.hpp"
#include "util/error.hpp"
#include "verify/engine.hpp"

namespace fannet::serve {

using verify::NoiseBox;
using verify::Query;
using verify::Verdict;
using verify::VerifyResult;

namespace {

/// Handler-to-error-frame carrier: handlers throw it to pick the exact
/// wire error code (execute() maps generic exceptions onto kBadRequest /
/// kInternal).
struct ServeError {
  ErrorCode code;
  std::string message;
};

/// SO_RCVTIMEO poll tick: how often a blocked read_frame re-checks its
/// stall budget (and how quickly a drain's SHUT_RD is noticed at worst).
constexpr long kRecvTickMicros = 100000;  // 100 ms

void set_recv_tick(int fd) {
  timeval tv{};
  tv.tv_sec = 0;
  tv.tv_usec = kRecvTickMicros;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  // Result frames are small and latency-bound: without TCP_NODELAY, Nagle
  // against the peer's delayed ACK adds ~40ms to every response.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

std::string fingerprint_hex(std::uint64_t fp) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[fp & 0xF];
    fp >>= 4;
  }
  return out;
}

}  // namespace

std::vector<ServeModel> default_fleet(bool full) {
  const core::CaseStudyConfig config =
      full ? core::CaseStudyConfig{} : core::small_case_study_config();
  core::CaseStudy study = core::build_case_study(config);
  std::vector<ServeModel> fleet;
  fleet.push_back(ServeModel{.name = "casestudy",
                             .net = std::move(study.qnet),
                             .inputs = std::move(study.test_x),
                             .labels = std::move(study.test_y)});
  return fleet;
}

std::size_t ThreadBudget::acquire(std::size_t want) {
  want = std::clamp<std::size_t>(want, 1, total_);
  const util::MutexLock lock(mutex_);
  cv_.wait(mutex_, [this]() FANNET_REQUIRES(mutex_) { return free_ > 0; });
  const std::size_t grant = std::min(want, free_);
  free_ -= grant;
  return grant;
}

void ThreadBudget::release(std::size_t grant) {
  {
    const util::MutexLock lock(mutex_);
    free_ = std::min(free_ + grant, total_);
  }
  cv_.notify_all();
}

/// Per-connection state: a reader thread (frame parse + admission +
/// enqueue) and a worker thread (execute + write — the connection's single
/// writer).  The reader cancels `active` on EOF so a vanished client's
/// batch stops at the next task-step boundary.
struct Server::Session {
  int fd = -1;
  std::thread reader;
  std::thread worker;

  util::Mutex mutex;
  util::CondVar cv;

  /// One queued unit of work: either an admitted request to execute, or a
  /// pre-rendered frame (protocol error, shutdown notice) to write.
  struct Pending {
    std::optional<Request> request;
    std::string payload;      ///< pre-rendered frame when !request
    bool heavy = false;       ///< holds a heavy_inflight_ slot
    bool close_after = false; ///< stream unusable after this frame
  };
  std::deque<Pending> queue FANNET_GUARDED_BY(mutex);
  bool closed FANNET_GUARDED_BY(mutex) = false;     ///< no more input
  bool peer_gone FANNET_GUARDED_BY(mutex) = false;  ///< stop writing
  /// Client-initiated EOF (as opposed to a server drain): queued and
  /// future work for this session is cancelled, not finished.
  bool disconnected FANNET_GUARDED_BY(mutex) = false;
  verify::BatchControl* active FANNET_GUARDED_BY(mutex) = nullptr;

  std::atomic<bool> finished{false};  ///< both loops done (reap signal)
};

/// Registers `control` as the session's in-flight batch for its lifetime.
/// Registration and the disconnect check happen under one lock, so a
/// disconnect always lands: either the reader sees `active` and cancels it
/// directly, or this constructor sees `disconnected` and self-cancels.
class Server::ActiveControl {
 public:
  ActiveControl(Server& server, Session& session,
                verify::BatchControl& control)
      : session_(session) {
    const util::MutexLock lock(session_.mutex);
    session_.active = &control;
    if (session_.disconnected || session_.peer_gone) {
      // The client vanished while this request waited for a worker grant:
      // the reader found no active control to cancel, so the disconnect is
      // accounted for here instead (the two paths are disjoint — the
      // reader only counts when `active` was already registered).
      control.cancel();
      server.cancelled_disconnect_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ~ActiveControl() {
    const util::MutexLock lock(session_.mutex);
    session_.active = nullptr;
  }
  ActiveControl(const ActiveControl&) = delete;
  ActiveControl& operator=(const ActiveControl&) = delete;

 private:
  Session& session_;
};

Server::Server(std::vector<ServeModel> fleet, ServeOptions options)
    : fleet_(std::move(fleet)), options_(options) {
  if (fleet_.empty()) throw InvalidArgument("serve: empty model fleet");
  worker_total_ = options_.threads != 0
                      ? options_.threads
                      : std::max<std::size_t>(
                            1, std::thread::hardware_concurrency());
  if (options_.max_inflight == 0) options_.max_inflight = 2 * worker_total_;
  options_.max_frame_bytes =
      std::clamp<std::size_t>(options_.max_frame_bytes, 16,
                              kDefaultMaxFrameBytes);
  budget_ = std::make_unique<ThreadBudget>(worker_total_);
}

Server::~Server() { stop(); }

void Server::start() {
  if (started_.exchange(true)) {
    throw InvalidArgument("serve: start() called twice");
  }
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) throw Error("serve: socket() failed");
  const int one = 1;
  (void)::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const int err = errno;
    ::close(listen_fd);
    throw Error("serve: bind() failed: " + std::string(std::strerror(err)));
  }
  if (::listen(listen_fd, 64) < 0) {
    ::close(listen_fd);
    throw Error("serve: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  listen_fd_.store(listen_fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t len = sizeof peer;
    const int fd = ::accept(listen_fd_.load(std::memory_order_acquire),
                            reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listen socket closed (drain) or fatal accept error: stop accepting.
      return;
    }
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    set_recv_tick(fd);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_active_.fetch_add(1, std::memory_order_relaxed);

    auto session = std::make_unique<Session>();
    session->fd = fd;
    Session& ref = *session;
    {
      const util::MutexLock lock(sessions_mutex_);
      sessions_.push_back(std::move(session));
    }
    ref.reader = std::thread([this, &ref] { reader_loop(ref); });
    ref.worker = std::thread([this, &ref] { worker_loop(ref); });
    reap_finished_sessions();
  }
}

void Server::reap_finished_sessions() {
  std::vector<std::unique_ptr<Session>> done;
  {
    const util::MutexLock lock(sessions_mutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if ((*it)->finished.load(std::memory_order_acquire)) {
        done.push_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& session : done) {
    if (session->reader.joinable()) session->reader.join();
    if (session->worker.joinable()) session->worker.join();
    if (session->fd >= 0) ::close(session->fd);
  }
}

bool Server::needs_admission(const Request& request) const {
  if (request.type == "weight_faults") return true;  // always a full scan
  if (request.type != "verify" && request.type != "batch" &&
      request.type != "tolerance" && request.type != "sensitivity") {
    return false;  // introspection (and unknown types, rejected later)
  }
  if (!verify::registry().contains(request.engine)) return false;
  return verify::engine(request.engine).caps().complete;
}

void Server::reader_loop(Session& session) {
  std::string payload;
  for (;;) {
    const FrameStatus status = read_frame(
        session.fd, options_.max_frame_bytes, options_.stall_ms, payload);

    if (status == FrameStatus::kClosed || status == FrameStatus::kTorn) {
      // EOF.  A *drain* closes the read side server-side: accepted work
      // must still finish and be answered.  A client disconnect means
      // nobody is listening: cancel the active batch and flag the session
      // so later-dequeued requests self-cancel too.
      const bool drain = draining_.load(std::memory_order_acquire);
      const util::MutexLock lock(session.mutex);
      session.closed = true;
      if (status == FrameStatus::kTorn) session.peer_gone = true;
      if (!drain || status == FrameStatus::kTorn) {
        session.disconnected = true;
        if (session.active != nullptr) {
          session.active->cancel();
          cancelled_disconnect_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      session.cv.notify_all();
      return;
    }

    if (status != FrameStatus::kOk) {
      // Protocol violation: answer with a structured error, then close
      // (after an oversized/stalled frame the stream has lost framing).
      Session::Pending item;
      item.close_after = true;
      switch (status) {
        case FrameStatus::kOversized:
          item.payload = make_error(0, ErrorCode::kOversized,
                                    "frame exceeds the server's size cap");
          break;
        case FrameStatus::kBadLength:
          item.payload =
              make_error(0, ErrorCode::kBadFrame, "zero-length frame");
          break;
        default:
          item.payload = make_error(0, ErrorCode::kTimeout,
                                    "stalled mid-frame past the stall budget");
          break;
      }
      const util::MutexLock lock(session.mutex);
      session.closed = true;
      session.queue.push_back(std::move(item));
      session.cv.notify_all();
      return;
    }

    Session::Pending item;
    try {
      item.request = parse_request(payload, options_.max_batch_items);
    } catch (const ParseError& e) {
      const std::string_view what = e.what();
      const ErrorCode code = what.substr(0, 5) == "json:"
                                 ? ErrorCode::kBadJson
                                 : ErrorCode::kBadRequest;
      item.request.reset();
      item.payload = make_error(0, code, what);
    }

    if (item.request.has_value()) {
      if (draining_.load(std::memory_order_acquire)) {
        item.payload = make_error(item.request->id, ErrorCode::kShuttingDown,
                                  "server is draining");
        item.request.reset();
      } else if (needs_admission(*item.request)) {
        const std::size_t inflight =
            heavy_inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (inflight > options_.max_inflight) {
          heavy_inflight_.fetch_sub(1, std::memory_order_acq_rel);
          rejected_saturated_.fetch_add(1, std::memory_order_relaxed);
          item.payload = make_error(
              item.request->id, ErrorCode::kSaturated,
              "complete-engine queue is full", options_.retry_after_ms);
          item.request.reset();
        } else {
          item.heavy = true;
        }
      }
    }
    if (item.request.has_value()) {
      requests_.fetch_add(1, std::memory_order_relaxed);
    }
    const util::MutexLock lock(session.mutex);
    session.queue.push_back(std::move(item));
    session.cv.notify_all();
  }
}

void Server::worker_loop(Session& session) {
  for (;;) {
    Session::Pending item;
    {
      const util::MutexLock lock(session.mutex);
      session.cv.wait(session.mutex, [&]() FANNET_REQUIRES(session.mutex) {
        return !session.queue.empty() || session.closed;
      });
      if (session.queue.empty()) break;  // closed and drained
      item = std::move(session.queue.front());
      session.queue.pop_front();
    }

    bool close_now = item.close_after;
    if (item.request.has_value()) {
      bool skip;
      {
        const util::MutexLock lock(session.mutex);
        skip = session.peer_gone;
      }
      if (!skip) execute(session, *item.request);
      if (item.heavy) {
        heavy_inflight_.fetch_sub(1, std::memory_order_acq_rel);
      }
    } else {
      bool gone;
      {
        const util::MutexLock lock(session.mutex);
        gone = session.peer_gone;
      }
      if (!gone) {
        if (write_frame(session.fd, item.payload)) {
          errors_.fetch_add(1, std::memory_order_relaxed);
        } else {
          const util::MutexLock lock(session.mutex);
          session.peer_gone = true;
        }
      }
    }
    if (close_now) {
      const util::MutexLock lock(session.mutex);
      session.closed = true;
      session.peer_gone = true;
    }
  }
  // All responses are written (this thread is the connection's single
  // writer), so send the client its FIN and force EOF on a reader still
  // parked in recv (e.g. after a close_after error frame), then flag for
  // the reaper.  The fd itself is closed when the session is reaped.
  (void)::shutdown(session.fd, SHUT_RDWR);
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
  session.finished.store(true, std::memory_order_release);
}

verify::SchedulerOptions Server::scheduler_options(
    std::size_t grant, const Request& request) const {
  verify::SchedulerOptions opts;
  opts.threads = grant;
  opts.cache = options_.cache;
  opts.deadline_ms = request.deadline_ms != 0 ? request.deadline_ms
                                              : options_.default_deadline_ms;
  opts.step_work = options_.step_work;
  return opts;
}

const ServeModel& Server::model_or_throw(const std::string& name) const {
  for (const ServeModel& model : fleet_) {
    if (model.name == name) return model;
  }
  throw ServeError{ErrorCode::kUnknownModel,
                   "unknown model '" + name + "'"};
}

namespace {

const verify::Engine& engine_or_throw(const std::string& name) {
  if (!verify::registry().contains(name)) {
    throw ServeError{ErrorCode::kUnknownEngine,
                     "unknown engine '" + name + "'"};
  }
  return verify::engine(name);
}

/// Resolves a request box against the query's noise dimensionality:
/// explicit lo/hi pass through (Query::validate rejects a shape mismatch),
/// bare `range` expands to the symmetric box.
NoiseBox resolve_box(const RequestBox& box, std::size_t dims) {
  if (!box.lo.empty()) return NoiseBox{box.lo, box.hi};
  return NoiseBox::symmetric(dims, box.range);
}

}  // namespace

std::size_t Server::acquire_grant() {
  const std::size_t inflight = std::max<std::size_t>(
      1, heavy_inflight_.load(std::memory_order_relaxed));
  return budget_->acquire(std::max<std::size_t>(1, worker_total_ / inflight));
}

void Server::execute(Session& session, const Request& request) {
  std::string frame;
  try {
    if (request.type == "ping") {
      frame = make_pong(request.id);
    } else if (request.type == "models") {
      frame = make_result(request.id, handle_models());
    } else if (request.type == "engines") {
      frame = make_result(request.id, handle_engines());
    } else if (request.type == "stats") {
      frame = make_result(request.id, handle_stats());
    } else if (request.type == "verify") {
      frame = make_result(request.id, handle_verify(session, request));
    } else if (request.type == "batch") {
      frame = make_result(request.id, handle_batch(session, request));
    } else if (request.type == "tolerance") {
      frame = make_result(request.id, handle_tolerance(session, request));
    } else if (request.type == "sensitivity") {
      frame = make_result(request.id, handle_sensitivity(session, request));
    } else if (request.type == "weight_faults") {
      frame = make_result(request.id, handle_weight_faults(request));
    } else {
      throw ServeError{ErrorCode::kBadRequest,
                       "unknown request type '" + request.type + "'"};
    }
  } catch (const ServeError& e) {
    frame = make_error(request.id, e.code, e.message);
  } catch (const InvalidArgument& e) {
    frame = make_error(request.id, ErrorCode::kBadRequest, e.what());
  } catch (const ParseError& e) {
    frame = make_error(request.id, ErrorCode::kBadRequest, e.what());
  } catch (const std::exception& e) {
    frame = make_error(request.id, ErrorCode::kInternal, e.what());
  }

  bool gone;
  {
    const util::MutexLock lock(session.mutex);
    gone = session.peer_gone;
  }
  if (gone) return;
  // Count before writing: a client holding its reply must find it already
  // reflected in `stats` (the race suite and the smoke driver both snapshot
  // counters right after the last response arrives).  On a failed write the
  // frame was still produced; the disconnect shows up in peer_gone and
  // cancelled_disconnect, not by rolling these back.
  // Crude but adequate: an `error` frame is exactly one whose payload says
  // "type":"error" at the top level (our own serializer wrote it).
  if (frame.find("\"type\":\"error\"") != std::string::npos) {
    errors_.fetch_add(1, std::memory_order_relaxed);
  } else {
    results_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!write_frame(session.fd, frame)) {
    const util::MutexLock lock(session.mutex);
    session.peer_gone = true;
  }
}

Json Server::handle_verify(Session& session, const Request& request) {
  const ServeModel& model = model_or_throw(request.model);
  const verify::Engine& eng = engine_or_throw(request.engine);
  const core::Fannet fannet(model.net);
  const Query query = fannet.make_query(
      request.x, request.true_label,
      resolve_box(request.box, request.x.size() + (request.bias_node ? 1 : 0)),
      request.bias_node);

  const std::size_t grant = acquire_grant();
  verify::BatchControl control;
  verify::BatchStats stats;
  std::vector<VerifyResult> results;
  try {
    const ActiveControl scoped(*this, session, control);
    const verify::Scheduler scheduler(scheduler_options(grant, request));
    results = scheduler.run_all(std::span<const Query>(&query, 1), eng,
                                &stats, &control);
  } catch (...) {
    budget_->release(grant);
    throw;
  }
  budget_->release(grant);

  cache_hits_.fetch_add(stats.cache_hits, std::memory_order_relaxed);
  cache_misses_.fetch_add(stats.cache_misses, std::memory_order_relaxed);
  deadline_expired_.fetch_add(stats.deadline_expired,
                              std::memory_order_relaxed);

  Json body = verify_result_json(results.at(0), stats.cache_hits == 1);
  body.set("model", Json::string(request.model));
  body.set("engine", Json::string(request.engine));
  body.set("deadline_expired",
           Json::boolean(stats.deadline_expired > 0));
  body.set("cancelled", Json::boolean(control.cancelled()));
  return body;
}

Json Server::handle_batch(Session& session, const Request& request) {
  const ServeModel& model = model_or_throw(request.model);
  const verify::Engine& eng = engine_or_throw(request.engine);
  const core::Fannet fannet(model.net);
  const std::size_t dims =
      request.x.size() + (request.bias_node ? 1 : 0);

  std::vector<Query> queries;
  queries.reserve(request.items.size());
  for (const RequestBox& box : request.items) {
    queries.push_back(fannet.make_query(request.x, request.true_label,
                                        resolve_box(box, dims),
                                        request.bias_node));
  }

  const std::size_t grant = acquire_grant();
  verify::BatchControl control;

  Json items = Json::array();
  std::uint64_t hits = 0, misses = 0, expired = 0;
  std::size_t executed = 0;
  try {
    const ActiveControl scoped(*this, session, control);
    const verify::Scheduler scheduler(scheduler_options(grant, request));
    // Chunked execution so long sweeps can stream progress frames between
    // scheduler calls; chunking never changes the per-item results (each
    // query is independent and results are slot-addressed).
    const std::size_t chunk = request.progress_every != 0
                                  ? request.progress_every
                                  : queries.size();
    for (std::size_t begin = 0; begin < queries.size(); begin += chunk) {
      const std::size_t count = std::min(chunk, queries.size() - begin);
      verify::BatchStats stats;
      const std::vector<VerifyResult> results = scheduler.run_all(
          std::span<const Query>(queries.data() + begin, count), eng, &stats,
          &control);
      for (const VerifyResult& r : results) {
        items.push_back(verify_result_json(r));
      }
      hits += stats.cache_hits;
      misses += stats.cache_misses;
      expired += stats.deadline_expired;
      executed += stats.executed;
      const std::size_t done = begin + count;
      if (request.progress_every != 0 && done < queries.size()) {
        bool gone;
        {
          const util::MutexLock lock(session.mutex);
          gone = session.peer_gone;
        }
        if (!gone &&
            write_frame(session.fd,
                        make_progress(request.id, done, queries.size()))) {
          progress_frames_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  } catch (...) {
    budget_->release(grant);
    throw;
  }
  budget_->release(grant);

  cache_hits_.fetch_add(hits, std::memory_order_relaxed);
  cache_misses_.fetch_add(misses, std::memory_order_relaxed);
  deadline_expired_.fetch_add(expired, std::memory_order_relaxed);

  Json body = Json::object();
  body.set("model", Json::string(request.model));
  body.set("engine", Json::string(request.engine));
  body.set("items", std::move(items));
  Json stats = Json::object();
  stats.set("queries",
            Json::integer(static_cast<std::int64_t>(queries.size())));
  stats.set("executed", Json::integer(static_cast<std::int64_t>(executed)));
  stats.set("cache_hits", Json::integer(static_cast<std::int64_t>(hits)));
  stats.set("cache_misses", Json::integer(static_cast<std::int64_t>(misses)));
  stats.set("deadline_expired",
            Json::integer(static_cast<std::int64_t>(expired)));
  stats.set("cancelled", Json::boolean(control.cancelled()));
  body.set("stats", std::move(stats));
  return body;
}

Json Server::handle_tolerance(Session& session, const Request& request) {
  const ServeModel& model = model_or_throw(request.model);
  const verify::Engine& eng = engine_or_throw(request.engine);
  const core::Fannet fannet(model.net);
  const std::size_t dims =
      request.x.size() + (request.bias_node ? 1 : 0);

  const std::size_t grant = acquire_grant();
  verify::BatchControl control;

  Json body = Json::object();
  body.set("model", Json::string(request.model));
  body.set("engine", Json::string(request.engine));
  std::uint64_t probes = 0, hits = 0;
  try {
    const ActiveControl scoped(*this, session, control);
    const verify::Scheduler scheduler(scheduler_options(grant, request));

    // Base classification first: a sample the net already misclassifies has
    // no tolerance to measure (mirrors Fannet::analyze_tolerance's P1
    // screen).
    const Query base = fannet.make_query(
        request.x, request.true_label, NoiseBox::symmetric(dims, 0),
        request.bias_node);
    const std::vector<int> zero(dims, 0);
    const bool correct =
        verify::classify_under_noise(base, zero) == request.true_label;
    body.set("correct_without_noise", Json::boolean(correct));

    if (correct) {
      const auto flips_at = [&](int range) {
        ++probes;
        bool hit = false;
        const VerifyResult r = scheduler.verify_one(
            fannet.make_query(request.x, request.true_label,
                              NoiseBox::symmetric(dims, range),
                              request.bias_node),
            eng, &hit);
        if (hit) ++hits;
        return r;
      };
      // The exact binary descent of core::descend_sample (fannet.cpp):
      // screen at start_range, then bisect the minimal flipping range.
      const VerifyResult at_max = flips_at(request.start_range);
      if (at_max.verdict != Verdict::kVulnerable) {
        body.set("min_flip_range", Json::null());
      } else {
        int lo = 1, hi = request.start_range;
        std::optional<verify::Counterexample> witness = at_max.counterexample;
        while (lo < hi && !control.cancelled()) {
          const int mid = lo + (hi - lo) / 2;
          const VerifyResult r = flips_at(mid);
          if (r.verdict == Verdict::kVulnerable) {
            witness = r.counterexample;
            hi = mid;
          } else {
            lo = mid + 1;
          }
        }
        body.set("min_flip_range", Json::integer(lo));
        if (witness.has_value()) {
          Json cex = Json::object();
          Json deltas = Json::array();
          for (const int d : witness->deltas) {
            deltas.push_back(Json::integer(d));
          }
          cex.set("deltas", std::move(deltas));
          cex.set("bias_delta", Json::integer(witness->bias_delta));
          cex.set("mis_label", Json::integer(witness->mis_label));
          body.set("witness", std::move(cex));
        }
        body.set("cancelled", Json::boolean(control.cancelled()));
      }
    }
    body.set("probes", Json::integer(static_cast<std::int64_t>(probes)));
    body.set("cache_hits", Json::integer(static_cast<std::int64_t>(hits)));
    body.set("deadline_expired",
             Json::integer(static_cast<std::int64_t>(
                 scheduler.deadline_expired_total())));
    deadline_expired_.fetch_add(scheduler.deadline_expired_total(),
                                std::memory_order_relaxed);
  } catch (...) {
    budget_->release(grant);
    throw;
  }
  budget_->release(grant);
  cache_hits_.fetch_add(hits, std::memory_order_relaxed);
  cache_misses_.fetch_add(probes - hits, std::memory_order_relaxed);
  return body;
}

Json Server::handle_sensitivity(Session& session, const Request& request) {
  const ServeModel& model = model_or_throw(request.model);
  const verify::Engine& eng = engine_or_throw(request.engine);
  const core::Fannet fannet(model.net);
  const std::size_t n = request.x.size();
  const int range = request.box.range;
  if (!request.box.lo.empty()) {
    throw ServeError{ErrorCode::kBadRequest,
                     "sensitivity takes a symmetric 'range', not lo/hi"};
  }
  if (range < 0) {
    throw ServeError{ErrorCode::kBadRequest, "'range' must be >= 0"};
  }

  const std::size_t grant = acquire_grant();
  verify::BatchControl control;

  Json body = Json::object();
  body.set("model", Json::string(request.model));
  body.set("engine", Json::string(request.engine));
  body.set("node", Json::integer(static_cast<std::int64_t>(request.node)));
  body.set("direction", Json::integer(request.direction));
  std::uint64_t hits = 0, misses = 0;
  try {
    const ActiveControl scoped(*this, session, control);
    const verify::Scheduler scheduler(scheduler_options(grant, request));
    const auto probe = [&](const NoiseBox& box) {
      bool hit = false;
      const VerifyResult r = scheduler.verify_one(
          fannet.make_query(request.x, request.true_label, box, false), eng,
          &hit);
      if (hit) ++hits; else ++misses;
      return r;
    };

    if (request.direction != 0) {
      // core::directional_possible's box, single-sample: other nodes roam
      // +/-range, the probed node is strictly signed.
      NoiseBox box = NoiseBox::symmetric(n, range);
      if (request.direction > 0) box.lo[request.node] = 1;
      else box.hi[request.node] = -1;
      if (box.lo[request.node] > box.hi[request.node]) {
        body.set("possible", Json::boolean(false));
      } else {
        const VerifyResult r = probe(box);
        body.set("possible",
                 Json::boolean(r.verdict == Verdict::kVulnerable));
        body.set("result", verify_result_json(r));
      }
    } else {
      // core::solo_flip's Eq.-3 bisection: only the probed node is noised.
      NoiseBox solo;
      solo.lo.assign(n, 0);
      solo.hi.assign(n, 0);
      solo.lo[request.node] = -range;
      solo.hi[request.node] = range;
      const VerifyResult r = probe(solo);
      if (r.verdict != Verdict::kVulnerable) {
        body.set("min_flip", Json::null());
      } else {
        const int flip_at =
            std::max(std::abs(r.counterexample->deltas[request.node]), 1);
        int lo = 1, hi = flip_at;
        while (lo < hi && !control.cancelled()) {
          const int mid = lo + (hi - lo) / 2;
          NoiseBox step = solo;
          step.lo[request.node] = -mid;
          step.hi[request.node] = mid;
          if (probe(step).verdict == Verdict::kVulnerable) {
            hi = mid;
          } else {
            lo = mid + 1;
          }
        }
        body.set("min_flip", Json::integer(lo));
      }
      body.set("cancelled", Json::boolean(control.cancelled()));
    }
    deadline_expired_.fetch_add(scheduler.deadline_expired_total(),
                                std::memory_order_relaxed);
  } catch (...) {
    budget_->release(grant);
    throw;
  }
  budget_->release(grant);
  cache_hits_.fetch_add(hits, std::memory_order_relaxed);
  cache_misses_.fetch_add(misses, std::memory_order_relaxed);
  return body;
}

Json Server::handle_weight_faults(const Request& request) {
  const ServeModel& model = model_or_throw(request.model);
  const auto fault_model = core::fault_model_from_name(request.fault_model);
  if (!fault_model.has_value()) {
    throw ServeError{ErrorCode::kBadRequest,
                     "unknown fault_model '" + request.fault_model + "'"};
  }
  if (model.labels.empty()) {
    throw ServeError{ErrorCode::kBadRequest,
                     "model '" + request.model + "' has no sample set"};
  }

  const std::size_t grant = acquire_grant();
  core::WeightFaultConfig config;
  config.max_percent = request.max_percent;
  config.step = request.step;
  config.model = *fault_model;
  config.threads = grant;
  core::WeightFaultReport report;
  try {
    report = core::analyze_weight_faults(model.net, model.inputs,
                                         model.labels, config);
  } catch (...) {
    budget_->release(grant);
    throw;
  }
  budget_->release(grant);

  Json body = Json::object();
  body.set("model", Json::string(request.model));
  body.set("fault_model",
           Json::string(std::string(core::fault_model_name(*fault_model))));
  body.set("parameters",
           Json::integer(static_cast<std::int64_t>(report.faults.size())));
  body.set("robust_weights",
           Json::integer(static_cast<std::int64_t>(report.robust_weights)));
  body.set("evaluations",
           Json::integer(static_cast<std::int64_t>(report.evaluations)));
  Json fragile = Json::array();
  for (const core::WeightFault& f :
       core::most_fragile_weights(report, 10)) {
    Json entry = Json::object();
    entry.set("layer", Json::integer(static_cast<std::int64_t>(f.layer)));
    entry.set("row", Json::integer(static_cast<std::int64_t>(f.row)));
    if (f.is_bias()) {
      entry.set("col", Json::string("bias"));
    } else {
      entry.set("col", Json::integer(static_cast<std::int64_t>(f.col)));
    }
    entry.set("min_flip_percent", f.min_flip_percent.has_value()
                                      ? Json::integer(*f.min_flip_percent)
                                      : Json::null());
    entry.set("flip_sign", Json::integer(f.flip_sign));
    entry.set("flipped_sample",
              Json::integer(static_cast<std::int64_t>(f.flipped_sample)));
    fragile.push_back(std::move(entry));
  }
  body.set("most_fragile", std::move(fragile));
  return body;
}

Json Server::handle_models() const {
  Json models = Json::array();
  for (const ServeModel& model : fleet_) {
    Json entry = Json::object();
    entry.set("name", Json::string(model.name));
    entry.set("inputs", Json::integer(static_cast<std::int64_t>(
                            model.net.layers().front().in_dim())));
    entry.set("outputs", Json::integer(static_cast<std::int64_t>(
                             model.net.layers().back().out_dim())));
    entry.set("layers",
              Json::integer(static_cast<std::int64_t>(model.net.depth())));
    entry.set("samples",
              Json::integer(static_cast<std::int64_t>(model.labels.size())));
    entry.set("fingerprint",
              Json::string(fingerprint_hex(model.net.fingerprint())));
    // The canonical probe point: the first P1-correct sample, so a wire
    // client can issue meaningful P2 queries (and the CI smoke driver can
    // provoke a real deadline expiry) without shipping the dataset.
    Json probe = Json::null();
    if (!model.labels.empty()) {
      const core::Fannet fannet(model.net);
      const std::vector<std::size_t> bad =
          fannet.validate_p1(model.inputs, model.labels);
      for (std::size_t s = 0; s < model.inputs.rows(); ++s) {
        if (std::find(bad.begin(), bad.end(), s) != bad.end()) continue;
        Json x = Json::array();
        for (const util::i64 v : model.inputs.row(s)) {
          x.push_back(Json::integer(v));
        }
        probe = Json::object();
        probe.set("x", std::move(x));
        probe.set("label", Json::integer(model.labels[s]));
        break;
      }
    }
    entry.set("probe", std::move(probe));
    models.push_back(std::move(entry));
  }
  Json body = Json::object();
  body.set("models", std::move(models));
  return body;
}

Json Server::handle_engines() const {
  Json engines = Json::array();
  for (const std::string& name : verify::registry().names()) {
    const verify::EngineCaps caps = verify::engine(name).caps();
    Json entry = Json::object();
    entry.set("name", Json::string(name));
    entry.set("complete", Json::boolean(caps.complete));
    entry.set("deadline", Json::boolean(caps.deadline));
    entry.set("budget", Json::boolean(caps.budget));
    entry.set("native_task", Json::boolean(caps.native_task));
    engines.push_back(std::move(entry));
  }
  Json body = Json::object();
  body.set("engines", std::move(engines));
  return body;
}

Json Server::handle_stats() const {
  const ServerStats snapshot = stats();
  Json body = Json::object();
  const auto put = [&body](const char* key, std::uint64_t value) {
    body.set(key, Json::integer(static_cast<std::int64_t>(value)));
  };
  put("connections_accepted", snapshot.connections_accepted);
  put("connections_active", snapshot.connections_active);
  put("requests", snapshot.requests);
  put("results", snapshot.results);
  put("errors", snapshot.errors);
  put("rejected_saturated", snapshot.rejected_saturated);
  put("cancelled_disconnect", snapshot.cancelled_disconnect);
  put("deadline_expired", snapshot.deadline_expired);
  put("cache_hits", snapshot.cache_hits);
  put("cache_misses", snapshot.cache_misses);
  put("progress_frames", snapshot.progress_frames);
  put("models", fleet_.size());
  put("threads", worker_total_);
  put("max_inflight", options_.max_inflight);
  body.set("draining",
           Json::boolean(draining_.load(std::memory_order_acquire)));
  if (options_.cache != nullptr) {
    const verify::QueryCache::Stats cache = options_.cache->stats();
    Json entry = Json::object();
    entry.set("entries",
              Json::integer(static_cast<std::int64_t>(cache.entries)));
    entry.set("hits", Json::integer(static_cast<std::int64_t>(cache.hits)));
    entry.set("misses",
              Json::integer(static_cast<std::int64_t>(cache.misses)));
    entry.set("insertions",
              Json::integer(static_cast<std::int64_t>(cache.insertions)));
    body.set("query_cache", std::move(entry));
  }
  return body;
}

ServerStats Server::stats() const {
  ServerStats out;
  out.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  out.connections_active = connections_active_.load(std::memory_order_relaxed);
  out.requests = requests_.load(std::memory_order_relaxed);
  out.results = results_.load(std::memory_order_relaxed);
  out.errors = errors_.load(std::memory_order_relaxed);
  out.rejected_saturated = rejected_saturated_.load(std::memory_order_relaxed);
  out.cancelled_disconnect =
      cancelled_disconnect_.load(std::memory_order_relaxed);
  out.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  out.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  out.progress_frames = progress_frames_.load(std::memory_order_relaxed);
  return out;
}

void Server::request_drain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  // Unblock the accept loop: shutdown makes the blocked accept() fail.
  // The fd itself is closed in wait(), after the accept thread joins —
  // closing here would let the kernel reuse the descriptor number while
  // accept_loop still holds it.
  const int listen_fd = listen_fd_.load(std::memory_order_acquire);
  if (listen_fd >= 0) (void)::shutdown(listen_fd, SHUT_RDWR);
  // Force EOF on every session's read side: readers wake with kClosed,
  // workers drain their queues and exit.  In-flight work is NOT cancelled —
  // drain means "finish what was accepted, answer it, then stop".
  const util::MutexLock lock(sessions_mutex_);
  for (const auto& session : sessions_) {
    (void)::shutdown(session->fd, SHUT_RD);
  }
}

void Server::wait() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (joined_.exchange(true)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) ::close(listen_fd);
  std::vector<std::unique_ptr<Session>> sessions;
  {
    const util::MutexLock lock(sessions_mutex_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) {
    if (session->reader.joinable()) session->reader.join();
    if (session->worker.joinable()) session->worker.join();
    if (session->fd >= 0) ::close(session->fd);
  }
}

void Server::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  request_drain();
  wait();
}

}  // namespace fannet::serve
