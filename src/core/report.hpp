/// \file
/// \brief Report formatting shared by the bench harnesses and examples: aligned
/// text tables (what the bench binaries print, mirroring the paper's
/// figures/numbers) plus CSV export for plotting.
#pragma once

#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "util/csv.hpp"

namespace fannet::core {

/// Minimal aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] util::CsvTable to_csv() const;

 private:
  std::vector<std::vector<std::string>> rows_;  // [0] = header
};

[[nodiscard]] std::string format_tolerance(const ToleranceReport& report);
[[nodiscard]] std::string format_bias(const BiasReport& report);
[[nodiscard]] std::string format_sensitivity(
    const NodeSensitivityReport& report);
[[nodiscard]] std::string format_boundary(const BoundaryReport& report);

}  // namespace fannet::core
