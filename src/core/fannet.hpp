/// \file
/// \brief The FANNet pipeline (paper Fig. 2): P1 validation, noise-tolerance
/// analysis, adversarial noise-vector extraction.
///
/// Engine selection goes through the verify-engine registry (DESIGN.md
/// §4.5): `Engine` is a thin alias over registry names, kept for source
/// compatibility with the original enum API.  All registered engines are
/// exact on the integer grid and agree by construction (asserted by the
/// property tests); see verify/engine.hpp for the built-in strategies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "la/matrix.hpp"
#include "nn/quantized.hpp"
#include "verify/query.hpp"
#include "verify/sweep.hpp"

namespace fannet::core {

/// Thin, source-compatible alias over verify-engine registry names.  The
/// named constants spell the original enum values; `Engine{"name"}` (or an
/// implicit conversion from a string) reaches any other registered engine.
/// The name is stored by value so an Engine built from a runtime string
/// (CLI flag, config file) stays valid inside a stored config.  Dispatch
/// always goes through verify::registry() — nothing switches on this type.
struct Engine {
  std::string name = "cascade";

  Engine() = default;
  Engine(std::string n) : name(std::move(n)) {}  // NOLINT: implicit by design
  Engine(const char* n) : name(n) {}             // NOLINT: implicit by design

  [[nodiscard]] friend bool operator==(const Engine&, const Engine&) = default;

  static const Engine kEnumerate, kInterval, kSymbolic, kBnB, kCascade,
      kExplicitMc, kBmc;
};

inline const Engine Engine::kEnumerate{"enumerate"};
inline const Engine Engine::kInterval{"interval"};
inline const Engine Engine::kSymbolic{"symbolic"};
inline const Engine Engine::kBnB{"bnb"};
inline const Engine Engine::kCascade{"cascade"};
inline const Engine Engine::kExplicitMc{"explicit-mc"};
inline const Engine Engine::kBmc{"bmc"};

[[nodiscard]] std::string to_string(Engine e);

struct ToleranceConfig {
  int start_range = 50;  ///< the paper's "large initial noise" (±50%)
  /// Portfolio default: sound-only screens, complete B&B only on kUnknown.
  Engine engine = Engine::kCascade;
  bool bias_node = false;
  /// kBinary: bisection on the per-sample minimal flipping range.
  /// kLinear: the paper's iterative noise reduction (same result, slower).
  enum class Descent : std::uint8_t { kBinary, kLinear } descent = Descent::kBinary;
  /// Worker threads for the per-sample fan-out (0 = hardware concurrency,
  /// 1 = serial).  Results are identical for every thread count.
  std::size_t threads = 0;
  /// Intra-query worker budget per engine dispatch (see
  /// verify::SchedulerOptions::intra_query_threads): 0 = leftover threads
  /// when the batch is smaller than the worker pool, N = fixed grant.
  std::size_t intra_query_threads = 0;
  /// SoA evaluation lanes per engine dispatch (DESIGN.md §10, forwarded as
  /// verify::SchedulerOptions::batch_hint): 0 = auto
  /// (nn::BatchEvaluator::kAutoBatch), 1 = the scalar reference path.
  /// Reports are bit-identical for every value.
  std::size_t batch = 0;
  /// Per-query wall-clock deadline in milliseconds (0 = none), forwarded
  /// as verify::SchedulerOptions::deadline_ms.  An expired probe resolves
  /// kUnknown — treated as "no flip found at that range" — so the reported
  /// tolerance can only err toward the optimistic side; the cut is never
  /// silent: ToleranceReport::deadline_expired counts the expired probes.
  /// Incompatible with `sweep` (journaled shard rows must be
  /// time-independent to be resumable) — rejected with InvalidArgument.
  std::uint64_t deadline_ms = 0;
  /// Opt-in resumable sharded execution (DESIGN.md §9): when engaged, the
  /// per-sample work runs through verify::SweepRunner — journaled to
  /// `sweep->journal_path`, resumable after a crash, and chunkable across
  /// invocations via `sweep->max_shards`.  Disengaged (the default) keeps
  /// the classic in-process batch path; reports are bit-identical either
  /// way.  `sweep->threads` of 0 inherits `threads` above.
  std::optional<verify::SweepOptions> sweep = std::nullopt;
};

struct SampleTolerance {
  std::size_t sample = 0;
  int true_label = 0;
  bool correct_without_noise = false;
  /// Smallest range ±R containing a counterexample; nullopt if none up to
  /// the configured start_range (the sample survives even the largest noise).
  std::optional<int> min_flip_range;
  std::optional<verify::Counterexample> witness;
};

struct ToleranceReport {
  /// The paper's headline number: the largest ±R with zero misclassified
  /// correctly-classified inputs (their net: 11%).
  int noise_tolerance = 0;
  std::vector<SampleTolerance> per_sample;
  std::uint64_t queries = 0;
  /// Probes cut short by ToleranceConfig::deadline_ms (0 when no deadline
  /// was set, or none expired).  Non-zero means `noise_tolerance` is an
  /// optimistic bound: an expired probe counts as "no flip at that range".
  std::uint64_t deadline_expired = 0;
  /// Sweep accounting when ToleranceConfig::sweep was engaged (default
  /// otherwise: complete() is true).  When `!sweep.complete()` the report
  /// covers only the absorbed shards — `noise_tolerance` and `queries` are
  /// partial aggregates until a later invocation finishes the campaign.
  verify::SweepProgress sweep = {};
};

/// One corpus row for the bias/sensitivity analyses.
struct CorpusEntry {
  std::size_t sample = 0;
  int true_label = 0;
  verify::Counterexample cex;
};

class Fannet {
 public:
  explicit Fannet(const nn::QuantizedNetwork& net) : net_(&net) {}

  /// P1 (Fig. 2): functional validation of the translated model — returns
  /// the indices of samples the network misclassifies without noise.  Only
  /// samples outside this set enter the noise analysis (paper §V-C).
  [[nodiscard]] std::vector<std::size_t> validate_p1(
      const la::Matrix<util::i64>& inputs, const std::vector<int>& labels) const;

  /// One P2 decision at range ±`range`.
  [[nodiscard]] verify::VerifyResult check_sample(
      std::span<const util::i64> x, int true_label, int range, Engine engine,
      bool bias_node = false) const;

  /// Directional/per-node variant with an explicit box.
  [[nodiscard]] verify::VerifyResult check_sample_box(
      std::span<const util::i64> x, int true_label,
      const verify::NoiseBox& box, Engine engine,
      bool bias_node = false) const;

  /// Full noise-tolerance analysis over the (test) set.  The start-range
  /// screen and the per-sample range descents fan out across
  /// `config.threads` workers; the report is identical to the serial run.
  [[nodiscard]] ToleranceReport analyze_tolerance(
      const la::Matrix<util::i64>& inputs, const std::vector<int>& labels,
      const ToleranceConfig& config) const;

  /// P3 (Fig. 2): extract up to `max_per_sample` unique adversarial noise
  /// vectors per correctly-classified sample at range ±`range`.
  [[nodiscard]] std::vector<CorpusEntry> extract_corpus(
      const la::Matrix<util::i64>& inputs, const std::vector<int>& labels,
      int range, std::size_t max_per_sample, bool bias_node = false,
      std::size_t threads = 0) const;

  [[nodiscard]] const nn::QuantizedNetwork& net() const noexcept {
    return *net_;
  }

  /// Builds a validated query against this network (shared by the analyses
  /// that batch queries through the scheduler).
  [[nodiscard]] verify::Query make_query(std::span<const util::i64> x,
                                         int true_label,
                                         const verify::NoiseBox& box,
                                         bool bias_node) const;

 private:
  const nn::QuantizedNetwork* net_;
};

}  // namespace fannet::core
