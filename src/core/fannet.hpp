// The FANNet pipeline (paper Fig. 2): P1 validation, noise-tolerance
// analysis, adversarial noise-vector extraction.
//
// The engine enum selects how the P2 query ("can any noise vector in ±R
// flip this sample?") is decided; all engines are exact on the integer
// grid and agree by construction (asserted by the property tests):
//
//   kEnumerate    exhaustive grid walk (reference oracle)
//   kBnB          branch-and-bound with symbolic pruning (default)
//   kExplicitMc   SMV translation + explicit-state model checker
//   kBmc          SMV translation + bit-blasting + CDCL bounded MC
#pragma once

#include <cstdint>
#include <optional>

#include "la/matrix.hpp"
#include "nn/quantized.hpp"
#include "verify/query.hpp"

namespace fannet::core {

enum class Engine : std::uint8_t { kEnumerate, kBnB, kExplicitMc, kBmc };

[[nodiscard]] std::string to_string(Engine e);

struct ToleranceConfig {
  int start_range = 50;  ///< the paper's "large initial noise" (±50%)
  Engine engine = Engine::kBnB;
  bool bias_node = false;
  /// kBinary: bisection on the per-sample minimal flipping range.
  /// kLinear: the paper's iterative noise reduction (same result, slower).
  enum class Descent : std::uint8_t { kBinary, kLinear } descent = Descent::kBinary;
};

struct SampleTolerance {
  std::size_t sample = 0;
  int true_label = 0;
  bool correct_without_noise = false;
  /// Smallest range ±R containing a counterexample; nullopt if none up to
  /// the configured start_range (the sample survives even the largest noise).
  std::optional<int> min_flip_range;
  std::optional<verify::Counterexample> witness;
};

struct ToleranceReport {
  /// The paper's headline number: the largest ±R with zero misclassified
  /// correctly-classified inputs (their net: 11%).
  int noise_tolerance = 0;
  std::vector<SampleTolerance> per_sample;
  std::uint64_t queries = 0;
};

/// One corpus row for the bias/sensitivity analyses.
struct CorpusEntry {
  std::size_t sample = 0;
  int true_label = 0;
  verify::Counterexample cex;
};

class Fannet {
 public:
  explicit Fannet(const nn::QuantizedNetwork& net) : net_(&net) {}

  /// P1 (Fig. 2): functional validation of the translated model — returns
  /// the indices of samples the network misclassifies without noise.  Only
  /// samples outside this set enter the noise analysis (paper §V-C).
  [[nodiscard]] std::vector<std::size_t> validate_p1(
      const la::Matrix<util::i64>& inputs, const std::vector<int>& labels) const;

  /// One P2 decision at range ±`range`.
  [[nodiscard]] verify::VerifyResult check_sample(
      std::span<const util::i64> x, int true_label, int range, Engine engine,
      bool bias_node = false) const;

  /// Directional/per-node variant with an explicit box.
  [[nodiscard]] verify::VerifyResult check_sample_box(
      std::span<const util::i64> x, int true_label,
      const verify::NoiseBox& box, Engine engine,
      bool bias_node = false) const;

  /// Full noise-tolerance analysis over the (test) set.
  [[nodiscard]] ToleranceReport analyze_tolerance(
      const la::Matrix<util::i64>& inputs, const std::vector<int>& labels,
      const ToleranceConfig& config) const;

  /// P3 (Fig. 2): extract up to `max_per_sample` unique adversarial noise
  /// vectors per correctly-classified sample at range ±`range`.
  [[nodiscard]] std::vector<CorpusEntry> extract_corpus(
      const la::Matrix<util::i64>& inputs, const std::vector<int>& labels,
      int range, std::size_t max_per_sample, bool bias_node = false) const;

  [[nodiscard]] const nn::QuantizedNetwork& net() const noexcept {
    return *net_;
  }

 private:
  [[nodiscard]] verify::Query make_query(std::span<const util::i64> x,
                                         int true_label,
                                         const verify::NoiseBox& box,
                                         bool bias_node) const;

  const nn::QuantizedNetwork* net_;
};

}  // namespace fannet::core
