#include "core/report.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace fannet::core {

TextTable::TextTable(std::vector<std::string> headers) {
  if (headers.empty()) throw InvalidArgument("TextTable: empty header");
  rows_.push_back(std::move(headers));
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != rows_.front().size()) {
    throw InvalidArgument("TextTable::add_row: column count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(rows_.front().size(), 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      out << rows_[r][c];
      if (c + 1 < rows_[r].size()) {
        out << std::string(widths[c] - rows_[r][c].size() + 2, ' ');
      }
    }
    out << "\n";
    if (r == 0) {
      std::size_t total = 0;
      for (const std::size_t w : widths) total += w + 2;
      out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    }
  }
  return out.str();
}

util::CsvTable TextTable::to_csv() const { return rows_; }

std::string format_tolerance(const ToleranceReport& report) {
  TextTable t({"sample", "label", "correct", "min flip range", "witness"});
  for (const SampleTolerance& st : report.per_sample) {
    std::string witness = "-";
    if (st.witness.has_value()) {
      witness = "[";
      for (std::size_t i = 0; i < st.witness->deltas.size(); ++i) {
        if (i != 0) witness += ",";
        witness += std::to_string(st.witness->deltas[i]);
      }
      witness += "]%";
    }
    t.add_row({std::to_string(st.sample),
               "L" + std::to_string(st.true_label),
               st.correct_without_noise ? "yes" : "NO",
               st.min_flip_range.has_value()
                   ? "+/-" + std::to_string(*st.min_flip_range) + "%"
                   : "none",
               witness});
  }
  std::ostringstream out;
  out << t.to_string();
  out << "Noise tolerance: +/-" << report.noise_tolerance << "% ("
      << report.queries << " formal queries)\n";
  return out.str();
}

std::string format_bias(const BiasReport& report) {
  const std::size_t n = report.direction.size();
  TextTable t({"direction", "count"});
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      if (from == to) continue;
      t.add_row({"L" + std::to_string(from) + " -> L" + std::to_string(to),
                 std::to_string(report.direction[from][to])});
    }
  }
  std::ostringstream out;
  out << t.to_string();
  if (report.train_majority_label >= 0) {
    out << "Training set: ";
    for (std::size_t l = 0; l < report.train_class_counts.size(); ++l) {
      if (l != 0) out << " / ";
      out << "L" << l << "=" << report.train_class_counts[l];
    }
    out << "  (majority L" << report.train_majority_label << ": "
        << static_cast<int>(report.train_majority_fraction * 100.0 + 0.5)
        << "%)\n";
  }
  if (report.bias_toward >= 0) {
    out << "Misclassification bias toward L" << report.bias_toward << ": "
        << static_cast<int>(report.bias_fraction * 100.0 + 0.5)
        << "% of all flips\n";
  }
  return out.str();
}

std::string format_sensitivity(const NodeSensitivityReport& report) {
  TextTable t({"node", "cex d>0", "cex d<0", "cex d=0", "min d", "max d",
               "pos possible", "neg possible", "solo flip at"});
  for (std::size_t i = 0; i < report.positive.size(); ++i) {
    t.add_row({"i" + std::to_string(i + 1),
               std::to_string(report.positive[i]),
               std::to_string(report.negative[i]),
               std::to_string(report.zero[i]),
               std::to_string(report.min_delta[i]),
               std::to_string(report.max_delta[i]),
               report.positive_possible[i] ? "yes" : "NO",
               report.negative_possible[i] ? "yes" : "NO",
               report.solo_flip_range[i].has_value()
                   ? "+/-" + std::to_string(*report.solo_flip_range[i]) + "%"
                   : "never"});
  }
  return t.to_string();
}

std::string format_boundary(const BoundaryReport& report) {
  TextTable t({"min flip range bucket", "samples"});
  for (std::size_t b = 0; b < report.histogram.size(); ++b) {
    const int lo = static_cast<int>(b) * report.bucket_width + 1;
    const int hi = (static_cast<int>(b) + 1) * report.bucket_width;
    t.add_row({"+/-" + std::to_string(lo) + "..." + std::to_string(hi) + "%",
               std::to_string(report.histogram[b])});
  }
  std::ostringstream out;
  out << t.to_string();
  out << "Samples surviving the full range (far from boundary): "
      << report.survivors << "\n";
  return out.str();
}

}  // namespace fannet::core
