#include "core/fannet.hpp"

#include <algorithm>

#include "core/translate.hpp"
#include "mc/bmc.hpp"
#include "mc/explicit.hpp"
#include "util/error.hpp"
#include "verify/bnb.hpp"
#include "verify/enumerate.hpp"

namespace fannet::core {

using util::i64;
using verify::Counterexample;
using verify::NoiseBox;
using verify::Query;
using verify::Verdict;
using verify::VerifyResult;

std::string to_string(Engine e) {
  switch (e) {
    case Engine::kEnumerate: return "enumerate";
    case Engine::kBnB: return "bnb";
    case Engine::kExplicitMc: return "explicit-mc";
    case Engine::kBmc: return "bmc";
  }
  throw InvalidArgument("to_string(Engine): bad enum value");
}

Query Fannet::make_query(std::span<const i64> x, int true_label,
                         const NoiseBox& box, bool bias_node) const {
  Query q;
  q.net = net_;
  q.x.assign(x.begin(), x.end());
  q.true_label = true_label;
  q.box = box;
  q.bias_node = bias_node;
  q.validate();
  return q;
}

std::vector<std::size_t> Fannet::validate_p1(
    const la::Matrix<i64>& inputs, const std::vector<int>& labels) const {
  if (inputs.rows() != labels.size()) {
    throw InvalidArgument("validate_p1: inputs/labels size mismatch");
  }
  std::vector<std::size_t> misclassified;
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    const auto row = inputs.row(s);
    if (net_->classify_noised(row, {}) != labels[s]) {
      misclassified.push_back(s);
    }
  }
  return misclassified;
}

VerifyResult Fannet::check_sample(std::span<const i64> x, int true_label,
                                  int range, Engine engine,
                                  bool bias_node) const {
  const std::size_t dims = x.size() + (bias_node ? 1 : 0);
  return check_sample_box(x, true_label, NoiseBox::symmetric(dims, range),
                          engine, bias_node);
}

VerifyResult Fannet::check_sample_box(std::span<const i64> x, int true_label,
                                      const NoiseBox& box, Engine engine,
                                      bool bias_node) const {
  const Query q = make_query(x, true_label, box, bias_node);
  switch (engine) {
    case Engine::kEnumerate:
      return verify::enumerate_find_first(q);
    case Engine::kBnB:
      return verify::bnb_verify(q);
    case Engine::kExplicitMc: {
      const Translation t = translate_sample(q);
      const mc::ExplicitChecker checker(t.module);
      const mc::InvariantResult r = checker.check_invariant(t.module.specs().front().expr);
      VerifyResult out;
      out.work = r.states_explored;
      if (r.holds) {
        out.verdict = Verdict::kRobust;
      } else {
        out.verdict = Verdict::kVulnerable;
        out.counterexample =
            decode_counterexample(t, q, r.counterexample.states.back());
      }
      return out;
    }
    case Engine::kBmc: {
      const Translation t = translate_sample(q);
      mc::BmcChecker checker(t.module);
      // Depth 1 reaches the first s_eval state; the noise is re-chosen
      // every cycle, so deeper states add no new noise vectors.
      const mc::BmcResult r =
          checker.check_invariant(t.module.specs().front().expr, 1);
      VerifyResult out;
      out.work = 1;
      if (r.verdict == sat::SolveResult::kSat) {
        out.verdict = Verdict::kVulnerable;
        out.counterexample =
            decode_counterexample(t, q, r.counterexample.states.back());
      } else if (r.verdict == sat::SolveResult::kUnsat) {
        out.verdict = Verdict::kRobust;
      } else {
        out.verdict = Verdict::kUnknown;
      }
      return out;
    }
  }
  throw InvalidArgument("check_sample_box: bad engine");
}

ToleranceReport Fannet::analyze_tolerance(const la::Matrix<i64>& inputs,
                                          const std::vector<int>& labels,
                                          const ToleranceConfig& config) const {
  if (config.start_range < 1) {
    throw InvalidArgument("analyze_tolerance: start_range must be >= 1");
  }
  ToleranceReport report;
  const std::vector<std::size_t> bad = validate_p1(inputs, labels);

  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    SampleTolerance st;
    st.sample = s;
    st.true_label = labels[s];
    st.correct_without_noise =
        std::find(bad.begin(), bad.end(), s) == bad.end();
    if (!st.correct_without_noise) {
      report.per_sample.push_back(std::move(st));
      continue;  // the paper analyzes only correctly classified inputs
    }
    const auto row = inputs.row(s);
    const auto flips_at = [&](int range) {
      ++report.queries;
      return check_sample(row, labels[s], range, config.engine,
                          config.bias_node);
    };
    if (config.descent == ToleranceConfig::Descent::kBinary) {
      // Monotone: a counterexample in ±R stays available in every ±R' > R.
      VerifyResult at_max = flips_at(config.start_range);
      if (at_max.verdict != Verdict::kVulnerable) {
        report.per_sample.push_back(std::move(st));
        continue;
      }
      int lo = 1, hi = config.start_range;
      std::optional<Counterexample> witness = at_max.counterexample;
      while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        VerifyResult r = flips_at(mid);
        if (r.verdict == Verdict::kVulnerable) {
          witness = r.counterexample;
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      st.min_flip_range = lo;
      st.witness = witness;
    } else {
      // The paper's loop: start large, reduce until no counterexample.
      std::optional<int> min_flip;
      std::optional<Counterexample> witness;
      for (int range = config.start_range; range >= 1; --range) {
        VerifyResult r = flips_at(range);
        if (r.verdict != Verdict::kVulnerable) break;
        min_flip = range;
        witness = r.counterexample;
      }
      st.min_flip_range = min_flip;
      st.witness = witness;
    }
    report.per_sample.push_back(std::move(st));
  }

  // Tolerance: largest range with no flip among correct samples.
  int tolerance = config.start_range;
  for (const SampleTolerance& st : report.per_sample) {
    if (st.min_flip_range.has_value()) {
      tolerance = std::min(tolerance, *st.min_flip_range - 1);
    }
  }
  report.noise_tolerance = tolerance;
  return report;
}

std::vector<CorpusEntry> Fannet::extract_corpus(const la::Matrix<i64>& inputs,
                                                const std::vector<int>& labels,
                                                int range,
                                                std::size_t max_per_sample,
                                                bool bias_node) const {
  std::vector<CorpusEntry> corpus;
  const std::vector<std::size_t> bad = validate_p1(inputs, labels);
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    if (std::find(bad.begin(), bad.end(), s) != bad.end()) continue;
    const auto row = inputs.row(s);
    const std::size_t dims = row.size() + (bias_node ? 1 : 0);
    const Query q = make_query(row, labels[s],
                               NoiseBox::symmetric(dims, range), bias_node);
    // P3 loop: each new counterexample is blocked and the search resumes —
    // bnb_stream does exactly this by construction (boxes are disjoint).
    for (Counterexample& cex : verify::bnb_collect(q, max_per_sample)) {
      corpus.push_back({s, labels[s], std::move(cex)});
    }
  }
  return corpus;
}

}  // namespace fannet::core
