#include "core/fannet.hpp"

#include <algorithm>
#include <atomic>

#include "util/error.hpp"
#include "verify/bnb.hpp"
#include "verify/engine.hpp"
#include "verify/query_cache.hpp"
#include "verify/scheduler.hpp"

namespace fannet::core {

using util::i64;
using verify::Counterexample;
using verify::NoiseBox;
using verify::Query;
using verify::Verdict;
using verify::VerifyResult;

std::string to_string(Engine e) { return e.name; }

Query Fannet::make_query(std::span<const i64> x, int true_label,
                         const NoiseBox& box, bool bias_node) const {
  Query q;
  q.net = net_;
  q.x.assign(x.begin(), x.end());
  q.true_label = true_label;
  q.box = box;
  q.bias_node = bias_node;
  q.validate();
  return q;
}

std::vector<std::size_t> Fannet::validate_p1(
    const la::Matrix<i64>& inputs, const std::vector<int>& labels) const {
  if (inputs.rows() != labels.size()) {
    throw InvalidArgument("validate_p1: inputs/labels size mismatch");
  }
  std::vector<std::size_t> misclassified;
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    const auto row = inputs.row(s);
    if (net_->classify_noised(row, {}) != labels[s]) {
      misclassified.push_back(s);
    }
  }
  return misclassified;
}

VerifyResult Fannet::check_sample(std::span<const i64> x, int true_label,
                                  int range, Engine engine,
                                  bool bias_node) const {
  const std::size_t dims = x.size() + (bias_node ? 1 : 0);
  return check_sample_box(x, true_label, NoiseBox::symmetric(dims, range),
                          engine, bias_node);
}

VerifyResult Fannet::check_sample_box(std::span<const i64> x, int true_label,
                                      const NoiseBox& box, Engine engine,
                                      bool bias_node) const {
  const Query q = make_query(x, true_label, box, bias_node);
  return verify::cached_verify(verify::global_query_cache(), q,
                               verify::engine(engine.name));
}

ToleranceReport Fannet::analyze_tolerance(const la::Matrix<i64>& inputs,
                                          const std::vector<int>& labels,
                                          const ToleranceConfig& config) const {
  if (config.start_range < 1) {
    throw InvalidArgument("analyze_tolerance: start_range must be >= 1");
  }
  ToleranceReport report;
  const std::vector<std::size_t> bad = validate_p1(inputs, labels);

  const verify::Engine& engine = verify::engine(config.engine.name);
  const verify::Scheduler scheduler(
      {.threads = config.threads,
       .intra_query_threads = config.intra_query_threads});

  report.per_sample.resize(inputs.rows());
  std::vector<std::size_t> correct;  // samples entering the noise analysis
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    SampleTolerance& st = report.per_sample[s];
    st.sample = s;
    st.true_label = labels[s];
    st.correct_without_noise =
        std::find(bad.begin(), bad.end(), s) == bad.end();
    if (st.correct_without_noise) correct.push_back(s);
  }

  // Phase 1: screen every correct sample at the full start range, batched
  // through the scheduler.  Monotonicity (a counterexample in ±R stays
  // available in every ±R' > R) means survivors here need no descent.
  std::vector<Query> screen;
  screen.reserve(correct.size());
  for (const std::size_t s : correct) {
    const auto row = inputs.row(s);
    const std::size_t dims = row.size() + (config.bias_node ? 1 : 0);
    screen.push_back(make_query(row, labels[s],
                                NoiseBox::symmetric(dims, config.start_range),
                                config.bias_node));
  }
  const std::vector<VerifyResult> at_max = scheduler.run_all(screen, engine);

  // Phase 2: per-sample range descent for the vulnerable samples — each
  // descent is an independent chain of queries, fanned out across workers.
  std::vector<std::size_t> vulnerable;  // positions into `correct`
  for (std::size_t i = 0; i < correct.size(); ++i) {
    if (at_max[i].verdict == Verdict::kVulnerable) vulnerable.push_back(i);
  }
  std::atomic<std::uint64_t> descent_queries{0};
  scheduler.parallel_for(vulnerable.size(), [&](std::size_t vi) {
    const std::size_t i = vulnerable[vi];
    const std::size_t s = correct[i];
    SampleTolerance& st = report.per_sample[s];
    const auto row = inputs.row(s);
    std::uint64_t local_queries = 0;
    const auto flips_at = [&](int range) {
      ++local_queries;
      const std::size_t dims = row.size() + (config.bias_node ? 1 : 0);
      return scheduler.verify_one(make_query(row, labels[s],
                                             NoiseBox::symmetric(dims, range),
                                             config.bias_node),
                                  engine);
    };
    if (config.descent == ToleranceConfig::Descent::kBinary) {
      int lo = 1, hi = config.start_range;
      std::optional<Counterexample> witness = at_max[i].counterexample;
      while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        VerifyResult r = flips_at(mid);
        if (r.verdict == Verdict::kVulnerable) {
          witness = r.counterexample;
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      st.min_flip_range = lo;
      st.witness = witness;
    } else {
      // The paper's loop: start large, reduce until no counterexample.
      std::optional<int> min_flip = config.start_range;
      std::optional<Counterexample> witness = at_max[i].counterexample;
      for (int range = config.start_range - 1; range >= 1; --range) {
        VerifyResult r = flips_at(range);
        if (r.verdict != Verdict::kVulnerable) break;
        min_flip = range;
        witness = r.counterexample;
      }
      st.min_flip_range = min_flip;
      st.witness = witness;
    }
    descent_queries.fetch_add(local_queries, std::memory_order_relaxed);
  });
  report.queries = correct.size() + descent_queries.load();

  // Tolerance: largest range with no flip among correct samples.
  int tolerance = config.start_range;
  for (const SampleTolerance& st : report.per_sample) {
    if (st.min_flip_range.has_value()) {
      tolerance = std::min(tolerance, *st.min_flip_range - 1);
    }
  }
  report.noise_tolerance = tolerance;
  return report;
}

std::vector<CorpusEntry> Fannet::extract_corpus(const la::Matrix<i64>& inputs,
                                                const std::vector<int>& labels,
                                                int range,
                                                std::size_t max_per_sample,
                                                bool bias_node,
                                                std::size_t threads) const {
  const std::vector<std::size_t> bad = validate_p1(inputs, labels);
  std::vector<std::size_t> correct;
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    if (std::find(bad.begin(), bad.end(), s) == bad.end()) correct.push_back(s);
  }

  // P3 loop per sample: each new counterexample is blocked and the search
  // resumes — bnb_collect does exactly this by construction (boxes are
  // disjoint).  Samples are independent, so they fan out across workers;
  // indexed slots keep the corpus in deterministic sample order, and
  // bnb_collect itself is deterministic for any thread count, so leftover
  // workers (fewer samples than threads) go into each sample's frontier.
  std::vector<std::vector<Counterexample>> per_sample(correct.size());
  const verify::Scheduler scheduler({.threads = threads});
  verify::BnbOptions bnb_options;
  bnb_options.threads = scheduler.intra_grant(correct.size());
  scheduler.parallel_for(correct.size(), [&](std::size_t i) {
    const std::size_t s = correct[i];
    const auto row = inputs.row(s);
    const std::size_t dims = row.size() + (bias_node ? 1 : 0);
    const Query q = make_query(row, labels[s],
                               NoiseBox::symmetric(dims, range), bias_node);
    per_sample[i] = verify::bnb_collect(q, max_per_sample, bnb_options);
  });

  std::vector<CorpusEntry> corpus;
  for (std::size_t i = 0; i < correct.size(); ++i) {
    for (Counterexample& cex : per_sample[i]) {
      corpus.push_back({correct[i], labels[correct[i]], std::move(cex)});
    }
  }
  return corpus;
}

}  // namespace fannet::core
