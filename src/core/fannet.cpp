#include "core/fannet.hpp"

#include <algorithm>
#include <atomic>

#include "util/error.hpp"
#include "verify/bnb.hpp"
#include "verify/engine.hpp"
#include "verify/query_cache.hpp"
#include "verify/scheduler.hpp"

namespace fannet::core {

using util::i64;
using verify::Counterexample;
using verify::NoiseBox;
using verify::Query;
using verify::Verdict;
using verify::VerifyResult;

std::string to_string(Engine e) { return e.name; }

namespace {

/// Per-sample range descent shared by the batch path and the sweep
/// campaign: given the start-range screen result (must be kVulnerable),
/// finds the minimal flipping range and its witness.  `queries` counts the
/// descent probes only (the screen is accounted separately, once per
/// correct sample).
struct DescentOutcome {
  std::optional<int> min_flip_range;
  std::optional<Counterexample> witness;
  std::uint64_t queries = 0;
};

DescentOutcome descend_sample(const Fannet& fannet,
                              const verify::Scheduler& scheduler,
                              const verify::Engine& engine,
                              std::span<const i64> row, int label,
                              const ToleranceConfig& config,
                              const VerifyResult& at_max) {
  DescentOutcome out;
  const auto flips_at = [&](int range) {
    ++out.queries;
    const std::size_t dims = row.size() + (config.bias_node ? 1 : 0);
    return scheduler.verify_one(
        fannet.make_query(row, label, NoiseBox::symmetric(dims, range),
                          config.bias_node),
        engine);
  };
  if (config.descent == ToleranceConfig::Descent::kBinary) {
    int lo = 1, hi = config.start_range;
    std::optional<Counterexample> witness = at_max.counterexample;
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      VerifyResult r = flips_at(mid);
      if (r.verdict == Verdict::kVulnerable) {
        witness = r.counterexample;
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    out.min_flip_range = lo;
    out.witness = witness;
  } else {
    // The paper's loop: start large, reduce until no counterexample.
    std::optional<int> min_flip = config.start_range;
    std::optional<Counterexample> witness = at_max.counterexample;
    for (int range = config.start_range - 1; range >= 1; --range) {
      VerifyResult r = flips_at(range);
      if (r.verdict != Verdict::kVulnerable) break;
      min_flip = range;
      witness = r.counterexample;
    }
    out.min_flip_range = min_flip;
    out.witness = witness;
  }
  return out;
}

/// Sweep decomposition of analyze_tolerance (DESIGN.md §9): one work unit
/// per correctly-classified sample — its start-range screen plus, when
/// vulnerable, the full range descent.  Unit rows:
///
///   survivor:   [sample, 0, descent_queries]
///   vulnerable: [sample, 1, descent_queries, min_flip_range, mis_label,
///                bias_delta, delta_0 .. delta_{n-1}]
class ToleranceCampaign final : public verify::SweepCampaign {
 public:
  ToleranceCampaign(const Fannet& fannet, const la::Matrix<i64>& inputs,
                    const std::vector<int>& labels,
                    const ToleranceConfig& config,
                    std::vector<std::size_t> correct, ToleranceReport& report)
      : fannet_(fannet),
        inputs_(inputs),
        labels_(labels),
        config_(config),
        correct_(std::move(correct)),
        report_(report),
        engine_(verify::engine(config.engine.name)),
        scheduler_({.threads = 1,
                    .intra_query_threads = config.intra_query_threads,
                    .batch_hint = config.batch}) {}

  [[nodiscard]] std::string_view name() const override { return "tolerance"; }

  [[nodiscard]] std::uint64_t fingerprint() const override {
    verify::SweepFingerprint fp;
    fp.mix_bytes("tolerance");
    fp.mix_u64(fannet_.net().fingerprint());
    fp.mix_i64(config_.start_range);
    fp.mix_u64(config_.bias_node ? 1 : 0);
    fp.mix_u64(static_cast<std::uint64_t>(config_.descent));
    fp.mix_bytes(config_.engine.name);
    verify::mix_dataset(fp, inputs_, labels_);
    return fp.value();
  }

  [[nodiscard]] std::size_t units() const override { return correct_.size(); }

  [[nodiscard]] verify::SweepRows run_units(std::size_t begin,
                                            std::size_t end) const override {
    verify::SweepRows rows;
    rows.reserve(end - begin);
    for (std::size_t u = begin; u < end; ++u) {
      const std::size_t s = correct_[u];
      const auto row = inputs_.row(s);
      const std::size_t dims = row.size() + (config_.bias_node ? 1 : 0);
      const VerifyResult at_max = scheduler_.verify_one(
          fannet_.make_query(row, labels_[s],
                             NoiseBox::symmetric(dims, config_.start_range),
                             config_.bias_node),
          engine_);
      if (at_max.verdict != Verdict::kVulnerable) {
        rows.push_back({static_cast<std::int64_t>(s), 0, 0});
        continue;
      }
      const DescentOutcome outcome = descend_sample(
          fannet_, scheduler_, engine_, row, labels_[s], config_, at_max);
      std::vector<std::int64_t> unit{
          static_cast<std::int64_t>(s), 1,
          static_cast<std::int64_t>(outcome.queries),
          *outcome.min_flip_range, outcome.witness->mis_label,
          outcome.witness->bias_delta};
      for (const int delta : outcome.witness->deltas) unit.push_back(delta);
      rows.push_back(std::move(unit));
    }
    return rows;
  }

  void absorb(std::size_t begin, std::size_t end,
              const verify::SweepRows& rows) override {
    if (rows.size() != end - begin) {
      throw Error("tolerance sweep: shard row count does not match its range");
    }
    const std::size_t n = inputs_.cols();
    for (std::size_t u = begin; u < end; ++u) {
      const std::vector<std::int64_t>& unit = rows[u - begin];
      const std::size_t s = correct_[u];
      if (unit.size() < 3 || unit[0] != static_cast<std::int64_t>(s)) {
        throw Error("tolerance sweep: shard row does not fit the campaign");
      }
      report_.queries += 1 + static_cast<std::uint64_t>(unit[2]);
      SampleTolerance& st = report_.per_sample[s];
      if (unit[1] == 0) continue;  // survivor: no flip up to start_range
      if (unit.size() != 6 + n) {
        throw Error("tolerance sweep: malformed vulnerable-sample row");
      }
      st.min_flip_range = static_cast<int>(unit[3]);
      Counterexample cex;
      cex.mis_label = static_cast<int>(unit[4]);
      cex.bias_delta = static_cast<int>(unit[5]);
      cex.deltas.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        cex.deltas.push_back(static_cast<int>(unit[6 + i]));
      }
      st.witness = std::move(cex);
    }
  }

 private:
  const Fannet& fannet_;
  const la::Matrix<i64>& inputs_;
  const std::vector<int>& labels_;
  const ToleranceConfig& config_;
  std::vector<std::size_t> correct_;
  ToleranceReport& report_;
  const verify::Engine& engine_;
  verify::Scheduler scheduler_;  ///< serial dispatch inside one shard
};

}  // namespace

Query Fannet::make_query(std::span<const i64> x, int true_label,
                         const NoiseBox& box, bool bias_node) const {
  Query q;
  q.net = net_;
  q.x.assign(x.begin(), x.end());
  q.true_label = true_label;
  q.box = box;
  q.bias_node = bias_node;
  q.validate();
  return q;
}

std::vector<std::size_t> Fannet::validate_p1(
    const la::Matrix<i64>& inputs, const std::vector<int>& labels) const {
  if (inputs.rows() != labels.size()) {
    throw InvalidArgument("validate_p1: inputs/labels size mismatch");
  }
  std::vector<std::size_t> misclassified;
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    const auto row = inputs.row(s);
    if (net_->classify_noised(row, {}) != labels[s]) {
      misclassified.push_back(s);
    }
  }
  return misclassified;
}

VerifyResult Fannet::check_sample(std::span<const i64> x, int true_label,
                                  int range, Engine engine,
                                  bool bias_node) const {
  const std::size_t dims = x.size() + (bias_node ? 1 : 0);
  return check_sample_box(x, true_label, NoiseBox::symmetric(dims, range),
                          engine, bias_node);
}

VerifyResult Fannet::check_sample_box(std::span<const i64> x, int true_label,
                                      const NoiseBox& box, Engine engine,
                                      bool bias_node) const {
  const Query q = make_query(x, true_label, box, bias_node);
  return verify::cached_verify(verify::global_query_cache(), q,
                               verify::engine(engine.name));
}

ToleranceReport Fannet::analyze_tolerance(const la::Matrix<i64>& inputs,
                                          const std::vector<int>& labels,
                                          const ToleranceConfig& config) const {
  if (config.start_range < 1) {
    throw InvalidArgument("analyze_tolerance: start_range must be >= 1");
  }
  ToleranceReport report;
  const std::vector<std::size_t> bad = validate_p1(inputs, labels);

  report.per_sample.resize(inputs.rows());
  std::vector<std::size_t> correct;  // samples entering the noise analysis
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    SampleTolerance& st = report.per_sample[s];
    st.sample = s;
    st.true_label = labels[s];
    st.correct_without_noise =
        std::find(bad.begin(), bad.end(), s) == bad.end();
    if (st.correct_without_noise) correct.push_back(s);
  }

  if (config.sweep.has_value()) {
    if (config.deadline_ms != 0) {
      // A journaled shard row must mean the same thing on every re-run;
      // deadline-cut rows depend on wall-clock timing and would make a
      // resumed campaign diverge from an uninterrupted one.
      throw InvalidArgument(
          "analyze_tolerance: deadline_ms cannot be combined with sweep");
    }
    // Resumable sharded path (DESIGN.md §9): the same screens and descents,
    // decomposed into per-sample units, journaled and resumable.  The
    // report is bit-identical to the batch path below.
    ToleranceCampaign campaign(*this, inputs, labels, config,
                               std::move(correct), report);
    verify::SweepOptions options = *config.sweep;
    if (options.threads == 0) options.threads = config.threads;
    report.sweep = verify::SweepRunner(options).run(campaign);
  } else {
    const verify::Engine& engine = verify::engine(config.engine.name);
    const verify::Scheduler scheduler(
        {.threads = config.threads,
         .intra_query_threads = config.intra_query_threads,
         .batch_hint = config.batch,
         .deadline_ms = config.deadline_ms});

    // Phase 1: screen every correct sample at the full start range, batched
    // through the scheduler.  Monotonicity (a counterexample in ±R stays
    // available in every ±R' > R) means survivors here need no descent.
    std::vector<Query> screen;
    screen.reserve(correct.size());
    for (const std::size_t s : correct) {
      const auto row = inputs.row(s);
      const std::size_t dims = row.size() + (config.bias_node ? 1 : 0);
      screen.push_back(make_query(row, labels[s],
                                  NoiseBox::symmetric(dims, config.start_range),
                                  config.bias_node));
    }
    const std::vector<VerifyResult> at_max = scheduler.run_all(screen, engine);

    // Phase 2: per-sample range descent for the vulnerable samples — each
    // descent is an independent chain of queries, fanned out across workers.
    std::vector<std::size_t> vulnerable;  // positions into `correct`
    for (std::size_t i = 0; i < correct.size(); ++i) {
      if (at_max[i].verdict == Verdict::kVulnerable) vulnerable.push_back(i);
    }
    std::atomic<std::uint64_t> descent_queries{0};
    scheduler.parallel_for(vulnerable.size(), [&](std::size_t vi) {
      const std::size_t i = vulnerable[vi];
      const std::size_t s = correct[i];
      SampleTolerance& st = report.per_sample[s];
      const DescentOutcome outcome =
          descend_sample(*this, scheduler, engine, inputs.row(s), labels[s],
                         config, at_max[i]);
      st.min_flip_range = outcome.min_flip_range;
      st.witness = outcome.witness;
      descent_queries.fetch_add(outcome.queries, std::memory_order_relaxed);
    });
    report.queries = correct.size() + descent_queries.load();
    report.deadline_expired = scheduler.deadline_expired_total();
  }

  // Tolerance: largest range with no flip among correct samples.
  int tolerance = config.start_range;
  for (const SampleTolerance& st : report.per_sample) {
    if (st.min_flip_range.has_value()) {
      tolerance = std::min(tolerance, *st.min_flip_range - 1);
    }
  }
  report.noise_tolerance = tolerance;
  return report;
}

std::vector<CorpusEntry> Fannet::extract_corpus(const la::Matrix<i64>& inputs,
                                                const std::vector<int>& labels,
                                                int range,
                                                std::size_t max_per_sample,
                                                bool bias_node,
                                                std::size_t threads) const {
  const std::vector<std::size_t> bad = validate_p1(inputs, labels);
  std::vector<std::size_t> correct;
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    if (std::find(bad.begin(), bad.end(), s) == bad.end()) correct.push_back(s);
  }

  // P3 loop per sample: each new counterexample is blocked and the search
  // resumes — bnb_collect does exactly this by construction (boxes are
  // disjoint).  Samples are independent, so they fan out across workers;
  // indexed slots keep the corpus in deterministic sample order, and
  // bnb_collect itself is deterministic for any thread count, so leftover
  // workers (fewer samples than threads) go into each sample's frontier.
  std::vector<std::vector<Counterexample>> per_sample(correct.size());
  const verify::Scheduler scheduler({.threads = threads});
  verify::BnbOptions bnb_options;
  bnb_options.threads = scheduler.intra_grant(correct.size());
  scheduler.parallel_for(correct.size(), [&](std::size_t i) {
    const std::size_t s = correct[i];
    const auto row = inputs.row(s);
    const std::size_t dims = row.size() + (bias_node ? 1 : 0);
    const Query q = make_query(row, labels[s],
                               NoiseBox::symmetric(dims, range), bias_node);
    per_sample[i] = verify::bnb_collect(q, max_per_sample, bnb_options);
  });

  std::vector<CorpusEntry> corpus;
  for (std::size_t i = 0; i < correct.size(); ++i) {
    for (Counterexample& cex : per_sample[i]) {
      corpus.push_back({correct[i], labels[correct[i]], std::move(cex)});
    }
  }
  return corpus;
}

}  // namespace fannet::core
