/// \file
/// \brief The paper's Section-V case study, end to end:
/// synthetic Golub cohort -> 38/34 stratified split (~70% L1 in training)
/// -> mRMR top-5 genes -> integer scaling -> MATLAB-schedule training
/// -> fixed-point quantization.  Every bench and example builds on this.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "data/golub.hpp"
#include "data/mrmr.hpp"
#include "nn/quantized.hpp"
#include "nn/train.hpp"

namespace fannet::core {

struct CaseStudyConfig {
  data::GolubConfig golub;            ///< 72 x 7129 cohort (paper §V-A)
  std::size_t train_all = 27;         ///< L1 training samples (27/38 ≈ 71%)
  std::size_t train_aml = 11;         ///< L0 training samples
  std::size_t selected_genes = 5;     ///< mRMR picks (paper: top 5)
  data::MrmrScheme mrmr_scheme = data::MrmrScheme::kMID;
  std::size_t hidden_neurons = 20;    ///< paper architecture 5-20-2
  nn::TrainConfig train;              ///< defaults to the paper's LR schedule
  std::uint64_t split_seed = 7;
  /// Calibrated jointly with GolubConfig::sample_noise_sd (see there).
  std::uint64_t init_seed = 13;
};

struct CaseStudy {
  data::GolubData golub;
  std::vector<std::size_t> selected_genes;  ///< columns picked by mRMR

  la::Matrix<util::i64> train_x;  ///< integer inputs in [1,100]
  la::Matrix<util::i64> test_x;
  std::vector<int> train_y;
  std::vector<int> test_y;

  nn::Network network;
  nn::QuantizedNetwork qnet;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;   ///< paper: 94.12% (32/34)
};

/// Runs the full pipeline; deterministic for a given config.
[[nodiscard]] CaseStudy build_case_study(const CaseStudyConfig& config = {});

/// A small-cohort configuration for fast unit/integration tests (hundreds
/// of genes instead of 7129; same code paths).
[[nodiscard]] CaseStudyConfig small_case_study_config();

}  // namespace fannet::core
