#include "core/analysis.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "verify/engine.hpp"
#include "verify/scheduler.hpp"

namespace fannet::core {

using util::i64;
using verify::NoiseBox;
using verify::Verdict;

BiasReport analyze_bias(const std::vector<CorpusEntry>& corpus,
                        std::size_t num_labels,
                        const std::vector<int>& train_labels) {
  if (num_labels == 0) throw InvalidArgument("analyze_bias: no labels");
  BiasReport report;
  report.direction.assign(num_labels,
                          std::vector<std::uint64_t>(num_labels, 0));
  report.train_class_counts.assign(num_labels, 0);

  for (const int label : train_labels) {
    if (label < 0 || static_cast<std::size_t>(label) >= num_labels) {
      throw InvalidArgument("analyze_bias: train label out of range");
    }
    ++report.train_class_counts[static_cast<std::size_t>(label)];
  }
  if (!train_labels.empty()) {
    std::size_t majority = 0;
    for (std::size_t l = 1; l < num_labels; ++l) {
      if (report.train_class_counts[l] > report.train_class_counts[majority]) {
        majority = l;
      }
    }
    report.train_majority_label = static_cast<int>(majority);
    report.train_majority_fraction =
        static_cast<double>(report.train_class_counts[majority]) /
        static_cast<double>(train_labels.size());
  }

  std::vector<std::uint64_t> flips_to(num_labels, 0);
  std::uint64_t total = 0;
  for (const CorpusEntry& entry : corpus) {
    const auto from = static_cast<std::size_t>(entry.true_label);
    const auto to = static_cast<std::size_t>(entry.cex.mis_label);
    if (from >= num_labels || to >= num_labels) {
      throw InvalidArgument("analyze_bias: corpus label out of range");
    }
    ++report.direction[from][to];
    ++flips_to[to];
    ++total;
  }
  if (total > 0) {
    std::size_t top = 0;
    for (std::size_t l = 1; l < num_labels; ++l) {
      if (flips_to[l] > flips_to[top]) top = l;
    }
    report.bias_toward = static_cast<int>(top);
    report.bias_fraction =
        static_cast<double>(flips_to[top]) / static_cast<double>(total);
  }
  return report;
}

namespace {

/// Directional existence probe shared by the batch path and the sweep
/// campaign: is there ANY counterexample with delta at `node` strictly of
/// `sign` while the other nodes roam ±range?  Decided as one cancellable
/// existence batch over the correct samples (run_until_witness), so the
/// answer is identical for every thread count.
bool directional_possible(const Fannet& fannet,
                          const verify::Scheduler& scheduler,
                          const verify::Engine& engine,
                          const la::Matrix<i64>& inputs,
                          const std::vector<int>& labels,
                          const std::vector<std::size_t>& correct,
                          std::size_t node, int sign, int range) {
  const std::size_t n = inputs.cols();
  NoiseBox box = NoiseBox::symmetric(n, range);
  if (sign > 0) box.lo[node] = 1; else box.hi[node] = -1;
  if (box.lo[node] > box.hi[node]) return false;  // range 0: no strict direction
  std::vector<verify::Query> batch;
  batch.reserve(correct.size());
  for (const std::size_t s : correct) {
    batch.push_back(fannet.make_query(inputs.row(s), labels[s], box, false));
  }
  return scheduler.run_until_witness(batch, engine).has_value();
}

/// Eq.-3 probe shared by both paths: the minimal |delta_node| that flips
/// `row` when ONLY that node is noised, found by one existence query at the
/// full range plus a bisection; nullopt when the node never flips it.
std::optional<int> solo_flip(const Fannet& fannet,
                             const verify::Scheduler& scheduler,
                             const verify::Engine& engine,
                             std::span<const i64> row, int label,
                             std::size_t node, std::size_t n, int range) {
  NoiseBox solo;
  solo.lo.assign(n, 0);
  solo.hi.assign(n, 0);
  solo.lo[node] = -range;
  solo.hi[node] = range;
  const auto r =
      scheduler.verify_one(fannet.make_query(row, label, solo, false), engine);
  if (r.verdict != Verdict::kVulnerable) return std::nullopt;
  const int flip_at = std::max(std::abs(r.counterexample->deltas[node]), 1);
  // Tighten: find the minimal |delta_node| that flips via bisection.
  int lo = 1, hi = flip_at;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    NoiseBox probe = solo;
    probe.lo[node] = -mid;
    probe.hi[node] = mid;
    if (scheduler
            .verify_one(fannet.make_query(row, label, probe, false), engine)
            .verdict == Verdict::kVulnerable) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

/// Sweep decomposition of analyze_sensitivity's probe fan-out (DESIGN.md
/// §9).  Unit order: the 2n directional probes first (unit 2i = node i
/// positive, 2i+1 = node i negative), then the n*|correct| Eq.-3 solo
/// bisections in the batch path's task order (task % n = node, task / n =
/// position in `correct`).  Unit rows:
///
///   directional: [unit, possible(0/1)]
///   solo:        [unit, min_flip or -1]
class SensitivityCampaign final : public verify::SweepCampaign {
 public:
  SensitivityCampaign(const Fannet& fannet, const la::Matrix<i64>& inputs,
                      const std::vector<int>& labels, int range,
                      const SensitivityConfig& config,
                      std::vector<std::size_t> correct,
                      NodeSensitivityReport& report)
      : fannet_(fannet),
        inputs_(inputs),
        labels_(labels),
        range_(range),
        config_(config),
        correct_(std::move(correct)),
        report_(report),
        engine_(verify::engine(config.engine.name)),
        scheduler_({.threads = 1,
                    .intra_query_threads = config.intra_query_threads,
                    .batch_hint = config.batch}) {}

  [[nodiscard]] std::string_view name() const override {
    return "sensitivity";
  }

  [[nodiscard]] std::uint64_t fingerprint() const override {
    verify::SweepFingerprint fp;
    fp.mix_bytes("sensitivity");
    fp.mix_u64(fannet_.net().fingerprint());
    fp.mix_i64(range_);
    fp.mix_bytes(config_.engine.name);
    verify::mix_dataset(fp, inputs_, labels_);
    return fp.value();
  }

  [[nodiscard]] std::size_t units() const override {
    return 2 * inputs_.cols() + inputs_.cols() * correct_.size();
  }

  [[nodiscard]] verify::SweepRows run_units(std::size_t begin,
                                            std::size_t end) const override {
    const std::size_t n = inputs_.cols();
    verify::SweepRows rows;
    rows.reserve(end - begin);
    for (std::size_t u = begin; u < end; ++u) {
      if (u < 2 * n) {
        const std::size_t node = u / 2;
        const int sign = (u % 2 == 0) ? +1 : -1;
        const bool possible =
            directional_possible(fannet_, scheduler_, engine_, inputs_,
                                 labels_, correct_, node, sign, range_);
        rows.push_back({static_cast<std::int64_t>(u), possible ? 1 : 0});
      } else {
        const std::size_t task = u - 2 * n;
        const std::size_t node = task % n;
        const std::size_t s = correct_[task / n];
        const std::optional<int> flip =
            solo_flip(fannet_, scheduler_, engine_, inputs_.row(s), labels_[s],
                      node, n, range_);
        rows.push_back(
            {static_cast<std::int64_t>(u), flip ? *flip : std::int64_t{-1}});
      }
    }
    return rows;
  }

  void absorb(std::size_t begin, std::size_t end,
              const verify::SweepRows& rows) override {
    if (rows.size() != end - begin) {
      throw Error(
          "sensitivity sweep: shard row count does not match its range");
    }
    const std::size_t n = inputs_.cols();
    for (std::size_t u = begin; u < end; ++u) {
      const std::vector<std::int64_t>& unit = rows[u - begin];
      if (unit.size() != 2 || unit[0] != static_cast<std::int64_t>(u)) {
        throw Error("sensitivity sweep: shard row does not fit the campaign");
      }
      if (u < 2 * n) {
        const std::size_t node = u / 2;
        (u % 2 == 0 ? report_.positive_possible
                    : report_.negative_possible)[node] = unit[1] != 0;
      } else if (unit[1] >= 0) {
        std::optional<int>& best = report_.solo_flip_range[(u - 2 * n) % n];
        const int flip = static_cast<int>(unit[1]);
        if (!best.has_value() || flip < *best) best = flip;
      }
    }
  }

 private:
  const Fannet& fannet_;
  const la::Matrix<i64>& inputs_;
  const std::vector<int>& labels_;
  const int range_;
  const SensitivityConfig& config_;
  std::vector<std::size_t> correct_;
  NodeSensitivityReport& report_;
  const verify::Engine& engine_;
  verify::Scheduler scheduler_;  ///< serial dispatch inside one shard
};

}  // namespace

NodeSensitivityReport analyze_sensitivity(
    const Fannet& fannet, const la::Matrix<i64>& inputs,
    const std::vector<int>& labels, int range,
    const std::vector<CorpusEntry>& corpus,
    const SensitivityConfig& config) {
  const std::size_t n = inputs.cols();
  NodeSensitivityReport report;
  report.positive.assign(n, 0);
  report.negative.assign(n, 0);
  report.zero.assign(n, 0);
  report.min_delta.assign(n, 0);
  report.max_delta.assign(n, 0);
  report.positive_possible.assign(n, false);
  report.negative_possible.assign(n, false);
  report.solo_flip_range.assign(n, std::nullopt);

  // Corpus histograms.
  for (const CorpusEntry& entry : corpus) {
    if (entry.cex.deltas.size() != n) {
      throw InvalidArgument("analyze_sensitivity: corpus dimension mismatch");
    }
    for (std::size_t i = 0; i < n; ++i) {
      const int d = entry.cex.deltas[i];
      if (d > 0) ++report.positive[i];
      else if (d < 0) ++report.negative[i];
      else ++report.zero[i];
      report.min_delta[i] = std::min(report.min_delta[i], d);
      report.max_delta[i] = std::max(report.max_delta[i], d);
    }
  }

  // Sound directional existence + Eq.-3 per-node tolerance, over the
  // correctly classified samples.  Both probe families are embarrassingly
  // parallel and go through the scheduler.
  const std::vector<std::size_t> bad = fannet.validate_p1(inputs, labels);
  std::vector<std::size_t> correct;
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    if (std::find(bad.begin(), bad.end(), s) == bad.end()) correct.push_back(s);
  }
  if (config.sweep.has_value()) {
    if (config.deadline_ms != 0) {
      // Journaled shard rows must be time-independent to be resumable;
      // see analyze_tolerance for the same restriction.
      throw InvalidArgument(
          "analyze_sensitivity: deadline_ms cannot be combined with sweep");
    }
    // Resumable sharded path (DESIGN.md §9): the same directional and solo
    // probes as journaled sweep units; bit-identical to the batch path.
    SensitivityCampaign campaign(fannet, inputs, labels, range, config,
                                 std::move(correct), report);
    verify::SweepOptions options = *config.sweep;
    if (options.threads == 0) options.threads = config.threads;
    report.sweep = verify::SweepRunner(options).run(campaign);
    return report;
  }

  const verify::Engine& engine = verify::engine(config.engine.name);
  const verify::Scheduler scheduler(
      {.threads = config.threads,
       .intra_query_threads = config.intra_query_threads,
       .batch_hint = config.batch,
       .deadline_ms = config.deadline_ms});

  // Directional: delta_i restricted to one sign, others full range.  Per
  // node and sign this is an existence query over the samples — decided as
  // one batch with cancellation on the first witness.
  for (std::size_t i = 0; i < n; ++i) {
    for (const int sign : {+1, -1}) {
      (sign > 0 ? report.positive_possible : report.negative_possible)[i] =
          directional_possible(fannet, scheduler, engine, inputs, labels,
                               correct, i, sign, range);
    }
  }

  // Eq. 3: only node i noised.  Every (node, sample) pair bisects to its
  // minimal flipping |delta_i| independently; the per-node tolerance is
  // the minimum over samples (indexed slots keep the reduce deterministic).
  std::vector<std::optional<int>> pair_flip(n * correct.size());
  scheduler.parallel_for(pair_flip.size(), [&](std::size_t task) {
    const std::size_t i = task % n;
    const std::size_t s = correct[task / n];
    pair_flip[task] = solo_flip(fannet, scheduler, engine, inputs.row(s),
                                labels[s], i, n, range);
  });
  for (std::size_t task = 0; task < pair_flip.size(); ++task) {
    if (!pair_flip[task].has_value()) continue;
    std::optional<int>& best = report.solo_flip_range[task % n];
    if (!best.has_value() || *pair_flip[task] < *best) best = pair_flip[task];
  }
  report.deadline_expired = scheduler.deadline_expired_total();
  return report;
}

BoundaryReport analyze_boundary(const ToleranceReport& tolerance,
                                int bucket_width, int max_range) {
  if (bucket_width < 1) {
    throw InvalidArgument("analyze_boundary: bucket_width must be >= 1");
  }
  BoundaryReport report;
  report.bucket_width = bucket_width;
  report.histogram.assign(
      static_cast<std::size_t>((max_range + bucket_width - 1) / bucket_width),
      0);
  for (const SampleTolerance& st : tolerance.per_sample) {
    if (!st.correct_without_noise) continue;
    report.rows.push_back({st.sample, st.true_label, st.min_flip_range});
    if (st.min_flip_range.has_value()) {
      const auto bucket = static_cast<std::size_t>(
          std::min(*st.min_flip_range - 1, max_range - 1) / bucket_width);
      ++report.histogram[bucket];
    } else {
      ++report.survivors;
    }
  }
  return report;
}

}  // namespace fannet::core
