#include "core/analysis.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "verify/engine.hpp"
#include "verify/scheduler.hpp"

namespace fannet::core {

using util::i64;
using verify::NoiseBox;
using verify::Verdict;

BiasReport analyze_bias(const std::vector<CorpusEntry>& corpus,
                        std::size_t num_labels,
                        const std::vector<int>& train_labels) {
  if (num_labels == 0) throw InvalidArgument("analyze_bias: no labels");
  BiasReport report;
  report.direction.assign(num_labels,
                          std::vector<std::uint64_t>(num_labels, 0));
  report.train_class_counts.assign(num_labels, 0);

  for (const int label : train_labels) {
    if (label < 0 || static_cast<std::size_t>(label) >= num_labels) {
      throw InvalidArgument("analyze_bias: train label out of range");
    }
    ++report.train_class_counts[static_cast<std::size_t>(label)];
  }
  if (!train_labels.empty()) {
    std::size_t majority = 0;
    for (std::size_t l = 1; l < num_labels; ++l) {
      if (report.train_class_counts[l] > report.train_class_counts[majority]) {
        majority = l;
      }
    }
    report.train_majority_label = static_cast<int>(majority);
    report.train_majority_fraction =
        static_cast<double>(report.train_class_counts[majority]) /
        static_cast<double>(train_labels.size());
  }

  std::vector<std::uint64_t> flips_to(num_labels, 0);
  std::uint64_t total = 0;
  for (const CorpusEntry& entry : corpus) {
    const auto from = static_cast<std::size_t>(entry.true_label);
    const auto to = static_cast<std::size_t>(entry.cex.mis_label);
    if (from >= num_labels || to >= num_labels) {
      throw InvalidArgument("analyze_bias: corpus label out of range");
    }
    ++report.direction[from][to];
    ++flips_to[to];
    ++total;
  }
  if (total > 0) {
    std::size_t top = 0;
    for (std::size_t l = 1; l < num_labels; ++l) {
      if (flips_to[l] > flips_to[top]) top = l;
    }
    report.bias_toward = static_cast<int>(top);
    report.bias_fraction =
        static_cast<double>(flips_to[top]) / static_cast<double>(total);
  }
  return report;
}

NodeSensitivityReport analyze_sensitivity(
    const Fannet& fannet, const la::Matrix<i64>& inputs,
    const std::vector<int>& labels, int range,
    const std::vector<CorpusEntry>& corpus,
    const SensitivityConfig& config) {
  const std::size_t n = inputs.cols();
  NodeSensitivityReport report;
  report.positive.assign(n, 0);
  report.negative.assign(n, 0);
  report.zero.assign(n, 0);
  report.min_delta.assign(n, 0);
  report.max_delta.assign(n, 0);
  report.positive_possible.assign(n, false);
  report.negative_possible.assign(n, false);
  report.solo_flip_range.assign(n, std::nullopt);

  // Corpus histograms.
  for (const CorpusEntry& entry : corpus) {
    if (entry.cex.deltas.size() != n) {
      throw InvalidArgument("analyze_sensitivity: corpus dimension mismatch");
    }
    for (std::size_t i = 0; i < n; ++i) {
      const int d = entry.cex.deltas[i];
      if (d > 0) ++report.positive[i];
      else if (d < 0) ++report.negative[i];
      else ++report.zero[i];
      report.min_delta[i] = std::min(report.min_delta[i], d);
      report.max_delta[i] = std::max(report.max_delta[i], d);
    }
  }

  // Sound directional existence + Eq.-3 per-node tolerance, over the
  // correctly classified samples.  Both probe families are embarrassingly
  // parallel and go through the scheduler.
  const std::vector<std::size_t> bad = fannet.validate_p1(inputs, labels);
  std::vector<std::size_t> correct;
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    if (std::find(bad.begin(), bad.end(), s) == bad.end()) correct.push_back(s);
  }
  const verify::Engine& engine = verify::engine(config.engine.name);
  const verify::Scheduler scheduler(
      {.threads = config.threads,
       .intra_query_threads = config.intra_query_threads});

  // Directional: delta_i restricted to one sign, others full range.  Per
  // node and sign this is an existence query over the samples — decided as
  // one batch with cancellation on the first witness.
  for (std::size_t i = 0; i < n; ++i) {
    for (const int sign : {+1, -1}) {
      NoiseBox box = NoiseBox::symmetric(n, range);
      if (sign > 0) box.lo[i] = 1; else box.hi[i] = -1;
      if (box.lo[i] > box.hi[i]) continue;  // range 0: no strict direction
      std::vector<verify::Query> batch;
      batch.reserve(correct.size());
      for (const std::size_t s : correct) {
        batch.push_back(
            fannet.make_query(inputs.row(s), labels[s], box, false));
      }
      const bool possible =
          scheduler.run_until_witness(batch, engine).has_value();
      (sign > 0 ? report.positive_possible : report.negative_possible)[i] =
          possible;
    }
  }

  // Eq. 3: only node i noised.  Every (node, sample) pair bisects to its
  // minimal flipping |delta_i| independently; the per-node tolerance is
  // the minimum over samples (indexed slots keep the reduce deterministic).
  std::vector<std::optional<int>> pair_flip(n * correct.size());
  scheduler.parallel_for(pair_flip.size(), [&](std::size_t task) {
    const std::size_t i = task % n;
    const std::size_t s = correct[task / n];
    const auto row = inputs.row(s);
    NoiseBox solo;
    solo.lo.assign(n, 0);
    solo.hi.assign(n, 0);
    solo.lo[i] = -range;
    solo.hi[i] = range;
    const auto r =
        scheduler.verify_one(fannet.make_query(row, labels[s], solo, false),
                             engine);
    if (r.verdict != Verdict::kVulnerable) return;
    const int flip_at = std::max(std::abs(r.counterexample->deltas[i]), 1);
    // Tighten: find the minimal |delta_i| that flips via bisection.
    int lo = 1, hi = flip_at;
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      NoiseBox probe = solo;
      probe.lo[i] = -mid;
      probe.hi[i] = mid;
      if (scheduler
              .verify_one(fannet.make_query(row, labels[s], probe, false),
                          engine)
              .verdict == Verdict::kVulnerable) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    pair_flip[task] = lo;
  });
  for (std::size_t task = 0; task < pair_flip.size(); ++task) {
    if (!pair_flip[task].has_value()) continue;
    std::optional<int>& best = report.solo_flip_range[task % n];
    if (!best.has_value() || *pair_flip[task] < *best) best = pair_flip[task];
  }
  return report;
}

BoundaryReport analyze_boundary(const ToleranceReport& tolerance,
                                int bucket_width, int max_range) {
  if (bucket_width < 1) {
    throw InvalidArgument("analyze_boundary: bucket_width must be >= 1");
  }
  BoundaryReport report;
  report.bucket_width = bucket_width;
  report.histogram.assign(
      static_cast<std::size_t>((max_range + bucket_width - 1) / bucket_width),
      0);
  for (const SampleTolerance& st : tolerance.per_sample) {
    if (!st.correct_without_noise) continue;
    report.rows.push_back({st.sample, st.true_label, st.min_flip_range});
    if (st.min_flip_range.has_value()) {
      const auto bucket = static_cast<std::size_t>(
          std::min(*st.min_flip_range - 1, max_range - 1) / bucket_width);
      ++report.histogram[bucket];
    } else {
      ++report.survivors;
    }
  }
  return report;
}

}  // namespace fannet::core
