/// \file
/// \brief Behavior Extraction: trained network -> SMV model (paper Fig. 2, left).
///
/// translate_sample() emits, for one test input X with true label Sx, the
/// state machine the paper hands to nuXmv:
///
///   VAR    phase : {s_init, s_eval};  d1..dN : -R..R;   -- noise, percent
///   ASSIGN next(phase) := s_eval;  next(d_i) := -R..R;  -- fresh every cycle
///   DEFINE X_i := x_i*(100+d_i);  n_j := <affine>;  a_j := relu-case;
///          o_k := <affine>;  OC := <argmax case>;
///   INVARSPEC phase = s_eval -> OC = Sx                 -- property P2
///
/// The whole encoding is integer-only: the common scale factors of
/// nn::QuantizedNetwork replace division (DESIGN.md §4.1), so any backend
/// (explicit, BMC, BDD) answers exactly the same query as the exact-integer
/// verification engines — the property tests assert this agreement.
///
/// make_fig3_label_fsm() / make_fig3_noise_fsm() build the paper's Fig.-3
/// state machines whose reachable-state/transition counts the statespace
/// bench reproduces (3/6 and, for 6 nodes with [0,1]% noise, 65/4160).
#pragma once

#include "nn/quantized.hpp"
#include "smv/ast.hpp"
#include "smv/eval.hpp"
#include "verify/query.hpp"

namespace fannet::core {

/// Names used by the translation (shared with trace decoding).
struct TranslationLayout {
  std::size_t phase_var = 0;          ///< index of `phase`
  std::vector<std::size_t> delta_vars;  ///< noise variable indices, in order
  smv::i64 eval_phase_value = 1;      ///< value of the s_eval symbol
};

struct Translation {
  smv::Module module;
  TranslationLayout layout;
};

/// P2 model: noise ranges from the query box.  With `with_noise == false`
/// the deltas are pinned to zero and the spec degenerates to P1 (functional
/// validation of the translated network).
[[nodiscard]] Translation translate_sample(const verify::Query& query,
                                           bool with_noise = true);

/// Extracts the noise vector from a violating trace state.
[[nodiscard]] verify::Counterexample decode_counterexample(
    const Translation& translation, const verify::Query& query,
    const smv::State& state);

/// Fig. 3(b): the label FSM without noise — {Initial, L0, L1}, every input
/// sample nondeterministically drives to either label: 3 states, 6 edges.
[[nodiscard]] smv::Module make_fig3_label_fsm();

/// Fig. 3(c): the noise FSM — `nodes` per-input noise variables in
/// [0, delta_max], re-chosen nondeterministically each cycle, plus the
/// init/eval phase.  Reachable states = 1 + (delta_max+1)^nodes and
/// transitions = (delta_max+1)^nodes * (1 + (delta_max+1)^nodes); for
/// 6 nodes and delta_max = 1 that is 65 states / 4160 transitions.
[[nodiscard]] smv::Module make_fig3_noise_fsm(std::size_t nodes, int delta_max);

}  // namespace fannet::core
