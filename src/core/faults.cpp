#include "core/faults.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <sstream>

#include "core/report.hpp"
#include "nn/batch_eval.hpp"
#include "util/checked.hpp"
#include "util/error.hpp"
#include "verify/scheduler.hpp"

namespace fannet::core {

using util::i64;
using util::u64;

std::string_view fault_model_name(FaultModel model) {
  switch (model) {
    case FaultModel::kPercentScale: return "percent";
    case FaultModel::kStuckAtZero: return "stuck-at-zero";
    case FaultModel::kSignFlip: return "sign-flip";
    case FaultModel::kBitFlip: return "bit-flip";
  }
  throw InvalidArgument("fault_model_name: unknown model");
}

std::optional<FaultModel> fault_model_from_name(std::string_view name) {
  for (const FaultModel m :
       {FaultModel::kPercentScale, FaultModel::kStuckAtZero,
        FaultModel::kSignFlip, FaultModel::kBitFlip}) {
    if (name == fault_model_name(m)) return m;
  }
  return std::nullopt;
}

namespace {

/// One injectable parameter value, in scan order (least severe first so the
/// first flip found is the minimal one).
struct FaultCandidate {
  int severity = 0;  ///< model units (percent magnitude / bit index / 0)
  int sign = 0;      ///< +1/-1 for kPercentScale, 0 otherwise
  /// The faulted raw fixed-point value; nullopt when computing it already
  /// left int64 (e.g. sign-flipping INT64_MIN, percent-scaling near the
  /// edge) — counted as undecided like any other out-of-range candidate.
  std::optional<i64> raw;
};

/// `compute` evaluated with overflow mapped to "undecidable candidate".
std::optional<i64> faulted_raw_or_undecided(const auto& compute) {
  try {
    return compute();
  } catch (const ArithmeticError&) {
    return std::nullopt;
  }
}

std::vector<FaultCandidate> fault_candidates(const WeightFaultConfig& config,
                                             i64 original) {
  std::vector<FaultCandidate> out;
  switch (config.model) {
    case FaultModel::kPercentScale:
      for (int magnitude = config.step; magnitude <= config.max_percent;
           magnitude += config.step) {
        for (const int sign : {+1, -1}) {
          out.push_back({magnitude, sign, faulted_raw_or_undecided([&] {
                           return nn::scaled_param_raw(original,
                                                       sign * magnitude);
                         })});
        }
      }
      break;
    case FaultModel::kStuckAtZero:
      out.push_back({0, 0, 0});
      break;
    case FaultModel::kSignFlip:
      out.push_back({0, 0, faulted_raw_or_undecided([&] {
                       return util::checked_sub(0, original);
                     })});
      break;
    case FaultModel::kBitFlip:
      // Low bits first: a low-order flip is the least severe corruption, so
      // the first hit is the minimal one, mirroring the percent scan.
      for (int bit = 0; bit < 64; ++bit) {
        const u64 flipped = static_cast<u64>(original) ^ (u64{1} << bit);
        out.push_back({bit, 0, static_cast<i64>(flipped)});
      }
      break;
  }
  return out;
}

/// Cost counters accumulated by one parameter's candidate scan.
struct ParamScanCounters {
  std::uint64_t evaluations = 0;
  std::uint64_t layer_evaluations = 0;
  std::uint64_t undecided = 0;
};

/// Batched incremental scan of one parameter: the serial candidate x
/// sample attempt stream is staged in chunks of SoA lanes (all sharing the
/// faulted layer), evaluated through PrefixEvaluator::classify_patched_batch,
/// then *replayed in serial order* — so the first flip found, the counters
/// charged (only up to the serial scan's terminal event), and the
/// undecided accounting are bit-identical to scan_parameter's scalar loop.
/// Lanes staged past the serial stop are discarded uncharged; a lane the
/// kernel flags as overflowing aborts its candidate exactly like the
/// scalar ArithmeticError would.
void scan_parameter_batched(const nn::QuantizedNetwork& net,
                            const std::vector<int>& labels,
                            const WeightFaultConfig& config,
                            const std::vector<std::size_t>& correct,
                            const nn::PrefixEvaluator& prefix,
                            const nn::BatchEvaluator& batcher,
                            const std::vector<FaultCandidate>& candidates,
                            i64 original, std::size_t col, WeightFault& fault,
                            ParamScanCounters& counters) {
  const std::size_t depth = net.depth();
  const std::size_t full_chunk =
      nn::BatchEvaluator::resolve_batch(config.batch);

  struct Event {
    bool is_lane = false;   // false = "candidate undecided" marker (!raw)
    std::size_t cand = 0;   // candidate index
    std::size_t sample = 0; // lane events only
  };
  nn::PrefixEvaluator::BatchScratch scratch;
  std::vector<nn::PrefixEvaluator::PatchLane> lanes;
  std::vector<Event> events;

  std::size_t ci = 0;  // staging cursor: next candidate ...
  std::size_t si = 0;  // ... and next index into `correct` within it
  // Ramp the chunk size up from small: fragile parameters flip within the
  // first few attempts, and a short first chunk keeps that early exit
  // near-scalar.
  std::size_t chunk = std::min<std::size_t>(8, full_chunk);

  while (ci < candidates.size()) {
    lanes.clear();
    events.clear();
    while (lanes.size() < chunk && ci < candidates.size()) {
      const FaultCandidate& candidate = candidates[ci];
      if (!candidate.raw) {
        events.push_back({false, ci, 0});
        ++ci;
        continue;
      }
      if (*candidate.raw == original || correct.empty()) {
        ++ci;  // no-op candidate / nothing to test: no events, like serial
        continue;
      }
      events.push_back({true, ci, correct[si]});
      lanes.push_back({correct[si], fault.row, col, *candidate.raw});
      if (++si == correct.size()) {
        si = 0;
        ++ci;
      }
    }
    prefix.classify_patched_batch(batcher, fault.layer, lanes, scratch);

    // Serial replay of the staged events.
    std::size_t lane_idx = 0;
    std::size_t aborted_cand = candidates.size();  // sentinel: none
    for (const Event& event : events) {
      if (!event.is_lane) {
        ++counters.undecided;
        continue;
      }
      const std::size_t t = lane_idx++;
      if (event.cand == aborted_cand) continue;  // serial never attempted it
      ++counters.evaluations;
      counters.layer_evaluations += depth - fault.layer;
      if (scratch.overflow[t] != 0) {
        // The scalar attempt would have thrown ArithmeticError: the serial
        // scan marks the candidate undecided and moves to the next one.
        aborted_cand = event.cand;
        ++counters.undecided;
        continue;
      }
      if (scratch.labels[t] != labels[event.sample]) {
        const FaultCandidate& candidate = candidates[event.cand];
        fault.min_flip_percent = candidate.severity;
        fault.flip_sign = candidate.sign;
        fault.flipped_sample = event.sample;
        fault.flipped_raw = *candidate.raw;
        return;  // everything staged past here is past the serial stop
      }
    }
    // An abort only voids the rest of its own candidate; if the staging
    // cursor is still inside that candidate, fast-forward past it.
    if (aborted_cand != candidates.size() && ci == aborted_cand) {
      si = 0;
      ++ci;
    }
    chunk = std::min(chunk * 2, full_chunk);
  }
}

/// One parameter's candidate scan, shared by the in-process fan-out and
/// the sweep campaign: fills `fault`'s flip fields (if any candidate flips
/// a correct sample) and accumulates the cost counters.  `prefix` selects
/// the incremental engine; null falls back to the naive per-task patched
/// copy of `net`.  A non-null `batcher` (incremental only) routes the scan
/// through the SoA replay above.
void scan_parameter(const nn::QuantizedNetwork& net,
                    const la::Matrix<i64>& inputs,
                    const std::vector<int>& labels,
                    const WeightFaultConfig& config,
                    const std::vector<std::size_t>& correct,
                    const nn::PrefixEvaluator* prefix,
                    const nn::BatchEvaluator* batcher, WeightFault& fault,
                    ParamScanCounters& counters) {
  const std::size_t depth = net.depth();
  const nn::QLayer& layer = net.layers()[fault.layer];
  const std::size_t col = fault.is_bias() ? layer.in_dim() : fault.col;
  const i64 original = net.param_raw(fault.layer, fault.row, col);
  const std::vector<FaultCandidate> candidates =
      fault_candidates(config, original);

  if (prefix != nullptr && batcher != nullptr) {
    scan_parameter_batched(net, labels, config, correct, *prefix, *batcher,
                           candidates, original, col, fault, counters);
    return;
  }

  // Incremental: per-call scratch over the shared read-only memo.
  // Naive: one private working copy per parameter, patched in place per
  // candidate (patch/restore — never a whole-network copy per candidate).
  nn::PrefixEvaluator::Scratch scratch;
  std::optional<nn::QuantizedNetwork> naive_net;
  if (prefix == nullptr) naive_net.emplace(net);

  // Candidates are in ascending-severity order, so the first hit is the
  // minimal one.
  for (const FaultCandidate& candidate : candidates) {
    if (fault.min_flip_percent) break;
    if (!candidate.raw) {
      ++counters.undecided;
      continue;
    }
    // A no-op candidate (the faulted value equals the stored one, e.g.
    // percent-scaling or stuck-at-zero on a zero weight) leaves the
    // network bit-identical, so it can never flip a correctly-classified
    // sample — skip the evaluation pass.  Both engines skip identically.
    if (*candidate.raw == original) continue;
    std::optional<nn::ScopedParamPatch> patch;
    if (naive_net) {
      patch.emplace(*naive_net, fault.layer, fault.row, col, *candidate.raw);
    }
    bool undecidable = false;
    for (const std::size_t s : correct) {
      ++counters.evaluations;
      counters.layer_evaluations += prefix ? (depth - fault.layer) : depth;
      int cls = 0;
      try {
        cls = prefix ? prefix->classify_patched(s, fault.layer, fault.row,
                                                col, *candidate.raw, scratch)
                     : naive_net->classify_noised(inputs.row(s), {});
      } catch (const ArithmeticError&) {
        // The faulted value pushed an exact accumulation out of int64
        // (possible for high-order bit flips).  Identical in both
        // engines: skip the candidate, never guess.
        undecidable = true;
        break;
      }
      if (cls != labels[s]) {
        fault.min_flip_percent = candidate.severity;
        fault.flip_sign = candidate.sign;
        fault.flipped_sample = s;
        fault.flipped_raw = *candidate.raw;
        break;
      }
    }
    if (undecidable) ++counters.undecided;
  }
}

/// Sweep decomposition of analyze_weight_faults (DESIGN.md §9): one work
/// unit per parameter, in the report's scan order.  Unit rows:
///
///   [index, has_flip(0/1), severity, sign, flipped_sample, flipped_raw,
///    evaluations, layer_evaluations, undecided]
class WeightFaultCampaign final : public verify::SweepCampaign {
 public:
  WeightFaultCampaign(const nn::QuantizedNetwork& net,
                      const la::Matrix<i64>& inputs,
                      const std::vector<int>& labels,
                      const WeightFaultConfig& config,
                      std::vector<std::size_t> correct,
                      const nn::PrefixEvaluator* prefix,
                      const nn::BatchEvaluator* batcher,
                      WeightFaultReport& report)
      : net_(net),
        inputs_(inputs),
        labels_(labels),
        config_(config),
        correct_(std::move(correct)),
        prefix_(prefix),
        batcher_(batcher),
        report_(report) {}

  [[nodiscard]] std::string_view name() const override {
    return "weight-faults";
  }

  [[nodiscard]] std::uint64_t fingerprint() const override {
    verify::SweepFingerprint fp;
    fp.mix_bytes("weight-faults");
    fp.mix_u64(net_.fingerprint());
    fp.mix_i64(config_.max_percent);
    fp.mix_i64(config_.step);
    fp.mix_u64(static_cast<std::uint64_t>(config_.model));
    fp.mix_u64(static_cast<std::uint64_t>(config_.scan));
    verify::mix_dataset(fp, inputs_, labels_);
    return fp.value();
  }

  [[nodiscard]] std::size_t units() const override {
    return report_.faults.size();
  }

  [[nodiscard]] verify::SweepRows run_units(std::size_t begin,
                                            std::size_t end) const override {
    verify::SweepRows rows;
    rows.reserve(end - begin);
    for (std::size_t u = begin; u < end; ++u) {
      // Scan into a private copy of the skeleton entry: results reach the
      // report only through absorb, journaled and fresh shards alike.
      WeightFault fault = report_.faults[u];
      ParamScanCounters counters;
      scan_parameter(net_, inputs_, labels_, config_, correct_, prefix_,
                     batcher_, fault, counters);
      rows.push_back({static_cast<std::int64_t>(u),
                      fault.min_flip_percent ? 1 : 0,
                      fault.min_flip_percent ? *fault.min_flip_percent : 0,
                      fault.flip_sign,
                      static_cast<std::int64_t>(fault.flipped_sample),
                      fault.flipped_raw,
                      static_cast<std::int64_t>(counters.evaluations),
                      static_cast<std::int64_t>(counters.layer_evaluations),
                      static_cast<std::int64_t>(counters.undecided)});
    }
    return rows;
  }

  void absorb(std::size_t begin, std::size_t end,
              const verify::SweepRows& rows) override {
    if (rows.size() != end - begin) {
      throw Error(
          "weight-fault sweep: shard row count does not match its range");
    }
    for (std::size_t u = begin; u < end; ++u) {
      const std::vector<std::int64_t>& unit = rows[u - begin];
      if (unit.size() != 9 || unit[0] != static_cast<std::int64_t>(u)) {
        throw Error("weight-fault sweep: shard row does not fit the campaign");
      }
      WeightFault& fault = report_.faults[u];
      if (unit[1] != 0) {
        fault.min_flip_percent = static_cast<int>(unit[2]);
        fault.flip_sign = static_cast<int>(unit[3]);
        fault.flipped_sample = static_cast<std::size_t>(unit[4]);
        fault.flipped_raw = unit[5];
      } else {
        ++report_.robust_weights;
      }
      report_.evaluations += static_cast<std::uint64_t>(unit[6]);
      report_.layer_evaluations += static_cast<std::uint64_t>(unit[7]);
      report_.undecided_candidates += static_cast<std::uint64_t>(unit[8]);
    }
  }

 private:
  const nn::QuantizedNetwork& net_;
  const la::Matrix<i64>& inputs_;
  const std::vector<int>& labels_;
  const WeightFaultConfig& config_;
  std::vector<std::size_t> correct_;
  const nn::PrefixEvaluator* prefix_;
  const nn::BatchEvaluator* batcher_;
  WeightFaultReport& report_;
};

}  // namespace

WeightFaultReport analyze_weight_faults(const nn::QuantizedNetwork& net,
                                        const la::Matrix<i64>& inputs,
                                        const std::vector<int>& labels,
                                        const WeightFaultConfig& config) {
  if (inputs.rows() != labels.size()) {
    throw InvalidArgument("analyze_weight_faults: inputs/labels mismatch");
  }
  if (config.max_percent < 1 || config.step < 1) {
    throw InvalidArgument("analyze_weight_faults: bad scan parameters");
  }

  // The incremental engine memoizes one noise-free forward pass per sample
  // (every candidate below re-evaluates only the faulted layer and its
  // suffix); the naive engine keeps no state and rescans from layer 0.
  std::optional<nn::PrefixEvaluator> prefix;
  if (config.scan == FaultScan::kIncremental) prefix.emplace(net, inputs);

  // SoA evaluator for the batched suffix re-evaluation (DESIGN.md §10);
  // shared read-only across workers (each thread keeps its own scratch).
  // batch == 1 keeps the scalar reference loop; the naive engine is
  // always scalar.
  std::optional<nn::BatchEvaluator> batcher;
  if (prefix && nn::BatchEvaluator::resolve_batch(config.batch) > 1) {
    batcher.emplace(net);
  }

  // Only correctly-classified samples count (as in the noise analyses).
  // PrefixEvaluator::base_class is the memoized value of the same
  // classification, so the filter is engine-independent.
  std::vector<std::size_t> correct;
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    const int cls = prefix ? prefix->base_class(s)
                           : net.classify_noised(inputs.row(s), {});
    if (cls == labels[s]) correct.push_back(s);
  }

  // One task per parameter; each scans its candidates independently and
  // writes into an indexed slot, so the scan order (and the report) is
  // identical for every thread count.
  WeightFaultReport report;
  report.model = config.model;
  for (std::size_t li = 0; li < net.depth(); ++li) {
    const nn::QLayer& layer = net.layers()[li];
    for (std::size_t row = 0; row < layer.out_dim(); ++row) {
      for (std::size_t col = 0; col <= layer.in_dim(); ++col) {
        WeightFault fault;
        fault.layer = li;
        fault.row = row;
        fault.col = (col == layer.in_dim()) ? kBiasCol : col;
        report.faults.push_back(fault);
      }
    }
  }

  if (config.sweep.has_value()) {
    // Resumable sharded path (DESIGN.md §9): one journaled unit per
    // parameter; a killed campaign resumes instead of rescanning.  The
    // report is bit-identical to the in-process fan-out below.
    WeightFaultCampaign campaign(net, inputs, labels, config,
                                 std::move(correct),
                                 prefix ? &*prefix : nullptr,
                                 batcher ? &*batcher : nullptr, report);
    verify::SweepOptions options = *config.sweep;
    if (options.threads == 0) options.threads = config.threads;
    report.sweep = verify::SweepRunner(options).run(campaign);
    return report;
  }

  std::atomic<std::uint64_t> evaluations{0};
  std::atomic<std::uint64_t> layer_evaluations{0};
  std::atomic<std::uint64_t> undecided{0};
  const verify::Scheduler scheduler({.threads = config.threads});
  scheduler.parallel_for(report.faults.size(), [&](std::size_t fi) {
    ParamScanCounters counters;
    scan_parameter(net, inputs, labels, config, correct,
                   prefix ? &*prefix : nullptr, batcher ? &*batcher : nullptr,
                   report.faults[fi], counters);
    evaluations.fetch_add(counters.evaluations, std::memory_order_relaxed);
    layer_evaluations.fetch_add(counters.layer_evaluations,
                                std::memory_order_relaxed);
    undecided.fetch_add(counters.undecided, std::memory_order_relaxed);
  });

  report.evaluations = evaluations.load();
  report.layer_evaluations = layer_evaluations.load();
  report.undecided_candidates = undecided.load();
  for (const WeightFault& fault : report.faults) {
    if (!fault.min_flip_percent) ++report.robust_weights;
  }
  return report;
}

std::vector<WeightFault> most_fragile_weights(const WeightFaultReport& report,
                                              std::size_t count) {
  std::vector<WeightFault> fragile;
  for (const WeightFault& f : report.faults) {
    if (f.min_flip_percent) fragile.push_back(f);
  }
  std::stable_sort(fragile.begin(), fragile.end(),
                   [](const WeightFault& a, const WeightFault& b) {
                     return *a.min_flip_percent < *b.min_flip_percent;
                   });
  if (fragile.size() > count) fragile.resize(count);
  return fragile;
}

namespace {

std::string severity_cell(const WeightFaultReport& report,
                          const WeightFault& f) {
  switch (report.model) {
    case FaultModel::kPercentScale:
      return "+/-" + std::to_string(*f.min_flip_percent) + "%";
    case FaultModel::kStuckAtZero: return "stuck@0";
    case FaultModel::kSignFlip: return "sign";
    case FaultModel::kBitFlip:
      return "bit " + std::to_string(*f.min_flip_percent);
  }
  return "?";
}

std::string direction_cell(const WeightFaultReport& report,
                           const WeightFault& f) {
  if (report.model == FaultModel::kPercentScale) {
    return f.flip_sign > 0 ? "+" : "-";
  }
  return "raw=" + std::to_string(f.flipped_raw);
}

}  // namespace

std::string format_weight_faults(const WeightFaultReport& report,
                                 std::size_t top_count) {
  TextTable t({"rank", "parameter", "min fault", "direction", "sample"});
  const auto fragile = most_fragile_weights(report, top_count);
  for (std::size_t i = 0; i < fragile.size(); ++i) {
    const WeightFault& f = fragile[i];
    std::ostringstream name;
    name << "L" << f.layer << "[" << f.row << "]";
    if (f.is_bias()) name << ".bias";
    else name << "[" << f.col << "]";
    t.add_row({std::to_string(i + 1), name.str(), severity_cell(report, f),
               direction_cell(report, f), std::to_string(f.flipped_sample)});
  }
  std::ostringstream out;
  out << "fault model: " << fault_model_name(report.model) << "\n";
  out << t.to_string();
  out << "Parameters that never flip within the scanned range: "
      << report.robust_weights << "/" << report.faults.size() << "  ("
      << report.evaluations << " exact evaluations, "
      << report.layer_evaluations << " layer evaluations)\n";
  if (report.undecided_candidates > 0) {
    out << "Candidates beyond the exact int64 range (skipped): "
        << report.undecided_candidates << "\n";
  }
  return out.str();
}

}  // namespace fannet::core
