#include "core/faults.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "core/report.hpp"
#include "util/error.hpp"
#include "verify/scheduler.hpp"

namespace fannet::core {

using util::i64;

WeightFaultReport analyze_weight_faults(const nn::QuantizedNetwork& net,
                                        const la::Matrix<i64>& inputs,
                                        const std::vector<int>& labels,
                                        const WeightFaultConfig& config) {
  if (inputs.rows() != labels.size()) {
    throw InvalidArgument("analyze_weight_faults: inputs/labels mismatch");
  }
  if (config.max_percent < 1 || config.step < 1) {
    throw InvalidArgument("analyze_weight_faults: bad scan parameters");
  }

  // Only correctly-classified samples count (as in the noise analyses).
  std::vector<std::size_t> correct;
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    if (net.classify_noised(inputs.row(s), {}) == labels[s]) {
      correct.push_back(s);
    }
  }

  // One task per parameter; each scans its magnitudes independently and
  // writes into an indexed slot, so the scan order (and the report) is
  // identical for every thread count.
  WeightFaultReport report;
  for (std::size_t li = 0; li < net.depth(); ++li) {
    const nn::QLayer& layer = net.layers()[li];
    for (std::size_t row = 0; row < layer.out_dim(); ++row) {
      for (std::size_t col = 0; col <= layer.in_dim(); ++col) {
        WeightFault fault;
        fault.layer = li;
        fault.row = row;
        fault.col = (col == layer.in_dim()) ? ~std::size_t{0} : col;
        report.faults.push_back(fault);
      }
    }
  }

  std::atomic<std::uint64_t> evaluations{0};
  const verify::Scheduler scheduler({.threads = config.threads});
  scheduler.parallel_for(report.faults.size(), [&](std::size_t fi) {
    WeightFault& fault = report.faults[fi];
    const nn::QLayer& layer = net.layers()[fault.layer];
    const std::size_t col = fault.is_bias() ? layer.in_dim() : fault.col;
    std::uint64_t local_evals = 0;

    // Scan |p| ascending so the first hit is the minimal one.
    for (int magnitude = config.step;
         magnitude <= config.max_percent && !fault.min_flip_percent;
         magnitude += config.step) {
      for (const int sign : {+1, -1}) {
        const nn::QuantizedNetwork mutated =
            net.with_scaled_param(fault.layer, fault.row, col,
                                  sign * magnitude);
        for (const std::size_t s : correct) {
          ++local_evals;
          if (mutated.classify_noised(inputs.row(s), {}) != labels[s]) {
            fault.min_flip_percent = magnitude;
            fault.flip_sign = sign;
            fault.flipped_sample = s;
            break;
          }
        }
        if (fault.min_flip_percent) break;
      }
    }
    evaluations.fetch_add(local_evals, std::memory_order_relaxed);
  });

  report.evaluations = evaluations.load();
  for (const WeightFault& fault : report.faults) {
    if (!fault.min_flip_percent) ++report.robust_weights;
  }
  return report;
}

std::vector<WeightFault> most_fragile_weights(const WeightFaultReport& report,
                                              std::size_t count) {
  std::vector<WeightFault> fragile;
  for (const WeightFault& f : report.faults) {
    if (f.min_flip_percent) fragile.push_back(f);
  }
  std::stable_sort(fragile.begin(), fragile.end(),
                   [](const WeightFault& a, const WeightFault& b) {
                     return *a.min_flip_percent < *b.min_flip_percent;
                   });
  if (fragile.size() > count) fragile.resize(count);
  return fragile;
}

std::string format_weight_faults(const WeightFaultReport& report,
                                 std::size_t top_count) {
  TextTable t({"rank", "parameter", "min flip", "direction", "sample"});
  const auto fragile = most_fragile_weights(report, top_count);
  for (std::size_t i = 0; i < fragile.size(); ++i) {
    const WeightFault& f = fragile[i];
    std::ostringstream name;
    name << "L" << f.layer << "[" << f.row << "]";
    if (f.is_bias()) name << ".bias";
    else name << "[" << f.col << "]";
    t.add_row({std::to_string(i + 1), name.str(),
               "+/-" + std::to_string(*f.min_flip_percent) + "%",
               f.flip_sign > 0 ? "+" : "-",
               std::to_string(f.flipped_sample)});
  }
  std::ostringstream out;
  out << t.to_string();
  out << "Parameters that never flip within the scanned range: "
      << report.robust_weights << "/" << report.faults.size() << "  ("
      << report.evaluations << " exact evaluations)\n";
  return out.str();
}

}  // namespace fannet::core
