/// \file
/// \brief Training-bias, input-node-sensitivity and classification-boundary
/// analyses over the adversarial-noise-vector corpus (paper §V-C.2–4).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/fannet.hpp"

namespace fannet::core {

// ---------------------------------------------------------------------------
// Training bias (Eq. 4): misclassification direction histogram.
// ---------------------------------------------------------------------------
struct BiasReport {
  /// direction[from][to] = number of corpus entries with true label `from`
  /// misclassified as `to`.
  std::vector<std::vector<std::uint64_t>> direction;
  /// Training-set class counts (for the "~70% of samples are L1" statement).
  std::vector<std::uint64_t> train_class_counts;
  double train_majority_fraction = 0.0;
  int train_majority_label = -1;
  /// Label most flipped *to* in the corpus (the paper: all flips go L0→L1,
  /// matching the majority class).
  int bias_toward = -1;
  /// Fraction of all flips that land on bias_toward.
  double bias_fraction = 0.0;
};

[[nodiscard]] BiasReport analyze_bias(const std::vector<CorpusEntry>& corpus,
                                      std::size_t num_labels,
                                      const std::vector<int>& train_labels);

// ---------------------------------------------------------------------------
// Input node sensitivity (Eq. 3 + corpus histograms).
// ---------------------------------------------------------------------------
struct NodeSensitivityReport {
  /// Corpus histograms: per input node, the number of counterexamples whose
  /// delta at this node is positive / negative / zero.
  std::vector<std::uint64_t> positive, negative, zero;
  std::vector<int> min_delta, max_delta;  ///< extremes observed per node

  /// Sound directional existence (decided by B&B, not sampled): is there
  /// ANY counterexample with strictly positive (negative) noise at node i
  /// while other nodes roam the full range?  The paper's i5 finding is
  /// "positive_possible[i5] == false".
  std::vector<bool> positive_possible, negative_possible;

  /// Eq. 3 per-node tolerance: largest alpha such that noising ONLY node i
  /// within ±alpha never flips any correctly-classified sample; nullopt if
  /// the node never causes a flip up to the probed range.
  std::vector<std::optional<int>> solo_flip_range;

  /// Sweep accounting when SensitivityConfig::sweep was engaged (default
  /// otherwise: complete() is true).  The corpus histograms above are
  /// always recomputed in full; the probe results are partial until the
  /// campaign completes.
  verify::SweepProgress sweep = {};

  /// Probes cut short by SensitivityConfig::deadline_ms (0 when no
  /// deadline was set, or none expired).  Non-zero means the directional /
  /// solo results above may under-report what a full run would find.
  std::uint64_t deadline_expired = 0;
};

struct SensitivityConfig {
  /// Engine deciding the directional/solo probes (complete engines only —
  /// the probes are sound existence decisions, not samples).
  Engine engine = Engine::kCascade;
  /// Worker threads for the probe fan-out (0 = hardware concurrency).  The
  /// directional probes per node run as one cancellable existence batch
  /// each; the per-(node, sample) solo bisections fan out independently.
  std::size_t threads = 0;
  /// Intra-query worker budget per engine dispatch (see
  /// verify::SchedulerOptions::intra_query_threads).
  std::size_t intra_query_threads = 0;
  /// SoA evaluation lanes per engine dispatch (DESIGN.md §10, forwarded as
  /// verify::SchedulerOptions::batch_hint): 0 = auto
  /// (nn::BatchEvaluator::kAutoBatch), 1 = the scalar reference path.
  /// Reports are bit-identical for every value.
  std::size_t batch = 0;
  /// Per-query wall-clock deadline in milliseconds (0 = none), forwarded
  /// as verify::SchedulerOptions::deadline_ms.  Expired probes resolve
  /// kUnknown — "direction not shown possible" / "no solo flip found" —
  /// and are counted in NodeSensitivityReport::deadline_expired.
  /// Incompatible with `sweep` (journaled shard rows must be
  /// time-independent to be resumable) — rejected with InvalidArgument.
  std::uint64_t deadline_ms = 0;
  /// Opt-in resumable sharded execution of the probe fan-out (DESIGN.md
  /// §9): directional and Eq.-3 solo probes become journaled sweep units;
  /// an interrupted campaign resumes instead of restarting.  Reports are
  /// bit-identical to the in-process path.  `sweep->threads` of 0 inherits
  /// `threads` above.
  std::optional<verify::SweepOptions> sweep = std::nullopt;
};

[[nodiscard]] NodeSensitivityReport analyze_sensitivity(
    const Fannet& fannet, const la::Matrix<util::i64>& inputs,
    const std::vector<int>& labels, int range,
    const std::vector<CorpusEntry>& corpus,
    const SensitivityConfig& config = {});

// ---------------------------------------------------------------------------
// Classification-boundary proximity (paper §V-C.2): the distribution of
// per-sample minimal flipping ranges separates inputs near the boundary
// (flip under small noise) from deep-interior ones (survive ±50%).
// ---------------------------------------------------------------------------
struct BoundaryReport {
  struct Row {
    std::size_t sample = 0;
    int true_label = 0;
    std::optional<int> min_flip_range;  // nullopt = survives the max range
  };
  std::vector<Row> rows;              // correctly-classified samples only
  std::vector<std::uint64_t> histogram;  ///< bucketed by min flip range
  int bucket_width = 5;
  std::uint64_t survivors = 0;  ///< samples with no flip up to the max range
};

[[nodiscard]] BoundaryReport analyze_boundary(const ToleranceReport& report,
                                              int bucket_width = 5,
                                              int max_range = 50);

}  // namespace fannet::core
