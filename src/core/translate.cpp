#include "core/translate.hpp"

#include <string>

#include "util/error.hpp"

namespace fannet::core {

using smv::ExprId;
using smv::Module;
using smv::i64;

namespace {

/// DEFINE chain for the network body; returns the define index of OC.
std::size_t emit_network_defines(Module& m, const verify::Query& q,
                                 const std::vector<std::size_t>& delta_vars,
                                 bool with_noise) {
  const nn::QuantizedNetwork& net = *q.net;
  const std::size_t n = q.x.size();

  // X_i := x_i * (100 + d_i)  — scaled noisy inputs.
  std::vector<std::size_t> act_defs;  // define indices of current activations
  for (std::size_t i = 0; i < n; ++i) {
    ExprId factor = m.e_const(nn::kNoiseDen);
    if (with_noise) {
      factor = m.e_binary(smv::Op::kAdd, factor, m.e_var(delta_vars[i]));
    }
    const ExprId xi =
        m.e_binary(smv::Op::kMul, m.e_const(q.x[i]), factor);
    act_defs.push_back(m.add_define("X" + std::to_string(i + 1), xi));
  }
  // Bias-node factor (100 + d_bias) * input_norm for the first layer.
  ExprId bias_factor = m.e_const(nn::kNoiseDen);
  if (with_noise && q.bias_node) {
    bias_factor =
        m.e_binary(smv::Op::kAdd, bias_factor, m.e_var(delta_vars[n]));
  }

  i64 act_scale = util::checked_mul(net.input_norm(), nn::kNoiseDen);
  for (std::size_t li = 0; li < net.depth(); ++li) {
    const nn::QLayer& layer = net.layers()[li];
    std::vector<std::size_t> next_defs;
    for (std::size_t j = 0; j < layer.out_dim(); ++j) {
      // n_j := sum_i W_ji * act_i + bias term.
      ExprId acc;
      if (li == 0) {
        acc = m.e_binary(
            smv::Op::kMul,
            m.e_const(util::checked_mul(layer.bias[j], net.input_norm())),
            bias_factor);
      } else {
        acc = m.e_const(util::checked_mul(layer.bias[j], act_scale));
      }
      const auto row = layer.weights.row(j);
      for (std::size_t i = 0; i < layer.in_dim(); ++i) {
        if (row[i] == 0) continue;
        const ExprId term = m.e_binary(smv::Op::kMul, m.e_const(row[i]),
                                       m.e_def(act_defs[i]));
        acc = m.e_binary(smv::Op::kAdd, acc, term);
      }
      const std::string base =
          (li + 1 == net.depth()) ? "o" : "n" + std::to_string(li + 1) + "_";
      const std::size_t pre =
          m.add_define(base + std::to_string(j + 1), acc);
      if (layer.relu && li + 1 != net.depth()) {
        // a_j := case n_j > 0 : n_j; TRUE : 0; esac
        const ExprId relu = m.e_case({
            m.e_binary(smv::Op::kGt, m.e_def(pre), m.e_const(0)),
            m.e_def(pre),
            m.e_bool(true),
            m.e_const(0),
        });
        next_defs.push_back(m.add_define(
            "a" + std::to_string(li + 1) + "_" + std::to_string(j + 1), relu));
      } else {
        next_defs.push_back(pre);
      }
    }
    act_defs = std::move(next_defs);
    act_scale = util::checked_mul(act_scale, util::Fixed::kScale);
  }

  // OC := argmax with ties to the lower index (the paper's output maxpool).
  const std::size_t outs = act_defs.size();
  std::vector<ExprId> arms;
  for (std::size_t k = 0; k + 1 < outs; ++k) {
    ExprId cond = m.e_bool(true);
    for (std::size_t j = 0; j < outs; ++j) {
      if (j == k) continue;
      const smv::Op cmp = (j < k) ? smv::Op::kGt : smv::Op::kGe;
      cond = m.e_binary(smv::Op::kAnd, cond,
                        m.e_binary(cmp, m.e_def(act_defs[k]),
                                   m.e_def(act_defs[j])));
    }
    arms.push_back(cond);
    arms.push_back(m.e_const(static_cast<i64>(k)));
  }
  arms.push_back(m.e_bool(true));
  arms.push_back(m.e_const(static_cast<i64>(outs - 1)));
  return m.add_define("OC", m.e_case(std::move(arms)));
}

}  // namespace

Translation translate_sample(const verify::Query& q, bool with_noise) {
  q.validate();
  Translation t;
  Module& m = t.module;
  m.name = "main";

  t.layout.phase_var =
      m.add_var("phase", smv::EnumType{{"s_init", "s_eval"}});
  t.layout.eval_phase_value = m.symbol_value("s_eval");

  const std::size_t dims = q.noise_dims();
  for (std::size_t d = 0; d < dims; ++d) {
    const std::string name =
        (d < q.x.size()) ? "d" + std::to_string(d + 1) : "d_bias";
    const int lo = with_noise ? q.box.lo[d] : 0;
    const int hi = with_noise ? q.box.hi[d] : 0;
    t.layout.delta_vars.push_back(m.add_var(name, smv::RangeType{lo, hi}));
  }

  // phase: s_init -> s_eval (absorbing).
  m.set_init("phase", m.e_symbol("s_init"));
  m.set_next("phase", m.e_symbol("s_eval"));
  // Noise: zero initially, re-chosen nondeterministically every cycle.
  for (std::size_t d = 0; d < dims; ++d) {
    const int lo = with_noise ? q.box.lo[d] : 0;
    const int hi = with_noise ? q.box.hi[d] : 0;
    const std::string& name = m.vars()[t.layout.delta_vars[d]].name;
    m.set_init(name, m.e_const(with_noise && lo > 0 ? lo : (hi < 0 ? hi : 0)));
    m.set_next(name, m.e_range(m.e_const(lo), m.e_const(hi)));
  }

  const std::size_t oc = emit_network_defines(m, q, t.layout.delta_vars,
                                              with_noise);

  // P2 (or P1 when with_noise == false): evaluated states classify as Sx.
  smv::Spec spec;
  spec.kind = smv::SpecKind::kInvarSpec;
  spec.name = with_noise ? "P2: OCn = Sx under noise" : "P1: OC = Sx";
  spec.expr = m.e_binary(
      smv::Op::kImplies,
      m.e_binary(smv::Op::kEq, m.e_var(t.layout.phase_var),
                 m.e_symbol("s_eval")),
      m.e_binary(smv::Op::kEq, m.e_def(oc), m.e_const(q.true_label)));
  m.add_spec(spec);
  return t;
}

verify::Counterexample decode_counterexample(const Translation& t,
                                             const verify::Query& q,
                                             const smv::State& state) {
  verify::Counterexample cex;
  cex.deltas.reserve(q.x.size());
  for (std::size_t i = 0; i < q.x.size(); ++i) {
    cex.deltas.push_back(
        static_cast<int>(state.at(t.layout.delta_vars[i])));
  }
  cex.bias_delta =
      q.bias_node ? static_cast<int>(state.at(t.layout.delta_vars[q.x.size()]))
                  : 0;
  std::vector<int> all(cex.deltas);
  if (q.bias_node) all.push_back(cex.bias_delta);
  cex.mis_label = verify::classify_under_noise(q, all);
  return cex;
}

smv::Module make_fig3_label_fsm() {
  Module m;
  m.name = "fig3_label_fsm";
  m.add_var("state", smv::EnumType{{"Initial", "L0", "L1"}});
  m.set_init("state", m.e_symbol("Initial"));
  // Each cycle consumes one (nondeterministic) input sample and lands in
  // the label it classifies to; Initial is never re-entered.
  m.set_next("state", m.e_set({m.e_symbol("L0"), m.e_symbol("L1")}));
  return m;
}

smv::Module make_fig3_noise_fsm(std::size_t nodes, int delta_max) {
  if (nodes == 0 || delta_max < 0) {
    throw InvalidArgument("make_fig3_noise_fsm: bad parameters");
  }
  Module m;
  m.name = "fig3_noise_fsm";
  m.add_var("phase", smv::EnumType{{"s_init", "s_eval"}});
  m.set_init("phase", m.e_symbol("s_init"));
  m.set_next("phase", m.e_symbol("s_eval"));
  for (std::size_t i = 0; i < nodes; ++i) {
    const std::string name = "n" + std::to_string(i + 1);
    m.add_var(name, smv::RangeType{0, delta_max});
    m.set_init(name, m.e_const(0));
    m.set_next(name, m.e_range(m.e_const(0), m.e_const(delta_max)));
  }
  return m;
}

}  // namespace fannet::core
