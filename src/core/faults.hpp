/// \file
/// \brief Weight-fault sensitivity — the hardware-reliability twin of the
///   paper's input-noise analysis (DESIGN.md §8).
///
/// Input noise models sensor/acquisition error; perturbing a *weight*
/// models memory faults, quantization drift, or aging in a hardware NN
/// accelerator.  For every parameter of the quantized network this analysis
/// finds the least severe fault under a chosen fault model that
/// misclassifies at least one correctly-classified test sample — ranking
/// the parameters whose storage needs the strongest protection, exactly how
/// §V-C.4 ranks the input nodes that need precise acquisition.  The fault
/// models follow the hardware-reliability literature (Duddu et al., "Fault
/// Tolerance of Neural Networks in Adversarial Settings"): proportional
/// drift, stuck-at-zero, sign flips, and single bit flips on the raw
/// fixed-point word.
///
/// The scan is exact: every candidate fault is evaluated with the integer
/// evaluator (no bounds, no floats); completeness over the candidate grid
/// follows by exhaustion.  The default engine is *incremental*
/// (nn::PrefixEvaluator, DESIGN.md §8): per-sample activations are memoized
/// at every layer boundary once, and each candidate re-evaluates only the
/// faulted layer (a single-entry delta update) and the layers after it.
/// The naive whole-network rescan survives as the reference oracle; both
/// produce bit-identical reports.  Long scans can opt into resumable
/// sharded execution via `WeightFaultConfig::sweep` (DESIGN.md §9).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "la/matrix.hpp"
#include "nn/quantized.hpp"
#include "verify/sweep.hpp"

namespace fannet::core {

/// Sentinel for WeightFault::col marking the bias entry of the row.
inline constexpr std::size_t kBiasCol = ~std::size_t{0};

/// How a fault corrupts one stored parameter (raw fixed-point value w).
enum class FaultModel {
  kPercentScale,  ///< w' = w*(100+p)/100, p scanned over +/-max_percent
  kStuckAtZero,   ///< w' = 0 (cell stuck at logical zero)
  kSignFlip,      ///< w' = -w (corrupted sign)
  kBitFlip,       ///< w' = w with one bit of the raw 64-bit word flipped
};

/// Lower-case identifier for a fault model (CLI/report/json spelling).
[[nodiscard]] std::string_view fault_model_name(FaultModel model);

/// Inverse of fault_model_name; nullopt for an unknown name.
[[nodiscard]] std::optional<FaultModel> fault_model_from_name(
    std::string_view name);

struct WeightFault {
  std::size_t layer = 0;
  std::size_t row = 0;   ///< output neuron index
  std::size_t col = 0;   ///< input index (== kBiasCol means the bias entry)
  /// Least severity whose fault flips some sample, in model units: percent
  /// magnitude for kPercentScale, flipped bit index for kBitFlip, 0 for
  /// the single-candidate models (stuck-at-zero / sign-flip).  nullopt =
  /// no scanned fault flips anything (a "don't-care" parameter for this
  /// test set).
  std::optional<int> min_flip_percent;
  /// Direction that achieves it for kPercentScale (+1/-1); 0 otherwise.
  int flip_sign = 0;
  std::size_t flipped_sample = 0;
  /// Raw fixed-point value the parameter held when the flip occurred.
  util::i64 flipped_raw = 0;

  [[nodiscard]] bool is_bias() const noexcept { return col == kBiasCol; }

  /// Memberwise equality — the naive-vs-incremental and thread-count
  /// identity gates (tests, bench_ext_weight_faults) compare through this
  /// so a newly added field can never be silently left out of a gate.
  [[nodiscard]] bool operator==(const WeightFault&) const = default;
};

struct WeightFaultReport {
  std::vector<WeightFault> faults;   ///< one entry per parameter, scan order
  std::size_t robust_weights = 0;    ///< parameters with no flip in range
  std::uint64_t evaluations = 0;     ///< exact per-sample evaluations performed
  /// Per-layer evaluation count — the cost metric the incremental engine
  /// shrinks (a naive rescan is charged depth() layers per attempted
  /// evaluation; the incremental engine depth() - fault_layer).  Charged
  /// analytically per attempt — even one aborted by an overflow throw —
  /// so the count is bit-identical across thread counts.  The only report
  /// field that legitimately differs between the two engines.
  std::uint64_t layer_evaluations = 0;
  /// Candidates whose exact evaluation left int64 (possible for high-order
  /// kBitFlip faults); skipped and counted, never guessed at.
  std::uint64_t undecided_candidates = 0;
  FaultModel model = FaultModel::kPercentScale;
  /// Sweep accounting when WeightFaultConfig::sweep was engaged (default
  /// otherwise: complete() is true).  When incomplete, un-absorbed `faults`
  /// entries keep their defaults and the counters cover absorbed shards
  /// only.
  verify::SweepProgress sweep = {};
};

/// Evaluation strategy for the scan.  kIncremental is the default;
/// kNaive re-runs a full forward pass from layer 0 for every candidate and
/// exists as the reference oracle (tests and bench_ext_weight_faults
/// assert bit-identical reports, minus layer_evaluations).
enum class FaultScan { kIncremental, kNaive };

struct WeightFaultConfig {
  int max_percent = 50;   ///< kPercentScale: scan p in [-max, +max] \ {0}
  int step = 1;           ///< kPercentScale: percent granularity
  /// Worker threads for the per-parameter fan-out (0 = hardware
  /// concurrency).  The report is identical for every thread count.
  std::size_t threads = 0;
  FaultModel model = FaultModel::kPercentScale;
  FaultScan scan = FaultScan::kIncremental;
  /// SoA evaluation lanes for the incremental engine's batched suffix
  /// re-evaluation (DESIGN.md §10): candidate x sample attempts sharing the
  /// faulted layer are staged together and re-evaluated through one
  /// vectorized kernel.  0 = auto (nn::BatchEvaluator::kAutoBatch), 1 = the
  /// scalar reference path; the naive oracle engine always runs scalar.
  /// Reports are bit-identical for every value (deliberately excluded from
  /// the sweep fingerprint, like `threads`).
  std::size_t batch = 0;
  /// Opt-in resumable sharded execution (DESIGN.md §9): one sweep unit per
  /// parameter, journaled to `sweep->journal_path`, so a multi-hour fault
  /// campaign killed mid-flight resumes instead of restarting from zero.
  /// Reports are bit-identical to the in-process scan.  `sweep->threads`
  /// of 0 inherits `threads` above.
  std::optional<verify::SweepOptions> sweep = std::nullopt;
};

/// Scans every weight and bias of `net` against the correctly-classified
/// rows of (inputs, labels).  Exact and deterministic.
[[nodiscard]] WeightFaultReport analyze_weight_faults(
    const nn::QuantizedNetwork& net, const la::Matrix<util::i64>& inputs,
    const std::vector<int>& labels, const WeightFaultConfig& config = {});

/// The `count` most fragile parameters (smallest min_flip_percent first).
[[nodiscard]] std::vector<WeightFault> most_fragile_weights(
    const WeightFaultReport& report, std::size_t count);

/// Formats the ranking as an aligned text table.
[[nodiscard]] std::string format_weight_faults(const WeightFaultReport& report,
                                               std::size_t top_count = 10);

}  // namespace fannet::core
