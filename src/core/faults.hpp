// Extension: weight-fault sensitivity (the hardware-reliability twin of
// the paper's input-noise analysis).
//
// Input noise models sensor/acquisition error; perturbing a *weight*
// models memory faults, quantization drift, or aging in a hardware NN
// accelerator.  For every weight w of the quantized network this analysis
// finds the smallest integer-percent perturbation p (w' = w*(100+p)/100,
// exact fixed-point) that misclassifies at least one correctly-classified
// test sample — ranking the parameters whose storage needs the strongest
// protection, exactly how §V-C.4 ranks the input nodes that need precise
// acquisition.
//
// The scan is exact: every candidate percentage is evaluated with the
// integer evaluator (no bounds, no floats); completeness over the +/-100%
// grid follows by exhaustion.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "la/matrix.hpp"
#include "nn/quantized.hpp"

namespace fannet::core {

struct WeightFault {
  std::size_t layer = 0;
  std::size_t row = 0;   ///< output neuron index
  std::size_t col = 0;   ///< input index (== in_dim means the bias entry)
  /// Smallest |p| (percent) whose application flips some sample; the sign
  /// that achieves it.  nullopt = no perturbation up to max_percent flips
  /// anything (a "don't-care" weight for this test set).
  std::optional<int> min_flip_percent;
  int flip_sign = 0;
  std::size_t flipped_sample = 0;

  [[nodiscard]] bool is_bias() const noexcept { return col == ~std::size_t{0}; }
};

struct WeightFaultReport {
  std::vector<WeightFault> faults;   ///< one entry per parameter, scan order
  std::size_t robust_weights = 0;    ///< parameters with no flip in range
  std::uint64_t evaluations = 0;     ///< exact forward passes performed
};

struct WeightFaultConfig {
  int max_percent = 50;   ///< scan p in [-max, +max] \ {0}
  int step = 1;           ///< percent granularity
  /// Worker threads for the per-parameter fan-out (0 = hardware
  /// concurrency).  The report is identical for every thread count.
  std::size_t threads = 0;
};

/// Scans every weight and bias of `net` against the correctly-classified
/// rows of (inputs, labels).  Exact and deterministic.
[[nodiscard]] WeightFaultReport analyze_weight_faults(
    const nn::QuantizedNetwork& net, const la::Matrix<util::i64>& inputs,
    const std::vector<int>& labels, const WeightFaultConfig& config = {});

/// The `count` most fragile parameters (smallest min_flip_percent first).
[[nodiscard]] std::vector<WeightFault> most_fragile_weights(
    const WeightFaultReport& report, std::size_t count);

/// Formats the ranking as an aligned text table.
[[nodiscard]] std::string format_weight_faults(const WeightFaultReport& report,
                                               std::size_t top_count = 10);

}  // namespace fannet::core
