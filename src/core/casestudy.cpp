#include "core/casestudy.hpp"

#include "util/error.hpp"

namespace fannet::core {

CaseStudy build_case_study(const CaseStudyConfig& config) {
  CaseStudy cs;
  cs.golub = data::generate_golub(config.golub);

  // Stratified split: label 0 (AML) and label 1 (ALL) training counts.
  const data::Split split = data::stratified_split(
      cs.golub.dataset, {config.train_aml, config.train_all},
      config.split_seed);

  // mRMR on the full-dimensional *training* data only (no test leakage).
  const data::MrmrResult mrmr =
      data::mrmr_select(split.train, config.selected_genes, config.mrmr_scheme);
  cs.selected_genes = mrmr.selected;

  const data::Dataset train_sel = split.train.select_features(mrmr.selected);
  const data::Dataset test_sel = split.test.select_features(mrmr.selected);

  // Integer grid [1,100], fitted on the training set (paper: inputs i in Z).
  const data::IntScaler scaler = data::IntScaler::fit(train_sel.features);
  cs.train_x = scaler.transform(train_sel.features);
  cs.test_x = scaler.transform(test_sel.features);
  cs.train_y = train_sel.labels;
  cs.test_y = test_sel.labels;

  // Train on x/100 with the paper's learning-rate schedule.
  const la::MatrixD train_norm = data::IntScaler::normalize(cs.train_x);
  const la::MatrixD test_norm = data::IntScaler::normalize(cs.test_x);
  cs.network = nn::Network::random(
      {config.selected_genes, config.hidden_neurons, 2}, config.init_seed);
  const nn::TrainResult tr =
      nn::train(cs.network, train_norm, cs.train_y, config.train);
  cs.train_accuracy = tr.train_accuracy;
  cs.test_accuracy = nn::accuracy(cs.network, test_norm, cs.test_y);

  // Quantize for the formal analysis (input_norm = 100: x -> x/100).
  cs.qnet = nn::QuantizedNetwork::quantize(cs.network, data::IntScaler::kHi);
  return cs;
}

CaseStudyConfig small_case_study_config() {
  CaseStudyConfig config;
  config.golub.num_genes = 300;
  config.golub.num_informative = 20;
  return config;
}

}  // namespace fannet::core
