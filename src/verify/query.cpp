#include "verify/query.hpp"

#include <limits>

#include "util/error.hpp"

namespace fannet::verify {

NoiseBox NoiseBox::symmetric(std::size_t dims, int range) {
  if (range < 0) throw InvalidArgument("NoiseBox::symmetric: negative range");
  NoiseBox b;
  b.lo.assign(dims, -range);
  b.hi.assign(dims, range);
  return b;
}

double NoiseBox::volume() const {
  // Exact while the count fits double's contiguous integer range (2^53);
  // beyond that it saturates to +infinity instead of silently rounding —
  // high-dimensional boxes overflow any finite representation fast, and a
  // subtly-wrong finite count is worse for work estimation than a clearly
  // saturated one.
  constexpr util::i128 kExactLimit = util::i128{1} << 53;
  util::i128 v = 1;
  for (std::size_t d = 0; d < lo.size(); ++d) {
    v *= static_cast<util::i128>(hi[d]) - lo[d] + 1;
    if (v > kExactLimit) return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(v);
}

bool NoiseBox::is_singleton() const {
  for (std::size_t d = 0; d < lo.size(); ++d) {
    if (lo[d] != hi[d]) return false;
  }
  return true;
}

void Query::validate() const {
  if (net == nullptr) throw InvalidArgument("Query: null network");
  if (x.size() != net->input_dim()) {
    throw InvalidArgument("Query: input size != network input dim");
  }
  if (true_label < 0 ||
      static_cast<std::size_t>(true_label) >= net->output_dim()) {
    throw InvalidArgument("Query: true_label out of range");
  }
  if (box.lo.size() != noise_dims() || box.hi.size() != noise_dims()) {
    throw InvalidArgument("Query: noise box dims mismatch");
  }
  for (std::size_t d = 0; d < box.lo.size(); ++d) {
    if (box.lo[d] > box.hi[d]) {
      throw InvalidArgument("Query: empty noise box dimension");
    }
    if (box.lo[d] < -100) {
      throw InvalidArgument("Query: noise below -100% is meaningless");
    }
  }
}

int classify_under_noise(const Query& q, std::span<const int> deltas) {
  const std::size_t n = q.x.size();
  const std::span<const int> input_deltas = deltas.subspan(0, n);
  const int bias_delta = q.bias_node ? deltas[n] : 0;
  return q.net->classify_noised(q.x, input_deltas, bias_delta);
}

}  // namespace fannet::verify
