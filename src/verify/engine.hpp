/// \file
/// \brief Pluggable P2 decision engines (DESIGN.md §4.5).
///
/// Every strategy that can answer the paper's P2 query ("does some noise
/// vector in the box flip the classification?") implements the `Engine`
/// interface and registers itself under a stable string key in the
/// process-wide `EngineRegistry`.  Callers — the FANNet pipeline, the
/// scheduler, benches, tests — select engines by name and never switch on
/// strategy variants, so new backends (SAT portfolios, GPU batch eval,
/// distributed sharding) plug in without touching any consumer.
///
/// Built-in registrations:
///
///     enumerate    exhaustive grid walk                exact    complete
///     interval     interval bound propagation          exact    sound-only
///     symbolic     affine bounds in the noise deltas   exact    sound-only
///     bnb          branch-and-bound input splitting    exact    complete
///     cascade      interval -> symbolic -> bnb         exact    complete
///     explicit-mc  SMV translation + explicit-state MC exact    complete
///     bmc          SMV translation + CDCL bounded MC   exact    complete
///     sat          CNF bit-blast + CDCL + inprocessing exact    complete
///
/// The MC/SAT-backed engines live in src/mc (they need the SMV translation
/// layer); the registry pulls them in at startup via
/// `detail::register_translation_engines`.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "verify/budget.hpp"
#include "verify/query.hpp"

namespace fannet::verify {

class EngineTask;

/// Per-call execution context the scheduler threads down to engines.
/// Engines that can parallelize *within* one query (branch-and-bound's
/// work-stealing frontier; the cascade forwards to its complete stage)
/// honour `threads`; engines that evaluate grids of noise vectors
/// (enumerate, bnb's flips-everywhere drains) honour `batch_hint` by
/// staging that many SoA lanes per forward pass (DESIGN.md §10); everything
/// else ignores them.  Verdicts and witnesses are identical for every
/// value — only wall-clock (and, for bnb, the `work` box count under
/// threads > 1) depends on them.
struct VerifyContext {
  std::size_t threads = 1;  ///< intra-query worker budget (>= 1)
  /// SoA evaluation lanes per batched forward pass: 0 = auto
  /// (nn::BatchEvaluator::kAutoBatch), 1 = the scalar reference path.
  std::size_t batch_hint = 0;
  /// Unified resource budget (verify/budget.hpp): wall-clock deadline,
  /// box/conflict/propagation caps, cooperative cancellation.  Engines map
  /// the caps they understand onto their own limits and answer kUnknown
  /// with resource_limited set when one fires — never a hang, never a
  /// wrong verdict.  Default = unlimited (engine defaults apply).
  Budget budget = {};
};

/// Capability descriptor for one engine, surfaced by `Engine::caps()` —
/// what the CLI's `engines` table prints and what a serving layer uses for
/// admission control.
struct EngineCaps {
  bool complete = false;     ///< mirrors Engine::complete()
  /// Cooperatively honours Budget::deadline / Budget::cancel with bounded
  /// overshoot (native-task engines).  Engines without it still finalize
  /// an expired task before the *next* step, but a started blocking call
  /// runs to completion.
  bool deadline = false;
  bool budget = false;       ///< honours a work cap (boxes / conflicts)
  bool native_task = false;  ///< make_task checkpoints between steps
};

/// One P2 decision strategy.  Implementations must be stateless or
/// internally synchronized: the scheduler calls `verify` concurrently.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Stable registry key ("bnb", "cascade", ...).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Complete engines never answer kUnknown from the decision procedure
  /// itself (a kUnknown can still surface when a *resource budget* runs
  /// out, e.g. bnb's box cap); sound-only engines answer kRobust or
  /// kUnknown but never produce a wrong verdict.  This flag also selects
  /// the query-cache capability class (verify/query_cache.hpp): all
  /// complete engines share cached verdicts.
  [[nodiscard]] virtual bool complete() const noexcept = 0;

  /// Decides the query exactly and deterministically.
  /// \param query a validated P2 query (see Query::validate()).
  /// \return the verdict, a counterexample iff kVulnerable, and the
  ///   engine-specific `work` effort counter.
  [[nodiscard]] virtual VerifyResult verify(const Query& query) const = 0;

  /// Context-aware entry point used by the scheduler; the default ignores
  /// the context, so plain engines only implement `verify`.
  [[nodiscard]] virtual VerifyResult verify_with(
      const Query& query, const VerifyContext& /*context*/) const {
    return verify(query);
  }

  /// Capability introspection; the default claims nothing beyond
  /// completeness.  Engines with native tasks override.
  [[nodiscard]] virtual EngineCaps caps() const noexcept {
    return EngineCaps{.complete = complete()};
  }

  /// Creates a resumable task for the query (verify/task.hpp).  The
  /// default wraps `verify_with` in a single-step generic adapter; engines
  /// with long-running loops override with a native incremental task that
  /// checkpoints between steps.  The query is copied; the network it
  /// points to (and the context's cancel token, if any) must outlive the
  /// task.
  [[nodiscard]] virtual std::unique_ptr<EngineTask> make_task(
      const Query& query, const VerifyContext& context) const;
};

/// String-keyed engine registry.  Thread-safe; lookups return references
/// that stay valid for the registry's lifetime.
class EngineRegistry {
 public:
  /// Registers `engine` under `engine->name()`.  Throws InvalidArgument on
  /// a duplicate name.
  void add(std::unique_ptr<Engine> engine);

  /// Throws InvalidArgument (listing the known names) if absent.
  [[nodiscard]] const Engine& get(std::string_view name) const;

  [[nodiscard]] bool contains(std::string_view name) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  mutable util::Mutex mutex_;
  /// Entries are never removed, so the Engine references handed out by
  /// get() stay valid without the lock; the map structure itself is
  /// touched only under mutex_.
  std::map<std::string, std::unique_ptr<Engine>, std::less<>> engines_
      FANNET_GUARDED_BY(mutex_);
};

/// The process-wide registry, pre-seeded with every built-in engine on
/// first use.
[[nodiscard]] EngineRegistry& registry();

/// Shorthand for `registry().get(name)`.
[[nodiscard]] const Engine& engine(std::string_view name);

/// Portfolio engine: runs cheap sound-only stages in order and falls back
/// to a complete engine only when they answer kUnknown.  Work (and the
/// verdict) is exactly that of the first stage to decide; `work`
/// accumulates across the stages that ran.
class CascadeEngine final : public Engine {
 public:
  /// Stages are registry names, tried in order; the last one should be
  /// complete for the cascade itself to be complete.
  explicit CascadeEngine(std::vector<std::string> stages = {"interval",
                                                            "symbolic",
                                                            "bnb"});

  /// Injected-stage portfolio: the engines are used directly, bypassing
  /// the registry — for portfolios composed outside it (tests, custom
  /// pipelines) so they never have to pollute the process-wide registry.
  /// The pointed-to engines must outlive the cascade.  (A named factory,
  /// not a constructor overload: a braced list of string literals would
  /// otherwise be ambiguous against the registry-name constructor; by
  /// pointer because the resolve-once flag makes the type immovable.)
  [[nodiscard]] static std::unique_ptr<CascadeEngine> with_stages(
      std::vector<const Engine*> stages);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "cascade";
  }
  [[nodiscard]] bool complete() const noexcept override { return true; }
  [[nodiscard]] VerifyResult verify(const Query& query) const override;
  /// Grants the whole context (the scheduler's leftover threads) to every
  /// stage; the sound-only screens ignore it, so in practice the budget
  /// lands on the final complete (bnb) stage.
  [[nodiscard]] VerifyResult verify_with(
      const Query& query, const VerifyContext& context) const override;
  /// Deadline/budget support is inherited from the stages (the final bnb
  /// stage polls them natively).
  [[nodiscard]] EngineCaps caps() const noexcept override {
    return EngineCaps{.complete = true,
                      .deadline = true,
                      .budget = true,
                      .native_task = true};
  }
  /// Staged pipeline task: one sub-task per stage (each stage's own native
  /// task), advanced on kUnknown with work accumulated across stages.
  [[nodiscard]] std::unique_ptr<EngineTask> make_task(
      const Query& query, const VerifyContext& context) const override;

  [[nodiscard]] const std::vector<std::string>& stages() const noexcept {
    return stages_;
  }

 private:
  /// Registry lookup of `stages_` into `resolved_` (first call only).
  void resolve_stages() const;

  std::vector<std::string> stages_;
  /// True when the stages were injected as pointers (already resolved).
  bool preresolved_ = false;
  /// Stage engines resolved on first verify (registry entries are stable
  /// for the process lifetime), so the per-query hot path takes no lock.
  mutable std::once_flag resolve_once_;
  mutable std::vector<const Engine*> resolved_;
};

namespace detail {
/// Defined in src/mc/engine_adapters.cpp: registers the SMV-translation
/// backed engines ("explicit-mc", "bmc", "sat").  Declared here so the
/// registry can seed them without a header dependency on the MC layer.
void register_translation_engines(EngineRegistry& registry);
}  // namespace detail

}  // namespace fannet::verify
