/// \file
/// \brief Canonicalizing, thread-safe memoization of P2 verdicts
///   (DESIGN.md §7).
///
/// FANNet's analyses decompose into thousands of overlapping P2 queries,
/// and the Fig. 3/4 sweeps re-decide near-identical queries at adjacent
/// noise levels and across repeated bench/CLI runs.  `QueryCache` memoizes
/// `VerifyResult`s under a *canonical key* — a stable byte string derived
/// from (network fingerprint, input region, property, engine capability
/// class) — with an in-memory LRU tier and an optional JSON-lines disk
/// tier so repeated runs warm-start.
///
/// Soundness: every registered engine is exact on the integer noise grid,
/// and complete engines all compute the same verdict function, so a
/// verdict cached under the "complete" capability class is reusable by any
/// complete engine.  Sound-only engines may answer kUnknown on different
/// queries, so each keys its own capability class.  The full canonical key
/// (not just its hash) is stored and compared on lookup — distinct regions
/// can never collide into a wrong verdict.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "verify/engine.hpp"
#include "verify/query.hpp"

namespace fannet::verify {

/// Tuning knobs for a QueryCache instance.
struct QueryCacheOptions {
  /// Maximum entries held in memory; least-recently-used entries are
  /// evicted beyond this.  Evicted entries persist in the disk tier.
  std::size_t capacity = 1u << 20;
  /// JSON-lines file backing the disk tier (loaded on construction,
  /// appended on insert).  Empty disables the disk tier.
  std::string disk_path = {};
};

/// Thread-safe memoization layer for P2 query verdicts.
///
/// Typical use: construct once per process (optionally pointing
/// `disk_path` at a cache directory), install with `ScopedQueryCache` or
/// `set_global_query_cache`, and let `Scheduler` probe it before every
/// engine dispatch.  All methods are safe to call concurrently.
class QueryCache {
 public:
  /// Builds the cache; if `options.disk_path` names an existing file its
  /// JSON-lines entries are loaded (malformed lines are skipped and
  /// counted, so a truncated final line from a killed run is harmless).
  /// Throws util::Error when the disk file cannot be opened for append.
  explicit QueryCache(QueryCacheOptions options = {});
  ~QueryCache();

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// Returns the memoized result for (query, engine-capability-class), or
  /// nullopt on a miss.  A hit refreshes the entry's LRU position.
  [[nodiscard]] std::optional<VerifyResult> lookup(const Query& query,
                                                   const Engine& engine);

  /// Memoizes `result` for (query, engine-capability-class); overwrites an
  /// existing entry.  New entries are appended to the disk tier.
  /// Budget-cut results (`resource_limited` set) are refused for every
  /// engine class: they are sound but not canonical — the witness may not
  /// be the lex-lowest and can vary run to run — so a starved run must
  /// never poison later, better-funded ones.
  void insert(const Query& query, const Engine& engine,
              const VerifyResult& result);

  /// Counters since construction (monotone except `entries`).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;   ///< insert() calls that added an entry
    std::uint64_t evictions = 0;    ///< LRU evictions (capacity pressure)
    std::uint64_t disk_loaded = 0;  ///< entries loaded from the disk tier
    std::uint64_t disk_skipped = 0; ///< malformed disk lines ignored
    std::size_t entries = 0;        ///< current in-memory entry count
  };
  [[nodiscard]] Stats stats() const;

  /// Current in-memory entry count.
  [[nodiscard]] std::size_t size() const;

  /// Drops every in-memory entry (the disk tier is left untouched).
  void clear();

 private:
  struct Entry {
    std::string key;
    VerifyResult result;
  };
  using Lru = std::list<Entry>;

  /// Key-based probe/memoize used by `cached_verify` so the miss path
  /// serializes the canonical key once instead of per lookup-then-insert.
  friend VerifyResult cached_verify(QueryCache* cache, const Query& query,
                                    const Engine& engine,
                                    const std::function<VerifyResult()>& decide,
                                    bool* hit);
  [[nodiscard]] std::optional<VerifyResult> lookup_by_key(
      std::string_view key);
  void insert_by_key(std::string key, const VerifyResult& result);

  /// Inserts under `key`; returns true if the entry is new.  `from_disk`
  /// suppresses the disk append.
  bool insert_locked(std::string key, const VerifyResult& result,
                     bool from_disk) FANNET_REQUIRES(mutex_);
  void load_disk_tier() FANNET_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  QueryCacheOptions options_;
  /// front = most recently used
  Lru lru_ FANNET_GUARDED_BY(mutex_);
  /// Keys view into lru_ entries; mutated in lockstep with it.
  std::unordered_map<std::string_view, Lru::iterator> index_
      FANNET_GUARDED_BY(mutex_);
  Stats stats_ FANNET_GUARDED_BY(mutex_);
  /// Append stream for the disk tier, kept open for the cache's lifetime.
  /// (Type-erased to keep <fstream> out of this header.)  The stream is
  /// written on the insert path, so it shares the cache mutex.
  struct DiskTier;
  std::unique_ptr<DiskTier> disk_ FANNET_PT_GUARDED_BY(mutex_);
};

/// Canonical cache key for (query, capability class): a stable byte string
/// over the network *content* fingerprint (not its address), the base
/// input, the true label, the bias-node flag, the exact noise box, and the
/// capability class — all serialized little-endian fixed-width, so keys
/// (and the disk tier) are stable across runs and platforms.  Two queries
/// share a key iff every engine in the capability class must return the
/// same verdict for both.
[[nodiscard]] std::string canonical_key(const Query& query,
                                        std::string_view capability);

/// Engine capability class used in the cache key: complete engines all
/// share `"complete"` (they compute the same verdict function); a
/// sound-only engine gets its own `"sound-only:<name>"` class because
/// kUnknown patterns are engine-specific.
[[nodiscard]] std::string capability_class(const Engine& engine);

/// Probe-verify-insert in one step: returns the cached result when
/// present, otherwise runs `decide()` — which must compute
/// the query's verdict with `engine` (the scheduler's task drive loop, a
/// plain `run_task`, ...) — and memoizes the verdict.  `cache` may be null
/// (plain decide).  When `hit` is non-null it is set to whether the cache
/// answered.
///
/// A kUnknown from a *complete* engine is a resource artifact (e.g. bnb's
/// box budget ran out), not a stable fact about the query, so it is never
/// memoized — a later run with a larger budget must re-decide.
/// (`resource_limited` results are additionally refused by the cache
/// itself, for every engine class.)
[[nodiscard]] VerifyResult cached_verify(
    QueryCache* cache, const Query& query, const Engine& engine,
    const std::function<VerifyResult()>& decide, bool* hit = nullptr);

/// Convenience overload: decides a miss by driving the engine's resumable
/// task to completion (`run_task(engine, query, context)`, verify/task.hpp)
/// so every cached dispatch goes through the task substrate — one code
/// path whether or not a scheduler is in the loop.
[[nodiscard]] VerifyResult cached_verify(QueryCache* cache, const Query& query,
                                         const Engine& engine,
                                         const VerifyContext& context,
                                         bool* hit = nullptr);
[[nodiscard]] VerifyResult cached_verify(QueryCache* cache, const Query& query,
                                         const Engine& engine,
                                         bool* hit = nullptr);

/// The process-wide cache consulted by `Scheduler` (and the analyses built
/// on it) when no per-batch cache is configured.  Null — caching disabled —
/// until something installs one; the CLI and the ablation bench do.
[[nodiscard]] QueryCache* global_query_cache() noexcept;

/// Installs `cache` as the process-wide cache and returns the previous
/// one.  The caller retains ownership; pass nullptr to disable caching.
QueryCache* set_global_query_cache(QueryCache* cache) noexcept;

/// RAII installer for the process-wide cache (tests, benches, tools).
class ScopedQueryCache {
 public:
  explicit ScopedQueryCache(QueryCache* cache)
      : previous_(set_global_query_cache(cache)) {}
  ~ScopedQueryCache() { set_global_query_cache(previous_); }
  ScopedQueryCache(const ScopedQueryCache&) = delete;
  ScopedQueryCache& operator=(const ScopedQueryCache&) = delete;

 private:
  QueryCache* previous_;
};

}  // namespace fannet::verify
