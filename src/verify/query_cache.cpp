#include "verify/query_cache.hpp"

#include <atomic>
#include <cctype>
#include <fstream>
#include <utility>

#include "util/error.hpp"
#include "verify/task.hpp"

namespace fannet::verify {

namespace {

// --- canonical key serialization --------------------------------------------
// Fixed-width little-endian fields; the byte string is the key, its hex
// encoding is the disk representation.  No hashing is involved in equality,
// so distinct regions cannot collide.

void append_u64(std::string& out, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    out.push_back(static_cast<char>((v >> (8 * byte)) & 0xffU));
  }
}

void append_i64(std::string& out, std::int64_t v) {
  append_u64(out, static_cast<std::uint64_t>(v));
}

void append_i32(std::string& out, std::int32_t v) {
  const auto u = static_cast<std::uint32_t>(v);
  for (int byte = 0; byte < 4; ++byte) {
    out.push_back(static_cast<char>((u >> (8 * byte)) & 0xffU));
  }
}

constexpr char kHexDigits[] = "0123456789abcdef";

std::string to_hex(std::string_view bytes) {
  std::string hex;
  hex.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    hex.push_back(kHexDigits[b >> 4]);
    hex.push_back(kHexDigits[b & 0xf]);
  }
  return hex;
}

std::optional<std::string> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string bytes;
  bytes.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    bytes.push_back(static_cast<char>((hi << 4) | lo));
  }
  return bytes;
}

// --- disk tier line format --------------------------------------------------
// One JSON object per line:
//   {"key":"<hex>","verdict":"robust|vulnerable|unknown","work":N
//    [,"deltas":[..],"bias_delta":N,"mis_label":N]}
// (documented in docs/bench-format.md alongside the bench schema).

std::string_view verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kRobust: return "robust";
    case Verdict::kVulnerable: return "vulnerable";
    case Verdict::kUnknown: return "unknown";
  }
  return "unknown";
}

std::string format_line(std::string_view key, const VerifyResult& result) {
  std::string line = "{\"key\":\"";
  line += to_hex(key);
  line += "\",\"verdict\":\"";
  line += verdict_name(result.verdict);
  line += "\",\"work\":";
  line += std::to_string(result.work);
  if (result.verdict == Verdict::kVulnerable && result.counterexample) {
    const Counterexample& cex = *result.counterexample;
    line += ",\"deltas\":[";
    for (std::size_t i = 0; i < cex.deltas.size(); ++i) {
      if (i > 0) line += ',';
      line += std::to_string(cex.deltas[i]);
    }
    line += "],\"bias_delta\":";
    line += std::to_string(cex.bias_delta);
    line += ",\"mis_label\":";
    line += std::to_string(cex.mis_label);
  }
  line += '}';
  return line;
}

/// Minimal scanner for the fixed line format above.  Returns nullopt on any
/// deviation — the loader skips (and counts) such lines instead of failing,
/// so a half-written final line from an interrupted run is harmless.
struct ParsedLine {
  std::string key;
  VerifyResult result;
};

std::optional<ParsedLine> parse_line(std::string_view line) {
  const auto after = [&line](std::string_view tag) -> std::optional<std::size_t> {
    const std::size_t at = line.find(tag);
    if (at == std::string_view::npos) return std::nullopt;
    return at + tag.size();
  };
  const auto parse_int = [&line](std::size_t pos,
                                 std::int64_t& out) -> std::optional<std::size_t> {
    std::size_t i = pos;
    bool negative = false;
    if (i < line.size() && line[i] == '-') {
      negative = true;
      ++i;
    }
    if (i >= line.size() || !std::isdigit(static_cast<unsigned char>(line[i]))) {
      return std::nullopt;
    }
    std::int64_t value = 0;
    int digits = 0;
    while (i < line.size() && std::isdigit(static_cast<unsigned char>(line[i]))) {
      // 18 digits always fit in int64; more is corruption, not data (the
      // accumulation would otherwise be signed-overflow UB).
      if (++digits > 18) return std::nullopt;
      value = value * 10 + (line[i] - '0');
      ++i;
    }
    out = negative ? -value : value;
    return i;
  };

  ParsedLine parsed;
  const auto key_at = after("\"key\":\"");
  if (!key_at) return std::nullopt;
  const std::size_t key_end = line.find('"', *key_at);
  if (key_end == std::string_view::npos) return std::nullopt;
  auto key = from_hex(line.substr(*key_at, key_end - *key_at));
  if (!key) return std::nullopt;
  parsed.key = std::move(*key);

  const auto verdict_at = after("\"verdict\":\"");
  if (!verdict_at) return std::nullopt;
  if (line.compare(*verdict_at, 6, "robust") == 0) {
    parsed.result.verdict = Verdict::kRobust;
  } else if (line.compare(*verdict_at, 10, "vulnerable") == 0) {
    parsed.result.verdict = Verdict::kVulnerable;
  } else if (line.compare(*verdict_at, 7, "unknown") == 0) {
    parsed.result.verdict = Verdict::kUnknown;
  } else {
    return std::nullopt;
  }

  const auto work_at = after("\"work\":");
  if (!work_at) return std::nullopt;
  std::int64_t work = 0;
  if (!parse_int(*work_at, work) || work < 0) return std::nullopt;
  parsed.result.work = static_cast<std::uint64_t>(work);

  if (parsed.result.verdict == Verdict::kVulnerable) {
    Counterexample cex;
    auto pos = after("\"deltas\":[");
    if (!pos) return std::nullopt;
    if (*pos < line.size() && line[*pos] != ']') {
      for (;;) {
        std::int64_t delta = 0;
        const auto next = parse_int(*pos, delta);
        if (!next) return std::nullopt;
        cex.deltas.push_back(static_cast<int>(delta));
        pos = *next;
        if (*pos >= line.size()) return std::nullopt;
        if (line[*pos] == ']') break;
        if (line[*pos] != ',') return std::nullopt;
        pos = *pos + 1;
      }
    }
    const auto bias_at = after("\"bias_delta\":");
    const auto label_at = after("\"mis_label\":");
    if (!bias_at || !label_at) return std::nullopt;
    std::int64_t bias = 0, label = 0;
    if (!parse_int(*bias_at, bias) || !parse_int(*label_at, label)) {
      return std::nullopt;
    }
    cex.bias_delta = static_cast<int>(bias);
    cex.mis_label = static_cast<int>(label);
    parsed.result.counterexample = std::move(cex);
  }
  return parsed;
}

/// Structural check of a disk-tier entry against the region encoded in its
/// own key (see canonical_key): the key layout is fingerprint(8),
/// class-len(8)+class, label(4), bias-flag(1), |x|(8)+x, dims(8)+lo/hi
/// pairs.  A vulnerable entry whose counterexample does not fit that
/// region (wrong delta count, delta outside its box dimension) would poison
/// warm runs with out-of-box witnesses, so such lines are rejected — the
/// "malformed lines are harmless" contract covers semantic truncation too.
bool entry_fits_key(std::string_view key, const VerifyResult& result) {
  std::size_t pos = 0;
  const auto read_u64 = [&key, &pos](std::uint64_t& out) {
    if (pos + 8 > key.size()) return false;
    out = 0;
    for (int byte = 0; byte < 8; ++byte) {
      out |= static_cast<std::uint64_t>(static_cast<unsigned char>(key[pos++]))
             << (8 * byte);
    }
    return true;
  };
  const auto read_i32 = [&key, &pos](std::int32_t& out) {
    if (pos + 4 > key.size()) return false;
    std::uint32_t u = 0;
    for (int byte = 0; byte < 4; ++byte) {
      u |= static_cast<std::uint32_t>(static_cast<unsigned char>(key[pos++]))
           << (8 * byte);
    }
    out = static_cast<std::int32_t>(u);
    return true;
  };

  std::uint64_t fingerprint = 0, class_len = 0, x_size = 0, dims = 0;
  std::int32_t label = 0;
  if (!read_u64(fingerprint) || !read_u64(class_len)) return false;
  if (class_len > key.size() - pos) return false;
  pos += class_len;
  if (!read_i32(label)) return false;
  if (pos >= key.size()) return false;
  const bool bias_node = key[pos++] != 0;
  if (!read_u64(x_size)) return false;
  if (x_size > (key.size() - pos) / 8) return false;
  pos += x_size * 8;
  if (!read_u64(dims)) return false;
  if (dims != x_size + (bias_node ? 1 : 0)) return false;
  if (dims > (key.size() - pos) / 8) return false;

  if (result.verdict != Verdict::kVulnerable) {
    return !result.counterexample.has_value() &&
           pos + dims * 8 == key.size();
  }
  if (!result.counterexample.has_value()) return false;
  const Counterexample& cex = *result.counterexample;
  if (cex.deltas.size() != x_size) return false;
  for (std::size_t i = 0; i < dims; ++i) {
    std::int32_t lo = 0, hi = 0;
    if (!read_i32(lo) || !read_i32(hi)) return false;
    const int delta =
        i < x_size ? cex.deltas[i] : cex.bias_delta;  // last dim = bias node
    if (delta < lo || delta > hi) return false;
  }
  if (!bias_node && cex.bias_delta != 0) return false;
  return pos == key.size();
}

std::atomic<QueryCache*> g_query_cache{nullptr};

}  // namespace

std::string canonical_key(const Query& query, std::string_view capability) {
  if (query.net == nullptr) {
    throw InvalidArgument("canonical_key: query has no network");
  }
  std::string key;
  key.reserve(32 + capability.size() + query.x.size() * 8 +
              query.box.dims() * 8);
  append_u64(key, query.net->fingerprint());
  append_u64(key, capability.size());
  key.append(capability);
  append_i32(key, query.true_label);
  key.push_back(query.bias_node ? 1 : 0);
  append_u64(key, query.x.size());
  for (const util::i64 x : query.x) append_i64(key, x);
  append_u64(key, query.box.dims());
  for (std::size_t i = 0; i < query.box.dims(); ++i) {
    append_i32(key, query.box.lo[i]);
    append_i32(key, query.box.hi[i]);
  }
  return key;
}

std::string capability_class(const Engine& engine) {
  if (engine.complete()) return "complete";
  return "sound-only:" + std::string(engine.name());
}

struct QueryCache::DiskTier {
  std::ofstream append;
};

QueryCache::QueryCache(QueryCacheOptions options)
    : options_(std::move(options)) {
  if (options_.capacity == 0) {
    throw InvalidArgument("QueryCache: capacity must be >= 1");
  }
  if (!options_.disk_path.empty()) {
    // No concurrency can exist during construction; the lock is held so
    // the guarded-field discipline (load_disk_tier -> insert_locked) is
    // one rule with no constructor carve-out.
    const util::MutexLock lock(mutex_);
    load_disk_tier();
    disk_ = std::make_unique<DiskTier>();
    disk_->append.open(options_.disk_path, std::ios::app);
    if (!disk_->append) {
      throw Error("QueryCache: cannot open disk tier " + options_.disk_path);
    }
  }
}

QueryCache::~QueryCache() = default;

void QueryCache::load_disk_tier() {
  std::ifstream in(options_.disk_path);
  if (!in) return;  // no file yet: cold start
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = parse_line(line);
    if (parsed && entry_fits_key(parsed->key, parsed->result)) {
      if (insert_locked(std::move(parsed->key), parsed->result,
                        /*from_disk=*/true)) {
        ++stats_.disk_loaded;
      }
    } else {
      ++stats_.disk_skipped;
    }
  }
}

bool QueryCache::insert_locked(std::string key, const VerifyResult& result,
                               bool from_disk) {
  if (const auto it = index_.find(std::string_view(key));
      it != index_.end()) {
    it->second->result = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return false;
  }
  if (!from_disk && disk_ && disk_->append) {
    disk_->append << format_line(key, result) << '\n';
    disk_->append.flush();
  }
  lru_.push_front(Entry{std::move(key), result});
  index_.emplace(std::string_view(lru_.front().key), lru_.begin());
  while (lru_.size() > options_.capacity) {
    index_.erase(std::string_view(lru_.back().key));
    lru_.pop_back();
    ++stats_.evictions;
  }
  return true;
}

std::optional<VerifyResult> QueryCache::lookup_by_key(std::string_view key) {
  const util::MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->result;
}

void QueryCache::insert_by_key(std::string key, const VerifyResult& result) {
  // Budget-cut results are sound but not canonical (the witness may not be
  // the lex-lowest and can vary run to run); refusing them here — not just
  // in cached_verify — keeps every insertion path, disk tier included,
  // free of starved verdicts.
  if (result.resource_limited) return;
  const util::MutexLock lock(mutex_);
  if (insert_locked(std::move(key), result, /*from_disk=*/false)) {
    ++stats_.insertions;
  }
}

std::optional<VerifyResult> QueryCache::lookup(const Query& query,
                                               const Engine& engine) {
  return lookup_by_key(canonical_key(query, capability_class(engine)));
}

void QueryCache::insert(const Query& query, const Engine& engine,
                        const VerifyResult& result) {
  insert_by_key(canonical_key(query, capability_class(engine)), result);
}

QueryCache::Stats QueryCache::stats() const {
  const util::MutexLock lock(mutex_);
  Stats snapshot = stats_;
  snapshot.entries = lru_.size();
  return snapshot;
}

std::size_t QueryCache::size() const {
  const util::MutexLock lock(mutex_);
  return lru_.size();
}

void QueryCache::clear() {
  const util::MutexLock lock(mutex_);
  index_.clear();
  lru_.clear();
}

VerifyResult cached_verify(QueryCache* cache, const Query& query,
                           const Engine& engine,
                           const std::function<VerifyResult()>& decide,
                           bool* hit) {
  if (hit != nullptr) *hit = false;
  if (cache == nullptr) return decide();
  // Serialize the canonical key once; the miss path reuses it for insert.
  std::string key = canonical_key(query, capability_class(engine));
  if (auto cached = cache->lookup_by_key(key)) {
    if (hit != nullptr) *hit = true;
    return *std::move(cached);
  }
  VerifyResult result = decide();
  // Budget-cut results (and a complete engine's kUnknown, which can only
  // mean a budget cut) are sound but not canonical — the witness may not
  // be the lex-lowest and can vary run to run — so never memoize them:
  // a starved run must not poison later, better-funded ones.
  // (insert_by_key re-checks resource_limited for direct callers.)
  if (!result.resource_limited &&
      !(engine.complete() && result.verdict == Verdict::kUnknown)) {
    cache->insert_by_key(std::move(key), result);
  }
  return result;
}

VerifyResult cached_verify(QueryCache* cache, const Query& query,
                           const Engine& engine, const VerifyContext& context,
                           bool* hit) {
  return cached_verify(
      cache, query, engine,
      [&] { return run_task(engine, query, context); }, hit);
}

VerifyResult cached_verify(QueryCache* cache, const Query& query,
                           const Engine& engine, bool* hit) {
  return cached_verify(cache, query, engine, VerifyContext{}, hit);
}

QueryCache* global_query_cache() noexcept {
  return g_query_cache.load(std::memory_order_acquire);
}

QueryCache* set_global_query_cache(QueryCache* cache) noexcept {
  return g_query_cache.exchange(cache, std::memory_order_acq_rel);
}

}  // namespace fannet::verify
