#include "verify/sweep.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <map>
#include <optional>

#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "util/sync.hpp"
#include "verify/scheduler.hpp"

namespace fannet::verify {

namespace {

// --- journal line format ----------------------------------------------------
// One JSON object per line (schema in docs/bench-format.md):
//
//   {"sweep":"<name>","fingerprint":"<16 hex>","units":N,"shard_size":K,
//    "done":true}                                                  (header)
//   {"shard":I,"begin":B,"end":E,"bytes":N,"rows":[[..],..],"done":true}
//
// Torn-line detection is structural: a shard line is only trusted when the
// `rows` text spans exactly `bytes` bytes and the line ends with the
// kDoneSuffix marker, so a write cut anywhere mid-line fails to validate
// and the shard re-executes.

constexpr std::string_view kDoneSuffix = ",\"done\":true}";

constexpr char kHexDigits[] = "0123456789abcdef";

std::string fingerprint_hex(std::uint64_t fingerprint) {
  std::string hex(16, '0');
  for (int nibble = 0; nibble < 16; ++nibble) {
    hex[15 - nibble] = kHexDigits[(fingerprint >> (4 * nibble)) & 0xfU];
  }
  return hex;
}

std::string format_rows(const SweepRows& rows) {
  std::string out = "[";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) out += ',';
    out += '[';
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) out += ',';
      out += std::to_string(rows[r][c]);
    }
    out += ']';
  }
  out += ']';
  return out;
}

std::string format_header(std::string_view name, std::uint64_t fingerprint,
                          std::size_t units, std::size_t shard_size) {
  std::string line = "{\"sweep\":\"";
  line += name;
  line += "\",\"fingerprint\":\"";
  line += fingerprint_hex(fingerprint);
  line += "\",\"units\":";
  line += std::to_string(units);
  line += ",\"shard_size\":";
  line += std::to_string(shard_size);
  line += kDoneSuffix;
  return line;
}

std::string format_shard(std::size_t shard, std::size_t begin, std::size_t end,
                         const SweepRows& rows) {
  const std::string rows_text = format_rows(rows);
  std::string line = "{\"shard\":";
  line += std::to_string(shard);
  line += ",\"begin\":";
  line += std::to_string(begin);
  line += ",\"end\":";
  line += std::to_string(end);
  line += ",\"bytes\":";
  line += std::to_string(rows_text.size());
  line += ",\"rows\":";
  line += rows_text;
  line += kDoneSuffix;
  return line;
}

/// Parses a decimal (optionally negative) int64 at `pos`; advances `pos`
/// past the digits.  Fails on overflow rather than wrapping.
bool parse_i64_at(std::string_view text, std::size_t& pos, std::int64_t& out) {
  std::size_t i = pos;
  const bool negative = i < text.size() && text[i] == '-';
  if (negative) ++i;
  if (i >= text.size() || text[i] < '0' || text[i] > '9') return false;
  std::uint64_t magnitude = 0;
  const std::uint64_t limit =
      negative ? 9223372036854775808ULL : 9223372036854775807ULL;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    const auto digit = static_cast<std::uint64_t>(text[i] - '0');
    if (magnitude > (limit - digit) / 10) return false;
    magnitude = magnitude * 10 + digit;
    ++i;
  }
  out = negative ? (magnitude == limit
                        ? std::numeric_limits<std::int64_t>::min()
                        : -static_cast<std::int64_t>(magnitude))
                 : static_cast<std::int64_t>(magnitude);
  pos = i;
  return true;
}

/// Value position right after `tag`, or nullopt when absent.
std::optional<std::size_t> after_tag(std::string_view line,
                                     std::string_view tag) {
  const std::size_t at = line.find(tag);
  if (at == std::string_view::npos) return std::nullopt;
  return at + tag.size();
}

bool parse_size_field(std::string_view line, std::string_view tag,
                      std::size_t& out) {
  const auto at = after_tag(line, tag);
  if (!at) return false;
  std::size_t pos = *at;
  std::int64_t value = 0;
  if (!parse_i64_at(line, pos, value) || value < 0) return false;
  out = static_cast<std::size_t>(value);
  return true;
}

struct ParsedHeader {
  std::string name;
  std::string fingerprint_hex;
  std::size_t units = 0;
  std::size_t shard_size = 0;
};

std::optional<ParsedHeader> parse_header(std::string_view line) {
  if (!line.ends_with(kDoneSuffix)) return std::nullopt;
  ParsedHeader header;
  const auto name_at = after_tag(line, "\"sweep\":\"");
  if (!name_at) return std::nullopt;
  const std::size_t name_end = line.find('"', *name_at);
  if (name_end == std::string_view::npos) return std::nullopt;
  header.name = std::string(line.substr(*name_at, name_end - *name_at));
  const auto fp_at = after_tag(line, "\"fingerprint\":\"");
  if (!fp_at || *fp_at + 16 > line.size()) return std::nullopt;
  header.fingerprint_hex = std::string(line.substr(*fp_at, 16));
  if (line.size() <= *fp_at + 16 || line[*fp_at + 16] != '"') {
    return std::nullopt;
  }
  if (!parse_size_field(line, "\"units\":", header.units) ||
      !parse_size_field(line, "\"shard_size\":", header.shard_size)) {
    return std::nullopt;
  }
  return header;
}

struct ParsedShard {
  std::size_t shard = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  SweepRows rows;
};

std::optional<SweepRows> parse_rows(std::string_view text) {
  SweepRows rows;
  std::size_t pos = 0;
  if (pos >= text.size() || text[pos] != '[') return std::nullopt;
  ++pos;
  if (pos < text.size() && text[pos] == ']') {
    return ++pos == text.size() ? std::optional<SweepRows>(std::move(rows))
                                : std::nullopt;
  }
  for (;;) {
    if (pos >= text.size() || text[pos] != '[') return std::nullopt;
    ++pos;
    std::vector<std::int64_t> row;
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
    } else {
      for (;;) {
        std::int64_t value = 0;
        if (!parse_i64_at(text, pos, value)) return std::nullopt;
        row.push_back(value);
        if (pos >= text.size()) return std::nullopt;
        if (text[pos] == ']') {
          ++pos;
          break;
        }
        if (text[pos] != ',') return std::nullopt;
        ++pos;
      }
    }
    rows.push_back(std::move(row));
    if (pos >= text.size()) return std::nullopt;
    if (text[pos] == ']') {
      ++pos;
      break;
    }
    if (text[pos] != ',') return std::nullopt;
    ++pos;
  }
  if (pos != text.size()) return std::nullopt;
  return rows;
}

std::optional<ParsedShard> parse_shard(std::string_view line) {
  if (!line.ends_with(kDoneSuffix)) return std::nullopt;
  ParsedShard shard;
  std::size_t bytes = 0;
  if (!parse_size_field(line, "\"shard\":", shard.shard) ||
      !parse_size_field(line, "\"begin\":", shard.begin) ||
      !parse_size_field(line, "\"end\":", shard.end) ||
      !parse_size_field(line, "\"bytes\":", bytes)) {
    return std::nullopt;
  }
  const auto rows_at = after_tag(line, "\"rows\":");
  if (!rows_at) return std::nullopt;
  // The rows text must span exactly `bytes` bytes and be followed by the
  // done marker alone — any truncation breaks one of the three checks.
  if (*rows_at + bytes + kDoneSuffix.size() != line.size()) {
    return std::nullopt;
  }
  auto rows = parse_rows(line.substr(*rows_at, bytes));
  if (!rows) return std::nullopt;
  shard.rows = std::move(*rows);
  return shard;
}

[[noreturn]] void journal_mismatch(const std::string& path,
                                   std::string_view field,
                                   const std::string& found,
                                   const std::string& expected) {
  throw Error("sweep journal " + path + " does not match this campaign: " +
              std::string(field) + " is " + found + ", expected " + expected +
              " (delete the journal or point --journal elsewhere to start "
              "over)");
}

}  // namespace

void mix_dataset(SweepFingerprint& fp,
                 const la::Matrix<std::int64_t>& inputs,
                 const std::vector<int>& labels) {
  fp.mix_u64(inputs.rows());
  fp.mix_u64(inputs.cols());
  for (std::size_t s = 0; s < inputs.rows(); ++s) {
    for (const std::int64_t v : inputs.row(s)) fp.mix_i64(v);
  }
  fp.mix_u64(labels.size());
  for (const int label : labels) fp.mix_i64(label);
}

SweepRunner::SweepRunner(SweepOptions options) : options_(std::move(options)) {}

SweepProgress SweepRunner::run(SweepCampaign& campaign) const {
  const util::Stopwatch watch;
  const std::size_t units = campaign.units();
  const std::size_t shard_size =
      options_.shard_size != 0 ? options_.shard_size : 1;
  const std::size_t total_shards = (units + shard_size - 1) / shard_size;
  const auto shard_begin = [&](std::size_t shard) { return shard * shard_size; };
  const auto shard_end = [&](std::size_t shard) {
    return std::min(shard_begin(shard) + shard_size, units);
  };

  SweepProgress progress;
  progress.total_shards = total_shards;

  // --- load + validate the journal -----------------------------------------
  std::map<std::size_t, SweepRows> completed;  // shard index -> rows, last wins
  bool header_seen = false;
  const std::string expected_fp_hex = fingerprint_hex(campaign.fingerprint());
  if (!options_.journal_path.empty()) {
    std::ifstream in(options_.journal_path);
    std::string line;
    while (in && std::getline(in, line)) {
      if (line.empty()) continue;
      if (line.find("\"sweep\":") != std::string_view::npos) {
        const auto header = parse_header(line);
        if (!header) {
          ++progress.journal_skipped;  // torn header: harmless, re-written
          continue;
        }
        if (header->name != campaign.name()) {
          journal_mismatch(options_.journal_path, "campaign", header->name,
                           std::string(campaign.name()));
        }
        if (header->fingerprint_hex != expected_fp_hex) {
          journal_mismatch(options_.journal_path, "fingerprint",
                           header->fingerprint_hex, expected_fp_hex);
        }
        if (header->units != units) {
          journal_mismatch(options_.journal_path, "unit count",
                           std::to_string(header->units),
                           std::to_string(units));
        }
        if (header->shard_size != shard_size) {
          journal_mismatch(options_.journal_path, "--shard-size",
                           std::to_string(header->shard_size),
                           std::to_string(shard_size));
        }
        header_seen = true;
        continue;
      }
      const auto shard = parse_shard(line);
      if (!shard || shard->shard >= total_shards ||
          shard->begin != shard_begin(shard->shard) ||
          shard->end != shard_end(shard->shard)) {
        ++progress.journal_skipped;
        continue;
      }
      completed[shard->shard] = std::move(shard->rows);  // last wins
    }
    if (!completed.empty() && !header_seen) {
      throw Error("sweep journal " + options_.journal_path +
                  " has shard entries but no valid header; refusing to trust "
                  "results of unknown origin");
    }
  }
  progress.resumed_shards = completed.size();

  // --- plan this invocation's shards ----------------------------------------
  std::vector<std::size_t> to_run;
  to_run.reserve(total_shards - completed.size());
  for (std::size_t shard = 0; shard < total_shards; ++shard) {
    if (completed.find(shard) == completed.end()) to_run.push_back(shard);
  }
  if (options_.max_shards != 0 && to_run.size() > options_.max_shards) {
    to_run.resize(options_.max_shards);
  }
  progress.pending_shards = total_shards - completed.size() - to_run.size();

  // --- execute + journal -----------------------------------------------------
  std::ofstream append;
  if (!options_.journal_path.empty()) {
    // A crash can leave a torn final line with no trailing newline; an
    // append straight after it would glue the next (valid) record onto the
    // torn bytes and lose that shard's checkpoint on the following load.
    // Start a fresh line first.
    bool needs_newline = false;
    {
      std::ifstream tail(options_.journal_path, std::ios::binary);
      if (tail && tail.seekg(-1, std::ios::end)) {
        char last = '\n';
        needs_newline = tail.get(last) && last != '\n';
      }
    }
    append.open(options_.journal_path, std::ios::app);
    if (!append) {
      throw Error("SweepRunner: cannot open journal " + options_.journal_path +
                  " for append");
    }
    if (needs_newline) append << '\n';
    if (!header_seen) {
      append << format_header(campaign.name(), campaign.fingerprint(), units,
                              shard_size)
             << '\n';
      append.flush();
    }
    if (!append) {
      throw Error("SweepRunner: cannot write journal " +
                  options_.journal_path);
    }
  }

  std::vector<SweepRows> fresh(to_run.size());
  util::Mutex journal_mutex;
  const Scheduler scheduler({.threads = options_.threads});
  scheduler.parallel_for(to_run.size(), [&](std::size_t i) {
    const std::size_t shard = to_run[i];
    fresh[i] = campaign.run_units(shard_begin(shard), shard_end(shard));
    if (append.is_open()) {
      // One locked append+flush per shard: a crash loses at most the shard
      // in flight, and its torn line is discarded on the next load.  A
      // failed write (disk full, I/O error) is a hard error — silently
      // losing durability would defeat the journal's purpose.
      const util::MutexLock lock(journal_mutex);
      append << format_shard(shard, shard_begin(shard), shard_end(shard),
                             fresh[i])
             << '\n';
      append.flush();
      if (!append) {
        throw Error("SweepRunner: checkpoint write to " +
                    options_.journal_path +
                    " failed (disk full?); shard results are no longer "
                    "durable");
      }
    }
  });
  progress.executed_shards = to_run.size();
  for (std::size_t i = 0; i < to_run.size(); ++i) {
    progress.units_executed += shard_end(to_run[i]) - shard_begin(to_run[i]);
    completed[to_run[i]] = std::move(fresh[i]);
  }

  // --- aggregate -------------------------------------------------------------
  // std::map iterates in ascending shard order, so the fold is identical no
  // matter which shards came from the journal and which just ran.
  for (const auto& [shard, rows] : completed) {
    campaign.absorb(shard_begin(shard), shard_end(shard), rows);
  }
  progress.wall_ms = watch.millis();
  return progress;
}

}  // namespace fannet::verify
