/// \file
/// \brief Resumable cooperative engine tasks (DESIGN.md §12).
///
/// `EngineTask` turns a blocking `Engine::verify_with` call into an
/// explicit state machine — kUninitialized → kRunning ⇄ kPaused → kDone —
/// with a bounded `step(max_work)` surface, so a serving layer can hold
/// thousands of in-flight P2 queries, time-slice them, pause and resume
/// them, cancel them, and bound them with wall-clock deadlines.  Engines
/// with real long-running loops (enumerate's grid walk, bnb's
/// work-stealing frontier, the cascade's staged pipeline, sat's CDCL solve
/// + witness minimization) provide native tasks that checkpoint their
/// frontier/trail between steps; every other engine gets a generic
/// one-step adapter via `Engine::make_task`'s default.
///
/// Determinism contract: a task paused and resumed at *any* step
/// boundaries yields the bit-identical verdict and the same
/// (lexicographically lowest) witness as an uninterrupted run, at any
/// thread count — pausing only changes scheduling, never which points,
/// boxes, or models decide the query (bench_tasks gates this in CI).
///
/// Threading contract: `step()` bodies are serialized by an internal
/// mutex; `pause()`, `resume()`, `cancel()` and `state()` are lock-free
/// flag flips safe from any thread at any time, including concurrently
/// with a running step (the step observes the flag at its next checkpoint
/// and yields).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "verify/budget.hpp"
#include "verify/query.hpp"

namespace fannet::verify {

class Engine;
struct VerifyContext;

/// Lifecycle of an EngineTask (the Leviathan solver shape).
enum class TaskState : std::uint8_t {
  kUninitialized,  ///< created, no step taken yet
  kRunning,        ///< mid-query; more steps needed
  kPaused,         ///< a pause request took effect; resume() to continue
  kDone,           ///< result() is available
};

/// One in-flight P2 query.  Create via `Engine::make_task`, drive with
/// `step()` (or `run()`); read the final verdict with `result()`.
class EngineTask {
 public:
  /// Default per-step work quota, in engine-native units (grid points for
  /// enumerate, boxes for bnb, conflicts for sat).
  static constexpr std::uint64_t kDefaultStepWork = 1024;

  virtual ~EngineTask() = default;
  EngineTask(const EngineTask&) = delete;
  EngineTask& operator=(const EngineTask&) = delete;

  [[nodiscard]] TaskState state() const noexcept {
    return state_.load(std::memory_order_acquire);
  }

  /// Runs one bounded slice of the query (at most ~`max_work` engine work
  /// units; `0` means one minimal slice) and returns the resulting state.
  /// On kDone the verdict is final; kPaused honours a pending `pause()`;
  /// kRunning means call again.  A pending `cancel()` or an expired
  /// budget/deadline finalizes to kUnknown + `resource_limited` (or a
  /// valid witness already in hand, also flagged).  Exceptions from the
  /// engine propagate and poison the task (state kDone, no result).
  TaskState step(std::uint64_t max_work = kDefaultStepWork);

  /// Requests a pause; takes effect at the running step's next checkpoint
  /// (the step returns early without losing progress).  Safe from any
  /// thread; idempotent; a no-op once kDone.
  void pause() noexcept { pause_requested_.store(true, std::memory_order_release); }

  /// Clears a pause request so the next `step()` makes progress again.
  void resume() noexcept { pause_requested_.store(false, std::memory_order_release); }

  /// Requests cancellation: the next step (or the running one, at its next
  /// checkpoint) finalizes to kUnknown + `resource_limited`.  Irrevocable.
  void cancel() noexcept { cancel_requested_.store(true, std::memory_order_release); }

  /// Steps until the task leaves kRunning; returns kDone or kPaused.
  TaskState run(std::uint64_t step_work = kDefaultStepWork);

  /// The final result; throws util::Error unless `state()` is kDone (or if
  /// the task was poisoned by an engine exception).  Safe without the step
  /// mutex: kDone is published with release order after the last write to
  /// the result, and read here with acquire.
  [[nodiscard]] const VerifyResult& result() const;

 protected:
  explicit EngineTask(Budget budget) : budget_(std::move(budget)) {}

  /// One bounded slice of engine work.  Accumulate into `out` (it persists
  /// across steps); return true when the query is decided (`out` is then
  /// the final result).  Poll `should_yield()` at internal checkpoints and
  /// return false early to honour pause/cancel promptly; poll
  /// `interrupted()` to map deadline/cancel expiry onto the engine's own
  /// kUnknown + resource_limited path with bounded overshoot.
  virtual bool step_impl(std::uint64_t max_work, VerifyResult& out) = 0;

  /// True when the current step should stop at its next checkpoint
  /// (pause or cancel requested, deadline passed).
  [[nodiscard]] bool should_yield() const noexcept {
    return pause_requested_.load(std::memory_order_acquire) ||
           cancel_requested_.load(std::memory_order_acquire) ||
           budget_.interrupted();
  }

  /// True when the budget demands finalization (deadline/cancel token), as
  /// opposed to a mere pause.
  [[nodiscard]] bool interrupted() const noexcept {
    return cancel_requested_.load(std::memory_order_acquire) ||
           budget_.interrupted();
  }

  [[nodiscard]] const Budget& budget() const noexcept { return budget_; }

 private:
  /// Marks the accumulated result resource-limited: kUnknown unless a
  /// valid witness is already in hand (bnb/sat semantics).
  void finalize_interrupted() FANNET_REQUIRES(step_mutex_);

  Budget budget_;
  /// Written only inside a step (under step_mutex_); readable lock-free
  /// after kDone via the state_ release/acquire pair (see result()).
  VerifyResult result_ FANNET_GUARDED_BY(step_mutex_);
  std::atomic<TaskState> state_{TaskState::kUninitialized};
  std::atomic<bool> pause_requested_{false};
  std::atomic<bool> cancel_requested_{false};
  /// An engine exception escaped a step; same publication rule as result_.
  bool poisoned_ FANNET_GUARDED_BY(step_mutex_) = false;
  util::Mutex step_mutex_;  ///< serializes step bodies
};

/// Runs `engine.make_task(query, context)` to completion and returns its
/// result — the task-path equivalent of `engine.verify_with(query,
/// context)`, used by `cached_verify` so every cached dispatch goes
/// through the task substrate.
[[nodiscard]] VerifyResult run_task(const Engine& engine, const Query& query,
                                    const VerifyContext& context);

/// Default `Engine::make_task` adapter: one step that runs the whole
/// blocking `verify_with` call.  A pre-step deadline/cancel check still
/// maps to kUnknown + resource_limited, but a started step runs to
/// completion — engines that need bounded overshoot implement a native
/// task instead.
[[nodiscard]] std::unique_ptr<EngineTask> make_generic_task(
    const Engine& engine, const Query& query, const VerifyContext& context);

}  // namespace fannet::verify
