/// \file
/// \brief Common query interface of the NN verification engines.
///
/// Every engine answers the same decision problem (the paper's P2 property,
/// Fig. 2): given a quantized network, a base input x with true label Sx and
/// a box of integer-percent noise values, does some noise vector in the box
/// flip the classification away from Sx?  Engines differ in strategy:
///
///   enumerate  exhaustive integer-grid search       exact    complete
///   interval   interval bound propagation (IBP)     exact    sound-only
///   symbolic   affine bounds in the noise deltas    exact    sound-only
///   bnb        branch-and-bound input splitting     exact    complete
///
/// The noise dimensions are the network inputs in order, optionally followed
/// by one extra dimension for the paper's bias input node (DESIGN.md §4.3).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nn/quantized.hpp"

namespace fannet::verify {

using util::i64;

/// Noise box for one query.
struct NoiseBox {
  std::vector<int> lo;  ///< per-dimension lower bound (percent, inclusive)
  std::vector<int> hi;  ///< per-dimension upper bound (percent, inclusive)

  /// Symmetric box: every dimension in [-range, +range].
  [[nodiscard]] static NoiseBox symmetric(std::size_t dims, int range);

  [[nodiscard]] std::size_t dims() const noexcept { return lo.size(); }
  /// Number of integer grid points in the box.  Exact while the count is
  /// exactly representable in a double (<= 2^53); saturates to +infinity
  /// beyond that instead of silently losing precision.
  [[nodiscard]] double volume() const;
  [[nodiscard]] bool is_singleton() const;
};

struct Query {
  const nn::QuantizedNetwork* net = nullptr;
  std::vector<i64> x;        ///< base integer inputs
  int true_label = 0;        ///< Sx
  NoiseBox box;              ///< dims = x.size() (+1 with bias_node)
  bool bias_node = false;    ///< last dimension noises the bias input node

  [[nodiscard]] std::size_t noise_dims() const noexcept {
    return x.size() + (bias_node ? 1 : 0);
  }
  /// Throws InvalidArgument if shapes are inconsistent.
  void validate() const;
};

/// One adversarial noise vector (a row of the paper's noise matrix e).
struct Counterexample {
  std::vector<int> deltas;  ///< per input node (percent)
  int bias_delta = 0;       ///< bias-node noise (0 unless Query::bias_node)
  int mis_label = 0;        ///< label the network flips to

  [[nodiscard]] bool operator==(const Counterexample&) const = default;
};

enum class Verdict : std::uint8_t {
  kRobust,      ///< no noise vector in the box flips the label (proven)
  kVulnerable,  ///< a counterexample was found
  kUnknown,     ///< engine is incomplete and could not certify either way
};

struct VerifyResult {
  Verdict verdict = Verdict::kUnknown;
  std::optional<Counterexample> counterexample;  // set iff kVulnerable
  std::uint64_t work = 0;  ///< engine-specific effort (evals / boxes / ...)
  /// True when a resource budget (e.g. bnb's box cap) cut the search
  /// short.  Such results are still *sound* (a kVulnerable witness is
  /// verified; kUnknown is honest) but not canonical — the witness may
  /// not be the lexicographically-lowest one and can vary run to run —
  /// so the query cache never memoizes them.
  bool resource_limited = false;
};

/// Shared exact evaluation: classify the base input under a noise vector
/// laid out as the query's noise dimensions.
[[nodiscard]] int classify_under_noise(const Query& q,
                                       std::span<const int> deltas);

}  // namespace fannet::verify
