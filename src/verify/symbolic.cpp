#include "verify/symbolic.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fannet::verify {

using util::i128;
using util::i64;

namespace {

/// acc += w * form (exact).
void add_scaled(AffineForm& acc, i64 w, const AffineForm& form) {
  acc.c0 += static_cast<i128>(w) * form.c0;
  for (std::size_t d = 0; d < acc.coeff.size(); ++d) {
    acc.coeff[d] += static_cast<i128>(w) * form.coeff[d];
  }
}

AffineForm constant_form(std::size_t dims, i128 c) {
  AffineForm f;
  f.c0 = c;
  f.coeff.assign(dims, 0);
  return f;
}

}  // namespace

i128 AffineForm::min_over(const NoiseBox& box) const {
  i128 v = c0;
  for (std::size_t d = 0; d < coeff.size(); ++d) {
    v += coeff[d] * (coeff[d] >= 0 ? box.lo[d] : box.hi[d]);
  }
  return v;
}

i128 AffineForm::max_over(const NoiseBox& box) const {
  i128 v = c0;
  for (std::size_t d = 0; d < coeff.size(); ++d) {
    v += coeff[d] * (coeff[d] >= 0 ? box.hi[d] : box.lo[d]);
  }
  return v;
}

SymbolicBounds symbolic_bounds(const Query& q) {
  q.validate();
  const nn::QuantizedNetwork& net = *q.net;
  const std::size_t n = q.x.size();
  const std::size_t dims = q.noise_dims();

  SymbolicBounds out;

  // First layer: exactly affine in the deltas.
  //   N_j = Σ_i Wq_ji·x_i·100 + Bq_j·norm·100   (constant part)
  //       + Σ_i Wq_ji·x_i·δ_i  (+ Bq_j·norm·δ_bias)
  const nn::QLayer& first = net.layers().front();
  std::vector<AffineForm> lo_forms, hi_forms;
  lo_forms.reserve(first.out_dim());
  for (std::size_t j = 0; j < first.out_dim(); ++j) {
    AffineForm f = constant_form(dims, 0);
    f.c0 = static_cast<i128>(first.bias[j]) * net.input_norm() * nn::kNoiseDen;
    if (q.bias_node) {
      f.coeff[n] = static_cast<i128>(first.bias[j]) * net.input_norm();
    }
    const auto row = first.weights.row(j);
    for (std::size_t i = 0; i < n; ++i) {
      const i128 wx = static_cast<i128>(row[i]) * q.x[i];
      f.c0 += wx * nn::kNoiseDen;
      f.coeff[i] += wx;
    }
    lo_forms.push_back(f);
  }
  hi_forms = lo_forms;  // exact: identical forms

  i128 act_scale = static_cast<i128>(net.input_norm()) * nn::kNoiseDen;

  for (std::size_t li = 0; li < net.depth(); ++li) {
    if (li > 0) {
      const nn::QLayer& layer = net.layers()[li];
      std::vector<AffineForm> z_lo, z_hi;
      z_lo.reserve(layer.out_dim());
      z_hi.reserve(layer.out_dim());
      for (std::size_t j = 0; j < layer.out_dim(); ++j) {
        AffineForm flo =
            constant_form(dims, static_cast<i128>(layer.bias[j]) * act_scale);
        AffineForm fhi = flo;
        const auto row = layer.weights.row(j);
        for (std::size_t i = 0; i < layer.in_dim(); ++i) {
          if (row[i] >= 0) {
            add_scaled(flo, row[i], lo_forms[i]);
            add_scaled(fhi, row[i], hi_forms[i]);
          } else {
            add_scaled(flo, row[i], hi_forms[i]);
            add_scaled(fhi, row[i], lo_forms[i]);
          }
        }
        z_lo.push_back(std::move(flo));
        z_hi.push_back(std::move(fhi));
      }
      lo_forms = std::move(z_lo);
      hi_forms = std::move(z_hi);
    }
    const nn::QLayer& layer = net.layers()[li];
    if (li + 1 == net.depth()) {
      out.out_lo = lo_forms;
      out.out_hi = hi_forms;
    }
    if (layer.relu) {
      for (std::size_t j = 0; j < lo_forms.size(); ++j) {
        const i128 lb = lo_forms[j].min_over(q.box);
        const i128 ub = hi_forms[j].max_over(q.box);
        if (lb >= 0) continue;  // stable active: keep exact forms
        if (ub <= 0) {
          lo_forms[j] = constant_form(dims, 0);
          hi_forms[j] = constant_form(dims, 0);
          continue;
        }
        // Unstable: concretize (sound relaxation, exact integers).
        ++out.unstable_relus;
        lo_forms[j] = constant_form(dims, 0);
        hi_forms[j] = constant_form(dims, ub);
      }
    }
    act_scale *= util::Fixed::kScale;
  }
  return out;
}

MarginForms margin_forms(const Query& q) {
  const SymbolicBounds sb = symbolic_bounds(q);
  const auto y = static_cast<std::size_t>(q.true_label);
  const std::size_t outs = sb.out_lo.size();

  MarginForms mf;
  mf.lo.assign(outs, constant_form(q.noise_dims(), 0));
  mf.hi.assign(outs, constant_form(q.noise_dims(), 0));
  mf.unstable_relus = sb.unstable_relus;
  for (std::size_t k = 0; k < outs; ++k) {
    if (k == y) continue;
    // M_k = O_y - O_k at form level: shared coefficients cancel exactly.
    AffineForm lo_form = sb.out_lo[y];
    add_scaled(lo_form, -1, sb.out_hi[k]);
    AffineForm hi_form = sb.out_hi[y];
    add_scaled(hi_form, -1, sb.out_lo[k]);
    mf.lo[k] = std::move(lo_form);
    mf.hi[k] = std::move(hi_form);
  }
  return mf;
}

MarginBounds margin_bounds(const Query& q) {
  const MarginForms mf = margin_forms(q);
  const auto y = static_cast<std::size_t>(q.true_label);
  const std::size_t outs = mf.lo.size();

  MarginBounds mb;
  mb.lb.assign(outs, 0);
  mb.ub.assign(outs, 0);
  mb.unstable_relus = mf.unstable_relus;
  for (std::size_t k = 0; k < outs; ++k) {
    if (k == y) continue;
    mb.lb[k] = mf.lo[k].min_over(q.box);
    mb.ub[k] = mf.hi[k].max_over(q.box);
  }
  return mb;
}

VerifyResult symbolic_verify(const Query& q) {
  const MarginBounds mb = margin_bounds(q);
  const auto y = static_cast<std::size_t>(q.true_label);

  VerifyResult result;
  result.work = 1;
  for (std::size_t k = 0; k < mb.lb.size(); ++k) {
    if (k == y) continue;
    const i128 needed = (k < y) ? 1 : 0;
    if (mb.lb[k] < needed) {
      result.verdict = Verdict::kUnknown;
      return result;
    }
  }
  result.verdict = Verdict::kRobust;
  return result;
}

}  // namespace fannet::verify
